// Benchmarks regenerating the paper's evaluation (Sect. 5.1, Fig. 7)
// plus the ablations called out in DESIGN.md §6.
//
//	go test -bench 'Fig7' -benchmem          # the paper's three panels
//	go test -bench 'Ablation' -benchmem      # design-choice ablations
//
// Fig. 7(a/b): execution time of one complete iteration of the
// motivation example (ProductionLine -> MonitoringSystem -> Console ->
// AuditLog) on the four implementations. Fig. 7(c): memory footprint
// of the deployed infrastructure. The absolute numbers differ from
// the paper's 2008 testbed; the shape (ordering, relative overhead)
// is the reproduction target — see EXPERIMENTS.md.
package soleil_test

import (
	"testing"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/comm"
	"soleil/internal/evaluation"
	"soleil/internal/fixture"
	"soleil/internal/membrane"
	"soleil/internal/patterns"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/thread"
	"soleil/internal/scenario"
	"soleil/internal/trace"
)

// --- Fig. 7(a): execution-time distribution --------------------------------------

func benchVariant(b *testing.B, name string) {
	b.Helper()
	v, err := evaluation.New(name)
	if err != nil {
		b.Fatal(err)
	}
	defer v.Close()
	// Steady state: discard the cold start before timing.
	for i := 0; i < 200; i++ {
		if err := v.Transaction(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Transaction(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7a_OO(b *testing.B)         { benchVariant(b, "OO") }
func BenchmarkFig7a_Soleil(b *testing.B)     { benchVariant(b, "SOLEIL") }
func BenchmarkFig7a_MergeAll(b *testing.B)   { benchVariant(b, "MERGE-ALL") }
func BenchmarkFig7a_UltraMerge(b *testing.B) { benchVariant(b, "ULTRA-MERGE") }

// --- Fig. 7(b): median and jitter --------------------------------------------------

// BenchmarkFig7b reproduces the median/jitter table: each sub-bench
// collects the paper's 10,000 steady-state observations once and
// reports them as custom metrics (median-ns, jitter-ns).
func BenchmarkFig7b(b *testing.B) {
	for _, name := range evaluation.VariantNames {
		name := name
		b.Run(name, func(b *testing.B) {
			v, err := evaluation.New(name)
			if err != nil {
				b.Fatal(err)
			}
			defer v.Close()
			var last trace.Summary
			for i := 0; i < b.N; i++ {
				r, err := evaluation.MeasureTiming(v, evaluation.DefaultWarmup, evaluation.DefaultObservations)
				if err != nil {
					b.Fatal(err)
				}
				last = r.Summary
			}
			b.ReportMetric(float64(last.Median), "median-ns")
			b.ReportMetric(float64(last.Jitter), "jitter-ns")
			b.ReportMetric(float64(last.P99), "p99-ns")
		})
	}
}

// --- Fig. 7(c): memory footprint ----------------------------------------------------

// BenchmarkFig7c reports the live-heap footprint of constructing each
// variant's infrastructure.
func BenchmarkFig7c(b *testing.B) {
	for _, name := range evaluation.VariantNames {
		name := name
		b.Run(name, func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				r, err := evaluation.MeasureFootprint(name)
				if err != nil {
					b.Fatal(err)
				}
				bytes = r.Bytes
			}
			b.ReportMetric(float64(bytes), "footprint-B")
		})
	}
}

// --- Ablations ----------------------------------------------------------------------

// BenchmarkAblationAssignChecks isolates the cost of the dynamic RTSJ
// assignment-rule check — the price of simulating scoped memory.
func BenchmarkAblationAssignChecks(b *testing.B) {
	rt := memory.NewRuntime()
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		b.Fatal(err)
	}
	defer ctx.Close()
	holder, err := ctx.Alloc(16, nil)
	if err != nil {
		b.Fatal(err)
	}
	value, err := ctx.Alloc(16, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("checked-store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := holder.SetField("x", value); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw-check-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := memory.CheckAssign(holder.Area(), value.Area()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationInterceptorChain measures membrane dispatch as the
// interceptor chain deepens — the indirection MERGE-ALL removes.
func BenchmarkAblationInterceptorChain(b *testing.B) {
	rt := memory.NewRuntime()
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		b.Fatal(err)
	}
	defer ctx.Close()
	env := thread.NewEnv(nil, ctx)
	for _, depth := range []int{0, 1, 2, 3} {
		var ints []membrane.Interceptor
		for i := 0; i < depth; i++ {
			ints = append(ints, &membrane.ActiveInterceptor{})
		}
		m, err := membrane.New("bench", &assembly.StubContent{}, ints...)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Lifecycle().Start(); err != nil {
			b.Fatal(err)
		}
		b.Run(string(rune('0'+depth))+"-interceptors", func(b *testing.B) {
			inv := &membrane.Invocation{Interface: "i", Op: "op", Arg: 1, Env: env}
			for i := 0; i < b.N; i++ {
				if _, err := m.Dispatch(inv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBufferCapacity sweeps the async buffer capacity
// around the paper's bufferSize="10".
func BenchmarkAblationBufferCapacity(b *testing.B) {
	rt := memory.NewRuntime()
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		b.Fatal(err)
	}
	defer ctx.Close()
	for _, capacity := range []int{1, 10, 64, 256} {
		buf, err := comm.NewRTBuffer("bench", capacity, comm.Refuse, rt.Immortal(), 64)
		if err != nil {
			b.Fatal(err)
		}
		name := map[int]string{1: "cap-1", 10: "cap-10", 64: "cap-64", 256: "cap-256"}[capacity]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := buf.Enqueue(ctx, i); err != nil {
					b.Fatal(err)
				}
				if _, ok, err := buf.Dequeue(ctx); err != nil || !ok {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScopeEnter measures the scoped-memory round trip
// behind the scope-enter pattern (enter, allocate, reclaim).
func BenchmarkAblationScopeEnter(b *testing.B) {
	rt := memory.NewRuntime()
	scope, err := rt.NewScoped("bench", 28<<10)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		b.Fatal(err)
	}
	defer ctx.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := ctx.Enter(scope, func() error {
			_, err := ctx.Alloc(64, nil)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPatternDispatch compares the sync-call cost across
// the deployed cross-scope patterns.
func BenchmarkAblationPatternDispatch(b *testing.B) {
	rt := memory.NewRuntime()
	scope, err := rt.NewScoped("bench", 28<<10)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		b.Fatal(err)
	}
	defer ctx.Close()
	env := thread.NewEnv(nil, ctx)

	cases := []struct {
		name    string
		pattern patterns.Kind
		scope   *memory.Area
	}{
		{"none", patterns.None, nil},
		{"deep-copy", patterns.DeepCopy, nil},
		{"scope-enter", patterns.ScopeEnter, scope},
	}
	for _, c := range cases {
		m, err := membrane.New("srv", &assembly.StubContent{})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Lifecycle().Start(); err != nil {
			b.Fatal(err)
		}
		var pre []membrane.Interceptor
		if c.pattern != patterns.None {
			mi, err := membrane.NewMemoryInterceptor(c.pattern, c.scope)
			if err != nil {
				b.Fatal(err)
			}
			pre = append(pre, mi)
		}
		port, err := membrane.NewSyncPort(m, "i", pre...)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := port.Call(env, "op", i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSimulatedSchedule measures a full scheduled run of
// the motivation example per mode (virtual 100ms, wall-clock cost of
// the simulation machinery itself).
func BenchmarkAblationSimulatedSchedule(b *testing.B) {
	for _, mode := range []assembly.Mode{assembly.Soleil, assembly.MergeAll, assembly.UltraMerge} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				arch, err := fixture.MotivationExample()
				if err != nil {
					b.Fatal(err)
				}
				reg := assembly.NewRegistry()
				if err := scenario.NewContents().Register(reg); err != nil {
					b.Fatal(err)
				}
				sys, err := assembly.Deploy(arch, assembly.Config{Mode: mode, Registry: reg})
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.RunFor(100 * time.Millisecond); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
