// Supervision: a two-system distributed deployment surviving both a
// lossy transport and a crashing component.
//
// A telemetry producer feeds a ground station over an in-process
// transport wrapped with deterministic fault injection (drops,
// duplicates, corruption — replayable from a seed). The station's
// content panics on every 7th frame; a panic interceptor in its
// membrane converts the panic into a recorded fault and flips the
// component's lifecycle to FAILED, and a supervisor restarts it
// through the reconfiguration manager. The producer side is hardened
// with retry + circuit breaker + per-call timeout, and the importer
// absorbs delivery errors instead of dying — so the run completes
// with zero process crashes.
//
//	go run ./examples/supervision
package main

import (
	"errors"
	"fmt"
	"os"
	"time"

	"soleil"
	"soleil/internal/fault"
	"soleil/internal/membrane"
)

// telemetry is the value message crossing the node boundary.
type telemetry struct {
	Seq     int
	Reading float64
}

type producer struct {
	svc *soleil.Services
	seq int
}

func (p *producer) Init(svc *soleil.Services) error { p.svc = svc; return nil }

func (p *producer) Invoke(*soleil.Env, string, string, any) (any, error) {
	return nil, fmt.Errorf("producer serves nothing")
}

func (p *producer) Activate(env *soleil.Env) error {
	p.seq++
	port, err := p.svc.Port("downlink")
	if err != nil {
		return err
	}
	return port.Send(env, "telemetry", telemetry{Seq: p.seq, Reading: float64(p.seq) * 1.5})
}

// flakyStation receives frames but panics on every 7th one — the
// misbehaving component the membrane must contain.
type flakyStation struct {
	received []telemetry
	inits    int
}

func (g *flakyStation) Init(*soleil.Services) error { g.inits++; return nil }

func (g *flakyStation) Invoke(env *soleil.Env, itf, op string, arg any) (any, error) {
	t, ok := arg.(telemetry)
	if !ok {
		return nil, fmt.Errorf("ground station received %T", arg)
	}
	if t.Seq%7 == 0 {
		panic(fmt.Sprintf("station firmware bug on frame %d", t.Seq))
	}
	g.received = append(g.received, t)
	return nil, nil
}

func buildProducerSystem(content soleil.Content) (*soleil.System, error) {
	arch := soleil.NewArchitecture("spacecraft")
	src, err := arch.NewActive("Telemetry", soleil.Activation{Kind: soleil.SporadicActivation})
	if err != nil {
		return nil, err
	}
	if err := src.AddInterface(soleil.Interface{Name: "downlink", Role: soleil.ClientRole, Signature: "ITelemetry"}); err != nil {
		return nil, err
	}
	if err := src.SetContent("TelemetryImpl"); err != nil {
		return nil, err
	}
	td, err := arch.NewThreadDomain("rt", soleil.DomainDesc{Kind: soleil.RealtimeThread, Priority: 28})
	if err != nil {
		return nil, err
	}
	imm, err := arch.NewMemoryArea("imm", soleil.AreaDesc{Kind: soleil.ImmortalMemory, Size: 64 << 10})
	if err != nil {
		return nil, err
	}
	if err := arch.AddChild(imm, td); err != nil {
		return nil, err
	}
	if err := arch.AddChild(td, src); err != nil {
		return nil, err
	}
	fw := soleil.New()
	if err := fw.Register("TelemetryImpl", func() soleil.Content { return content }); err != nil {
		return nil, err
	}
	return fw.Deploy(arch, soleil.Soleil)
}

func buildConsumerSystem(content soleil.Content, log *soleil.FaultLog) (*soleil.System, error) {
	arch := soleil.NewArchitecture("ground")
	snk, err := arch.NewPassive("Station")
	if err != nil {
		return nil, err
	}
	if err := snk.AddInterface(soleil.Interface{Name: "uplink", Role: soleil.ServerRole, Signature: "ITelemetry"}); err != nil {
		return nil, err
	}
	if err := snk.SetContent("StationImpl"); err != nil {
		return nil, err
	}
	heap, err := arch.NewMemoryArea("heap", soleil.AreaDesc{Kind: soleil.HeapMemory})
	if err != nil {
		return nil, err
	}
	if err := arch.AddChild(heap, snk); err != nil {
		return nil, err
	}
	fw := soleil.New()
	if err := fw.Register("StationImpl", func() soleil.Content { return content }); err != nil {
		return nil, err
	}
	// The panic guard rides on the membrane of every component.
	return fw.DeployConfig(arch, soleil.DeployOptions{
		Mode: soleil.Soleil,
		Interceptors: func(component string) []membrane.Interceptor {
			return []membrane.Interceptor{soleil.NewPanicInterceptor(component, log, nil)}
		},
	})
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	soleil.RegisterPayload(telemetry{})

	flog := soleil.NewFaultLog(0)
	prodContent := &producer{}
	station := &flakyStation{}
	producerSys, err := buildProducerSystem(prodContent)
	if err != nil {
		return err
	}
	consumerSys, err := buildConsumerSystem(station, flog)
	if err != nil {
		return err
	}

	// Join the systems over a pipe wrapped with seeded fault
	// injection: the same seed replays the same drops/duplicates.
	a, b := soleil.NewPipeTransport()
	spec := soleil.FaultSpec{Drop: 0.08, Duplicate: 0.05, Corrupt: 0.03, Seed: 7}
	lossy, err := soleil.InjectFaults(a, spec, flog)
	if err != nil {
		return err
	}

	// Producer side: hardened remote port (retry + breaker + timeout).
	breaker := fault.NewBreaker(5, 50*time.Millisecond)
	if _, err := soleil.ExportHardened(producerSys, "Telemetry", "downlink", "uplink", lossy,
		soleil.HardenOptions{
			Timeout: 250 * time.Millisecond,
			Breaker: breaker,
			Retry:   &fault.Backoff{Attempts: 3},
		}); err != nil {
		return err
	}

	// Consumer side: self-healing importer + restarting supervisor.
	importer, err := soleil.Import(consumerSys, "Station", b)
	if err != nil {
		return err
	}
	deliveryErrs := 0
	importer.SetErrorHandler(func(err error) bool {
		deliveryErrs++
		return true // absorb: drop the message, keep serving
	})

	adapter, err := soleil.New().Adapt(consumerSys)
	if err != nil {
		return err
	}
	sup, err := soleil.NewSupervisor(adapter, fault.WithLog(flog))
	if err != nil {
		return err
	}
	sup.Watch("Station",
		soleil.SupervisionPolicy{Directive: soleil.RestartOneForOne, MaxRestarts: 20},
		fault.FailureProbe(func() (bool, error) { return consumerSys.ComponentFailed("Station") }))

	if err := producerSys.Start(); err != nil {
		return err
	}
	if err := consumerSys.Start(); err != nil {
		return err
	}
	go importer.Serve()

	// Drive 60 telemetry frames; after each send, wait for the
	// importer to catch up, then let the supervisor take one pass —
	// the deterministic stand-in for its background polling loop.
	env, closeEnv, err := producerSys.NewEnv(false)
	if err != nil {
		return err
	}
	defer closeEnv()
	node, _ := producerSys.Node("Telemetry")
	sendFailures := 0
	processed := func() int64 { return importer.Delivered() + importer.Dropped() }
	for i := 0; i < 60; i++ {
		before := processed()
		if err := node.Activate(env); err != nil {
			if errors.Is(err, fault.ErrCircuitOpen) {
				sendFailures++
				continue
			}
			return err
		}
		// Dropped frames never reach the importer; give the rest a
		// short window to land before supervising.
		for wait := 0; processed() == before && wait < 50; wait++ {
			time.Sleep(100 * time.Microsecond)
		}
		sup.Poll()
	}
	if err := lossy.Close(); err != nil {
		return err
	}
	importer.Wait()
	sup.Poll()

	fmt.Printf("station received %d/60 frames (inits=%d)\n", len(station.received), station.inits)
	st := lossy.(*fault.Injector).Stats()
	fmt.Printf("injected faults: dropped=%d duplicated=%d corrupted=%d (seed %d)\n",
		st.Dropped, st.Duplicated, st.Corrupted, spec.Seed)
	fmt.Printf("faults recorded: %d total, %d panics; delivery errors absorbed: %d\n",
		flog.Total(), flog.CountByKind(fault.Panic), deliveryErrs)
	restarts := 0
	for _, a := range sup.Actions() {
		if a.Kind == "restart" && a.Err == nil {
			restarts++
		}
	}
	fmt.Printf("breaker: state=%v trips=%d; sends refused while open: %d\n",
		breaker.State(), breaker.Trips(), sendFailures)
	fmt.Printf("supervisor: %d restart(s) of Station; quarantined=%v\n", restarts, sup.Quarantined("Station"))
	for _, op := range adapter.History() {
		fmt.Printf("  reconfig %s %s err=%v\n", op.Kind, op.Detail, op.Err)
	}
	return nil
}
