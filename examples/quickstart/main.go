// Quickstart: a minimal two-component real-time system built with the
// public API — a periodic sensor (no-heap real-time thread, immortal
// memory) streaming readings to a sporadic logger (regular thread,
// heap) over an asynchronous binding.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"soleil"
)

// sensor is the periodic producer content.
type sensor struct {
	svc *soleil.Services
	seq int
}

func (s *sensor) Init(svc *soleil.Services) error {
	s.svc = svc
	return nil
}

func (s *sensor) Invoke(env *soleil.Env, itf, op string, arg any) (any, error) {
	return nil, fmt.Errorf("sensor serves no interface")
}

func (s *sensor) Activate(env *soleil.Env) error {
	s.seq++
	out, err := s.svc.Port("readings")
	if err != nil {
		return err
	}
	return out.Send(env, "record", fmt.Sprintf("reading #%d", s.seq))
}

// logger is the sporadic consumer content.
type logger struct {
	records []string
}

func (l *logger) Init(svc *soleil.Services) error { return nil }

func (l *logger) Invoke(env *soleil.Env, itf, op string, arg any) (any, error) {
	l.records = append(l.records, fmt.Sprint(arg))
	return nil, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Describe the architecture: business first, then the RTSJ
	//    concerns as ThreadDomain / MemoryArea components.
	arch := soleil.NewArchitecture("quickstart")
	sen, err := arch.NewActive("Sensor", soleil.Activation{
		Kind: soleil.PeriodicActivation, Period: 10 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	log, err := arch.NewActive("Logger", soleil.Activation{Kind: soleil.SporadicActivation})
	if err != nil {
		return err
	}
	if err := sen.AddInterface(soleil.Interface{Name: "readings", Role: soleil.ClientRole, Signature: "IRecord"}); err != nil {
		return err
	}
	if err := log.AddInterface(soleil.Interface{Name: "in", Role: soleil.ServerRole, Signature: "IRecord"}); err != nil {
		return err
	}
	if err := sen.SetContent("SensorImpl"); err != nil {
		return err
	}
	if err := log.SetContent("LoggerImpl"); err != nil {
		return err
	}
	if _, err := arch.Bind(soleil.Binding{
		Client:   soleil.Endpoint{Component: "Sensor", Interface: "readings"},
		Server:   soleil.Endpoint{Component: "Logger", Interface: "in"},
		Protocol: soleil.Asynchronous, BufferSize: 8,
	}); err != nil {
		return err
	}

	// Non-functional view: the sensor is hard real-time (NHRT in
	// immortal memory), the logger is a regular heap thread.
	nhrt, err := arch.NewThreadDomain("rtDomain", soleil.DomainDesc{Kind: soleil.NoHeapRealtimeThread, Priority: 30})
	if err != nil {
		return err
	}
	reg, err := arch.NewThreadDomain("regDomain", soleil.DomainDesc{Kind: soleil.RegularThread, Priority: 5})
	if err != nil {
		return err
	}
	imm, err := arch.NewMemoryArea("imm", soleil.AreaDesc{Kind: soleil.ImmortalMemory, Size: 64 << 10})
	if err != nil {
		return err
	}
	heap, err := arch.NewMemoryArea("heap", soleil.AreaDesc{Kind: soleil.HeapMemory})
	if err != nil {
		return err
	}
	for _, edge := range []struct{ p, c *soleil.Component }{
		{imm, nhrt}, {nhrt, sen}, {heap, reg}, {reg, log},
	} {
		if err := arch.AddChild(edge.p, edge.c); err != nil {
			return err
		}
	}

	// 2. Validate RTSJ conformance. The binding crosses from immortal
	//    to heap memory, so the validator demands a cross-scope
	//    communication pattern and proposes one; apply the suggestion
	//    and re-validate.
	report := soleil.Validate(arch)
	for _, d := range report.Errors() {
		fmt.Println("validator:", d)
	}
	if changed, err := soleil.ApplySuggestedPatterns(arch); err != nil {
		return err
	} else {
		for _, b := range changed {
			fmt.Printf("applied pattern %q to %s\n", b.Pattern, b)
		}
	}
	if report = soleil.Validate(arch); !report.OK() {
		return fmt.Errorf("architecture still refused: %v", report.Errors())
	}
	fmt.Println("architecture is RTSJ-compliant")

	// 3. Register contents and deploy.
	fw := soleil.New()
	loggerContent := &logger{}
	if err := fw.Register("SensorImpl", func() soleil.Content { return &sensor{} }); err != nil {
		return err
	}
	if err := fw.Register("LoggerImpl", func() soleil.Content { return loggerContent }); err != nil {
		return err
	}
	sys, err := fw.Deploy(arch, soleil.Soleil)
	if err != nil {
		return err
	}

	// 4. Run 95ms of simulated time: ten 10ms sensor periods.
	if err := sys.RunFor(95 * time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("logger received %d records:\n", len(loggerContent.records))
	for _, r := range loggerContent.records {
		fmt.Println(" ", r)
	}
	th, _ := sys.Thread("Sensor")
	st := th.Task().Stats()
	fmt.Printf("sensor: releases=%d completions=%d misses=%d\n", st.Releases, st.Completions, st.Misses)
	return nil
}
