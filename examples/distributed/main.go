// Distributed: two independently deployed systems joined by a
// distributed asynchronous binding (the paper's future-work extension,
// Sect. 7, built on the deep-copy discipline: only value messages
// cross the node boundary).
//
// A telemetry producer runs in one system (hard-RT deployment); a
// ground-station consumer runs in another. The producer's client
// interface is exported over a loopback TCP transport; the consumer
// imports it into its sink component.
//
// Both systems share one metrics registry and one tracer, so the
// observability endpoints aggregate them and each telemetry frame
// renders as a single causal trace spanning both systems.
//
//	go run ./examples/distributed
//	go run ./examples/distributed -metrics 127.0.0.1:9090 -trace-json trace.json
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"soleil"
	"soleil/internal/dist"
)

// telemetry is the value message crossing the node boundary.
type telemetry struct {
	Seq     int
	Reading float64
}

type producer struct {
	svc *soleil.Services
	seq int
}

func (p *producer) Init(svc *soleil.Services) error { p.svc = svc; return nil }

func (p *producer) Invoke(*soleil.Env, string, string, any) (any, error) {
	return nil, fmt.Errorf("producer serves nothing")
}

func (p *producer) Activate(env *soleil.Env) error {
	p.seq++
	port, err := p.svc.Port("downlink")
	if err != nil {
		return err
	}
	return port.Send(env, "telemetry", telemetry{Seq: p.seq, Reading: float64(p.seq) * 1.5})
}

type groundStation struct {
	received []telemetry
}

func (g *groundStation) Init(*soleil.Services) error { return nil }

func (g *groundStation) Invoke(env *soleil.Env, itf, op string, arg any) (any, error) {
	t, ok := arg.(telemetry)
	if !ok {
		return nil, fmt.Errorf("ground station received %T", arg)
	}
	g.received = append(g.received, t)
	return nil, nil
}

func buildProducerSystem(content soleil.Content, reg *soleil.MetricsRegistry, tr *soleil.Tracer) (*soleil.System, error) {
	arch := soleil.NewArchitecture("spacecraft")
	src, err := arch.NewActive("Telemetry", soleil.Activation{Kind: soleil.SporadicActivation})
	if err != nil {
		return nil, err
	}
	if err := src.AddInterface(soleil.Interface{Name: "downlink", Role: soleil.ClientRole, Signature: "ITelemetry"}); err != nil {
		return nil, err
	}
	if err := src.SetContent("TelemetryImpl"); err != nil {
		return nil, err
	}
	td, err := arch.NewThreadDomain("rt", soleil.DomainDesc{Kind: soleil.NoHeapRealtimeThread, Priority: 28})
	if err != nil {
		return nil, err
	}
	imm, err := arch.NewMemoryArea("imm", soleil.AreaDesc{Kind: soleil.ImmortalMemory, Size: 64 << 10})
	if err != nil {
		return nil, err
	}
	if err := arch.AddChild(imm, td); err != nil {
		return nil, err
	}
	if err := arch.AddChild(td, src); err != nil {
		return nil, err
	}
	fw := soleil.New()
	if err := fw.Register("TelemetryImpl", func() soleil.Content { return content }); err != nil {
		return nil, err
	}
	return fw.DeployConfig(arch, soleil.DeployOptions{Mode: soleil.Soleil, Metrics: reg, Tracer: tr})
}

func buildConsumerSystem(content soleil.Content, reg *soleil.MetricsRegistry, tr *soleil.Tracer) (*soleil.System, error) {
	arch := soleil.NewArchitecture("ground")
	snk, err := arch.NewPassive("Station")
	if err != nil {
		return nil, err
	}
	if err := snk.AddInterface(soleil.Interface{Name: "uplink", Role: soleil.ServerRole, Signature: "ITelemetry"}); err != nil {
		return nil, err
	}
	if err := snk.SetContent("StationImpl"); err != nil {
		return nil, err
	}
	heap, err := arch.NewMemoryArea("heap", soleil.AreaDesc{Kind: soleil.HeapMemory})
	if err != nil {
		return nil, err
	}
	if err := arch.AddChild(heap, snk); err != nil {
		return nil, err
	}
	fw := soleil.New()
	if err := fw.Register("StationImpl", func() soleil.Content { return content }); err != nil {
		return nil, err
	}
	return fw.DeployConfig(arch, soleil.DeployOptions{Mode: soleil.Soleil, Metrics: reg, Tracer: tr})
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	metricsAddr := flag.String("metrics", "",
		"serve the shared observability endpoints on HOST:PORT (\":0\" picks a free port)")
	traceJSON := flag.String("trace-json", "",
		"write a Chrome trace_event JSON file of the cross-system run")
	flag.Parse()

	dist.RegisterPayload(telemetry{})

	// One registry and one tracer shared by both deployments: the
	// exposition aggregates the two systems, and spans recorded on
	// either side of the wire land in the same ring.
	reg := soleil.NewMetricsRegistry()
	tr := soleil.NewTracer(0)

	prodContent := &producer{}
	station := &groundStation{}
	producerSys, err := buildProducerSystem(prodContent, reg, tr)
	if err != nil {
		return err
	}
	consumerSys, err := buildConsumerSystem(station, reg, tr)
	if err != nil {
		return err
	}

	if *metricsAddr != "" {
		bound, shutdown, err := soleil.ServeObservability(*metricsAddr, soleil.ObservabilityOptions{
			Registry: reg, Tracer: tr,
		})
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Printf("observability: http://%s/{metrics,healthz,top,trace}\n", bound)
	}

	// Join the two systems over loopback TCP.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	clientConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return err
	}
	serverConn := <-accepted

	if err := dist.Export(producerSys, "Telemetry", "downlink", "uplink", dist.NewConn(clientConn)); err != nil {
		return err
	}
	importer, err := dist.Import(consumerSys, "Station", dist.NewConn(serverConn))
	if err != nil {
		return err
	}
	if err := producerSys.Start(); err != nil {
		return err
	}
	if err := consumerSys.Start(); err != nil {
		return err
	}
	go importer.Serve()

	// Drive eight telemetry frames from the producer side.
	env, closeEnv, err := producerSys.NewEnv(false)
	if err != nil {
		return err
	}
	defer closeEnv()
	node, _ := producerSys.Node("Telemetry")
	for i := 0; i < 8; i++ {
		if err := node.Activate(env); err != nil {
			return err
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for importer.Delivered() < 8 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_ = clientConn.Close()
	importer.Wait()
	if err := importer.Err(); err != nil {
		return err
	}

	fmt.Printf("ground station received %d frames over TCP:\n", len(station.received))
	for _, t := range station.received {
		fmt.Printf("  frame %d: reading %.1f\n", t.Seq, t.Reading)
	}

	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace spans to %s (one causal tree per frame, spanning both systems)\n",
			tr.Total(), *traceJSON)
	}
	return nil
}
