// Factory: the paper's motivation example (Sect. 2.2, Fig. 4) loaded
// from its XML architecture description and executed on the simulated
// RTSJ runtime in all three infrastructure modes.
//
// A production line emits a measurement every 10 ms on a no-heap
// real-time thread (priority 30, immortal memory). A monitoring
// system (NHRT, priority 25) evaluates each measurement; anomalies go
// synchronously to a worker console living in a 28 KB scoped memory
// (entered via the scope-enter pattern), and every measurement is
// forwarded asynchronously to a non-real-time audit log on a regular
// heap thread.
//
//	go run ./examples/factory
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"soleil"
)

// measurement is the production line's message.
type measurement struct {
	Seq   int
	Value float64
}

// DeepCopy supports the deep-copy pattern on cross-area bindings.
func (m measurement) DeepCopy() any { return m }

// productionLine emits one measurement per period; every 8th breaches
// the threshold.
type productionLine struct {
	svc *soleil.Services
	seq int
}

func (p *productionLine) Init(svc *soleil.Services) error { p.svc = svc; return nil }

func (p *productionLine) Invoke(*soleil.Env, string, string, any) (any, error) {
	return nil, fmt.Errorf("production line serves no interface")
}

func (p *productionLine) Activate(env *soleil.Env) error {
	p.seq++
	value := float64(p.seq%8) * 12 // 0..84; seq%8==7 -> 84? keep below
	if p.seq%8 == 0 {
		value = 97 // anomaly
	}
	port, err := p.svc.Port("iMonitor")
	if err != nil {
		return err
	}
	if err := port.Send(env, "report", measurement{Seq: p.seq, Value: value}); err != nil {
		return err
	}
	// Model the production cycle's CPU demand: the monitoring thread
	// (priority 25) is released by the Send above but cannot start
	// until this NHRT (priority 30) finishes its 1ms of work.
	return env.Sched().Consume(time.Millisecond)
}

// monitoringSystem evaluates measurements against a threshold.
type monitoringSystem struct {
	svc       *soleil.Services
	evaluated int
}

func (m *monitoringSystem) Init(svc *soleil.Services) error { m.svc = svc; return nil }

func (m *monitoringSystem) Invoke(env *soleil.Env, itf, op string, arg any) (any, error) {
	meas, ok := arg.(measurement)
	if !ok {
		return nil, fmt.Errorf("monitoring system received %T", arg)
	}
	m.evaluated++
	// Model the evaluation cost.
	if tc := env.Sched(); tc != nil {
		if err := tc.Consume(500 * time.Microsecond); err != nil {
			return nil, err
		}
	}
	if meas.Value > 90 {
		console, err := m.svc.Port("iConsole")
		if err != nil {
			return nil, err
		}
		if _, err := console.Call(env, "display", meas); err != nil {
			return nil, err
		}
	}
	audit, err := m.svc.Port("iLog")
	if err != nil {
		return nil, err
	}
	return nil, audit.Send(env, "log", meas)
}

// console renders alerts inside its scoped memory.
type console struct {
	alerts []string
}

func (c *console) Init(*soleil.Services) error { return nil }

func (c *console) Invoke(env *soleil.Env, itf, op string, arg any) (any, error) {
	meas := arg.(measurement)
	line := fmt.Sprintf("ALERT seq=%d value=%.1f", meas.Seq, meas.Value)
	// This allocation lands in the console's 28 KB scope and is
	// reclaimed when the invocation leaves it.
	if _, err := env.Mem().Alloc(int64(len(line)), line); err != nil {
		return nil, err
	}
	c.alerts = append(c.alerts, line)
	return nil, nil
}

// audit records every measurement on the heap.
type audit struct {
	logged int
}

func (a *audit) Init(*soleil.Services) error { return nil }

func (a *audit) Invoke(env *soleil.Env, itf, op string, arg any) (any, error) {
	a.logged++
	return nil, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	path := filepath.Join("examples", "factory", "factory.xml")
	if _, err := os.Stat(path); err != nil {
		path = "factory.xml" // run from the example directory
	}

	for _, mode := range []soleil.Mode{soleil.Soleil, soleil.MergeAll, soleil.UltraMerge} {
		fw := soleil.New()
		arch, err := fw.LoadADL(path)
		if err != nil {
			return err
		}
		if report := fw.Validate(arch); !report.OK() {
			return fmt.Errorf("architecture refused: %v", report.Errors())
		}

		pl := &productionLine{}
		ms := &monitoringSystem{}
		con := &console{}
		aud := &audit{}
		for class, content := range map[string]soleil.Content{
			"ProductionLineImpl": pl, "MonitoringSystemImpl": ms,
			"ConsoleImpl": con, "AuditImpl": aud,
		} {
			content := content
			if err := fw.Register(class, func() soleil.Content { return content }); err != nil {
				return err
			}
		}

		sys, err := fw.Deploy(arch, mode)
		if err != nil {
			return err
		}
		if err := sys.RunFor(155 * time.Millisecond); err != nil {
			return err
		}

		fmt.Printf("=== mode %v ===\n", mode)
		fmt.Printf("  produced=%d evaluated=%d alerts=%d logged=%d\n",
			pl.seq, ms.evaluated, len(con.alerts), aud.logged)
		for _, a := range con.alerts {
			fmt.Println("   ", a)
		}
		mon, _ := sys.Thread("MonitoringSystem")
		st := mon.Task().Stats()
		fmt.Printf("  monitoring thread: releases=%d maxResponse=%v startLatency=%v\n",
			st.Releases, st.MaxResponse, st.MaxStartLatency)
		scope, _ := sys.MemoryRuntime().Scope("cscope")
		fmt.Printf("  console scope: %d allocations, %d bytes live after run\n",
			scope.Allocations(), scope.Consumed())
	}
	return nil
}
