// Tailoring: one business architecture, several real-time
// deployments (Sect. 3.2).
//
// The paper's design methodology keeps the functional (business) view
// separate from the thread and memory management views, so "the
// execution characteristics of systems can be smoothly changed by
// designing several different assemblies of components into
// ThreadDomains and MemoryAreas". This example takes a single
// business view of the factory and deploys it twice:
//
//   - hard real-time: NHRT threads in immortal memory, console in a
//     scope — the Fig. 4 deployment;
//   - soft real-time: everything on regular heap threads.
//
// Both deployments run the same content classes; only the views
// differ.
//
//	go run ./examples/tailoring
package main

import (
	"fmt"
	"os"
	"time"

	"soleil"
)

// relay forwards everything it receives to its single client port if
// one is bound, counting traffic.
type relay struct {
	svc  *soleil.Services
	out  string
	seen int
}

func newRelay(out string) *relay { return &relay{out: out} }

func (r *relay) Init(svc *soleil.Services) error { r.svc = svc; return nil }

func (r *relay) Invoke(env *soleil.Env, itf, op string, arg any) (any, error) {
	r.seen++
	if r.out == "" {
		return arg, nil
	}
	port, err := r.svc.Port(r.out)
	if err != nil {
		return nil, err
	}
	return nil, port.Send(env, op, arg)
}

// ticker produces one message per period.
type ticker struct {
	relay
	seq int
}

func (t *ticker) Activate(env *soleil.Env) error {
	t.seq++
	port, err := t.svc.Port(t.out)
	if err != nil {
		return err
	}
	return port.Send(env, "tick", t.seq)
}

func business() soleil.BusinessView {
	return soleil.BusinessView{
		Name: "pipeline",
		Components: []soleil.BusinessComponent{
			{Name: "Source", Kind: soleil.ActiveKind,
				Activation: soleil.Activation{Kind: soleil.PeriodicActivation, Period: 10 * time.Millisecond},
				Content:    "SourceImpl",
				Interfaces: []soleil.Interface{{Name: "out", Role: soleil.ClientRole, Signature: "ITick"}}},
			{Name: "Stage", Kind: soleil.ActiveKind,
				Activation: soleil.Activation{Kind: soleil.SporadicActivation},
				Content:    "StageImpl",
				Interfaces: []soleil.Interface{
					{Name: "in", Role: soleil.ServerRole, Signature: "ITick"},
					{Name: "out", Role: soleil.ClientRole, Signature: "ITick"}}},
			{Name: "Sink", Kind: soleil.ActiveKind,
				Activation: soleil.Activation{Kind: soleil.SporadicActivation},
				Content:    "SinkImpl",
				Interfaces: []soleil.Interface{{Name: "in", Role: soleil.ServerRole, Signature: "ITick"}}},
		},
		Bindings: []soleil.Binding{
			{Client: soleil.Endpoint{Component: "Source", Interface: "out"},
				Server:   soleil.Endpoint{Component: "Stage", Interface: "in"},
				Protocol: soleil.Asynchronous, BufferSize: 8},
			{Client: soleil.Endpoint{Component: "Stage", Interface: "out"},
				Server:   soleil.Endpoint{Component: "Sink", Interface: "in"},
				Protocol: soleil.Asynchronous, BufferSize: 8},
		},
	}
}

// hardRT deploys the pipeline under hard real-time constraints.
func hardRT() (soleil.ThreadView, soleil.MemoryView) {
	return soleil.ThreadView{Domains: []soleil.DomainAssignment{
			{Name: "nhrtHigh", Desc: soleil.DomainDesc{Kind: soleil.NoHeapRealtimeThread, Priority: 32}, Members: []string{"Source"}},
			{Name: "nhrtMid", Desc: soleil.DomainDesc{Kind: soleil.NoHeapRealtimeThread, Priority: 26}, Members: []string{"Stage"}},
			{Name: "rtLow", Desc: soleil.DomainDesc{Kind: soleil.RealtimeThread, Priority: 18}, Members: []string{"Sink"}},
		}},
		soleil.MemoryView{Areas: []soleil.AreaAssignment{
			{Name: "imm", Desc: soleil.AreaDesc{Kind: soleil.ImmortalMemory, Size: 256 << 10},
				Members: []string{"nhrtHigh", "nhrtMid", "rtLow"}},
		}}
}

// softRT deploys the same pipeline as an ordinary application.
func softRT() (soleil.ThreadView, soleil.MemoryView) {
	return soleil.ThreadView{Domains: []soleil.DomainAssignment{
			{Name: "workers", Desc: soleil.DomainDesc{Kind: soleil.RegularThread, Priority: 5},
				Members: []string{"Source", "Stage", "Sink"}},
		}},
		soleil.MemoryView{Areas: []soleil.AreaAssignment{
			{Name: "heap", Desc: soleil.AreaDesc{Kind: soleil.HeapMemory},
				Members: []string{"workers"}},
		}}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func deployAndRun(label string, tv soleil.ThreadView, mv soleil.MemoryView) error {
	fw := soleil.New()
	arch, report, err := fw.Design(business(), tv, mv)
	if err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	if !report.OK() {
		return fmt.Errorf("%s: %v", label, report.Errors())
	}
	source := &ticker{relay: *newRelay("out")}
	stage := newRelay("out")
	sink := newRelay("")
	for class, content := range map[string]soleil.Content{
		"SourceImpl": source, "StageImpl": stage, "SinkImpl": sink,
	} {
		content := content
		if err := fw.Register(class, func() soleil.Content { return content }); err != nil {
			return err
		}
	}
	sys, err := fw.Deploy(arch, soleil.MergeAll)
	if err != nil {
		return err
	}
	if err := sys.RunFor(95 * time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("=== %s ===\n", label)
	fmt.Printf("  source ticks=%d stage relayed=%d sink received=%d\n",
		source.seq, stage.seen, sink.seen)
	for _, name := range []string{"Source", "Stage", "Sink"} {
		th, ok := sys.Thread(name)
		if !ok {
			continue
		}
		fmt.Printf("  %-7s kind=%-8v releases=%d\n", name, th.Kind(), th.Task().Stats().Releases)
	}
	return nil
}

func run() error {
	tv, mv := hardRT()
	if err := deployAndRun("hard real-time tailoring (NHRT, immortal)", tv, mv); err != nil {
		return err
	}
	tv, mv = softRT()
	return deployAndRun("soft tailoring (regular threads, heap)", tv, mv)
}
