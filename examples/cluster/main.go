// Cluster: one architecture, three nodes, zero hand-written
// transport wiring (the paper's distribution future work, Sect. 7,
// taken to a full deployment plane).
//
// cluster.xml describes a processing pipeline; deploy.xml maps its
// stages onto three nodes. The planner partitions the component graph
// and rewrites every binding that crosses a node boundary into a
// distributed link; each node agent brings up its slice, dials its
// peers, and re-imports the links under fault supervision. The demo
// then kills the middle node mid-load and restarts it on fresh ports
// to show supervised reconvergence, and aggregates all three nodes
// through the coordinator.
//
//	go run ./examples/cluster
//
// The same files drive the CLI across real processes:
//
//	soleil serve -node alpha -adl examples/cluster/cluster.xml -deploy examples/cluster/deploy.xml
package main

import (
	_ "embed"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"soleil/internal/adl"
	"soleil/internal/assembly"
	"soleil/internal/cluster"
	"soleil/internal/dist"
	"soleil/internal/membrane"
	"soleil/internal/rtsj/thread"
	"soleil/internal/validate"
)

//go:embed cluster.xml
var clusterXML string

//go:embed deploy.xml
var deployXML string

// sensorContent emits one sample per periodic release.
type sensorContent struct {
	svc *membrane.Services
	seq atomic.Int64
}

func (s *sensorContent) Init(svc *membrane.Services) error { s.svc = svc; return nil }

func (s *sensorContent) Invoke(*thread.Env, string, string, any) (any, error) {
	return nil, fmt.Errorf("sensor serves no interface")
}

func (s *sensorContent) Activate(env *thread.Env) error {
	out, err := s.svc.Port("out")
	if err != nil {
		return err
	}
	// A full link queue while the worker node is down is backpressure,
	// not failure: drop the sample and keep sampling.
	if err := out.Send(env, "put", s.seq.Add(1)); err != nil &&
		!errors.Is(err, dist.ErrBackpressure) {
		return err
	}
	return nil
}

// workerContent enriches each sample through its local cache and
// forwards the result.
type workerContent struct {
	svc      *membrane.Services
	enriched atomic.Int64
}

func (w *workerContent) Init(svc *membrane.Services) error { w.svc = svc; return nil }

func (w *workerContent) Activate(*thread.Env) error { return nil }

func (w *workerContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	cache, err := w.svc.Port("cache")
	if err != nil {
		return nil, err
	}
	v, err := cache.Call(env, "get", arg)
	if err != nil {
		return nil, err
	}
	w.enriched.Add(1)
	out, err := w.svc.Port("out")
	if err != nil {
		return nil, err
	}
	if err := out.Send(env, "put", v); err != nil && !errors.Is(err, dist.ErrBackpressure) {
		return nil, err
	}
	return nil, nil
}

// cacheContent is the worker's node-local synchronous dependency.
type cacheContent struct {
	hits atomic.Int64
}

func (c *cacheContent) Init(*membrane.Services) error { return nil }

func (c *cacheContent) Invoke(_ *thread.Env, itf, op string, arg any) (any, error) {
	c.hits.Add(1)
	return arg, nil
}

// sinkContent counts what made it through the whole pipeline.
type sinkContent struct {
	got atomic.Int64
}

func (s *sinkContent) Init(*membrane.Services) error { return nil }

func (s *sinkContent) Activate(*thread.Env) error { return nil }

func (s *sinkContent) Invoke(*thread.Env, string, string, any) (any, error) {
	s.got.Add(1)
	return nil, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	arch, err := adl.DecodeString(clusterXML)
	if err != nil {
		return err
	}
	dep, err := adl.DecodeDeploymentString(deployXML)
	if err != nil {
		return err
	}
	report, err := validate.ValidateDeployment(arch, dep)
	if err != nil {
		return err
	}
	fmt.Printf("deployment of %q over %d nodes: RTSJ-compliant = %v\n",
		arch.Name(), len(dep.Nodes()), report.OK())

	plan, err := cluster.Compute(arch, dep)
	if err != nil {
		return err
	}
	for _, np := range plan.Nodes() {
		fmt.Printf("  node %-6s components=%v exports=%d imports=%d\n",
			np.Name, np.Primitives, len(np.Exports), len(np.Imports))
	}
	for _, l := range plan.Links {
		fmt.Printf("  link %s: %s -> %s (buffer %d)\n", l.ID, l.ClientNode, l.ServerNode, l.BufferSize)
	}

	sensor := &sensorContent{}
	worker := &workerContent{}
	cache := &cacheContent{}
	sink := &sinkContent{}
	reg := assembly.NewRegistry()
	for class, content := range map[string]membrane.Content{
		"SensorImpl": sensor, "WorkerImpl": worker, "CacheImpl": cache, "SinkImpl": sink,
	} {
		c := content
		if err := reg.Register(class, func() membrane.Content { return c }); err != nil {
			return err
		}
	}

	// All three agents live in this process, so the descriptor's fixed
	// ports are overridden with ":0" and a resolver maps node names to
	// whatever was actually bound — the same mechanism a service
	// registry would provide in a real deployment.
	var mu sync.Mutex
	addrs := map[string]string{}
	metrics := map[string]string{}
	resolve := func(node string) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		a, ok := addrs[node]
		if !ok {
			return "", fmt.Errorf("node %s not registered yet", node)
		}
		return a, nil
	}
	agents := map[string]*cluster.Agent{}
	start := func(node string) (*cluster.Agent, error) {
		ag, err := cluster.Start(cluster.AgentConfig{
			Node:        node,
			Plan:        plan,
			Registry:    reg,
			ListenAddr:  "127.0.0.1:0",
			MetricsAddr: "127.0.0.1:0",
			Resolver:    resolve,
			Beat:        50 * time.Millisecond,
			Dial:        dist.DialConfig{Timeout: 2 * time.Second, Base: 5 * time.Millisecond, Max: 100 * time.Millisecond},
		})
		if err != nil {
			return nil, err
		}
		mu.Lock()
		addrs[node] = ag.Addr()
		metrics[node] = ag.MetricsAddr()
		agents[node] = ag
		mu.Unlock()
		return ag, nil
	}
	defer func() {
		for _, ag := range agents {
			ag.Close()
		}
	}()

	// Deliberately out of dependency order: alpha dials beta before
	// beta exists and converges through the link dialer's backoff.
	for _, node := range []string{"alpha", "beta", "gamma"} {
		if _, err := start(node); err != nil {
			return err
		}
	}
	if err := waitFor(10*time.Second, func() bool { return sink.got.Load() >= 25 }); err != nil {
		return fmt.Errorf("pipeline never converged: %w", err)
	}
	fmt.Printf("\npipeline flowing: sink received %d results (cache hits %d)\n",
		sink.got.Load(), cache.hits.Load())

	coord := cluster.NewCoordinator(plan, func(node string) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		return metrics[node], nil
	})
	st := coord.Status()
	fmt.Printf("coordinator: cluster healthy = %v\n", st.Healthy)
	for _, n := range st.Nodes {
		fmt.Printf("  %-6s reachable=%-5v healthy=%v\n", n.Node, n.Reachable, n.Healthy)
	}

	// Kill the middle node mid-load, then bring it back on fresh
	// ports. The sensor keeps sampling (dropping into backpressure),
	// alpha's link dialer reconnects, and the pipeline reconverges
	// without any component being told about the outage.
	fmt.Println("\nkilling node beta mid-load ...")
	agents["beta"].Close()
	mu.Lock()
	delete(agents, "beta")
	mu.Unlock()
	time.Sleep(300 * time.Millisecond)
	if st := coord.Status(); st.Healthy {
		return fmt.Errorf("coordinator still reports healthy with beta down")
	}
	fmt.Println("coordinator degraded; restarting beta ...")
	atKill := sink.got.Load()
	if _, err := start("beta"); err != nil {
		return err
	}
	if err := waitFor(10*time.Second, func() bool { return sink.got.Load() >= atKill+25 }); err != nil {
		return fmt.Errorf("pipeline never reconverged: %w", err)
	}
	alpha := agents["alpha"]
	fmt.Printf("reconverged: sink at %d results, alpha reconnected %d time(s), cluster healthy = %v\n",
		sink.got.Load(), alpha.Reconnects(), coord.Status().Healthy)
	return nil
}

func waitFor(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("condition not met within %v", timeout)
}
