// Package main is the demonstration corpus for `soleil vet`: a small
// hydraulics system written to compile, vet and race cleanly while
// violating every source-level conformance rule the suite checks.
//
//	go run ./cmd/soleil vet -json -adl examples/lintbad/lintbad.xml ./examples/lintbad
//
// exits non-zero with at least one finding per rule:
//
//	SA01 — pump.sample is marked //soleil:noheap but allocates
//	SA02 — pump.calibrate stores a scope-allocated buffer into the
//	       longer-lived receiver
//	SA03 — pump.Invoke sleeps and blocks on a channel inside its
//	       run-to-completion section
//	SA04 — the registrations disagree with lintbad.xml: "valve" is
//	       declared but never registered, "gauge" is registered but
//	       not declared, active Pump's content has no Activate method,
//	       passive Panel's content has one, and Panel's server
//	       interface iPanel is never dispatched on
package main

import (
	"fmt"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/membrane"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/thread"
)

// pump drives the architecture's active Pump component. It implements
// membrane.Content only — no Activate — so registering it for an
// active component is an SA04 error.
type pump struct {
	readings []float64
	buf      []float64
	cmds     chan int
}

func (p *pump) Init(svc *membrane.Services) error {
	p.cmds = make(chan int, 1)
	return nil
}

func (p *pump) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	if itf == "iFlow" {
		time.Sleep(time.Millisecond) // SA03: sleeping in a run-to-completion section
		cmd := <-p.cmds              // SA03: bare receive may block forever
		return cmd, nil
	}
	return nil, fmt.Errorf("pump: unknown interface %q", itf)
}

// sample claims the no-heap contract and breaks it.
//
//soleil:noheap
func (p *pump) sample(v float64) string {
	p.readings = append(p.readings, v)   // SA01: append may grow onto the heap
	return fmt.Sprintf("%v", p.readings) // SA01: fmt allocates (and boxes)
}

// calibrate runs a measurement inside a temporary scope and leaks the
// scratch buffer out of it through the receiver.
func (p *pump) calibrate(ctx *memory.Context, scratch *memory.Area) error {
	return ctx.Enter(scratch, func() error {
		p.buf = make([]float64, 16) // SA02: scoped allocation stored into longer-lived state
		return nil
	})
}

// panel backs the passive Panel component but declares an Activate
// method that will never run (SA04 warning).
type panel struct{}

func (panel) Init(svc *membrane.Services) error { return nil }
func (panel) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	return nil, nil
}
func (panel) Activate(env *thread.Env) error { return nil }

// gauge is registered below but appears nowhere in lintbad.xml (SA04
// warning).
type gauge struct{}

func (gauge) Init(svc *membrane.Services) error { return nil }
func (gauge) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	return nil, nil
}

func register(r *assembly.Registry) error {
	// "valve" is declared by lintbad.xml but never registered (SA04 error).
	if err := r.Register("pump", func() membrane.Content { return &pump{} }); err != nil {
		return err
	}
	if err := r.Register("panel", func() membrane.Content { return panel{} }); err != nil {
		return err
	}
	return r.Register("gauge", func() membrane.Content { return gauge{} })
}

func main() {
	r := assembly.NewRegistry()
	if err := register(r); err != nil {
		fmt.Println("lintbad:", err)
		return
	}
	p := &pump{}
	_ = p.sample(1.0)
	fmt.Println("lintbad: registered a deliberately non-conforming system; run soleil vet on it")
}
