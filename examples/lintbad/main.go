// Package main is the demonstration corpus for `soleil vet`: a small
// hydraulics system written to compile, vet and race cleanly while
// violating every source-level conformance rule the suite checks.
//
//	go run ./cmd/soleil vet -json -adl examples/lintbad/lintbad.xml ./examples/lintbad
//
// exits non-zero with at least one finding per rule:
//
//	SA01 — pump.sample is marked //soleil:noheap but allocates
//	SA02 — pump.calibrate stores a scope-allocated buffer into the
//	       longer-lived receiver
//	SA03 — pump.Invoke sleeps and blocks on a channel inside its
//	       run-to-completion section
//	SA04 — the registrations disagree with lintbad.xml: "valve" is
//	       declared but never registered, "gauge" is registered but
//	       not declared, active Pump's content has no Activate method
//	       and passive Panel's content has one
//
// and, under `soleil vet -arch`, every whole-architecture rule too:
//
//	SA05 — the two synchronous Pump/Panel bindings close a wait cycle
//	       both Invokes really perform
//	SA06 — pump.drainA and pump.drainB nest mu and iomu in opposite
//	       orders on paths reachable from Invoke
//	SA07 — pump hands its readings slice across the iPanel binding by
//	       reference
//	SA08 — Pump declares cost=1ms but its Invoke path drains the
//	       channel in an unbounded loop and consumes 5ms of CPU
//	SA09 — the contracted Pump→Tank binding promises a 1ms latency
//	       budget, but four queued messages ahead of a 10ms-period
//	       server already cost 40ms before Tank even runs
//	SA10 — Tank serves 4ms of work per release (capacity 250/s) while
//	       its contracts admit 150+200 = 350 msg/s, and the 4-slot
//	       Pump→Tank buffer refills faster than one drain per period
//	SA11 — pump.Invoke spawns watch(), which loops forever with no
//	       stop signal, once per dispatch
package main

import (
	"fmt"
	"sync"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/membrane"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/thread"
)

// pump drives the architecture's active Pump component. It implements
// membrane.Content only — no Activate — so registering it for an
// active component is an SA04 error.
type pump struct {
	svc      *membrane.Services
	mu       sync.Mutex
	iomu     sync.Mutex
	readings []float64
	buf      []float64
	cmds     chan int
}

func (p *pump) Init(svc *membrane.Services) error {
	p.svc = svc
	p.cmds = make(chan int, 1)
	return nil
}

func (p *pump) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	go p.watch() // SA11: an unbounded goroutine per dispatch, leaked forever
	if itf == "iFlow" {
		time.Sleep(time.Millisecond) // SA03: sleeping in a run-to-completion section
		cmd := <-p.cmds              // SA03: bare receive may block forever
		for len(p.cmds) > 0 {        // SA08: no constant trip count on a costed path
			<-p.cmds
		}
		if err := env.Sched().Consume(5 * time.Millisecond); err != nil { // SA08: 5ms demand against cost=1ms
			return nil, err
		}
		p.drainA()
		p.drainB()
		port, err := p.svc.Port("iPanel")
		if err != nil {
			return nil, err
		}
		// SA05: the synchronous call into Panel, whose Invoke calls back
		// over iFlow; SA07: the readings slice crosses by reference.
		if _, err := port.Call(env, "show", p.readings); err != nil {
			return nil, err
		}
		return cmd, nil
	}
	return nil, fmt.Errorf("pump: unknown interface %q", itf)
}

// watch polls the command queue forever. Spawned from Invoke with no
// context, no stop channel and no way to return, every dispatch leaks
// one more copy of it (SA11).
func (p *pump) watch() {
	for {
		if len(p.cmds) > 0 {
			continue
		}
	}
}

// drainA and drainB take the pump's two mutexes in opposite orders
// (SA06): two released threads interleaving them deadlock.
func (p *pump) drainA() {
	p.mu.Lock()
	p.iomu.Lock()
	p.readings = p.readings[:0]
	p.iomu.Unlock()
	p.mu.Unlock()
}

func (p *pump) drainB() {
	p.iomu.Lock()
	p.mu.Lock()
	p.buf = p.buf[:0]
	p.mu.Unlock()
	p.iomu.Unlock()
}

// sample claims the no-heap contract and breaks it.
//
//soleil:noheap
func (p *pump) sample(v float64) string {
	p.readings = append(p.readings, v)   // SA01: append may grow onto the heap
	return fmt.Sprintf("%v", p.readings) // SA01: fmt allocates (and boxes)
}

// calibrate runs a measurement inside a temporary scope and leaks the
// scratch buffer out of it through the receiver.
func (p *pump) calibrate(ctx *memory.Context, scratch *memory.Area) error {
	return ctx.Enter(scratch, func() error {
		p.buf = make([]float64, 16) // SA02: scoped allocation stored into longer-lived state
		return nil
	})
}

// panel backs the passive Panel component but declares an Activate
// method that will never run (SA04 warning). Its Invoke calls back
// into the pump over iFlow, closing the SA05 wait cycle.
type panel struct{ svc *membrane.Services }

func (pn *panel) Init(svc *membrane.Services) error { pn.svc = svc; return nil }
func (pn *panel) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	port, err := pn.svc.Port("iFlow")
	if err != nil {
		return nil, err
	}
	return port.Call(env, "ack", arg)
}
func (pn *panel) Activate(env *thread.Env) error { return nil }

// tank backs the active Tank component. The implementation itself is
// conformant — Tank's findings (SA09, SA10) are architectural: its
// declared 4ms cost cannot keep up with what its binding contracts
// admit.
type tank struct{}

func (tank) Init(svc *membrane.Services) error { return nil }
func (tank) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	return nil, nil
}
func (tank) Activate(env *thread.Env) error { return nil }

// gauge is registered below but appears nowhere in lintbad.xml (SA04
// warning).
type gauge struct{}

func (gauge) Init(svc *membrane.Services) error { return nil }
func (gauge) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	return nil, nil
}

func register(r *assembly.Registry) error {
	// "valve" is declared by lintbad.xml but never registered (SA04 error).
	if err := r.Register("pump", func() membrane.Content { return &pump{} }); err != nil {
		return err
	}
	if err := r.Register("panel", func() membrane.Content { return &panel{} }); err != nil {
		return err
	}
	if err := r.Register("tank", func() membrane.Content { return tank{} }); err != nil {
		return err
	}
	return r.Register("gauge", func() membrane.Content { return gauge{} })
}

func main() {
	r := assembly.NewRegistry()
	if err := register(r); err != nil {
		fmt.Println("lintbad:", err)
		return
	}
	p := &pump{}
	_ = p.sample(1.0)
	fmt.Println("lintbad: registered a deliberately non-conforming system; run soleil vet on it")
}
