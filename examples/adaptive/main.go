// Adaptive: runtime adaptation of a deployed system (Sect. 4.2).
//
// The factory's monitoring system reports anomalies to a primary
// worker console. At runtime — without stopping the system — the
// adapter introspects the deployed membranes, rebinds the console
// route to a backup console, and stops/restarts the audit component
// through its lifecycle controller. Every adaptation is checked
// against the RTSJ rules and recorded.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"os"

	"soleil"
)

type consoleContent struct {
	name      string
	displayed int
}

func (c *consoleContent) Init(*soleil.Services) error { return nil }

func (c *consoleContent) Invoke(env *soleil.Env, itf, op string, arg any) (any, error) {
	c.displayed++
	fmt.Printf("  [%s] %v\n", c.name, arg)
	return nil, nil
}

type producerContent struct {
	svc *soleil.Services
	seq int
}

func (p *producerContent) Init(svc *soleil.Services) error { p.svc = svc; return nil }

func (p *producerContent) Invoke(*soleil.Env, string, string, any) (any, error) {
	return nil, fmt.Errorf("producer serves no interface")
}

func (p *producerContent) Activate(env *soleil.Env) error {
	p.seq++
	port, err := p.svc.Port("alerts")
	if err != nil {
		return err
	}
	_, err = port.Call(env, "display", fmt.Sprintf("alert #%d", p.seq))
	return err
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// Architecture: one sporadic alerting component bound to a
	// primary console; a backup console stands by.
	arch := soleil.NewArchitecture("adaptive")
	alerter, err := arch.NewActive("Alerter", soleil.Activation{Kind: soleil.SporadicActivation})
	if err != nil {
		return err
	}
	if err := alerter.AddInterface(soleil.Interface{Name: "alerts", Role: soleil.ClientRole, Signature: "IDisplay"}); err != nil {
		return err
	}
	if err := alerter.SetContent("AlerterImpl"); err != nil {
		return err
	}
	mkConsole := func(name, class string) (*soleil.Component, error) {
		c, err := arch.NewPassive(name)
		if err != nil {
			return nil, err
		}
		if err := c.AddInterface(soleil.Interface{Name: "display", Role: soleil.ServerRole, Signature: "IDisplay"}); err != nil {
			return nil, err
		}
		return c, c.SetContent(class)
	}
	primary, err := mkConsole("PrimaryConsole", "PrimaryImpl")
	if err != nil {
		return err
	}
	backup, err := mkConsole("BackupConsole", "BackupImpl")
	if err != nil {
		return err
	}
	if _, err := arch.Bind(soleil.Binding{
		Client:   soleil.Endpoint{Component: "Alerter", Interface: "alerts"},
		Server:   soleil.Endpoint{Component: "PrimaryConsole", Interface: "display"},
		Protocol: soleil.Synchronous,
	}); err != nil {
		return err
	}
	td, err := arch.NewThreadDomain("rt", soleil.DomainDesc{Kind: soleil.RealtimeThread, Priority: 20})
	if err != nil {
		return err
	}
	imm, err := arch.NewMemoryArea("imm", soleil.AreaDesc{Kind: soleil.ImmortalMemory, Size: 128 << 10})
	if err != nil {
		return err
	}
	for _, e := range []struct{ p, c *soleil.Component }{
		{imm, td}, {td, alerter}, {imm, primary}, {imm, backup},
	} {
		if err := arch.AddChild(e.p, e.c); err != nil {
			return err
		}
	}
	if report := soleil.Validate(arch); !report.OK() {
		return fmt.Errorf("refused: %v", report.Errors())
	}

	// Deploy in SOLEIL mode — the mode that preserves membranes, and
	// with them lifecycle control and introspection.
	fw := soleil.New()
	alerterImpl := &producerContent{}
	primaryImpl := &consoleContent{name: "primary"}
	backupImpl := &consoleContent{name: "backup "}
	for class, content := range map[string]soleil.Content{
		"AlerterImpl": alerterImpl, "PrimaryImpl": primaryImpl, "BackupImpl": backupImpl,
	} {
		content := content
		if err := fw.Register(class, func() soleil.Content { return content }); err != nil {
			return err
		}
	}
	sys, err := fw.Deploy(arch, soleil.Soleil)
	if err != nil {
		return err
	}
	if err := sys.Start(); err != nil {
		return err
	}
	env, closeEnv, err := sys.NewEnv(false)
	if err != nil {
		return err
	}
	defer closeEnv()
	node, _ := sys.Node("Alerter")

	adapter, err := fw.Adapt(sys)
	if err != nil {
		return err
	}

	fmt.Println("--- three alerts to the primary console ---")
	for i := 0; i < 3; i++ {
		if err := node.Activate(env); err != nil {
			return err
		}
	}

	fmt.Println("--- introspection ---")
	snap := adapter.Introspect()
	fmt.Printf("mode %v, %d components, %d reified areas\n",
		snap.Mode, len(snap.Components), len(snap.Areas))
	for _, c := range snap.Components {
		fmt.Printf("  %-16s started=%v controllers=%v\n", c.Name, c.Started, c.Controllers)
	}

	fmt.Println("--- rebind alerts to the backup console ---")
	if err := adapter.Rebind("Alerter", "alerts", "BackupConsole", "display"); err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if err := node.Activate(env); err != nil {
			return err
		}
	}

	fmt.Println("--- lifecycle: stop the backup, alerts now fail fast ---")
	if err := adapter.Stop("BackupConsole"); err != nil {
		return err
	}
	if err := node.Activate(env); err != nil {
		fmt.Println("  refused as expected:", err)
	}
	if err := adapter.Start("BackupConsole"); err != nil {
		return err
	}
	if err := node.Activate(env); err != nil {
		return err
	}

	fmt.Println("--- adaptation history ---")
	for _, op := range adapter.History() {
		status := "ok"
		if op.Err != nil {
			status = op.Err.Error()
		}
		fmt.Printf("  %-7s %-45s %s\n", op.Kind, op.Detail, status)
	}
	fmt.Printf("primary displayed %d, backup displayed %d\n",
		primaryImpl.displayed, backupImpl.displayed)
	return nil
}
