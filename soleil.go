// Package soleil is a component framework for Java-style real-time
// embedded systems, reproducing Plsek, Loiret, Merle & Seinturier,
// "A Component Framework for Java-based Real-Time Embedded Systems"
// (Middleware 2008) in Go.
//
// The framework lets you describe a real-time system as a hierarchical
// component architecture with sharing, where the RTSJ concerns —
// which thread flavour runs a component (ThreadDomain: regular,
// real-time, or no-heap real-time) and which memory area it lives in
// (MemoryArea: heap, immortal, or scoped) — are first-class
// architectural entities, separate from the functional (business)
// architecture. The framework then:
//
//   - verifies the composition against the RTSJ rules (single parent
//     rule, NHRT×heap prohibition, cross-scope binding patterns, ...)
//     with immediate feedback during a three-view design flow;
//   - deploys the architecture onto a simulated RTSJ runtime
//     (priority-preemptive scheduling, scoped/immortal memory with
//     dynamic assignment-rule checking) in one of three
//     infrastructure modes — SOLEIL (fully reified membranes),
//     MERGE-ALL (membranes merged into their components), and
//     ULTRA-MERGE (one static unit);
//   - or generates the equivalent infrastructure as Go source code;
//   - and supports runtime adaptation (introspection, rebinding,
//     lifecycle) with RTSJ-safety checks.
//
// # Quick start
//
//	fw := soleil.New()
//	arch, err := fw.LoadADL("factory.xml")          // Fig. 4 dialect
//	report := fw.Validate(arch)                     // RTSJ conformance
//	_ = fw.Register("ConsoleImpl", newConsole)      // content classes
//	sys, err := fw.Deploy(arch, soleil.Soleil)      // or MergeAll, UltraMerge
//	err = sys.RunFor(100 * time.Millisecond)        // simulated time
//
// See examples/ for complete programs, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package soleil

import (
	"net"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/cluster"
	"soleil/internal/core"
	"soleil/internal/dist"
	"soleil/internal/fault"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/obs"
	"soleil/internal/qos"
	"soleil/internal/reconfig"
	"soleil/internal/rtsj/thread"
	"soleil/internal/validate"
	"soleil/internal/views"
)

// Framework is the main entry point; create one with New.
type Framework = core.Framework

// New creates a framework instance.
func New() *Framework { return core.New() }

// Architecture modelling (Fig. 2 metamodel).
type (
	// Architecture is a complete RT system architecture.
	Architecture = model.Architecture
	// Component is a node of the architecture.
	Component = model.Component
	// Interface is a functional access point of a component.
	Interface = model.Interface
	// Binding connects a client interface to a server interface.
	Binding = model.Binding
	// Endpoint identifies one side of a binding.
	Endpoint = model.Endpoint
	// Activation describes an active component's release parameters.
	Activation = model.Activation
	// DomainDesc carries a ThreadDomain's RTSJ properties.
	DomainDesc = model.DomainDesc
	// AreaDesc carries a MemoryArea's RTSJ properties.
	AreaDesc = model.AreaDesc
)

// NewArchitecture creates an empty architecture.
func NewArchitecture(name string) *Architecture { return model.NewArchitecture(name) }

// Metamodel enumerations.
const (
	// Component kinds (for view declarations).
	ActiveKind    = model.Active
	PassiveKind   = model.Passive
	CompositeKind = model.Composite

	PeriodicActivation  = model.PeriodicActivation
	SporadicActivation  = model.SporadicActivation
	AperiodicActivation = model.AperiodicActivation

	RegularThread        = model.RegularThread
	RealtimeThread       = model.RealtimeThread
	NoHeapRealtimeThread = model.NoHeapRealtimeThread

	HeapMemory     = model.HeapMemory
	ImmortalMemory = model.ImmortalMemory
	ScopedMemory   = model.ScopedMemory

	ClientRole = model.ClientRole
	ServerRole = model.ServerRole

	Synchronous  = model.Synchronous
	Asynchronous = model.Asynchronous
)

// Design methodology (Fig. 3).
type (
	// BusinessView is the functional architecture.
	BusinessView = views.BusinessView
	// BusinessComponent declares one functional component.
	BusinessComponent = views.BusinessComponent
	// ThreadView partitions active components into ThreadDomains.
	ThreadView = views.ThreadView
	// DomainAssignment deploys components into one ThreadDomain.
	DomainAssignment = views.DomainAssignment
	// MemoryView partitions the system into MemoryAreas.
	MemoryView = views.MemoryView
	// AreaAssignment deploys components into one MemoryArea.
	AreaAssignment = views.AreaAssignment
	// DesignFlow is one execution of the design methodology.
	DesignFlow = views.Flow
)

// NewDesignFlow starts the stepwise design flow from a business view.
func NewDesignFlow(b BusinessView) (*DesignFlow, error) { return views.NewFlow(b) }

// Validation.
type (
	// Report is the outcome of RTSJ conformance validation.
	Report = validate.Report
	// Diagnostic is one finding of the conformance checker.
	Diagnostic = validate.Diagnostic
)

// Validate checks an architecture against the RTSJ conformance rules.
func Validate(a *Architecture) Report { return validate.Validate(a) }

// ApplySuggestedPatterns fills in the cross-scope communication
// pattern of every binding that crosses memory areas but has none
// selected — the design flow's "possible solutions proposed" step.
func ApplySuggestedPatterns(a *Architecture) ([]*Binding, error) {
	return validate.ApplySuggestedPatterns(a)
}

// Deployment (Fig. 5, Sect. 4.3).
type (
	// System is a deployed, runnable system.
	System = assembly.System
	// Mode selects the infrastructure mode.
	Mode = assembly.Mode
	// Node is the executable form of one functional component.
	Node = assembly.Node
)

// Infrastructure modes.
const (
	Soleil     = assembly.Soleil
	MergeAll   = assembly.MergeAll
	UltraMerge = assembly.UltraMerge
)

// Content authoring: implement Content (and ActiveContent for active
// components), then register the class with Framework.Register.
type (
	// Content is the user-implemented functional code of a primitive
	// component.
	Content = membrane.Content
	// ActiveContent is content with its own activation logic.
	ActiveContent = membrane.ActiveContent
	// Services is the execution support handed to content at Init.
	Services = membrane.Services
	// Port is a client interface as seen by content.
	Port = membrane.Port
	// Env is the execution environment of a running thread.
	Env = thread.Env
)

// Runtime adaptation (Sect. 4.2).
type (
	// Adapter drives runtime adaptation of a deployed system.
	Adapter = reconfig.Manager
	// Snapshot is an introspection view of a deployed system.
	Snapshot = reconfig.Snapshot
)

// Distribution support (the paper's future-work extension): join two
// deployed systems with a distributed asynchronous binding.
type (
	// Transport carries serialized messages between systems.
	Transport = dist.Transport
	// Importer dispatches transported messages into a local
	// component.
	Importer = dist.Importer
)

// NewPipeTransport creates a connected in-process transport pair.
func NewPipeTransport() (Transport, Transport) { return dist.NewPipe() }

// NewBoundedPipeTransport creates a pipe pair with explicit buffer
// capacity and send deadline (ErrBackpressure on a stalled receiver).
func NewBoundedPipeTransport(capacity int, sendWait time.Duration) (Transport, Transport) {
	return dist.NewBoundedPipe(capacity, sendWait)
}

// NewConnTransport frames a stream connection as a transport.
func NewConnTransport(conn net.Conn) Transport { return dist.NewConn(conn) }

// RegisterPayload registers a message type for the wire encoding.
func RegisterPayload(v any) { dist.RegisterPayload(v) }

// Export routes a client interface of sys onto a transport.
func Export(sys *System, client, clientItf, serverItf string, t Transport) error {
	return dist.Export(sys, client, clientItf, serverItf, t)
}

// Import attaches a transport to a server component of sys.
func Import(sys *System, server string, t Transport) (*Importer, error) {
	return dist.Import(sys, server, t)
}

// Fault tolerance: deterministic fault injection, panic isolation,
// self-healing bindings and supervision (internal/fault).
type (
	// FaultSpec parameterizes deterministic fault injection.
	FaultSpec = fault.Spec
	// FaultLog is the fault subsystem's flight recorder.
	FaultLog = fault.Log
	// Supervisor watches component health and applies restart
	// policies through a reconfiguration manager.
	Supervisor = fault.Supervisor
	// SupervisionPolicy is one component's supervision policy.
	SupervisionPolicy = fault.Policy
	// Breaker is a circuit breaker guarding a distributed binding.
	Breaker = fault.Breaker
	// HardenOptions selects timeout / breaker / retry wrappers for a
	// hardened distributed binding.
	HardenOptions = fault.HardenOptions
	// DeployOptions gives full control over deployment (extra
	// interceptors, resilient execution); see Framework.DeployConfig.
	DeployOptions = assembly.Config
)

// Supervision directives.
const (
	RestartOneForOne    = fault.RestartOneForOne
	QuarantineDirective = fault.Quarantine
	EscalateDirective   = fault.Escalate
)

// ParseFaultSpec parses "drop=0.02,dup=0.01,corrupt=0.01,seed=42".
func ParseFaultSpec(s string) (FaultSpec, error) { return fault.ParseSpec(s) }

// NewFaultLog creates a bounded fault log.
func NewFaultLog(capacity int) *FaultLog { return fault.NewLog(capacity) }

// InjectFaults wraps a transport with seeded, replayable fault
// injection.
func InjectFaults(t Transport, spec FaultSpec, log *FaultLog) (Transport, error) {
	return fault.InjectTransport(t, spec, log)
}

// NewSupervisor creates a supervisor restarting components through
// adapter.
func NewSupervisor(adapter *Adapter, opts ...fault.SupervisorOption) (*Supervisor, error) {
	return fault.NewSupervisor(adapter, opts...)
}

// NewPanicInterceptor creates the membrane interceptor that converts
// component panics into recorded faults and a FAILED lifecycle state.
func NewPanicInterceptor(component string, log *FaultLog, notify func(string, fault.Fault)) *fault.PanicInterceptor {
	return fault.NewPanicInterceptor(component, log, notify)
}

// ExportHardened exports a client interface onto a transport with the
// remote port hardened (retry + circuit breaker + per-call timeout).
func ExportHardened(sys *System, client, clientItf, serverItf string, t Transport, opts HardenOptions) (Port, error) {
	return fault.ExportHardened(sys, client, clientItf, serverItf, t, opts)
}

// Runtime observability (internal/obs): allocation-free metrics on the
// membrane dispatch path, causal tracing across asynchronous and
// distributed bindings, and a live HTTP introspection surface. Set
// DeployOptions.Metrics (and Tracer) to instrument a deployment; share
// one registry and tracer across several systems to aggregate them.
type (
	// MetricsRegistry is the shared metrics root of one process.
	MetricsRegistry = obs.Registry
	// ComponentMetrics aggregates one component's signals.
	ComponentMetrics = obs.ComponentMetrics
	// Tracer records causal spans into a fixed ring.
	Tracer = obs.Tracer
	// SpanContext identifies one span within a causal trace.
	SpanContext = obs.SpanContext
	// ObservabilityOptions wires the HTTP introspection endpoints.
	ObservabilityOptions = obs.HandlerOptions
	// FlightRecorder is the always-on, allocation-free black box: a
	// fixed ring of anomaly events (deadline misses, over-budget
	// dispatches, sheds, SLO and lifecycle transitions) dumped on
	// trigger. Wire one with MetricsRegistry.SetRecorder.
	FlightRecorder = obs.Recorder
	// FlightEvent is one recorded flight-recorder event.
	FlightEvent = obs.Event
	// LinkStats is a point-in-time snapshot of one cluster link
	// endpoint (liveness, reconnects, propagated remote SLO).
	LinkStats = obs.LinkStats
)

// NewFlightRecorder creates a flight recorder identified as node
// (capacity <= 0 selects the default ring size).
func NewFlightRecorder(node string, capacity int) *FlightRecorder {
	return obs.NewRecorder(node, capacity)
}

// MergeFlightEvents merges per-node flight-recorder dumps into one
// timeline ordered by wall-clock time.
func MergeFlightEvents(batches ...[]FlightEvent) []FlightEvent {
	return obs.MergeEvents(batches...)
}

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer creates a tracer retaining the last capacity spans
// (capacity <= 0 selects the default).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// ServeObservability serves /metrics, /healthz, /arch, /top and
// /trace on addr (":0" picks a free port) and returns the bound
// address plus a shutdown function.
func ServeObservability(addr string, opts ObservabilityOptions) (string, func() error, error) {
	return obs.Serve(addr, opts)
}

// Registry-backed supervision: probes reading the same metrics the
// exposition serves, and the option mirroring supervisor decisions
// back into the registry.
var (
	// WithSupervisorRegistry mirrors restarts and quarantines into a
	// registry (pass to NewSupervisor).
	WithSupervisorRegistry = fault.WithRegistry
	// MetricsLatencyProbe trips when an operation's p99 exceeds a bound.
	MetricsLatencyProbe = fault.MetricsLatencyProbe
	// MetricsMissProbe trips on deadline-miss bursts.
	MetricsMissProbe = fault.MetricsMissProbe
	// MetricsOverflowProbe trips on queue drop-rate bursts.
	MetricsOverflowProbe = fault.MetricsOverflowProbe
)

// Binding contracts (internal/qos): SLOs declared in the ADL's
// <Contract> element, checked statically (RT16/RT17) and enforced at
// runtime by an allocation-free admission gate next to the membrane's
// metrics interceptor.
type (
	// Contract is the QoS contract of one binding (latency budget,
	// rate + burst, overload policy); set Binding.Contract or use the
	// ADL's <Contract> element.
	Contract = model.Contract
	// OverloadPolicy selects what the admission gate does with
	// over-rate traffic.
	OverloadPolicy = model.OverloadPolicy
	// Backpressure is the typed rejection an overloaded contracted
	// binding returns; errors.Is(err, ErrBackpressure) matches it.
	Backpressure = qos.Backpressure
	// AdmissionGate is one binding's runtime token-bucket gate.
	AdmissionGate = qos.Gate
	// GateStats is a point-in-time snapshot of a gate's counters as
	// the metrics registry polls it.
	GateStats = obs.GateStats
)

// Overload policies.
const (
	ShedPolicy    = model.Shed
	BlockPolicy   = model.Block
	DegradePolicy = model.Degrade
)

// ErrBackpressure is the framework-wide overload sentinel: admission
// gates, full buffers, saturated transports and cluster links all
// wrap it, so one errors.Is covers local, merged and distributed
// bindings.
var ErrBackpressure = qos.ErrBackpressure

// ParseOverloadPolicy parses the ADL spelling ("shed", "block",
// "degrade"; empty defaults to shed).
func ParseOverloadPolicy(s string) (OverloadPolicy, error) { return model.ParseOverloadPolicy(s) }

// BackpressureBinding extracts the binding or link name from a
// backpressure error ("" and false for other errors).
func BackpressureBinding(err error) (string, bool) { return qos.BindingName(err) }

// Cluster deployment plane (internal/cluster): one architecture plus
// one deployment descriptor run as N supervised nodes. The planner
// turns every cross-node asynchronous binding into a distributed
// link; each node agent deploys its partition, dials its peers with
// backoff and heartbeats, and a coordinator federates health and
// metrics across the nodes.
type (
	// Deployment maps component names onto named cluster nodes.
	Deployment = model.Deployment
	// DeployNode is one node of a deployment descriptor.
	DeployNode = model.DeployNode
	// ClusterPlan is the planner's partitioning of an architecture.
	ClusterPlan = cluster.Plan
	// ClusterLink is one cross-node binding rewritten for transport.
	ClusterLink = cluster.Link
	// ClusterAgent is one running node of a cluster deployment.
	ClusterAgent = cluster.Agent
	// ClusterAgentConfig configures StartClusterAgent.
	ClusterAgentConfig = cluster.AgentConfig
	// ClusterCoordinator aggregates health and metrics cluster-wide.
	ClusterCoordinator = cluster.Coordinator
)

// NewDeployment creates an empty deployment descriptor for the named
// architecture; decode one from XML with adl.DecodeDeploymentFile.
func NewDeployment(arch string) *Deployment { return model.NewDeployment(arch) }

// ValidateDeployment checks a descriptor against the architecture
// (RT14: containers may not span nodes; RT15: only asynchronous
// bindings may cross nodes; RT17: cross-node contracts are
// client-side shed/degrade gates).
func ValidateDeployment(a *Architecture, d *Deployment) (Report, error) {
	return validate.ValidateDeployment(a, d)
}

// ComputeClusterPlan partitions the architecture per the descriptor.
func ComputeClusterPlan(a *Architecture, d *Deployment) (*ClusterPlan, error) {
	return cluster.Compute(a, d)
}

// StartClusterAgent brings one node of a plan up: components, links,
// fault supervision, pacing and observability, all derived from the
// plan.
func StartClusterAgent(cfg ClusterAgentConfig) (*ClusterAgent, error) {
	return cluster.Start(cfg)
}

// NewClusterCoordinator builds the cluster-wide view over a plan's
// nodes; metricsAddr overrides endpoint discovery (nil reads the
// plan's metrics addresses).
func NewClusterCoordinator(plan *ClusterPlan, metricsAddr func(node string) (string, error)) *ClusterCoordinator {
	return cluster.NewCoordinator(plan, metricsAddr)
}
