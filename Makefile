# Tier-1+ verification gate. `make check` is what CI and reviewers
# run: vet, build, the full test suite under the race detector, and
# the fault-tolerance soak scenario.

GO ?= go

.PHONY: all check vet build test race soak bench clean

all: check

check: vet build race soak

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The soak scenario: two systems over a lossy transport with a
# panicking component, supervised end to end (zero crashes, no
# goroutine leaks). -count=2 re-runs it to shake out ordering effects.
soak:
	$(GO) test -race -run TestSoakDistributedSupervision -count=2 ./internal/fault/

bench:
	$(GO) test -bench Fig7 -benchmem

clean:
	$(GO) clean ./...
