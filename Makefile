# Tier-1+ verification gate. `make check` is what CI and reviewers
# run: vet, build, the full test suite under the race detector, and
# the fault-tolerance soak scenario. `make lint` and `make benchcheck`
# are the static and empirical halves of the same no-allocation,
# no-blocking claim on the hot paths.

GO ?= go

# The packages `soleil vet` self-applies to: every package on a
# dispatch or real-time hot path.
LINT_PKGS = ./internal/membrane/... ./internal/obs/... ./internal/comm/... ./internal/rtsj/... ./internal/qos/...

.PHONY: all check vet build test race soak soak-cluster soak-overload soak-load lint sarif benchcheck bench bench-obs bench-scenarios clean

all: check

check: vet build race soak soak-cluster soak-overload soak-load

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The soak scenario: two systems over a lossy transport with a
# panicking component, supervised end to end (zero crashes, no
# goroutine leaks). -count=2 re-runs it to shake out ordering effects.
soak:
	$(GO) test -race -run TestSoakDistributedSupervision -count=2 ./internal/fault/

# The cluster soak: a 3-node deployment with a panicking worker; the
# middle node is killed and restarted mid-run, and the scenario
# requires supervised reconvergence and zero leaked goroutines. The
# second scenario overloads a cross-node degrade contract and writes
# the merged cross-node flight-recorder timeline
# (flightrecorder-crossnode-degrade.json), which must show the
# remote-breach-driven degrade transition.
soak-cluster:
	$(GO) test -race -run TestSoakClusterReconvergence -count=2 ./internal/cluster/
	$(GO) test -race -v -run TestSoakOverloadCrossNodeDegrade ./internal/cluster/

# The overload soak: two contracted pipelines offered ~40x their
# admitted rate in wall-clock time. The gates must shed (nonzero
# rejected counters), the degrade binding must detect its SLO breach,
# /healthz must stay 200 throughout, and the run must end with zero
# crashes and zero leaked goroutines. The cluster half overloads a
# cross-node degrade contract: the server-side breach must propagate
# over heartbeat digests and flip the client's gate to shedding. -v
# so CI can extract the "soak-overload:" summary lines.
soak-overload:
	$(GO) test -race -v -run TestSoakOverloadShedding ./internal/fault/
	$(GO) test -race -v -run TestSoakOverloadCrossNodeDegrade ./internal/cluster/

# The load-plane soak: one small instance of every synthesized
# scenario shape (pipeline, fanin, statemachine, reactive, sporadic)
# driven open-loop under the race detector, covering constant, burst
# and ramp arrivals plus a 3-node cluster run. Every system must tear
# down with zero leaked goroutines, traffic must complete end to end,
# and the sporadic burst storm must demonstrably engage the admission
# gates. The rate search is smoked alongside with short trials.
soak-load:
	$(GO) test -race -v -run 'TestSoakLoadScenarios|TestRateSearchFindsSustainableRate' ./internal/load/

# Where `make lint` / `make sarif` keep the interprocedural summary
# cache. CI restores this directory across runs, keyed on the analyzer
# sources, so warm runs skip summary recomputation entirely.
FACTS_DIR ?= .soleil-facts

# Source-level RTSJ conformance over the hot paths: the per-function
# rules (SA01-SA04), then the whole-architecture suite (SA05-SA11)
# against the two blessed architectures — the factory line and the
# cluster deployment. Exit 1 means unsuppressed findings; fix them or
# justify with //soleil:ignore in the same change. The final step
# replays the factory arch run against the now-warm facts cache and
# fails if anything was recomputed — the incremental path must stay
# incremental.
lint:
	$(GO) run ./cmd/soleil-vet -facts $(FACTS_DIR) $(LINT_PKGS)
	$(GO) run ./cmd/soleil-vet -arch -adl examples/factory/factory.xml -facts $(FACTS_DIR) ./examples/factory ./internal/scenario
	$(GO) run ./cmd/soleil-vet -arch -adl examples/cluster/cluster.xml -deploy examples/cluster/deploy.xml -facts $(FACTS_DIR) ./examples/cluster
	@out=$$($(GO) run ./cmd/soleil-vet -arch -adl examples/factory/factory.xml -facts $(FACTS_DIR) -facts-stats ./examples/factory ./internal/scenario 2>&1) || { echo "$$out"; exit 1; }; \
	echo "$$out"; \
	case "$$out" in *"misses=0"*) ;; *) echo "lint: warm facts-cache run recomputed summaries"; exit 1;; esac

# SARIF export of the same runs for CI code scanning: per-function
# findings over the hot paths in soleil.sarif, and the
# whole-architecture suite (including SA09 flowlatency, SA10
# queuesizing, SA11 spawnleak) in soleil-arch.sarif. Findings do not
# fail this target — the lint target is the gate; this one only
# produces the upload artifacts.
sarif:
	$(GO) run ./cmd/soleil-vet -max-severity error -sarif soleil.sarif $(LINT_PKGS) || true
	$(GO) run ./cmd/soleil-vet -arch -adl examples/factory/factory.xml -facts $(FACTS_DIR) -sarif soleil-arch.sarif ./examples/factory ./internal/scenario || true
	@echo "wrote soleil.sarif soleil-arch.sarif"

# Empirical counterpart of the //soleil:noheap annotations: run the
# metered-dispatch, admission-gate and observability hot-path
# benchmarks with -benchmem and fail if any reports a non-zero
# allocs/op.
benchcheck:
	@out=$$($(GO) test -run NONE -bench 'HotPath|DispatchMetered|DispatchAdmitted|GateAdmit' -benchmem -benchtime 1000x \
		./internal/obs/ ./internal/membrane/ ./internal/qos/) || { echo "$$out"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | awk '/allocs\/op/ && $$(NF-1)+0 > 0 { bad=1; print "benchcheck: " $$1 " allocates on the hot path" } END { exit bad+0 }'
	$(GO) test -run TestSummaryBudget ./internal/lint/

bench:
	$(GO) test -bench Fig7 -benchmem

# Observability-plane panel: ns/op and allocs/op of the HDR histogram,
# flight recorder and heartbeat digest codec, written to
# BENCH_obs.json (the recording paths must report 0 allocs/op or the
# panel fails).
bench-obs:
	$(GO) run ./cmd/rtbench -panel e

# Open-loop scenario fleet: binary-search the sustainable throughput
# (p99.9 under the bound, coordinated-omission-safe) of synthesized
# pipeline, fanin and sporadic architectures, in-process and across a
# 3-node loopback cluster, written to BENCH_scenarios.json under the
# shared bench envelope.
bench-scenarios:
	$(GO) run ./cmd/rtbench -panel f

clean:
	$(GO) clean ./...
