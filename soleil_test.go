package soleil_test

import (
	"fmt"
	"os/exec"
	"strings"
	"testing"
	"time"

	"soleil"
)

// counter is a minimal content implementation for API tests.
type counter struct {
	svc  *soleil.Services
	hits int
}

func (c *counter) Init(svc *soleil.Services) error { c.svc = svc; return nil }

func (c *counter) Invoke(env *soleil.Env, itf, op string, arg any) (any, error) {
	c.hits++
	return arg, nil
}

// emitter is a periodic producer for API tests.
type emitter struct {
	counter
}

func (e *emitter) Activate(env *soleil.Env) error {
	port, err := e.svc.Port("out")
	if err != nil {
		return err
	}
	return port.Send(env, "tick", e.hits)
}

// buildAPIArch assembles a minimal valid architecture via the public
// API.
func buildAPIArch(t *testing.T) *soleil.Architecture {
	t.Helper()
	arch := soleil.NewArchitecture("api-test")
	src, err := arch.NewActive("Src", soleil.Activation{
		Kind: soleil.PeriodicActivation, Period: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := arch.NewActive("Dst", soleil.Activation{Kind: soleil.SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddInterface(soleil.Interface{Name: "out", Role: soleil.ClientRole, Signature: "I"}); err != nil {
		t.Fatal(err)
	}
	if err := dst.AddInterface(soleil.Interface{Name: "in", Role: soleil.ServerRole, Signature: "I"}); err != nil {
		t.Fatal(err)
	}
	if err := src.SetContent("SrcImpl"); err != nil {
		t.Fatal(err)
	}
	if err := dst.SetContent("DstImpl"); err != nil {
		t.Fatal(err)
	}
	if _, err := arch.Bind(soleil.Binding{
		Client:   soleil.Endpoint{Component: "Src", Interface: "out"},
		Server:   soleil.Endpoint{Component: "Dst", Interface: "in"},
		Protocol: soleil.Asynchronous, BufferSize: 4,
	}); err != nil {
		t.Fatal(err)
	}
	td, err := arch.NewThreadDomain("rt", soleil.DomainDesc{Kind: soleil.RealtimeThread, Priority: 20})
	if err != nil {
		t.Fatal(err)
	}
	imm, err := arch.NewMemoryArea("imm", soleil.AreaDesc{Kind: soleil.ImmortalMemory, Size: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct{ p, c *soleil.Component }{{imm, td}, {td, src}, {td, dst}} {
		if err := arch.AddChild(e.p, e.c); err != nil {
			t.Fatal(err)
		}
	}
	return arch
}

func TestPublicAPIDeployAndRun(t *testing.T) {
	arch := buildAPIArch(t)
	if r := soleil.Validate(arch); !r.OK() {
		t.Fatalf("refused: %v", r.Errors())
	}
	fw := soleil.New()
	dst := &counter{}
	if err := fw.Register("SrcImpl", func() soleil.Content { return &emitter{} }); err != nil {
		t.Fatal(err)
	}
	if err := fw.Register("DstImpl", func() soleil.Content { return dst }); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []soleil.Mode{soleil.Soleil, soleil.MergeAll, soleil.UltraMerge} {
		dst.hits = 0
		fw2 := soleil.New()
		consumer := &counter{}
		if err := fw2.Register("SrcImpl", func() soleil.Content { return &emitter{} }); err != nil {
			t.Fatal(err)
		}
		if err := fw2.Register("DstImpl", func() soleil.Content { return consumer }); err != nil {
			t.Fatal(err)
		}
		arch2 := buildAPIArch(t)
		sys, err := fw2.Deploy(arch2, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := sys.RunFor(55 * time.Millisecond); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if consumer.hits != 6 {
			t.Errorf("%v: consumer hits = %d, want 6", mode, consumer.hits)
		}
	}
}

func TestPublicAPISuggestedPatterns(t *testing.T) {
	arch := soleil.NewArchitecture("cross")
	cli, _ := arch.NewActive("Cli", soleil.Activation{Kind: soleil.SporadicActivation})
	srv, _ := arch.NewActive("Srv", soleil.Activation{Kind: soleil.SporadicActivation})
	_ = cli.AddInterface(soleil.Interface{Name: "out", Role: soleil.ClientRole, Signature: "I"})
	_ = srv.AddInterface(soleil.Interface{Name: "in", Role: soleil.ServerRole, Signature: "I"})
	_ = cli.SetContent("C")
	_ = srv.SetContent("S")
	if _, err := arch.Bind(soleil.Binding{
		Client:   soleil.Endpoint{Component: "Cli", Interface: "out"},
		Server:   soleil.Endpoint{Component: "Srv", Interface: "in"},
		Protocol: soleil.Asynchronous, BufferSize: 4,
	}); err != nil {
		t.Fatal(err)
	}
	tdc, _ := arch.NewThreadDomain("tdc", soleil.DomainDesc{Kind: soleil.RealtimeThread, Priority: 20})
	tds, _ := arch.NewThreadDomain("tds", soleil.DomainDesc{Kind: soleil.RegularThread, Priority: 5})
	imm, _ := arch.NewMemoryArea("imm", soleil.AreaDesc{Kind: soleil.ImmortalMemory})
	heap, _ := arch.NewMemoryArea("heap", soleil.AreaDesc{Kind: soleil.HeapMemory})
	for _, e := range []struct{ p, c *soleil.Component }{
		{imm, tdc}, {tdc, cli}, {heap, tds}, {tds, srv},
	} {
		if err := arch.AddChild(e.p, e.c); err != nil {
			t.Fatal(err)
		}
	}
	if soleil.Validate(arch).OK() {
		t.Fatal("crossing without pattern accepted")
	}
	changed, err := soleil.ApplySuggestedPatterns(arch)
	if err != nil || len(changed) != 1 {
		t.Fatalf("apply: %v, %d changed", err, len(changed))
	}
	if !soleil.Validate(arch).OK() {
		t.Fatal("still refused after applying suggestions")
	}
}

// TestExamplesRun executes every example program end to end.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn go run")
	}
	cases := map[string]string{
		"quickstart":  "logger received 10 records",
		"distributed": "ground station received 8 frames over TCP",
		"factory":     "produced=16 evaluated=16 alerts=2 logged=16",
		"adaptive":    "primary displayed 3, backup displayed 3",
		"tailoring":   "source ticks=10 stage relayed=10 sink received=10",
	}
	for name, want := range cases {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+name).CombinedOutput()
			if err != nil {
				t.Fatalf("go run: %v\n%s", err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Fatalf("output missing %q:\n%s", want, out)
			}
		})
	}
}

// TestCLIsRun executes the two command-line tools end to end.
func TestCLIsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("CLIs spawn go run")
	}
	t.Run("soleil-validate", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/soleil",
			"validate", "examples/factory/factory.xml").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if !strings.Contains(string(out), "RTSJ-compliant") {
			t.Fatalf("unexpected output:\n%s", out)
		}
	})
	t.Run("soleil-run", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/soleil",
			"run", "-mode", "SOLEIL", "-duration", "50ms", "examples/factory/factory.xml").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"ProductionLine", "releases=6", "buffer"} {
			if !strings.Contains(string(out), want) {
				t.Fatalf("output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("soleil-genreport", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/soleil",
			"genreport", "examples/factory/factory.xml").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		if strings.Contains(string(out), "MISS") {
			t.Fatalf("requirements missed:\n%s", out)
		}
	})
	t.Run("rtbench-small", func(t *testing.T) {
		t.Parallel()
		out, err := exec.Command("go", "run", "./cmd/rtbench",
			"-panel", "b", "-observations", "200", "-warmup", "50").CombinedOutput()
		if err != nil {
			t.Fatalf("%v\n%s", err, out)
		}
		for _, want := range []string{"OO", "SOLEIL", "MERGE-ALL", "ULTRA-MERGE"} {
			if !strings.Contains(string(out), want) {
				t.Fatalf("output missing %q:\n%s", want, out)
			}
		}
	})
}

// Example of driving the framework's design flow from the public API.
func ExampleNewDesignFlow() {
	flow, err := soleil.NewDesignFlow(soleil.BusinessView{
		Name: "example",
		Components: []soleil.BusinessComponent{
			{Name: "Worker", Kind: soleil.ActiveKind,
				Activation: soleil.Activation{Kind: soleil.SporadicActivation},
				Content:    "WorkerImpl"},
		},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	report, err := flow.ApplyThreadView(soleil.ThreadView{Domains: []soleil.DomainAssignment{
		{Name: "rt", Desc: soleil.DomainDesc{Kind: soleil.RealtimeThread, Priority: 20},
			Members: []string{"Worker"}},
	}})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("thread view ok:", report.OK())
	report, err = flow.ApplyMemoryView(soleil.MemoryView{Areas: []soleil.AreaAssignment{
		{Name: "imm", Desc: soleil.AreaDesc{Kind: soleil.ImmortalMemory}, Members: []string{"rt"}},
	}})
	if err != nil {
		fmt.Println(err)
		return
	}
	_, final, err := flow.Finalize()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("memory view ok:", report.OK())
	fmt.Println("final ok:", final.OK())
	// Output:
	// thread view ok: true
	// memory view ok: true
	// final ok: true
}
