module soleil

go 1.22
