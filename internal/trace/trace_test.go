package trace

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestCollectorWarmupAndCapacity(t *testing.T) {
	c := NewCollector(3, 5)
	for i := 1; i <= 12; i++ {
		c.Record(time.Duration(i))
	}
	if c.Len() != 5 {
		t.Fatalf("len = %d", c.Len())
	}
	got := c.Samples()
	want := []time.Duration{4, 5, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("samples = %v", got)
		}
	}
}

func TestCollectorUnbounded(t *testing.T) {
	c := NewCollector(0, 0)
	for i := 0; i < 100; i++ {
		c.Record(time.Duration(i))
	}
	if c.Len() != 100 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestSummarize(t *testing.T) {
	samples := []time.Duration{10, 20, 30, 40, 50}
	s := Summarize(samples)
	if s.N != 5 || s.Min != 10 || s.Max != 50 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 30 || s.Median != 30 {
		t.Fatalf("central = mean %v median %v", s.Mean, s.Median)
	}
	// MAD from median 30: (20+10+0+10+20)/5 = 12.
	if s.Jitter != 12 {
		t.Fatalf("jitter = %v", s.Jitter)
	}
	if s.P95 != 50 || s.P99 != 50 {
		t.Fatalf("tails = %v, %v", s.P95, s.P99)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Median != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.5); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := percentile(sorted, 0.95); got != 10 {
		t.Fatalf("p95 = %v", got)
	}
	if got := percentile(sorted, 1.0); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	samples := []time.Duration{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	buckets := Histogram(samples, 5)
	if len(buckets) != 5 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	if total != 10 {
		t.Fatalf("histogram lost samples: %d", total)
	}
	for _, b := range buckets {
		if b.Count != 2 {
			t.Fatalf("uneven buckets: %+v", buckets)
		}
	}
	if Histogram(nil, 5) != nil || Histogram(samples, 0) != nil {
		t.Fatal("degenerate histograms should be nil")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	buckets := Histogram([]time.Duration{7, 7, 7}, 4)
	total := 0
	for _, b := range buckets {
		total += b.Count
	}
	if total != 3 {
		t.Fatalf("identical-value histogram lost samples: %d", total)
	}
}

func TestRenderHistogram(t *testing.T) {
	var sb strings.Builder
	buckets := Histogram([]time.Duration{1000, 2000, 2000, 3000}, 2)
	if err := RenderHistogram(&sb, "test", buckets); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "test (4 observations)") {
		t.Fatalf("header missing: %q", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("bars missing: %q", out)
	}
	var empty strings.Builder
	if err := RenderHistogram(&empty, "none", nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, []time.Duration{1500, 2500}); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "ns\n1500\n2500\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestMeasureFootprint(t *testing.T) {
	const size = 1 << 20
	bytes, kept := MeasureFootprint(func() any {
		return make([]byte, size)
	})
	if kept == nil {
		t.Fatal("built value lost")
	}
	if bytes < size/2 {
		t.Fatalf("footprint = %d, want >= %d", bytes, size/2)
	}
}

// Property: histogram conserves the sample count, and the summary's
// min/median/max are consistent with the sorted samples.
func TestStatsConsistencyProperty(t *testing.T) {
	f := func(raw []uint16, n8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		n := int(n8%10) + 1
		total := 0
		for _, b := range Histogram(samples, n) {
			total += b.Count
		}
		if total != len(samples) {
			return false
		}
		s := Summarize(samples)
		sorted := append([]time.Duration(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		if s.Min != sorted[0] || s.Max != sorted[len(sorted)-1] {
			return false
		}
		return s.Median >= s.Min && s.Median <= s.Max && s.P95 >= s.Median
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestKSStatistic(t *testing.T) {
	a := []time.Duration{1, 2, 3, 4, 5}
	if got := KSStatistic(a, a); got != 0 {
		t.Fatalf("identical KS = %v", got)
	}
	b := []time.Duration{101, 102, 103, 104, 105}
	if got := KSStatistic(a, b); got != 1 {
		t.Fatalf("disjoint KS = %v", got)
	}
	if got := KSStatistic(nil, a); got != 1 {
		t.Fatalf("empty KS = %v", got)
	}
	// A pure location shift disappears under ShiftedKS.
	shifted := make([]time.Duration, len(a))
	for i, v := range a {
		shifted[i] = v + 100
	}
	if got := ShiftedKS(a, shifted); got != 0 {
		t.Fatalf("shifted-shape KS = %v", got)
	}
}

func TestKSStatisticPartialOverlap(t *testing.T) {
	a := []time.Duration{1, 2, 3, 4}
	b := []time.Duration{3, 4, 5, 6}
	got := KSStatistic(a, b)
	if got <= 0 || got >= 1 {
		t.Fatalf("partial overlap KS = %v", got)
	}
}
