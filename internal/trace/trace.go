// Package trace implements the paper's benchmarking method (Sect.
// 5.1): steady-state observation collection (cold-start transients
// discarded), execution-time distributions, median and jitter
// summaries, and memory-footprint measurement.
package trace

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Collector accumulates execution-time observations.
type Collector struct {
	warmup   int
	seen     int
	samples  []time.Duration
	capacity int
}

// NewCollector creates a collector that discards the first warmup
// observations (cold start) and keeps at most capacity steady-state
// samples (0 = unbounded).
func NewCollector(warmup, capacity int) *Collector {
	c := &Collector{warmup: warmup, capacity: capacity}
	if capacity > 0 {
		c.samples = make([]time.Duration, 0, capacity)
	}
	return c
}

// Record adds one observation.
func (c *Collector) Record(d time.Duration) {
	c.seen++
	if c.seen <= c.warmup {
		return
	}
	if c.capacity > 0 && len(c.samples) >= c.capacity {
		return
	}
	c.samples = append(c.samples, d)
}

// Len returns the number of retained steady-state samples.
func (c *Collector) Len() int { return len(c.samples) }

// Samples returns a copy of the retained samples in arrival order.
func (c *Collector) Samples() []time.Duration {
	out := make([]time.Duration, len(c.samples))
	copy(out, c.samples)
	return out
}

// Summary condenses a sample set the way Fig. 7(b) reports it.
type Summary struct {
	N      int
	Min    time.Duration
	Max    time.Duration
	Mean   time.Duration
	Median time.Duration
	P95    time.Duration
	P99    time.Duration
	// Jitter is the mean absolute deviation from the median — the
	// "average jitter" of Fig. 7(b).
	Jitter time.Duration
}

// Summarize computes the summary of the retained samples.
func (c *Collector) Summarize() Summary {
	return Summarize(c.samples)
}

// Summarize computes summary statistics over samples.
func Summarize(samples []time.Duration) Summary {
	var s Summary
	s.N = len(samples)
	if s.N == 0 {
		return s
	}
	sorted := make([]time.Duration, s.N)
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	s.Min, s.Max = sorted[0], sorted[s.N-1]
	var total time.Duration
	for _, v := range sorted {
		total += v
	}
	s.Mean = total / time.Duration(s.N)
	s.Median = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)

	var dev time.Duration
	for _, v := range sorted {
		if v >= s.Median {
			dev += v - s.Median
		} else {
			dev += s.Median - v
		}
	}
	s.Jitter = dev / time.Duration(s.N)
	return s
}

// percentile returns the p-quantile of sorted samples (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Bucket is one bar of a histogram.
type Bucket struct {
	Lo, Hi time.Duration
	Count  int
}

// Histogram buckets the retained samples into n equal-width bins
// between min and max.
func (c *Collector) Histogram(n int) []Bucket {
	return Histogram(c.samples, n)
}

// Histogram buckets samples into n equal-width bins.
func Histogram(samples []time.Duration, n int) []Bucket {
	if len(samples) == 0 || n <= 0 {
		return nil
	}
	lo, hi := samples[0], samples[0]
	for _, v := range samples {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// Round the width up so n buckets always cover [lo, hi].
	width := (hi - lo + time.Duration(n)) / time.Duration(n)
	buckets := make([]Bucket, n)
	for i := range buckets {
		buckets[i].Lo = lo + time.Duration(i)*width
		buckets[i].Hi = buckets[i].Lo + width
	}
	buckets[n-1].Hi = hi + 1
	for _, v := range samples {
		idx := int((v - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		buckets[idx].Count++
	}
	return buckets
}

// RenderHistogram writes an ASCII histogram, the textual analogue of
// Fig. 7(a)'s distribution plot.
func RenderHistogram(w io.Writer, title string, buckets []Bucket) error {
	max := 0
	total := 0
	for _, b := range buckets {
		if b.Count > max {
			max = b.Count
		}
		total += b.Count
	}
	if _, err := fmt.Fprintf(w, "%s (%d observations)\n", title, total); err != nil {
		return err
	}
	if max == 0 {
		return nil
	}
	const width = 50
	for _, b := range buckets {
		bar := strings.Repeat("#", b.Count*width/max)
		if _, err := fmt.Fprintf(w, "  %10v - %-10v %6d %s\n", b.Lo, b.Hi, b.Count, bar); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the samples as a one-column CSV (header `ns`).
func WriteCSV(w io.Writer, samples []time.Duration) error {
	if _, err := io.WriteString(w, "ns\n"); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%d\n", int64(s)); err != nil {
			return err
		}
	}
	return nil
}

// KSStatistic computes the two-sample Kolmogorov-Smirnov statistic —
// the maximum distance between the empirical CDFs of a and b, in
// [0,1]. The paper argues from Fig. 7(a) that the framework "does not
// introduce any non-determinism" because the OO and SOLEIL curves are
// similar; the KS distance quantifies that similarity (0 = identical
// distributions).
func KSStatistic(a, b []time.Duration) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	as := append([]time.Duration(nil), a...)
	bs := append([]time.Duration(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	var i, j int
	var maxDist float64
	for i < len(as) && j < len(bs) {
		va, vb := as[i], bs[j]
		if va <= vb {
			for i < len(as) && as[i] == va {
				i++
			}
		}
		if vb <= va {
			for j < len(bs) && bs[j] == vb {
				j++
			}
		}
		fa := float64(i) / float64(len(as))
		fb := float64(j) / float64(len(bs))
		if d := fa - fb; d > maxDist {
			maxDist = d
		} else if -d > maxDist {
			maxDist = -d
		}
	}
	return maxDist
}

// ShiftedKS computes the KS statistic after subtracting each sample
// set's median — comparing distribution *shapes* with the location
// difference (the constant framework overhead) removed.
func ShiftedKS(a, b []time.Duration) float64 {
	return KSStatistic(center(a), center(b))
}

func center(s []time.Duration) []time.Duration {
	med := Summarize(s).Median
	out := make([]time.Duration, len(s))
	for i, v := range s {
		out[i] = v - med
	}
	return out
}

// MeasureFootprint reports the live-heap growth attributable to
// build: it garbage-collects, snapshots the heap, runs build, garbage-
// collects again and diffs. The built value is returned so it stays
// reachable across the final collection (and so callers can keep it
// alive afterwards).
func MeasureFootprint(build func() any) (bytes int64, kept any) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	kept = build()
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	return int64(after.HeapAlloc) - int64(before.HeapAlloc), kept
}
