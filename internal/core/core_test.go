package core

import (
	"strings"
	"testing"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/fixture"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/scenario"
	"soleil/internal/views"
)

const ms = time.Millisecond

func factoryViews() (views.BusinessView, views.ThreadView, views.MemoryView) {
	b := views.BusinessView{
		Name: "factory",
		Components: []views.BusinessComponent{
			{Name: "ProductionLine", Kind: model.Active,
				Activation: model.Activation{Kind: model.PeriodicActivation, Period: 10 * ms},
				Content:    "ProductionLineImpl",
				Interfaces: []model.Interface{{Name: "iMonitor", Role: model.ClientRole, Signature: "IMonitor"}}},
			{Name: "MonitoringSystem", Kind: model.Active,
				Activation: model.Activation{Kind: model.SporadicActivation},
				Content:    "MonitoringSystemImpl",
				Interfaces: []model.Interface{
					{Name: "iMonitor", Role: model.ServerRole, Signature: "IMonitor"},
					{Name: "iConsole", Role: model.ClientRole, Signature: "IConsole"},
					{Name: "iLog", Role: model.ClientRole, Signature: "ILog"}}},
			{Name: "Console", Kind: model.Passive, Content: "ConsoleImpl",
				Interfaces: []model.Interface{{Name: "iConsole", Role: model.ServerRole, Signature: "IConsole"}}},
			{Name: "Audit", Kind: model.Active,
				Activation: model.Activation{Kind: model.SporadicActivation},
				Content:    "AuditImpl",
				Interfaces: []model.Interface{{Name: "iLog", Role: model.ServerRole, Signature: "ILog"}}},
		},
		Bindings: []model.Binding{
			{Client: model.Endpoint{Component: "ProductionLine", Interface: "iMonitor"},
				Server:   model.Endpoint{Component: "MonitoringSystem", Interface: "iMonitor"},
				Protocol: model.Asynchronous, BufferSize: 10},
			{Client: model.Endpoint{Component: "MonitoringSystem", Interface: "iConsole"},
				Server:   model.Endpoint{Component: "Console", Interface: "iConsole"},
				Protocol: model.Synchronous},
			{Client: model.Endpoint{Component: "MonitoringSystem", Interface: "iLog"},
				Server:   model.Endpoint{Component: "Audit", Interface: "iLog"},
				Protocol: model.Asynchronous, BufferSize: 16},
		},
	}
	t := views.ThreadView{Domains: []views.DomainAssignment{
		{Name: "NHRT1", Desc: model.DomainDesc{Kind: model.NoHeapRealtimeThread, Priority: 30}, Members: []string{"ProductionLine"}},
		{Name: "NHRT2", Desc: model.DomainDesc{Kind: model.NoHeapRealtimeThread, Priority: 25}, Members: []string{"MonitoringSystem"}},
		{Name: "reg1", Desc: model.DomainDesc{Kind: model.RegularThread, Priority: 5}, Members: []string{"Audit"}},
	}}
	m := views.MemoryView{Areas: []views.AreaAssignment{
		{Name: "Imm1", Desc: model.AreaDesc{Kind: model.ImmortalMemory, Size: 600 << 10}, Members: []string{"NHRT1", "NHRT2"}},
		{Name: "S1", Desc: model.AreaDesc{Kind: model.ScopedMemory, ScopeName: "cscope", Size: 28 << 10}, Members: []string{"Console"}},
		{Name: "H1", Desc: model.AreaDesc{Kind: model.HeapMemory}, Members: []string{"reg1"}},
	}}
	return b, t, m
}

// TestEndToEndPipeline exercises the whole framework pipeline:
// design -> validate -> register -> deploy -> run -> adapt -> generate.
func TestEndToEndPipeline(t *testing.T) {
	fw := New()

	// Design.
	b, tv, mv := factoryViews()
	arch, report, err := fw.Design(b, tv, mv)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("design report: %v", report.Errors())
	}

	// Implement: register the content classes.
	contents := scenario.NewContents()
	if err := contents.Register(fw.Registry()); err != nil {
		t.Fatal(err)
	}

	// Deploy and run 95ms of simulated time.
	sys, err := fw.Deploy(arch, assembly.Soleil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(95 * ms); err != nil {
		t.Fatal(err)
	}
	if contents.Line.Produced() < 9 {
		t.Fatalf("produced = %d", contents.Line.Produced())
	}
	if contents.Audit.Logged() < 9 {
		t.Fatalf("logged = %d", contents.Audit.Logged())
	}

	// Adapt: introspection works on the deployed system.
	mgr, err := fw.Adapt(sys)
	if err != nil {
		t.Fatal(err)
	}
	snap := mgr.Introspect()
	if len(snap.Components) != 4 || len(snap.Domains) != 3 {
		t.Fatalf("snapshot: %d components, %d domains", len(snap.Components), len(snap.Domains))
	}

	// Generate source for the same architecture.
	files, err := fw.GenerateSource(arch, assembly.UltraMerge, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("ultra files = %d", len(files))
	}
	genReport := fw.GenerationReport(files, assembly.UltraMerge)
	if !genReport.OK() {
		t.Fatalf("generation requirements not met: %+v", genReport.Reqs)
	}
}

func TestDesignRefusesBadThreadView(t *testing.T) {
	fw := New()
	b, tv, mv := factoryViews()
	tv.Domains = tv.Domains[:1] // MonitoringSystem and Audit undeployed
	_, report, err := fw.Design(b, tv, mv)
	if err == nil {
		t.Fatal("incomplete thread view accepted")
	}
	if report.OK() {
		t.Fatal("report does not carry the errors")
	}
}

func TestADLRoundTripThroughFramework(t *testing.T) {
	fw := New()
	arch, err := fixture.MotivationExample()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := fw.SaveADL(&sb, arch); err != nil {
		t.Fatal(err)
	}
	back, err := fw.ParseADL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !fw.Validate(back).OK() {
		t.Fatal("round-tripped architecture invalid")
	}
	if _, err := fw.LoadADL("/nonexistent.xml"); err == nil {
		t.Fatal("missing ADL accepted")
	}
}

func TestDeployWithStubs(t *testing.T) {
	fw := New()
	arch, err := fixture.MotivationExample()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Deploy(arch, assembly.MergeAll); err == nil {
		t.Fatal("deploy without contents accepted")
	}
	sys, err := fw.DeployWithStubs(arch, assembly.MergeAll)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(25 * ms); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterThroughFramework(t *testing.T) {
	fw := New()
	if err := fw.Register("X", func() membrane.Content { return &assembly.StubContent{} }); err != nil {
		t.Fatal(err)
	}
	if err := fw.Register("X", func() membrane.Content { return &assembly.StubContent{} }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := fw.WriteSource(t.TempDir(), nil); err != nil {
		t.Fatal(err)
	}
}
