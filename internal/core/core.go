// Package core ties the framework together — the paper's primary
// contribution as one pipeline: design (three views, stepwise
// verification), RTSJ validation, implementation (content classes are
// the only manual step), infrastructure deployment or generation in
// the three optimization modes, execution on the simulated RTSJ
// runtime, and runtime adaptation.
//
// The stages map to the paper as follows:
//
//	Fig. 3 design flow      -> Design (internal/views)
//	Sect. 3.1 verification  -> Validate (internal/validate)
//	Fig. 4 ADL              -> LoadADL / SaveADL (internal/adl)
//	Fig. 5 implementation   -> Register + Deploy (internal/assembly)
//	Sect. 4.3 generator     -> GenerateSource (internal/generate)
//	Sect. 4.2 adaptability  -> Adapt (internal/reconfig)
package core

import (
	"fmt"
	"io"

	"soleil/internal/adl"
	"soleil/internal/assembly"
	"soleil/internal/generate"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/reconfig"
	"soleil/internal/validate"
	"soleil/internal/views"
)

// Framework is the entry point for building, validating, deploying
// and generating RTSJ component systems.
type Framework struct {
	registry *assembly.Registry
}

// New creates a framework instance with an empty content registry.
func New() *Framework {
	return &Framework{registry: assembly.NewRegistry()}
}

// Register installs a content class — the developer's implementation
// of one primitive component (Fig. 5, step 1).
func (f *Framework) Register(class string, factory func() membrane.Content) error {
	return f.registry.Register(class, factory)
}

// Registry exposes the content registry.
func (f *Framework) Registry() *assembly.Registry { return f.registry }

// LoadADL reads an architecture from a Fig. 4 XML document.
func (f *Framework) LoadADL(path string) (*model.Architecture, error) {
	return adl.DecodeFile(path)
}

// ParseADL reads an architecture from XML held in memory.
func (f *Framework) ParseADL(r io.Reader) (*model.Architecture, error) {
	return adl.Decode(r)
}

// SaveADL serializes an architecture to XML.
func (f *Framework) SaveADL(w io.Writer, arch *model.Architecture) error {
	return adl.Encode(w, arch)
}

// Design runs the complete Fig. 3 methodology: the business view,
// then the thread management view, then the memory management view,
// verifying RTSJ conformance after each step. The returned report is
// the final verification outcome; a non-nil error means the
// architecture was refused.
func (f *Framework) Design(b views.BusinessView, t views.ThreadView, m views.MemoryView) (*model.Architecture, validate.Report, error) {
	flow, err := views.NewFlow(b)
	if err != nil {
		return nil, validate.Report{}, err
	}
	r, err := flow.ApplyThreadView(t)
	if err != nil {
		return nil, r, err
	}
	if !r.OK() {
		return nil, r, fmt.Errorf("core: thread view violates RTSJ (%d errors)", len(r.Errors()))
	}
	r, err = flow.ApplyMemoryView(m)
	if err != nil {
		return nil, r, err
	}
	return flow.Finalize()
}

// Validate checks an architecture against the RTSJ conformance rules.
func (f *Framework) Validate(arch *model.Architecture) validate.Report {
	return validate.Validate(arch)
}

// Deploy builds the runnable execution infrastructure for a validated
// architecture in the given mode, using the registered content
// classes.
func (f *Framework) Deploy(arch *model.Architecture, mode assembly.Mode) (*assembly.System, error) {
	return assembly.Deploy(arch, assembly.Config{Mode: mode, Registry: f.registry})
}

// DeployWithStubs deploys like Deploy but substitutes stub content
// for unregistered content classes.
func (f *Framework) DeployWithStubs(arch *model.Architecture, mode assembly.Mode) (*assembly.System, error) {
	return assembly.Deploy(arch, assembly.Config{Mode: mode, Registry: f.registry, AllowStubs: true})
}

// DeployConfig deploys with full control over the assembly
// configuration (extra interceptors, resilient execution, buffer
// sizing). The framework's registry is used when cfg.Registry is nil.
func (f *Framework) DeployConfig(arch *model.Architecture, cfg assembly.Config) (*assembly.System, error) {
	if cfg.Registry == nil {
		cfg.Registry = f.registry
	}
	return assembly.Deploy(arch, cfg)
}

// Adapt returns a reconfiguration manager for a deployed system.
func (f *Framework) Adapt(sys *assembly.System) (*reconfig.Manager, error) {
	return reconfig.NewManager(sys)
}

// GenerateSource emits the execution-infrastructure source code for
// the architecture in the given mode (the Soleil generator, Sect.
// 4.3) and returns the generated files.
func (f *Framework) GenerateSource(arch *model.Architecture, mode assembly.Mode, withMain bool) ([]generate.File, error) {
	return generate.Generate(arch, generate.Options{Mode: mode, Main: withMain})
}

// WriteSource writes generated files into a directory.
func (f *Framework) WriteSource(dir string, files []generate.File) error {
	return generate.WriteFiles(dir, files)
}

// GenerationReport confronts generated output with the code-generation
// requirements of Sect. 5.2.
func (f *Framework) GenerationReport(files []generate.File, mode assembly.Mode) generate.Report {
	return generate.CheckRequirements(files, mode)
}
