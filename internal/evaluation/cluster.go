package evaluation

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/cluster"
	"soleil/internal/dist"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/rtsj/thread"
	"soleil/internal/trace"
)

// Panel (d) extends the paper's evaluation to the cluster deployment
// plane: the same ping-pong architecture measured once deployed on a
// single node (asynchronous bindings over in-process RTBuffers,
// released by sporadic polling) and once partitioned across two nodes
// over loopback TCP (the planner's dist links). The comparison prices
// a node boundary against an in-process buffer under identical
// pacing.

// ClusterScenarios names the panel-(d) variants in report order.
var ClusterScenarios = []string{"in-process", "cluster-loopback"}

// ClusterResult is one scenario's measurement.
type ClusterResult struct {
	Scenario string `json:"scenario"`
	// Messages is the number of round trips measured.
	Messages int `json:"messages"`
	// Inflight is the closed-loop window (pings circulating at once).
	Inflight int `json:"inflight"`
	// RTTMedian/RTTP99 summarize the ping->echo->ack round trip.
	RTTMedian time.Duration `json:"rttMedian"`
	RTTP99    time.Duration `json:"rttP99"`
	// Throughput is achieved round trips per second.
	Throughput float64 `json:"throughputPerSec"`
}

// pingerContent closes the loop: every ack triggers the next ping, so
// exactly `inflight` messages circulate. Payloads are send timestamps
// (unix nanos); a zero payload is a seed and contributes no sample.
type pingerContent struct {
	svc *membrane.Services

	mu      sync.Mutex
	rtts    []time.Duration
	target  int
	done    chan struct{}
	doneSig sync.Once
}

func (p *pingerContent) Init(svc *membrane.Services) error { p.svc = svc; return nil }

func (p *pingerContent) Activate(*thread.Env) error { return nil }

func (p *pingerContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	if sent, ok := arg.(int64); ok && sent > 0 {
		rtt := time.Duration(time.Now().UnixNano() - sent)
		p.mu.Lock()
		p.rtts = append(p.rtts, rtt)
		finished := len(p.rtts) >= p.target
		p.mu.Unlock()
		if finished {
			p.doneSig.Do(func() { close(p.done) })
			return nil, nil
		}
	}
	out, err := p.svc.Port("out")
	if err != nil {
		return nil, err
	}
	if err := out.Send(env, "put", time.Now().UnixNano()); err != nil &&
		!errors.Is(err, dist.ErrBackpressure) {
		return nil, err
	}
	return nil, nil
}

func (p *pingerContent) samples() []time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]time.Duration, len(p.rtts))
	copy(out, p.rtts)
	return out
}

// echoContent reflects every ping back to the pinger.
type echoContent struct {
	svc *membrane.Services
}

func (e *echoContent) Init(svc *membrane.Services) error { e.svc = svc; return nil }

func (e *echoContent) Activate(*thread.Env) error { return nil }

func (e *echoContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	back, err := e.svc.Port("back")
	if err != nil {
		return nil, err
	}
	if err := back.Send(env, "put", arg); err != nil && !errors.Is(err, dist.ErrBackpressure) {
		return nil, err
	}
	return nil, nil
}

// pingPongArch is the panel-(d) architecture: two sporadic actives,
// each in its own immortal area + RT domain so the deployment may
// split them, bound asynchronously in both directions.
func pingPongArch() (*model.Architecture, error) {
	a := model.NewArchitecture("pingpong")
	pinger, err := a.NewActive("Pinger", model.Activation{Kind: model.SporadicActivation})
	if err != nil {
		return nil, err
	}
	echo, err := a.NewActive("Echo", model.Activation{Kind: model.SporadicActivation})
	if err != nil {
		return nil, err
	}
	steps := []error{
		pinger.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "IPing"}),
		pinger.AddInterface(model.Interface{Name: "ack", Role: model.ServerRole, Signature: "IPong"}),
		pinger.SetContent("PingerImpl"),
		echo.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "IPing"}),
		echo.AddInterface(model.Interface{Name: "back", Role: model.ClientRole, Signature: "IPong"}),
		echo.SetContent("EchoImpl"),
	}
	for _, comp := range []struct {
		c      *model.Component
		suffix string
	}{{pinger, "ping"}, {echo, "echo"}} {
		imm, err := a.NewMemoryArea("imm_"+comp.suffix, model.AreaDesc{Kind: model.ImmortalMemory})
		if err != nil {
			return nil, err
		}
		td, err := a.NewThreadDomain("td_"+comp.suffix, model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
		if err != nil {
			return nil, err
		}
		steps = append(steps, a.AddChild(imm, td), a.AddChild(td, comp.c))
	}
	for _, b := range []model.Binding{
		{Client: model.Endpoint{Component: "Pinger", Interface: "out"},
			Server: model.Endpoint{Component: "Echo", Interface: "in"},
			Protocol: model.Asynchronous, BufferSize: 128, Pattern: "deep-copy"},
		{Client: model.Endpoint{Component: "Echo", Interface: "back"},
			Server: model.Endpoint{Component: "Pinger", Interface: "ack"},
			Protocol: model.Asynchronous, BufferSize: 128, Pattern: "deep-copy"},
	} {
		if _, err := a.Bind(b); err != nil {
			return nil, err
		}
	}
	for _, err := range steps {
		if err != nil {
			return nil, err
		}
	}
	return a, nil
}

func pingPongDeployment(arch string, nodes int) (*model.Deployment, error) {
	d := model.NewDeployment(arch)
	if nodes == 1 {
		return d, d.AddNode(&model.DeployNode{Name: "solo", Addr: "127.0.0.1:0",
			Assigned: []string{"Pinger", "Echo"}})
	}
	if err := d.AddNode(&model.DeployNode{Name: "ping", Addr: "127.0.0.1:0",
		Assigned: []string{"Pinger"}}); err != nil {
		return nil, err
	}
	return d, d.AddNode(&model.DeployNode{Name: "echo", Addr: "127.0.0.1:0",
		Assigned: []string{"Echo"}})
}

// MeasureClusterScenario runs one panel-(d) scenario: messages round
// trips with `inflight` pings circulating.
func MeasureClusterScenario(scenario string, messages, inflight int) (ClusterResult, error) {
	nodes := 1
	if scenario == "cluster-loopback" {
		nodes = 2
	}
	arch, err := pingPongArch()
	if err != nil {
		return ClusterResult{}, err
	}
	dep, err := pingPongDeployment(arch.Name(), nodes)
	if err != nil {
		return ClusterResult{}, err
	}
	plan, err := cluster.Compute(arch, dep)
	if err != nil {
		return ClusterResult{}, err
	}

	pinger := &pingerContent{target: messages, done: make(chan struct{})}
	echo := &echoContent{}
	reg := assembly.NewRegistry()
	if err := reg.Register("PingerImpl", func() membrane.Content { return pinger }); err != nil {
		return ClusterResult{}, err
	}
	if err := reg.Register("EchoImpl", func() membrane.Content { return echo }); err != nil {
		return ClusterResult{}, err
	}

	// Ephemeral ports: every agent listens on :0 and the resolver maps
	// node names to whatever got bound.
	var mu sync.Mutex
	addrs := make(map[string]string)
	resolve := func(node string) (string, error) {
		mu.Lock()
		defer mu.Unlock()
		addr, ok := addrs[node]
		if !ok {
			return "", fmt.Errorf("node %s not up yet", node)
		}
		return addr, nil
	}
	var agents []*cluster.Agent
	defer func() {
		for _, ag := range agents {
			ag.Close()
		}
	}()
	for _, np := range plan.Nodes() {
		ag, err := cluster.Start(cluster.AgentConfig{
			Node:     np.Name,
			Plan:     plan,
			Registry: reg,
			Resolver: resolve,
			Dial:     dist.DialConfig{Timeout: 2 * time.Second, Base: time.Millisecond, Max: 20 * time.Millisecond},
			// Tight sporadic polling so the in-process variant's
			// release latency is pacing, not the 2ms default.
			Pacer: assembly.PacerOptions{SporadicPoll: 100 * time.Microsecond},
		})
		if err != nil {
			return ClusterResult{}, err
		}
		mu.Lock()
		addrs[np.Name] = ag.Addr()
		mu.Unlock()
		agents = append(agents, ag)
	}

	// Seed the closed loop through the pinger's own dataplane.
	var pingNode *cluster.Agent
	for _, ag := range agents {
		if _, ok := ag.System().Node("Pinger"); ok {
			pingNode = ag
		}
	}
	if pingNode == nil {
		return ClusterResult{}, fmt.Errorf("evaluation: no agent hosts the Pinger")
	}
	env, closeEnv, err := pingNode.System().NewEnv(false)
	if err != nil {
		return ClusterResult{}, err
	}
	defer closeEnv()
	node, _ := pingNode.System().Node("Pinger")
	start := time.Now()
	for i := 0; i < inflight; i++ {
		if _, err := node.Invoke(env, "ack", "put", int64(0)); err != nil {
			return ClusterResult{}, err
		}
	}
	select {
	case <-pinger.done:
	case <-time.After(2 * time.Minute):
		return ClusterResult{}, fmt.Errorf("evaluation: %s stalled at %d/%d round trips",
			scenario, len(pinger.samples()), messages)
	}
	elapsed := time.Since(start)

	samples := pinger.samples()
	sum := trace.Summarize(samples)
	return ClusterResult{
		Scenario:   scenario,
		Messages:   len(samples),
		Inflight:   inflight,
		RTTMedian:  sum.Median,
		RTTP99:     sum.P99,
		Throughput: float64(len(samples)) / elapsed.Seconds(),
	}, nil
}

// MeasureCluster runs both panel-(d) scenarios.
func MeasureCluster(messages, inflight int) ([]ClusterResult, error) {
	out := make([]ClusterResult, 0, len(ClusterScenarios))
	for _, s := range ClusterScenarios {
		r, err := MeasureClusterScenario(s, messages, inflight)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
