package evaluation

import (
	"testing"
)

func TestUnknownVariant(t *testing.T) {
	if _, err := New("FANCY"); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestAllVariantsFunctionallyEquivalent(t *testing.T) {
	const n = 320 // 20 anomaly cycles
	sums := make(map[string]uint64)
	for _, name := range VariantNames {
		v, err := New(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := 0; i < n; i++ {
			if err := v.Transaction(); err != nil {
				t.Fatalf("%s transaction %d: %v", name, i, err)
			}
		}
		sums[name] = v.Checksum()
		v.Close()
	}
	for _, name := range VariantNames[1:] {
		if sums[name] != sums["OO"] {
			t.Errorf("%s checksum %d != OO checksum %d — variants diverge functionally",
				name, sums[name], sums["OO"])
		}
	}
	if sums["OO"] == 0 {
		t.Error("checksum never advanced")
	}
}

func TestMeasureTiming(t *testing.T) {
	v, err := New("ULTRA-MERGE")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	r, err := MeasureTiming(v, 50, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.N != 200 {
		t.Fatalf("N = %d", r.Summary.N)
	}
	if r.Summary.Median <= 0 {
		t.Fatalf("median = %v", r.Summary.Median)
	}
	if len(r.Samples) != 200 {
		t.Fatalf("samples = %d", len(r.Samples))
	}
	if r.Variant != "ULTRA-MERGE" {
		t.Fatalf("variant = %s", r.Variant)
	}
}

func TestMeasureAllTimingsSmall(t *testing.T) {
	rs, err := MeasureAllTimings(20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("results = %d", len(rs))
	}
	for i, r := range rs {
		if r.Variant != VariantNames[i] {
			t.Errorf("order: %s at %d", r.Variant, i)
		}
		if r.Summary.Median <= 0 {
			t.Errorf("%s median = %v", r.Variant, r.Summary.Median)
		}
	}
}

func TestMeasureFootprint(t *testing.T) {
	r, err := MeasureFootprint("SOLEIL")
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes <= 0 {
		t.Fatalf("footprint = %d", r.Bytes)
	}
}

func TestFrameworkVariantScopeHygiene(t *testing.T) {
	// After any number of transactions, the console scope must be
	// fully reclaimed (no leak across iterations).
	v, err := New("SOLEIL")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	for i := 0; i < 100; i++ {
		if err := v.Transaction(); err != nil {
			t.Fatal(err)
		}
	}
}
