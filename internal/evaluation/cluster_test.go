package evaluation

import (
	"testing"
	"time"
)

func TestMeasureClusterScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("network-paced measurement")
	}
	for _, scenario := range ClusterScenarios {
		r, err := MeasureClusterScenario(scenario, 50, 2)
		if err != nil {
			t.Fatalf("%s: %v", scenario, err)
		}
		if r.Messages < 50 {
			t.Fatalf("%s measured only %d round trips", scenario, r.Messages)
		}
		if r.RTTMedian <= 0 || r.RTTP99 < r.RTTMedian {
			t.Fatalf("%s summary incoherent: %+v", scenario, r)
		}
		if r.Throughput <= 0 {
			t.Fatalf("%s throughput = %v", scenario, r.Throughput)
		}
		if r.RTTMedian > time.Second {
			t.Fatalf("%s RTT median absurd: %v", scenario, r.RTTMedian)
		}
	}
}
