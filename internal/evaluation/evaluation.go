// Package evaluation reproduces the paper's evaluation (Sect. 5.1,
// Fig. 7): the motivation-example transaction — one complete
// iteration starting from the ProductionLine, through the
// MonitoringSystem's evaluation, the synchronous Console call on
// anomalies and the asynchronous AuditLog hop — measured on four
// implementations: the hand-written OO baseline and the framework
// infrastructure in its SOLEIL, MERGE-ALL and ULTRA-MERGE modes.
//
// Timing follows the paper's method: wall-clock measurement of the
// complete iteration, steady-state observations only (a warm-up
// prefix is discarded), 10,000 observations by default.
package evaluation

import (
	"fmt"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/baseline"
	"soleil/internal/fixture"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/thread"
	"soleil/internal/scenario"
	"soleil/internal/trace"
)

// Defaults of the paper's benchmarking method.
const (
	// DefaultObservations is the paper's 10,000 steady-state
	// observations.
	DefaultObservations = 10000
	// DefaultWarmup is the cold-start prefix discarded before
	// steady state.
	DefaultWarmup = 2000
)

// VariantNames in the paper's order.
var VariantNames = []string{"OO", "SOLEIL", "MERGE-ALL", "ULTRA-MERGE"}

// Variant is one runnable implementation of the evaluation scenario.
type Variant struct {
	Name string
	// Transaction runs one complete iteration.
	Transaction func() error
	// Checksum exposes the audit checksum for cross-validation.
	Checksum func() uint64
	// Close releases the variant's resources.
	Close func()
}

// New builds the named variant.
func New(name string) (*Variant, error) {
	switch name {
	case "OO":
		return NewOO()
	case "SOLEIL":
		return NewFramework(assembly.Soleil)
	case "MERGE-ALL":
		return NewFramework(assembly.MergeAll)
	case "ULTRA-MERGE":
		return NewFramework(assembly.UltraMerge)
	default:
		return nil, fmt.Errorf("evaluation: unknown variant %q (have %v)", name, VariantNames)
	}
}

// NewOO builds the hand-written baseline.
func NewOO() (*Variant, error) {
	app, err := baseline.New()
	if err != nil {
		return nil, err
	}
	return &Variant{
		Name:        "OO",
		Transaction: app.Transaction,
		Checksum:    app.Checksum,
		Close:       app.Close,
	}, nil
}

// NewFramework deploys the motivation example (Fig. 4) in the given
// assembly mode and drives its dataplane directly: the same membranes,
// ports, buffers and pattern machinery the scheduled system uses, but
// called synchronously so each iteration's wall-clock time is the
// infrastructure cost the paper measures.
func NewFramework(mode assembly.Mode) (*Variant, error) {
	arch, err := fixture.MotivationExample()
	if err != nil {
		return nil, err
	}
	contents := scenario.NewContents()
	reg := assembly.NewRegistry()
	if err := contents.Register(reg); err != nil {
		return nil, err
	}
	sys, err := assembly.Deploy(arch, assembly.Config{Mode: mode, Registry: reg})
	if err != nil {
		return nil, err
	}
	if err := sys.Start(); err != nil {
		return nil, err
	}
	// The driving environment mirrors the NHRT producers: a no-heap
	// context rooted in immortal memory.
	ctx, err := memory.NewContext(sys.MemoryRuntime().Immortal(), true)
	if err != nil {
		return nil, err
	}
	env := thread.NewEnv(nil, ctx)

	line, ok := sys.Node(fixture.ProductionLine)
	if !ok {
		return nil, fmt.Errorf("evaluation: ProductionLine node missing")
	}
	monitor, ok := sys.Node(fixture.MonitoringSystem)
	if !ok {
		return nil, fmt.Errorf("evaluation: MonitoringSystem node missing")
	}
	audit, ok := sys.Node(fixture.Audit)
	if !ok {
		return nil, fmt.Errorf("evaluation: Audit node missing")
	}

	return &Variant{
		Name: mode.String(),
		Transaction: func() error {
			if err := line.Activate(env); err != nil {
				return err
			}
			if _, err := monitor.Deliver(env); err != nil {
				return err
			}
			_, err := audit.Deliver(env)
			return err
		},
		Checksum: contents.Audit.Checksum,
		Close:    ctx.Close,
	}, nil
}

// TimingResult is one variant's Fig. 7(a)/(b) measurement.
type TimingResult struct {
	Variant string
	Summary trace.Summary
	Samples []time.Duration
}

// MeasureTiming runs warmup+observations transactions on v and
// summarizes the steady-state samples.
func MeasureTiming(v *Variant, warmup, observations int) (TimingResult, error) {
	col := trace.NewCollector(warmup, observations)
	total := warmup + observations
	for i := 0; i < total; i++ {
		start := time.Now()
		if err := v.Transaction(); err != nil {
			return TimingResult{}, fmt.Errorf("%s transaction %d: %w", v.Name, i, err)
		}
		col.Record(time.Since(start))
	}
	return TimingResult{Variant: v.Name, Summary: col.Summarize(), Samples: col.Samples()}, nil
}

// MeasureAllTimings measures every variant in the paper's order.
func MeasureAllTimings(warmup, observations int) ([]TimingResult, error) {
	out := make([]TimingResult, 0, len(VariantNames))
	for _, name := range VariantNames {
		v, err := New(name)
		if err != nil {
			return nil, err
		}
		r, err := MeasureTiming(v, warmup, observations)
		v.Close()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FootprintResult is one variant's Fig. 7(c) measurement.
type FootprintResult struct {
	Variant string
	// Bytes is the live-heap growth attributable to constructing the
	// variant (infrastructure + contents + simulated memory regions).
	Bytes int64
}

// MeasureFootprint builds the named variant under heap accounting.
func MeasureFootprint(name string) (FootprintResult, error) {
	var buildErr error
	bytes, kept := trace.MeasureFootprint(func() any {
		v, err := New(name)
		if err != nil {
			buildErr = err
			return nil
		}
		// Run a few transactions so lazily-allocated paths are
		// materialized, as in the paper's runtime footprints.
		for i := 0; i < 64; i++ {
			if err := v.Transaction(); err != nil {
				buildErr = err
				return nil
			}
		}
		return v
	})
	if buildErr != nil {
		return FootprintResult{}, buildErr
	}
	if v, ok := kept.(*Variant); ok && v != nil {
		defer v.Close()
	}
	return FootprintResult{Variant: name, Bytes: bytes}, nil
}

// MeasureAllFootprints measures every variant in the paper's order.
func MeasureAllFootprints() ([]FootprintResult, error) {
	out := make([]FootprintResult, 0, len(VariantNames))
	for _, name := range VariantNames {
		r, err := MeasureFootprint(name)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
