package model

import (
	"testing"
	"time"
)

const ms = time.Millisecond

func TestConstructorValidation(t *testing.T) {
	a := NewArchitecture("t")
	if _, err := a.NewActive("", Activation{Kind: SporadicActivation}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := a.NewActive("p", Activation{Kind: PeriodicActivation}); err == nil {
		t.Error("periodic without period accepted")
	}
	if _, err := a.NewActive("p", Activation{Kind: ActivationKind(9)}); err == nil {
		t.Error("unknown activation accepted")
	}
	if _, err := a.NewActive("p", Activation{Kind: SporadicActivation, Deadline: -ms}); err == nil {
		t.Error("negative deadline accepted")
	}
	if _, err := a.NewThreadDomain("td", DomainDesc{}); err == nil {
		t.Error("thread domain without kind accepted")
	}
	if _, err := a.NewMemoryArea("ma", AreaDesc{Kind: ScopedMemory}); err == nil {
		t.Error("scoped area without size accepted")
	}
	if _, err := a.NewMemoryArea("ma", AreaDesc{}); err == nil {
		t.Error("memory area without kind accepted")
	}
	if _, err := a.NewPassive("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.NewPassive("x"); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestScopedAreaDefaultsScopeName(t *testing.T) {
	a := NewArchitecture("t")
	ma, err := a.NewMemoryArea("S1", AreaDesc{Kind: ScopedMemory, Size: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if got := ma.Area().ScopeName; got != "S1" {
		t.Fatalf("scope name = %q", got)
	}
}

func TestInterfaceRules(t *testing.T) {
	a := NewArchitecture("t")
	p, _ := a.NewPassive("p")
	td, _ := a.NewThreadDomain("td", DomainDesc{Kind: RegularThread})
	if err := p.AddInterface(Interface{Name: "s", Role: ServerRole, Signature: "I"}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddInterface(Interface{Name: "s", Role: ServerRole, Signature: "I"}); err == nil {
		t.Error("duplicate interface accepted")
	}
	if err := p.AddInterface(Interface{Name: "", Role: ServerRole}); err == nil {
		t.Error("unnamed interface accepted")
	}
	if err := p.AddInterface(Interface{Name: "x"}); err == nil {
		t.Error("roleless interface accepted")
	}
	if err := td.AddInterface(Interface{Name: "x", Role: ServerRole}); err == nil {
		t.Error("functional interface on ThreadDomain accepted")
	}
	if _, ok := p.Interface("s"); !ok {
		t.Error("interface lookup failed")
	}
	if _, ok := p.Interface("zz"); ok {
		t.Error("phantom interface found")
	}
}

func TestContentRules(t *testing.T) {
	a := NewArchitecture("t")
	p, _ := a.NewPassive("p")
	comp, _ := a.NewComposite("c")
	if err := p.SetContent("Impl"); err != nil {
		t.Fatal(err)
	}
	if p.Content() != "Impl" {
		t.Fatal("content not stored")
	}
	if err := comp.SetContent("Impl"); err == nil {
		t.Error("content on composite accepted")
	}
}

func TestHierarchyAndSharing(t *testing.T) {
	a := NewArchitecture("t")
	root, _ := a.NewComposite("root")
	td, _ := a.NewThreadDomain("td", DomainDesc{Kind: RealtimeThread, Priority: 20})
	act, _ := a.NewActive("act", Activation{Kind: SporadicActivation})

	if err := a.AddChild(root, act); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, act); err != nil {
		t.Fatal(err)
	}
	if got := len(act.Supers()); got != 2 {
		t.Fatalf("supers = %d, want 2 (sharing)", got)
	}
	if err := a.AddChild(root, act); err == nil {
		t.Error("duplicate edge accepted")
	}
	if err := a.AddChild(act, root); err == nil {
		t.Error("cycle accepted")
	}
	if err := a.AddChild(act, td); err == nil {
		t.Error("child under primitive accepted")
	}
	// Two ThreadDomains for the same component are refused at edge
	// creation.
	td2, _ := a.NewThreadDomain("td2", DomainDesc{Kind: RealtimeThread, Priority: 21})
	if err := a.AddChild(td2, act); err == nil {
		t.Error("second ThreadDomain parent accepted")
	}

	roots := a.Roots()
	if len(roots) != 3 { // root, td, td2
		t.Fatalf("roots = %d", len(roots))
	}
}

func TestEffectiveThreadDomain(t *testing.T) {
	a := NewArchitecture("t")
	td, _ := a.NewThreadDomain("td", DomainDesc{Kind: NoHeapRealtimeThread, Priority: 30})
	act, _ := a.NewActive("act", Activation{Kind: SporadicActivation})
	lonely, _ := a.NewActive("lonely", Activation{Kind: SporadicActivation})
	if err := a.AddChild(td, act); err != nil {
		t.Fatal(err)
	}
	got, err := a.EffectiveThreadDomain(act)
	if err != nil || got != td {
		t.Fatalf("EffectiveThreadDomain = %v, %v", got, err)
	}
	if _, err := a.EffectiveThreadDomain(lonely); err == nil {
		t.Error("undeployed active resolved a ThreadDomain")
	}
}

func TestEffectiveMemoryArea(t *testing.T) {
	a := NewArchitecture("t")
	imm, _ := a.NewMemoryArea("imm", AreaDesc{Kind: ImmortalMemory})
	td, _ := a.NewThreadDomain("td", DomainDesc{Kind: NoHeapRealtimeThread, Priority: 30})
	act, _ := a.NewActive("act", Activation{Kind: SporadicActivation})
	if err := a.AddChild(imm, td); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, act); err != nil {
		t.Fatal(err)
	}
	got, err := a.EffectiveMemoryArea(act)
	if err != nil || got != imm {
		t.Fatalf("EffectiveMemoryArea = %v, %v", got, err)
	}
	// Nearest wins: deploying act directly under a scope overrides the
	// area inherited through its ThreadDomain (the validator, not the
	// model, polices whether that composition is RTSJ-legal).
	s, _ := a.NewMemoryArea("s", AreaDesc{Kind: ScopedMemory, Size: 64})
	if err := a.AddChild(s, act); err != nil {
		t.Fatal(err)
	}
	got, err = a.EffectiveMemoryArea(act)
	if err != nil || got != s {
		t.Fatalf("nearest area = %v, %v (want s)", got, err)
	}
	// An undeployed component resolves to nothing.
	p, _ := a.NewPassive("p")
	if _, err := a.EffectiveMemoryArea(p); err == nil {
		t.Error("undeployed passive resolved a MemoryArea")
	}
}

func TestNestedMemoryAreas(t *testing.T) {
	a := NewArchitecture("t")
	outer, _ := a.NewMemoryArea("outer", AreaDesc{Kind: ScopedMemory, Size: 1024})
	inner, _ := a.NewMemoryArea("inner", AreaDesc{Kind: ScopedMemory, Size: 512})
	p, _ := a.NewPassive("p")
	if err := a.AddChild(outer, inner); err != nil {
		t.Fatalf("memory areas must nest: %v", err)
	}
	if err := a.AddChild(inner, p); err != nil {
		t.Fatal(err)
	}
	got, err := a.EffectiveMemoryArea(p)
	if err != nil || got != inner {
		t.Fatalf("nearest area = %v, %v", got, err)
	}
}

func TestBindings(t *testing.T) {
	a := NewArchitecture("t")
	c1, _ := a.NewActive("c1", Activation{Kind: SporadicActivation})
	c2, _ := a.NewPassive("c2")
	mustItf := func(c *Component, name string, role Role, sig string) {
		t.Helper()
		if err := c.AddInterface(Interface{Name: name, Role: role, Signature: sig}); err != nil {
			t.Fatal(err)
		}
	}
	mustItf(c1, "out", ClientRole, "I")
	mustItf(c1, "out2", ClientRole, "J")
	mustItf(c2, "in", ServerRole, "I")

	if _, err := a.Bind(Binding{
		Client: Endpoint{"c1", "out"}, Server: Endpoint{"c2", "in"}, Protocol: Synchronous,
	}); err != nil {
		t.Fatal(err)
	}
	bad := []Binding{
		{Client: Endpoint{"zz", "out"}, Server: Endpoint{"c2", "in"}, Protocol: Synchronous},
		{Client: Endpoint{"c1", "zz"}, Server: Endpoint{"c2", "in"}, Protocol: Synchronous},
		{Client: Endpoint{"c1", "out2"}, Server: Endpoint{"c2", "zz"}, Protocol: Synchronous},
		{Client: Endpoint{"c2", "in"}, Server: Endpoint{"c2", "in"}, Protocol: Synchronous},    // wrong role
		{Client: Endpoint{"c1", "out2"}, Server: Endpoint{"c2", "in"}, Protocol: Synchronous},  // sig mismatch
		{Client: Endpoint{"c1", "out"}, Server: Endpoint{"c2", "in"}, Protocol: Synchronous},   // already bound
		{Client: Endpoint{"c1", "out2"}, Server: Endpoint{"c2", "in"}, Protocol: Asynchronous}, // sig mismatch + no buffer
		{Client: Endpoint{"c1", "out"}, Server: Endpoint{"c2", "in"}, Protocol: Protocol(9)},   // unknown protocol
		{Client: Endpoint{"c1", "out"}, Server: Endpoint{"c2", "in"}, Protocol: Synchronous, BufferSize: 4},
	}
	for i, b := range bad {
		if _, err := a.Bind(b); err == nil {
			t.Errorf("bad binding %d accepted", i)
		}
	}
	if got := len(a.Bindings()); got != 1 {
		t.Fatalf("bindings = %d", got)
	}
	if got := len(a.BindingsOf("c1")); got != 1 {
		t.Fatalf("BindingsOf(c1) = %d", got)
	}
	if got := len(a.BindingsOf("zz")); got != 0 {
		t.Fatalf("BindingsOf(zz) = %d", got)
	}
}

func TestEnumStrings(t *testing.T) {
	if Active.String() != "Active" || ThreadDomain.String() != "ThreadDomain" {
		t.Error("kind strings")
	}
	if !Active.Functional() || ThreadDomain.Functional() {
		t.Error("Functional predicate")
	}
	roundTrips := []struct {
		s     string
		parse func(string) (string, error)
	}{
		{"periodic", func(s string) (string, error) { k, err := ParseActivationKind(s); return k.String(), err }},
		{"sporadic", func(s string) (string, error) { k, err := ParseActivationKind(s); return k.String(), err }},
		{"NHRT", func(s string) (string, error) { k, err := ParseThreadKind(s); return k.String(), err }},
		{"Regular", func(s string) (string, error) { k, err := ParseThreadKind(s); return k.String(), err }},
		{"scope", func(s string) (string, error) { k, err := ParseMemoryKind(s); return k.String(), err }},
		{"immortal", func(s string) (string, error) { k, err := ParseMemoryKind(s); return k.String(), err }},
		{"client", func(s string) (string, error) { k, err := ParseRole(s); return k.String(), err }},
		{"synchronous", func(s string) (string, error) { k, err := ParseProtocol(s); return k.String(), err }},
	}
	for _, rt := range roundTrips {
		got, err := rt.parse(rt.s)
		if err != nil || got != rt.s {
			t.Errorf("round trip %q -> %q, %v", rt.s, got, err)
		}
	}
	for _, bad := range []func() error{
		func() error { _, err := ParseActivationKind("x"); return err },
		func() error { _, err := ParseThreadKind("x"); return err },
		func() error { _, err := ParseMemoryKind("x"); return err },
		func() error { _, err := ParseRole("x"); return err },
		func() error { _, err := ParseProtocol("x"); return err },
	} {
		if bad() == nil {
			t.Error("bad enum spelling parsed")
		}
	}
}

func TestComponentsOfKindAndPeriodOf(t *testing.T) {
	a := NewArchitecture("t")
	act, _ := a.NewActive("a", Activation{Kind: PeriodicActivation, Period: 10 * ms})
	a.NewPassive("p")
	a.NewThreadDomain("td", DomainDesc{Kind: RegularThread})
	if got := len(a.ComponentsOfKind(Active)); got != 1 {
		t.Fatalf("actives = %d", got)
	}
	if got := PeriodOf(act); got != 10*ms {
		t.Fatalf("PeriodOf = %v", got)
	}
	p, _ := a.Component("p")
	if got := PeriodOf(p); got != 0 {
		t.Fatalf("PeriodOf passive = %v", got)
	}
	if _, ok := a.Component("nope"); ok {
		t.Fatal("phantom component")
	}
}

func TestDescriptorsAreCopies(t *testing.T) {
	a := NewArchitecture("t")
	act, _ := a.NewActive("a", Activation{Kind: PeriodicActivation, Period: 10 * ms})
	got := act.Activation()
	got.Period = 99 * ms
	if act.Activation().Period != 10*ms {
		t.Fatal("Activation() leaked internal state")
	}
	td, _ := a.NewThreadDomain("td", DomainDesc{Kind: RegularThread, Priority: 5})
	d := td.Domain()
	d.Priority = 1
	if td.Domain().Priority != 5 {
		t.Fatal("Domain() leaked internal state")
	}
	if td.Activation() != nil || act.Domain() != nil || act.Area() != nil {
		t.Fatal("descriptor accessors on wrong kinds should be nil")
	}
}
