package model

import (
	"strings"
	"testing"
)

// pipelineArch builds Front(active) + Worker/Cache inside composite
// Back, with the usual containers.
func pipelineArch(t *testing.T) *Architecture {
	t.Helper()
	a := NewArchitecture("pipeline")
	front, err := a.NewActive("Front", Activation{Kind: SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	worker, err := a.NewActive("Worker", Activation{Kind: SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := a.NewPassive("Cache")
	if err != nil {
		t.Fatal(err)
	}
	back, err := a.NewComposite("Back")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(back, worker); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(back, cache); err != nil {
		t.Fatal(err)
	}
	_ = front
	return a
}

func TestResolveInheritsFromComposite(t *testing.T) {
	a := pipelineArch(t)
	d := NewDeployment("pipeline")
	if err := d.AddNode(&DeployNode{Name: "alpha", Addr: "a:1", Assigned: []string{"Front"}}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNode(&DeployNode{Name: "beta", Addr: "b:1", Assigned: []string{"Back"}}); err != nil {
		t.Fatal(err)
	}
	got, err := d.Resolve(a)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"Front": "alpha", "Worker": "beta", "Cache": "beta"}
	for c, n := range want {
		if got[c] != n {
			t.Errorf("%s resolved to %q, want %q", c, got[c], n)
		}
	}
}

func TestResolveNearestOverrides(t *testing.T) {
	a := pipelineArch(t)
	d := NewDeployment("")
	_ = d.AddNode(&DeployNode{Name: "alpha", Addr: "a:1", Assigned: []string{"Front", "Cache"}})
	_ = d.AddNode(&DeployNode{Name: "beta", Addr: "b:1", Assigned: []string{"Back"}})
	got, err := d.Resolve(a)
	if err != nil {
		t.Fatal(err)
	}
	// Cache's own assignment beats the one inherited from Back.
	if got["Cache"] != "alpha" || got["Worker"] != "beta" {
		t.Fatalf("resolve = %v", got)
	}
}

func TestResolveErrors(t *testing.T) {
	a := pipelineArch(t)
	cases := []struct {
		name  string
		build func() *Deployment
		want  string
	}{
		{"unknown component", func() *Deployment {
			d := NewDeployment("")
			_ = d.AddNode(&DeployNode{Name: "n", Addr: "a:1", Assigned: []string{"Nope"}})
			return d
		}, "unknown component"},
		{"unassigned primitive", func() *Deployment {
			d := NewDeployment("")
			_ = d.AddNode(&DeployNode{Name: "n", Addr: "a:1", Assigned: []string{"Back"}})
			return d
		}, "deployed on no node"},
		{"conflicting assignment", func() *Deployment {
			d := NewDeployment("")
			_ = d.AddNode(&DeployNode{Name: "n1", Addr: "a:1", Assigned: []string{"Front"}})
			_ = d.AddNode(&DeployNode{Name: "n2", Addr: "a:2", Assigned: []string{"Front", "Back"}})
			return d
		}, "assigned to both"},
		{"wrong architecture", func() *Deployment {
			d := NewDeployment("other")
			_ = d.AddNode(&DeployNode{Name: "n", Addr: "a:1"})
			return d
		}, "targets architecture"},
		{"no nodes", func() *Deployment { return NewDeployment("") }, "no nodes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build().Resolve(a)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestResolveRejectsContainerAssignment(t *testing.T) {
	a := NewArchitecture("x")
	act, err := a.NewActive("A", Activation{Kind: SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	td, err := a.NewThreadDomain("td", DomainDesc{Kind: RealtimeThread, Priority: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, act); err != nil {
		t.Fatal(err)
	}
	d := NewDeployment("")
	_ = d.AddNode(&DeployNode{Name: "n", Addr: "a:1", Assigned: []string{"td"}})
	_, err = d.Resolve(a)
	if err == nil || !strings.Contains(err.Error(), "only functional components") {
		t.Fatalf("want functional-only error, got %v", err)
	}
}

func TestResolveAmbiguousSharedComponent(t *testing.T) {
	a := NewArchitecture("x")
	p, err := a.NewPassive("Shared")
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := a.NewComposite("C1")
	c2, _ := a.NewComposite("C2")
	if err := a.AddChild(c1, p); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(c2, p); err != nil {
		t.Fatal(err)
	}
	d := NewDeployment("")
	_ = d.AddNode(&DeployNode{Name: "n1", Addr: "a:1", Assigned: []string{"C1"}})
	_ = d.AddNode(&DeployNode{Name: "n2", Addr: "a:2", Assigned: []string{"C2"}})
	_, err = d.Resolve(a)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("want ambiguity error, got %v", err)
	}
}
