package model

import (
	"fmt"
	"strings"
	"time"
)

// OverloadPolicy selects what a binding's admission gate does with
// traffic beyond the contracted rate.
type OverloadPolicy int

// Overload policies, matching the ADL's policy attribute.
const (
	// Shed rejects over-rate messages immediately with the typed
	// backpressure error — the caller learns at once and the server
	// never sees the excess.
	Shed OverloadPolicy = iota + 1
	// Block makes the caller wait (bounded by the latency budget) for
	// admission capacity before rejecting. Only meaningful for clients
	// that may block: RT17 refuses it for real-time domains.
	Block
	// Degrade admits over-rate traffic while the server still meets
	// its latency SLO and falls back to shedding once the observed
	// p99 breaches 80% of the budget.
	Degrade
)

// String returns the ADL spelling.
func (p OverloadPolicy) String() string {
	switch p {
	case Shed:
		return "shed"
	case Block:
		return "block"
	case Degrade:
		return "degrade"
	default:
		return fmt.Sprintf("OverloadPolicy(%d)", int(p))
	}
}

// ParseOverloadPolicy parses the ADL spelling; the empty string means
// the default policy, Shed.
func ParseOverloadPolicy(s string) (OverloadPolicy, error) {
	switch strings.ToLower(s) {
	case "", "shed":
		return Shed, nil
	case "block":
		return Block, nil
	case "degrade":
		return Degrade, nil
	default:
		return 0, fmt.Errorf("model: unknown overload policy %q (want shed, block or degrade)", s)
	}
}

// Contract is the QoS contract of one binding — the ADL's <Contract>
// element. It states what the client may demand (rate, burst) and
// what the server promises (latency budget, miss tolerance), and
// picks the overload policy the admission gate enforces when demand
// exceeds the contract. The zero value of each field means "not
// contracted": a Contract{Policy: Shed} with no rate admits
// everything and only tracks SLO breaches.
type Contract struct {
	// LatencyBudget is the end-to-end latency the server promises per
	// admitted message; the runtime flags an SLO breach when the
	// observed p99 exceeds 80% of it. 0 means no latency contract.
	LatencyBudget time.Duration
	// MaxRate is the sustained admission rate in messages per second.
	// 0 means no rate contract (the gate admits everything).
	MaxRate float64
	// Burst is the token-bucket depth: how many messages above the
	// sustained rate may arrive back to back before the gate engages.
	// 0 means a burst of 1 (strict pacing).
	Burst int
	// MissTolerance is how many consecutive deadline misses the
	// binding tolerates before supervision should consider the
	// contract broken. 0 means none are tolerated.
	MissTolerance int
	// Policy is the overload policy; 0 defaults to Shed.
	Policy OverloadPolicy
}

// EffectiveBurst returns the token-bucket depth with the default
// applied.
func (c *Contract) EffectiveBurst() int {
	if c.Burst < 1 {
		return 1
	}
	return c.Burst
}

// Validate checks the contract's fields for internal consistency.
func (c *Contract) Validate() error {
	if c.LatencyBudget < 0 {
		return fmt.Errorf("model: contract latency budget %v is negative", c.LatencyBudget)
	}
	if c.MaxRate < 0 {
		return fmt.Errorf("model: contract max rate %g is negative", c.MaxRate)
	}
	if c.Burst < 0 {
		return fmt.Errorf("model: contract burst %d is negative", c.Burst)
	}
	if c.MissTolerance < 0 {
		return fmt.Errorf("model: contract miss tolerance %d is negative", c.MissTolerance)
	}
	if c.Burst > 0 && c.MaxRate <= 0 {
		return fmt.Errorf("model: contract burst %d without a max rate (burst bounds a rate contract)", c.Burst)
	}
	switch c.Policy {
	case 0, Shed, Block, Degrade:
	default:
		return fmt.Errorf("model: contract has unknown overload policy %v", c.Policy)
	}
	if c.Policy == Degrade && c.LatencyBudget <= 0 {
		return fmt.Errorf("model: degrade policy needs a latency budget (degradation ends at the SLO breach)")
	}
	return nil
}

func (c *Contract) String() string {
	var parts []string
	if c.LatencyBudget > 0 {
		parts = append(parts, fmt.Sprintf("budget %v", c.LatencyBudget))
	}
	if c.MaxRate > 0 {
		parts = append(parts, fmt.Sprintf("rate %g/s burst %d", c.MaxRate, c.EffectiveBurst()))
	}
	if c.MissTolerance > 0 {
		parts = append(parts, fmt.Sprintf("tolerates %d misses", c.MissTolerance))
	}
	parts = append(parts, c.Policy.String())
	return "contract(" + strings.Join(parts, ", ") + ")"
}
