package model

import (
	"fmt"
	"sort"
	"time"
)

// Architecture is a complete RT system architecture: the component
// graph (hierarchy with sharing) plus the bindings between functional
// interfaces.
type Architecture struct {
	name       string
	components map[string]*Component
	order      []string // creation order, for deterministic listings
	bindings   []*Binding
}

// NewArchitecture creates an empty architecture.
func NewArchitecture(name string) *Architecture {
	return &Architecture{
		name:       name,
		components: make(map[string]*Component),
	}
}

// Name returns the architecture name.
func (a *Architecture) Name() string { return a.name }

func (a *Architecture) register(c *Component) (*Component, error) {
	if c.name == "" {
		return nil, fmt.Errorf("model: component needs a name")
	}
	if _, dup := a.components[c.name]; dup {
		return nil, fmt.Errorf("model: duplicate component name %q", c.name)
	}
	a.components[c.name] = c
	a.order = append(a.order, c.name)
	return c, nil
}

// NewActive creates an active (own thread of control) component.
func (a *Architecture) NewActive(name string, act Activation) (*Component, error) {
	switch act.Kind {
	case PeriodicActivation:
		if act.Period <= 0 {
			return nil, fmt.Errorf("model: periodic component %q needs a positive period", name)
		}
	case SporadicActivation, AperiodicActivation:
	default:
		return nil, fmt.Errorf("model: component %q has unknown activation kind %v", name, act.Kind)
	}
	if act.Period < 0 || act.Deadline < 0 || act.Cost < 0 {
		return nil, fmt.Errorf("model: component %q has negative activation parameters", name)
	}
	return a.register(&Component{name: name, kind: Active, activation: &act})
}

// NewPassive creates a passive (service) component.
func (a *Architecture) NewPassive(name string) (*Component, error) {
	return a.register(&Component{name: name, kind: Passive})
}

// NewComposite creates a functional composite component.
func (a *Architecture) NewComposite(name string) (*Component, error) {
	return a.register(&Component{name: name, kind: Composite})
}

// NewThreadDomain creates a ThreadDomain non-functional component.
func (a *Architecture) NewThreadDomain(name string, d DomainDesc) (*Component, error) {
	switch d.Kind {
	case RegularThread, RealtimeThread, NoHeapRealtimeThread:
	default:
		return nil, fmt.Errorf("model: thread domain %q has unknown thread kind %v", name, d.Kind)
	}
	return a.register(&Component{name: name, kind: ThreadDomain, domain: &d})
}

// NewMemoryArea creates a MemoryArea non-functional component.
func (a *Architecture) NewMemoryArea(name string, d AreaDesc) (*Component, error) {
	switch d.Kind {
	case HeapMemory:
	case ImmortalMemory:
	case ScopedMemory:
		if d.Size <= 0 {
			return nil, fmt.Errorf("model: scoped memory area %q needs a positive size", name)
		}
	default:
		return nil, fmt.Errorf("model: memory area %q has unknown memory kind %v", name, d.Kind)
	}
	if d.Kind == ScopedMemory && d.ScopeName == "" {
		d.ScopeName = name
	}
	return a.register(&Component{name: name, kind: MemoryArea, area: &d})
}

// Component returns the named component.
func (a *Architecture) Component(name string) (*Component, bool) {
	c, ok := a.components[name]
	return c, ok
}

// Components returns all components in creation order.
func (a *Architecture) Components() []*Component {
	out := make([]*Component, 0, len(a.order))
	for _, n := range a.order {
		out = append(out, a.components[n])
	}
	return out
}

// ComponentsOfKind returns all components of kind k, in creation
// order.
func (a *Architecture) ComponentsOfKind(k Kind) []*Component {
	var out []*Component
	for _, c := range a.Components() {
		if c.kind == k {
			out = append(out, c)
		}
	}
	return out
}

// AddChild makes child a sub-component of parent. A component may be
// the child of several parents (sharing); cycles are refused, as are
// edges that would give a functional component two parents of the
// same non-functional kind.
func (a *Architecture) AddChild(parent, child *Component) error {
	if parent == nil || child == nil {
		return fmt.Errorf("model: AddChild needs both a parent and a child")
	}
	if a.components[parent.name] != parent || a.components[child.name] != child {
		return fmt.Errorf("model: AddChild with components foreign to architecture %q", a.name)
	}
	if parent.hasAncestor(child) {
		return fmt.Errorf("model: adding %q under %q would create a hierarchy cycle",
			child.name, parent.name)
	}
	for _, s := range child.supers {
		if s == parent {
			return fmt.Errorf("model: %q is already a child of %q", child.name, parent.name)
		}
	}
	if parent.kind == Active || parent.kind == Passive {
		return fmt.Errorf("model: primitive %s component %q cannot have children",
			parent.kind, parent.name)
	}
	if !parent.kind.Functional() {
		if others := child.SupersOfKind(parent.kind); len(others) > 0 {
			return fmt.Errorf("model: %q is already deployed in %s %q",
				child.name, parent.kind, others[0].name)
		}
	}
	parent.subs = append(parent.subs, child)
	child.supers = append(child.supers, parent)
	return nil
}

// Roots returns the components without super-components, in creation
// order.
func (a *Architecture) Roots() []*Component {
	var out []*Component
	for _, c := range a.Components() {
		if len(c.supers) == 0 {
			out = append(out, c)
		}
	}
	return out
}

// EffectiveThreadDomain resolves the unique ThreadDomain an active
// component is deployed in, walking super links. It is an error for
// an active component to resolve to zero or several ThreadDomains.
func (a *Architecture) EffectiveThreadDomain(c *Component) (*Component, error) {
	domains := collectAncestorsOfKind(c, ThreadDomain)
	switch len(domains) {
	case 0:
		return nil, fmt.Errorf("model: active component %q is not deployed in any ThreadDomain", c.name)
	case 1:
		return domains[0], nil
	default:
		names := make([]string, len(domains))
		for i, d := range domains {
			names[i] = d.name
		}
		sort.Strings(names)
		return nil, fmt.Errorf("model: component %q is deployed in several ThreadDomains %v", c.name, names)
	}
}

// EffectiveMemoryArea resolves the nearest MemoryArea a component is
// allocated in, walking super links breadth-first. It is an error to
// resolve to zero areas or to several different nearest areas.
func (a *Architecture) EffectiveMemoryArea(c *Component) (*Component, error) {
	// Breadth-first: the nearest level containing MemoryArea supers
	// wins; several areas at the same level is an ambiguity error.
	level := []*Component{c}
	seen := map[*Component]bool{c: true}
	for len(level) > 0 {
		var areas []*Component
		var next []*Component
		for _, n := range level {
			for _, s := range n.supers {
				if seen[s] {
					continue
				}
				seen[s] = true
				if s.kind == MemoryArea {
					areas = append(areas, s)
				} else {
					next = append(next, s)
				}
			}
		}
		if len(areas) == 1 {
			return areas[0], nil
		}
		if len(areas) > 1 {
			names := make([]string, len(areas))
			for i, d := range areas {
				names[i] = d.name
			}
			sort.Strings(names)
			return nil, fmt.Errorf("model: component %q is allocated in several MemoryAreas %v", c.name, names)
		}
		level = next
	}
	return nil, fmt.Errorf("model: component %q is not allocated in any MemoryArea", c.name)
}

// collectAncestorsOfKind gathers distinct ancestors of the given kind
// (excluding c itself).
func collectAncestorsOfKind(c *Component, k Kind) []*Component {
	seen := make(map[*Component]bool)
	var out []*Component
	var walk func(n *Component)
	walk = func(n *Component) {
		for _, s := range n.supers {
			if seen[s] {
				continue
			}
			seen[s] = true
			if s.kind == k {
				out = append(out, s)
			}
			walk(s)
		}
	}
	walk(c)
	return out
}

// PeriodOf is a convenience accessor for an active component's period.
func PeriodOf(c *Component) time.Duration {
	if c.activation == nil {
		return 0
	}
	return c.activation.Period
}
