package model

import (
	"fmt"
	"sort"
)

// Deployment maps the functional components of one architecture onto
// named cluster nodes. It is the second document of a distributed
// design: the architecture says *what* communicates, the deployment
// says *where* each part runs. Assignments are sparse — assigning a
// composite assigns its whole subtree, and a nested assignment
// overrides the inherited one — so a typical descriptor pins each
// top-level composite to one node and says nothing else.
type Deployment struct {
	// Architecture names the architecture this deployment applies to;
	// empty matches any.
	Architecture string
	nodes        []*DeployNode
	byName       map[string]*DeployNode
}

// DeployNode is one target node of a deployment.
type DeployNode struct {
	// Name identifies the node; link peers address each other by it.
	Name string
	// Addr is the node's transport listen address (host:port).
	Addr string
	// MetricsAddr, when set, is where the node serves its
	// observability endpoints (/metrics, /healthz, ...).
	MetricsAddr string
	// Assigned lists the functional components pinned to this node.
	Assigned []string
}

// NewDeployment creates an empty deployment for the named
// architecture.
func NewDeployment(architecture string) *Deployment {
	return &Deployment{Architecture: architecture, byName: make(map[string]*DeployNode)}
}

// AddNode registers a target node; node names must be unique and
// every node needs a transport address.
func (d *Deployment) AddNode(n *DeployNode) error {
	if n.Name == "" {
		return fmt.Errorf("model: deployment node needs a name")
	}
	if n.Addr == "" {
		return fmt.Errorf("model: deployment node %q needs a transport address", n.Name)
	}
	if _, dup := d.byName[n.Name]; dup {
		return fmt.Errorf("model: duplicate deployment node %q", n.Name)
	}
	if d.byName == nil {
		d.byName = make(map[string]*DeployNode)
	}
	d.nodes = append(d.nodes, n)
	d.byName[n.Name] = n
	return nil
}

// Nodes returns the nodes in declaration order.
func (d *Deployment) Nodes() []*DeployNode {
	out := make([]*DeployNode, len(d.nodes))
	copy(out, d.nodes)
	return out
}

// Node looks a node up by name.
func (d *Deployment) Node(name string) (*DeployNode, bool) {
	n, ok := d.byName[name]
	return n, ok
}

// Resolve computes the node of every functional primitive of a. A
// primitive's node is the assignment on itself or, failing that, on
// its nearest assigned functional ancestor (composite membership
// edges). It is an error when an assignment references an unknown or
// non-functional component, when one component is assigned to two
// nodes, when two equally-near ancestors disagree, or when a
// primitive resolves to no node at all.
func (d *Deployment) Resolve(a *Architecture) (map[string]string, error) {
	if d.Architecture != "" && d.Architecture != a.Name() {
		return nil, fmt.Errorf("model: deployment targets architecture %q, not %q", d.Architecture, a.Name())
	}
	if len(d.nodes) == 0 {
		return nil, fmt.Errorf("model: deployment has no nodes")
	}
	assigned := make(map[string]string)
	for _, n := range d.nodes {
		for _, name := range n.Assigned {
			c, ok := a.Component(name)
			if !ok {
				return nil, fmt.Errorf("model: node %q assigns unknown component %q", n.Name, name)
			}
			if !c.Kind().Functional() {
				return nil, fmt.Errorf("model: node %q assigns %s %q; only functional components are assignable (containers follow their members)",
					n.Name, c.Kind(), name)
			}
			if prev, dup := assigned[name]; dup && prev != n.Name {
				return nil, fmt.Errorf("model: component %q is assigned to both node %q and node %q", name, prev, n.Name)
			}
			assigned[name] = n.Name
		}
	}

	out := make(map[string]string)
	for _, c := range a.Components() {
		if c.Kind() != Active && c.Kind() != Passive {
			continue
		}
		node, err := nearestAssignment(c, assigned)
		if err != nil {
			return nil, err
		}
		if node == "" {
			return nil, fmt.Errorf("model: component %q is deployed on no node; assign it (or an enclosing composite) in the deployment", c.Name())
		}
		out[c.Name()] = node
	}
	return out, nil
}

// nearestAssignment walks the functional containment hierarchy
// breadth-first from c and returns the assignment of the nearest
// level carrying one. Two different assignments at the same distance
// are ambiguous (a shared component whose parents disagree).
func nearestAssignment(c *Component, assigned map[string]string) (string, error) {
	level := []*Component{c}
	seen := map[*Component]bool{c: true}
	for len(level) > 0 {
		found := map[string]bool{}
		for _, n := range level {
			if node, ok := assigned[n.Name()]; ok {
				found[node] = true
			}
		}
		if len(found) > 1 {
			names := make([]string, 0, len(found))
			for n := range found {
				names = append(names, n)
			}
			sort.Strings(names)
			return "", fmt.Errorf("model: component %q has ambiguous node assignment %v (shared component whose parents disagree)",
				c.Name(), names)
		}
		if len(found) == 1 {
			for n := range found {
				return n, nil
			}
		}
		var next []*Component
		for _, n := range level {
			for _, s := range n.SupersOfKind(Composite) {
				if !seen[s] {
					seen[s] = true
					next = append(next, s)
				}
			}
		}
		level = next
	}
	return "", nil
}
