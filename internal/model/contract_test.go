package model

import (
	"testing"
	"time"
)

func TestParseOverloadPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want OverloadPolicy
		ok   bool
	}{
		{"shed", Shed, true},
		{"block", Block, true},
		{"degrade", Degrade, true},
		{"Degrade", Degrade, true},
		{"", Shed, true}, // default
		{"drop", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseOverloadPolicy(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseOverloadPolicy(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseOverloadPolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, p := range []OverloadPolicy{Shed, Block, Degrade} {
		back, err := ParseOverloadPolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip %v -> %q -> %v, %v", p, p.String(), back, err)
		}
	}
}

func TestContractValidate(t *testing.T) {
	good := []Contract{
		{},
		{MaxRate: 100, Burst: 8, Policy: Shed},
		{LatencyBudget: 2 * time.Millisecond, MaxRate: 100, Policy: Degrade},
		{LatencyBudget: time.Millisecond, Policy: Block},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("good contract %d rejected: %v", i, err)
		}
	}
	bad := []Contract{
		{LatencyBudget: -1},
		{MaxRate: -5},
		{MaxRate: 10, Burst: -1},
		{MissTolerance: -2},
		{Burst: 4},                // burst without a rate
		{MaxRate: 10, Policy: 99}, // unknown policy
		{MaxRate: 10, Policy: Degrade}, // degrade without a budget
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad contract %d accepted: %+v", i, c)
		}
	}
}

func contractArch(t *testing.T) *Architecture {
	t.Helper()
	a := NewArchitecture("contracts")
	cli, err := a.NewActive("client", Activation{Kind: SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.AddInterface(Interface{Name: "out", Role: ClientRole, Signature: "I"}); err != nil {
		t.Fatal(err)
	}
	srv, err := a.NewActive("server", Activation{Kind: SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddInterface(Interface{Name: "in", Role: ServerRole, Signature: "I"}); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBindValidatesAndCopiesContract(t *testing.T) {
	a := contractArch(t)
	c := &Contract{MaxRate: 50, Burst: 4}
	b, err := a.Bind(Binding{
		Client:     Endpoint{Component: "client", Interface: "out"},
		Server:     Endpoint{Component: "server", Interface: "in"},
		Protocol:   Asynchronous,
		BufferSize: 8,
		Contract:   c,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Contract == c {
		t.Error("binding aliases the caller's contract; want a copy")
	}
	if b.Contract.Policy != Shed {
		t.Errorf("zero policy not normalized to Shed: %v", b.Contract.Policy)
	}
	c.MaxRate = 9999
	if b.Contract.MaxRate != 50 {
		t.Error("mutating the caller's contract altered the binding")
	}

	a2 := contractArch(t)
	_, err = a2.Bind(Binding{
		Client:     Endpoint{Component: "client", Interface: "out"},
		Server:     Endpoint{Component: "server", Interface: "in"},
		Protocol:   Asynchronous,
		BufferSize: 8,
		Contract:   &Contract{MaxRate: -1},
	})
	if err == nil {
		t.Fatal("invalid contract accepted by Bind")
	}
}
