package model

import "fmt"

// Protocol is the interaction style of a binding.
type Protocol int

// Binding protocols.
const (
	// Synchronous bindings are direct method invocations.
	Synchronous Protocol = iota + 1
	// Asynchronous bindings decouple caller and callee through a
	// bounded message buffer (the ADL's bufferSize).
	Asynchronous
)

// String returns the ADL spelling.
func (p Protocol) String() string {
	switch p {
	case Synchronous:
		return "synchronous"
	case Asynchronous:
		return "asynchronous"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ParseProtocol parses the ADL spelling.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "synchronous", "sync":
		return Synchronous, nil
	case "asynchronous", "async":
		return Asynchronous, nil
	default:
		return 0, fmt.Errorf("model: unknown binding protocol %q", s)
	}
}

// Endpoint identifies one side of a binding: a component and one of
// its interfaces.
type Endpoint struct {
	Component string
	Interface string
}

func (e Endpoint) String() string { return e.Component + "." + e.Interface }

// Binding connects a client interface to a server interface.
type Binding struct {
	Client   Endpoint
	Server   Endpoint
	Protocol Protocol
	// BufferSize is the message buffer capacity of asynchronous
	// bindings.
	BufferSize int
	// Pattern optionally names the cross-scope communication pattern
	// the memory interceptor must deploy (chosen at design time per
	// Sect. 3.1); empty means "no cross-scope machinery needed" or
	// "let the validator choose".
	Pattern string
	// Contract, when set, is the binding's QoS contract (the ADL's
	// <Contract> element): latency budget, admission rate and overload
	// policy. The validator checks its feasibility (RT16/RT17) and the
	// assembly deploys an admission gate enforcing it.
	Contract *Contract
}

func (b *Binding) String() string {
	return fmt.Sprintf("%s -> %s (%s)", b.Client, b.Server, b.Protocol)
}

// Bind records a binding between a client interface and a server
// interface, after structural checks: both endpoints must exist, with
// the right roles and matching signatures, and a client interface can
// be bound at most once.
func (a *Architecture) Bind(b Binding) (*Binding, error) {
	cli, ok := a.components[b.Client.Component]
	if !ok {
		return nil, fmt.Errorf("model: binding client component %q not found", b.Client.Component)
	}
	srv, ok := a.components[b.Server.Component]
	if !ok {
		return nil, fmt.Errorf("model: binding server component %q not found", b.Server.Component)
	}
	cliItf, ok := cli.Interface(b.Client.Interface)
	if !ok {
		return nil, fmt.Errorf("model: binding client interface %s not found", b.Client)
	}
	srvItf, ok := srv.Interface(b.Server.Interface)
	if !ok {
		return nil, fmt.Errorf("model: binding server interface %s not found", b.Server)
	}
	if cliItf.Role != ClientRole {
		return nil, fmt.Errorf("model: %s is not a client interface", b.Client)
	}
	if srvItf.Role != ServerRole {
		return nil, fmt.Errorf("model: %s is not a server interface", b.Server)
	}
	if cliItf.Signature != srvItf.Signature {
		return nil, fmt.Errorf("model: binding %s -> %s has mismatched signatures %q vs %q",
			b.Client, b.Server, cliItf.Signature, srvItf.Signature)
	}
	switch b.Protocol {
	case Synchronous:
		if b.BufferSize != 0 {
			return nil, fmt.Errorf("model: synchronous binding %s -> %s cannot have a buffer",
				b.Client, b.Server)
		}
	case Asynchronous:
		if b.BufferSize <= 0 {
			return nil, fmt.Errorf("model: asynchronous binding %s -> %s needs a positive buffer size",
				b.Client, b.Server)
		}
	default:
		return nil, fmt.Errorf("model: binding %s -> %s has unknown protocol %v",
			b.Client, b.Server, b.Protocol)
	}
	if b.Contract != nil {
		if err := b.Contract.Validate(); err != nil {
			return nil, fmt.Errorf("model: binding %s -> %s: %w", b.Client, b.Server, err)
		}
	}
	for _, prev := range a.bindings {
		if prev.Client == b.Client {
			return nil, fmt.Errorf("model: client interface %s already bound to %s",
				b.Client, prev.Server)
		}
	}
	bound := b
	if b.Contract != nil {
		// The architecture owns its copy: later mutation of the
		// caller's Contract must not alter the recorded binding.
		c := *b.Contract
		if c.Policy == 0 {
			c.Policy = Shed
		}
		bound.Contract = &c
	}
	a.bindings = append(a.bindings, &bound)
	return &bound, nil
}

// Bindings returns the architecture's bindings in creation order.
func (a *Architecture) Bindings() []*Binding {
	out := make([]*Binding, len(a.bindings))
	copy(out, a.bindings)
	return out
}

// BindingsOf returns the bindings where the named component is the
// client or the server.
func (a *Architecture) BindingsOf(name string) []*Binding {
	var out []*Binding
	for _, b := range a.bindings {
		if b.Client.Component == name || b.Server.Component == name {
			out = append(out, b)
		}
	}
	return out
}
