// Package model implements the paper's real-time component metamodel
// (Fig. 2): a hierarchical component model *with sharing*, where
// functional Active/Passive components coexist with the two
// non-functional composite component kinds that reify RTSJ concerns at
// the architectural level — ThreadDomain and MemoryArea.
//
// Sharing means a component may have several super-components: a
// typical active component is simultaneously a child of its business
// composite, of its ThreadDomain, and (through the ThreadDomain) of a
// MemoryArea. The set of super-components of a component therefore
// defines both its business and its real-time role (Sect. 3.1).
package model

import (
	"fmt"
	"time"
)

// Kind discriminates the component kinds of the metamodel.
type Kind int

// Component kinds.
const (
	// Active components contain their own thread of control.
	Active Kind = iota + 1
	// Passive components represent services invoked by others.
	Passive
	// Composite components group functional children (business
	// hierarchy).
	Composite
	// ThreadDomain is the non-functional composite encapsulating all
	// active components whose threads share the same properties.
	ThreadDomain
	// MemoryArea is the non-functional composite encapsulating all
	// components allocated in the same memory area.
	MemoryArea
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Active:
		return "Active"
	case Passive:
		return "Passive"
	case Composite:
		return "Composite"
	case ThreadDomain:
		return "ThreadDomain"
	case MemoryArea:
		return "MemoryArea"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Functional reports whether the kind is a business (functional)
// component kind.
func (k Kind) Functional() bool { return k == Active || k == Passive || k == Composite }

// ActivationKind is how an active component's thread is released.
type ActivationKind int

// Activation kinds, matching the ADL's type attribute.
const (
	PeriodicActivation ActivationKind = iota + 1
	SporadicActivation
	AperiodicActivation
)

// String returns the ADL spelling.
func (a ActivationKind) String() string {
	switch a {
	case PeriodicActivation:
		return "periodic"
	case SporadicActivation:
		return "sporadic"
	case AperiodicActivation:
		return "aperiodic"
	default:
		return fmt.Sprintf("ActivationKind(%d)", int(a))
	}
}

// ParseActivationKind parses the ADL spelling.
func ParseActivationKind(s string) (ActivationKind, error) {
	switch s {
	case "periodic":
		return PeriodicActivation, nil
	case "sporadic":
		return SporadicActivation, nil
	case "aperiodic":
		return AperiodicActivation, nil
	default:
		return 0, fmt.Errorf("model: unknown activation kind %q", s)
	}
}

// ThreadKind is the RTSJ thread flavour of a ThreadDomain.
type ThreadKind int

// Thread kinds, matching the ADL's DomainDesc type attribute.
const (
	RegularThread ThreadKind = iota + 1
	RealtimeThread
	NoHeapRealtimeThread
)

// String returns the ADL spelling.
func (t ThreadKind) String() string {
	switch t {
	case RegularThread:
		return "Regular"
	case RealtimeThread:
		return "RT"
	case NoHeapRealtimeThread:
		return "NHRT"
	default:
		return fmt.Sprintf("ThreadKind(%d)", int(t))
	}
}

// ParseThreadKind parses the ADL spelling.
func ParseThreadKind(s string) (ThreadKind, error) {
	switch s {
	case "Regular", "regular":
		return RegularThread, nil
	case "RT", "RealTime", "realtime":
		return RealtimeThread, nil
	case "NHRT", "nhrt":
		return NoHeapRealtimeThread, nil
	default:
		return 0, fmt.Errorf("model: unknown thread kind %q", s)
	}
}

// MemoryKind is the RTSJ memory flavour of a MemoryArea component.
type MemoryKind int

// Memory kinds, matching the ADL's AreaDesc type attribute.
const (
	HeapMemory MemoryKind = iota + 1
	ImmortalMemory
	ScopedMemory
)

// String returns the ADL spelling.
func (m MemoryKind) String() string {
	switch m {
	case HeapMemory:
		return "heap"
	case ImmortalMemory:
		return "immortal"
	case ScopedMemory:
		return "scope"
	default:
		return fmt.Sprintf("MemoryKind(%d)", int(m))
	}
}

// ParseMemoryKind parses the ADL spelling.
func ParseMemoryKind(s string) (MemoryKind, error) {
	switch s {
	case "heap":
		return HeapMemory, nil
	case "immortal":
		return ImmortalMemory, nil
	case "scope", "scoped":
		return ScopedMemory, nil
	default:
		return 0, fmt.Errorf("model: unknown memory kind %q", s)
	}
}

// Role distinguishes client and server interfaces.
type Role int

// Interface roles.
const (
	ClientRole Role = iota + 1
	ServerRole
)

// String returns the ADL spelling.
func (r Role) String() string {
	switch r {
	case ClientRole:
		return "client"
	case ServerRole:
		return "server"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// ParseRole parses the ADL spelling.
func ParseRole(s string) (Role, error) {
	switch s {
	case "client":
		return ClientRole, nil
	case "server":
		return ServerRole, nil
	default:
		return 0, fmt.Errorf("model: unknown interface role %q", s)
	}
}

// Interface is a functional access point of a component.
type Interface struct {
	Name      string
	Role      Role
	Signature string
}

// Activation describes how an active component's thread is released.
type Activation struct {
	Kind ActivationKind
	// Period is the activation period (periodic) or minimum
	// interarrival time (sporadic, optional).
	Period time.Duration
	// Deadline is the optional relative deadline.
	Deadline time.Duration
	// Cost is the optional per-release CPU budget.
	Cost time.Duration
}

// DomainDesc carries a ThreadDomain's RTSJ properties.
type DomainDesc struct {
	Kind     ThreadKind
	Priority int
}

// AreaDesc carries a MemoryArea's RTSJ properties.
type AreaDesc struct {
	Kind MemoryKind
	// ScopeName is the runtime scope name (scoped areas).
	ScopeName string
	// Size is the configured byte budget (scoped, immortal).
	Size int64
}

// Component is a node of the architecture. Use the Architecture
// constructors (NewActive, NewPassive, ...) to create components.
type Component struct {
	name string
	kind Kind

	interfaces []Interface
	content    string // content-class identifier of primitive functional components

	activation *Activation
	domain     *DomainDesc
	area       *AreaDesc

	subs   []*Component
	supers []*Component
}

// Name returns the component's unique name.
func (c *Component) Name() string { return c.name }

// Kind returns the component kind.
func (c *Component) Kind() Kind { return c.kind }

// Content returns the content-class identifier ("" for composites and
// non-functional components).
func (c *Component) Content() string { return c.content }

// SetContent sets the content-class identifier of a primitive
// functional component.
func (c *Component) SetContent(id string) error {
	if c.kind != Active && c.kind != Passive {
		return fmt.Errorf("model: %s component %q cannot have content", c.kind, c.name)
	}
	c.content = id
	return nil
}

// Activation returns the active component's activation descriptor, or
// nil.
func (c *Component) Activation() *Activation {
	if c.activation == nil {
		return nil
	}
	a := *c.activation
	return &a
}

// Domain returns the ThreadDomain descriptor, or nil.
func (c *Component) Domain() *DomainDesc {
	if c.domain == nil {
		return nil
	}
	d := *c.domain
	return &d
}

// Area returns the MemoryArea descriptor, or nil.
func (c *Component) Area() *AreaDesc {
	if c.area == nil {
		return nil
	}
	a := *c.area
	return &a
}

// Interfaces returns a copy of the component's functional interfaces.
func (c *Component) Interfaces() []Interface {
	out := make([]Interface, len(c.interfaces))
	copy(out, c.interfaces)
	return out
}

// Interface returns the named interface.
func (c *Component) Interface(name string) (Interface, bool) {
	for _, itf := range c.interfaces {
		if itf.Name == name {
			return itf, true
		}
	}
	return Interface{}, false
}

// AddInterface declares a functional interface on a functional
// component. Non-functional components (ThreadDomain, MemoryArea)
// have no functional interfaces — they are purely composite (Sect.
// 3.1).
func (c *Component) AddInterface(itf Interface) error {
	if !c.kind.Functional() {
		return fmt.Errorf("model: %s component %q cannot declare functional interfaces", c.kind, c.name)
	}
	if itf.Name == "" {
		return fmt.Errorf("model: interface on %q needs a name", c.name)
	}
	if itf.Role != ClientRole && itf.Role != ServerRole {
		return fmt.Errorf("model: interface %q on %q needs a role", itf.Name, c.name)
	}
	if _, dup := c.Interface(itf.Name); dup {
		return fmt.Errorf("model: duplicate interface %q on %q", itf.Name, c.name)
	}
	c.interfaces = append(c.interfaces, itf)
	return nil
}

// Subs returns a copy of the component's sub-components.
func (c *Component) Subs() []*Component {
	out := make([]*Component, len(c.subs))
	copy(out, c.subs)
	return out
}

// Supers returns a copy of the component's super-components (a
// component may have several — sharing).
func (c *Component) Supers() []*Component {
	out := make([]*Component, len(c.supers))
	copy(out, c.supers)
	return out
}

// hasAncestor reports whether a is c or reachable from c through
// super links.
func (c *Component) hasAncestor(a *Component) bool {
	if c == a {
		return true
	}
	for _, s := range c.supers {
		if s.hasAncestor(a) {
			return true
		}
	}
	return false
}

// SupersOfKind returns the direct super-components of the given kind.
func (c *Component) SupersOfKind(k Kind) []*Component {
	var out []*Component
	for _, s := range c.supers {
		if s.kind == k {
			out = append(out, s)
		}
	}
	return out
}
