package views

import (
	"testing"
	"time"

	"soleil/internal/model"
)

const ms = time.Millisecond

// factoryBusiness is the motivation example's business view.
func factoryBusiness() BusinessView {
	return BusinessView{
		Name: "factory-monitoring",
		Components: []BusinessComponent{
			{
				Name: "ProductionLine", Kind: model.Active,
				Activation: model.Activation{Kind: model.PeriodicActivation, Period: 10 * ms},
				Content:    "ProductionLineImpl",
				Interfaces: []model.Interface{{Name: "iMonitor", Role: model.ClientRole, Signature: "IMonitor"}},
			},
			{
				Name: "MonitoringSystem", Kind: model.Active,
				Activation: model.Activation{Kind: model.SporadicActivation},
				Content:    "MonitoringSystemImpl",
				Interfaces: []model.Interface{
					{Name: "iMonitor", Role: model.ServerRole, Signature: "IMonitor"},
					{Name: "iConsole", Role: model.ClientRole, Signature: "IConsole"},
					{Name: "iLog", Role: model.ClientRole, Signature: "ILog"},
				},
			},
			{
				Name: "Console", Kind: model.Passive,
				Content:    "ConsoleImpl",
				Interfaces: []model.Interface{{Name: "iConsole", Role: model.ServerRole, Signature: "IConsole"}},
			},
			{
				Name: "Audit", Kind: model.Active,
				Activation: model.Activation{Kind: model.SporadicActivation},
				Content:    "AuditImpl",
				Interfaces: []model.Interface{{Name: "iLog", Role: model.ServerRole, Signature: "ILog"}},
			},
			{
				Name: "FactoryMonitoring", Kind: model.Composite,
				Children: []string{"ProductionLine", "MonitoringSystem", "Console", "Audit"},
			},
		},
		Bindings: []model.Binding{
			{
				Client:   model.Endpoint{Component: "ProductionLine", Interface: "iMonitor"},
				Server:   model.Endpoint{Component: "MonitoringSystem", Interface: "iMonitor"},
				Protocol: model.Asynchronous, BufferSize: 10,
			},
			{
				Client:   model.Endpoint{Component: "MonitoringSystem", Interface: "iConsole"},
				Server:   model.Endpoint{Component: "Console", Interface: "iConsole"},
				Protocol: model.Synchronous,
			},
			{
				Client:   model.Endpoint{Component: "MonitoringSystem", Interface: "iLog"},
				Server:   model.Endpoint{Component: "Audit", Interface: "iLog"},
				Protocol: model.Asynchronous, BufferSize: 16,
			},
		},
	}
}

func factoryThreads() ThreadView {
	return ThreadView{Domains: []DomainAssignment{
		{Name: "NHRT1", Desc: model.DomainDesc{Kind: model.NoHeapRealtimeThread, Priority: 30},
			Members: []string{"ProductionLine"}},
		{Name: "NHRT2", Desc: model.DomainDesc{Kind: model.NoHeapRealtimeThread, Priority: 25},
			Members: []string{"MonitoringSystem"}},
		{Name: "reg1", Desc: model.DomainDesc{Kind: model.RegularThread, Priority: 5},
			Members: []string{"Audit"}},
	}}
}

func factoryMemory() MemoryView {
	return MemoryView{Areas: []AreaAssignment{
		{Name: "Imm1", Desc: model.AreaDesc{Kind: model.ImmortalMemory, Size: 600 << 10},
			Members: []string{"NHRT1", "NHRT2"}},
		{Name: "S1", Desc: model.AreaDesc{Kind: model.ScopedMemory, ScopeName: "cscope", Size: 28 << 10},
			Members: []string{"Console"}},
		{Name: "H1", Desc: model.AreaDesc{Kind: model.HeapMemory},
			Members: []string{"reg1"}},
	}}
}

func TestFullDesignFlow(t *testing.T) {
	flow, err := NewFlow(factoryBusiness())
	if err != nil {
		t.Fatal(err)
	}
	if flow.Stage() != StageBusiness {
		t.Fatal("stage after business view")
	}
	r, err := flow.ApplyThreadView(factoryThreads())
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("thread view rejected: %v", r.Errors())
	}
	if flow.Stage() != StageThreads {
		t.Fatal("stage after thread view")
	}
	r, err = flow.ApplyMemoryView(factoryMemory())
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("memory view rejected: %v", r.Errors())
	}
	arch, report, err := flow.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("final report: %v", report.Errors())
	}
	// Patterns were auto-selected for the crossing bindings.
	var consoleBinding, auditBinding *model.Binding
	for _, b := range arch.Bindings() {
		switch b.Server.Component {
		case "Console":
			consoleBinding = b
		case "Audit":
			auditBinding = b
		}
	}
	if consoleBinding.Pattern != "scope-enter" {
		t.Fatalf("console binding pattern = %q", consoleBinding.Pattern)
	}
	if auditBinding.Pattern != "deep-copy" {
		t.Fatalf("audit binding pattern = %q", auditBinding.Pattern)
	}
	// Sharing: ProductionLine has the composite and NHRT1 as parents.
	pl, _ := arch.Component("ProductionLine")
	if got := len(pl.Supers()); got != 2 {
		t.Fatalf("ProductionLine parents = %d", got)
	}
}

func TestThreadViewFeedback(t *testing.T) {
	flow, err := NewFlow(factoryBusiness())
	if err != nil {
		t.Fatal(err)
	}
	// Forget to deploy Audit: the step report flags RT01 immediately.
	tv := ThreadView{Domains: factoryThreads().Domains[:2]}
	r, err := flow.ApplyThreadView(tv)
	if err != nil {
		t.Fatal(err)
	}
	if r.OK() {
		t.Fatal("incomplete thread view accepted")
	}
	found := false
	for _, d := range r.ByRule("RT01") {
		if d.Subject == "Audit" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no RT01 for Audit: %v", r.Diagnostics)
	}
	// Memory-stage rules are not reported yet (no RT04 noise).
	if got := len(r.ByRule("RT04")); got != 0 {
		t.Fatalf("premature RT04 findings: %d", got)
	}
	// Proceeding past errors is refused.
	if _, err := flow.ApplyMemoryView(factoryMemory()); err == nil {
		t.Fatal("memory view applied over unresolved thread errors")
	}
}

func TestFlowStageOrdering(t *testing.T) {
	flow, err := NewFlow(factoryBusiness())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flow.ApplyMemoryView(factoryMemory()); err == nil {
		t.Fatal("memory view before thread view accepted")
	}
	if _, _, err := flow.Finalize(); err == nil {
		t.Fatal("finalize before completion accepted")
	}
	if _, err := flow.ApplyThreadView(factoryThreads()); err != nil {
		t.Fatal(err)
	}
	if _, err := flow.ApplyThreadView(factoryThreads()); err == nil {
		t.Fatal("double thread view accepted")
	}
}

func TestNewFlowValidation(t *testing.T) {
	if _, err := NewFlow(BusinessView{Components: []BusinessComponent{
		{Name: "td", Kind: model.ThreadDomain},
	}}); err == nil {
		t.Fatal("non-functional kind in business view accepted")
	}
	if _, err := NewFlow(BusinessView{Components: []BusinessComponent{
		{Name: "c", Kind: model.Composite, Children: []string{"ghost"}},
	}}); err == nil {
		t.Fatal("dangling child accepted")
	}
	if _, err := NewFlow(BusinessView{Bindings: []model.Binding{{}}}); err == nil {
		t.Fatal("bad binding accepted")
	}
}

func TestViewReferenceErrors(t *testing.T) {
	flow, err := NewFlow(factoryBusiness())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := flow.ApplyThreadView(ThreadView{Domains: []DomainAssignment{
		{Name: "td", Desc: model.DomainDesc{Kind: model.RealtimeThread, Priority: 20}, Members: []string{"ghost"}},
	}}); err == nil {
		t.Fatal("dangling thread member accepted")
	}

	flow2, _ := NewFlow(factoryBusiness())
	if _, err := flow2.ApplyThreadView(factoryThreads()); err != nil {
		t.Fatal(err)
	}
	if _, err := flow2.ApplyMemoryView(MemoryView{Areas: []AreaAssignment{
		{Name: "m", Desc: model.AreaDesc{Kind: model.ImmortalMemory}, Members: []string{"ghost"}},
	}}); err == nil {
		t.Fatal("dangling area member accepted")
	}

	flow3, _ := NewFlow(factoryBusiness())
	if _, err := flow3.ApplyThreadView(factoryThreads()); err != nil {
		t.Fatal(err)
	}
	if _, err := flow3.ApplyMemoryView(MemoryView{Areas: []AreaAssignment{
		{Name: "m", Desc: model.AreaDesc{Kind: model.ImmortalMemory}, Parent: "ghost"},
	}}); err == nil {
		t.Fatal("dangling area parent accepted")
	}
}

// TestTailoring demonstrates the paper's claim that one business view
// combines with different thread/memory views: the same functional
// system deployed fully in heap with regular threads (soft real-time
// tailoring).
func TestTailoringSoftRealtime(t *testing.T) {
	flow, err := NewFlow(factoryBusiness())
	if err != nil {
		t.Fatal(err)
	}
	r, err := flow.ApplyThreadView(ThreadView{Domains: []DomainAssignment{
		{Name: "regAll", Desc: model.DomainDesc{Kind: model.RegularThread, Priority: 5},
			Members: []string{"ProductionLine", "MonitoringSystem", "Audit"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("soft thread view rejected: %v", r.Errors())
	}
	r, err = flow.ApplyMemoryView(MemoryView{Areas: []AreaAssignment{
		{Name: "H", Desc: model.AreaDesc{Kind: model.HeapMemory},
			Members: []string{"regAll", "Console"}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("soft memory view rejected: %v", r.Errors())
	}
	if _, _, err := flow.Finalize(); err != nil {
		t.Fatal(err)
	}
}
