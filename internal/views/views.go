// Package views implements the paper's design methodology (Sect. 3.2,
// Fig. 3): three views — Business, Thread Management, Memory
// Management — are applied stepwise to grow an RTSJ-compliant RT
// system architecture, with conformance verified after every step so
// the designer gets immediate feedback.
//
// Because the views are separate documents, the same business view can
// be combined with different thread/memory views to tailor one
// functional system for differently constrained real-time conditions
// (the paper's "smoothly changed execution characteristics").
package views

import (
	"fmt"

	"soleil/internal/model"
	"soleil/internal/validate"
)

// BusinessComponent declares one functional component of the business
// view.
type BusinessComponent struct {
	Name string
	Kind model.Kind // Active, Passive or Composite
	// Activation configures active components.
	Activation model.Activation
	// Content names the content class of primitives.
	Content    string
	Interfaces []model.Interface
	// Children lists sub-component names (composites only).
	Children []string
}

// BusinessView is the functional architecture: components, hierarchy
// and bindings, with no real-time concern.
type BusinessView struct {
	Name       string
	Components []BusinessComponent
	Bindings   []model.Binding
}

// DomainAssignment deploys active components into one ThreadDomain.
type DomainAssignment struct {
	Name    string
	Desc    model.DomainDesc
	Members []string
}

// ThreadView is the thread management view: the partition of active
// components into ThreadDomains.
type ThreadView struct {
	Domains []DomainAssignment
}

// AreaAssignment deploys components (functional components or
// ThreadDomains) into one MemoryArea. Areas may nest via Parent.
type AreaAssignment struct {
	Name    string
	Desc    model.AreaDesc
	Parent  string // enclosing MemoryArea, "" for a root area
	Members []string
}

// MemoryView is the memory management view: the partition of the
// system into MemoryAreas.
type MemoryView struct {
	Areas []AreaAssignment
}

// Stage tracks the design flow's progress.
type Stage int

// Design flow stages.
const (
	StageBusiness Stage = iota + 1
	StageThreads
	StageMemory
)

// stageRules lists the conformance rules meaningfully checkable at
// each stage; later-stage rules would fire spuriously on an
// architecture that legitimately has no memory areas yet.
var stageRules = map[Stage][]string{
	StageThreads: {"RT01", "RT02", "RT05", "RT06"},
	StageMemory:  nil, // nil = every rule
}

// Flow is one execution of the design methodology.
type Flow struct {
	arch  *model.Architecture
	stage Stage
}

// NewFlow starts the design flow from a business view.
func NewFlow(b BusinessView) (*Flow, error) {
	a := model.NewArchitecture(b.Name)
	for _, bc := range b.Components {
		var c *model.Component
		var err error
		switch bc.Kind {
		case model.Active:
			c, err = a.NewActive(bc.Name, bc.Activation)
		case model.Passive:
			c, err = a.NewPassive(bc.Name)
		case model.Composite:
			c, err = a.NewComposite(bc.Name)
		default:
			err = fmt.Errorf("views: business component %q has non-functional kind %v", bc.Name, bc.Kind)
		}
		if err != nil {
			return nil, err
		}
		for _, itf := range bc.Interfaces {
			if err := c.AddInterface(itf); err != nil {
				return nil, err
			}
		}
		if bc.Content != "" {
			if err := c.SetContent(bc.Content); err != nil {
				return nil, err
			}
		}
	}
	for _, bc := range b.Components {
		if len(bc.Children) == 0 {
			continue
		}
		parent, _ := a.Component(bc.Name)
		for _, childName := range bc.Children {
			child, ok := a.Component(childName)
			if !ok {
				return nil, fmt.Errorf("views: composite %q references unknown child %q", bc.Name, childName)
			}
			if err := a.AddChild(parent, child); err != nil {
				return nil, err
			}
		}
	}
	for _, b := range b.Bindings {
		if _, err := a.Bind(b); err != nil {
			return nil, err
		}
	}
	return &Flow{arch: a, stage: StageBusiness}, nil
}

// Architecture exposes the in-progress architecture.
func (f *Flow) Architecture() *model.Architecture { return f.arch }

// Stage returns the flow's current stage.
func (f *Flow) Stage() Stage { return f.stage }

// report runs full validation and filters to the rules relevant for
// the stage.
func (f *Flow) report(stage Stage) validate.Report {
	full := validate.Validate(f.arch)
	allowed := stageRules[stage]
	if allowed == nil {
		return full
	}
	set := make(map[string]bool, len(allowed))
	for _, r := range allowed {
		set[r] = true
	}
	var out validate.Report
	for _, d := range full.Diagnostics {
		if set[d.Rule] {
			out.Diagnostics = append(out.Diagnostics, d)
		}
	}
	return out
}

// ApplyThreadView deploys active components into ThreadDomains and
// verifies the thread-related conformance rules. The returned report
// carries the immediate designer feedback of Fig. 3; a non-OK report
// leaves the flow usable so the designer can inspect the problem, but
// ApplyMemoryView refuses to proceed past errors.
func (f *Flow) ApplyThreadView(tv ThreadView) (validate.Report, error) {
	if f.stage != StageBusiness {
		return validate.Report{}, fmt.Errorf("views: thread view must follow the business view (stage %d)", f.stage)
	}
	for _, da := range tv.Domains {
		td, err := f.arch.NewThreadDomain(da.Name, da.Desc)
		if err != nil {
			return validate.Report{}, err
		}
		for _, m := range da.Members {
			c, ok := f.arch.Component(m)
			if !ok {
				return validate.Report{}, fmt.Errorf("views: thread domain %q references unknown component %q", da.Name, m)
			}
			if err := f.arch.AddChild(td, c); err != nil {
				return validate.Report{}, err
			}
		}
	}
	f.stage = StageThreads
	return f.report(StageThreads), nil
}

// ApplyMemoryView deploys the system into MemoryAreas, auto-selects
// communication patterns for bindings that cross areas, and verifies
// the full rule catalog.
func (f *Flow) ApplyMemoryView(mv MemoryView) (validate.Report, error) {
	if f.stage != StageThreads {
		return validate.Report{}, fmt.Errorf("views: memory view must follow the thread view (stage %d)", f.stage)
	}
	if r := f.report(StageThreads); !r.OK() {
		return r, fmt.Errorf("views: thread view left %d unresolved errors", len(r.Errors()))
	}
	for _, aa := range mv.Areas {
		if _, err := f.arch.NewMemoryArea(aa.Name, aa.Desc); err != nil {
			return validate.Report{}, err
		}
	}
	for _, aa := range mv.Areas {
		ma, _ := f.arch.Component(aa.Name)
		if aa.Parent != "" {
			parent, ok := f.arch.Component(aa.Parent)
			if !ok || parent.Kind() != model.MemoryArea {
				return validate.Report{}, fmt.Errorf("views: area %q has unknown parent area %q", aa.Name, aa.Parent)
			}
			if err := f.arch.AddChild(parent, ma); err != nil {
				return validate.Report{}, err
			}
		}
		for _, m := range aa.Members {
			c, ok := f.arch.Component(m)
			if !ok {
				return validate.Report{}, fmt.Errorf("views: area %q references unknown component %q", aa.Name, m)
			}
			if err := f.arch.AddChild(ma, c); err != nil {
				return validate.Report{}, err
			}
		}
	}
	if _, err := validate.ApplySuggestedPatterns(f.arch); err != nil {
		return validate.Report{}, err
	}
	f.stage = StageMemory
	return f.report(StageMemory), nil
}

// Finalize returns the completed RT system architecture. It fails if
// the flow has not absorbed all three views or if conformance errors
// remain.
func (f *Flow) Finalize() (*model.Architecture, validate.Report, error) {
	if f.stage != StageMemory {
		return nil, validate.Report{}, fmt.Errorf("views: design flow incomplete (stage %d)", f.stage)
	}
	r := f.report(StageMemory)
	if !r.OK() {
		return nil, r, fmt.Errorf("views: architecture violates RTSJ: %d errors", len(r.Errors()))
	}
	return f.arch, r, nil
}
