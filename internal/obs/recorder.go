// Flight recorder: an always-on per-node black box. A fixed ring of
// recent notable events — dispatches over budget, deadline misses,
// gate sheds and SLO transitions, lifecycle failures and restarts,
// link reconnects and heartbeat staleness — recorded allocation-free
// from the membrane/qos/cluster hot paths, and dumped when a trigger
// fires (panic, deadline-miss burst, SLO breach, an explicit
// /debug/flightrecorder request, SIGQUIT). Because events carry the
// tracer's SpanContext IDs and a node name, rings dumped from
// several nodes merge into one causally-ordered cluster timeline.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies a flight-recorder event.
type EventKind uint8

// Flight-recorder event kinds.
const (
	EvNone EventKind = iota
	// EvOverBudget: a dispatch ran longer than the component's cost
	// or deadline budget. Value is the latency in nanoseconds.
	EvOverBudget
	// EvDeadlineMiss: the scheduler reported a deadline miss. Value
	// is the component's cumulative miss count.
	EvDeadlineMiss
	// EvGateShed: an admission gate shed a message (sampled — one
	// event per 64 sheds). Value is the cumulative shed count.
	EvGateShed
	// EvGateBreach: a binding SLO transitioned met -> breached.
	// Value is the observed p99 in nanoseconds when known.
	EvGateBreach
	// EvGateRecovered: a binding SLO transitioned breached -> met.
	EvGateRecovered
	// EvRemoteBreach: a propagated server-side digest crossed the
	// contract threshold on the client node. Value is the remote p99
	// in nanoseconds.
	EvRemoteBreach
	// EvRemoteRecovered: the propagated digest dropped back under
	// the threshold.
	EvRemoteRecovered
	// EvLifecycleFailed: a component entered the FAILED state.
	EvLifecycleFailed
	// EvLifecycleRestart: the supervisor restarted a component.
	// Value is the cumulative restart count.
	EvLifecycleRestart
	// EvLifecycleQuarantine: the supervisor quarantined a component.
	EvLifecycleQuarantine
	// EvLinkReconnect: a cluster link writer re-established its
	// session. Value is the cumulative reconnect count.
	EvLinkReconnect
	// EvLinkStale: heartbeat staleness closed a link session.
	EvLinkStale
	// EvDump: a dump trigger fired; Subject is the trigger reason.
	EvDump
	evKindCount // sentinel
)

// evKindNames is indexed by EventKind; a table lookup keeps String
// off fmt and usable from annotated paths.
var evKindNames = [evKindCount]string{
	EvNone:                "none",
	EvOverBudget:          "over-budget",
	EvDeadlineMiss:        "deadline-miss",
	EvGateShed:            "gate-shed",
	EvGateBreach:          "gate-breach",
	EvGateRecovered:       "gate-recovered",
	EvRemoteBreach:        "remote-breach",
	EvRemoteRecovered:     "remote-recovered",
	EvLifecycleFailed:     "lifecycle-failed",
	EvLifecycleRestart:    "lifecycle-restart",
	EvLifecycleQuarantine: "lifecycle-quarantine",
	EvLinkReconnect:       "link-reconnect",
	EvLinkStale:           "link-stale",
	EvDump:                "dump",
}

// String returns the stable kebab-case name of the kind.
//
//soleil:noheap
func (k EventKind) String() string {
	if k < evKindCount {
		return evKindNames[k]
	}
	return "unknown"
}

// parseEventKind inverts String for JSON decoding.
func parseEventKind(s string) EventKind {
	for k := EventKind(0); k < evKindCount; k++ {
		if evKindNames[k] == s {
			return k
		}
	}
	return EvNone
}

// MarshalJSON renders the kind as its stable name.
func (k EventKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses the stable name form.
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	*k = parseEventKind(s)
	return nil
}

// Event is one flight-recorder entry. Subject strings are always
// preexisting names (component, binding, link) so recording one is
// pure field assignment — no formatting, no allocation.
type Event struct {
	Seq     uint64    `json:"seq"`
	When    int64     `json:"when"` // unix nanoseconds
	Kind    EventKind `json:"kind"`
	Node    string    `json:"node,omitempty"`
	Subject string    `json:"subject,omitempty"`
	Value   int64     `json:"value,omitempty"`
	Trace   uint64    `json:"trace,omitempty"`
	Span    uint64    `json:"span,omitempty"`
}

// missBurstCount and missBurstWindow define the automatic trigger:
// this many deadline misses inside one window dumps the ring.
const (
	missBurstCount  = 8
	missBurstWindow = int64(time.Second)
)

// triggerMinInterval rate-limits dumps so a flapping SLO cannot turn
// the recorder into a log flood; suppressed triggers are counted.
const triggerMinInterval = int64(time.Second)

// DefaultRecorderCapacity is the ring size NewRecorder uses for
// capacity <= 0.
const DefaultRecorderCapacity = 4096

// Recorder is the flight recorder. Record copies an event into a
// preallocated ring slot under a short mutex — the same discipline as
// Tracer.Record, proven 0 allocs/op — so it is safe to call from
// //soleil:noheap dispatch and admission paths. All methods are
// nil-receiver safe: unwired subsystems pay a single branch.
type Recorder struct {
	node string

	mu    sync.Mutex
	ring  []Event
	next  int
	seq   uint64
	total int64

	// Deadline-miss burst detection, guarded by mu.
	missWindowStart int64
	missInWindow    int

	lastTrigger atomic.Int64 // unix nanoseconds of the last accepted trigger
	dumps       Counter      // accepted triggers
	suppressed  Counter      // rate-limited triggers

	triggerCh chan string
	stopCh    chan struct{}
	drainOnce sync.Once
	stopOnce  sync.Once
	sink      atomic.Pointer[func(reason string, events []Event)]
}

// NewRecorder creates a flight recorder for one node, retaining the
// last capacity events.
func NewRecorder(node string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCapacity
	}
	return &Recorder{
		node:      node,
		ring:      make([]Event, capacity),
		triggerCh: make(chan string, 4),
		stopCh:    make(chan struct{}),
	}
}

// Node returns the node name events are stamped with.
func (r *Recorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// Record appends one event to the ring, overwriting the oldest when
// full. A deadline-miss burst (missBurstCount misses within
// missBurstWindow) fires an automatic trigger.
//
//soleil:noheap
func (r *Recorder) Record(kind EventKind, subject string, value int64, sc SpanContext) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	burst := false
	r.mu.Lock()
	ev := &r.ring[r.next]
	r.seq++
	ev.Seq = r.seq
	ev.When = now
	ev.Kind = kind
	ev.Node = r.node
	ev.Subject = subject
	ev.Value = value
	ev.Trace = sc.TraceID
	ev.Span = sc.SpanID
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	r.total++
	if kind == EvDeadlineMiss {
		if now-r.missWindowStart > missBurstWindow {
			r.missWindowStart = now
			r.missInWindow = 0
		}
		r.missInWindow++
		if r.missInWindow >= missBurstCount {
			r.missInWindow = 0
			burst = true
		}
	}
	r.mu.Unlock()
	if burst {
		r.Trigger("miss-burst")
	}
}

// Trigger requests a dump of the ring, naming the reason. Triggers
// are rate-limited to one per second (excess ones are counted as
// suppressed) and handled asynchronously by the dump sink goroutine,
// so calling Trigger from a hot path costs an atomic load, one ring
// append and a non-blocking channel send.
//
//soleil:noheap
func (r *Recorder) Trigger(reason string) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	last := r.lastTrigger.Load()
	if now-last < triggerMinInterval || !r.lastTrigger.CompareAndSwap(last, now) {
		r.suppressed.Inc()
		return
	}
	r.dumps.Inc()
	r.Record(EvDump, reason, 0, SpanContext{})
	select {
	case r.triggerCh <- reason:
	default:
	}
}

// SetDumpSink installs fn as the dump handler and starts the drain
// goroutine (once). fn runs on that goroutine — never on the
// recording path — with a snapshot of the ring at drain time.
func (r *Recorder) SetDumpSink(fn func(reason string, events []Event)) {
	if r == nil || fn == nil {
		return
	}
	r.sink.Store(&fn)
	r.drainOnce.Do(func() { go r.drain() })
}

func (r *Recorder) drain() {
	for {
		select {
		case <-r.stopCh:
			return
		case reason := <-r.triggerCh:
			if fn := r.sink.Load(); fn != nil {
				(*fn)(reason, r.Events())
			}
		}
	}
}

// Close stops the dump-sink goroutine, if one was started. The ring
// remains readable.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.stopOnce.Do(func() { close(r.stopCh) })
}

// Total returns how many events have ever been recorded.
func (r *Recorder) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dumps returns how many triggers were accepted and how many were
// rate-limited away.
func (r *Recorder) Dumps() (accepted, suppressed int64) {
	if r == nil {
		return 0, 0
	}
	return r.dumps.Load(), r.suppressed.Load()
}

// Events returns the retained events in record order (oldest first).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total <= int64(len(r.ring)) {
		out := make([]Event, r.next)
		copy(out, r.ring[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// MergeEvents merges per-node event dumps into one causally-ordered
// timeline: sorted by wall-clock time, ties broken by node and
// sequence so the order is deterministic.
func MergeEvents(batches ...[]Event) []Event {
	n := 0
	for _, b := range batches {
		n += len(b)
	}
	out := make([]Event, 0, n)
	for _, b := range batches {
		out = append(out, b...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].When != out[j].When {
			return out[i].When < out[j].When
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// WriteEventsJSON renders events as a JSON array — the dump format
// served by /debug/flightrecorder and stitched by the coordinator.
func WriteEventsJSON(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteEventsChromeTrace renders a (possibly merged, multi-node)
// event timeline in Chrome trace_event format by bridging each event
// to an instant span: one process lane per node, one thread lane per
// subject, the kind as the instant name, and the original trace/span
// IDs preserved so the timeline aligns with exported invocation
// traces.
func WriteEventsChromeTrace(w io.Writer, events []Event) error {
	spans := make([]Span, 0, len(events))
	for _, ev := range events {
		node := ev.Node
		if node == "" {
			node = "node"
		}
		subject := ev.Subject
		if subject == "" {
			subject = "recorder"
		}
		spans = append(spans, Span{
			Trace:     ev.Trace,
			ID:        ev.Span,
			System:    node,
			Component: subject,
			Interface: ev.Kind.String(),
			Op:        "",
			Start:     time.Unix(0, ev.When),
			Kind:      SpanInstant,
		})
	}
	return WriteChromeTrace(w, spans)
}

// WriteEventsText renders events one per line for terminal
// consumption (SIGQUIT dumps, CI logs).
func WriteEventsText(w io.Writer, events []Event) error {
	for _, ev := range events {
		t := time.Unix(0, ev.When).UTC().Format("15:04:05.000000")
		if _, err := fmt.Fprintf(w, "%s %-12s %-20s %-28s value=%d trace=%016x span=%016x\n",
			t, ev.Node, ev.Kind, ev.Subject, ev.Value, ev.Trace, ev.Span); err != nil {
			return err
		}
	}
	return nil
}
