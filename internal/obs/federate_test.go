package obs

import (
	"strings"
	"testing"
)

func TestInjectLabel(t *testing.T) {
	in := strings.Join([]string{
		"# HELP soleil_invocations_total Invocations.",
		"# TYPE soleil_invocations_total counter",
		`soleil_invocations_total{component="Sink",op="put"} 42`,
		"soleil_component_healthy 1",
		"",
	}, "\n")
	var out strings.Builder
	if err := InjectLabel(&out, strings.NewReader(in), "node", "beta"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"# TYPE soleil_invocations_total counter",
		`soleil_invocations_total{node="beta",component="Sink",op="put"} 42`,
		`soleil_component_healthy{node="beta"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

func TestInjectLabelEscapes(t *testing.T) {
	var out strings.Builder
	if err := InjectLabel(&out, strings.NewReader("m 1\n"), "node", `a"b`); err != nil {
		t.Fatal(err)
	}
	if want := `m{node="a\"b"} 1`; !strings.Contains(out.String(), want) {
		t.Fatalf("got %q, want %q", out.String(), want)
	}
}

// TestInjectLabelCollision covers the double-federation case: a line
// that already carries the injected key gets its value replaced, not
// duplicated (duplicate label names are unparsable).
func TestInjectLabelCollision(t *testing.T) {
	cases := []struct{ in, want string }{
		{`m{node="old",op="put"} 1`, `m{node="new",op="put"} 1`},
		{`m{op="put",node="old"} 1`, `m{op="put",node="new"} 1`},
		{`m{node="old"} 1`, `m{node="new"} 1`},
		// A label value containing a quoted "node=" must not confuse
		// the scanner.
		{`m{desc="node=\"x\",weird",node="old"} 1`, `m{desc="node=\"x\",weird",node="new"} 1`},
		{`m{other="v"} 1`, `m{node="new",other="v"} 1`},
	}
	for _, tc := range cases {
		if got := injectLabelLine(tc.in, "node", "new"); got != tc.want {
			t.Errorf("injectLabelLine(%q):\n got %q\nwant %q", tc.in, got, tc.want)
		}
	}
}

// TestExpoMergerDeclarationsOnce merges two healthy nodes and checks
// each family is declared exactly once while every sample survives
// with its node label.
func TestExpoMergerDeclarationsOnce(t *testing.T) {
	section := func(node string) string {
		reg := NewRegistry()
		reg.Component("Sink").Series("in", "put").Invocations.Add(3)
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	var out strings.Builder
	m := NewExpoMerger(&out)
	for _, node := range []string{"alpha", "beta"} {
		if err := m.WriteSection(node, strings.NewReader(section(node))); err != nil {
			t.Fatal(err)
		}
	}
	got := out.String()
	if n := strings.Count(got, "# TYPE soleil_invocations_total counter"); n != 1 {
		t.Errorf("family declared %d times, want 1", n)
	}
	if n := strings.Count(got, "# HELP soleil_invocations_total"); n != 1 {
		t.Errorf("help declared %d times, want 1", n)
	}
	for _, want := range []string{
		`soleil_invocations_total{node="alpha",component="Sink",interface="in",op="put"} 3`,
		`soleil_invocations_total{node="beta",component="Sink",interface="in",op="put"} 3`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("merged exposition missing %q", want)
		}
	}
	if len(m.Conflicts()) != 0 {
		t.Errorf("unexpected conflicts: %v", m.Conflicts())
	}
}

// TestExpoMergerTypeConflict: a node redeclaring a family with a
// different TYPE keeps the first declaration, drops the
// redeclaration, surfaces the conflict, and still emits the samples.
func TestExpoMergerTypeConflict(t *testing.T) {
	alpha := "# TYPE custom_family counter\ncustom_family 1\n"
	beta := "# TYPE custom_family gauge\ncustom_family 2\n"
	var out strings.Builder
	m := NewExpoMerger(&out)
	if err := m.WriteSection("alpha", strings.NewReader(alpha)); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteSection("beta", strings.NewReader(beta)); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if n := strings.Count(got, "# TYPE custom_family"); n != 1 {
		t.Errorf("conflicting family declared %d times, want 1 (first wins)", n)
	}
	if !strings.Contains(got, "# TYPE custom_family counter") {
		t.Error("first declaration not kept")
	}
	if !strings.Contains(got, "# federation conflict:") {
		t.Error("conflict not surfaced as a comment")
	}
	for _, want := range []string{`custom_family{node="alpha"} 1`, `custom_family{node="beta"} 2`} {
		if !strings.Contains(got, want) {
			t.Errorf("sample lost in conflict handling: %q", want)
		}
	}
	if c := m.Conflicts(); len(c) != 1 || !strings.Contains(c[0], "custom_family") {
		t.Errorf("Conflicts() = %v, want one custom_family entry", c)
	}
}

func TestInjectLabelOnRealExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Component("Sink").Series("in", "put").Invocations.Add(3)
	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := InjectLabel(&out, strings.NewReader(expo.String()), "node", "gamma"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `node="gamma",component="Sink"`) {
		t.Fatalf("label not injected:\n%s", out.String())
	}
}
