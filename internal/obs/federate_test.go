package obs

import (
	"strings"
	"testing"
)

func TestInjectLabel(t *testing.T) {
	in := strings.Join([]string{
		"# HELP soleil_invocations_total Invocations.",
		"# TYPE soleil_invocations_total counter",
		`soleil_invocations_total{component="Sink",op="put"} 42`,
		"soleil_component_healthy 1",
		"",
	}, "\n")
	var out strings.Builder
	if err := InjectLabel(&out, strings.NewReader(in), "node", "beta"); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"# TYPE soleil_invocations_total counter",
		`soleil_invocations_total{node="beta",component="Sink",op="put"} 42`,
		`soleil_component_healthy{node="beta"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
}

func TestInjectLabelEscapes(t *testing.T) {
	var out strings.Builder
	if err := InjectLabel(&out, strings.NewReader("m 1\n"), "node", `a"b`); err != nil {
		t.Fatal(err)
	}
	if want := `m{node="a\"b"} 1`; !strings.Contains(out.String(), want) {
		t.Fatalf("got %q, want %q", out.String(), want)
	}
}

func TestInjectLabelOnRealExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Component("Sink").Series("in", "put").Invocations.Add(3)
	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := InjectLabel(&out, strings.NewReader(expo.String()), "node", "gamma"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `node="gamma",component="Sink"`) {
		t.Fatalf("label not injected:\n%s", out.String())
	}
}
