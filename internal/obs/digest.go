// Latency-digest wire codec. A digest is a compact, self-describing
// encoding of a HistogramSnapshot that rides the cluster heartbeat
// frames so a client node can evaluate a server-side SLO (p99 vs
// budget) without scraping the remote /metrics endpoint. The format
// is sparse — only occupied slots are encoded as (slot delta, count)
// uvarint pairs — so a steady-state digest for a single interface is
// typically well under 200 bytes, and encoding appends into a
// caller-owned buffer so the periodic path does not allocate once
// the buffer has grown to its working size.
package obs

import (
	"encoding/binary"
	"errors"
)

// digestVersion tags the wire format; a decoder rejects versions it
// does not speak so heartbeat payloads stay forward-evolvable.
const digestVersion = 1

// Digest flag bits (byte 2 of the encoding).
const (
	// DigestFlagBreached marks that the producing node itself
	// considers the contract breached (server-side evaluation). The
	// consumer may still re-derive breach state from the histogram.
	DigestFlagBreached = 1 << 0
)

// ErrDigestVersion reports a digest whose version byte is not one
// this build can decode.
var ErrDigestVersion = errors.New("obs: unsupported digest version")

// ErrDigestCorrupt reports a digest that fails structural decoding.
var ErrDigestCorrupt = errors.New("obs: corrupt digest")

// AppendDigest encodes s (plus flag bits) onto dst and returns the
// extended slice. Layout:
//
//	byte 0      version
//	byte 1      flags
//	uvarint     Count
//	uvarint     Sum
//	uvarint     Max
//	uvarint     number of (slot, count) pairs
//	pairs       uvarint slot delta from previous slot (+1), uvarint count
func AppendDigest(dst []byte, s *HistogramSnapshot, flags byte) []byte {
	dst = append(dst, digestVersion, flags)
	dst = binary.AppendUvarint(dst, uint64(s.Count))
	dst = binary.AppendUvarint(dst, uint64(s.Sum))
	dst = binary.AppendUvarint(dst, uint64(s.Max))
	pairs := 0
	for i := range s.Counts {
		if s.Counts[i] != 0 {
			pairs++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(pairs))
	prev := -1
	for i := range s.Counts {
		c := s.Counts[i]
		if c == 0 {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(i-prev))
		dst = binary.AppendUvarint(dst, uint64(c))
		prev = i
	}
	return dst
}

// DecodeDigest decodes a digest produced by AppendDigest into s
// (overwriting it) and returns the flag byte. s is fully zeroed
// first so a sparse digest leaves absent slots at zero.
func DecodeDigest(data []byte, s *HistogramSnapshot) (flags byte, err error) {
	*s = HistogramSnapshot{}
	if len(data) < 2 {
		return 0, ErrDigestCorrupt
	}
	if data[0] != digestVersion {
		return 0, ErrDigestVersion
	}
	flags = data[1]
	data = data[2:]
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, false
		}
		data = data[n:]
		return v, true
	}
	count, ok1 := next()
	sum, ok2 := next()
	max, ok3 := next()
	pairs, ok4 := next()
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return 0, ErrDigestCorrupt
	}
	s.Count = int64(count)
	s.Sum = int64(sum)
	s.Max = int64(max)
	slot := -1
	for p := uint64(0); p < pairs; p++ {
		delta, ok := next()
		if !ok {
			return 0, ErrDigestCorrupt
		}
		c, ok := next()
		if !ok {
			return 0, ErrDigestCorrupt
		}
		slot += int(delta)
		if slot < 0 || slot >= countsLen || delta == 0 {
			return 0, ErrDigestCorrupt
		}
		s.Counts[slot] = int64(c)
	}
	return flags, nil
}
