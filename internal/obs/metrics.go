// Package obs is the framework's runtime observability layer: an
// allocation-free metrics core safe to update from real-time paths,
// a causal tracer whose span contexts travel through membranes,
// across asynchronous buffers and over distributed bindings, an
// always-on flight recorder, and an exposition surface (Prometheus
// text, health, architecture introspection, Chrome trace_event
// export).
//
// The paper's membrane reifies every non-functional concern as a
// controller or interceptor; obs is the concern the membrane attaches
// for "seeing what a running system is doing". The package depends
// only on the standard library so every layer of the framework —
// including the RTSJ thread runtime — can carry its types.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. Updates are
// single atomic adds with no allocation, so counters are safe to
// bump from real-time paths.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//soleil:noheap
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//soleil:noheap
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, health). Like
// Counter, updates are single atomic operations.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
//
//soleil:noheap
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n.
//
//soleil:noheap
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket geometry: log-linear, HdrHistogram-style. Values
// (nanoseconds) are split into exponential "buckets" each covered by
// subBucketCount linearly spaced sub-buckets, so the relative
// quantile error is bounded by 1/subBucketCount (~3.1% here) at every
// magnitude while the whole structure stays a fixed array — no
// allocation, no resizing, bounded work per update. The RTSJ
// discipline applied to measurement.
const (
	subBucketBits      = 6
	subBucketCount     = 1 << subBucketBits       // 64
	subBucketHalfCount = subBucketCount / 2       // 32
	subBucketMask      = int64(subBucketCount - 1)
	bucketCount        = 33
	// countsLen is the number of counter slots. Bucket 0 contributes
	// subBucketCount slots, every further bucket subBucketHalfCount
	// (its lower half aliases the previous bucket's upper half).
	countsLen = (bucketCount + 1) * subBucketHalfCount // 1088
	// maxTrackable is the largest recordable value: ~4.6 minutes in
	// nanoseconds. Larger observations clamp to it.
	maxTrackable = int64(subBucketCount)<<(bucketCount-1) - 1
)

// NumBuckets is the number of histogram counter slots; digests and
// snapshots are indexed 0..NumBuckets-1.
const NumBuckets = countsLen

// countsIndex maps a non-negative nanosecond value to its slot.
//
//soleil:noheap
func countsIndex(v int64) int {
	if v > maxTrackable {
		v = maxTrackable
	}
	// Position of the highest set bit, with the sub-bucket span
	// forced in so small values land in bucket 0.
	bucketIdx := bits.Len64(uint64(v)|uint64(subBucketMask)) - subBucketBits
	subBucketIdx := int(v >> uint(bucketIdx))
	return (bucketIdx+1)*subBucketHalfCount + (subBucketIdx - subBucketHalfCount)
}

// BucketValue returns the largest nanosecond value that slot i
// covers (the bucket's inclusive upper bound).
func BucketValue(i int) int64 {
	bucketIdx := i>>5 - 1 // i / subBucketHalfCount
	subBucketIdx := i&(subBucketHalfCount-1) + subBucketHalfCount
	if bucketIdx < 0 {
		subBucketIdx -= subBucketHalfCount
		bucketIdx = 0
	}
	lowest := int64(subBucketIdx) << uint(bucketIdx)
	return lowest + 1<<uint(bucketIdx) - 1
}

// expoBounds are the Prometheus exposition bucket upper bounds in
// nanoseconds. The HDR slots are far too fine-grained to emit one
// `le` series each; exposition re-bins the 1088 slots into these
// familiar bounds while quantiles are computed from the full
// resolution.
var expoBounds = [...]int64{
	1_000, 2_000, 5_000, // 1µs .. 5µs
	10_000, 20_000, 50_000, // 10µs .. 50µs
	100_000, 200_000, 500_000, // 100µs .. 500µs
	1_000_000, 2_000_000, 5_000_000, // 1ms .. 5ms
	10_000_000, 20_000_000, 50_000_000, // 10ms .. 50ms
	100_000_000, 500_000_000, // 100ms, 500ms
	1_000_000_000, 5_000_000_000, // 1s, 5s
}

// BucketBounds returns a copy of the exposition bucket upper bounds
// in nanoseconds (exposition uses it to render `le` labels).
func BucketBounds() []int64 {
	out := make([]int64, len(expoBounds))
	copy(out, expoBounds[:])
	return out
}

// expoBinOf[i] is the index into expoBounds of the first exposition
// bound that covers slot i's upper value, or len(expoBounds) for the
// overflow bin. Computed once; exposition uses it to re-bin
// snapshots exactly.
var expoBinOf = func() [countsLen]uint8 {
	var m [countsLen]uint8
	for i := 0; i < countsLen; i++ {
		v := BucketValue(i)
		b := 0
		for b < len(expoBounds) && v > expoBounds[b] {
			b++
		}
		m[i] = uint8(b)
	}
	return m
}()

// Histogram is a fixed-size log-linear latency histogram. Observe is
// a bit-scan plus a handful of atomic adds — zero allocations, no
// locks — so it sits on the membrane dispatch hot path, and the
// resolution (~3.1% relative error) makes p99/p99.9 real quantiles
// rather than bucket-bound guesses.
type Histogram struct {
	counts [countsLen]atomic.Int64
	sum    atomic.Int64 // nanoseconds
	n      atomic.Int64
	max    atomic.Int64 // nanoseconds, high watermark
}

// Observe records one latency observation.
//
//soleil:noheap
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[countsIndex(ns)].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// ObserveSince records the latency elapsed since the *intended* start
// of the operation. Open-loop load drivers pass the wall-clock instant
// the arrival schedule said the operation should have begun — not the
// instant it actually did — so queueing delay accumulated before the
// operation was even issued lands in the recorded value. This is what
// makes the measurement coordinated-omission-safe: a stalled system
// cannot silence the arrivals it delayed.
//
//soleil:noheap
func (h *Histogram) ObserveSince(intendedStart time.Time) {
	h.Observe(time.Since(intendedStart))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the mean observation.
func (h *Histogram) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper-bound estimate of the q-quantile: the
// upper value of the slot holding the q-ranked observation, clamped
// to the observed maximum. With the log-linear geometry the estimate
// is within ~3.1% of the true rank value.
//
//soleil:noheap
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	max := h.max.Load()
	var cum int64
	for i := 0; i < countsLen; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			if v := BucketValue(i); v < max {
				return time.Duration(v)
			}
			return time.Duration(max)
		}
	}
	return time.Duration(max)
}

// HistogramSnapshot is a consistent-enough copy for exposition and
// federation (slots are read one by one; scrapes tolerate the skew).
// It is also the unit of cross-node digest transfer: see
// AppendDigest / DecodeDigest.
type HistogramSnapshot struct {
	Counts [countsLen]int64
	Sum    int64 // nanoseconds
	Count  int64
	Max    int64 // nanoseconds
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	h.SnapshotInto(&s)
	return s
}

// SnapshotInto copies the histogram state into s without allocating,
// for callers that reuse a snapshot buffer on a periodic path.
//
//soleil:noheap
func (h *Histogram) SnapshotInto(s *HistogramSnapshot) {
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.n.Load()
	s.Max = h.max.Load()
}

// MergeInto adds the histogram's live state into s without an
// intermediate snapshot, so periodic digest providers can fold many
// series into one snapshot allocation-free.
//
//soleil:noheap
func (h *Histogram) MergeInto(s *HistogramSnapshot) {
	for i := range h.counts {
		s.Counts[i] += h.counts[i].Load()
	}
	s.Sum += h.sum.Load()
	s.Count += h.n.Load()
	if m := h.max.Load(); m > s.Max {
		s.Max = m
	}
}

// Quantile is the snapshot analogue of Histogram.Quantile.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range s.Counts {
		c := s.Counts[i]
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			if v := BucketValue(i); v < s.Max {
				return time.Duration(v)
			}
			return time.Duration(s.Max)
		}
	}
	return time.Duration(s.Max)
}

// Merge adds o's observations into s. Histograms with identical
// fixed geometry merge slot-by-slot, which is what makes per-node
// digests federable into one cluster-wide distribution regardless of
// each node's recording window.
func (s *HistogramSnapshot) Merge(o *HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
	if o.Max > s.Max {
		s.Max = o.Max
	}
}
