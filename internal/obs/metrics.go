// Package obs is the framework's runtime observability layer: an
// allocation-free metrics core safe to update from real-time paths,
// a causal tracer whose span contexts travel through membranes,
// across asynchronous buffers and over distributed bindings, and an
// exposition surface (Prometheus text, health, architecture
// introspection, Chrome trace_event export).
//
// The paper's membrane reifies every non-functional concern as a
// controller or interceptor; obs is the concern the membrane attaches
// for "seeing what a running system is doing". The package depends
// only on the standard library so every layer of the framework —
// including the RTSJ thread runtime — can carry its types.
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. Updates are
// single atomic adds with no allocation, so counters are safe to
// bump from real-time paths.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//soleil:noheap
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//soleil:noheap
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, health). Like
// Counter, updates are single atomic operations.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
//
//soleil:noheap
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n.
//
//soleil:noheap
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// latencyBounds are the histogram bucket upper bounds in nanoseconds.
// They are fixed at compile time — the RTSJ discipline applied to
// measurement: no allocation, no resizing, bounded work per update.
var latencyBounds = [...]int64{
	1_000, 2_000, 5_000, // 1µs .. 5µs
	10_000, 20_000, 50_000, // 10µs .. 50µs
	100_000, 200_000, 500_000, // 100µs .. 500µs
	1_000_000, 2_000_000, 5_000_000, // 1ms .. 5ms
	10_000_000, 20_000_000, 50_000_000, // 10ms .. 50ms
	100_000_000, 500_000_000, // 100ms, 500ms
	1_000_000_000, 5_000_000_000, // 1s, 5s
}

// histBuckets is the bucket count including the overflow bucket.
const histBuckets = len(latencyBounds) + 1

// BucketBounds returns a copy of the histogram bucket upper bounds in
// nanoseconds (exposition uses it to render `le` labels).
func BucketBounds() []int64 {
	out := make([]int64, len(latencyBounds))
	copy(out, latencyBounds[:])
	return out
}

// Histogram is a fixed-bucket latency histogram. Observe performs a
// bounded scan over the compile-time bucket bounds plus a handful of
// atomic adds — zero allocations, no locks — so it can sit on the
// membrane dispatch hot path.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	sum    atomic.Int64 // nanoseconds
	n      atomic.Int64
	max    atomic.Int64 // nanoseconds, high watermark
}

// Observe records one latency observation.
//
//soleil:noheap
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	i := 0
	for i < len(latencyBounds) && ns > latencyBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the mean observation.
func (h *Histogram) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper-bound estimate of the q-quantile: the
// upper bound of the bucket holding the q-ranked observation, or the
// maximum observation for ranks landing in the overflow bucket.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(latencyBounds) {
				// Clamp the bucket bound to the observed maximum so a
				// quantile never reads above the largest observation.
				if ub := time.Duration(latencyBounds[i]); ub < h.Max() {
					return ub
				}
			}
			return h.Max()
		}
	}
	return h.Max()
}

// HistogramSnapshot is a consistent-enough copy for exposition
// (buckets are read one by one; scrapes tolerate the skew).
type HistogramSnapshot struct {
	Counts [histBuckets]int64
	Sum    int64 // nanoseconds
	Count  int64
	Max    int64 // nanoseconds
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.n.Load()
	s.Max = h.max.Load()
	return s
}
