package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// escapeLabel escapes a Prometheus label value.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// seconds renders nanoseconds as a Prometheus-style float.
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (0.0.4). Scrapes read counters atomically and
// poll queue gauges; the hot paths being scraped pay nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	b.WriteString("# HELP soleil_invocations_total Invocations dispatched into a component operation.\n")
	b.WriteString("# TYPE soleil_invocations_total counter\n")
	comps := r.Components()
	series := func(emit func(s *OpSeries)) {
		for _, c := range comps {
			for _, s := range c.SeriesList() {
				emit(s)
			}
		}
	}
	series(func(s *OpSeries) {
		fmt.Fprintf(&b, "soleil_invocations_total{component=\"%s\",interface=\"%s\",op=\"%s\"} %d\n",
			escapeLabel(s.Component), escapeLabel(s.Interface), escapeLabel(s.Op), s.Invocations.Load())
	})

	b.WriteString("# HELP soleil_invocation_errors_total Invocations that returned an error.\n")
	b.WriteString("# TYPE soleil_invocation_errors_total counter\n")
	series(func(s *OpSeries) {
		fmt.Fprintf(&b, "soleil_invocation_errors_total{component=\"%s\",interface=\"%s\",op=\"%s\"} %d\n",
			escapeLabel(s.Component), escapeLabel(s.Interface), escapeLabel(s.Op), s.Errors.Load())
	})

	b.WriteString("# HELP soleil_invocation_panics_total Raw panics that unwound through the metrics layer.\n")
	b.WriteString("# TYPE soleil_invocation_panics_total counter\n")
	series(func(s *OpSeries) {
		fmt.Fprintf(&b, "soleil_invocation_panics_total{component=\"%s\",interface=\"%s\",op=\"%s\"} %d\n",
			escapeLabel(s.Component), escapeLabel(s.Interface), escapeLabel(s.Op), s.Panics.Load())
	})

	b.WriteString("# HELP soleil_invocation_latency_seconds Dispatch latency distribution.\n")
	b.WriteString("# TYPE soleil_invocation_latency_seconds histogram\n")
	bounds := BucketBounds()
	series(func(s *OpSeries) {
		snap := s.Latency.Snapshot()
		labels := fmt.Sprintf("component=\"%s\",interface=\"%s\",op=\"%s\"",
			escapeLabel(s.Component), escapeLabel(s.Interface), escapeLabel(s.Op))
		var cum int64
		for i, bound := range bounds {
			cum += snap.Counts[i]
			fmt.Fprintf(&b, "soleil_invocation_latency_seconds_bucket{%s,le=%q} %d\n",
				labels, seconds(bound), cum)
		}
		cum += snap.Counts[len(bounds)]
		fmt.Fprintf(&b, "soleil_invocation_latency_seconds_bucket{%s,le=\"+Inf\"} %d\n", labels, cum)
		fmt.Fprintf(&b, "soleil_invocation_latency_seconds_sum{%s} %s\n", labels, seconds(snap.Sum))
		fmt.Fprintf(&b, "soleil_invocation_latency_seconds_count{%s} %d\n", labels, snap.Count)
	})

	component := func(name, help, kind string, value func(c *ComponentMetrics) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, c := range comps {
			fmt.Fprintf(&b, "%s{component=\"%s\"} %d\n", name, escapeLabel(c.Name()), value(c))
		}
	}
	component("soleil_component_healthy", "Component health (1 healthy, 0 not).", "gauge",
		func(c *ComponentMetrics) int64 { return c.healthy.Load() })
	component("soleil_component_failures_total", "FAILED lifecycle transitions.", "counter",
		func(c *ComponentMetrics) int64 { return c.Failures.Load() })
	component("soleil_component_rejected_invocations_total", "Dispatches refused while FAILED.", "counter",
		func(c *ComponentMetrics) int64 { return c.Rejected.Load() })
	component("soleil_component_restarts_total", "Supervisor restarts.", "counter",
		func(c *ComponentMetrics) int64 { return c.Restarts.Load() })
	component("soleil_deadline_misses_total", "Deadline misses of the component's task.", "counter",
		func(c *ComponentMetrics) int64 { return c.Misses.Load() })

	queues := r.QueueNames()
	queue := func(name, help, kind string, value func(q QueueStats) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, qn := range queues {
			fn, ok := r.Queue(qn)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s{queue=\"%s\"} %d\n", name, escapeLabel(qn), value(fn()))
		}
	}
	queue("soleil_queue_depth", "Current queue length of an asynchronous binding buffer.", "gauge",
		func(q QueueStats) int64 { return int64(q.Depth) })
	queue("soleil_queue_high_watermark", "Maximum queue depth ever reached.", "gauge",
		func(q QueueStats) int64 { return int64(q.HighWatermark) })
	queue("soleil_queue_capacity", "Queue capacity.", "gauge",
		func(q QueueStats) int64 { return int64(q.Capacity) })
	queue("soleil_queue_enqueued_total", "Messages enqueued.", "counter",
		func(q QueueStats) int64 { return q.Enqueued })
	queue("soleil_queue_dequeued_total", "Messages dequeued.", "counter",
		func(q QueueStats) int64 { return q.Dequeued })
	queue("soleil_queue_dropped_total", "Messages dropped on overflow.", "counter",
		func(q QueueStats) int64 { return q.Dropped })

	gates := r.GateNames()
	gate := func(name, help, kind string, value func(g GateStats) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, gn := range gates {
			fn, ok := r.Gate(gn)
			if !ok {
				continue
			}
			g := fn()
			fmt.Fprintf(&b, "%s{binding=\"%s\",policy=\"%s\"} %d\n",
				name, escapeLabel(gn), escapeLabel(g.Policy), value(g))
		}
	}
	gate("soleil_gate_admitted_total", "Messages admitted within the binding contract.", "counter",
		func(g GateStats) int64 { return g.Admitted })
	gate("soleil_gate_shed_total", "Messages shed by the admission gate.", "counter",
		func(g GateStats) int64 { return g.Shed })
	gate("soleil_gate_degraded_total", "Over-rate messages a degrade-policy gate let through.", "counter",
		func(g GateStats) int64 { return g.Degraded })
	gate("soleil_gate_slo_breaches_total", "Met-to-breached transitions of the binding SLO.", "counter",
		func(g GateStats) int64 { return g.Breaches })
	gate("soleil_gate_slo_breached", "Whether the binding SLO is currently breached (1 yes).", "gauge",
		func(g GateStats) int64 {
			if g.Breached {
				return 1
			}
			return 0
		})

	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTop renders the one-shot textual snapshot behind `soleil top`:
// component health and invocation pressure, then queue pressure.
func (r *Registry) WriteTop(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "COMPONENT\tHEALTH\tINVOC\tERR\tPANIC\tFAIL\tREJECT\tRESTART\tMISS\tP50\tP99\tMAX")
	for _, c := range r.Components() {
		var inv, errs, panics int64
		var p50, p99, max time.Duration
		var n int64
		for _, s := range c.SeriesList() {
			inv += s.Invocations.Load()
			errs += s.Errors.Load()
			panics += s.Panics.Load()
			if cnt := s.Latency.Count(); cnt > n {
				// Report the busiest series' distribution.
				n = cnt
				p50, p99, max = s.Latency.Quantile(0.50), s.Latency.Quantile(0.99), s.Latency.Max()
			}
		}
		health := "ok"
		if !c.Healthy() {
			health = "FAIL"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\t%v\t%v\n",
			c.Name(), health, inv, errs, panics,
			c.Failures.Load(), c.Rejected.Load(), c.Restarts.Load(), c.Misses.Load(),
			p50, p99, max)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	queues := r.QueueNames()
	if len(queues) > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "QUEUE\tDEPTH\tHWM\tCAP\tENQ\tDEQ\tDROP")
		for _, qn := range queues {
			fn, ok := r.Queue(qn)
			if !ok {
				continue
			}
			q := fn()
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
				qn, q.Depth, q.HighWatermark, q.Capacity, q.Enqueued, q.Dequeued, q.Dropped)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	gates := r.GateNames()
	if len(gates) == 0 {
		return nil
	}
	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GATE\tPOLICY\tADMIT\tSHED\tDEGRADE\tBREACHES\tSLO")
	for _, gn := range gates {
		fn, ok := r.Gate(gn)
		if !ok {
			continue
		}
		g := fn()
		slo := "ok"
		if g.Breached {
			slo = "BREACH"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			gn, g.Policy, g.Admitted, g.Shed, g.Degraded, g.Breaches, slo)
	}
	return tw.Flush()
}
