package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"
)

// escapeLabel escapes a Prometheus label value.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// seconds renders nanoseconds as a Prometheus-style float.
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (0.0.4). Scrapes read counters atomically and
// poll queue gauges; the hot paths being scraped pay nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	b.WriteString("# HELP soleil_invocations_total Invocations dispatched into a component operation.\n")
	b.WriteString("# TYPE soleil_invocations_total counter\n")
	comps := r.Components()
	series := func(emit func(s *OpSeries)) {
		for _, c := range comps {
			for _, s := range c.SeriesList() {
				emit(s)
			}
		}
	}
	series(func(s *OpSeries) {
		fmt.Fprintf(&b, "soleil_invocations_total{component=\"%s\",interface=\"%s\",op=\"%s\"} %d\n",
			escapeLabel(s.Component), escapeLabel(s.Interface), escapeLabel(s.Op), s.Invocations.Load())
	})

	b.WriteString("# HELP soleil_invocation_errors_total Invocations that returned an error.\n")
	b.WriteString("# TYPE soleil_invocation_errors_total counter\n")
	series(func(s *OpSeries) {
		fmt.Fprintf(&b, "soleil_invocation_errors_total{component=\"%s\",interface=\"%s\",op=\"%s\"} %d\n",
			escapeLabel(s.Component), escapeLabel(s.Interface), escapeLabel(s.Op), s.Errors.Load())
	})

	b.WriteString("# HELP soleil_invocation_panics_total Raw panics that unwound through the metrics layer.\n")
	b.WriteString("# TYPE soleil_invocation_panics_total counter\n")
	series(func(s *OpSeries) {
		fmt.Fprintf(&b, "soleil_invocation_panics_total{component=\"%s\",interface=\"%s\",op=\"%s\"} %d\n",
			escapeLabel(s.Component), escapeLabel(s.Interface), escapeLabel(s.Op), s.Panics.Load())
	})

	b.WriteString("# HELP soleil_invocation_latency_seconds Dispatch latency distribution.\n")
	b.WriteString("# TYPE soleil_invocation_latency_seconds histogram\n")
	bounds := BucketBounds()
	series(func(s *OpSeries) {
		snap := s.Latency.Snapshot()
		labels := fmt.Sprintf("component=\"%s\",interface=\"%s\",op=\"%s\"",
			escapeLabel(s.Component), escapeLabel(s.Interface), escapeLabel(s.Op))
		// Re-bin the full-resolution log-linear slots into the fixed
		// exposition bounds; emitting all 1088 slots as `le` series
		// would bloat every scrape for no dashboard benefit.
		var bins [len(expoBounds) + 1]int64
		for i, c := range snap.Counts {
			if c != 0 {
				bins[expoBinOf[i]] += c
			}
		}
		var cum int64
		for i, bound := range bounds {
			cum += bins[i]
			fmt.Fprintf(&b, "soleil_invocation_latency_seconds_bucket{%s,le=%q} %d\n",
				labels, seconds(bound), cum)
		}
		cum += bins[len(bounds)]
		fmt.Fprintf(&b, "soleil_invocation_latency_seconds_bucket{%s,le=\"+Inf\"} %d\n", labels, cum)
		fmt.Fprintf(&b, "soleil_invocation_latency_seconds_sum{%s} %s\n", labels, seconds(snap.Sum))
		fmt.Fprintf(&b, "soleil_invocation_latency_seconds_count{%s} %d\n", labels, snap.Count)
	})

	// Real quantiles come from the full HDR resolution (~3.1% relative
	// error), not from the coarse exposition bins above.
	b.WriteString("# HELP soleil_invocation_latency_quantile_seconds Dispatch latency quantiles from the full-resolution log-linear histogram.\n")
	b.WriteString("# TYPE soleil_invocation_latency_quantile_seconds gauge\n")
	quantiles := [...]struct {
		label string
		q     float64
	}{{"0.5", 0.5}, {"0.99", 0.99}, {"0.999", 0.999}}
	series(func(s *OpSeries) {
		for _, sq := range quantiles {
			fmt.Fprintf(&b, "soleil_invocation_latency_quantile_seconds{component=\"%s\",interface=\"%s\",op=\"%s\",quantile=\"%s\"} %s\n",
				escapeLabel(s.Component), escapeLabel(s.Interface), escapeLabel(s.Op),
				sq.label, seconds(int64(s.Latency.Quantile(sq.q))))
		}
	})

	component := func(name, help, kind string, value func(c *ComponentMetrics) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, c := range comps {
			fmt.Fprintf(&b, "%s{component=\"%s\"} %d\n", name, escapeLabel(c.Name()), value(c))
		}
	}
	component("soleil_component_healthy", "Component health (1 healthy, 0 not).", "gauge",
		func(c *ComponentMetrics) int64 { return c.healthy.Load() })
	component("soleil_component_failures_total", "FAILED lifecycle transitions.", "counter",
		func(c *ComponentMetrics) int64 { return c.Failures.Load() })
	component("soleil_component_rejected_invocations_total", "Dispatches refused while FAILED.", "counter",
		func(c *ComponentMetrics) int64 { return c.Rejected.Load() })
	component("soleil_component_restarts_total", "Supervisor restarts.", "counter",
		func(c *ComponentMetrics) int64 { return c.Restarts.Load() })
	component("soleil_deadline_misses_total", "Deadline misses of the component's task.", "counter",
		func(c *ComponentMetrics) int64 { return c.Misses.Load() })

	queues := r.QueueNames()
	queue := func(name, help, kind string, value func(q QueueStats) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, qn := range queues {
			fn, ok := r.Queue(qn)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s{queue=\"%s\"} %d\n", name, escapeLabel(qn), value(fn()))
		}
	}
	queue("soleil_queue_depth", "Current queue length of an asynchronous binding buffer.", "gauge",
		func(q QueueStats) int64 { return int64(q.Depth) })
	queue("soleil_queue_high_watermark", "Maximum queue depth ever reached.", "gauge",
		func(q QueueStats) int64 { return int64(q.HighWatermark) })
	queue("soleil_queue_capacity", "Queue capacity.", "gauge",
		func(q QueueStats) int64 { return int64(q.Capacity) })
	queue("soleil_queue_enqueued_total", "Messages enqueued.", "counter",
		func(q QueueStats) int64 { return q.Enqueued })
	queue("soleil_queue_dequeued_total", "Messages dequeued.", "counter",
		func(q QueueStats) int64 { return q.Dequeued })
	queue("soleil_queue_dropped_total", "Messages dropped on overflow.", "counter",
		func(q QueueStats) int64 { return q.Dropped })

	gates := r.GateNames()
	gate := func(name, help, kind string, value func(g GateStats) int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, gn := range gates {
			fn, ok := r.Gate(gn)
			if !ok {
				continue
			}
			g := fn()
			fmt.Fprintf(&b, "%s{binding=\"%s\",policy=\"%s\"} %d\n",
				name, escapeLabel(gn), escapeLabel(g.Policy), value(g))
		}
	}
	gate("soleil_gate_admitted_total", "Messages admitted within the binding contract.", "counter",
		func(g GateStats) int64 { return g.Admitted })
	gate("soleil_gate_shed_total", "Messages shed by the admission gate.", "counter",
		func(g GateStats) int64 { return g.Shed })
	gate("soleil_gate_degraded_total", "Over-rate messages a degrade-policy gate let through.", "counter",
		func(g GateStats) int64 { return g.Degraded })
	gate("soleil_gate_slo_breaches_total", "Met-to-breached transitions of the binding SLO.", "counter",
		func(g GateStats) int64 { return g.Breaches })
	gate("soleil_gate_slo_breached", "Whether the binding SLO is currently breached (1 yes).", "gauge",
		func(g GateStats) int64 {
			if g.Breached {
				return 1
			}
			return 0
		})

	links := r.LinkNames()
	link := func(name, help, kind string, value func(l LinkStats) string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for _, ln := range links {
			fn, ok := r.Link(ln)
			if !ok {
				continue
			}
			l := fn()
			fmt.Fprintf(&b, "%s{link=\"%s\",dir=\"%s\"} %s\n",
				name, escapeLabel(ln), escapeLabel(l.Dir), value(l))
		}
	}
	bool01 := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	link("soleil_link_up", "Whether the cluster link session is currently established (1 yes).", "gauge",
		func(l LinkStats) string { return bool01(l.Connected) })
	link("soleil_link_reconnects_total", "Re-established cluster link sessions after the first.", "counter",
		func(l LinkStats) string { return strconv.FormatInt(l.Reconnects, 10) })
	link("soleil_link_stale_closes_total", "Cluster link sessions closed for heartbeat staleness.", "counter",
		func(l LinkStats) string { return strconv.FormatInt(l.StaleCloses, 10) })
	link("soleil_link_heartbeat_age_seconds", "Seconds since the last inbound frame on the link session.", "gauge",
		func(l LinkStats) string { return seconds(int64(l.HeartbeatAge)) })
	link("soleil_link_digests_sent_total", "Latency digests piggybacked onto outbound heartbeats.", "counter",
		func(l LinkStats) string { return strconv.FormatInt(l.DigestsSent, 10) })
	link("soleil_link_digests_received_total", "Latency digests received on inbound heartbeats.", "counter",
		func(l LinkStats) string { return strconv.FormatInt(l.DigestsReceived, 10) })
	link("soleil_link_remote_p99_seconds", "Server-side p99 from the most recent propagated digest.", "gauge",
		func(l LinkStats) string { return seconds(int64(l.RemoteP99)) })
	link("soleil_link_remote_slo_breached", "Whether the propagated remote digest breaches the contract (1 yes).", "gauge",
		func(l LinkStats) string { return bool01(l.RemoteBreached) })

	_, err := io.WriteString(w, b.String())
	return err
}

// WriteTop renders the one-shot textual snapshot behind `soleil top`:
// component health and invocation pressure, then queue pressure.
func (r *Registry) WriteTop(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "COMPONENT\tHEALTH\tINVOC\tERR\tPANIC\tFAIL\tREJECT\tRESTART\tMISS\tP50\tP99\tMAX")
	for _, c := range r.Components() {
		var inv, errs, panics int64
		var p50, p99, max time.Duration
		var n int64
		for _, s := range c.SeriesList() {
			inv += s.Invocations.Load()
			errs += s.Errors.Load()
			panics += s.Panics.Load()
			if cnt := s.Latency.Count(); cnt > n {
				// Report the busiest series' distribution.
				n = cnt
				p50, p99, max = s.Latency.Quantile(0.50), s.Latency.Quantile(0.99), s.Latency.Max()
			}
		}
		health := "ok"
		if !c.Healthy() {
			health = "FAIL"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%v\t%v\t%v\n",
			c.Name(), health, inv, errs, panics,
			c.Failures.Load(), c.Rejected.Load(), c.Restarts.Load(), c.Misses.Load(),
			p50, p99, max)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	queues := r.QueueNames()
	if len(queues) > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "QUEUE\tDEPTH\tHWM\tCAP\tENQ\tDEQ\tDROP")
		for _, qn := range queues {
			fn, ok := r.Queue(qn)
			if !ok {
				continue
			}
			q := fn()
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
				qn, q.Depth, q.HighWatermark, q.Capacity, q.Enqueued, q.Dequeued, q.Dropped)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	gates := r.GateNames()
	if len(gates) > 0 {
		fmt.Fprintln(w)
		tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "GATE\tPOLICY\tADMIT\tSHED\tDEGRADE\tBREACHES\tSLO")
		for _, gn := range gates {
			fn, ok := r.Gate(gn)
			if !ok {
				continue
			}
			g := fn()
			slo := "ok"
			if g.Breached {
				slo = "BREACH"
			}
			fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
				gn, g.Policy, g.Admitted, g.Shed, g.Degraded, g.Breaches, slo)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	links := r.LinkNames()
	if len(links) == 0 {
		return nil
	}
	fmt.Fprintln(w)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "LINK\tDIR\tUP\tAGE\tRECONN\tSTALE\tDIG-TX\tDIG-RX\tR-P99\tR-SLO")
	for _, ln := range links {
		fn, ok := r.Link(ln)
		if !ok {
			continue
		}
		l := fn()
		up := "down"
		if l.Connected {
			up = "up"
		}
		rslo := "ok"
		if l.RemoteBreached {
			rslo = "BREACH"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%v\t%d\t%d\t%d\t%d\t%v\t%s\n",
			ln, l.Dir, up, l.HeartbeatAge.Round(time.Millisecond),
			l.Reconnects, l.StaleCloses, l.DigestsSent, l.DigestsReceived,
			l.RemoteP99, rslo)
	}
	return tw.Flush()
}
