package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// InjectLabel copies a Prometheus text exposition from r to w,
// adding key="value" as the first label of every sample line.
// Comment and blank lines pass through untouched. It is the
// federation primitive: a coordinator scraping many nodes relabels
// each node's series with its node name before aggregating, so one
// view distinguishes soleil_invocations_total across the cluster.
func InjectLabel(w io.Writer, r io.Reader, key, value string) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintln(w, injectLabelLine(line, key, value)); err != nil {
			return err
		}
	}
	return sc.Err()
}

func injectLabelLine(line, key, value string) string {
	label := key + `="` + escapeLabel(value) + `"`
	// A sample line is `name{labels} value` or `name value`; the first
	// '{' (if any) opens the label set, since metric names cannot
	// contain one.
	if i := strings.IndexByte(line, '{'); i >= 0 {
		return line[:i+1] + label + "," + line[i+1:]
	}
	if i := strings.IndexByte(line, ' '); i > 0 {
		return line[:i] + "{" + label + "}" + line[i:]
	}
	return line
}
