package obs

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// InjectLabel copies a Prometheus text exposition from r to w,
// adding key="value" as the first label of every sample line.
// Comment and blank lines pass through untouched. It is the
// federation primitive: a coordinator scraping many nodes relabels
// each node's series with its node name before aggregating, so one
// view distinguishes soleil_invocations_total across the cluster.
// When a sample already carries the key (an injection collision —
// e.g. federating an exposition that was itself federated), its
// value is replaced rather than duplicated, since duplicate label
// names make a series unparsable.
func InjectLabel(w io.Writer, r io.Reader, key, value string) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintln(w, injectLabelLine(line, key, value)); err != nil {
			return err
		}
	}
	return sc.Err()
}

// findLabel scans a sample line's label set starting just after the
// opening brace at open, honoring quoted values with escapes, and
// returns the half-open span of the existing key="..." label (or
// -1, -1).
func findLabel(line string, open int, key string) (labStart, labEnd int) {
	labStart, labEnd = -1, -1
	i := open
	for i < len(line) && line[i] != '}' {
		start := i
		for i < len(line) && line[i] != '=' && line[i] != '}' {
			i++
		}
		if i >= len(line) || line[i] == '}' {
			break
		}
		name := line[start:i]
		i++ // consume '='
		if i < len(line) && line[i] == '"' {
			i++
			for i < len(line) {
				if line[i] == '\\' {
					i += 2
					continue
				}
				if line[i] == '"' {
					i++
					break
				}
				i++
			}
		}
		if name == key {
			labStart, labEnd = start, i
		}
		if i < len(line) && line[i] == ',' {
			i++
		}
	}
	return labStart, labEnd
}

func injectLabelLine(line, key, value string) string {
	label := key + `="` + escapeLabel(value) + `"`
	// A sample line is `name{labels} value` or `name value`; the first
	// '{' (if any) opens the label set, since metric names cannot
	// contain one.
	if i := strings.IndexByte(line, '{'); i >= 0 {
		if s, e := findLabel(line, i+1, key); s >= 0 {
			return line[:s] + label + line[e:]
		}
		return line[:i+1] + label + "," + line[i+1:]
	}
	if i := strings.IndexByte(line, ' '); i > 0 {
		return line[:i] + "{" + label + "}" + line[i:]
	}
	return line
}

// ExpoMerger merges several nodes' Prometheus expositions into one
// stream: every sample line gets a node label injected (collisions
// replaced), each metric family's HELP/TYPE comments are emitted
// once — from the first node that declares them — and a node that
// redeclares a family with a conflicting TYPE has the redeclaration
// dropped (first declaration wins) and the conflict surfaced both as
// an exposition comment and through Conflicts.
type ExpoMerger struct {
	w         io.Writer
	types     map[string]string // family -> first declared TYPE kind
	helpSeen  map[string]bool
	conflicts []string
}

// NewExpoMerger creates a merger writing to w.
func NewExpoMerger(w io.Writer) *ExpoMerger {
	return &ExpoMerger{
		w:        w,
		types:    make(map[string]string),
		helpSeen: make(map[string]bool),
	}
}

// WriteSection merges one node's exposition into the stream.
func (m *ExpoMerger) WriteSection(node string, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := m.writeComment(node, line); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintln(m.w, injectLabelLine(line, "node", node)); err != nil {
			return err
		}
	}
	return sc.Err()
}

func (m *ExpoMerger) writeComment(node, line string) error {
	fields := strings.Fields(line)
	// `# TYPE <family> <kind>` / `# HELP <family> <text>`; anything
	// else passes through (free-form comments are rare but legal).
	if len(fields) >= 3 && fields[0] == "#" {
		fam := fields[2]
		switch fields[1] {
		case "TYPE":
			kind := ""
			if len(fields) >= 4 {
				kind = fields[3]
			}
			if prev, seen := m.types[fam]; seen {
				if prev != kind {
					conflict := fmt.Sprintf("node %s redeclares %s as %s (keeping %s)", node, fam, kind, prev)
					m.conflicts = append(m.conflicts, conflict)
					_, err := fmt.Fprintf(m.w, "# federation conflict: %s\n", conflict)
					return err
				}
				return nil
			}
			m.types[fam] = kind
		case "HELP":
			if m.helpSeen[fam] {
				return nil
			}
			m.helpSeen[fam] = true
		}
	}
	_, err := fmt.Fprintln(m.w, line)
	return err
}

// Conflicts returns the TYPE conflicts encountered so far.
func (m *ExpoMerger) Conflicts() []string { return m.conflicts }
