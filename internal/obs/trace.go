package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext identifies one span within a causal trace. It is the
// value that travels: through membrane invocations, inside
// asynchronous buffer messages, and over distributed binding
// envelopes (two integers — gob- and copy-friendly, no references).
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

// idSeq generates process-unique span/trace IDs: a random base (so
// two systems joined by a distributed binding do not collide) plus an
// atomic increment.
var idSeq atomic.Uint64

func init() { idSeq.Store(rand.Uint64()) }

func nextID() uint64 {
	for {
		if id := idSeq.Add(1); id != 0 {
			return id
		}
	}
}

// NewSpanContext derives a child span context from parent, or starts
// a new root trace when parent is invalid. It allocates nothing.
func NewSpanContext(parent SpanContext) SpanContext {
	if parent.Valid() {
		return SpanContext{TraceID: parent.TraceID, SpanID: nextID()}
	}
	return SpanContext{TraceID: nextID(), SpanID: nextID()}
}

// Span kinds, mirroring Chrome trace_event phases.
const (
	// SpanComplete is a duration slice ("X").
	SpanComplete = byte('X')
	// SpanInstant is a zero-duration marker ("i") — scheduler trace
	// events bridge in as instants.
	SpanInstant = byte('i')
)

// Span is one recorded trace event. Name is rendered as
// Interface.Op at export time; keeping the parts separate means
// recording a span performs no string concatenation.
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64

	System    string
	Component string
	Interface string
	Op        string

	Start    time.Time
	Duration time.Duration
	Err      bool
	Kind     byte // 0 means SpanComplete
}

// Tracer records completed spans into a fixed ring. Record copies the
// span value into a preallocated slot under a short mutex — no
// allocation — so tracing can stay on in production.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	total int64
}

// DefaultTraceCapacity is the ring size NewTracer uses for
// capacity <= 0.
const DefaultTraceCapacity = 1 << 14

// NewTracer creates a tracer retaining the last capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Record stores one span, overwriting the oldest when the ring is
// full.
func (t *Tracer) Record(sp Span) {
	if sp.Kind == 0 {
		sp.Kind = SpanComplete
	}
	t.mu.Lock()
	t.ring[t.next] = sp
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Total returns how many spans have ever been recorded.
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the retained spans in record order (oldest first).
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= int64(len(t.ring)) {
		out := make([]Span, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// --- Chrome trace_event export ----------------------------------------------------

// chromeEvent is one trace_event object. Perfetto and chrome://tracing
// both accept the JSON object format {"traceEvents": [...]}.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace renders the tracer's retained spans as Chrome
// trace_event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Spans())
}

// WriteChromeTrace renders spans as Chrome trace_event JSON: one
// process lane per system, one thread lane per component, complete
// ("X") slices for invocation spans, instants for bridged scheduler
// events, and flow arrows binding parent to child across lanes — so a
// cross-system call reads as one causal tree in the viewer.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Start.Before(ordered[j].Start) })

	var epoch time.Time
	for i, sp := range ordered {
		if i == 0 || sp.Start.Before(epoch) {
			epoch = sp.Start
		}
	}

	pids := make(map[string]int)
	tids := make(map[string]int)
	var events []chromeEvent
	pidOf := func(system string) int {
		if id, ok := pids[system]; ok {
			return id
		}
		id := len(pids) + 1
		pids[system] = id
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: id,
			Args: map[string]any{"name": system},
		})
		return id
	}
	tidOf := func(system, component string) int {
		key := system + "\x00" + component
		if id, ok := tids[key]; ok {
			return id
		}
		id := len(tids) + 1
		tids[key] = id
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pidOf(system), Tid: id,
			Args: map[string]any{"name": component},
		})
		return id
	}

	byID := make(map[uint64]*Span, len(ordered))
	for i := range ordered {
		if ordered[i].ID != 0 {
			byID[ordered[i].ID] = &ordered[i]
		}
	}

	ts := func(t time.Time) float64 { return float64(t.Sub(epoch)) / float64(time.Microsecond) }
	name := func(sp Span) string {
		if sp.Op == "" {
			return sp.Interface
		}
		return sp.Interface + "." + sp.Op
	}

	for _, sp := range ordered {
		pid, tid := pidOf(sp.System), tidOf(sp.System, sp.Component)
		ev := chromeEvent{
			Name: name(sp),
			Ph:   string(sp.Kind),
			Ts:   ts(sp.Start),
			Pid:  pid,
			Tid:  tid,
		}
		if sp.Kind == SpanComplete || sp.Kind == 0 {
			ev.Ph = "X"
			ev.Dur = float64(sp.Duration) / float64(time.Microsecond)
			ev.Cat = "invoke"
		} else if sp.Kind == SpanInstant {
			ev.Cat = "sched"
			ev.S = "t"
		}
		args := map[string]any{}
		if sp.Trace != 0 {
			args["trace"] = fmt.Sprintf("%016x", sp.Trace)
			args["span"] = fmt.Sprintf("%016x", sp.ID)
		}
		if sp.Parent != 0 {
			args["parent"] = fmt.Sprintf("%016x", sp.Parent)
		}
		if sp.Err {
			args["error"] = true
		}
		if len(args) > 0 {
			ev.Args = args
		}
		events = append(events, ev)

		// A flow arrow from the parent's lane to this span's lane,
		// emitted when the link crosses a component or system boundary
		// (within one lane, nesting already shows the causality).
		if parent := byID[sp.Parent]; parent != nil &&
			(parent.System != sp.System || parent.Component != sp.Component) {
			flowID := fmt.Sprintf("%016x", sp.ID)
			events = append(events,
				chromeEvent{
					Name: "causal", Cat: "flow", Ph: "s", ID: flowID,
					Ts:  ts(parent.Start),
					Pid: pidOf(parent.System), Tid: tidOf(parent.System, parent.Component),
				},
				chromeEvent{
					Name: "causal", Cat: "flow", Ph: "f", BP: "e", ID: flowID,
					Ts:  ts(sp.Start),
					Pid: pid, Tid: tid,
				},
			)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events})
}
