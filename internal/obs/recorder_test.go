package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderRingOrder(t *testing.T) {
	r := NewRecorder("alpha", 4)
	defer r.Close()
	for i := 1; i <= 6; i++ {
		r.Record(EvGateShed, "b1", int64(i), SpanContext{})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i + 3); ev.Value != want {
			t.Errorf("event %d value = %d, want %d (oldest first)", i, ev.Value, want)
		}
		if ev.Node != "alpha" {
			t.Errorf("event node = %q, want alpha", ev.Node)
		}
	}
	if r.Total() != 6 {
		t.Errorf("total = %d, want 6", r.Total())
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(EvDeadlineMiss, "x", 1, SpanContext{})
	r.Trigger("nothing")
	r.Close()
	if r.Events() != nil || r.Total() != 0 || r.Node() != "" {
		t.Error("nil recorder not inert")
	}
}

func TestRecorderTriggerRateLimitAndSink(t *testing.T) {
	r := NewRecorder("alpha", 64)
	defer r.Close()

	var mu sync.Mutex
	var reasons []string
	done := make(chan struct{}, 8)
	r.SetDumpSink(func(reason string, events []Event) {
		mu.Lock()
		reasons = append(reasons, reason)
		mu.Unlock()
		done <- struct{}{}
	})

	r.Record(EvGateBreach, "b1", 100, SpanContext{})
	r.Trigger("slo-breach")
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("dump sink never ran")
	}
	// Immediately retriggering is rate-limited away.
	r.Trigger("slo-breach")
	accepted, suppressed := r.Dumps()
	if accepted != 1 {
		t.Errorf("accepted dumps = %d, want 1", accepted)
	}
	if suppressed != 1 {
		t.Errorf("suppressed dumps = %d, want 1", suppressed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reasons) != 1 || reasons[0] != "slo-breach" {
		t.Errorf("sink saw %v, want [slo-breach]", reasons)
	}
}

func TestRecorderMissBurstTrigger(t *testing.T) {
	r := NewRecorder("alpha", 64)
	defer r.Close()
	done := make(chan string, 1)
	r.SetDumpSink(func(reason string, events []Event) {
		select {
		case done <- reason:
		default:
		}
	})
	for i := 0; i < missBurstCount; i++ {
		r.Record(EvDeadlineMiss, "Worker", int64(i), SpanContext{})
	}
	select {
	case reason := <-done:
		if reason != "miss-burst" {
			t.Errorf("trigger reason = %q, want miss-burst", reason)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("miss burst did not trigger a dump")
	}
}

func TestMergeEventsOrdering(t *testing.T) {
	a := []Event{
		{Seq: 1, When: 100, Node: "alpha", Kind: EvGateBreach, Subject: "b1"},
		{Seq: 2, When: 300, Node: "alpha", Kind: EvGateRecovered, Subject: "b1"},
	}
	b := []Event{
		{Seq: 1, When: 200, Node: "beta", Kind: EvLifecycleFailed, Subject: "Worker"},
	}
	merged := MergeEvents(a, b)
	if len(merged) != 3 {
		t.Fatalf("merged %d events, want 3", len(merged))
	}
	if merged[0].Node != "alpha" || merged[1].Node != "beta" || merged[2].Node != "alpha" {
		t.Errorf("merged order wrong: %v", merged)
	}
}

func TestEventKindJSONRoundTrip(t *testing.T) {
	for k := EventKind(0); k < evKindCount; k++ {
		data, err := k.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back EventKind
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("kind %v round-trips to %v", k, back)
		}
	}
}

func TestWriteEventsChromeTrace(t *testing.T) {
	events := []Event{
		{Seq: 1, When: time.Now().UnixNano(), Node: "alpha", Kind: EvRemoteBreach, Subject: "link x", Value: 5000000, Trace: 7, Span: 8},
		{Seq: 2, When: time.Now().UnixNano(), Node: "beta", Kind: EvLifecycleFailed, Subject: "Worker"},
	}
	var b strings.Builder
	if err := WriteEventsChromeTrace(&b, events); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"traceEvents"`, `"remote-breach"`, `"lifecycle-failed"`, `"alpha"`, `"beta"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %q", want)
		}
	}
}

// TestRecorderHotPathAllocs pins the acceptance criterion: recording
// a flight-recorder event from a dispatch path allocates nothing.
func TestRecorderHotPathAllocs(t *testing.T) {
	r := NewRecorder("alpha", 1024)
	defer r.Close()
	sc := SpanContext{TraceID: 1, SpanID: 2}
	if allocs := testing.AllocsPerRun(500, func() {
		r.Record(EvGateShed, "b1", 42, sc)
	}); allocs != 0 {
		t.Errorf("Recorder.Record allocates %.1f objects per op, want 0", allocs)
	}
}
