package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{500 * time.Nanosecond, 3 * time.Microsecond, 40 * time.Millisecond} {
		h.Observe(d)
	}
	h.Observe(-time.Second) // clamped to 0
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.Max(); got != 40*time.Millisecond {
		t.Errorf("max = %v, want 40ms", got)
	}
	if h.Mean() <= 0 {
		t.Errorf("mean = %v, want > 0", h.Mean())
	}
	snap := h.Snapshot()
	var total int64
	for _, c := range snap.Counts {
		total += c
	}
	if total != 4 {
		t.Errorf("snapshot buckets sum to %d, want 4", total)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	for i := 0; i < 99; i++ {
		h.Observe(10 * time.Microsecond)
	}
	h.Observe(2 * time.Second)
	// Log-linear slots have ~3.1% worst-case relative error; the p50
	// estimate is the upper bound of the slot holding 10µs.
	if p50 := h.Quantile(0.50); p50 < 10*time.Microsecond || p50 > 10*time.Microsecond*1032/1000 {
		t.Errorf("p50 = %v, want within [10µs, 10.32µs]", p50)
	}
	if p999 := h.Quantile(0.999); p999 < time.Second {
		t.Errorf("p99.9 = %v, want >= 1s", p999)
	}
	// A quantile never reads above the largest observation.
	var h2 Histogram
	h2.Observe(300 * time.Nanosecond)
	if got := h2.Quantile(0.5); got != 300*time.Nanosecond {
		t.Errorf("quantile clamped to max: got %v, want 300ns", got)
	}
}

func TestRegistrySeries(t *testing.T) {
	r := NewRegistry()
	cm := r.Component("Pump")
	if !cm.Healthy() {
		t.Error("new component not healthy")
	}
	s1 := cm.Series("iFlow", "read")
	s2 := cm.Series("iFlow", "read")
	if s1 != s2 {
		t.Error("series not interned")
	}
	cm.Series("iFlow", "write")
	cm.Series("aCtl", "set")
	list := cm.SeriesList()
	if len(list) != 3 {
		t.Fatalf("series list = %d, want 3", len(list))
	}
	if list[0].Interface != "aCtl" || list[1].Op != "read" {
		t.Errorf("series not sorted: %v %v", list[0], list[1])
	}
	if r.Component("Pump") != cm {
		t.Error("component not interned")
	}
}

func TestRegistryHealth(t *testing.T) {
	r := NewRegistry()
	a := r.Component("A")
	r.Component("B")
	if !r.Healthy() {
		t.Error("all-healthy registry reports unhealthy")
	}
	a.SetHealthy(false)
	if r.Healthy() {
		t.Error("registry healthy with a failed component")
	}
	a.SetHealthy(true)
	if !r.Healthy() {
		t.Error("recovery not reflected")
	}
}

func TestSpanContextDerivation(t *testing.T) {
	root := NewSpanContext(SpanContext{})
	if !root.Valid() {
		t.Fatal("root span invalid")
	}
	child := NewSpanContext(root)
	if child.TraceID != root.TraceID {
		t.Error("child left the trace")
	}
	if child.SpanID == root.SpanID {
		t.Error("child reused the parent span id")
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 6; i++ {
		tr.Record(Span{ID: uint64(i)})
	}
	if got := tr.Total(); got != 6 {
		t.Errorf("total = %d, want 6", got)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained = %d, want 4", len(spans))
	}
	if spans[0].ID != 3 || spans[3].ID != 6 {
		t.Errorf("ring order wrong: first=%d last=%d", spans[0].ID, spans[3].ID)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	cm := r.Component(`odd"name`)
	s := cm.Series("iFlow", "read")
	s.Invocations.Add(3)
	s.Errors.Inc()
	s.Latency.Observe(5 * time.Microsecond)
	cm.Misses.Add(2)
	r.RegisterQueue("q1", func() QueueStats {
		return QueueStats{Enqueued: 10, Dequeued: 9, Depth: 1, HighWatermark: 4, Capacity: 16}
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`soleil_invocations_total{component="odd\"name",interface="iFlow",op="read"} 3`,
		`soleil_invocation_errors_total{component="odd\"name",interface="iFlow",op="read"} 1`,
		`soleil_invocation_latency_seconds_bucket`,
		`le="+Inf"} 1`,
		`soleil_invocation_latency_quantile_seconds{component="odd\"name",interface="iFlow",op="read",quantile="0.99"}`,
		`soleil_deadline_misses_total{component="odd\"name"} 2`,
		`soleil_queue_depth{queue="q1"} 1`,
		`soleil_queue_high_watermark{queue="q1"} 4`,
		`soleil_component_healthy{component="odd\"name"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestWriteTop(t *testing.T) {
	r := NewRegistry()
	cm := r.Component("Pump")
	cm.Series("iFlow", "read").Invocations.Add(5)
	cm.SetHealthy(false)
	var b strings.Builder
	if err := r.WriteTop(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Pump") || !strings.Contains(b.String(), "FAIL") {
		t.Errorf("top output missing component or health:\n%s", b.String())
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	base := time.Unix(1000, 0)
	tr.Record(Span{
		Trace: 1, ID: 2, System: "sysA", Component: "Prod",
		Interface: "activation", Op: "run", Start: base, Duration: time.Millisecond,
	})
	tr.Record(Span{
		Trace: 1, ID: 3, Parent: 2, System: "sysB", Component: "Cons",
		Interface: "uplink", Op: "push", Start: base.Add(time.Millisecond), Duration: time.Millisecond, Err: true,
	})
	tr.Record(Span{
		System: "sysA", Component: "Prod", Interface: "sched", Op: "release",
		Start: base, Kind: SpanInstant,
	})

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &file); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	phases := map[string]int{}
	pids := map[float64]bool{}
	for _, e := range file.TraceEvents {
		phases[e["ph"].(string)]++
		pids[e["pid"].(float64)] = true
	}
	if phases["X"] != 2 || phases["i"] != 1 {
		t.Errorf("phases = %v, want 2 X and 1 i", phases)
	}
	// The cross-system parent link must materialize as a flow pair.
	if phases["s"] != 1 || phases["f"] != 1 {
		t.Errorf("phases = %v, want one s/f flow pair", phases)
	}
	if len(pids) != 2 {
		t.Errorf("process lanes = %d, want 2", len(pids))
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	cm := r.Component("Pump")
	tr := NewTracer(8)
	h := NewHandler(HandlerOptions{
		Registry: r,
		Tracer:   tr,
		Arch:     func() any { return map[string]string{"mode": "SOLEIL"} },
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "soleil_component_healthy") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"healthy":true`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	cm.SetHealthy(false)
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, `"healthy":false`) {
		t.Errorf("unhealthy /healthz = %d %q", code, body)
	}
	if code, body := get("/arch"); code != 200 || !strings.Contains(body, "SOLEIL") {
		t.Errorf("/arch = %d %q", code, body)
	}
	if code, body := get("/top"); code != 200 || !strings.Contains(body, "Pump") {
		t.Errorf("/top = %d %q", code, body)
	}
	if code, body := get("/trace"); code != 200 || !strings.Contains(body, "traceEvents") {
		t.Errorf("/trace = %d %q", code, body)
	}

	// Absent wiring 404s instead of serving empties.
	bare := httptest.NewServer(NewHandler(HandlerOptions{Registry: NewRegistry()}))
	defer bare.Close()
	for _, path := range []string{"/arch", "/trace"} {
		resp, err := http.Get(bare.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s on bare handler = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestServe(t *testing.T) {
	addr, shutdown, err := Serve("127.0.0.1:0", HandlerOptions{Registry: NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

// TestHotPathAllocs proves the metrics primitives are allocation-free
// in steady state — the property that makes them safe on RT paths.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	cm := r.Component("Pump")
	cm.Series("iFlow", "read") // intern outside the measured loop
	tr := NewTracer(64)

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { cm.Failures.Inc() }},
		{"Gauge.Set", func() { cm.SetHealthy(true) }},
		{"Histogram.Observe", func() { cm.Series("iFlow", "read").Latency.Observe(3 * time.Microsecond) }},
		{"Series lookup", func() { cm.Series("iFlow", "read").Invocations.Inc() }},
		{"Tracer.Record", func() {
			tr.Record(Span{Trace: 1, ID: 2, System: "s", Component: "c", Interface: "i", Op: "o"})
		}},
		{"NewSpanContext", func() { _ = NewSpanContext(SpanContext{TraceID: 1, SpanID: 2}) }},
		{"Histogram.Quantile", func() { _ = cm.Series("iFlow", "read").Latency.Quantile(0.99) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per op, want 0", tc.name, allocs)
		}
	}
}
