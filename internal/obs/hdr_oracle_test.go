package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrentMergeQuantileOracle hammers the histogram
// from many goroutines — both a single shared instance and a
// per-goroutine shard set merged afterwards — and compares the
// resulting quantiles against a sorted-slice oracle of the exact same
// observations. The log-linear geometry promises the estimate is an
// upper bound within ~3.1% of the true rank value; both the
// concurrent shared path and the shard-merge path must honour that
// bound for every distribution shape the load plane produces. Run
// under -race (make check does) this doubles as the data-race proof
// for concurrent Observe vs Snapshot/MergeInto.
func TestHistogramConcurrentMergeQuantileOracle(t *testing.T) {
	const (
		goroutines = 8
		perG       = 5000
	)
	dists := []struct {
		name string
		draw func(r *rand.Rand) time.Duration
	}{
		{"uniform-1ms", func(r *rand.Rand) time.Duration {
			return time.Duration(r.Int63n(int64(time.Millisecond))) + time.Microsecond
		}},
		{"bimodal", func(r *rand.Rand) time.Duration {
			if r.Intn(1000) < 970 {
				return 50*time.Microsecond + time.Duration(r.Int63n(int64(20*time.Microsecond)))
			}
			return 5*time.Millisecond + time.Duration(r.Int63n(int64(2*time.Millisecond)))
		}},
		{"log-uniform-tail", func(r *rand.Rand) time.Duration {
			return time.Duration(1<<uint(r.Intn(14)))*time.Microsecond +
				time.Duration(r.Int63n(1000))
		}},
		{"constant", func(r *rand.Rand) time.Duration {
			return 250 * time.Microsecond
		}},
	}
	for _, d := range dists {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			var shared Histogram
			shards := make([]Histogram, goroutines)
			values := make([][]int64, goroutines)

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(g)*7919 + 17))
					vals := make([]int64, 0, perG)
					for i := 0; i < perG; i++ {
						v := d.draw(r)
						shared.Observe(v)
						shards[g].Observe(v)
						vals = append(vals, int64(v))
					}
					values[g] = vals
				}(g)
			}
			wg.Wait()

			var all []int64
			for _, vs := range values {
				all = append(all, vs...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			total := int64(len(all))
			var sum int64
			for _, v := range all {
				sum += v
			}

			var merged HistogramSnapshot
			for i := range shards {
				shards[i].MergeInto(&merged)
			}
			sharedSnap := shared.Snapshot()

			for _, src := range []struct {
				name string
				snap *HistogramSnapshot
			}{{"shared", &sharedSnap}, {"merged", &merged}} {
				if src.snap.Count != total {
					t.Errorf("%s: count = %d, want %d", src.name, src.snap.Count, total)
				}
				if src.snap.Sum != sum {
					t.Errorf("%s: sum = %d, want %d", src.name, src.snap.Sum, sum)
				}
				if src.snap.Max != all[len(all)-1] {
					t.Errorf("%s: max = %d, want %d", src.name, src.snap.Max, all[len(all)-1])
				}
			}

			for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
				rank := int64(q*float64(total) + 0.5)
				if rank < 1 {
					rank = 1
				}
				oracle := all[rank-1]
				// Quantile reports the slot upper bound clamped to the
				// observed max: never below the true rank value, never
				// more than one slot width (value/32 + 1ns) above it.
				lo, hi := oracle, oracle+oracle/32+1
				for _, src := range []struct {
					name string
					snap *HistogramSnapshot
				}{{"shared", &sharedSnap}, {"merged", &merged}} {
					got := int64(src.snap.Quantile(q))
					if got < lo || got > hi {
						t.Errorf("%s: q=%v got %d, want in [%d, %d] (oracle %d)",
							src.name, q, got, lo, hi, oracle)
					}
				}
			}
		})
	}
}
