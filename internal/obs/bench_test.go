package obs

import (
	"testing"
	"time"
)

// The hot-path benchmarks below back the //soleil:noheap annotations
// on the metric primitives: `make benchcheck` runs them with -benchmem
// and fails the build if any reports allocations. Everything a
// MetricsInterceptor touches per dispatch is covered: the series
// lookup, the atomic updates, the span derivation and the ring-slot
// record.

func BenchmarkHotPathCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHotPathGaugeSet(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHotPathHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkHotPathSeriesLookup(b *testing.B) {
	cm := NewRegistry().Component("m")
	cm.Series("iface", "op") // steady state: the series exists
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Series("iface", "op").Invocations.Inc()
	}
}

func BenchmarkHotPathSpanDerive(b *testing.B) {
	parent := NewSpanContext(SpanContext{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewSpanContext(parent)
	}
}

func BenchmarkHotPathTracerRecord(b *testing.B) {
	tr := NewTracer(1024)
	cur := NewSpanContext(SpanContext{})
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(Span{
			Trace: cur.TraceID, ID: cur.SpanID,
			System: "sys", Component: "m", Interface: "i", Op: "op",
			Start: start, Duration: time.Microsecond,
		})
	}
}
