package obs

import (
	"testing"
	"time"
)

// The hot-path benchmarks below back the //soleil:noheap annotations
// on the metric primitives: `make benchcheck` runs them with -benchmem
// and fails the build if any reports allocations. Everything a
// MetricsInterceptor touches per dispatch is covered: the series
// lookup, the atomic updates, the span derivation and the ring-slot
// record.

func BenchmarkHotPathCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHotPathGaugeSet(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkHotPathHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

func BenchmarkHotPathHistogramObserveSince(b *testing.B) {
	var h Histogram
	intended := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ObserveSince(intended)
	}
}

func BenchmarkHotPathSeriesLookup(b *testing.B) {
	cm := NewRegistry().Component("m")
	cm.Series("iface", "op") // steady state: the series exists
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Series("iface", "op").Invocations.Inc()
	}
}

func BenchmarkHotPathSpanDerive(b *testing.B) {
	parent := NewSpanContext(SpanContext{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewSpanContext(parent)
	}
}

func BenchmarkHotPathRecorderAppend(b *testing.B) {
	r := NewRecorder("node", 4096)
	defer r.Close()
	sc := SpanContext{TraceID: 1, SpanID: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(EvGateShed, "binding", int64(i), sc)
	}
}

func BenchmarkHotPathHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

func BenchmarkHotPathDigestEncode(b *testing.B) {
	var h Histogram
	for i := 0; i < 10000; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
	var snap HistogramSnapshot
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SnapshotInto(&snap)
		buf = AppendDigest(buf[:0], &snap, 0)
	}
}

func BenchmarkHotPathTracerRecord(b *testing.B) {
	tr := NewTracer(1024)
	cur := NewSpanContext(SpanContext{})
	start := time.Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(Span{
			Trace: cur.TraceID, ID: cur.SpanID,
			System: "sys", Component: "m", Interface: "i", Op: "op",
			Start: start, Duration: time.Microsecond,
		})
	}
}
