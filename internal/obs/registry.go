package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// OpSeries is the metric family of one operation on one component
// interface — the (component, interface, op) key the issue tracker of
// a running system is organized around. All fields are updated with
// single atomic operations.
type OpSeries struct {
	Component string
	Interface string
	Op        string

	// Invocations counts dispatches that entered the operation.
	Invocations Counter
	// Errors counts dispatches that returned a non-nil error
	// (recovered panics surface here as errors once a panic guard has
	// converted them).
	Errors Counter
	// Panics counts raw panics that unwound through the metrics layer
	// (i.e. no panic interceptor was deployed inside it).
	Panics Counter
	// Latency is the dispatch latency distribution.
	Latency Histogram
}

// opKey keys a series without string concatenation, so steady-state
// lookups allocate nothing.
type opKey struct{ itf, op string }

// ComponentMetrics aggregates one component's signals: its per-op
// series plus the lifecycle and scheduling counters supervision
// watches.
type ComponentMetrics struct {
	name string
	reg  *Registry // backpointer for flight-recorder access; nil-safe

	// Failures counts FAILED lifecycle transitions (a fault
	// interceptor isolated the component).
	Failures Counter
	// Rejected counts dispatches refused while the component was in
	// the FAILED state.
	Rejected Counter
	// Restarts counts supervisor restarts.
	Restarts Counter
	// Misses counts deadline misses of the component's task.
	Misses Counter

	healthy Gauge // 1 healthy, 0 not

	mu     sync.RWMutex
	series map[opKey]*OpSeries
}

// Name returns the component name.
func (c *ComponentMetrics) Name() string { return c.name }

// SetHealthy flips the component health gauge.
func (c *ComponentMetrics) SetHealthy(ok bool) {
	if ok {
		c.healthy.Set(1)
	} else {
		c.healthy.Set(0)
	}
}

// Healthy reports the component health gauge.
func (c *ComponentMetrics) Healthy() bool { return c.healthy.Load() == 1 }

// Event records a flight-recorder event about this component, if the
// owning registry has a recorder wired. The component's name is the
// event subject; the call is a no-op (one branch) otherwise, so
// lifecycle and scheduler paths call it unconditionally.
//
//soleil:noheap
func (c *ComponentMetrics) Event(kind EventKind, value int64, sc SpanContext) {
	if c.reg == nil {
		return
	}
	c.reg.rec.Load().Record(kind, c.name, value, sc)
}

// FlightRecorder returns the recorder of the owning registry (nil
// when unwired).
func (c *ComponentMetrics) FlightRecorder() *Recorder {
	if c.reg == nil {
		return nil
	}
	return c.reg.Recorder()
}

// Series returns the metric family of (itf, op), creating it on first
// use. Steady-state lookups take a read lock and allocate nothing.
func (c *ComponentMetrics) Series(itf, op string) *OpSeries {
	k := opKey{itf: itf, op: op}
	c.mu.RLock()
	s := c.series[k]
	c.mu.RUnlock()
	if s != nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s = c.series[k]; s == nil {
		s = &OpSeries{Component: c.name, Interface: itf, Op: op} //soleil:ignore SA01 first use of a series only; steady state allocates nothing (make benchcheck)
		c.series[k] = s
	}
	return s
}

// SeriesList returns the component's series sorted by interface then
// op.
func (c *ComponentMetrics) SeriesList() []*OpSeries {
	c.mu.RLock()
	out := make([]*OpSeries, 0, len(c.series))
	for _, s := range c.series {
		out = append(out, s)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Interface != out[j].Interface {
			return out[i].Interface < out[j].Interface
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// SnapshotInterface overwrites s with the merged latency distribution
// of every series on itf and returns how many series it folded in.
// Allocation-free, so the cluster layer can build a digest of a
// server interface on every heartbeat tick.
//
//soleil:noheap
func (c *ComponentMetrics) SnapshotInterface(itf string, s *HistogramSnapshot) int {
	*s = HistogramSnapshot{}
	n := 0
	c.mu.RLock()
	for k, sr := range c.series {
		if k.itf != itf {
			continue
		}
		sr.Latency.MergeInto(s)
		n++
	}
	c.mu.RUnlock()
	return n
}

// MaxQuantileOn returns the highest q-quantile latency across the
// series of one interface (zero when the interface has no samples).
// It is allocation-free — the admission gates' SLO breach probes call
// it, sampled, from dispatch hot paths.
func (c *ComponentMetrics) MaxQuantileOn(itf string, q float64) time.Duration {
	var max time.Duration
	c.mu.RLock()
	for k, s := range c.series {
		if k.itf != itf {
			continue
		}
		if d := s.Latency.Quantile(q); d > max {
			max = d
		}
	}
	c.mu.RUnlock()
	return max
}

// QueueStats is the registry's view of one bounded buffer — queue
// pressure made visible before overflow.
type QueueStats struct {
	Enqueued int64
	Dequeued int64
	Dropped  int64
	// Depth is the current queue length.
	Depth int
	// HighWatermark is the maximum depth ever reached.
	HighWatermark int
	// Capacity is the buffer capacity.
	Capacity int
}

// LinkStats is the registry's view of one cluster link endpoint —
// session liveness, reconnect/staleness churn, and (export side) the
// remote SLO picture carried by propagated heartbeat digests.
type LinkStats struct {
	// Dir is "export" (client side, dialing writer) or "import"
	// (server side, accepting listener).
	Dir string
	// Connected reports whether a session is currently established.
	Connected bool
	// Reconnects counts re-established sessions after the first.
	Reconnects int64
	// StaleCloses counts sessions closed for heartbeat staleness.
	StaleCloses int64
	// HeartbeatAge is the time since the last inbound frame on the
	// current session (zero when never connected).
	HeartbeatAge time.Duration
	// DigestsSent / DigestsReceived count latency digests piggybacked
	// on heartbeats (sent by the import side, received by the export
	// side).
	DigestsSent     int64
	DigestsReceived int64
	// RemoteP99 is the p99 computed from the most recent propagated
	// server-side digest (export side with a latency-budget contract).
	RemoteP99 time.Duration
	// RemoteBreached reports whether the propagated digest currently
	// breaches the contract threshold.
	RemoteBreached bool
	// RemoteCount is the observation count in the last digest.
	RemoteCount int64
}

// GateStats is the registry's view of one binding's admission gate —
// contract pressure (admitted/shed/degraded) and the SLO breach state.
type GateStats struct {
	Admitted int64
	Shed     int64
	Degraded int64
	// Breaches counts met-to-breached transitions of the SLO flag.
	Breaches int64
	// Breached reports whether the SLO is currently breached.
	Breached bool
	// Policy is the binding's overload policy ("shed", "block",
	// "degrade").
	Policy string
}

// Registry is the shared metrics root of one process: component
// families keyed by name plus queue and admission-gate gauges polled
// at scrape time. Everything reachable from it is safe for concurrent
// use.
type Registry struct {
	mu         sync.RWMutex
	components map[string]*ComponentMetrics
	queues     map[string]func() QueueStats
	gates      map[string]func() GateStats
	links      map[string]func() LinkStats

	rec atomic.Pointer[Recorder]
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		components: make(map[string]*ComponentMetrics),
		queues:     make(map[string]func() QueueStats),
		gates:      make(map[string]func() GateStats),
		links:      make(map[string]func() LinkStats),
	}
}

// SetRecorder wires a flight recorder into the registry; everything
// holding a ComponentMetrics can then record events through it.
func (r *Registry) SetRecorder(rec *Recorder) { r.rec.Store(rec) }

// Recorder returns the wired flight recorder, or nil.
func (r *Registry) Recorder() *Recorder { return r.rec.Load() }

// Component returns the named component's metric family, creating it
// (healthy) on first use.
func (r *Registry) Component(name string) *ComponentMetrics {
	r.mu.RLock()
	c := r.components[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.components[name]; c == nil {
		c = &ComponentMetrics{name: name, reg: r, series: make(map[opKey]*OpSeries)}
		c.healthy.Set(1)
		r.components[name] = c
	}
	return c
}

// Components returns the registered component families sorted by
// name.
func (r *Registry) Components() []*ComponentMetrics {
	r.mu.RLock()
	out := make([]*ComponentMetrics, 0, len(r.components))
	for _, c := range r.components {
		out = append(out, c)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// RegisterQueue registers a buffer under name; stats is polled at
// scrape time, so the buffer's hot path pays nothing for being
// observable.
func (r *Registry) RegisterQueue(name string, stats func() QueueStats) {
	if stats == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queues[name] = stats
}

// Queue returns the stats poller of a registered queue.
func (r *Registry) Queue(name string) (func() QueueStats, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.queues[name]
	return fn, ok
}

// QueueNames returns the registered queue names, sorted.
func (r *Registry) QueueNames() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.queues))
	for n := range r.queues {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// RegisterGate registers a binding's admission gate under name; stats
// is polled at scrape time, so admission's hot path pays nothing for
// being observable.
func (r *Registry) RegisterGate(name string, stats func() GateStats) {
	if stats == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gates[name] = stats
}

// Gate returns the stats poller of a registered admission gate.
func (r *Registry) Gate(name string) (func() GateStats, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.gates[name]
	return fn, ok
}

// GateNames returns the registered gate names, sorted.
func (r *Registry) GateNames() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.gates))
	for n := range r.gates {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// RegisterLink registers a cluster link endpoint under name; stats is
// polled at scrape time, so the link's frame path pays nothing for
// being observable.
func (r *Registry) RegisterLink(name string, stats func() LinkStats) {
	if stats == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.links[name] = stats
}

// Link returns the stats poller of a registered link endpoint.
func (r *Registry) Link(name string) (func() LinkStats, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.links[name]
	return fn, ok
}

// LinkNames returns the registered link endpoint names, sorted.
func (r *Registry) LinkNames() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.links))
	for n := range r.links {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Healthy reports whether every registered component is healthy — the
// /healthz aggregate.
func (r *Registry) Healthy() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.components {
		if !c.Healthy() {
			return false
		}
	}
	return true
}
