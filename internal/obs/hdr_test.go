package obs

import (
	"testing"
	"time"
)

// TestCountsIndexGeometry pins the log-linear slot math: every value
// lands in a slot whose range contains it, slots are monotone, and
// the extremes map inside the array.
func TestCountsIndexGeometry(t *testing.T) {
	if got := countsIndex(0); got != 0 {
		t.Errorf("countsIndex(0) = %d, want 0", got)
	}
	if got := countsIndex(maxTrackable); got != countsLen-1 {
		t.Errorf("countsIndex(max) = %d, want %d", got, countsLen-1)
	}
	if got := countsIndex(maxTrackable + 12345); got != countsLen-1 {
		t.Errorf("over-max not clamped: slot %d", got)
	}
	// Exhaustive low range, then exponential samples: the slot's
	// value range must contain the value, with ~3.1% width.
	check := func(v int64) {
		t.Helper()
		i := countsIndex(v)
		if i < 0 || i >= countsLen {
			t.Fatalf("countsIndex(%d) = %d out of range", v, i)
		}
		ub := BucketValue(i)
		if v > ub {
			t.Errorf("value %d above its slot upper bound %d (slot %d)", v, ub, i)
		}
		if i > 0 {
			if lb := BucketValue(i - 1); v <= lb {
				t.Errorf("value %d at or below previous slot bound %d (slot %d)", v, lb, i)
			}
		}
	}
	for v := int64(0); v < 4096; v++ {
		check(v)
	}
	for v := int64(1); v > 0 && v <= maxTrackable/3; v *= 3 {
		check(v)
		check(v + v/7)
	}
	check(maxTrackable)

	// Monotone slot upper bounds.
	prev := int64(-1)
	for i := 0; i < countsLen; i++ {
		ub := BucketValue(i)
		if ub <= prev {
			t.Fatalf("BucketValue not monotone at slot %d: %d <= %d", i, ub, prev)
		}
		prev = ub
	}
}

// TestHistogramHighResolutionQuantiles proves the point of the HDR
// upgrade: p99 and p99.9 of a bimodal distribution are separable and
// within ~3.1% of the true rank values — the old 19-bucket histogram
// would have collapsed both onto one bucket bound.
func TestHistogramHighResolutionQuantiles(t *testing.T) {
	var h Histogram
	// 9800 fast ops at 100µs, 185 at 3ms, 15 at 9ms: p99 lands in
	// the 3ms mode, p99.9 in the 9ms tail.
	for i := 0; i < 9800; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 185; i++ {
		h.Observe(3 * time.Millisecond)
	}
	for i := 0; i < 15; i++ {
		h.Observe(9 * time.Millisecond)
	}

	within := func(got, want time.Duration) bool {
		return got >= want && got <= want+want*32/1000
	}
	if p99 := h.Quantile(0.99); !within(p99, 3*time.Millisecond) {
		t.Errorf("p99 = %v, want ~3ms", p99)
	}
	if p999 := h.Quantile(0.999); !within(p999, 9*time.Millisecond) {
		t.Errorf("p99.9 = %v, want ~9ms", p999)
	}
	if p50 := h.Quantile(0.50); !within(p50, 100*time.Microsecond) {
		t.Errorf("p50 = %v, want ~100µs", p50)
	}
}

func TestHistogramSnapshotQuantileMatches(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	snap := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if hq, sq := h.Quantile(q), snap.Quantile(q); hq != sq {
			t.Errorf("q=%v: histogram %v != snapshot %v", q, hq, sq)
		}
	}
}

func TestDigestRoundTrip(t *testing.T) {
	var h Histogram
	for i := 0; i < 500; i++ {
		h.Observe(50 * time.Microsecond)
	}
	for i := 0; i < 5; i++ {
		h.Observe(20 * time.Millisecond)
	}
	snap := h.Snapshot()

	buf := AppendDigest(nil, &snap, DigestFlagBreached)
	if len(buf) > 256 {
		t.Errorf("digest is %d bytes; want compact (<= 256) for heartbeat piggybacking", len(buf))
	}
	var back HistogramSnapshot
	flags, err := DecodeDigest(buf, &back)
	if err != nil {
		t.Fatal(err)
	}
	if flags&DigestFlagBreached == 0 {
		t.Error("breached flag lost in transit")
	}
	if back != snap {
		t.Error("decoded snapshot differs from original")
	}
	if p99a, p99b := snap.Quantile(0.99), back.Quantile(0.99); p99a != p99b {
		t.Errorf("p99 changed in transit: %v != %v", p99a, p99b)
	}
}

func TestDigestDecodeRejectsGarbage(t *testing.T) {
	var s HistogramSnapshot
	if _, err := DecodeDigest(nil, &s); err == nil {
		t.Error("nil digest accepted")
	}
	if _, err := DecodeDigest([]byte{99, 0, 1}, &s); err == nil {
		t.Error("unknown version accepted")
	}
	var h Histogram
	h.Observe(time.Millisecond)
	snap := h.Snapshot()
	buf := AppendDigest(nil, &snap, 0)
	if _, err := DecodeDigest(buf[:len(buf)-1], &s); err == nil {
		t.Error("truncated digest accepted")
	}
}

// TestDigestEncodeSteadyStateAllocs proves the periodic heartbeat
// path reuses its buffer without growing it.
func TestDigestEncodeSteadyStateAllocs(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	var snap HistogramSnapshot
	h.SnapshotInto(&snap)
	buf := AppendDigest(nil, &snap, 0)
	allocs := testing.AllocsPerRun(100, func() {
		h.SnapshotInto(&snap)
		buf = AppendDigest(buf[:0], &snap, 0)
	})
	if allocs != 0 {
		t.Errorf("steady-state digest encode allocates %.1f objects per op, want 0", allocs)
	}
}

// TestSnapshotMergeAcrossWindows merges digests from two nodes with
// very different recording windows (one long-lived, one freshly
// restarted) and checks the merged distribution is coherent.
func TestSnapshotMergeAcrossWindows(t *testing.T) {
	var longWindow, shortWindow Histogram
	for i := 0; i < 10000; i++ {
		longWindow.Observe(200 * time.Microsecond)
	}
	for i := 0; i < 50; i++ {
		shortWindow.Observe(8 * time.Millisecond)
	}
	a, b := longWindow.Snapshot(), shortWindow.Snapshot()

	merged := a
	merged.Merge(&b)
	if merged.Count != a.Count+b.Count {
		t.Errorf("merged count = %d, want %d", merged.Count, a.Count+b.Count)
	}
	if merged.Sum != a.Sum+b.Sum {
		t.Errorf("merged sum = %d, want %d", merged.Sum, a.Sum+b.Sum)
	}
	if merged.Max != b.Max {
		t.Errorf("merged max = %d, want the slow node's %d", merged.Max, b.Max)
	}
	// The short window's slow tail must surface in the merged p99.9
	// even though the long window dominates by count.
	if p999 := merged.Quantile(0.999); p999 < 8*time.Millisecond {
		t.Errorf("merged p99.9 = %v, want >= 8ms (tail from the short window)", p999)
	}
	if p50 := merged.Quantile(0.50); p50 > 210*time.Microsecond {
		t.Errorf("merged p50 = %v, want ~200µs (bulk from the long window)", p50)
	}

	// Merge must be order-independent.
	other := b
	other.Merge(&a)
	if other != merged {
		t.Error("merge is order-dependent")
	}
}
