package obs

import (
	"encoding/json"
	"net"
	"net/http"
)

// HandlerOptions wires the live introspection endpoint. Registry is
// required; Tracer and Arch are optional (their endpoints 404 when
// absent).
type HandlerOptions struct {
	// Registry backs /metrics, /healthz and /top.
	Registry *Registry
	// Tracer backs /trace (Chrome trace_event JSON of the retained
	// spans).
	Tracer *Tracer
	// Arch, when set, backs /arch: it is called per request and its
	// result rendered as JSON — typically a reconfiguration manager's
	// introspection snapshot.
	Arch func() any
	// Health, when set, contributes an extra process-level health
	// verdict ANDed with the registry's per-component health.
	Health func() (ok bool, detail string)
	// Recorder, when set, backs /debug/flightrecorder: the retained
	// event ring as JSON (default), text (?format=text) or Chrome
	// trace_event JSON (?format=trace). Requesting a dump also fires
	// the recorder's trigger path so dump sinks observe it.
	Recorder *Recorder
}

// componentHealth is one component's row in the /healthz body.
type componentHealth struct {
	Healthy  bool  `json:"healthy"`
	Failures int64 `json:"failures"`
	Rejected int64 `json:"rejected"`
	Restarts int64 `json:"restarts"`
	Misses   int64 `json:"misses"`
}

// healthReport is the /healthz body.
type healthReport struct {
	Healthy    bool                       `json:"healthy"`
	Detail     string                     `json:"detail,omitempty"`
	Components map[string]componentHealth `json:"components"`
}

// NewHandler builds the observability HTTP handler:
//
//	/metrics  Prometheus text exposition
//	/healthz  200/503 + JSON per-component health
//	/arch     architecture introspection snapshot (JSON)
//	/top      one-shot textual snapshot (the `soleil top` view)
//	/trace    Chrome trace_event JSON of the retained spans
func NewHandler(opts HandlerOptions) http.Handler {
	reg := opts.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		report := healthReport{Healthy: true, Components: make(map[string]componentHealth)}
		for _, c := range reg.Components() {
			h := componentHealth{
				Healthy:  c.Healthy(),
				Failures: c.Failures.Load(),
				Rejected: c.Rejected.Load(),
				Restarts: c.Restarts.Load(),
				Misses:   c.Misses.Load(),
			}
			if !h.Healthy {
				report.Healthy = false
			}
			report.Components[c.Name()] = h
		}
		if opts.Health != nil {
			if ok, detail := opts.Health(); !ok {
				report.Healthy = false
				report.Detail = detail
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if !report.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(report)
	})

	mux.HandleFunc("/arch", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Arch == nil {
			http.Error(w, "no architecture introspection wired", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(opts.Arch())
	})

	mux.HandleFunc("/top", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = reg.WriteTop(w)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		if opts.Tracer == nil {
			http.Error(w, "no tracer wired", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = opts.Tracer.WriteChromeTrace(w)
	})

	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, req *http.Request) {
		if opts.Recorder == nil {
			http.Error(w, "no flight recorder wired", http.StatusNotFound)
			return
		}
		opts.Recorder.Trigger("http")
		events := opts.Recorder.Events()
		switch req.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = WriteEventsText(w, events)
		case "trace":
			w.Header().Set("Content-Type", "application/json")
			_ = WriteEventsChromeTrace(w, events)
		default:
			w.Header().Set("Content-Type", "application/json")
			_ = WriteEventsJSON(w, events)
		}
	})

	return mux
}

// Serve listens on addr (host:port; ":0" picks a free port) and
// serves the observability endpoints in the background. It returns
// the bound address and a shutdown function.
func Serve(addr string, opts HandlerOptions) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewHandler(opts)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
