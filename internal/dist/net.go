package dist

import (
	"fmt"
	"math/rand/v2"
	"net"
	"time"
)

// Network-facing lifecycle helpers. Before these existed every caller
// hand-rolled net.Dial/net.Listen plus NewConn framing; Dial and
// Listen bundle the defaults a long-lived cluster link wants — a dial
// timeout (a dead peer must fail fast, not hang a reconnect loop),
// retry with exponential backoff (nodes come up in arbitrary order),
// and TCP keepalive (a silently vanished peer must eventually error
// out of Receive instead of wedging an importer forever).

// Defaults for DialConfig's zero values.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultKeepAlive   = 15 * time.Second
	DefaultRetryBase   = 50 * time.Millisecond
	DefaultRetryMax    = 2 * time.Second
)

// DialConfig tunes Dial. The zero value means one attempt with the
// package defaults.
type DialConfig struct {
	// Timeout bounds each connection attempt (default 5s).
	Timeout time.Duration
	// KeepAlive is the TCP keepalive period of the connection
	// (default 15s); negative disables it.
	KeepAlive time.Duration
	// Attempts is how many times to try before giving up (default 1).
	Attempts int
	// Base and Max bound the exponential backoff between attempts
	// (defaults 50ms and 2s).
	Base, Max time.Duration
	// Sleep replaces time.Sleep between attempts (test hook).
	Sleep func(time.Duration)
}

func (c *DialConfig) defaults() {
	if c.Timeout <= 0 {
		c.Timeout = DefaultDialTimeout
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = DefaultKeepAlive
	}
	if c.Attempts <= 0 {
		c.Attempts = 1
	}
	if c.Base <= 0 {
		c.Base = DefaultRetryBase
	}
	if c.Max <= 0 {
		c.Max = DefaultRetryMax
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
}

// Jitter spreads a backoff delay over [d/2, d] (equal jitter), so a
// cluster of nodes reconnecting to the same restarted peer does not
// retry in lockstep and stampede it.
func Jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(d-half+1)
}

// Dial connects to a listening transport at addr (TCP), framing the
// connection with the package's length-prefixed protocol. It retries
// with jittered exponential backoff up to cfg.Attempts times and
// returns the last error wrapped with the attempt count.
func Dial(addr string, cfg DialConfig) (Transport, error) {
	cfg.defaults()
	d := net.Dialer{Timeout: cfg.Timeout, KeepAlive: cfg.KeepAlive}
	delay := cfg.Base
	var lastErr error
	for attempt := 0; attempt < cfg.Attempts; attempt++ {
		if attempt > 0 {
			cfg.Sleep(Jitter(delay))
			delay *= 2
			if delay > cfg.Max {
				delay = cfg.Max
			}
		}
		conn, err := d.Dial("tcp", addr)
		if err == nil {
			return NewConn(conn), nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dist: dial %s: %w (after %d attempts)", addr, lastErr, cfg.Attempts)
}

// Listener accepts framed transports from inbound connections.
type Listener struct {
	l         net.Listener
	keepAlive time.Duration
}

// Listen binds a TCP listener at addr (use port 0 for an ephemeral
// port and read it back from Addr). Accepted connections get the
// default TCP keepalive period.
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	return &Listener{l: l, keepAlive: DefaultKeepAlive}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept blocks for the next inbound connection and returns it
// framed. After Close it returns ErrClosed.
func (l *Listener) Accept() (Transport, error) {
	conn, err := l.l.Accept()
	if err != nil {
		return nil, mapClosed(err)
	}
	if tc, ok := conn.(*net.TCPConn); ok && l.keepAlive > 0 {
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(l.keepAlive)
	}
	return NewConn(conn), nil
}

// Close stops the listener; blocked Accepts return ErrClosed.
func (l *Listener) Close() error { return l.l.Close() }
