package dist

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDialListenRoundTrip(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	accepted := make(chan Transport, 1)
	go func() {
		tr, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		accepted <- tr
	}()

	client, err := Dial(ln.Addr(), DialConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	if err := client.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	got, err := server.Receive()
	if err != nil || string(got) != "ping" {
		t.Fatalf("Receive = %q, %v", got, err)
	}
}

func TestDialRetriesWithBackoff(t *testing.T) {
	// Reserve an address, keep it closed for the first attempts, then
	// start listening: Dial must retry through the early refusals.
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	ln.Close()

	var sleeps []time.Duration
	var mu sync.Mutex
	var reopened atomic.Pointer[Listener]
	sleep := func(d time.Duration) {
		mu.Lock()
		sleeps = append(sleeps, d)
		n := len(sleeps)
		mu.Unlock()
		if n == 2 {
			l2, err := Listen(addr)
			if err != nil {
				t.Errorf("reopen %s: %v", addr, err)
				return
			}
			reopened.Store(l2)
			go func() {
				if tr, err := l2.Accept(); err == nil {
					tr.Close()
				}
			}()
		}
	}

	tr, err := Dial(addr, DialConfig{Attempts: 6, Base: time.Millisecond, Max: 4 * time.Millisecond, Sleep: sleep})
	if err != nil {
		t.Fatalf("dial after reopen: %v", err)
	}
	tr.Close()
	if l2 := reopened.Load(); l2 != nil {
		l2.Close()
	}

	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) < 2 {
		t.Fatalf("expected at least 2 backoff sleeps, got %v", sleeps)
	}
	// Sleeps are jittered over [delay/2, delay] with delay doubling
	// from Base: 1ms then 2ms here.
	if sleeps[0] < 500*time.Microsecond || sleeps[0] > time.Millisecond {
		t.Fatalf("first backoff %v outside jitter window [0.5ms, 1ms]: %v", sleeps[0], sleeps)
	}
	if sleeps[1] < time.Millisecond || sleeps[1] > 2*time.Millisecond {
		t.Fatalf("second backoff %v outside jitter window [1ms, 2ms]: %v", sleeps[1], sleeps)
	}
}

func TestJitterWindow(t *testing.T) {
	for i := 0; i < 100; i++ {
		d := Jitter(100 * time.Millisecond)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("Jitter(100ms) = %v, outside [50ms, 100ms]", d)
		}
	}
	if Jitter(0) != 0 || Jitter(1) != 1 {
		t.Error("degenerate delays should pass through")
	}
}

func TestDialExhaustsAttempts(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr()
	ln.Close()

	var slept int
	_, err = Dial(addr, DialConfig{Attempts: 3, Base: time.Microsecond, Sleep: func(time.Duration) { slept++ }})
	if err == nil {
		t.Fatal("dial to a closed port must fail")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error should carry the attempt count: %v", err)
	}
	if slept != 2 {
		t.Fatalf("3 attempts imply 2 sleeps, got %d", slept)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	ln.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept after Close = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
}

// poisonedTransport simulates a stream whose framing has been lost:
// every Receive fails with ErrFrameTooLarge until the transport is
// closed. A correct importer must close it and stop — not spin.
type poisonedTransport struct {
	mu       sync.Mutex
	receives int
	closed   bool
}

func (p *poisonedTransport) Send([]byte) error { return nil }

func (p *poisonedTransport) Receive() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.receives++
	if p.closed {
		return nil, ErrClosed
	}
	return nil, fmt.Errorf("%w: length prefix claims %d bytes (limit %d)", ErrFrameTooLarge, 1<<30, MaxFrame)
}

func (p *poisonedTransport) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	return nil
}

func (p *poisonedTransport) stats() (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.receives, p.closed
}

// TestImporterClosesPoisonedStream is the regression test for the
// unframed-stream hazard: after ErrFrameTooLarge on Receive the
// importer must close the transport and terminate Serve — reporting
// the error through SetErrorHandler so a reconnecting owner can
// self-heal with a fresh stream — rather than spinning on garbage
// (the absorbing handler used to be consulted only for resumable
// errors, and a Receive failure left the transport open).
func TestImporterClosesPoisonedStream(t *testing.T) {
	consumer := consumerSystem(t, &sinkContent{})
	pt := &poisonedTransport{}
	imp, err := Import(consumer, "Sink", pt)
	if err != nil {
		t.Fatal(err)
	}

	var handled atomic.Int64
	var handledErr atomic.Value
	// An absorbing handler: returns true for everything, the way the
	// soak scenario's resilient consumer is wired. Even so, a poisoned
	// stream must terminate the pump.
	imp.SetErrorHandler(func(err error) bool {
		handled.Add(1)
		handledErr.Store(err)
		return true
	})

	done := make(chan struct{})
	go func() {
		imp.Serve()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve is spinning on the poisoned stream")
	}

	if !errors.Is(imp.Err(), ErrFrameTooLarge) {
		t.Fatalf("Err() = %v, want ErrFrameTooLarge", imp.Err())
	}
	if handled.Load() != 1 {
		t.Fatalf("error handler ran %d times, want exactly 1 (no spinning)", handled.Load())
	}
	if err, _ := handledErr.Load().(error); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("handler saw %v, want ErrFrameTooLarge", err)
	}
	receives, closed := pt.stats()
	if !closed {
		t.Fatal("importer left the poisoned transport open")
	}
	if receives != 1 {
		t.Fatalf("importer read the poisoned stream %d times, want 1", receives)
	}
}

// TestImporterPoisonedStreamOverTCP exercises the same hazard on the
// real framed transport: a peer writes a corrupt (oversized) length
// prefix straight onto the wire, and the importer must close the
// connection — observed by the peer as EOF — and terminate.
func TestImporterPoisonedStreamOverTCP(t *testing.T) {
	consumer := consumerSystem(t, &sinkContent{})
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	accepted := make(chan Transport, 1)
	go func() {
		tr, err := ln.Accept()
		if err == nil {
			accepted <- tr
		}
	}()
	attacker, err := net.Dial("tcp", ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer attacker.Close()
	server := <-accepted

	imp, err := Import(consumer, "Sink", server)
	if err != nil {
		t.Fatal(err)
	}
	imp.SetErrorHandler(func(error) bool { return true })
	done := make(chan struct{})
	go func() {
		imp.Serve()
		close(done)
	}()

	// A length prefix claiming 4 GiB: over MaxFrame, unframeable.
	if _, err := attacker.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not terminate on the corrupt prefix")
	}
	if !errors.Is(imp.Err(), ErrFrameTooLarge) {
		t.Fatalf("Err() = %v, want ErrFrameTooLarge", imp.Err())
	}
	// The importer closed the poisoned connection: the attacker's
	// next read hits EOF once the close propagates.
	attacker.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := attacker.Read(buf); err == nil {
		t.Fatal("peer connection still open after poisoned stream")
	}
}
