package dist

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"

	"soleil/internal/assembly"
	"soleil/internal/membrane"
	"soleil/internal/obs"
	"soleil/internal/rtsj/thread"
)

// envelope is the wire representation of one asynchronous invocation.
// Trace carries the sender's span context across the wire, so a
// distributed call chain renders as one causal trace even though its
// halves run in different systems (typically different processes).
type envelope struct {
	Interface string
	Op        string
	Arg       any
	Trace     obs.SpanContext
}

// RegisterPayload registers a message payload type for the wire
// encoding (gob). Every concrete type sent over a distributed binding
// must be registered on both sides.
func RegisterPayload(v any) { gob.Register(v) }

func encode(e envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("dist: encode %s.%s: %w", e.Interface, e.Op, err)
	}
	return buf.Bytes(), nil
}

// EncodeMessage serializes one asynchronous invocation into the wire
// envelope an Importer dispatches. It is the building block for
// callers that queue messages off the sending thread (cluster links
// encode at Send time, transmit from a writer goroutine) instead of
// binding a RemotePort directly to a transport.
func EncodeMessage(itf, op string, arg any, span obs.SpanContext) ([]byte, error) {
	return encode(envelope{Interface: itf, Op: op, Arg: arg, Trace: span})
}

func decode(payload []byte) (envelope, error) {
	var e envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		return envelope{}, fmt.Errorf("dist: decode: %w", err)
	}
	return e, nil
}

// RemotePort is the client half of a distributed binding: a port
// whose Send serializes the message onto a transport. Distribution is
// asynchronous-only (value messages), matching the deep-copy
// discipline; Call is refused.
type RemotePort struct {
	transport Transport
	itf       string
}

var _ membrane.Port = (*RemotePort)(nil)

// NewRemotePort creates the port for the remote server interface itf.
func NewRemotePort(t Transport, itf string) (*RemotePort, error) {
	if t == nil {
		return nil, fmt.Errorf("dist: remote port needs a transport")
	}
	return &RemotePort{transport: t, itf: itf}, nil
}

// Send implements membrane.Port. The sender's current span rides in
// the envelope so the remote dispatch joins the sender's trace.
func (p *RemotePort) Send(env *thread.Env, op string, arg any) error {
	payload, err := encode(envelope{Interface: p.itf, Op: op, Arg: arg, Trace: env.Span()})
	if err != nil {
		return err
	}
	return p.transport.Send(payload)
}

// Call implements membrane.Port.
func (p *RemotePort) Call(env *thread.Env, op string, arg any) (any, error) {
	return nil, fmt.Errorf("dist: distributed bindings are asynchronous; use Send")
}

// Export routes the client interface of a component in sys onto a
// transport: subsequent Sends travel to whatever imports the other
// end.
func Export(sys *assembly.System, client, clientItf, serverItf string, t Transport) error {
	port, err := NewRemotePort(t, serverItf)
	if err != nil {
		return err
	}
	return sys.BindPort(client, clientItf, port)
}

// Importer is the server half: it receives envelopes from a transport
// and dispatches them into a component of the local system under a
// local execution environment.
type Importer struct {
	transport Transport
	node      assembly.Node
	env       *thread.Env
	closeEnv  func()

	mu        sync.Mutex
	delivered int64
	dropped   int64
	onError   func(error) bool

	done chan struct{}
	err  error
}

// Import attaches the transport to the named component of sys.
func Import(sys *assembly.System, server string, t Transport) (*Importer, error) {
	if t == nil {
		return nil, fmt.Errorf("dist: importer needs a transport")
	}
	node, ok := sys.Node(server)
	if !ok {
		return nil, fmt.Errorf("dist: unknown server component %q", server)
	}
	env, closeEnv, err := sys.NewEnv(false)
	if err != nil {
		return nil, err
	}
	return &Importer{
		transport: t,
		node:      node,
		env:       env,
		closeEnv:  closeEnv,
		done:      make(chan struct{}),
	}, nil
}

// Delivered returns the number of messages dispatched so far.
func (i *Importer) Delivered() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.delivered
}

// Dropped returns the number of messages Serve discarded because a
// delivery error was absorbed by the error handler.
func (i *Importer) Dropped() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.dropped
}

// SetErrorHandler installs the self-healing hook of the binding:
// when Serve hits a delivery or decode error it consults h, and
// continues pumping if h returns true (the message is counted as
// dropped) instead of terminating. Without a handler — or when h
// returns false — Serve stops on the error, the original behaviour.
// Terminal errors (a poisoned stream, e.g. ErrFrameTooLarge on
// Receive) are also reported through h so a reconnecting owner can
// observe them, but pumping cannot resume: the transport has been
// closed and Serve returns regardless of h's verdict. Install the
// handler before Serve starts.
func (i *Importer) SetErrorHandler(h func(error) bool) { i.onError = h }

// PumpOne receives and dispatches exactly one message. It reports
// false (with a nil error) when the transport has closed.
func (i *Importer) PumpOne() (bool, error) {
	payload, err := i.transport.Receive()
	if errors.Is(err, ErrClosed) {
		return false, nil
	}
	if err != nil {
		if errors.Is(err, ErrFrameTooLarge) {
			// After a framing failure no further frame boundary can be
			// trusted: the stream is poisoned. Close the transport so
			// both ends unblock and reconnect with a fresh stream
			// instead of pumping garbage.
			_ = i.transport.Close()
		}
		return false, err
	}
	// A decode failure (corrupt frame, unregistered payload type)
	// consumes the message but leaves the transport usable: report it
	// with ok=true so a resilient server can absorb it and pump on.
	e, err := decode(payload)
	if err != nil {
		return true, err
	}
	// Adopt the sender's span for the delivery so the local dispatch
	// parents into the remote caller's trace.
	prev := i.env.SetSpan(e.Trace)
	_, err = i.node.Invoke(i.env, e.Interface, e.Op, e.Arg)
	i.env.SetSpan(prev)
	if err != nil {
		return true, fmt.Errorf("dist: deliver %s.%s: %w", e.Interface, e.Op, err)
	}
	i.mu.Lock()
	i.delivered++
	i.mu.Unlock()
	return true, nil
}

// Serve pumps messages until the transport closes, then releases the
// importer's environment. Run it on its own goroutine; Err reports
// the terminal error after done.
func (i *Importer) Serve() {
	defer close(i.done)
	defer i.closeEnv()
	for {
		ok, err := i.PumpOne()
		if err != nil {
			// The handler sees every error; only resumable ones
			// (ok=true) let it keep the pump alive.
			absorbed := i.onError != nil && i.onError(err)
			if ok && absorbed {
				i.mu.Lock()
				i.dropped++
				i.mu.Unlock()
				continue
			}
			i.mu.Lock()
			i.err = err
			i.mu.Unlock()
			return
		}
		if !ok {
			return
		}
	}
}

// Wait blocks until Serve has returned.
func (i *Importer) Wait() { <-i.done }

// Err returns the terminal error of Serve, if any.
func (i *Importer) Err() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.err
}

// Close releases the importer's environment; use it when driving the
// importer manually with PumpOne instead of Serve.
func (i *Importer) Close() { i.closeEnv() }
