// Package dist implements the paper's declared future-work extension
// (Sect. 7): distribution support. An asynchronous binding can span
// two deployed systems — the client side exports its interface onto a
// transport, the server side imports the transport into a component's
// dataplane. Messages are serialized (gob) so no reference ever
// crosses the system boundary, which makes distribution a natural
// extension of the deep-copy pattern: the same discipline that keeps
// scoped references from escaping also keeps them node-local.
//
// The design follows the DiSCo space-oriented middleware the paper
// relates to (Sect. 6): components keep their local RTSJ disciplines;
// only value messages travel.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"soleil/internal/qos"
)

// ErrClosed is returned by transport operations after Close.
var ErrClosed = errors.New("dist: transport closed")

// ErrFrameTooLarge is returned when a frame exceeds MaxFrame — on
// Send for oversized payloads, on Receive for oversized (or corrupt)
// length prefixes. After a Receive failure the stream is no longer
// framed; the caller must close the transport.
var ErrFrameTooLarge = errors.New("dist: frame exceeds size limit")

// ErrBackpressure is returned by a bounded-wait Send when the peer
// has not drained the pipe within the send deadline: the receiver is
// stalled and the message was not accepted. It is the framework-wide
// qos.ErrBackpressure sentinel, so errors.Is recognizes a stalled
// transport, a shedding admission gate and a full buffer alike.
var ErrBackpressure = qos.ErrBackpressure

// MaxFrame is the largest frame a transport accepts (16 MiB). A
// length prefix above it is treated as corrupt, so a malformed or
// hostile peer cannot make Receive allocate unboundedly.
const MaxFrame = 1 << 24

// DefaultSendWait is how long a pipe Send waits on a full buffer
// before failing with ErrBackpressure.
const DefaultSendWait = 2 * time.Second

// Transport carries opaque serialized messages between two systems.
type Transport interface {
	// Send transmits one message.
	Send(payload []byte) error
	// Receive blocks until a message arrives; it returns ErrClosed
	// when the transport has shut down.
	Receive() ([]byte, error)
	// Close shuts the transport down, unblocking Receive on both
	// sides.
	Close() error
}

// --- in-process pipe ---------------------------------------------------------------

type pipeEnd struct {
	out      chan []byte
	in       chan []byte
	mu       sync.Mutex
	closed   chan struct{}
	once     sync.Once
	peer     *pipeEnd
	sendWait time.Duration
}

// NewPipe creates a connected in-process transport pair, useful for
// tests and single-process multi-system deployments. Sends on a full
// pipe wait at most DefaultSendWait before failing with
// ErrBackpressure.
func NewPipe() (Transport, Transport) {
	return NewBoundedPipe(64, DefaultSendWait)
}

// NewBoundedPipe creates a pipe pair with an explicit per-direction
// buffer capacity and send deadline: a Send finding the buffer full
// waits at most sendWait for the receiver to drain it, then fails
// with ErrBackpressure instead of wedging the sender forever.
func NewBoundedPipe(capacity int, sendWait time.Duration) (Transport, Transport) {
	if capacity <= 0 {
		capacity = 1
	}
	if sendWait <= 0 {
		sendWait = DefaultSendWait
	}
	ab := make(chan []byte, capacity)
	ba := make(chan []byte, capacity)
	a := &pipeEnd{out: ab, in: ba, closed: make(chan struct{}), sendWait: sendWait}
	b := &pipeEnd{out: ba, in: ab, closed: make(chan struct{}), sendWait: sendWait}
	a.peer, b.peer = b, a
	return a, b
}

func (p *pipeEnd) Send(payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	// The closed check takes priority over an available buffer slot.
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peer.closed:
		return ErrClosed
	default:
	}
	// Fast path: buffer slot available without arming a timer.
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peer.closed:
		return ErrClosed
	case p.out <- cp:
		return nil
	default:
	}
	timer := time.NewTimer(p.sendWait)
	defer timer.Stop()
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peer.closed:
		return ErrClosed
	case p.out <- cp:
		return nil
	case <-timer.C:
		return fmt.Errorf("%w (after %v)", ErrBackpressure, p.sendWait)
	}
}

func (p *pipeEnd) Receive() ([]byte, error) {
	select {
	case msg := <-p.in:
		return msg, nil
	case <-p.closed:
		// Drain messages queued before close.
		select {
		case msg := <-p.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	case <-p.peer.closed:
		select {
		case msg := <-p.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (p *pipeEnd) Close() error {
	p.once.Do(func() { close(p.closed) })
	return nil
}

// --- net.Conn framing ----------------------------------------------------------------

type connTransport struct {
	conn net.Conn
	rmu  sync.Mutex
	wmu  sync.Mutex
}

// NewConn wraps a stream connection (e.g. TCP) with length-prefixed
// message framing.
func NewConn(conn net.Conn) Transport {
	return &connTransport{conn: conn}
}

func (t *connTransport) Send(payload []byte) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	var hdr [4]byte
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: sending %d bytes (limit %d)", ErrFrameTooLarge, len(payload), MaxFrame)
	}
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := t.conn.Write(hdr[:]); err != nil {
		return mapClosed(err)
	}
	_, err := t.conn.Write(payload)
	return mapClosed(err)
}

func (t *connTransport) Receive() ([]byte, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(t.conn, hdr[:]); err != nil {
		return nil, mapClosed(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		// An oversized prefix is indistinguishable from a corrupt
		// one; refuse before allocating n bytes on a peer's say-so.
		return nil, fmt.Errorf("%w: length prefix claims %d bytes (limit %d)", ErrFrameTooLarge, n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(t.conn, payload); err != nil {
		return nil, mapClosed(err)
	}
	return payload, nil
}

func (t *connTransport) Close() error { return t.conn.Close() }

func mapClosed(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
		return ErrClosed
	}
	return err
}
