// Package dist implements the paper's declared future-work extension
// (Sect. 7): distribution support. An asynchronous binding can span
// two deployed systems — the client side exports its interface onto a
// transport, the server side imports the transport into a component's
// dataplane. Messages are serialized (gob) so no reference ever
// crosses the system boundary, which makes distribution a natural
// extension of the deep-copy pattern: the same discipline that keeps
// scoped references from escaping also keeps them node-local.
//
// The design follows the DiSCo space-oriented middleware the paper
// relates to (Sect. 6): components keep their local RTSJ disciplines;
// only value messages travel.
package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// ErrClosed is returned by transport operations after Close.
var ErrClosed = errors.New("dist: transport closed")

// Transport carries opaque serialized messages between two systems.
type Transport interface {
	// Send transmits one message.
	Send(payload []byte) error
	// Receive blocks until a message arrives; it returns ErrClosed
	// when the transport has shut down.
	Receive() ([]byte, error)
	// Close shuts the transport down, unblocking Receive on both
	// sides.
	Close() error
}

// --- in-process pipe ---------------------------------------------------------------

type pipeEnd struct {
	out    chan []byte
	in     chan []byte
	mu     sync.Mutex
	closed chan struct{}
	once   sync.Once
	peer   *pipeEnd
}

// NewPipe creates a connected in-process transport pair, useful for
// tests and single-process multi-system deployments.
func NewPipe() (Transport, Transport) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	a := &pipeEnd{out: ab, in: ba, closed: make(chan struct{})}
	b := &pipeEnd{out: ba, in: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

func (p *pipeEnd) Send(payload []byte) error {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	// The closed check takes priority over an available buffer slot.
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peer.closed:
		return ErrClosed
	case p.out <- cp:
		return nil
	}
}

func (p *pipeEnd) Receive() ([]byte, error) {
	select {
	case msg := <-p.in:
		return msg, nil
	case <-p.closed:
		// Drain messages queued before close.
		select {
		case msg := <-p.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	case <-p.peer.closed:
		select {
		case msg := <-p.in:
			return msg, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (p *pipeEnd) Close() error {
	p.once.Do(func() { close(p.closed) })
	return nil
}

// --- net.Conn framing ----------------------------------------------------------------

type connTransport struct {
	conn net.Conn
	rmu  sync.Mutex
	wmu  sync.Mutex
}

// NewConn wraps a stream connection (e.g. TCP) with length-prefixed
// message framing.
func NewConn(conn net.Conn) Transport {
	return &connTransport{conn: conn}
}

func (t *connTransport) Send(payload []byte) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	var hdr [4]byte
	if len(payload) > 1<<24 {
		return fmt.Errorf("dist: message of %d bytes exceeds the frame limit", len(payload))
	}
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := t.conn.Write(hdr[:]); err != nil {
		return mapClosed(err)
	}
	_, err := t.conn.Write(payload)
	return mapClosed(err)
}

func (t *connTransport) Receive() ([]byte, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(t.conn, hdr[:]); err != nil {
		return nil, mapClosed(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(t.conn, payload); err != nil {
		return nil, mapClosed(err)
	}
	return payload, nil
}

func (t *connTransport) Close() error { return t.conn.Close() }

func mapClosed(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
		return ErrClosed
	}
	return err
}
