package dist

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/rtsj/thread"
)

// tick is the distributed payload.
type tick struct {
	Seq int
}

// sinkContent counts received ticks.
type sinkContent struct {
	got []int
}

func (s *sinkContent) Init(*membrane.Services) error { return nil }

func (s *sinkContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	t, ok := arg.(tick)
	if !ok {
		return nil, errors.New("sink received a foreign payload")
	}
	s.got = append(s.got, t.Seq)
	return nil, nil
}

// sourceContent emits ticks through its single port.
type sourceContent struct {
	svc *membrane.Services
	seq int
}

func (s *sourceContent) Init(svc *membrane.Services) error { s.svc = svc; return nil }

func (s *sourceContent) Invoke(*thread.Env, string, string, any) (any, error) {
	return nil, errors.New("source serves nothing")
}

func (s *sourceContent) Activate(env *thread.Env) error {
	s.seq++
	port, err := s.svc.Port("out")
	if err != nil {
		return err
	}
	return port.Send(env, "tick", tick{Seq: s.seq})
}

// producerSystem deploys a single active component whose client
// interface is unbound locally (it will be exported).
func producerSystem(t *testing.T, content membrane.Content) *assembly.System {
	t.Helper()
	a := model.NewArchitecture("producer")
	src, err := a.NewActive("Source", model.Activation{Kind: model.SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "ITick"}); err != nil {
		t.Fatal(err)
	}
	if err := src.SetContent("SourceImpl"); err != nil {
		t.Fatal(err)
	}
	td, _ := a.NewThreadDomain("rt", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	if err := a.AddChild(imm, td); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, src); err != nil {
		t.Fatal(err)
	}
	reg := assembly.NewRegistry()
	if err := reg.Register("SourceImpl", func() membrane.Content { return content }); err != nil {
		t.Fatal(err)
	}
	sys, err := assembly.Deploy(a, assembly.Config{Mode: assembly.Soleil, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// consumerSystem deploys a single passive sink component.
func consumerSystem(t *testing.T, content membrane.Content) *assembly.System {
	t.Helper()
	a := model.NewArchitecture("consumer")
	snk, err := a.NewPassive("Sink")
	if err != nil {
		t.Fatal(err)
	}
	if err := snk.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "ITick"}); err != nil {
		t.Fatal(err)
	}
	if err := snk.SetContent("SinkImpl"); err != nil {
		t.Fatal(err)
	}
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	if err := a.AddChild(imm, snk); err != nil {
		t.Fatal(err)
	}
	reg := assembly.NewRegistry()
	if err := reg.Register("SinkImpl", func() membrane.Content { return content }); err != nil {
		t.Fatal(err)
	}
	sys, err := assembly.Deploy(a, assembly.Config{Mode: assembly.Soleil, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDistributedBindingOverPipe(t *testing.T) {
	RegisterPayload(tick{})
	src := &sourceContent{}
	snk := &sinkContent{}
	producer := producerSystem(t, src)
	consumer := consumerSystem(t, snk)

	a, b := NewPipe()
	if err := Export(producer, "Source", "out", "in", a); err != nil {
		t.Fatal(err)
	}
	imp, err := Import(consumer, "Sink", b)
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	if err := producer.Start(); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Start(); err != nil {
		t.Fatal(err)
	}

	env, closeEnv, err := producer.NewEnv(false)
	if err != nil {
		t.Fatal(err)
	}
	defer closeEnv()
	node, _ := producer.Node("Source")
	for i := 0; i < 5; i++ {
		if err := node.Activate(env); err != nil {
			t.Fatal(err)
		}
		ok, err := imp.PumpOne()
		if err != nil || !ok {
			t.Fatalf("pump %d: %v, %v", i, ok, err)
		}
	}
	if len(snk.got) != 5 || snk.got[4] != 5 {
		t.Fatalf("sink got %v", snk.got)
	}
	if imp.Delivered() != 5 {
		t.Fatalf("delivered = %d", imp.Delivered())
	}
	// Closed transport ends pumping cleanly.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	ok, err := imp.PumpOne()
	if err != nil || ok {
		t.Fatalf("pump after close: %v, %v", ok, err)
	}
}

func TestDistributedBindingOverTCP(t *testing.T) {
	RegisterPayload(tick{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	serverConn := <-accepted

	src := &sourceContent{}
	snk := &sinkContent{}
	producer := producerSystem(t, src)
	consumer := consumerSystem(t, snk)
	if err := Export(producer, "Source", "out", "in", NewConn(dialed)); err != nil {
		t.Fatal(err)
	}
	imp, err := Import(consumer, "Sink", NewConn(serverConn))
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.Start(); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Start(); err != nil {
		t.Fatal(err)
	}
	go imp.Serve()

	env, closeEnv, err := producer.NewEnv(false)
	if err != nil {
		t.Fatal(err)
	}
	defer closeEnv()
	node, _ := producer.Node("Source")
	for i := 0; i < 20; i++ {
		if err := node.Activate(env); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for imp.Delivered() < 20 {
		select {
		case <-deadline:
			t.Fatalf("timeout: delivered %d/20", imp.Delivered())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	_ = dialed.Close()
	imp.Wait()
	if err := imp.Err(); err != nil {
		t.Fatalf("serve: %v", err)
	}
	if len(snk.got) != 20 {
		t.Fatalf("sink got %d", len(snk.got))
	}
}

func TestRemotePortRefusesCall(t *testing.T) {
	a, _ := NewPipe()
	p, err := NewRemotePort(a, "in")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call(nil, "op", nil); err == nil {
		t.Fatal("synchronous distributed call accepted")
	}
	if _, err := NewRemotePort(nil, "in"); err == nil {
		t.Fatal("nil transport accepted")
	}
}

func TestImportValidation(t *testing.T) {
	snk := &sinkContent{}
	consumer := consumerSystem(t, snk)
	if _, err := Import(consumer, "Sink", nil); err == nil {
		t.Fatal("nil transport accepted")
	}
	_, b := NewPipe()
	if _, err := Import(consumer, "Ghost", b); err == nil {
		t.Fatal("unknown server accepted")
	}
}

func TestExportRefusedAfterStartInStaticMode(t *testing.T) {
	// An ULTRA-MERGE system refuses port changes after start.
	a := model.NewArchitecture("static")
	src, _ := a.NewActive("Source", model.Activation{Kind: model.SporadicActivation})
	_ = src.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "ITick"})
	_ = src.SetContent("SourceImpl")
	td, _ := a.NewThreadDomain("rt", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	_ = a.AddChild(imm, td)
	_ = a.AddChild(td, src)
	reg := assembly.NewRegistry()
	_ = reg.Register("SourceImpl", func() membrane.Content { return &sourceContent{} })
	sys, err := assembly.Deploy(a, assembly.Config{Mode: assembly.UltraMerge, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	pipeA, _ := NewPipe()
	// Before start: allowed (deployment-time wiring).
	if err := Export(sys, "Source", "out", "in", pipeA); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	// After start: refused in the static mode.
	err = Export(sys, "Source", "out", "in", pipeA)
	if err == nil || !strings.Contains(err.Error(), "static") {
		t.Fatalf("post-start export in ULTRA-MERGE: %v", err)
	}
}

func TestPipeSendAfterCloseRefused(t *testing.T) {
	a, b := NewPipe()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := b.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer send after close: %v", err)
	}
	if _, err := b.Receive(); !errors.Is(err, ErrClosed) {
		t.Fatalf("receive after close: %v", err)
	}
}

func TestPipeDrainsQueuedAfterClose(t *testing.T) {
	a, b := NewPipe()
	if err := a.Send([]byte("queued")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Receive()
	if err != nil || string(msg) != "queued" {
		t.Fatalf("drain = %q, %v", msg, err)
	}
}
