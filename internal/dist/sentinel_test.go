package dist

import (
	"errors"
	"fmt"
	"testing"

	"soleil/internal/qos"
)

// TestBackpressureAliasIsTheQosSentinel pins the alias wiring: the
// package-level ErrBackpressure is not a second sentinel that merely
// resembles the qos one — it IS qos.ErrBackpressure, so matching
// either identifier matches both.
func TestBackpressureAliasIsTheQosSentinel(t *testing.T) {
	if ErrBackpressure != qos.ErrBackpressure {
		t.Fatal("dist.ErrBackpressure must alias qos.ErrBackpressure, not redeclare it")
	}
	wrapped := fmt.Errorf("%w (after 5ms)", ErrBackpressure)
	if !errors.Is(wrapped, qos.ErrBackpressure) {
		t.Error("a wrapped dist.ErrBackpressure must satisfy errors.Is against the qos sentinel")
	}
}

// TestFrameTooLargeMatchesThroughWrapping covers the two wrapping
// layers the transport really produces — the size annotation added at
// the frame boundary, plus any caller-side %w — and documents that a
// == comparison against the sentinel silently misses both.
func TestFrameTooLargeMatchesThroughWrapping(t *testing.T) {
	once := fmt.Errorf("%w: sending %d bytes (limit %d)", ErrFrameTooLarge, MaxFrame+1, MaxFrame)
	twice := fmt.Errorf("link n1->n2: %w", once)

	for _, err := range []error{once, twice} {
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Errorf("errors.Is(%v, ErrFrameTooLarge) = false", err)
		}
		if err == ErrFrameTooLarge { //nolint:errorlint // deliberate: proving == fails
			t.Errorf("wrapped error compares == to ErrFrameTooLarge; wrapping is broken")
		}
	}
}

// TestFrameTooLargeIsNotBackpressure keeps the two failure families
// distinct: an oversized frame is a poisoned-stream error, never an
// overload signal, so shed accounting must not count it.
func TestFrameTooLargeIsNotBackpressure(t *testing.T) {
	err := fmt.Errorf("%w: length prefix claims %d bytes (limit %d)", ErrFrameTooLarge, 1<<30, MaxFrame)
	if errors.Is(err, qos.ErrBackpressure) {
		t.Error("ErrFrameTooLarge must not unwrap to qos.ErrBackpressure")
	}
}
