package dist

import (
	"testing"

	"soleil/internal/assembly"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/obs"
)

// TestCausalTraceSpansBothSystems drives activations across a
// distributed binding with both systems deployed against one shared
// registry and tracer, then checks each frame renders as a single
// causal tree: an activation root recorded in the producer system and
// a child span recorded in the consumer system, joined by trace and
// parent IDs carried over the wire.
func TestCausalTraceSpansBothSystems(t *testing.T) {
	RegisterPayload(tick{})
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(0)

	deploy := func(build func() *model.Architecture, impl string, content membrane.Content) *assembly.System {
		a := build()
		r := assembly.NewRegistry()
		if err := r.Register(impl, func() membrane.Content { return content }); err != nil {
			t.Fatal(err)
		}
		sys, err := assembly.Deploy(a, assembly.Config{
			Mode: assembly.Soleil, Registry: r, Metrics: reg, Tracer: tracer,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	src := &sourceContent{}
	snk := &sinkContent{}
	producer := deploy(func() *model.Architecture {
		a := model.NewArchitecture("producer")
		s, _ := a.NewActive("Source", model.Activation{Kind: model.SporadicActivation})
		_ = s.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "ITick"})
		_ = s.SetContent("SourceImpl")
		td, _ := a.NewThreadDomain("rt", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
		imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
		_ = a.AddChild(imm, td)
		_ = a.AddChild(td, s)
		return a
	}, "SourceImpl", src)
	consumer := deploy(func() *model.Architecture {
		a := model.NewArchitecture("consumer")
		s, _ := a.NewPassive("Sink")
		_ = s.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "ITick"})
		_ = s.SetContent("SinkImpl")
		imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
		_ = a.AddChild(imm, s)
		return a
	}, "SinkImpl", snk)

	pa, pb := NewPipe()
	if err := Export(producer, "Source", "out", "in", pa); err != nil {
		t.Fatal(err)
	}
	imp, err := Import(consumer, "Sink", pb)
	if err != nil {
		t.Fatal(err)
	}
	defer imp.Close()
	if err := producer.Start(); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Start(); err != nil {
		t.Fatal(err)
	}

	env, closeEnv, err := producer.NewEnv(false)
	if err != nil {
		t.Fatal(err)
	}
	defer closeEnv()
	node, _ := producer.Node("Source")
	const frames = 4
	for i := 0; i < frames; i++ {
		if err := node.Activate(env); err != nil {
			t.Fatal(err)
		}
		if ok, err := imp.PumpOne(); err != nil || !ok {
			t.Fatalf("pump %d: %v, %v", i, ok, err)
		}
	}
	if len(snk.got) != frames {
		t.Fatalf("sink got %v", snk.got)
	}

	roots := map[uint64]obs.Span{} // trace ID -> producer-side activation root
	var children []obs.Span
	for _, sp := range tracer.Spans() {
		switch sp.System {
		case "producer":
			if sp.Interface == "activation" {
				roots[sp.Trace] = sp
			}
		case "consumer":
			children = append(children, sp)
		}
	}
	if len(roots) != frames {
		t.Fatalf("producer activation roots = %d, want %d", len(roots), frames)
	}
	if len(children) != frames {
		t.Fatalf("consumer spans = %d, want %d", len(children), frames)
	}
	for _, c := range children {
		root, ok := roots[c.Trace]
		if !ok {
			t.Fatalf("consumer span %x not in any producer trace", c.ID)
		}
		if c.Parent != root.ID {
			t.Errorf("consumer span parent = %x, want producer root %x", c.Parent, root.ID)
		}
		if c.Component != "Sink" || c.Interface != "in" {
			t.Errorf("consumer span identity = %s/%s", c.Component, c.Interface)
		}
	}

	// The shared registry aggregated both sides.
	if got := reg.Component("Sink").Series("in", "tick").Invocations.Load(); got != frames {
		t.Errorf("sink invocations = %d, want %d", got, frames)
	}
}
