package dist

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConnReceiveRefusesOversizedPrefix: a corrupt or hostile length
// prefix must fail with a typed error before any allocation, not make
// Receive allocate gigabytes on the peer's say-so.
func TestConnReceiveRefusesOversizedPrefix(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
		_, _ = client.Write(hdr[:])
	}()
	_, err := NewConn(server).Receive()
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("receive: %v", err)
	}
}

func TestConnSendRefusesOversizedPayload(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	err := NewConn(client).Send(make([]byte, MaxFrame+1))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("send: %v", err)
	}
	// Nothing was written: the connection is still cleanly framed.
	go func() { _ = NewConn(client).Send([]byte("ok")) }()
	msg, err := NewConn(server).Receive()
	if err != nil || string(msg) != "ok" {
		t.Fatalf("after refusal: %q, %v", msg, err)
	}
}

// TestBoundedPipeBackpressure: a stalled receiver turns Send into a
// typed ErrBackpressure after the deadline instead of wedging the
// sender forever.
func TestBoundedPipeBackpressure(t *testing.T) {
	a, b := NewBoundedPipe(1, 20*time.Millisecond)
	if err := a.Send([]byte("1")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := a.Send([]byte("2"))
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("send on full pipe: %v", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("failed after %v, before the deadline", waited)
	}
	// Draining unblocks further sends.
	if msg, err := b.Receive(); err != nil || string(msg) != "1" {
		t.Fatalf("drain: %q, %v", msg, err)
	}
	if err := a.Send([]byte("3")); err != nil {
		t.Fatalf("send after drain: %v", err)
	}
}

// TestPipeConcurrentSendReceiveClose hammers both pipe ends from many
// goroutines while a closer races them; run under -race this verifies
// the transport's synchronization.
func TestPipeConcurrentSendReceiveClose(t *testing.T) {
	a, b := NewBoundedPipe(4, 5*time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := a.Send([]byte{byte(i)}); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					if errors.Is(err, ErrBackpressure) {
						continue
					}
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				if _, err := b.Receive(); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("receive: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestImporterAbsorbsCorruptFrames: with an error handler installed,
// a corrupt frame is counted and dropped while the binding keeps
// serving; without one, Serve terminates with the decode error.
func TestImporterAbsorbsCorruptFrames(t *testing.T) {
	RegisterPayload(tick{})
	src := &sourceContent{}
	snk := &sinkContent{}
	producer := producerSystem(t, src)
	consumer := consumerSystem(t, snk)

	a, b := NewPipe()
	if err := Export(producer, "Source", "out", "in", a); err != nil {
		t.Fatal(err)
	}
	imp, err := Import(consumer, "Sink", b)
	if err != nil {
		t.Fatal(err)
	}
	var absorbed []error
	imp.SetErrorHandler(func(err error) bool { absorbed = append(absorbed, err); return true })
	if err := producer.Start(); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Start(); err != nil {
		t.Fatal(err)
	}

	env, closeEnv, err := producer.NewEnv(false)
	if err != nil {
		t.Fatal(err)
	}
	defer closeEnv()
	node, _ := producer.Node("Source")
	// A valid frame, then garbage straight onto the wire, then
	// another valid frame.
	if err := node.Activate(env); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("not a gob stream")); err != nil {
		t.Fatal(err)
	}
	if err := node.Activate(env); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	imp.Serve() // runs to completion on the closed transport
	if err := imp.Err(); err != nil {
		t.Fatalf("serve died despite the handler: %v", err)
	}
	if imp.Delivered() != 2 || imp.Dropped() != 1 {
		t.Fatalf("delivered=%d dropped=%d", imp.Delivered(), imp.Dropped())
	}
	if len(absorbed) != 1 || !strings.Contains(absorbed[0].Error(), "decode") {
		t.Fatalf("absorbed = %v", absorbed)
	}
	if len(snk.got) != 2 {
		t.Fatalf("sink got %v", snk.got)
	}
}

func TestImporterStopsOnErrorWithoutHandler(t *testing.T) {
	RegisterPayload(tick{})
	snk := &sinkContent{}
	consumer := consumerSystem(t, snk)
	a, b := NewPipe()
	imp, err := Import(consumer, "Sink", b)
	if err != nil {
		t.Fatal(err)
	}
	if err := consumer.Start(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("not a gob stream")); err != nil {
		t.Fatal(err)
	}
	imp.Serve()
	if err := imp.Err(); err == nil || !strings.Contains(err.Error(), "decode") {
		t.Fatalf("serve error = %v", err)
	}
}

// unregisteredPayload is deliberately never passed to RegisterPayload.
type unregisteredPayload struct {
	X int
}

// TestUnregisteredPayloadFailsAtEncode: gob refuses a concrete type
// that was never registered at the sending side, with a clear error —
// the failure surfaces at the exporter, not as a mystery on the peer.
func TestUnregisteredPayloadFailsAtEncode(t *testing.T) {
	a, _ := NewPipe()
	p, err := NewRemotePort(a, "in")
	if err != nil {
		t.Fatal(err)
	}
	err = p.Send(nil, "tick", unregisteredPayload{X: 1})
	if err == nil || !strings.Contains(err.Error(), "encode") {
		t.Fatalf("send unregistered payload: %v", err)
	}
}
