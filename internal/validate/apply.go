package validate

import (
	"fmt"

	"soleil/internal/model"
	"soleil/internal/patterns"
)

// ApplySuggestedPatterns fills in the communication pattern of every
// binding that crosses memory areas but has none selected, using the
// validator's suggestion (patterns.Select). It mirrors the design
// flow's "possible solutions proposed" step (Sect. 3.2) and returns
// the bindings it changed.
func ApplySuggestedPatterns(a *model.Architecture) ([]*model.Binding, error) {
	var changed []*model.Binding
	for _, b := range a.Bindings() {
		if b.Pattern != "" {
			continue
		}
		cli, ok := a.Component(b.Client.Component)
		if !ok {
			return nil, fmt.Errorf("validate: binding %s references unknown client", b)
		}
		srv, ok := a.Component(b.Server.Component)
		if !ok {
			return nil, fmt.Errorf("validate: binding %s references unknown server", b)
		}
		cliArea, err := a.EffectiveMemoryArea(cli)
		if err != nil {
			return nil, fmt.Errorf("validate: binding %s: %w", b, err)
		}
		srvArea, err := a.EffectiveMemoryArea(srv)
		if err != nil {
			return nil, fmt.Errorf("validate: binding %s: %w", b, err)
		}
		x := patterns.Crossing{Client: cliArea, Server: srvArea}
		if pat := patterns.Select(x, b.Protocol); pat != patterns.None {
			b.Pattern = string(pat)
			changed = append(changed, b)
		}
	}
	return changed, nil
}
