package validate

import (
	"testing"
	"time"

	"soleil/internal/model"
)

// rateFixture builds a periodic producer bound asynchronously to a
// server with the given activation.
func rateFixture(t *testing.T, producerPeriod time.Duration, serverAct model.Activation, buffer int) *model.Architecture {
	t.Helper()
	a := model.NewArchitecture("rates")
	cli, err := a.NewActive("cli", model.Activation{Kind: model.PeriodicActivation, Period: producerPeriod})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := a.NewActive("srv", serverAct)
	if err != nil {
		t.Fatal(err)
	}
	_ = cli.SetContent("C")
	_ = srv.SetContent("S")
	if err := cli.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "I"}); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "I"}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Bind(model.Binding{
		Client:   model.Endpoint{Component: "cli", Interface: "out"},
		Server:   model.Endpoint{Component: "srv", Interface: "in"},
		Protocol: model.Asynchronous, BufferSize: buffer,
	}); err != nil {
		t.Fatal(err)
	}
	td, _ := a.NewThreadDomain("td", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	if err := a.AddChild(imm, td); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, cli); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, srv); err != nil {
		t.Fatal(err)
	}
	return a
}

func warningsFor(r Report, rule string) int {
	n := 0
	for _, d := range r.ByRule(rule) {
		if d.Severity == Warning {
			n++
		}
	}
	return n
}

func TestRT13SporadicMITSlowerThanProducer(t *testing.T) {
	a := rateFixture(t, 5*ms,
		model.Activation{Kind: model.SporadicActivation, Period: 12 * ms}, 10)
	r := Validate(a)
	if warningsFor(r, "RT13") != 1 {
		t.Fatalf("RT13 warnings = %d: %v", warningsFor(r, "RT13"), r.Diagnostics)
	}
	// A compatible MIT raises nothing.
	a2 := rateFixture(t, 12*ms,
		model.Activation{Kind: model.SporadicActivation, Period: 5 * ms}, 10)
	if warningsFor(Validate(a2), "RT13") != 0 {
		t.Fatal("spurious RT13 for compatible rates")
	}
}

func TestRT13PeriodicServerBufferSizing(t *testing.T) {
	// 50ms server period / 5ms producer period = 10 messages per
	// drain; a 4-slot buffer warns, a 10-slot buffer does not.
	small := rateFixture(t, 5*ms,
		model.Activation{Kind: model.PeriodicActivation, Period: 50 * ms}, 4)
	r := Validate(small)
	if warningsFor(r, "RT13") != 1 {
		t.Fatalf("RT13 warnings = %d: %v", warningsFor(r, "RT13"), r.ByRule("RT13"))
	}
	big := rateFixture(t, 5*ms,
		model.Activation{Kind: model.PeriodicActivation, Period: 50 * ms}, 10)
	if warningsFor(Validate(big), "RT13") != 0 {
		t.Fatal("spurious RT13 for a sufficient buffer")
	}
}

func TestRT13IgnoresNonPeriodicProducers(t *testing.T) {
	a := model.NewArchitecture("rates")
	cli, _ := a.NewActive("cli", model.Activation{Kind: model.SporadicActivation})
	srv, _ := a.NewActive("srv", model.Activation{Kind: model.SporadicActivation, Period: 50 * ms})
	_ = cli.SetContent("C")
	_ = srv.SetContent("S")
	_ = cli.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "I"})
	_ = srv.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "I"})
	if _, err := a.Bind(model.Binding{
		Client:   model.Endpoint{Component: "cli", Interface: "out"},
		Server:   model.Endpoint{Component: "srv", Interface: "in"},
		Protocol: model.Asynchronous, BufferSize: 1,
	}); err != nil {
		t.Fatal(err)
	}
	td, _ := a.NewThreadDomain("td", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	_ = a.AddChild(imm, td)
	_ = a.AddChild(td, cli)
	_ = a.AddChild(td, srv)
	if warningsFor(Validate(a), "RT13") != 0 {
		t.Fatal("RT13 fired for a sporadic producer")
	}
}
