package validate

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"soleil/internal/adl"
	"soleil/internal/model"
)

// contractedDistArch builds producer -> consumer (async, buffer 16)
// with the given binding contract, the producer in a domain of the
// given desc. Named "dist" so the twoNode deployment applies.
func contractedDistArch(t *testing.T, c *model.Contract, clientDomain model.DomainDesc, serverAct model.Activation) *model.Architecture {
	t.Helper()
	a := model.NewArchitecture("dist")
	prod, err := a.NewActive("producer", model.Activation{Kind: model.PeriodicActivation, Period: 10 * ms})
	if err != nil {
		t.Fatal(err)
	}
	if err := prod.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "ISink"}); err != nil {
		t.Fatal(err)
	}
	if err := prod.SetContent("ProducerImpl"); err != nil {
		t.Fatal(err)
	}
	cons, err := a.NewActive("consumer", serverAct)
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "ISink"}); err != nil {
		t.Fatal(err)
	}
	if err := cons.SetContent("ConsumerImpl"); err != nil {
		t.Fatal(err)
	}
	sides := []struct {
		area, domain string
		desc         model.DomainDesc
		comp         *model.Component
	}{
		{"immA", "tdA", clientDomain, prod},
		{"immB", "tdB", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20}, cons},
	}
	for _, side := range sides {
		ma, err := a.NewMemoryArea(side.area, model.AreaDesc{Kind: model.ImmortalMemory})
		if err != nil {
			t.Fatal(err)
		}
		td, err := a.NewThreadDomain(side.domain, side.desc)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.AddChild(ma, td); err != nil {
			t.Fatal(err)
		}
		if err := a.AddChild(td, side.comp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Bind(model.Binding{
		Client:     model.Endpoint{Component: "producer", Interface: "out"},
		Server:     model.Endpoint{Component: "consumer", Interface: "in"},
		Protocol:   model.Asynchronous,
		Pattern:    "deep-copy",
		BufferSize: 16,
		Contract:   c,
	}); err != nil {
		t.Fatal(err)
	}
	return a
}

func errorsFor(r Report, rule string) int {
	n := 0
	for _, d := range r.ByRule(rule) {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

var rtClient = model.DomainDesc{Kind: model.RealtimeThread, Priority: 25}

func TestRT16BurstExceedsBuffer(t *testing.T) {
	a := contractedDistArch(t, &model.Contract{MaxRate: 100, Burst: 32},
		rtClient, model.Activation{Kind: model.SporadicActivation})
	r := Validate(a)
	if errorsFor(r, "RT16") != 1 {
		t.Fatalf("RT16 errors = %d: %v", errorsFor(r, "RT16"), r.Diagnostics)
	}
	if d := r.ByRule("RT16")[0]; !strings.Contains(d.Message, "burst 32") ||
		!strings.Contains(d.Suggestion, "bufferSize") {
		t.Fatalf("unexpected RT16 diagnostic: %v", d)
	}
	// A burst that fits the buffer raises nothing.
	fits := contractedDistArch(t, &model.Contract{MaxRate: 100, Burst: 16},
		rtClient, model.Activation{Kind: model.SporadicActivation})
	if errorsFor(Validate(fits), "RT16") != 0 {
		t.Fatal("spurious RT16 for a fitting burst")
	}
}

func TestRT16RateExceedsCapacity(t *testing.T) {
	// Cost 2ms per release = 500 msg/s capacity; a 1000/s contract
	// overloads the server with traffic the gate admitted.
	slow := model.Activation{Kind: model.SporadicActivation, Period: ms, Cost: 2 * ms}
	a := contractedDistArch(t, &model.Contract{MaxRate: 1000}, rtClient, slow)
	r := Validate(a)
	if errorsFor(r, "RT16") != 1 {
		t.Fatalf("RT16 errors = %d: %v", errorsFor(r, "RT16"), r.Diagnostics)
	}
	if d := r.ByRule("RT16")[0]; !strings.Contains(d.Message, "capacity 500") {
		t.Fatalf("capacity not computed from the cost: %v", d)
	}
	ok := contractedDistArch(t, &model.Contract{MaxRate: 400}, rtClient, slow)
	if errorsFor(Validate(ok), "RT16") != 0 {
		t.Fatal("spurious RT16 for a rate within capacity")
	}
}

// TestRT16BudgetVsWorstCaseResponse pins the analysis hand-off: the
// latency budget is judged against the server's worst-case response
// under interference, not its isolated cost.
func TestRT16BudgetVsWorstCaseResponse(t *testing.T) {
	build := func(budget time.Duration) *model.Architecture {
		a := model.NewArchitecture("budget")
		hi, _ := a.NewActive("hi", model.Activation{
			Kind: model.PeriodicActivation, Period: 5 * ms, Deadline: 5 * ms, Cost: 2 * ms})
		_ = hi.SetContent("HiImpl")
		srv, _ := a.NewActive("srv", model.Activation{
			Kind: model.PeriodicActivation, Period: 10 * ms, Deadline: 10 * ms, Cost: 4 * ms})
		_ = srv.SetContent("SrvImpl")
		_ = srv.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "I"})
		cli, _ := a.NewActive("cli", model.Activation{Kind: model.SporadicActivation})
		_ = cli.SetContent("CliImpl")
		_ = cli.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "I"})
		imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
		tdHi, _ := a.NewThreadDomain("tdHi", model.DomainDesc{Kind: model.RealtimeThread, Priority: 30})
		tdLo, _ := a.NewThreadDomain("tdLo", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
		for _, edge := range [][2]*model.Component{
			{imm, tdHi}, {imm, tdLo}, {tdHi, hi}, {tdLo, srv}, {tdLo, cli},
		} {
			if err := a.AddChild(edge[0], edge[1]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := a.Bind(model.Binding{
			Client:   model.Endpoint{Component: "cli", Interface: "out"},
			Server:   model.Endpoint{Component: "srv", Interface: "in"},
			Protocol: model.Synchronous,
			Contract: &model.Contract{LatencyBudget: budget},
		}); err != nil {
			t.Fatal(err)
		}
		return a
	}
	// srv's worst case is 4ms + two 2ms preemptions = 8ms. A 6ms
	// budget is unmeetable by construction; an 8ms budget is feasible.
	r := Validate(build(6 * ms))
	if errorsFor(r, "RT16") != 1 {
		t.Fatalf("RT16 errors = %d: %v", errorsFor(r, "RT16"), r.Diagnostics)
	}
	if d := r.Errors()[0]; !strings.Contains(d.Message, "worst-case response 8ms") {
		t.Fatalf("budget not judged against the response analysis: %v", d)
	}
	ok := Validate(build(8 * ms))
	if errorsFor(ok, "RT16") != 0 {
		t.Fatalf("spurious RT16: %v", ok.ByRule("RT16"))
	}
	// The feasible case is documented with an Info finding.
	var info bool
	for _, d := range ok.ByRule("RT16") {
		info = info || d.Severity == Info
	}
	if !info {
		t.Fatal("no RT16 info finding for the feasible budget")
	}
}

func TestRT17BlockPolicyRealtimeClient(t *testing.T) {
	c := &model.Contract{MaxRate: 100, Policy: model.Block}
	a := contractedDistArch(t, c, rtClient, model.Activation{Kind: model.SporadicActivation})
	r := Validate(a)
	if errorsFor(r, "RT17") != 1 {
		t.Fatalf("RT17 errors = %d: %v", errorsFor(r, "RT17"), r.Diagnostics)
	}
	// A regular (blockable) client domain may block.
	reg := contractedDistArch(t, c, model.DomainDesc{Kind: model.RegularThread, Priority: 5},
		model.Activation{Kind: model.SporadicActivation})
	if len(Validate(reg).ByRule("RT17")) != 0 {
		t.Fatal("RT17 fired for a regular client domain")
	}
}

func TestRT17CrossNodeBlockPolicy(t *testing.T) {
	regular := model.DomainDesc{Kind: model.RegularThread, Priority: 5}
	a := contractedDistArch(t, &model.Contract{MaxRate: 100, Policy: model.Block},
		regular, model.Activation{Kind: model.SporadicActivation})
	if !Validate(a).OK() {
		t.Fatal("architecture half must be clean in-process")
	}
	r, err := ValidateDeployment(a, twoNode(t))
	if err != nil {
		t.Fatal(err)
	}
	if errorsFor(r, "RT17") != 1 {
		t.Fatalf("RT17 errors = %d: %v", errorsFor(r, "RT17"), r.Diagnostics)
	}
	// Co-located endpoints keep their block policy.
	d := model.NewDeployment("dist")
	_ = d.AddNode(&model.DeployNode{Name: "solo", Addr: "127.0.0.1:0", Assigned: []string{"producer", "consumer"}})
	colo, err := ValidateDeployment(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(colo.ByRule("RT17")) != 0 {
		t.Fatalf("RT17 fired for co-located endpoints: %v", colo.Diagnostics)
	}
}

func TestRT17CrossNodeBudgetWarns(t *testing.T) {
	a := contractedDistArch(t, &model.Contract{LatencyBudget: 2 * ms, MaxRate: 100},
		rtClient, model.Activation{Kind: model.SporadicActivation})
	r, err := ValidateDeployment(a, twoNode(t))
	if err != nil {
		t.Fatal(err)
	}
	// The budget is observed via propagated heartbeat digests now, so
	// RT17 informs about the propagation lag instead of warning that
	// the probe is unwired.
	if warningsFor(r, "RT17") != 0 {
		t.Fatalf("RT17 warnings = %d: %v", warningsFor(r, "RT17"), r.Diagnostics)
	}
	infos := 0
	for _, d := range r.ByRule("RT17") {
		if d.Severity == Info {
			infos++
		}
	}
	if infos != 1 {
		t.Fatalf("RT17 infos = %d: %v", infos, r.Diagnostics)
	}
	if !r.OK() {
		t.Fatalf("a shed-policy cross-node contract is legal, got %v", r.Errors())
	}
}

// TestContractDiagnosticsJSONRoundTrip pins the new rules to the
// shared JSON schema both `soleil validate -json` and `soleil vet
// -json` emit.
func TestContractDiagnosticsJSONRoundTrip(t *testing.T) {
	arch, err := adl.DecodeFile(filepath.Join("testdata", "rt16.xml"))
	if err != nil {
		t.Fatal(err)
	}
	diags := Validate(arch).Diagnostics

	dArch, err := adl.DecodeFile(filepath.Join("testdata", "rt17d.xml"))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := adl.DecodeDeploymentFile(filepath.Join("testdata", "rt17d.deploy.xml"))
	if err != nil {
		t.Fatal(err)
	}
	dr, err := ValidateDeployment(dArch, dep)
	if err != nil {
		t.Fatal(err)
	}
	diags = append(diags, dr.Diagnostics...)

	var buf bytes.Buffer
	if err := EncodeJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	var back []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(diags) {
		t.Fatalf("round trip lost findings: %d -> %d", len(diags), len(back))
	}
	seen := map[string]bool{}
	for i, d := range back {
		if !reflect.DeepEqual(d, diags[i]) {
			t.Fatalf("finding %d mutated: %+v != %+v", i, d, diags[i])
		}
		seen[d.Rule] = true
	}
	for _, rule := range []string{"RT16", "RT17"} {
		if !seen[rule] {
			t.Errorf("%s missing from the encoded corpus findings", rule)
		}
	}
}
