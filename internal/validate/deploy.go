package validate

import (
	"fmt"
	"sort"
	"strings"

	"soleil/internal/model"
)

// ValidateDeployment checks a deployment descriptor against an
// architecture: the cross-node rules RT14 and RT15 of the catalog.
// The returned error is reserved for descriptors that do not resolve
// at all (unknown components, conflicting or missing assignments);
// once every primitive has a node, rule findings land in the Report
// alongside the architecture-level diagnostics vocabulary.
//
// The rules guard what distribution cannot virtualize: a ThreadDomain
// is one scheduling context and a MemoryArea one allocation context,
// so neither may straddle an address-space boundary (RT14); and the
// transport carries serialized value messages only, so a binding that
// crosses nodes must be asynchronous — synchronous RPC would give
// NHRT components a reference-bearing, blocking path off-node that
// RTSJ cannot police (RT15).
func ValidateDeployment(a *model.Architecture, d *model.Deployment) (Report, error) {
	assign, err := d.Resolve(a)
	if err != nil {
		return Report{}, err
	}
	v := &validator{arch: a}

	// RT14: non-functional containers must not span nodes.
	for _, kind := range []model.Kind{model.ThreadDomain, model.MemoryArea} {
		for _, ct := range a.ComponentsOfKind(kind) {
			nodes := map[string]bool{}
			for _, p := range functionalPrimitivesUnder(ct) {
				if n, ok := assign[p.Name()]; ok {
					nodes[n] = true
				}
			}
			if len(nodes) > 1 {
				names := make([]string, 0, len(nodes))
				for n := range nodes {
					names = append(names, n)
				}
				sort.Strings(names)
				v.add("RT14", Error, ct.Name(),
					fmt.Sprintf("%s spans deployment nodes %s; a %s is one %s context and cannot straddle address spaces",
						kind, strings.Join(names, ", "), kind, containerContext(kind)),
					fmt.Sprintf("split %q into per-node containers or co-locate its members", ct.Name()))
			}
		}
	}

	// RT15: cross-node bindings must be asynchronous.
	for _, b := range a.Bindings() {
		cn, sn := assign[b.Client.Component], assign[b.Server.Component]
		if cn == "" || sn == "" || cn == sn {
			continue
		}
		if b.Protocol != model.Synchronous {
			continue
		}
		subject := b.String()
		cli, _ := a.Component(b.Client.Component)
		if td, err := a.EffectiveThreadDomain(cli); err == nil && td.Domain().Kind == model.NoHeapRealtimeThread {
			v.add("RT15", Error, subject,
				fmt.Sprintf("NHRT client %q (domain %q, node %q) calls synchronously into %q on node %q; NHRT components may only cross nodes via asynchronous value messages",
					b.Client.Component, td.Name(), cn, b.Server.Component, sn),
				"make the binding asynchronous (deep-copy); the transport serializes the message so no reference crosses the node boundary")
		} else {
			v.add("RT15", Error, subject,
				fmt.Sprintf("synchronous binding crosses from node %q to node %q; distribution is asynchronous-only (value messages over the framed transport)", cn, sn),
				"make the binding asynchronous with a bounded buffer, or co-locate the endpoints")
		}
	}

	// RT17 (deployment half): a cross-node contract is enforced by a
	// gate on the client node, over asynchronous value messages. Block
	// admission would stall the sender on remote capacity it cannot
	// observe. The SLO breach probe evaluates the server's latency via
	// histogram digests propagated on link heartbeats.
	for _, b := range a.Bindings() {
		c := b.Contract
		if c == nil {
			continue
		}
		cn, sn := assign[b.Client.Component], assign[b.Server.Component]
		if cn == "" || sn == "" || cn == sn {
			continue
		}
		subject := b.String()
		if b.Protocol == model.Synchronous {
			v.add("RT17", Error, subject,
				fmt.Sprintf("contract on a synchronous binding crossing nodes %q -> %q cannot be enforced; the transport carries asynchronous value messages only", cn, sn),
				"make the binding asynchronous (the export link gates admission on the client node), or co-locate the endpoints")
			continue
		}
		if c.Policy == model.Block {
			v.add("RT17", Error, subject,
				fmt.Sprintf("block overload policy across nodes %q -> %q would stall the sender on admission capacity it cannot observe remotely", cn, sn),
				"use the shed or degrade policy; the export link sheds locally before the wire")
		}
		if c.LatencyBudget > 0 {
			v.add("RT17", Info, subject,
				fmt.Sprintf("latency budget %v is observed across nodes via propagated digests: node %q piggybacks its latency histogram onto the link's heartbeats and the client-side gate probes the reconstructed p99", c.LatencyBudget, sn),
				"breach detection lags by up to one heartbeat interval; shorten the link beat if the budget needs tighter reaction")
		}
	}

	return Report{Diagnostics: v.diags}, nil
}

func containerContext(k model.Kind) string {
	if k == model.ThreadDomain {
		return "scheduling"
	}
	return "allocation"
}

// functionalPrimitivesUnder collects the active/passive descendants
// of a container through every membership edge (composites, nested
// areas, domains).
func functionalPrimitivesUnder(c *model.Component) []*model.Component {
	var out []*model.Component
	seen := map[*model.Component]bool{}
	var walk func(n *model.Component)
	walk = func(n *model.Component) {
		if seen[n] {
			return
		}
		seen[n] = true
		if n.Kind() == model.Active || n.Kind() == model.Passive {
			out = append(out, n)
		}
		for _, s := range n.Subs() {
			walk(s)
		}
	}
	for _, s := range c.Subs() {
		walk(s)
	}
	return out
}
