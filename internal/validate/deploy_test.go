package validate

import (
	"strings"
	"testing"
	"time"

	"soleil/internal/model"
)

// distArch builds a two-sided architecture: producer (periodic, RT
// domain, immortal) async-bound to consumer (sporadic, RT domain,
// immortal), plus one local passive.
func distArch(t *testing.T, proto model.Protocol) *model.Architecture {
	t.Helper()
	a := model.NewArchitecture("dist")
	prod, err := a.NewActive("producer", model.Activation{Kind: model.PeriodicActivation, Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := prod.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "ISink"}); err != nil {
		t.Fatal(err)
	}
	if err := prod.SetContent("ProducerImpl"); err != nil {
		t.Fatal(err)
	}
	cons, err := a.NewActive("consumer", model.Activation{Kind: model.SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "ISink"}); err != nil {
		t.Fatal(err)
	}
	if err := cons.SetContent("ConsumerImpl"); err != nil {
		t.Fatal(err)
	}

	for _, side := range []struct {
		area, domain string
		comp         *model.Component
	}{{"immA", "tdA", prod}, {"immB", "tdB", cons}} {
		ma, err := a.NewMemoryArea(side.area, model.AreaDesc{Kind: model.ImmortalMemory})
		if err != nil {
			t.Fatal(err)
		}
		td, err := a.NewThreadDomain(side.domain, model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.AddChild(ma, td); err != nil {
			t.Fatal(err)
		}
		if err := a.AddChild(td, side.comp); err != nil {
			t.Fatal(err)
		}
	}
	b := model.Binding{
		Client:   model.Endpoint{Component: "producer", Interface: "out"},
		Server:   model.Endpoint{Component: "consumer", Interface: "in"},
		Protocol: proto,
		Pattern:  "deep-copy",
	}
	if proto == model.Asynchronous {
		b.BufferSize = 16
	}
	if _, err := a.Bind(b); err != nil {
		t.Fatal(err)
	}
	return a
}

func twoNode(t *testing.T) *model.Deployment {
	t.Helper()
	d := model.NewDeployment("dist")
	if err := d.AddNode(&model.DeployNode{Name: "alpha", Addr: "127.0.0.1:0", Assigned: []string{"producer"}}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddNode(&model.DeployNode{Name: "beta", Addr: "127.0.0.1:0", Assigned: []string{"consumer"}}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidateDeploymentAsyncCrossNodeOK(t *testing.T) {
	a := distArch(t, model.Asynchronous)
	r, err := ValidateDeployment(a, twoNode(t))
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("async cross-node binding should be legal, got %v", r.Errors())
	}
}

func TestValidateDeploymentSyncCrossNodeRT15(t *testing.T) {
	a := distArch(t, model.Synchronous)
	r, err := ValidateDeployment(a, twoNode(t))
	if err != nil {
		t.Fatal(err)
	}
	diags := r.ByRule("RT15")
	if len(diags) != 1 || diags[0].Severity != Error {
		t.Fatalf("want one RT15 error, got %v", r.Diagnostics)
	}
	if !strings.Contains(diags[0].Message, "asynchronous-only") {
		t.Fatalf("generic (non-NHRT) message expected, got %q", diags[0].Message)
	}
}

func TestValidateDeploymentColocatedSyncOK(t *testing.T) {
	a := distArch(t, model.Synchronous)
	d := model.NewDeployment("dist")
	_ = d.AddNode(&model.DeployNode{Name: "solo", Addr: "127.0.0.1:0", Assigned: []string{"producer", "consumer"}})
	r, err := ValidateDeployment(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatalf("co-located sync binding should be legal, got %v", r.Errors())
	}
}

func TestValidateDeploymentUnresolvableIsError(t *testing.T) {
	a := distArch(t, model.Asynchronous)
	d := model.NewDeployment("dist")
	_ = d.AddNode(&model.DeployNode{Name: "alpha", Addr: "127.0.0.1:0", Assigned: []string{"producer"}})
	if _, err := ValidateDeployment(a, d); err == nil {
		t.Fatal("unassigned consumer must fail resolution")
	}
}

func TestCatalogHasCrossNodeRules(t *testing.T) {
	for _, rule := range []string{"RT14", "RT15"} {
		if _, ok := Rules[rule]; !ok {
			t.Errorf("rule %s missing from the catalog", rule)
		}
	}
}
