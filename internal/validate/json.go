package validate

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// MarshalJSON encodes a severity as its name, so the machine-readable
// form reads "error" rather than 3.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts both the name and the numeric form.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err == nil {
		sev, err := ParseSeverity(name)
		if err != nil {
			return err
		}
		*s = sev
		return nil
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*s = Severity(n)
	return nil
}

// ParseSeverity parses a severity name.
func ParseSeverity(s string) (Severity, error) {
	switch strings.ToLower(s) {
	case "info":
		return Info, nil
	case "warning", "warn":
		return Warning, nil
	case "error":
		return Error, nil
	default:
		return 0, fmt.Errorf("validate: unknown severity %q (want info, warning or error)", s)
	}
}

// EncodeJSON writes the diagnostics as a JSON array of
// {rule, severity, subject, message, suggestion, pos} objects — the
// one machine-readable schema shared by `soleil validate -json` and
// `soleil vet -json`. A nil slice encodes as an empty array so
// consumers always read a list.
func EncodeJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// CountAtLeast counts the diagnostics at or above the threshold — the
// one exit-gating predicate every CLI mode (vet, vet -arch, vet-tool)
// shares, so -max-severity behaves identically everywhere.
func CountAtLeast(diags []Diagnostic, threshold Severity) int {
	n := 0
	for _, d := range diags {
		if d.Severity >= threshold {
			n++
		}
	}
	return n
}

// MaxSeverity returns the highest severity among the diagnostics, or
// zero when there are none.
func MaxSeverity(diags []Diagnostic) Severity {
	var max Severity
	for _, d := range diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}
