package validate

import (
	"path/filepath"
	"strings"
	"testing"

	"soleil/internal/adl"
)

// TestGoldenCorpus checks the rule catalog against one minimal ADL
// fixture per rule: each fixture under testdata/ is the smallest
// architecture that violates exactly its rule. RT02 is absent from the
// corpus because the ADL dialect structurally cannot express nested
// ThreadDomains (xmlThreadDomain has no ThreadDomain child); its
// programmatic case is TestRT02NestedThreadDomains.
func TestGoldenCorpus(t *testing.T) {
	cases := []struct {
		rule     string
		severity Severity
		subject  string // fragment of the expected Subject
		message  string // fragment of the expected Message
	}{
		{"RT01", Error, "lonely", "ThreadDomain"},
		{"RT03", Error, "nhrtd", "heap"},
		{"RT04", Error, "floating", "MemoryArea"},
		{"RT05", Error, "td", "active components only"},
		{"RT06", Error, "reg", "outside the regular band"},
		{"RT07", Error, "client.iSrv -> server.iSrv", "pattern"},
		{"RT08", Error, "client.iSrv -> server.iSrv", "NHRT"},
		{"RT09", Error, "innerheap", "scoped area"},
		{"RT10", Error, "client.iSrv -> server.iSrv", "no thread"},
		{"RT11", Warning, "bare", "no content class"},
		{"RT12", Error, "slow", "exceeds deadline"},
		{"RT13", Warning, "producer.iSink -> consumer.iSink", "backlog"},
		{"RT16", Error, "producer.iSink -> consumer.iSink", "burst"},
		{"RT17", Error, "producer.iSink -> consumer.iSink", "block overload policy"},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			path := filepath.Join("testdata", strings.ToLower(tc.rule)+".xml")
			a, err := adl.DecodeFile(path)
			if err != nil {
				t.Fatal(err)
			}
			r := Validate(a)
			var found bool
			for _, d := range r.ByRule(tc.rule) {
				if d.Severity == tc.severity &&
					strings.Contains(d.Subject, tc.subject) &&
					strings.Contains(d.Message, tc.message) {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: no %s %s finding on %q in:\n%v",
					path, tc.severity, tc.rule, tc.subject, r.Diagnostics)
			}
			// A fixture must isolate its rule: no *other* rule may fire
			// at error severity, or the corpus stops documenting which
			// composition mistake produces which diagnostic.
			for _, d := range r.Errors() {
				if d.Rule != tc.rule {
					t.Errorf("%s: stray %s error (want only %s): %v", path, d.Rule, tc.rule, d)
				}
			}
		})
	}
}

// TestGoldenDeploymentCorpus covers the cross-node rules the same
// way: each fixture pair (rtXX.xml + rtXX.deploy.xml) is the smallest
// architecture/deployment combination violating exactly its rule. The
// architecture half must be conformant on its own — the node split is
// the composition mistake being documented.
func TestGoldenDeploymentCorpus(t *testing.T) {
	cases := []struct {
		rule     string
		severity Severity
		subject  string
		message  string
		// fixture overrides the fixture base name when it differs from
		// the lowercased rule (a rule with both an architecture-level
		// and a deployment-level fixture).
		fixture string
	}{
		{"RT14", Error, "td", "spans deployment nodes", ""},
		{"RT15", Error, "client.iSrv -> server.iSrv", "NHRT", ""},
		{"RT17", Error, "producer.iSink -> consumer.iSink", "across nodes", "rt17d"},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			fixture := tc.fixture
			if fixture == "" {
				fixture = strings.ToLower(tc.rule)
			}
			base := filepath.Join("testdata", fixture)
			a, err := adl.DecodeFile(base + ".xml")
			if err != nil {
				t.Fatal(err)
			}
			if errs := Validate(a).Errors(); len(errs) > 0 {
				t.Fatalf("architecture half must be conformant on its own, got %v", errs)
			}
			d, err := adl.DecodeDeploymentFile(base + ".deploy.xml")
			if err != nil {
				t.Fatal(err)
			}
			r, err := ValidateDeployment(a, d)
			if err != nil {
				t.Fatal(err)
			}
			var found bool
			for _, diag := range r.ByRule(tc.rule) {
				if diag.Severity == tc.severity &&
					strings.Contains(diag.Subject, tc.subject) &&
					strings.Contains(diag.Message, tc.message) {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: no %s %s finding on %q in:\n%v",
					base, tc.severity, tc.rule, tc.subject, r.Diagnostics)
			}
			for _, diag := range r.Errors() {
				if diag.Rule != tc.rule {
					t.Errorf("%s: stray %s error (want only %s): %v", base, diag.Rule, tc.rule, diag)
				}
			}
		})
	}
}

// TestGoldenCorpusCoversCatalog pins the corpus to the rule catalog:
// adding a rule to Rules without a golden fixture (or an explicit
// exemption) fails here.
func TestGoldenCorpusCoversCatalog(t *testing.T) {
	exempt := map[string]string{
		"RT02": "ThreadDomain nesting is inexpressible in the ADL dialect; covered by TestRT02NestedThreadDomains",
	}
	for rule := range Rules {
		if _, ok := exempt[rule]; ok {
			continue
		}
		path := filepath.Join("testdata", strings.ToLower(rule)+".xml")
		if _, err := adl.DecodeFile(path); err != nil {
			t.Errorf("rule %s has no golden fixture: %v", rule, err)
		}
	}
}
