// Package validate implements the RTSJ conformance verification the
// paper runs during the design process (Sect. 3.1-3.2): compositions
// that violate RTSJ are identified with immediate feedback, and the
// points where cross-scope glue code must be deployed are marked with
// a suggested communication pattern.
package validate

import (
	"fmt"
	"sort"
	"time"

	"soleil/internal/model"
	"soleil/internal/patterns"
	"soleil/internal/rtsj/analysis"
	"soleil/internal/rtsj/sched"
)

// Severity grades a diagnostic.
type Severity int

// Severities.
const (
	Info Severity = iota + 1
	Warning
	Error
)

// String returns the severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Diagnostic is one finding of the conformance checker. The same
// shape carries both architecture-level findings (rules RT01–RT13,
// produced by Validate over the ADL model) and source-level findings
// (rules SA01–SA04, produced by internal/lint over the Go code), so
// `soleil validate -json` and `soleil vet -json` speak one schema.
type Diagnostic struct {
	// Rule identifies the violated rule (e.g. "RT01", "SA03").
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	// Subject is the component, binding or function the finding
	// refers to.
	Subject string `json:"subject"`
	Message string `json:"message"`
	// Suggestion, when set, proposes a concrete fix (e.g. the
	// communication pattern to deploy).
	Suggestion string `json:"suggestion,omitempty"`
	// Pos, when set, is the source position of the finding
	// (file:line:col). Architecture-level findings have no position.
	Pos string `json:"pos,omitempty"`
	// Flow, when set, is the call chain (or binding path) from the
	// entry point to the offending site — the interprocedural
	// explanation of the finding. SARIF export renders it as a
	// codeFlow.
	Flow []FlowStep `json:"flow,omitempty"`
}

// FlowStep is one hop of a diagnostic's flow: a position (optional)
// and a human-readable note ("(*pump).Invoke calls flush").
type FlowStep struct {
	Pos  string `json:"pos,omitempty"`
	Note string `json:"note"`
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s [%s] %s: %s", d.Severity, d.Rule, d.Subject, d.Message)
	if d.Suggestion != "" {
		s += " (suggestion: " + d.Suggestion + ")"
	}
	if d.Pos != "" {
		s = d.Pos + ": " + s
	}
	return s
}

// Report is the outcome of validating an architecture.
type Report struct {
	Diagnostics []Diagnostic
}

// OK reports whether the architecture is RTSJ-compliant (no
// error-severity findings).
func (r Report) OK() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			return false
		}
	}
	return true
}

// Errors returns the error-severity findings.
func (r Report) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// ByRule returns the findings for one rule.
func (r Report) ByRule(rule string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

// The rule catalog. Each entry documents one conformance rule the
// paper's design flow enforces.
var Rules = map[string]string{
	"RT01": "every active component is deployed in exactly one ThreadDomain",
	"RT02": "ThreadDomain components are not nested inside other ThreadDomains",
	"RT03": "an NHRT ThreadDomain must not encapsulate heap memory (its components may not resolve to a heap MemoryArea)",
	"RT04": "every functional primitive resolves to exactly one nearest MemoryArea",
	"RT05": "ThreadDomains contain only active components",
	"RT06": "ThreadDomain priorities lie in the band of their thread kind (regular 1-10, RT/NHRT 11-38)",
	"RT07": "bindings crossing memory areas carry an applicable cross-scope communication pattern",
	"RT08": "synchronous bindings from no-heap domains must not reach heap-allocated servers",
	"RT09": "heap or immortal MemoryAreas are not nested inside scoped areas",
	"RT10": "asynchronous bindings terminate at sporadic active components",
	"RT11": "functional primitives declare a content class (needed for infrastructure generation)",
	"RT12": "periodic components with cost budgets pass response-time analysis within their ThreadDomain priorities",
	"RT13": "asynchronous binding rates are compatible with their buffer capacities (periodic producers vs server release rate)",
	"RT14": "a ThreadDomain or MemoryArea must not span deployment nodes (its members resolve to one node)",
	"RT15": "bindings crossing deployment nodes are asynchronous value messages; NHRT components in particular may not call synchronously off-node",
	"RT16": "binding contracts are feasible: latency budgets cover the server's worst-case response, contracted rates fit the server's processing capacity, and bursts fit the buffer",
	"RT17": "binding contracts are enforceable: the block policy may not stall real-time client domains, and cross-node contracts are client-side shed/degrade gates over asynchronous value messages",
}

// Validate checks the architecture against the full rule catalog.
func Validate(a *model.Architecture) Report {
	v := &validator{arch: a}
	v.checkThreadDomains()
	v.checkMemoryAreas()
	v.checkFunctional()
	v.checkBindings()
	v.checkSchedulability()
	v.checkContracts()
	return Report{Diagnostics: v.diags}
}

type validator struct {
	arch  *model.Architecture
	diags []Diagnostic
	// responses holds the response-time analysis results by component
	// name, captured by checkSchedulability for the contract
	// feasibility checks (RT16).
	responses map[string]analysis.Response
}

func (v *validator) add(rule string, sev Severity, subject, msg, suggestion string) {
	v.diags = append(v.diags, Diagnostic{
		Rule: rule, Severity: sev, Subject: subject, Message: msg, Suggestion: suggestion,
	})
}

// --- thread domains -----------------------------------------------------------

func (v *validator) checkThreadDomains() {
	for _, td := range v.arch.ComponentsOfKind(model.ThreadDomain) {
		d := td.Domain()
		// RT02: no nesting of thread domains.
		for _, s := range td.Supers() {
			if s.Kind() == model.ThreadDomain {
				v.add("RT02", Error, td.Name(),
					fmt.Sprintf("ThreadDomain is nested inside ThreadDomain %q; thread domains cannot nest", s.Name()),
					"deploy both domains side by side inside a MemoryArea")
			}
		}
		// RT05: children must be active.
		for _, sub := range td.Subs() {
			if sub.Kind() != model.Active {
				v.add("RT05", Error, td.Name(),
					fmt.Sprintf("contains %s component %q; ThreadDomains encapsulate active components only",
						sub.Kind(), sub.Name()),
					"move the component into a MemoryArea or a functional composite")
			}
		}
		// RT06: priority band.
		prio := sched.Priority(d.Priority)
		switch d.Kind {
		case model.RegularThread:
			if !prio.Valid() || prio.RealTime() {
				v.add("RT06", Error, td.Name(),
					fmt.Sprintf("regular thread domain has priority %d outside the regular band [%d,%d]",
						d.Priority, sched.MinPriority, sched.MaxRegularPriority), "")
			}
		default:
			if !prio.RealTime() {
				v.add("RT06", Error, td.Name(),
					fmt.Sprintf("%s thread domain has priority %d outside the real-time band [%d,%d]",
						d.Kind, d.Priority, sched.MinRTPriority, sched.MaxPriority), "")
			}
		}
		// RT03: NHRT domains must not resolve to heap areas.
		if d.Kind == model.NoHeapRealtimeThread {
			if ma, err := v.arch.EffectiveMemoryArea(td); err == nil && ma.Area().Kind == model.HeapMemory {
				v.add("RT03", Error, td.Name(),
					fmt.Sprintf("NHRT thread domain is deployed in heap MemoryArea %q", ma.Name()),
					"deploy the domain in immortal or scoped memory")
			}
			for _, sub := range td.Subs() {
				ma, err := v.arch.EffectiveMemoryArea(sub)
				if err != nil {
					continue // RT04 reports it
				}
				if ma.Area().Kind == model.HeapMemory {
					v.add("RT03", Error, sub.Name(),
						fmt.Sprintf("component of NHRT domain %q resolves to heap MemoryArea %q",
							td.Name(), ma.Name()),
						"allocate the component in immortal or scoped memory")
				}
			}
		}
	}
}

// --- memory areas ---------------------------------------------------------------

func (v *validator) checkMemoryAreas() {
	for _, ma := range v.arch.ComponentsOfKind(model.MemoryArea) {
		kind := ma.Area().Kind
		if kind == model.ScopedMemory {
			continue // scoped areas nest arbitrarily
		}
		for _, s := range ma.Supers() {
			if s.Kind() == model.MemoryArea && s.Area().Kind == model.ScopedMemory {
				v.add("RT09", Error, ma.Name(),
					fmt.Sprintf("%s MemoryArea is nested inside scoped area %q", kind, s.Name()),
					"heap and immortal memory are roots of the memory hierarchy")
			}
		}
	}
}

// --- functional components ---------------------------------------------------

func (v *validator) checkFunctional() {
	for _, c := range v.arch.Components() {
		switch c.Kind() {
		case model.Active:
			if _, err := v.arch.EffectiveThreadDomain(c); err != nil {
				v.add("RT01", Error, c.Name(), err.Error(),
					"deploy the component in exactly one ThreadDomain")
			}
			v.checkPrimitive(c)
		case model.Passive:
			v.checkPrimitive(c)
		}
	}
}

func (v *validator) checkPrimitive(c *model.Component) {
	if _, err := v.arch.EffectiveMemoryArea(c); err != nil {
		v.add("RT04", Error, c.Name(), err.Error(),
			"deploy the component (or its ThreadDomain) in a MemoryArea")
	}
	if c.Content() == "" {
		v.add("RT11", Warning, c.Name(),
			"primitive component has no content class; infrastructure generation will emit a stub", "")
	}
}

// --- bindings -------------------------------------------------------------------

func (v *validator) checkBindings() {
	for _, b := range v.arch.Bindings() {
		subject := b.String()
		cli, _ := v.arch.Component(b.Client.Component)
		srv, _ := v.arch.Component(b.Server.Component)
		cliArea, errC := v.arch.EffectiveMemoryArea(cli)
		srvArea, errS := v.arch.EffectiveMemoryArea(srv)
		if errC != nil || errS != nil {
			continue // RT04 reports the missing deployment
		}
		x := patterns.Crossing{Client: cliArea, Server: srvArea}

		// RT07: pattern presence and applicability.
		pat, err := patterns.ParseKind(b.Pattern)
		if err != nil {
			v.add("RT07", Error, subject, err.Error(),
				fmt.Sprintf("use pattern %q", patterns.Select(x, b.Protocol)))
		} else if err := patterns.Legal(pat, x, b.Protocol); err != nil {
			sev := Error
			suggestion := ""
			if pat == patterns.None && x.Crosses() {
				// Missing pattern: the validator can choose one, as
				// the paper's design flow proposes solutions.
				suggestion = fmt.Sprintf("use pattern %q", patterns.Select(x, b.Protocol))
			}
			v.add("RT07", sev, subject, err.Error(), suggestion)
		}

		// RT08: no-heap clients must not call synchronously into heap.
		if td, err := v.arch.EffectiveThreadDomain(cli); err == nil &&
			td.Domain().Kind == model.NoHeapRealtimeThread &&
			srvArea.Area().Kind == model.HeapMemory &&
			b.Protocol == model.Synchronous {
			v.add("RT08", Error, subject,
				fmt.Sprintf("synchronous call from NHRT domain %q into heap-allocated %q", td.Name(), srv.Name()),
				"use an asynchronous binding with a non-heap buffer (deep-copy pattern)")
		}

		// RT10: async servers must be sporadic actives.
		if b.Protocol == model.Asynchronous {
			if srv.Kind() != model.Active {
				v.add("RT10", Error, subject,
					fmt.Sprintf("asynchronous binding terminates at %s component %q, which has no thread to process messages",
						srv.Kind(), srv.Name()),
					"make the server a sporadic active component")
			} else if srv.Activation().Kind != model.SporadicActivation {
				v.add("RT10", Warning, subject,
					fmt.Sprintf("asynchronous binding terminates at %s active component %q; arrivals will not trigger releases",
						srv.Activation().Kind, srv.Name()),
					"make the server sporadic so message arrivals release it")
			}
			v.checkRates(b, cli, srv, subject)
		}
	}
}

// checkRates applies RT13: a bounded buffer must absorb the worst-case
// arrival backlog implied by the endpoints' release parameters.
func (v *validator) checkRates(b *model.Binding, cli, srv *model.Component, subject string) {
	cliAct, srvAct := cli.Activation(), srv.Activation()
	if cliAct == nil || cliAct.Kind != model.PeriodicActivation || cliAct.Period <= 0 {
		return // only periodic producers have a statically known rate
	}
	if srvAct == nil {
		return
	}
	switch srvAct.Kind {
	case model.SporadicActivation:
		// A sporadic server's minimum interarrival time (its Period
		// field) defers releases: a producer faster than the MIT grows
		// the backlog without bound.
		if mit := srvAct.Period; mit > cliAct.Period {
			v.add("RT13", Warning, subject,
				fmt.Sprintf("producer period %v is shorter than the server's minimum interarrival time %v; the backlog grows without bound",
					cliAct.Period, mit),
				"lengthen the producer period, shorten the interarrival time, or accept message loss")
		}
	case model.PeriodicActivation:
		// A periodic server drains at its own period boundaries: the
		// buffer must hold one server period's worth of arrivals.
		if srvAct.Period <= 0 {
			return
		}
		backlog := int((srvAct.Period + cliAct.Period - 1) / cliAct.Period)
		if backlog > b.BufferSize {
			v.add("RT13", Warning, subject,
				fmt.Sprintf("up to %d messages arrive per server period %v but the buffer holds %d",
					backlog, srvAct.Period, b.BufferSize),
				fmt.Sprintf("raise bufferSize to at least %d", backlog))
		}
	}
}

// --- schedulability -----------------------------------------------------------

func (v *validator) checkSchedulability() {
	var tasks []analysis.Task
	for _, c := range v.arch.ComponentsOfKind(model.Active) {
		act := c.Activation()
		if act.Kind != model.PeriodicActivation || act.Cost <= 0 {
			continue
		}
		td, err := v.arch.EffectiveThreadDomain(c)
		if err != nil {
			continue
		}
		tasks = append(tasks, analysis.Task{
			Name:     c.Name(),
			Period:   act.Period,
			Cost:     act.Cost,
			Deadline: act.Deadline,
			Priority: td.Domain().Priority,
		})
	}
	if len(tasks) == 0 {
		return
	}
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Priority > tasks[j].Priority })
	rs, err := analysis.ResponseTimeAnalysis(tasks)
	if err != nil {
		v.add("RT12", Warning, v.arch.Name(),
			fmt.Sprintf("response-time analysis not applicable: %v", err), "")
		return
	}
	v.responses = make(map[string]analysis.Response, len(rs))
	for _, r := range rs {
		v.responses[r.Task] = r
		if !r.Schedulable {
			v.add("RT12", Error, r.Task,
				fmt.Sprintf("worst-case response %v exceeds deadline %v", r.WorstCase, r.Deadline),
				"raise the component's priority, lengthen its period, or reduce its cost")
		} else {
			v.add("RT12", Info, r.Task,
				fmt.Sprintf("schedulable: worst-case response %v within deadline %v", r.WorstCase, r.Deadline), "")
		}
	}
}

// --- binding contracts --------------------------------------------------------

// checkContracts applies RT16 (feasibility: a contract must be
// honourable by the architecture it is written against) and the
// architecture half of RT17 (enforceability: the admission gate must
// be deployable without breaking the client's timing model). It runs
// after checkSchedulability so latency budgets are judged against the
// worst-case responses, not just the isolated costs.
func (v *validator) checkContracts() {
	for _, b := range v.arch.Bindings() {
		c := b.Contract
		if c == nil {
			continue
		}
		subject := b.String()
		cli, _ := v.arch.Component(b.Client.Component)
		srv, _ := v.arch.Component(b.Server.Component)

		// RT16: the contracted burst must fit the buffer — otherwise
		// the gate admits messages the buffer then drops, and the
		// sender never learns which.
		if b.Protocol == model.Asynchronous && b.BufferSize > 0 && c.EffectiveBurst() > b.BufferSize {
			v.add("RT16", Error, subject,
				fmt.Sprintf("contracted burst %d exceeds the buffer capacity %d; admitted messages would be dropped silently",
					c.EffectiveBurst(), b.BufferSize),
				fmt.Sprintf("raise bufferSize to at least %d or lower the burst", c.EffectiveBurst()))
		}

		// RT16: the contracted rate must fit the server's processing
		// capacity, or the admitted traffic itself overloads it.
		if srv != nil && c.MaxRate > 0 {
			if act := srv.Activation(); act != nil && act.Cost > 0 {
				capacity := float64(time.Second) / float64(act.Cost)
				if c.MaxRate > capacity {
					v.add("RT16", Error, subject,
						fmt.Sprintf("contracted rate %g/s exceeds the server's processing capacity %.4g/s (cost %v per release)",
							c.MaxRate, capacity, act.Cost),
						"lower maxRate, or reduce the server's cost")
				}
			}
		}

		// RT16: the latency budget must cover what the server can
		// deliver — the worst-case response where analysis ran, the
		// bare cost otherwise.
		if c.LatencyBudget > 0 && srv != nil {
			if r, ok := v.responses[srv.Name()]; ok {
				if r.WorstCase > c.LatencyBudget {
					v.add("RT16", Error, subject,
						fmt.Sprintf("latency budget %v is below the server's worst-case response %v; the SLO is unmeetable by construction",
							c.LatencyBudget, r.WorstCase),
						"raise the budget above the worst-case response, or raise the server's priority")
				} else {
					v.add("RT16", Info, subject,
						fmt.Sprintf("latency budget %v covers the server's worst-case response %v",
							c.LatencyBudget, r.WorstCase), "")
				}
			} else if act := srv.Activation(); act != nil && act.Cost > c.LatencyBudget {
				v.add("RT16", Error, subject,
					fmt.Sprintf("latency budget %v is below the server's cost %v per release",
						c.LatencyBudget, act.Cost),
					"raise the budget above the server's cost")
			}
		}

		// RT17 (architecture half): a blocking gate makes the client
		// wait for admission capacity — a real-time client's WCET
		// analysis cannot absorb that wait.
		if c.Policy == model.Block && cli != nil {
			if td, err := v.arch.EffectiveThreadDomain(cli); err == nil {
				switch td.Domain().Kind {
				case model.RealtimeThread, model.NoHeapRealtimeThread:
					v.add("RT17", Error, subject,
						fmt.Sprintf("block overload policy would stall the %s client domain %q at the admission gate; its timing analysis cannot absorb the wait",
							td.Domain().Kind, td.Name()),
						"use the shed or degrade policy; real-time senders must learn of overload immediately")
				}
			}
		}
	}
}
