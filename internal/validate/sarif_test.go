package validate

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateSARIFGolden = flag.Bool("update", false, "rewrite the SARIF golden files from current output")

func TestEncodeSARIFRoundTrip(t *testing.T) {
	diags := []Diagnostic{
		{Rule: "SA05", Severity: Error, Subject: "A -> B -> A",
			Message: "static deadlock", Suggestion: "break the cycle",
			Pos: "/repo/examples/lintbad/main.go:42:7"},
		{Rule: "SA04", Severity: Warning, Message: "unregistered class",
			Pos: "/repo/examples/lintbad/main.go:9"},
		{Rule: "RT14", Severity: Info, Message: "architecture-level finding"},
	}
	var buf bytes.Buffer
	err := EncodeSARIF(&buf, diags, SARIFOptions{
		Base:     "/repo",
		RuleDocs: map[string]string{"SA05": "binding wait cycles"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription *struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region *struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema wrong: %s %s", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "soleil" {
		t.Errorf("default tool name: %q", run.Tool.Driver.Name)
	}
	if len(run.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(run.Results))
	}

	r0 := run.Results[0]
	if r0.RuleID != "SA05" || r0.Level != "error" {
		t.Errorf("result 0 shape: %+v", r0)
	}
	if !strings.Contains(r0.Message.Text, "static deadlock") ||
		!strings.Contains(r0.Message.Text, "break the cycle") {
		t.Errorf("message drops content: %q", r0.Message.Text)
	}
	if len(r0.Locations) != 1 {
		t.Fatalf("result 0 locations: %+v", r0.Locations)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "examples/lintbad/main.go" {
		t.Errorf("URI not relativized: %q", loc.ArtifactLocation.URI)
	}
	if loc.Region == nil || loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region lost position: %+v", loc.Region)
	}

	r1 := run.Results[1]
	if r1.Level != "warning" || r1.Locations[0].PhysicalLocation.Region.StartLine != 9 {
		t.Errorf("result 1 shape: %+v", r1)
	}
	r2 := run.Results[2]
	if r2.Level != "note" || len(r2.Locations) != 0 {
		t.Errorf("position-free diagnostic should have no locations: %+v", r2)
	}

	foundRule := false
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "SA05" && r.ShortDescription != nil && r.ShortDescription.Text == "binding wait cycles" {
			foundRule = true
		}
	}
	if !foundRule {
		t.Errorf("rule metadata missing: %+v", run.Tool.Driver.Rules)
	}
}

// TestEncodeSARIFGolden pins the exact serialized shape — runs,
// ruleIndex into the driver rule table, codeFlows/threadFlows built
// from Diagnostic.Flow — against committed golden logs, once with
// '/'-separated positions and once with Windows '\' positions. Both
// must come out with Base-relativized, slash-separated URIs. Rerun
// with -update after an intentional schema change.
func TestEncodeSARIFGolden(t *testing.T) {
	cases := []struct {
		name   string
		golden string
		opts   SARIFOptions
		diags  []Diagnostic
	}{
		{
			name:   "unix",
			golden: "sarif_unix.golden.json",
			opts: SARIFOptions{
				Tool: "soleil-vet",
				Base: "/repo",
				RuleDocs: map[string]string{
					"SA03": "calls that can block or stall an RT thread",
					"SA09": "end-to-end flow latency against contracted budgets",
				},
			},
			diags: []Diagnostic{
				{Rule: "SA03", Severity: Error, Subject: "(*pump).Invoke",
					Message:    "time.Sleep blocks a real-time thread",
					Suggestion: "use the periodic dispatcher",
					Pos:        "/repo/internal/pump/pump.go:42:7",
					Flow: []FlowStep{
						{Pos: "/repo/internal/pump/pump.go:30:2", Note: "(*pump).Invoke calls (*fileSink).Flush"},
						{Pos: "/repo/internal/sink/sink.go:12:2", Note: "(*fileSink).Flush sleeps"},
					}},
				{Rule: "SA05", Severity: Warning, Subject: "A -> B -> A",
					Message: "binding wait cycle"},
			},
		},
		{
			name:   "windows",
			golden: "sarif_windows.golden.json",
			opts: SARIFOptions{
				Tool: "soleil-vet",
				Base: `C:\repo`,
				RuleDocs: map[string]string{
					"SA09": "end-to-end flow latency against contracted budgets",
				},
			},
			diags: []Diagnostic{
				{Rule: "SA09", Severity: Error, Subject: "Panel -iFlow-> Pump -iIn-> Tank",
					Message: "end-to-end worst-case latency 46ms exceeds the contract's latencyBudget 1ms",
					Pos:     `C:\repo\examples\lintbad\main.go:88:2`,
					Flow: []FlowStep{
						{Pos: `C:\repo\examples\lintbad\main.go:70:2`, Note: "Pump: serve 1ms"},
						{Note: "Tank: queue 4×10ms + serve 5ms"},
					}},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := EncodeSARIF(&buf, tc.diags, tc.opts); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.golden)
			if *updateSARIFGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("SARIF output drifted from %s (rerun with -update if intentional)\ngot:\n%s\nwant:\n%s",
					path, buf.String(), want)
			}
		})
	}
}

func TestEncodeSARIFEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeSARIF(&buf, nil, SARIFOptions{Tool: "soleil-vet"}); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	runs := log["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("want 1 run, got %d", len(runs))
	}
	results := runs[0].(map[string]any)["results"].([]any)
	if len(results) != 0 {
		t.Errorf("nil diags must encode as an empty result list, got %v", results)
	}
}
