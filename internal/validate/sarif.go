package validate

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SARIF export: the same diagnostics EncodeJSON writes, rendered as a
// SARIF 2.1.0 log so CI systems (GitHub code scanning, most IDE SARIF
// viewers) can annotate findings in place. Only the stdlib is used;
// the structs below cover the subset of the schema the diagnostics
// need — one run, one tool, one result per diagnostic, with each
// result's ruleIndex pointing into the driver's rule table and any
// interprocedural call chain rendered as a codeFlow.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules,omitempty"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription *sarifMessage `json:"shortDescription,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
	CodeFlows []sarifCodeFlow `json:"codeFlows,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation *sarifPhysicalLocation `json:"physicalLocation,omitempty"`
	Message          *sarifMessage          `json:"message,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifCodeFlow struct {
	ThreadFlows []sarifThreadFlow `json:"threadFlows"`
}

type sarifThreadFlow struct {
	Locations []sarifThreadFlowLocation `json:"locations"`
}

type sarifThreadFlowLocation struct {
	Location sarifLocation `json:"location"`
}

// SARIFOptions configures EncodeSARIF.
type SARIFOptions struct {
	// Tool names the driver; empty means "soleil".
	Tool string
	// Base, when set, is stripped from diagnostic positions so the
	// artifact URIs are repository-relative (what GitHub code scanning
	// needs to place annotations).
	Base string
	// RuleDocs optionally maps rule ids to one-line descriptions,
	// emitted as the driver's rule metadata.
	RuleDocs map[string]string
}

// EncodeSARIF writes the diagnostics as a SARIF 2.1.0 log. Severity
// maps Error->error, Warning->warning, Info->note; positions of the
// form file:line:col become physical locations with the filename
// relativized against opts.Base. Diagnostics without a position (pure
// architecture findings) still appear, as location-free results, and
// diagnostics carrying a Flow gain a codeFlow whose threadFlow steps
// are the call chain from the entry point to the offending site. A
// nil slice encodes as a run with an empty result list.
func EncodeSARIF(w io.Writer, diags []Diagnostic, opts SARIFOptions) error {
	tool := opts.Tool
	if tool == "" {
		tool = "soleil"
	}
	ruleSet := map[string]bool{}
	for _, d := range diags {
		ruleSet[d.Rule] = true
	}
	ids := make([]string, 0, len(ruleSet))
	for id := range ruleSet {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	ruleIndex := make(map[string]int, len(ids))
	var rules []sarifRule
	for i, id := range ids {
		ruleIndex[id] = i
		r := sarifRule{ID: id}
		if doc := opts.RuleDocs[id]; doc != "" {
			r.ShortDescription = &sarifMessage{Text: doc}
		}
		rules = append(rules, r)
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		msg := d.Message
		if d.Suggestion != "" {
			msg += " (" + d.Suggestion + ")"
		}
		res := sarifResult{
			RuleID:    d.Rule,
			RuleIndex: ruleIndex[d.Rule],
			Level:     sarifLevel(d.Severity),
			Message:   sarifMessage{Text: msg},
		}
		if loc, ok := sarifLocationFor(d.Pos, opts.Base, nil); ok {
			res.Locations = []sarifLocation{loc}
		}
		if len(d.Flow) > 0 {
			steps := make([]sarifThreadFlowLocation, 0, len(d.Flow)+1)
			for _, s := range d.Flow {
				loc, _ := sarifLocationFor(s.Pos, opts.Base, &sarifMessage{Text: s.Note})
				steps = append(steps, sarifThreadFlowLocation{Location: loc})
			}
			// The chain ends where the finding is.
			end, _ := sarifLocationFor(d.Pos, opts.Base, &sarifMessage{Text: d.Message})
			steps = append(steps, sarifThreadFlowLocation{Location: end})
			res.CodeFlows = []sarifCodeFlow{{
				ThreadFlows: []sarifThreadFlow{{Locations: steps}},
			}}
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: tool, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func sarifLevel(s Severity) string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "note"
	}
}

// sarifLocationFor wraps sarifLocationOf into a full SARIF location
// carrying an optional step message. A message-only location (no
// parseable position) is still meaningful inside a threadFlow, so ok
// reports whether ANY of the two parts is present.
func sarifLocationFor(pos, base string, msg *sarifMessage) (sarifLocation, bool) {
	loc := sarifLocation{Message: msg}
	if uri, region, ok := sarifLocationOf(pos, base); ok {
		loc.PhysicalLocation = &sarifPhysicalLocation{
			ArtifactLocation: sarifArtifactLocation{URI: uri},
			Region:           region,
		}
	}
	return loc, loc.PhysicalLocation != nil || loc.Message != nil
}

// sarifLocationOf parses a rendered position ("file:line:col",
// "file:line", or a bare file) into a SARIF artifact URI plus region.
// The numeric suffixes are peeled from the right, so filenames
// containing colons — Windows drive letters — survive, and both '/'
// and '\' separated paths relativize against base and come out
// slash-separated, as SARIF URIs require.
func sarifLocationOf(pos, base string) (string, *sarifRegion, bool) {
	if pos == "" || pos == "-" {
		return "", nil, false
	}
	rest := pos
	var nums []int
	for len(nums) < 2 {
		i := strings.LastIndexByte(rest, ':')
		if i < 0 {
			break
		}
		n, err := strconv.Atoi(rest[i+1:])
		if err != nil {
			break
		}
		nums = append(nums, n)
		rest = rest[:i]
	}
	var region *sarifRegion
	switch {
	case len(nums) == 1 && nums[0] > 0:
		region = &sarifRegion{StartLine: nums[0]}
	case len(nums) == 2 && nums[1] > 0:
		region = &sarifRegion{StartLine: nums[1]}
		if nums[0] > 0 {
			region.StartColumn = nums[0]
		}
	}
	file := strings.ReplaceAll(rest, `\`, "/")
	if base != "" {
		b := strings.TrimRight(strings.ReplaceAll(base, `\`, "/"), "/")
		if b != "" && strings.HasPrefix(file, b+"/") {
			file = file[len(b)+1:]
		}
	}
	return file, region, true
}
