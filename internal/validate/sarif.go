package validate

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// SARIF export: the same diagnostics EncodeJSON writes, rendered as a
// minimal SARIF 2.1.0 log so CI systems (GitHub code scanning, most
// IDE SARIF viewers) can annotate findings in place. Only the stdlib
// is used; the structs below cover the subset of the schema the
// diagnostics need — one run, one tool, one result per diagnostic.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules,omitempty"`
}

type sarifRule struct {
	ID               string        `json:"id"`
	ShortDescription *sarifMessage `json:"shortDescription,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIFOptions configures EncodeSARIF.
type SARIFOptions struct {
	// Tool names the driver; empty means "soleil".
	Tool string
	// Base, when set, is stripped from diagnostic positions so the
	// artifact URIs are repository-relative (what GitHub code scanning
	// needs to place annotations).
	Base string
	// RuleDocs optionally maps rule ids to one-line descriptions,
	// emitted as the driver's rule metadata.
	RuleDocs map[string]string
}

// EncodeSARIF writes the diagnostics as a SARIF 2.1.0 log. Severity
// maps Error->error, Warning->warning, Info->note; positions of the
// form file:line:col become physical locations with the filename
// relativized against opts.Base. Diagnostics without a position (pure
// architecture findings) still appear, as location-free results. A nil
// slice encodes as a run with an empty result list.
func EncodeSARIF(w io.Writer, diags []Diagnostic, opts SARIFOptions) error {
	tool := opts.Tool
	if tool == "" {
		tool = "soleil"
	}
	results := make([]sarifResult, 0, len(diags))
	ruleSet := map[string]bool{}
	for _, d := range diags {
		ruleSet[d.Rule] = true
		msg := d.Message
		if d.Suggestion != "" {
			msg += " (" + d.Suggestion + ")"
		}
		res := sarifResult{
			RuleID:  d.Rule,
			Level:   sarifLevel(d.Severity),
			Message: sarifMessage{Text: msg},
		}
		if uri, region, ok := sarifLocationOf(d.Pos, opts.Base); ok {
			res.Locations = []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri},
					Region:           region,
				},
			}}
		}
		results = append(results, res)
	}
	ids := make([]string, 0, len(ruleSet))
	for id := range ruleSet {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var rules []sarifRule
	for _, id := range ids {
		r := sarifRule{ID: id}
		if doc := opts.RuleDocs[id]; doc != "" {
			r.ShortDescription = &sarifMessage{Text: doc}
		}
		rules = append(rules, r)
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: tool, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func sarifLevel(s Severity) string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "note"
	}
}

// sarifLocationOf parses a "file:line:col" (or "file:line") position
// into a SARIF physical location, relativizing the file against base.
// Windows-style drive letters are not handled — positions come from
// go/token on the build host.
func sarifLocationOf(pos, base string) (string, *sarifRegion, bool) {
	if pos == "" || pos == "-" {
		return "", nil, false
	}
	file := pos
	var region *sarifRegion
	if i := strings.Index(pos, ":"); i > 0 {
		file = pos[:i]
		rest := strings.Split(pos[i+1:], ":")
		if line, err := strconv.Atoi(rest[0]); err == nil && line > 0 {
			region = &sarifRegion{StartLine: line}
			if len(rest) > 1 {
				if col, err := strconv.Atoi(rest[1]); err == nil && col > 0 {
					region.StartColumn = col
				}
			}
		}
	}
	if base != "" {
		if rel, err := filepath.Rel(base, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file), region, true
}
