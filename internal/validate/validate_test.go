package validate

import (
	"strings"
	"testing"
	"time"

	"soleil/internal/fixture"
	"soleil/internal/model"
)

const ms = time.Millisecond

func TestMotivationExampleIsCompliant(t *testing.T) {
	a, err := fixture.MotivationExample()
	if err != nil {
		t.Fatal(err)
	}
	r := Validate(a)
	if !r.OK() {
		t.Fatalf("motivation example rejected:\n%v", r.Errors())
	}
}

// scaffold builds a minimal compliant architecture: one sporadic
// active in an RT ThreadDomain inside an immortal MemoryArea.
func scaffold(t *testing.T) (*model.Architecture, *model.Component, *model.Component, *model.Component) {
	t.Helper()
	a := model.NewArchitecture("t")
	act, err := a.NewActive("act", model.Activation{Kind: model.SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	if err := act.SetContent("ActImpl"); err != nil {
		t.Fatal(err)
	}
	td, err := a.NewThreadDomain("td", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
	if err != nil {
		t.Fatal(err)
	}
	imm, err := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(imm, td); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, act); err != nil {
		t.Fatal(err)
	}
	return a, act, td, imm
}

func hasError(r Report, rule, subjectFragment string) bool {
	for _, d := range r.ByRule(rule) {
		if d.Severity == Error && strings.Contains(d.Subject, subjectFragment) {
			return true
		}
	}
	return false
}

func TestScaffoldCompliant(t *testing.T) {
	a, _, _, _ := scaffold(t)
	if r := Validate(a); !r.OK() {
		t.Fatalf("scaffold rejected: %v", r.Errors())
	}
}

func TestRT01ActiveWithoutDomain(t *testing.T) {
	a, _, _, imm := scaffold(t)
	lonely, _ := a.NewActive("lonely", model.Activation{Kind: model.SporadicActivation})
	_ = lonely.SetContent("X")
	if err := a.AddChild(imm, lonely); err != nil {
		t.Fatal(err)
	}
	r := Validate(a)
	if !hasError(r, "RT01", "lonely") {
		t.Fatalf("missing RT01: %v", r.Diagnostics)
	}
}

func TestRT02NestedThreadDomains(t *testing.T) {
	a, _, td, _ := scaffold(t)
	td2, _ := a.NewThreadDomain("td2", model.DomainDesc{Kind: model.RealtimeThread, Priority: 21})
	if err := a.AddChild(td, td2); err != nil {
		t.Fatal(err)
	}
	if r := Validate(a); !hasError(r, "RT02", "td2") {
		t.Fatalf("missing RT02: %v", r.Diagnostics)
	}
}

func TestRT03NHRTInHeap(t *testing.T) {
	a := model.NewArchitecture("t")
	heap, _ := a.NewMemoryArea("heap", model.AreaDesc{Kind: model.HeapMemory})
	td, _ := a.NewThreadDomain("nhrtd", model.DomainDesc{Kind: model.NoHeapRealtimeThread, Priority: 30})
	act, _ := a.NewActive("act", model.Activation{Kind: model.SporadicActivation})
	_ = act.SetContent("X")
	if err := a.AddChild(heap, td); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, act); err != nil {
		t.Fatal(err)
	}
	r := Validate(a)
	if !hasError(r, "RT03", "nhrtd") {
		t.Fatalf("missing RT03 for domain: %v", r.Diagnostics)
	}
	if !hasError(r, "RT03", "act") {
		t.Fatalf("missing RT03 for member: %v", r.Diagnostics)
	}
}

func TestRT04UndeployedPrimitive(t *testing.T) {
	a, _, _, _ := scaffold(t)
	p, _ := a.NewPassive("floating")
	_ = p.SetContent("X")
	if r := Validate(a); !hasError(r, "RT04", "floating") {
		t.Fatalf("missing RT04: %v", r.Diagnostics)
	}
}

func TestRT05PassiveInThreadDomain(t *testing.T) {
	a, _, td, imm := scaffold(t)
	p, _ := a.NewPassive("p")
	_ = p.SetContent("X")
	if err := a.AddChild(td, p); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(imm, p); err != nil {
		t.Fatal(err)
	}
	if r := Validate(a); !hasError(r, "RT05", "td") {
		t.Fatalf("missing RT05: %v", r.Diagnostics)
	}
}

func TestRT06PriorityBands(t *testing.T) {
	a := model.NewArchitecture("t")
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	regHigh, _ := a.NewThreadDomain("regHigh", model.DomainDesc{Kind: model.RegularThread, Priority: 20})
	rtLow, _ := a.NewThreadDomain("rtLow", model.DomainDesc{Kind: model.RealtimeThread, Priority: 5})
	nhrtZero, _ := a.NewThreadDomain("nhrtZero", model.DomainDesc{Kind: model.NoHeapRealtimeThread})
	for _, td := range []*model.Component{regHigh, rtLow, nhrtZero} {
		if err := a.AddChild(imm, td); err != nil {
			t.Fatal(err)
		}
	}
	r := Validate(a)
	for _, name := range []string{"regHigh", "rtLow", "nhrtZero"} {
		if !hasError(r, "RT06", name) {
			t.Errorf("missing RT06 for %s: %v", name, r.Diagnostics)
		}
	}
}

// crossBindingFixture builds client+server actives in two areas with a
// binding using the given protocol/pattern.
func crossBindingFixture(t *testing.T, proto model.Protocol, buffer int, pattern string, serverScoped bool) *model.Architecture {
	t.Helper()
	a := model.NewArchitecture("t")
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	var srvArea *model.Component
	if serverScoped {
		srvArea, _ = a.NewMemoryArea("scope", model.AreaDesc{Kind: model.ScopedMemory, Size: 1024})
	} else {
		srvArea, _ = a.NewMemoryArea("heap", model.AreaDesc{Kind: model.HeapMemory})
	}
	tdc, _ := a.NewThreadDomain("tdc", model.DomainDesc{Kind: model.NoHeapRealtimeThread, Priority: 30})
	tds, _ := a.NewThreadDomain("tds", model.DomainDesc{Kind: model.RegularThread, Priority: 5})
	cli, _ := a.NewActive("cli", model.Activation{Kind: model.SporadicActivation})
	srv, _ := a.NewActive("srv", model.Activation{Kind: model.SporadicActivation})
	_ = cli.SetContent("C")
	_ = srv.SetContent("S")
	if err := cli.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "I"}); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "I"}); err != nil {
		t.Fatal(err)
	}
	for _, e := range []struct{ p, c *model.Component }{
		{imm, tdc}, {tdc, cli}, {srvArea, tds}, {tds, srv},
	} {
		if err := a.AddChild(e.p, e.c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Bind(model.Binding{
		Client:   model.Endpoint{Component: "cli", Interface: "out"},
		Server:   model.Endpoint{Component: "srv", Interface: "in"},
		Protocol: proto, BufferSize: buffer, Pattern: pattern,
	}); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRT07MissingPattern(t *testing.T) {
	a := crossBindingFixture(t, model.Asynchronous, 8, "", false)
	r := Validate(a)
	if !hasError(r, "RT07", "cli.out") {
		t.Fatalf("missing RT07: %v", r.Diagnostics)
	}
	// The suggestion proposes deep-copy for an async crossing.
	found := false
	for _, d := range r.ByRule("RT07") {
		if strings.Contains(d.Suggestion, "deep-copy") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no deep-copy suggestion: %v", r.ByRule("RT07"))
	}
}

func TestRT07UnknownPattern(t *testing.T) {
	a := crossBindingFixture(t, model.Asynchronous, 8, "smoke", false)
	if r := Validate(a); !hasError(r, "RT07", "cli.out") {
		t.Fatalf("missing RT07: %v", r.Diagnostics)
	}
}

func TestRT07InapplicablePattern(t *testing.T) {
	// scope-enter on an async binding is inapplicable.
	a := crossBindingFixture(t, model.Asynchronous, 8, "scope-enter", true)
	if r := Validate(a); !hasError(r, "RT07", "cli.out") {
		t.Fatalf("missing RT07: %v", r.Diagnostics)
	}
}

func TestRT07GoodPattern(t *testing.T) {
	a := crossBindingFixture(t, model.Asynchronous, 8, "deep-copy", false)
	if r := Validate(a); len(r.ByRule("RT07")) != 0 {
		t.Fatalf("spurious RT07: %v", r.ByRule("RT07"))
	}
}

func TestRT08NHRTSyncIntoHeap(t *testing.T) {
	a := crossBindingFixture(t, model.Synchronous, 0, "deep-copy", false)
	r := Validate(a)
	if !hasError(r, "RT08", "cli.out") {
		t.Fatalf("missing RT08: %v", r.Diagnostics)
	}
	// The same reach implemented asynchronously is fine.
	a2 := crossBindingFixture(t, model.Asynchronous, 8, "deep-copy", false)
	if r := Validate(a2); len(r.ByRule("RT08")) != 0 {
		t.Fatalf("spurious RT08: %v", r.ByRule("RT08"))
	}
}

func TestRT09HeapInsideScope(t *testing.T) {
	a := model.NewArchitecture("t")
	scope, _ := a.NewMemoryArea("scope", model.AreaDesc{Kind: model.ScopedMemory, Size: 1024})
	heap, _ := a.NewMemoryArea("heap", model.AreaDesc{Kind: model.HeapMemory})
	if err := a.AddChild(scope, heap); err != nil {
		t.Fatal(err)
	}
	if r := Validate(a); !hasError(r, "RT09", "heap") {
		t.Fatalf("missing RT09: %v", r.Diagnostics)
	}
}

func TestRT10AsyncIntoPassive(t *testing.T) {
	a, act, _, imm := scaffold(t)
	if err := act.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "I"}); err != nil {
		t.Fatal(err)
	}
	p, _ := a.NewPassive("p")
	_ = p.SetContent("P")
	if err := p.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "I"}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(imm, p); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Bind(model.Binding{
		Client:   model.Endpoint{Component: "act", Interface: "out"},
		Server:   model.Endpoint{Component: "p", Interface: "in"},
		Protocol: model.Asynchronous, BufferSize: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if r := Validate(a); !hasError(r, "RT10", "act.out") {
		t.Fatalf("missing RT10: %v", r.Diagnostics)
	}
}

func TestRT11MissingContentIsWarning(t *testing.T) {
	a, _, td, imm := scaffold(t)
	bare, _ := a.NewActive("bare", model.Activation{Kind: model.SporadicActivation})
	td2, _ := a.NewThreadDomain("td2", model.DomainDesc{Kind: model.RealtimeThread, Priority: 19})
	if err := a.AddChild(imm, td2); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td2, bare); err != nil {
		t.Fatal(err)
	}
	_ = td
	r := Validate(a)
	if !r.OK() {
		t.Fatalf("warnings must not fail validation: %v", r.Errors())
	}
	warned := false
	for _, d := range r.ByRule("RT11") {
		if d.Severity == Warning && d.Subject == "bare" {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("missing RT11 warning: %v", r.Diagnostics)
	}
}

func TestRT12Schedulability(t *testing.T) {
	mk := func(cost1, cost2 time.Duration) Report {
		a := model.NewArchitecture("t")
		imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
		td1, _ := a.NewThreadDomain("td1", model.DomainDesc{Kind: model.NoHeapRealtimeThread, Priority: 30})
		td2, _ := a.NewThreadDomain("td2", model.DomainDesc{Kind: model.NoHeapRealtimeThread, Priority: 25})
		c1, _ := a.NewActive("c1", model.Activation{Kind: model.PeriodicActivation, Period: 10 * ms, Cost: cost1})
		c2, _ := a.NewActive("c2", model.Activation{Kind: model.PeriodicActivation, Period: 20 * ms, Cost: cost2})
		_ = c1.SetContent("X")
		_ = c2.SetContent("Y")
		for _, e := range []struct{ p, c *model.Component }{{imm, td1}, {imm, td2}, {td1, c1}, {td2, c2}} {
			if err := a.AddChild(e.p, e.c); err != nil {
				t.Fatal(err)
			}
		}
		return Validate(a)
	}
	if r := mk(2*ms, 4*ms); !r.OK() {
		t.Fatalf("feasible set rejected: %v", r.Errors())
	} else if len(r.ByRule("RT12")) != 2 {
		t.Fatalf("expected RT12 info findings: %v", r.ByRule("RT12"))
	}
	if r := mk(8*ms, 15*ms); r.OK() {
		t.Fatal("overloaded set accepted")
	} else if !hasError(r, "RT12", "c2") {
		t.Fatalf("missing RT12: %v", r.Diagnostics)
	}
}

func TestApplySuggestedPatterns(t *testing.T) {
	a := crossBindingFixture(t, model.Asynchronous, 8, "", false)
	changed, err := ApplySuggestedPatterns(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0].Pattern != "deep-copy" {
		t.Fatalf("changed = %v", changed)
	}
	if r := Validate(a); !r.OK() {
		t.Fatalf("architecture still invalid after applying suggestions: %v", r.Errors())
	}
	// Idempotent.
	changed, err = ApplySuggestedPatterns(a)
	if err != nil || len(changed) != 0 {
		t.Fatalf("second apply = %v, %v", changed, err)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "RT01", Severity: Error, Subject: "x", Message: "m", Suggestion: "s"}
	got := d.String()
	for _, frag := range []string{"RT01", "error", "x", "m", "s"} {
		if !strings.Contains(got, frag) {
			t.Errorf("String() = %q missing %q", got, frag)
		}
	}
	if Info.String() != "info" || Warning.String() != "warning" {
		t.Error("severity strings")
	}
}

func TestRuleCatalogComplete(t *testing.T) {
	for i := 1; i <= 13; i++ {
		id := "RT" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		if _, ok := Rules[id]; !ok {
			t.Errorf("rule %s undocumented", id)
		}
	}
}
