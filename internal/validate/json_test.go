package validate

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestEncodeJSONSchema(t *testing.T) {
	diags := []Diagnostic{
		{Rule: "RT07", Severity: Error, Subject: "a.i -> b.i (synchronous)",
			Message: "needs a pattern", Suggestion: `use pattern "scope-enter"`},
		{Rule: "SA03", Severity: Warning, Subject: "(*T).Invoke",
			Message: "may block", Pos: "file.go:10:2"},
	}
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	// Both rule families round-trip through the one schema.
	var back []Diagnostic
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || !reflect.DeepEqual(back[0], diags[0]) || !reflect.DeepEqual(back[1], diags[1]) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	// Severities encode as names, not numbers.
	if !strings.Contains(buf.String(), `"severity": "error"`) {
		t.Fatalf("severity not encoded by name:\n%s", buf.String())
	}
	// Empty fields stay out of the wire form.
	if strings.Contains(buf.String(), `"pos": ""`) || strings.Contains(buf.String(), `"suggestion": ""`) {
		t.Fatalf("empty optional fields encoded:\n%s", buf.String())
	}
}

func TestEncodeJSONNil(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("nil diagnostics encoded as %q, want []", got)
	}
}

func TestParseSeverityAndMax(t *testing.T) {
	for in, want := range map[string]Severity{
		"info": Info, "warning": Warning, "warn": Warning, "ERROR": Error,
	} {
		got, err := ParseSeverity(in)
		if err != nil || got != want {
			t.Errorf("ParseSeverity(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity(fatal) succeeded")
	}
	if got := MaxSeverity([]Diagnostic{{Severity: Info}, {Severity: Error}, {Severity: Warning}}); got != Error {
		t.Errorf("MaxSeverity = %v, want error", got)
	}
	if got := MaxSeverity(nil); got != 0 {
		t.Errorf("MaxSeverity(nil) = %v, want 0", got)
	}
}
