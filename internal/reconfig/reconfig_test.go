package reconfig

import (
	"strings"
	"testing"

	"soleil/internal/assembly"
	"soleil/internal/fixture"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/thread"
	"soleil/internal/scenario"
)

// deployWithBackup deploys the motivation example extended with a
// BackupConsole (immortal-resident, same IConsole interface).
func deployWithBackup(t *testing.T, mode assembly.Mode) (*assembly.System, *scenario.Contents, *scenario.Console) {
	t.Helper()
	arch, err := fixture.MotivationExample()
	if err != nil {
		t.Fatal(err)
	}
	backup, err := arch.NewPassive("BackupConsole")
	if err != nil {
		t.Fatal(err)
	}
	if err := backup.AddInterface(model.Interface{
		Name: "iConsole", Role: model.ServerRole, Signature: fixture.IConsole,
	}); err != nil {
		t.Fatal(err)
	}
	if err := backup.SetContent("BackupConsoleImpl"); err != nil {
		t.Fatal(err)
	}
	imm, _ := arch.Component(fixture.AreaImm1)
	if err := arch.AddChild(imm, backup); err != nil {
		t.Fatal(err)
	}

	contents := scenario.NewContents()
	backupConsole := scenario.NewConsole()
	reg := assembly.NewRegistry()
	if err := contents.Register(reg); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("BackupConsoleImpl", func() membrane.Content { return backupConsole }); err != nil {
		t.Fatal(err)
	}
	sys, err := assembly.Deploy(arch, assembly.Config{Mode: mode, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	return sys, contents, backupConsole
}

// driveTransactions runs n complete iterations on the dataplane.
func driveTransactions(t *testing.T, sys *assembly.System, n int) {
	t.Helper()
	ctx, err := memory.NewContext(sys.MemoryRuntime().Immortal(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	env := thread.NewEnv(nil, ctx)
	line, _ := sys.Node(fixture.ProductionLine)
	monitor, _ := sys.Node(fixture.MonitoringSystem)
	audit, _ := sys.Node(fixture.Audit)
	for i := 0; i < n; i++ {
		if err := line.Activate(env); err != nil {
			t.Fatalf("transaction %d: %v", i, err)
		}
		if _, err := monitor.Deliver(env); err != nil {
			t.Fatalf("transaction %d: %v", i, err)
		}
		if _, err := audit.Deliver(env); err != nil {
			t.Fatalf("transaction %d: %v", i, err)
		}
	}
}

func TestRebindRedirectsAlerts(t *testing.T) {
	for _, mode := range []assembly.Mode{assembly.Soleil, assembly.MergeAll} {
		t.Run(mode.String(), func(t *testing.T) {
			sys, contents, backup := deployWithBackup(t, mode)
			mgr, err := NewManager(sys)
			if err != nil {
				t.Fatal(err)
			}
			// First anomaly (seq 15) goes to the primary console.
			driveTransactions(t, sys, 16)
			if contents.Console.Displayed() != 1 || backup.Displayed() != 0 {
				t.Fatalf("pre-rebind displays: primary %d, backup %d",
					contents.Console.Displayed(), backup.Displayed())
			}
			// Rebind the console route, then the next anomaly (seq 31)
			// lands on the backup.
			if err := mgr.Rebind(fixture.MonitoringSystem, "iConsole", "BackupConsole", "iConsole"); err != nil {
				t.Fatal(err)
			}
			driveTransactions(t, sys, 16)
			if contents.Console.Displayed() != 1 {
				t.Fatalf("primary displays after rebind: %d", contents.Console.Displayed())
			}
			if backup.Displayed() != 1 {
				t.Fatalf("backup displays after rebind: %d", backup.Displayed())
			}
			h := mgr.History()
			if len(h) != 1 || h[0].Kind != "rebind" || h[0].Err != nil {
				t.Fatalf("history = %+v", h)
			}
		})
	}
}

func TestRebindRefusedInUltraMerge(t *testing.T) {
	sys, _, _ := deployWithBackup(t, assembly.UltraMerge)
	mgr, err := NewManager(sys)
	if err != nil {
		t.Fatal(err)
	}
	err = mgr.Rebind(fixture.MonitoringSystem, "iConsole", "BackupConsole", "iConsole")
	if err == nil {
		t.Fatal("rebind accepted in ULTRA-MERGE")
	}
	if !strings.Contains(err.Error(), "static") {
		t.Fatalf("err = %v", err)
	}
	h := mgr.History()
	if len(h) != 1 || h[0].Err == nil {
		t.Fatalf("failed operation not recorded: %+v", h)
	}
}

func TestRebindValidation(t *testing.T) {
	sys, _, _ := deployWithBackup(t, assembly.Soleil)
	mgr, _ := NewManager(sys)
	cases := []struct{ c, ci, s, si string }{
		{"ghost", "iConsole", "BackupConsole", "iConsole"},
		{fixture.MonitoringSystem, "ghost", "BackupConsole", "iConsole"},
		{fixture.MonitoringSystem, "iConsole", "ghost", "iConsole"},
		{fixture.MonitoringSystem, "iConsole", "BackupConsole", "ghost"},
		// Signature mismatch: iLog (ILog) to a console (IConsole).
		{fixture.MonitoringSystem, "iLog", "BackupConsole", "iConsole"},
		// Role mismatch: server interface used as client.
		{fixture.Console, "iConsole", "BackupConsole", "iConsole"},
	}
	for i, c := range cases {
		if err := mgr.Rebind(c.c, c.ci, c.s, c.si); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRebindRefusesNHRTIntoHeap(t *testing.T) {
	// Route the NHRT monitoring system's console interface into a
	// heap-allocated server: must be refused (RT08 at runtime).
	arch, err := fixture.MotivationExample()
	if err != nil {
		t.Fatal(err)
	}
	heapSrv, _ := arch.NewPassive("HeapConsole")
	if err := heapSrv.AddInterface(model.Interface{
		Name: "iConsole", Role: model.ServerRole, Signature: fixture.IConsole,
	}); err != nil {
		t.Fatal(err)
	}
	_ = heapSrv.SetContent("ConsoleImpl")
	h1, _ := arch.Component(fixture.AreaH1)
	if err := arch.AddChild(h1, heapSrv); err != nil {
		t.Fatal(err)
	}
	contents := scenario.NewContents()
	reg := assembly.NewRegistry()
	if err := contents.Register(reg); err != nil {
		t.Fatal(err)
	}
	sys, err := assembly.Deploy(arch, assembly.Config{Mode: assembly.Soleil, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	mgr, _ := NewManager(sys)
	err = mgr.Rebind(fixture.MonitoringSystem, "iConsole", "HeapConsole", "iConsole")
	if err == nil {
		t.Fatal("NHRT->heap rebind accepted")
	}
	if !strings.Contains(err.Error(), "NHRT") {
		t.Fatalf("err = %v", err)
	}
}

func TestLifecycleControl(t *testing.T) {
	sys, contents, _ := deployWithBackup(t, assembly.Soleil)
	mgr, _ := NewManager(sys)

	if err := mgr.Stop(fixture.Audit); err != nil {
		t.Fatal(err)
	}
	started, err := sys.ComponentStarted(fixture.Audit)
	if err != nil || started {
		t.Fatalf("audit started = %v, %v", started, err)
	}
	// A stopped audit refuses deliveries: the transaction fails at the
	// audit hop.
	ctx, err := memory.NewContext(sys.MemoryRuntime().Immortal(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	env := thread.NewEnv(nil, ctx)
	line, _ := sys.Node(fixture.ProductionLine)
	monitor, _ := sys.Node(fixture.MonitoringSystem)
	audit, _ := sys.Node(fixture.Audit)
	if err := line.Activate(env); err != nil {
		t.Fatal(err)
	}
	if _, err := monitor.Deliver(env); err != nil {
		t.Fatal(err)
	}
	if _, err := audit.Deliver(env); err == nil {
		t.Fatal("stopped audit accepted delivery")
	}
	// The refused message was consumed by the failed delivery (RTSJ
	// arrival semantics). Restart and run a fresh transaction to
	// confirm recovery.
	if err := mgr.Start(fixture.Audit); err != nil {
		t.Fatal(err)
	}
	if err := line.Activate(env); err != nil {
		t.Fatal(err)
	}
	if _, err := monitor.Deliver(env); err != nil {
		t.Fatal(err)
	}
	if _, err := audit.Deliver(env); err != nil {
		t.Fatal(err)
	}
	if contents.Audit.Logged() == 0 {
		t.Fatal("no records after restart")
	}
	if got := len(mgr.History()); got != 2 {
		t.Fatalf("history = %d", got)
	}
}

func TestLifecycleRefusedInMergedModes(t *testing.T) {
	sys, _, _ := deployWithBackup(t, assembly.MergeAll)
	mgr, _ := NewManager(sys)
	if err := mgr.Stop(fixture.Audit); err == nil {
		t.Fatal("lifecycle control accepted in MERGE-ALL")
	}
}

func TestIntrospect(t *testing.T) {
	sys, _, _ := deployWithBackup(t, assembly.Soleil)
	mgr, _ := NewManager(sys)
	snap := mgr.Introspect()
	if snap.Mode != assembly.Soleil {
		t.Fatal("mode")
	}
	if len(snap.Components) != 5 {
		t.Fatalf("components = %d", len(snap.Components))
	}
	var pl *ComponentState
	for i := range snap.Components {
		if snap.Components[i].Name == fixture.ProductionLine {
			pl = &snap.Components[i]
		}
	}
	if pl == nil || !pl.HasMembrane || !pl.Started {
		t.Fatalf("production line state = %+v", pl)
	}
	joined := strings.Join(pl.Controllers, ",")
	for _, want := range []string{"lifecycle-controller", "binding-controller", "threaddomain-controller"} {
		if !strings.Contains(joined, want) {
			t.Errorf("controllers missing %s: %v", want, pl.Controllers)
		}
	}
	if len(snap.Domains) != 3 || len(snap.Areas) != 3 {
		t.Fatalf("non-functional: %v / %v", snap.Domains, snap.Areas)
	}
	if len(snap.Composites) != 1 || snap.Composites[0] != "FactoryMonitoring" {
		t.Fatalf("composites: %v", snap.Composites)
	}

	// Merged modes expose the reduced view.
	sys2, _, _ := deployWithBackup(t, assembly.MergeAll)
	mgr2, _ := NewManager(sys2)
	snap2 := mgr2.Introspect()
	for _, c := range snap2.Components {
		if c.HasMembrane {
			t.Fatalf("merged mode reports a membrane on %s", c.Name)
		}
	}
	if len(snap2.Domains) != 0 {
		t.Fatal("merged mode reified domains")
	}
}

func TestNewManagerNil(t *testing.T) {
	if _, err := NewManager(nil); err == nil {
		t.Fatal("nil system accepted")
	}
}
