// Package reconfig implements the paper's runtime adaptability
// support (Sect. 4.2): introspection of the deployed system and a
// disciplined reconfiguration manager that applies lifecycle and
// rebinding operations under RTSJ-safety checks, keeping an audit
// history of every adaptation.
//
// Following the paper, the support is deliberately *basic*: only
// operations whose RTSJ conformance can be re-established are
// accepted (the full treatment of adapting live real-time code is the
// paper's declared future work).
package reconfig

import (
	"fmt"
	"sync"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/model"
)

// Operation is one recorded adaptation.
type Operation struct {
	At     time.Time
	Kind   string // "rebind", "start", "stop"
	Detail string
	Err    error
}

// Manager drives runtime adaptation of a deployed system.
type Manager struct {
	sys *assembly.System

	mu      sync.Mutex
	history []Operation
}

// NewManager creates a reconfiguration manager for sys.
func NewManager(sys *assembly.System) (*Manager, error) {
	if sys == nil {
		return nil, fmt.Errorf("reconfig: nil system")
	}
	return &Manager{sys: sys}, nil
}

func (m *Manager) record(kind, detail string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.history = append(m.history, Operation{At: time.Now(), Kind: kind, Detail: detail, Err: err})
}

// History returns the recorded adaptations in order.
func (m *Manager) History() []Operation {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Operation, len(m.history))
	copy(out, m.history)
	return out
}

// Rebind re-routes a synchronous client interface to a new server.
// The operation is validated against the architecture and the RTSJ
// rules (see assembly.System.RebindSync) and recorded.
func (m *Manager) Rebind(client, clientItf, server, serverItf string) error {
	err := m.sys.RebindSync(client, clientItf, server, serverItf)
	m.record("rebind", fmt.Sprintf("%s.%s -> %s.%s", client, clientItf, server, serverItf), err)
	return err
}

// Stop stops a component's lifecycle (SOLEIL mode): subsequent
// invocations are refused until Start.
func (m *Manager) Stop(component string) error {
	err := m.sys.SetStarted(component, false)
	m.record("stop", component, err)
	return err
}

// Start (re)starts a component's lifecycle (SOLEIL mode).
func (m *Manager) Start(component string) error {
	err := m.sys.SetStarted(component, true)
	m.record("start", component, err)
	return err
}

// Restart stops then starts a component — the supervisor's
// one-for-one recovery path. Starting clears a FAILED lifecycle
// state, so a component isolated by a fault interceptor comes back
// accepting invocations. The restart is recorded as one operation.
func (m *Manager) Restart(component string) error {
	err := m.sys.SetStarted(component, false)
	if err == nil {
		err = m.sys.SetStarted(component, true)
	}
	m.record("restart", component, err)
	return err
}

// ComponentState is the introspected state of one component.
type ComponentState struct {
	Name    string
	Kind    model.Kind
	Started bool
	// Failed reports the FAILED lifecycle state (a fault interceptor
	// isolated the component); FailureCause carries the recorded
	// cause.
	Failed       bool
	FailureCause error
	// HasMembrane reports whether the component's membrane is
	// reified (SOLEIL mode).
	HasMembrane bool
	// Controllers lists the membrane's control components.
	Controllers []string
}

// Snapshot is an introspection view of the deployed system.
type Snapshot struct {
	Mode       assembly.Mode
	Components []ComponentState
	// Domains, Areas and Composites list the reified structural
	// components (SOLEIL mode).
	Domains    []string
	Areas      []string
	Composites []string
}

// Introspect captures the system's current structure. The depth of
// the view depends on the mode: SOLEIL exposes membranes, controllers
// and non-functional components; the merged modes expose only the
// functional skeleton — exactly the capability matrix of Sect. 4.3.
func (m *Manager) Introspect() Snapshot {
	snap := Snapshot{Mode: m.sys.Mode()}
	for _, n := range m.sys.Nodes() {
		c, _ := m.sys.Architecture().Component(n.Name())
		cs := ComponentState{Name: n.Name(), Kind: c.Kind()}
		if started, err := m.sys.ComponentStarted(n.Name()); err == nil {
			cs.HasMembrane = true
			cs.Started = started
			cs.Controllers = m.sys.ControllerNames(n.Name())
			if failed, cause := m.sys.ComponentFailed(n.Name()); failed {
				cs.Failed = true
				cs.FailureCause = cause
			}
		}
		snap.Components = append(snap.Components, cs)
	}
	for _, d := range m.sys.Domains() {
		snap.Domains = append(snap.Domains, d.Name())
	}
	for _, a := range m.sys.AreaComponents() {
		snap.Areas = append(snap.Areas, a.Name())
	}
	for _, c := range m.sys.Composites() {
		snap.Composites = append(snap.Composites, c.Name())
	}
	return snap
}
