package lint_test

import (
	"path/filepath"
	"testing"

	"soleil/internal/lint"
	"soleil/internal/validate"
)

// TestLintbadDemonstratesEveryRule is the suite's acceptance gate:
// the deliberately non-conforming examples/lintbad package (which
// builds, vets and races cleanly) must trigger every SA rule, with at
// least one error-severity finding so `soleil vet` exits non-zero on
// it.
func TestLintbadDemonstratesEveryRule(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(lint.Options{
		Dir:      root,
		Patterns: []string{"./examples/lintbad"},
		ADL:      filepath.Join(root, "examples", "lintbad", "lintbad.xml"),
	})
	if err != nil {
		t.Fatal(err)
	}
	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
		if d.Pos == "" {
			t.Errorf("finding without position: %v", d)
		}
	}
	for _, a := range lint.All() {
		if byRule[a.Rule] == 0 {
			t.Errorf("rule %s (%s) not demonstrated by examples/lintbad:\n%v",
				a.Rule, a.Name, diags)
		}
	}
	if validate.MaxSeverity(diags) != validate.Error {
		t.Errorf("lintbad must produce at least one error, got %v", diags)
	}
}

// TestHotPathsClean pins `make lint` to zero unsuppressed findings on
// the packages the Makefile self-applies the suite to.
func TestHotPathsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks four package trees")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(lint.Options{
		Dir: root,
		Patterns: []string{
			"./internal/membrane/...", "./internal/obs/...",
			"./internal/comm/...", "./internal/rtsj/...",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("hot paths have %d unsuppressed findings:\n%v", len(diags), diags)
	}
}
