package lint_test

import (
	"path/filepath"
	"testing"

	"soleil/internal/lint"
	"soleil/internal/validate"
)

// TestLintbadDemonstratesEveryRule is the suite's acceptance gate:
// the deliberately non-conforming examples/lintbad package (which
// builds, vets and races cleanly) must trigger every SA rule — the
// per-function suite through Run and the whole-architecture suite
// through RunArch — with at least one error-severity finding so
// `soleil vet` exits non-zero on it.
func TestLintbadDemonstratesEveryRule(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	opts := lint.Options{
		Dir:      root,
		Patterns: []string{"./examples/lintbad"},
		ADL:      filepath.Join(root, "examples", "lintbad", "lintbad.xml"),
	}
	diags, err := lint.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	archDiags, err := lint.RunArch(opts)
	if err != nil {
		t.Fatal(err)
	}
	diags = append(diags, archDiags...)
	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
		if d.Pos == "" {
			t.Errorf("finding without position: %v", d)
		}
	}
	for _, a := range lint.All() {
		if byRule[a.Rule] == 0 {
			t.Errorf("rule %s (%s) not demonstrated by examples/lintbad:\n%v",
				a.Rule, a.Name, diags)
		}
	}
	for _, a := range lint.AllArch() {
		if byRule[a.Rule] == 0 {
			t.Errorf("rule %s (%s) not demonstrated by examples/lintbad:\n%v",
				a.Rule, a.Name, archDiags)
		}
	}
	if validate.MaxSeverity(diags) != validate.Error {
		t.Errorf("lintbad must produce at least one error, got %v", diags)
	}
}

// TestHotPathsClean pins `make lint` to zero unsuppressed findings on
// the packages the Makefile self-applies the suite to.
func TestHotPathsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks four package trees")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(lint.Options{
		Dir: root,
		Patterns: []string{
			"./internal/membrane/...", "./internal/obs/...",
			"./internal/comm/...", "./internal/rtsj/...",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("hot paths have %d unsuppressed findings:\n%v", len(diags), diags)
	}
}

// TestWholeRepoArchClean pins the acceptance command of the
// whole-architecture suite: `soleil vet -arch -adl
// examples/factory/factory.xml ./...` must exit clean — the blessed
// factory and scenario implementations satisfy SA05–SA08.
func TestWholeRepoArchClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunArch(lint.Options{
		Dir:      root,
		Patterns: []string{"./..."},
		ADL:      filepath.Join(root, "examples", "factory", "factory.xml"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("whole-repo arch run has %d findings:\n%v", len(diags), diags)
	}
}
