package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"soleil/internal/validate"
)

// NoHeapAlloc (SA01) is the static counterpart of the
// MemoryAccessError a NoHeapRealtimeThread raises when it touches
// heap memory: it flags heap allocations — make/new/append, slice and
// map literals, escaping composite literals, capturing closures,
// fmt calls, goroutine launches, and implicit interface boxing — in
// any function reachable from a no-heap root. Roots are functions
// annotated //soleil:noheap; reachability follows static calls within
// the package, and — when the interprocedural engine is available —
// cross-package calls and unique-target interface dispatch through
// the callee's effect summary, with the call chain attached to the
// finding.
var NoHeapAlloc = &Analyzer{
	Name: "noheapalloc",
	Rule: "SA01",
	Doc: "flags heap allocations (make/new/append, literals, closures, fmt, " +
		"interface boxing, go statements) reachable from //soleil:noheap functions",
	Run: runNoHeapAlloc,
}

func runNoHeapAlloc(p *Pass) error {
	decls := declaredFuncs(p)
	var roots []*ast.FuncDecl
	for _, fn := range decls {
		if directive(fn, "noheap") {
			roots = append(roots, fn)
		}
	}
	reach := reachable(p, decls, roots)
	seen := map[string]bool{}
	for fn, root := range reach {
		checkNoHeapFunc(p, fn, root, reach, seen)
	}
	return nil
}

func checkNoHeapFunc(p *Pass, fn *ast.FuncDecl, root string, reach map[*ast.FuncDecl]string, seen map[string]bool) {
	subject := funcName(fn)
	via := ""
	if subject != root {
		via = fmt.Sprintf(" (reachable from no-heap root %s)", root)
	}
	sig, _ := p.Info.TypeOf(fn.Name).(*types.Signature)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkNoHeapCall(p, x, subject, via)
			if sum := p.spliceCall(x, reach); sum != nil {
				p.reportEffects(x, sum, sum.Allocs, subject, via, seen)
			}
		case *ast.UnaryExpr, *ast.CompositeLit, *ast.FuncLit:
			if kind, ok := isAllocExpr(p.Info, x.(ast.Expr)); ok {
				p.Reportf(x.Pos(), validate.Error, subject,
					"preallocate in immortal or scoped memory, or hoist out of the no-heap path",
					"%s allocates on a no-heap path%s", kind, via)
				if _, isLit := x.(*ast.FuncLit); isLit {
					return false // the closure body is charged once, at the closure
				}
			}
		case *ast.GoStmt:
			p.Reportf(x.Pos(), validate.Error, subject,
				"launch threads at assembly time, not on the no-heap path",
				"go statement allocates a goroutine on a no-heap path%s", via)
		case *ast.ReturnStmt:
			checkNoHeapReturn(p, sig, x, subject, via)
		}
		return true
	})
}

func checkNoHeapCall(p *Pass, call *ast.CallExpr, subject, via string) {
	// Builtins make/new/append.
	if kind, ok := isAllocExpr(p.Info, call); ok {
		p.Reportf(call.Pos(), validate.Error, subject,
			"preallocate in immortal or scoped memory, or hoist out of the no-heap path",
			"%s allocates on a no-heap path%s", kind, via)
		return
	}
	// fmt.* formats through reflection and allocates.
	if callee := staticCallee(p.Info, call); callee != nil {
		if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
			p.Reportf(call.Pos(), validate.Error, subject,
				"format off the hot path, or write into a preallocated buffer",
				"fmt.%s allocates on a no-heap path%s", callee.Name(), via)
			return
		}
	}
	// Interface boxing at call boundaries: a non-interface value
	// passed where an interface is expected is boxed, which may
	// allocate.
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsType() {
		// Conversion: T(x). Boxing only when T is an interface.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(p.Info, call.Args[0]) {
			p.Reportf(call.Pos(), validate.Warning, subject,
				"pass a pointer, or keep the value out of interfaces on this path",
				"conversion to interface may allocate (boxing) on a no-heap path%s", via)
		}
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt) && boxes(p.Info, arg) {
			p.Reportf(arg.Pos(), validate.Warning, subject,
				"pass a pointer, or keep the value out of interfaces on this path",
				"argument is boxed into an interface and may allocate on a no-heap path%s", via)
		}
	}
}

func checkNoHeapReturn(p *Pass, sig *types.Signature, ret *ast.ReturnStmt, subject, via string) {
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		if types.IsInterface(sig.Results().At(i).Type()) && boxes(p.Info, res) {
			p.Reportf(res.Pos(), validate.Warning, subject,
				"return a pointer, or narrow the result type",
				"return value is boxed into an interface and may allocate on a no-heap path%s", via)
		}
	}
}

// boxes reports whether storing e into an interface requires boxing a
// value: its static type is neither an interface nor a pointer (and
// not the untyped nil).
func boxes(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}
