package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"soleil/internal/adl"
	"soleil/internal/lint"
	"soleil/internal/lint/linttest"
	"soleil/internal/validate"
)

func archCorpus(name string) (dir, arch string) {
	dir = corpus(name)
	return dir, filepath.Join(dir, "arch.xml")
}

func TestBindingCycle(t *testing.T) {
	dir, arch := archCorpus("bindcyclesrc")
	diags := linttest.RunArch(t, dir, lint.BindingCycle, arch, filepath.Join(dir, "deploy.xml"))
	if len(diags) != 2 {
		t.Errorf("expected the 2 corpus cycles, got %d: %v", len(diags), diags)
	}
	var spanning bool
	for _, d := range diags {
		if d.Rule != "SA05" {
			t.Errorf("bindingcycle produced foreign rule %s", d.Rule)
		}
		if d.Severity != validate.Error {
			t.Errorf("cycle %q is %v, want error", d.Subject, d.Severity)
		}
		if strings.Contains(d.Message, "spans deployment nodes") {
			spanning = true
		}
	}
	if !spanning {
		t.Error("no cycle was escalated for spanning deployment nodes")
	}
}

// TestBindingCycleNoDeploy: without a deployment descriptor the same
// cycles are found but nothing is escalated.
func TestBindingCycleNoDeploy(t *testing.T) {
	dir, archPath := archCorpus("bindcyclesrc")
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := adl.DecodeFile(archPath)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := lint.BuildArchFacts(arch, nil, []*lint.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := lint.RunArchPasses(facts, []*lint.ArchAnalyzer{lint.BindingCycle})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if strings.Contains(d.Message, "spans deployment nodes") {
			t.Errorf("escalation without a deployment: %s", d.Message)
		}
	}
	if len(ds) != 2 {
		t.Errorf("expected 2 cycles without deployment, got %d: %v", len(ds), ds)
	}
}

func TestLockOrder(t *testing.T) {
	dir, arch := archCorpus("lockordersrc")
	diags := linttest.RunArch(t, dir, lint.LockOrder, arch, "")
	if len(diags) != 1 {
		t.Errorf("expected the 1 corpus inversion, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "SA06" || d.Severity != validate.Error {
			t.Errorf("lockorder finding wrong shape: %+v", d)
		}
	}
}

func TestMembraneBypass(t *testing.T) {
	dir, arch := archCorpus("membranesrc")
	diags := linttest.RunArch(t, dir, lint.MembraneBypass, arch, "")
	if len(diags) != 5 {
		t.Errorf("expected the 5 corpus crossings, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "SA07" || d.Severity != validate.Error {
			t.Errorf("membranebypass finding wrong shape: %+v", d)
		}
	}
}

func TestCostBound(t *testing.T) {
	dir, arch := archCorpus("costboundsrc")
	diags := linttest.RunArch(t, dir, lint.CostBound, arch, "")
	if len(diags) != 4 {
		t.Errorf("expected the 4 corpus findings, got %d: %v", len(diags), diags)
	}
	var overBudget bool
	for _, d := range diags {
		if d.Rule != "SA08" || d.Severity != validate.Error {
			t.Errorf("costbound finding wrong shape: %+v", d)
		}
		if strings.Contains(d.Message, "demands at least") {
			overBudget = true
			if !strings.Contains(d.Message, "utilization") {
				t.Errorf("over-budget finding cites no RT16 utilization math: %s", d.Message)
			}
		}
	}
	if !overBudget {
		t.Error("no finding compared the derived bound against the declared cost")
	}
}

func TestFlowLatency(t *testing.T) {
	dir, arch := archCorpus("flowlatencysrc")
	diags := linttest.RunArch(t, dir, lint.FlowLatency, arch, "")
	if len(diags) != 1 {
		t.Errorf("expected the 1 corpus budget breach, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "SA09" || d.Severity != validate.Error {
			t.Errorf("flowlatency finding wrong shape: %+v", d)
		}
		if !strings.Contains(d.Message, "queue") {
			t.Errorf("finding does not break the path down by hop: %s", d.Message)
		}
		if len(d.Flow) == 0 {
			t.Errorf("finding carries no per-hop flow: %+v", d)
		}
	}
}

func TestQueueSizing(t *testing.T) {
	dir, arch := archCorpus("queuesizesrc")
	diags := linttest.RunArch(t, dir, lint.QueueSizing, arch, "")
	if len(diags) != 2 {
		t.Errorf("expected the 2 corpus findings, got %d: %v", len(diags), diags)
	}
	var fanIn, overflow bool
	for _, d := range diags {
		if d.Rule != "SA10" || d.Severity != validate.Error {
			t.Errorf("queuesizing finding wrong shape: %+v", d)
		}
		if strings.Contains(d.Message, "utilization") {
			fanIn = true
		}
		if strings.Contains(d.Message, "overflows regardless of its size") {
			overflow = true
		}
	}
	if !fanIn || !overflow {
		t.Errorf("expected one fan-in and one overflow finding, got fanIn=%v overflow=%v", fanIn, overflow)
	}
}

func TestSpawnLeak(t *testing.T) {
	dir, arch := archCorpus("spawnleaksrc")
	diags := linttest.RunArch(t, dir, lint.SpawnLeak, arch, "")
	if len(diags) != 2 {
		t.Errorf("expected the 2 corpus leaks, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "SA11" || d.Severity != validate.Error {
			t.Errorf("spawnleak finding wrong shape: %+v", d)
		}
	}
}

// TestArchClean: the clean fixture must come back empty from every
// whole-architecture pass.
func TestArchClean(t *testing.T) {
	dir, arch := archCorpus("archcleansrc")
	for _, a := range lint.AllArch() {
		if ds := linttest.RunArch(t, dir, a, arch, ""); len(ds) != 0 {
			t.Errorf("%s reported on the clean fixture: %v", a.Name, ds)
		}
	}
}

func TestArchByName(t *testing.T) {
	as, err := lint.ArchByName("costbound,bindingcycle")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "costbound" || as[1].Name != "bindingcycle" {
		t.Errorf("ArchByName selection wrong: %v", as)
	}
	if _, err := lint.ArchByName("nope"); err == nil {
		t.Error("ArchByName accepted an unknown analyzer")
	}
	if as, err := lint.ArchByName(""); err != nil || len(as) != 7 {
		t.Errorf("ArchByName(\"\") should return the full arch suite, got %v, %v", as, err)
	}
}

// TestKnownRulesCoverSuite keeps the hand-maintained KnownRules set in
// sync with the analyzers actually shipped (it cannot be derived at
// init time without a cycle).
func TestKnownRulesCoverSuite(t *testing.T) {
	known := lint.KnownRules()
	var rules []string
	for _, a := range lint.All() {
		rules = append(rules, a.Rule)
	}
	for _, a := range lint.AllArch() {
		rules = append(rules, a.Rule)
	}
	for _, r := range rules {
		if !known[r] {
			t.Errorf("rule %s is shipped but missing from KnownRules", r)
		}
	}
	if len(known) != len(rules)+1 { // +1 for SA00 itself
		t.Errorf("KnownRules has %d entries, suite ships %d rules (+SA00)", len(known), len(rules))
	}
}
