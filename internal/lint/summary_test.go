package lint_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
	"time"

	"soleil/internal/lint"
)

// summaries builds a single-package engine over a corpus and indexes
// the resulting summaries by function name.
func summaries(t *testing.T, dir, factsDir string) (*lint.Engine, map[string]*lint.Summary, *lint.Package) {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng := lint.NewEngine([]*lint.Package{pkg}, nil, factsDir)
	byName := map[string]*lint.Summary{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if s := eng.SummaryOf(pkg, fn); s != nil {
				byName[fn.Name.Name] = s
			}
		}
	}
	return eng, byName, pkg
}

func TestSummaryEngine(t *testing.T) {
	_, sums, _ := summaries(t, corpus("summarysrc"), "")

	pure := sums["Pure"]
	if pure == nil || !pure.Pure {
		t.Fatalf("Pure not trusted: %+v", pure)
	}
	if len(pure.Allocs) != 0 {
		t.Errorf("trusted-pure summary carries effects: %+v", pure.Allocs)
	}

	costed := sums["Costed"]
	if costed == nil || costed.CostNs != int64(2*time.Millisecond) {
		t.Errorf("Costed should trust its 2ms annotation, got %+v", costed)
	}

	leaf := sums["Leaf"]
	if leaf == nil || len(leaf.Blocks) != 1 {
		t.Fatalf("Leaf should carry its sleep effect, got %+v", leaf)
	}
	if len(leaf.Blocks[0].Chain) != 0 {
		t.Errorf("direct effect should have no chain: %+v", leaf.Blocks[0])
	}

	mid := sums["Mid"]
	if mid == nil || len(mid.Blocks) != 1 {
		t.Fatalf("Mid should splice Leaf's block, got %+v", mid)
	}
	if len(mid.Blocks[0].Chain) != 1 {
		t.Errorf("spliced effect should chain through the call site: %+v", mid.Blocks[0])
	}

	// 2ms from the Costed annotation + 4×250us from the bounded loop.
	cc := sums["CallsCosted"]
	if cc == nil || cc.CostNs != int64(3*time.Millisecond) {
		t.Errorf("CallsCosted cost = %v, want 3ms", time.Duration(cc.CostNs))
	}

	for _, name := range []string{"Odd", "Even"} {
		if s := sums[name]; s == nil || !s.Recursive {
			t.Errorf("%s should be marked recursive, got %+v", name, s)
		}
	}
}

// TestFactsCacheWarm: a second engine build over an unchanged package
// adopts every summary from the facts cache — zero misses — and the
// adopted summaries still carry their effects.
func TestFactsCacheWarm(t *testing.T) {
	facts := t.TempDir()
	dir := corpus("summarysrc")

	eng, _, _ := summaries(t, dir, facts)
	if s := eng.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("cold build should miss once: %+v", s)
	}

	eng2, sums, _ := summaries(t, dir, facts)
	if s := eng2.Stats(); s.Misses != 0 || s.Hits != 1 {
		t.Fatalf("warm build should hit the cache: %+v", s)
	}
	if mid := sums["Mid"]; mid == nil || len(mid.Blocks) != 1 || len(mid.Blocks[0].Chain) != 1 {
		t.Errorf("cache-adopted summary lost its spliced effect: %+v", mid)
	}
}

// TestFactsCacheInvalidation: changing the source content invalidates
// the cached entry and forces a recompute.
func TestFactsCacheInvalidation(t *testing.T) {
	facts := t.TempDir()
	src := t.TempDir()
	data, err := os.ReadFile(filepath.Join(corpus("summarysrc"), "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(src, "a.go")
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}

	eng, _, _ := summaries(t, src, facts)
	if s := eng.Stats(); s.Misses != 1 {
		t.Fatalf("cold build should miss: %+v", s)
	}
	eng2, _, _ := summaries(t, src, facts)
	if s := eng2.Stats(); s.Misses != 0 {
		t.Fatalf("unchanged source should hit: %+v", s)
	}

	if err := os.WriteFile(file, append(data, []byte("\n// touched\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	eng3, _, _ := summaries(t, src, facts)
	if s := eng3.Stats(); s.Misses != 1 {
		t.Errorf("changed source should invalidate the entry: %+v", s)
	}
}

// TestSummaryBudget pins the engine's whole-module build cost: the
// interprocedural pass must stay cheap enough to run on every vet.
func TestSummaryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	eng := lint.NewEngine(pkgs, nil, "")
	elapsed := time.Since(start)
	if s := eng.Stats(); s.Funcs == 0 {
		t.Fatalf("engine summarized nothing: %+v", s)
	}
	if elapsed > 2*time.Second {
		t.Errorf("summary build took %v, budget is 2s (%+v)", elapsed, eng.Stats())
	}
}
