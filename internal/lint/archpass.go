package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"soleil/internal/adl"
	"soleil/internal/model"
	"soleil/internal/validate"
)

// An ArchAnalyzer is one whole-architecture pass: where an Analyzer
// sees one package, an ArchAnalyzer sees the fused ADL + deployment +
// implementation model (ArchFacts) and reasons about the composed
// system.
type ArchAnalyzer struct {
	Name string
	Rule string
	Doc  string
	Run  func(*ArchPass) error
}

// AllArch is the whole-architecture suite in rule order.
func AllArch() []*ArchAnalyzer {
	return []*ArchAnalyzer{BindingCycle, LockOrder, MembraneBypass, CostBound,
		FlowLatency, QueueSizing, SpawnLeak}
}

// ArchByName resolves a comma-separated arch-analyzer selection.
func ArchByName(names string) ([]*ArchAnalyzer, error) {
	if names == "" {
		return AllArch(), nil
	}
	byName := map[string]*ArchAnalyzer{}
	for _, a := range AllArch() {
		byName[a.Name] = a
	}
	var out []*ArchAnalyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown arch analyzer %q (have %s)", n, archNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func archNames() string {
	var names []string
	for _, a := range AllArch() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// An ArchPass carries the fused facts through one arch analyzer.
type ArchPass struct {
	Analyzer *ArchAnalyzer
	Facts    *ArchFacts

	findings       []Finding
	reportedCycles map[string]bool
}

// Report records a finding unless a //soleil:ignore directive at the
// finding's position suppresses the rule. Suppression is resolved
// through the per-package directive indexes, found by filename.
func (p *ArchPass) Report(f Finding) {
	if f.Rule == "" {
		f.Rule = p.Analyzer.Rule
	}
	if p.suppressed(f) {
		return
	}
	p.findings = append(p.findings, f)
}

// Reportf formats and records a finding.
func (p *ArchPass) Reportf(pos token.Pos, sev validate.Severity, subject, suggestion, format string, args ...any) {
	p.Report(Finding{
		Pos: pos, Severity: sev, Subject: subject,
		Suggestion: suggestion, Message: fmt.Sprintf(format, args...),
	})
}

func (p *ArchPass) suppressed(f Finding) bool {
	if p.Facts.Fset == nil {
		return false
	}
	var pos token.Position
	switch {
	case f.PosStr != "":
		pos = parsePosition(f.PosStr)
	case f.Pos.IsValid():
		pos = p.Facts.Fset.Position(f.Pos)
	default:
		return false
	}
	for _, pkg := range p.Facts.Pkgs {
		idx := p.Facts.suppIndex(pkg)
		if idx.suppressesPosition(pos, f.Rule) {
			return true
		}
	}
	return false
}

// parsePosition splits a rendered "file:line:col" string back into a
// position; line parsing walks colons from the right so Windows drive
// letters survive.
func parsePosition(s string) token.Position {
	rest := s
	var nums []int
	for len(nums) < 2 {
		i := strings.LastIndexByte(rest, ':')
		if i < 0 {
			break
		}
		n, err := strconv.Atoi(rest[i+1:])
		if err != nil {
			break
		}
		nums = append(nums, n)
		rest = rest[:i]
	}
	pos := token.Position{Filename: rest}
	switch len(nums) {
	case 1:
		pos.Line = nums[0]
	case 2:
		pos.Line = nums[1]
		pos.Column = nums[0]
	}
	return pos
}

// suppIndex returns (building on demand) the package's directive
// index. SA00 findings are collected by RunArchPasses.
func (f *ArchFacts) suppIndex(pkg *Package) *suppressionIndex {
	if idx, ok := f.supp[pkg]; ok {
		return idx
	}
	idx := buildSuppressionIndex(pkg.Fset, pkg.Files)
	f.supp[pkg] = idx
	return idx
}

// RunArchPasses applies the arch analyzers to the fused facts and
// returns the findings in the shared diagnostic form, sorted by
// position then rule. Malformed //soleil:ignore directives in any
// loaded package surface as SA00 — the same contract RunPackage
// keeps for the per-function suite — and directives that suppressed
// nothing across the whole run surface as SA00 Info.
func RunArchPasses(facts *ArchFacts, analyzers []*ArchAnalyzer) ([]validate.Diagnostic, error) {
	if analyzers == nil {
		analyzers = AllArch()
	}
	facts.EnsureEngine("", nil)
	if facts.LinkPenalty == 0 {
		facts.LinkPenalty = defaultLinkPenalty
	}
	var diags []validate.Diagnostic
	render := func(f Finding) validate.Diagnostic {
		d := validate.Diagnostic{
			Rule:       f.Rule,
			Severity:   f.Severity,
			Subject:    f.Subject,
			Message:    f.Message,
			Suggestion: f.Suggestion,
			Flow:       f.Flow,
		}
		switch {
		case f.PosStr != "":
			d.Pos = f.PosStr
		case f.Pos.IsValid() && facts.Fset != nil:
			d.Pos = facts.Fset.Position(f.Pos).String()
		}
		return d
	}
	for _, pkg := range facts.Pkgs {
		for _, f := range facts.suppIndex(pkg).bad {
			diags = append(diags, render(f))
		}
	}
	for _, a := range analyzers {
		pass := &ArchPass{Analyzer: a, Facts: facts}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
		for _, f := range pass.findings {
			diags = append(diags, render(f))
		}
	}
	ran := ranRules(nil, analyzers)
	for _, pkg := range facts.Pkgs {
		for _, f := range facts.suppIndex(pkg).unused(ran) {
			diags = append(diags, render(f))
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags, nil
}

// RunArch loads the packages named by the options, fuses them with
// the architecture (required) and deployment (optional) and runs the
// whole-architecture suite SA05–SA08. With a deployment descriptor
// the RT14/RT15/RT17 cross-node diagnostics ride along, exactly as
// they do for Run.
func RunArch(opts Options) ([]validate.Diagnostic, error) {
	if opts.ADL == "" {
		return nil, fmt.Errorf("lint: -arch needs -adl (the passes analyze the composed architecture)")
	}
	arch, err := adl.DecodeFile(opts.ADL)
	if err != nil {
		return nil, err
	}
	var dep *model.Deployment
	var diags []validate.Diagnostic
	if opts.Deploy != "" {
		if dep, err = adl.DecodeDeploymentFile(opts.Deploy); err != nil {
			return nil, err
		}
		report, err := validate.ValidateDeployment(arch, dep)
		if err != nil {
			return nil, err
		}
		diags = append(diags, report.Diagnostics...)
	}
	pkgs, err := Load(opts.Dir, opts.Patterns)
	if err != nil {
		return nil, err
	}
	facts, err := BuildArchFacts(arch, dep, pkgs)
	if err != nil {
		return nil, err
	}
	facts.EnsureEngine(opts.FactsDir, opts.Stats)
	facts.LinkPenalty = linkPenaltyFromBench(opts.Dir)
	ds, err := RunArchPasses(facts, opts.ArchAnalyzers)
	if err != nil {
		return nil, err
	}
	return append(diags, ds...), nil
}
