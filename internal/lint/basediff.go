package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"soleil/internal/validate"
)

// Baseline-diff gating. Adopting the suite on a codebase with existing
// findings would otherwise force a big-bang cleanup: `soleil vet
// -baseline write:FILE` snapshots the current findings as accepted
// debt, and `-baseline check:FILE` (or just `-baseline FILE`)
// subtracts the snapshot from later runs so only NEW findings gate the
// exit code. Keys deliberately omit line numbers — moving an accepted
// finding around a file does not un-accept it — and file paths are
// stored relative to the baseline file, so the snapshot survives
// checkouts at different roots. Counts are a multiset: three accepted
// findings of one shape absorb at most three current ones.

// baselineVersion guards the on-disk schema.
const baselineVersion = 1

// Baseline is the serialized accepted-findings multiset.
type Baseline struct {
	Version int `json:"version"`
	// Counts maps finding keys (rule|file|subject) to how many of that
	// shape are accepted.
	Counts map[string]int `json:"counts"`
}

// baselineKey reduces a diagnostic to its baseline identity: the rule,
// the file (relative to the baseline's directory, slash-separated) and
// the subject. Lines, columns and message texts stay out — they churn
// under unrelated edits.
func baselineKey(baseDir string, d validate.Diagnostic) string {
	file := parsePosition(d.Pos).Filename
	if baseDir != "" && filepath.IsAbs(file) {
		if rel, err := filepath.Rel(baseDir, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return d.Rule + "|" + filepath.ToSlash(file) + "|" + d.Subject
}

// WriteBaseline snapshots diags into a baseline file at path.
func WriteBaseline(path string, diags []validate.Diagnostic) error {
	abs, err := filepath.Abs(path)
	if err != nil {
		return err
	}
	baseDir := filepath.Dir(abs)
	b := Baseline{Version: baselineVersion, Counts: map[string]int{}}
	for _, d := range diags {
		b.Counts[baselineKey(baseDir, d)]++
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckBaseline loads the baseline at path and splits diags into fresh
// findings (not absorbed by the baseline — these gate) and the number
// of stale baseline entries (accepted debt that no longer exists and
// can be rewritten away). Absorption is order-stable: earlier
// diagnostics consume baseline counts first.
func CheckBaseline(path string, diags []validate.Diagnostic) (fresh []validate.Diagnostic, stale int, err error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, 0, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, 0, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, 0, fmt.Errorf("lint: baseline %s has version %d, this build reads %d (rewrite it with -baseline write:%s)",
			path, b.Version, baselineVersion, path)
	}
	baseDir := filepath.Dir(abs)
	remaining := make(map[string]int, len(b.Counts))
	for k, n := range b.Counts {
		remaining[k] = n
	}
	for _, d := range diags {
		k := baselineKey(baseDir, d)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, n := range remaining {
		stale += n
	}
	return fresh, stale, nil
}

// ParseBaselineFlag splits a -baseline flag value into its mode and
// path: "write:FILE", "check:FILE", or a bare "FILE" (meaning check).
func ParseBaselineFlag(v string) (mode, path string, err error) {
	switch {
	case v == "":
		return "", "", nil
	case strings.HasPrefix(v, "write:"):
		mode, path = "write", v[len("write:"):]
	case strings.HasPrefix(v, "check:"):
		mode, path = "check", v[len("check:"):]
	default:
		mode, path = "check", v
	}
	if path == "" {
		return "", "", fmt.Errorf("lint: -baseline %q names no file (want write:FILE, check:FILE or FILE)", v)
	}
	return mode, path, nil
}

// BaselineKeys renders the sorted keys of diags as they would enter a
// baseline written at path — the debugging view of what check would
// subtract.
func BaselineKeys(path string, diags []validate.Diagnostic) []string {
	abs, _ := filepath.Abs(path)
	baseDir := filepath.Dir(abs)
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		keys = append(keys, baselineKey(baseDir, d))
	}
	sort.Strings(keys)
	return keys
}
