package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"time"

	"soleil/internal/validate"
)

// CostBound (SA08) checks each implementation of a costed component —
// one whose ADL activation declares cost= — against that budget. The
// scheduler admits the component by its declared cost (the RT16
// utilization sum cost/period), so an implementation that can demand
// more CPU than it declared undermines the admission decision for
// every component on the node.
//
// Two kinds of finding. Structural: code on an entry path whose cost
// cannot be bounded at all — loops with no constant trip count,
// recursion, calls through function values or non-framework interface
// dispatch, Consume with a non-constant duration. Arithmetic: the
// derived lower bound — the sum of constant Consume durations and
// //soleil:cost annotations, multiplied through constant-trip loops
// and summed over same-package static calls — exceeds the declared
// cost. The bound is a lower bound (framework and other-package calls
// count as zero), so exceeding it is a hard error, not a heuristic.
//
// A `//soleil:cost <duration>` doc directive declares a function's
// worst-case cost; the body is then trusted and not descended into —
// the escape hatch for measured leaf routines.
var CostBound = &ArchAnalyzer{
	Name: "costbound",
	Rule: "SA08",
	Doc: "checks implementations of cost=-annotated components against the declared " +
		"budget: unboundable constructs (unbounded loops, recursion, dynamic calls) " +
		"and derived Consume/annotation lower bounds exceeding the declared cost " +
		"are errors — they undermine the RT16 admission arithmetic",
	Run: runCostBound,
}

// exempt framework verbs: dynamic dispatch through the membrane's own
// seams carries no application cost (Consume's is added explicitly).
var costExemptCalls = map[string]bool{
	"Port": true, "Call": true, "Send": true, "Consume": true, "Sched": true,
}

func runCostBound(p *ArchPass) error {
	// costed[class] = components using the class that declare a cost.
	type budget struct {
		component string
		cost      time.Duration
		period    time.Duration
	}
	costed := map[string][]budget{}
	for _, c := range p.Facts.Arch.Components() {
		act := c.Activation()
		if act == nil || act.Cost <= 0 || c.Content() == "" {
			continue
		}
		costed[c.Content()] = append(costed[c.Content()], budget{
			component: c.Name(), cost: act.Cost, period: act.Period,
		})
	}
	for _, class := range p.Facts.Classes() {
		budgets := costed[class]
		if len(budgets) == 0 {
			continue
		}
		for _, im := range p.Facts.Impls[class] {
			cc := &costCalc{pass: p, impl: im, memo: map[*ast.FuncDecl]time.Duration{}, active: map[*ast.FuncDecl]bool{}}
			for _, entry := range im.Entries {
				bound := cc.fnCost(entry)
				for _, b := range budgets {
					if bound <= b.cost {
						continue
					}
					util := ""
					if b.period > 0 {
						util = fmt.Sprintf("; the RT16 admission test charged %.1f%% utilization (%v/%v) but the code can demand at least %.1f%%",
							100*float64(b.cost)/float64(b.period), b.cost, b.period,
							100*float64(bound)/float64(b.period))
					}
					p.Reportf(entry.Pos(), validate.Error, b.component,
						"raise cost= to cover the real demand, or move work off the costed path",
						"%s of %s demands at least %v of CPU per release, but component %s declares cost=%v%s",
						funcName(entry), im.Named.Obj().Name(), bound, b.component, b.cost, util)
				}
			}
		}
	}
	return nil
}

// costCalc derives per-function cost lower bounds for one
// implementation, reporting unboundable constructs as it walks.
type costCalc struct {
	pass   *ArchPass
	impl   *Impl
	memo   map[*ast.FuncDecl]time.Duration
	active map[*ast.FuncDecl]bool
	// reported dedups structural findings per position.
	reported map[token.Pos]bool
}

func (c *costCalc) structural(pos token.Pos, format string, args ...any) {
	if c.reported == nil {
		c.reported = map[token.Pos]bool{}
	}
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, validate.Error, c.impl.Class,
		"bound the construct (constant trip counts, static calls) or declare a measured "+
			"//soleil:cost on the enclosing function",
		format, args...)
}

// fnCost returns the derived cost lower bound of one declared
// function. A //soleil:cost annotation short-circuits the walk; a
// cycle in the call graph is recursion and unboundable.
func (c *costCalc) fnCost(fn *ast.FuncDecl) time.Duration {
	if d, ok := c.memo[fn]; ok {
		return d
	}
	if arg, ok := directiveArg(fn, "cost"); ok {
		d, err := time.ParseDuration(arg)
		if err != nil {
			c.structural(fn.Pos(), "%s declares //soleil:cost %q, which is not a duration: %v",
				funcName(fn), arg, err)
			d = 0
		}
		c.memo[fn] = d
		return d
	}
	if c.active[fn] {
		c.structural(fn.Pos(), "%s is recursive (reachable from a membrane entry of %s): "+
			"its cost cannot be statically bounded against the declared budget",
			funcName(fn), c.impl.Named.Obj().Name())
		return 0
	}
	c.active[fn] = true
	d := c.nodeCost(fn.Body)
	delete(c.active, fn)
	c.memo[fn] = d
	return d
}

// nodeCost walks one subtree, multiplying loop bodies by their
// constant trip counts and summing call costs.
func (c *costCalc) nodeCost(n ast.Node) time.Duration {
	var total time.Duration
	info := c.impl.Pkg.Info
	ast.Inspect(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit:
			return false // cost attaches where the value is called
		case *ast.GoStmt:
			return false // the goroutine body runs on another thread's budget
		case *ast.ForStmt:
			trips, ok := boundedFor(info, s)
			if !ok {
				c.structural(s.Pos(), "loop has no constant trip count: the cost of %s cannot be "+
					"bounded against the declared budget", funcName(enclosing(c.impl, s.Pos())))
				trips = 1
			}
			if s.Init != nil {
				total += c.nodeCost(s.Init)
			}
			if s.Cond != nil {
				total += c.nodeCost(s.Cond)
			}
			body := c.nodeCost(s.Body)
			if s.Post != nil {
				body += c.nodeCost(s.Post)
			}
			total += time.Duration(trips) * body
			return false
		case *ast.RangeStmt:
			trips, ok := boundedRange(info, s)
			if !ok {
				c.structural(s.Pos(), "range over a dynamically sized collection: the cost of %s "+
					"cannot be bounded against the declared budget", funcName(enclosing(c.impl, s.Pos())))
				trips = 1
			}
			total += time.Duration(trips) * c.nodeCost(s.Body)
			return false
		case *ast.CallExpr:
			total += c.callCost(s)
			return true // arguments are walked too; their calls cost on their own
		}
		return true
	})
	return total
}

// callCost prices one call: constant Consume durations count in full,
// same-package static callees contribute their own bound, framework
// and other-package callees are zero, and calls that cannot be
// resolved at all are structural errors.
func (c *costCalc) callCost(call *ast.CallExpr) time.Duration {
	info := c.impl.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return 0 // conversion
	}
	name := calleeName(call)
	if name == "Consume" {
		return c.consumeCost(call)
	}
	callee := staticCallee(info, call)
	if callee == nil {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, ok := info.Uses[fun].(*types.Builtin); ok {
				return 0
			}
		case *ast.FuncLit:
			return c.nodeCost(fun.Body)
		}
		if costExemptCalls[name] {
			return 0
		}
		c.structural(call.Pos(), "call to %s cannot be resolved statically (function value or "+
			"interface dispatch): the cost of %s cannot be bounded against the declared budget",
			callDisplay(call, name), funcName(enclosing(c.impl, call.Pos())))
		return 0
	}
	if decl, ok := c.impl.decls[callee]; ok {
		return c.fnCost(decl)
	}
	// Cross-package application callee: charge its summarized static
	// lower bound (framework and stdlib summaries simply cost 0).
	if eng := c.pass.Facts.Eng; eng != nil {
		if s := eng.Summary(callee); s != nil && !s.Recursive {
			return time.Duration(s.CostNs)
		}
	}
	return 0 // framework or stdlib: charged to the membrane, not the budget
}

// consumeCost extracts the constant duration of a Consume call.
func (c *costCalc) consumeCost(call *ast.CallExpr) time.Duration {
	if len(call.Args) != 1 {
		return 0
	}
	tv, ok := c.impl.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		c.structural(call.Pos(), "Consume with a non-constant duration: the cost of %s cannot "+
			"be bounded against the declared budget", funcName(enclosing(c.impl, call.Pos())))
		return 0
	}
	if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
		return time.Duration(v)
	}
	return 0
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func callDisplay(call *ast.CallExpr, name string) string {
	if name == "" {
		return "a function value"
	}
	return name
}

// boundedFor recognizes `for i := 0; i < N; i++` (and <=) with a
// constant N and returns the trip count.
func boundedFor(info *types.Info, s *ast.ForStmt) (int64, bool) {
	if s.Init == nil || s.Cond == nil || s.Post == nil {
		return 0, false
	}
	init, ok := s.Init.(*ast.AssignStmt)
	if !ok || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return 0, false
	}
	iv, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return 0, false
	}
	start, ok := constInt(info, init.Rhs[0])
	if !ok {
		return 0, false
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return 0, false
	}
	cx, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || cx.Name != iv.Name {
		return 0, false
	}
	limit, ok := constInt(info, cond.Y)
	if !ok {
		return 0, false
	}
	post, ok := s.Post.(*ast.IncDecStmt)
	if !ok || post.Tok.String() != "++" {
		return 0, false
	}
	px, ok := ast.Unparen(post.X).(*ast.Ident)
	if !ok || px.Name != iv.Name {
		return 0, false
	}
	var trips int64
	switch cond.Op.String() {
	case "<":
		trips = limit - start
	case "<=":
		trips = limit - start + 1
	default:
		return 0, false
	}
	if trips < 0 {
		trips = 0
	}
	return trips, true
}

// boundedRange recognizes ranges whose trip count is a compile-time
// constant: fixed-size arrays (by value or pointer) and constant
// integer ranges (go1.22 `range N`).
func boundedRange(info *types.Info, s *ast.RangeStmt) (int64, bool) {
	if n, ok := constInt(info, s.X); ok {
		return n, true // range over constant integer
	}
	t := info.TypeOf(s.X)
	if t == nil {
		return 0, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		return arr.Len(), true
	}
	return 0, false
}

func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// enclosing finds the reachable declaration containing pos, for
// naming in diagnostics.
func enclosing(im *Impl, pos token.Pos) *ast.FuncDecl {
	for fn := range im.Reach {
		if fn.Pos() <= pos && pos <= fn.End() {
			return fn
		}
	}
	for _, fn := range im.Entries {
		return fn
	}
	return nil
}
