package lint

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLinkPenaltyFromBench pins the two BENCH_cluster.json schemas
// the flow-latency analyzer must price links from: the shared bench
// envelope ({panel, commit, goos, rows}) current files use, and the
// pre-unification layout that keyed the same rows as "scenarios".
func TestLinkPenaltyFromBench(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want time.Duration
	}{
		{
			name: "envelope",
			doc: `{"panel":"d","commit":"abc1234","goos":"linux","rows":[
				{"scenario":"in-process","rttMedian":2000000},
				{"scenario":"cluster-loopback","rttMedian":300000}]}`,
			want: 150 * time.Microsecond,
		},
		{
			name: "legacy",
			doc: `{"generatedAt":"2026-01-01T00:00:00Z","scenarios":[
				{"scenario":"cluster-loopback","rttMedian":400000}]}`,
			want: 200 * time.Microsecond,
		},
		{
			name: "missing-row",
			doc:  `{"panel":"d","rows":[{"scenario":"in-process","rttMedian":2000000}]}`,
			want: defaultLinkPenalty,
		},
		{
			name: "corrupt",
			doc:  `{nope`,
			want: defaultLinkPenalty,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "BENCH_cluster.json"), []byte(tc.doc), 0o644); err != nil {
				t.Fatal(err)
			}
			if got := linkPenaltyFromBench(dir); got != tc.want {
				t.Fatalf("linkPenaltyFromBench = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestLinkPenaltySearchesParents verifies the file is found from a
// subdirectory, matching how the linter runs from package dirs.
func TestLinkPenaltySearchesParents(t *testing.T) {
	root := t.TempDir()
	sub := filepath.Join(root, "internal", "pkg")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	doc := `{"panel":"d","rows":[{"scenario":"cluster-loopback","rttMedian":600000}]}`
	if err := os.WriteFile(filepath.Join(root, "BENCH_cluster.json"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if got, want := linkPenaltyFromBench(sub), 300*time.Microsecond; got != want {
		t.Fatalf("linkPenaltyFromBench from subdir = %v, want %v", got, want)
	}
}
