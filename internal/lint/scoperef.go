package lint

import (
	"fmt"
	"go/ast"

	"soleil/internal/patterns"
	"soleil/internal/validate"
)

// ScopeRef (SA02) is the static counterpart of the dynamic
// generation-tag checks in internal/rtsj/memory: storing a reference
// to scope-allocated state into anything that outlives the scope is
// the IllegalAssignmentError the RTSJ assignment rules raise at run
// time. The analyzer looks at every scope-entry call — a call to a
// method named Enter or ExecuteInArea taking a function literal, the
// shape of (*memory.Context).Enter — and flags assignments inside the
// literal whose target is declared outside it (captured locals,
// fields of outer objects, package-level vars) when the stored value
// carries a reference created inside the scope. The suggestion names
// the applicable cross-scope communication pattern from
// internal/patterns.
var ScopeRef = &Analyzer{
	Name: "scoperef",
	Rule: "SA02",
	Doc: "flags stores of scoped-area references into longer-lived state " +
		"inside Enter/ExecuteInArea function literals (static IllegalAssignmentError)",
	Run: runScopeRef,
}

// scopeEntryMethods are the method names treated as running their
// function-literal argument inside a (shorter-lived) memory scope.
var scopeEntryMethods = map[string]bool{
	"Enter":         true,
	"ExecuteInArea": true,
}

func runScopeRef(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !scopeEntryMethods[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkScopeBody(p, sel.Sel.Name, lit)
				}
			}
			return true
		})
	}
	return nil
}

func checkScopeBody(p *Pass, entry string, lit *ast.FuncLit) {
	suggestion := fmt.Sprintf(
		"copy the value out (%q pattern) or publish it through the scope's %q",
		patterns.DeepCopy, patterns.Portal)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			target, outer := outerTarget(p, lhs, lit)
			if !outer {
				continue
			}
			rhs := as.Rhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			}
			if kind, ok := containsAlloc(p.Info, rhs); ok {
				p.Reportf(as.Pos(), validate.Error, target, suggestion,
					"%s allocated inside %s scope is stored into longer-lived %s",
					kind, entry, target)
				continue
			}
			if escapesScopedRef(p, rhs, lit) {
				p.Reportf(as.Pos(), validate.Error, target, suggestion,
					"reference created inside %s scope escapes into longer-lived %s",
					entry, target)
			}
		}
		return true
	})
}

// outerTarget decides whether an assignment target outlives the scope
// body: an identifier declared outside the literal, or a
// field/element of such an identifier. It returns a printable name
// for the target.
func outerTarget(p *Pass, lhs ast.Expr, lit *ast.FuncLit) (string, bool) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return "", false
		}
		if declaredOutside(p.Info, x, lit, lit) {
			if obj := p.Info.Uses[x]; obj != nil && obj.Parent() == p.Pkg.Scope() {
				return "package-level var " + x.Name, true
			}
			return "captured variable " + x.Name, true
		}
	case *ast.SelectorExpr:
		if base := baseIdent(x.X); base != nil && declaredOutside(p.Info, base, lit, lit) {
			return fmt.Sprintf("field %s of outer object %s", x.Sel.Name, base.Name), true
		}
	case *ast.IndexExpr:
		if base := baseIdent(x.X); base != nil && declaredOutside(p.Info, base, lit, lit) {
			return "element of outer collection " + base.Name, true
		}
	case *ast.StarExpr:
		if base := baseIdent(x.X); base != nil && declaredOutside(p.Info, base, lit, lit) {
			return "target of outer pointer " + base.Name, true
		}
	}
	return "", false
}

func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// escapesScopedRef reports whether e is reference-carrying and refers
// to an object declared inside the scope body — the classic "scoped
// reference stored outside" shape.
func escapesScopedRef(p *Pass, e ast.Expr, lit *ast.FuncLit) bool {
	t := p.Info.TypeOf(e)
	if t == nil || !refCarrying(t) {
		return false
	}
	escapes := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || escapes {
			return !escapes
		}
		if obj := p.Info.Uses[id]; obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			if t := p.Info.TypeOf(id); t != nil && refCarrying(t) {
				escapes = true
			}
		}
		return true
	})
	return escapes
}
