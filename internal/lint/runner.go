package lint

import (
	"fmt"
	"sort"

	"soleil/internal/adl"
	"soleil/internal/model"
	"soleil/internal/validate"
)

// Options configures one run of the analyzer suite.
type Options struct {
	// Dir is the directory `go list` resolves patterns from; empty
	// means the current directory.
	Dir string
	// Patterns are `go list` package patterns; empty means ./...
	Patterns []string
	// ADL, when set, is the architecture file archconform checks the
	// code against.
	ADL string
	// Deploy, when set, is a deployment descriptor checked against the
	// ADL architecture (RT14/RT15 cross-node rules); requires ADL.
	Deploy string
	// Analyzers selects the passes to run; nil means All().
	Analyzers []*Analyzer
	// ArchAnalyzers selects the whole-architecture passes RunArch
	// applies; nil means AllArch(). Ignored by Run.
	ArchAnalyzers []*ArchAnalyzer
	// FactsDir, when set, enables the on-disk summary cache: warm runs
	// adopt valid entries instead of recomputing (cache.go).
	FactsDir string
	// Stats, when non-nil, receives the engine's cache counters.
	Stats *CacheStats
}

// Run loads the requested packages, applies the analyzer suite and
// returns the findings in the shared validate.Diagnostic form (rule
// ids SA00–SA04, positions filled in), sorted by position.
func Run(opts Options) ([]validate.Diagnostic, error) {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = All()
	}
	var arch *model.Architecture
	if opts.ADL != "" {
		var err error
		if arch, err = adl.DecodeFile(opts.ADL); err != nil {
			return nil, err
		}
	}
	pkgs, err := Load(opts.Dir, opts.Patterns)
	if err != nil {
		return nil, err
	}
	var diags []validate.Diagnostic
	if opts.Deploy != "" {
		if arch == nil {
			return nil, fmt.Errorf("lint: -deploy needs -adl (the descriptor is checked against the architecture)")
		}
		dep, err := adl.DecodeDeploymentFile(opts.Deploy)
		if err != nil {
			return nil, err
		}
		report, err := validate.ValidateDeployment(arch, dep)
		if err != nil {
			return nil, err
		}
		diags = append(diags, report.Diagnostics...)
	}
	// One suppression index per package, shared between the engine and
	// every pass, so "used" marks accumulate for the stale-ignore
	// report.
	supp := map[*Package]*suppressionIndex{}
	suppOf := func(p *Package) *suppressionIndex {
		idx, ok := supp[p]
		if !ok {
			idx = buildSuppressionIndex(p.Fset, p.Files)
			supp[p] = idx
		}
		return idx
	}
	eng := NewEngine(pkgs, suppOf, opts.FactsDir)
	if opts.Stats != nil {
		*opts.Stats = eng.Stats()
	}
	ran := ranRules(analyzers, nil)
	for _, pkg := range pkgs {
		ds, err := runPackage(pkg, arch, analyzers, eng, suppOf(pkg))
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	for _, pkg := range pkgs {
		for _, f := range suppOf(pkg).unused(ran) {
			diags = append(diags, Render(pkg, f))
		}
	}
	sortDiags(diags)
	return diags, nil
}

// ranRules is the rule-id set the selected passes exercise; the
// unused-suppression report only trusts directives wholly covered by
// it.
func ranRules(analyzers []*Analyzer, archAnalyzers []*ArchAnalyzer) map[string]bool {
	ran := map[string]bool{"SA00": true}
	for _, a := range analyzers {
		ran[a.Rule] = true
	}
	for _, a := range archAnalyzers {
		ran[a.Rule] = true
	}
	return ran
}

func sortDiags(diags []validate.Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Rule < diags[j].Rule
	})
}

// RunPackage applies the analyzers to one loaded package. The
// //soleil:ignore directives are parsed once, shared by every pass,
// and malformed directives surface as SA00 findings of their own. A
// single-package engine is built over the package so one-call-deep
// effects inside it are still seen; multi-package loads should go
// through Run, which shares one engine across the load.
func RunPackage(pkg *Package, arch *model.Architecture, analyzers []*Analyzer) ([]validate.Diagnostic, error) {
	supp := buildSuppressionIndex(pkg.Fset, pkg.Files)
	suppOf := func(*Package) *suppressionIndex { return supp }
	eng := NewEngine([]*Package{pkg}, suppOf, "")
	diags, err := runPackage(pkg, arch, analyzers, eng, supp)
	if err != nil {
		return nil, err
	}
	for _, f := range supp.unused(ranRules(analyzers, nil)) {
		diags = append(diags, Render(pkg, f))
	}
	return diags, nil
}

func runPackage(pkg *Package, arch *model.Architecture, analyzers []*Analyzer, eng *Engine, supp *suppressionIndex) ([]validate.Diagnostic, error) {
	var diags []validate.Diagnostic
	for _, f := range supp.bad {
		diags = append(diags, Render(pkg, f))
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Pkg,
			Info:     pkg.Info,
			Arch:     arch,
			Eng:      eng,
			supp:     supp,
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
		for _, f := range pass.findings {
			diags = append(diags, Render(pkg, f))
		}
	}
	return diags, nil
}

// Render converts a source finding into the shared diagnostic form.
func Render(pkg *Package, f Finding) validate.Diagnostic {
	d := validate.Diagnostic{
		Rule:       f.Rule,
		Severity:   f.Severity,
		Subject:    f.Subject,
		Message:    f.Message,
		Suggestion: f.Suggestion,
		Flow:       f.Flow,
	}
	switch {
	case f.PosStr != "":
		d.Pos = f.PosStr
	case f.Pos.IsValid():
		d.Pos = pkg.Fset.Position(f.Pos).String()
	}
	return d
}
