// Corpus for the rtblock (SA03) analyzer.
package rtblocksrc

import (
	"net/http"
	"os"
	"sync"
	"time"
)

// component mirrors the membrane.Content shape: Invoke and Activate
// are run-to-completion sections by convention.
type component struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
}

func (c *component) Invoke(op string) (any, error) {
	time.Sleep(time.Millisecond) // want `SA03 .*time\.Sleep blocks a run-to-completion section`
	c.mu.Lock()                  // want `SA03 .*sync\.Mutex\.Lock may block`
	c.mu.Unlock()
	c.wg.Wait()  // want `SA03 .*sync\.WaitGroup\.Wait may block`
	v := <-c.ch  // want `SA03 .*channel receive may block`
	c.ch <- v    // want `SA03 .*channel send may block`
	c.slowStore(v)
	return v, nil
}

func (c *component) Activate() error {
	_, err := os.Open("/etc/hosts") // want `SA03 .*os\.Open performs unbounded I/O`
	if err != nil {
		return err
	}
	_, err = http.Get("http://example.invalid/") // want `SA03 .*http\.Get performs unbounded I/O`
	return err
}

// slowStore is reachable from Invoke, so its blocking is charged to
// the run-to-completion section.
func (c *component) slowStore(v int) {
	select { // want `SA03 .*select without default blocks`
	case c.ch <- v:
	case <-time.After(time.Second):
	}
}

// poll drains without blocking: select with a default case is the
// sanctioned idiom, including the channel operations in its cases.
//
//soleil:rtc
func (c *component) poll() (int, bool) {
	select {
	case v := <-c.ch:
		return v, true
	default:
		return 0, false
	}
}

// free is neither named Invoke/Activate nor annotated, and nothing
// run-to-completion reaches it: blocking here is fine.
func free(ch chan int) int {
	time.Sleep(time.Millisecond)
	return <-ch
}

// suppressed documents a bounded critical section.
func (c *component) Invoke2() {}

type guarded struct{ mu sync.Mutex }

func (g *guarded) Invoke() {
	g.mu.Lock() //soleil:ignore SA03 ceiling-emulated, critical section is two loads
	g.mu.Unlock()
}
