// Corpus for the membranebypass (SA07) analyzer; the matching
// architecture lives in arch.xml next to this file.
package membranesrc

type env struct{}

type port interface {
	Call(e *env, op string, arg any) (any, error)
	Send(e *env, op string, arg any) error
}

type services struct{ ports map[string]port }

func (s *services) Port(name string) port { return s.ports[name] }

type Content interface{ Init(svc *services) error }

type Registry struct{ factories map[string]func() Content }

func (r *Registry) Register(class string, f func() Content) error {
	r.factories[class] = f
	return nil
}

// records is reference-carrying but provides the deep-copy protocol
// the membrane's deep-copy binding pattern relies on: exempt.
type records []float64

func (r records) DeepCopy() any {
	out := make(records, len(r))
	copy(out, r)
	return out
}

var table = map[string]int{}

// sendImpl hands its own state across the binding in every
// reference-carrying shape; the value copies, fresh allocations and
// deep-copy types below them are the legitimate alternatives.
type sendImpl struct {
	svc   *services
	stats []float64
	tab   map[string]int
	count int
	log   records
}

func (s *sendImpl) Init(svc *services) error { s.svc = svc; return nil }

func (s *sendImpl) Invoke(e *env, itf, op string, arg any) (any, error) {
	p := s.svc.Port("iRecv")
	if _, err := p.Call(e, "stats", s.stats); err != nil { // want `SA07 argument of Call on interface "iRecv" aliases the receiver state of sendImpl through a slice`
		return nil, err
	}
	if err := p.Send(e, "table", s.tab); err != nil { // want `SA07 argument of Send on interface "iRecv" aliases the receiver state of sendImpl through a map`
		return nil, err
	}
	if _, err := p.Call(e, "bump", &s.count); err != nil { // want `SA07 argument of Call on interface "iRecv" aliases the receiver state of sendImpl through a pointer`
		return nil, err
	}
	if _, err := p.Call(e, "global", table); err != nil { // want `SA07 argument of Call on interface "iRecv" aliases package-level variable table through a map`
		return nil, err
	}
	if _, err := p.Call(e, "count", s.count); err != nil {
		return nil, err
	}
	fresh := make([]float64, 2)
	if _, err := p.Call(e, "fresh", fresh); err != nil {
		return nil, err
	}
	return p.Call(e, "log", s.log)
}

// recvImpl serves the synchronous binding: a reference-typed Invoke
// result travels back to the client just like an argument travels in.
type recvImpl struct {
	cache map[string]float64
	total float64
}

func (r *recvImpl) Init(svc *services) error { return nil }

func (r *recvImpl) Invoke(e *env, itf, op string, arg any) (any, error) {
	if op == "snapshot" {
		return r.cache, nil // want `SA07 Invoke result returned over a synchronous binding aliases the receiver state of recvImpl through a map`
	}
	return r.total, nil
}

func Wire(r *Registry) error {
	if err := r.Register("sender", func() Content { return &sendImpl{} }); err != nil {
		return err
	}
	return r.Register("receiver", func() Content { return &recvImpl{} })
}
