// Corpus for the scoperef (SA02) analyzer. The ctx/area pair mirrors
// the shape of soleil/internal/rtsj/memory's Context and Area.
package scopesrc

type area struct{ name string }

type ctx struct{ depth int }

func (c *ctx) Enter(a *area, fn func() error) error { return fn() }

func (c *ctx) ExecuteInArea(a *area, fn func() error) error { return fn() }

// leaked is the longest-lived state there is.
var leaked *int

type holder struct {
	p  *int
	xs []int
}

// bad stores scope-allocated references into state that outlives the
// scope — every assignment here is the static shape of an RTSJ
// IllegalAssignmentError.
func bad(c *ctx, a *area, h *holder) {
	var captured *int
	c.Enter(a, func() error {
		v := new(int)
		leaked = v          // want `SA02 .*escapes into longer-lived package-level var leaked`
		captured = v        // want `SA02 .*escapes into longer-lived captured variable captured`
		h.p = new(int)      // want `SA02 .*new allocated inside Enter scope.*field p of outer object h`
		h.xs = make([]int, 4) // want `SA02 .*make allocated inside Enter scope`
		return nil
	})
	_ = captured
}

// badExec: ExecuteInArea is the other entry point.
func badExec(c *ctx, a *area) {
	var out []int
	c.ExecuteInArea(a, func() error {
		out = append(out, 1) // want `SA02 .*append allocated inside ExecuteInArea scope`
		return nil
	})
	_ = out
}

// good copies values out of the scope: plain data crossing the
// boundary is exactly what the deep-copy pattern does.
func good(c *ctx, a *area) int {
	var out int
	c.Enter(a, func() error {
		v := new(int)
		*v = 41
		out = *v + 1 // value copy, no reference escapes
		return nil
	})
	return out
}

// internal stores stay inside the scope: assignments to locals of the
// literal are invisible outside it.
func internal(c *ctx, a *area) {
	c.Enter(a, func() error {
		v := new(int)
		w := v // both ends live in the scope
		_ = w
		return nil
	})
}

// suppressed documents an accepted escape (e.g. a wedge-thread pins
// the scope open for the component's lifetime).
func suppressed(c *ctx, a *area) {
	c.Enter(a, func() error {
		leaked = new(int) //soleil:ignore SA02 scope pinned by wedge thread for system lifetime
		return nil
	})
}
