// Corpus for the interprocedural half of noheapalloc (SA01): the
// no-heap root reaches its allocation through a call the local walk
// cannot follow — interface dispatch with a unique implementing type,
// resolved by the summary engine's class-hierarchy analysis.
package noheapdeepsrc

// Store has exactly one implementation in this package, so the engine
// resolves s.Put below to (*mapStore).Put and splices its summary.
type Store interface{ Put(k string) }

type mapStore struct{ m map[string]int }

func (s *mapStore) Put(k string) {
	s.m = map[string]int{k: 1} // want `SA01 .*composite literal allocates on a no-heap path`
}

//soleil:noheap
func record(s Store, k string) {
	s.Put(k)
}

// Fan has two implementations: the dispatch is ambiguous, the engine
// resolves nothing, and the allocations stay unreported (a lower bound,
// not a guess).
type Fan interface{ Spin() }

type fastFan struct{ rpm []int }

func (f *fastFan) Spin() { f.rpm = append(f.rpm, 1) }

type slowFan struct{ rpm []int }

func (f *slowFan) Spin() { f.rpm = append(f.rpm, 2) }

//soleil:noheap
func cool(f Fan) {
	f.Spin()
}
