// Clean corpus for the whole-architecture suite: bounded cost, one
// lock order, value-only membrane crossings, no wait cycle. No pass
// may report anything here.
package archcleansrc

import (
	"sync"
	"time"
)

type sched interface{ Consume(d time.Duration) error }

type env struct{}

func (e *env) Sched() sched { return nil }

type port interface {
	Call(e *env, op string, arg any) (any, error)
	Send(e *env, op string, arg any) error
}

type services struct{ ports map[string]port }

func (s *services) Port(name string) port { return s.ports[name] }

type Content interface{ Init(svc *services) error }

type Registry struct{ factories map[string]func() Content }

func (r *Registry) Register(class string, f func() Content) error {
	r.factories[class] = f
	return nil
}

const samples = 8

type producerImpl struct {
	svc *services
	mu  sync.Mutex
	seq int
}

func (p *producerImpl) Init(svc *services) error { p.svc = svc; return nil }

func (p *producerImpl) Invoke(e *env, itf, op string, arg any) (any, error) {
	return nil, nil
}

func (p *producerImpl) Activate(e *env) error {
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()
	for i := 0; i < samples; i++ {
		if err := e.Sched().Consume(200 * time.Microsecond); err != nil {
			return err
		}
	}
	_, err := p.svc.Port("iSink").Call(e, "store", seq)
	return err
}

type sinkImpl struct {
	mu    sync.Mutex
	total int
}

func (s *sinkImpl) Init(svc *services) error { return nil }

func (s *sinkImpl) Invoke(e *env, itf, op string, arg any) (any, error) {
	s.mu.Lock()
	s.total++
	t := s.total
	s.mu.Unlock()
	return t, nil
}

func Wire(r *Registry) error {
	if err := r.Register("producer", func() Content { return &producerImpl{} }); err != nil {
		return err
	}
	return r.Register("sink", func() Content { return &sinkImpl{} })
}
