// Corpus for the flowlatency (SA09) pass; the matching architecture
// lives in arch.xml next to this file. The code is conformant — the
// violation is architectural: eight queued messages ahead of a
// 10ms-period server cost 80ms before the serve even starts, against a
// 2ms contracted budget.
package flowlatencysrc

type services struct{}

type Content interface{ Init(svc *services) error }

type Registry struct{ factories map[string]func() Content }

func (r *Registry) Register(class string, f func() Content) error {
	r.factories[class] = f
	return nil
}

type src struct{}

func (s *src) Init(svc *services) error                    { return nil }
func (s *src) Invoke(itf, op string, arg any) (any, error) { return nil, nil }
func (s *src) Activate() error                             { return nil }

type slow struct{}

func (s *slow) Init(svc *services) error                    { return nil }
func (s *slow) Invoke(itf, op string, arg any) (any, error) { return nil, nil }
func (s *slow) Activate() error                             { return nil }

func Wire(r *Registry) error {
	if err := r.Register("src", func() Content { return &src{} }); err != nil { // want `SA09 .*exceeds the contract's latencyBudget`
		return err
	}
	return r.Register("slow", func() Content { return &slow{} })
}
