// Corpus for the interprocedural half of rtblock (SA03): the
// run-to-completion section blocks one call deep, behind interface
// dispatch with a unique implementing type that only the summary
// engine's class-hierarchy analysis can follow.
package rtblockdeepsrc

import "time"

// Sink has exactly one implementation, so c.out.Flush() resolves to
// (*fileSink).Flush and its blocking effects are charged to Invoke.
type Sink interface{ Flush() }

type fileSink struct{ ch chan int }

func (f *fileSink) Flush() {
	time.Sleep(time.Millisecond) // want `SA03 .*time\.Sleep blocks a run-to-completion section`
	f.ch <- 0                    // want `SA03 .*channel send may block`
}

type component struct{ out Sink }

func (c *component) Invoke(op string) (any, error) {
	c.out.Flush()
	return nil, nil
}

// quickSink is pure bookkeeping; splicing its (empty) summary adds
// nothing.
type Meter interface{ Tick() }

type quickMeter struct{ n int }

func (m *quickMeter) Tick() { m.n++ }

type clean struct{ m Meter }

func (c *clean) Invoke(op string) (any, error) {
	c.m.Tick()
	return nil, nil
}
