// Corpus for the queuesizing (SA10) pass; the matching architecture
// lives in arch.xml next to this file. The code is conformant — the
// violations are architectural: Mill's two contracts admit more than
// its cost can process, and Press's buffer refills faster than one
// drain per period.
package queuesizesrc

type services struct{}

type Content interface{ Init(svc *services) error }

type Registry struct{ factories map[string]func() Content }

func (r *Registry) Register(class string, f func() Content) error {
	r.factories[class] = f
	return nil
}

type genA struct{}

func (g *genA) Init(svc *services) error                    { return nil }
func (g *genA) Invoke(itf, op string, arg any) (any, error) { return nil, nil }
func (g *genA) Activate() error                             { return nil }

type genB struct{}

func (g *genB) Init(svc *services) error                    { return nil }
func (g *genB) Invoke(itf, op string, arg any) (any, error) { return nil, nil }
func (g *genB) Activate() error                             { return nil }

type mill struct{}

func (m *mill) Init(svc *services) error                    { return nil }
func (m *mill) Invoke(itf, op string, arg any) (any, error) { return nil, nil }
func (m *mill) Activate() error                             { return nil }

type press struct{}

func (p *press) Init(svc *services) error                    { return nil }
func (p *press) Invoke(itf, op string, arg any) (any, error) { return nil, nil }
func (p *press) Activate() error                             { return nil }

func Wire(r *Registry) error {
	if err := r.Register("genA", func() Content { return &genA{} }); err != nil {
		return err
	}
	if err := r.Register("genB", func() Content { return &genB{} }); err != nil {
		return err
	}
	if err := r.Register("mill", func() Content { return &mill{} }); err != nil { // want `SA10 .*admitted inbound rate 300/s exceeds Mill's processing capacity 250/s`
		return err
	}
	return r.Register("press", func() Content { return &press{} }) // want `SA10 .*inflow 80/s exceeds the server's drain rate 50/s`
}
