// Corpus for the noheapalloc (SA01) analyzer.
package noheapsrc

import "fmt"

var sink any

// handler is a no-heap root: everything it can reach must not touch
// the garbage-collected heap.
//
//soleil:noheap
func handler(xs []int) int {
	s := make([]int, 4)    // want `SA01 .*make allocates`
	s = append(s, xs...)   // want `SA01 .*append allocates`
	m := map[string]int{}  // want `SA01 .*composite literal allocates`
	p := &point{x: 1}      // want `SA01 .*&composite literal allocates`
	fmt.Println(len(s))    // want `SA01 .*fmt\.Println allocates`
	go background()        // want `SA01 .*go statement allocates`
	helper()
	return len(s) + len(m) + p.x
}

type point struct{ x int }

func background() {}

// helper is NOT annotated, but it is reachable from handler and so is
// checked with handler as its root.
func helper() {
	_ = new(int) // want `SA01 .*new allocates.*reachable from no-heap root handler`
}

// closures allocates its environment when it captures x.
//
//soleil:noheap
func closures() func() int {
	x := 1
	f := func() int { return x } // want `SA01 .*closure allocates`
	return f
}

// staticFn captures nothing: a func value referencing it is static.
//
//soleil:noheap
func staticFn() func() {
	return func() {} // no capture, no environment, no finding
}

// boxing converts values into interfaces, which may allocate.
//
//soleil:noheap
func boxing(v int) any {
	sink = any(v) // want `SA01 .*interface`
	take(v)       // want `SA01 .*boxed into an interface`
	return v      // want `SA01 .*boxed into an interface`
}

func take(v any) { _ = v }

// pointers cross into interfaces without boxing a value.
//
//soleil:noheap
func pointers(p *point) any {
	take(p)
	return p
}

// suppressed demonstrates //soleil:ignore on an accepted finding.
//
//soleil:noheap
func suppressed() {
	_ = make([]int, 1) //soleil:ignore SA01 startup-only allocation, measured cold
}

// unannotated is not a root and not reachable from one: allocation
// here is the normal Go idiom and none of our business.
func unannotated() []int {
	return append(make([]int, 0, 8), 1, 2, 3)
}
