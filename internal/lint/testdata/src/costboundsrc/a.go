// Corpus for the costbound (SA08) analyzer; the matching architecture
// lives in arch.xml next to this file.
package costboundsrc

import "time"

type sched interface{ Consume(d time.Duration) error }

type env struct{}

func (e *env) Sched() sched { return nil }

type services struct{}

type Content interface{ Init(svc *services) error }

type Registry struct{ factories map[string]func() Content }

func (r *Registry) Register(class string, f func() Content) error {
	r.factories[class] = f
	return nil
}

const batch = 4

// costImpl backs Worker (cost=1ms) and demonstrates every unboundable
// construct plus a derived bound that exceeds the declared budget:
// 4 x 300us of Consume plus the 100us annotation is 1.3ms.
type costImpl struct {
	level int
	cb    func()
}

func (c *costImpl) Init(svc *services) error { return nil }

func (c *costImpl) Invoke(e *env, itf, op string, arg any) (any, error) { return nil, nil }

func (c *costImpl) Activate(e *env) error { // want `SA08 \(\*costImpl\)\.Activate of costImpl demands at least 1\.3ms of CPU per release, but component Worker declares cost=1ms`
	for c.level > 0 { // want `SA08 loop has no constant trip count`
		c.level--
	}
	c.cb() // want `SA08 call to cb cannot be resolved statically`
	for i := 0; i < batch; i++ {
		if err := e.Sched().Consume(300 * time.Microsecond); err != nil {
			return err
		}
	}
	c.measured()
	return c.deep(2)
}

// measured is a leaf whose worst case was profiled offline: the
// annotation is trusted and the unbounded body is not descended into.
//
//soleil:cost 100us
func (c *costImpl) measured() {
	for c.level < 10 {
		c.level++
	}
}

func (c *costImpl) deep(n int) error { // want `SA08 \(\*costImpl\)\.deep is recursive`
	if n == 0 {
		return nil
	}
	return c.deep(n - 1)
}

// noBudgetImpl backs a component that declares no cost= budget: SA08
// leaves it alone, unbounded loop and all.
type noBudgetImpl struct{ level int }

func (n *noBudgetImpl) Init(svc *services) error { return nil }

func (n *noBudgetImpl) Invoke(e *env, itf, op string, arg any) (any, error) { return nil, nil }

func (n *noBudgetImpl) Activate(e *env) error {
	for n.level > 0 {
		n.level--
	}
	return nil
}

func Wire(r *Registry) error {
	if err := r.Register("worker", func() Content { return &costImpl{} }); err != nil {
		return err
	}
	return r.Register("nobudget", func() Content { return &noBudgetImpl{} })
}
