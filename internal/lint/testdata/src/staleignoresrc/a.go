// Corpus for the stale-suppression report (SA00): a //soleil:ignore
// whose excused finding no longer exists is itself reported, so
// suppressions rot visibly instead of silently.
package staleignoresrc

//soleil:noheap
func fine() int {
	x := 1 //soleil:ignore SA01 once excused an allocation here // want `SA00 .*suppresses nothing`
	return x
}

// used keeps a live suppression: the allocation is real, the ignore
// still earns its keep, no SA00.
//
//soleil:noheap
func used() {
	_ = make([]int, 1) //soleil:ignore SA01 startup-only allocation, measured cold
}
