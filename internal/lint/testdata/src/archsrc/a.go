// Corpus for the archconform (SA04) analyzer; the matching
// architecture lives in arch.xml next to this file. The Registry type
// mirrors the shape of soleil/internal/assembly.Registry.
package archsrc // want `SA04 .*content class "actuator" drives component "Actuator".*never registered`

type Content interface{ Init() error }

type Registry struct {
	factories map[string]func() Content
}

func (r *Registry) Register(class string, f func() Content) error {
	r.factories[class] = f
	return nil
}

// Sensor drives an active component in the ADL but has no Activate
// method: its thread would have nothing to run.
type Sensor struct{ reading int }

func (s *Sensor) Init() error { return nil }

func (s *Sensor) Invoke(itf, op string) (any, error) {
	switch itf {
	case "iSample":
		return s.reading, nil
	}
	return nil, nil
}

// Display is passive in the ADL yet declares an Activate method that
// will never be released.
type Display struct{}

func (d *Display) Init() error     { return nil }
func (d *Display) Activate() error { return nil }

func (d *Display) Invoke(itf, op string) (any, error) {
	if itf == "iDraw" {
		return nil, nil
	}
	return nil, nil
}

// Logger is registered under a class the architecture never declares.
type Logger struct{}

func (l *Logger) Init() error { return nil }

func Wire(r *Registry) error {
	if err := r.Register("sensor", func() Content { return &Sensor{} }); err != nil { // want `SA04 .*component "Sensor" is active \(periodic\) but content type Sensor has no Activate method` `SA04 .*server interface "iCal" of component "Sensor" is never referenced`
		return err
	}
	if err := r.Register("display", func() Content { return &Display{} }); err != nil { // want `SA04 .*component "Display" is passive but content type Display declares an Activate method`
		return err
	}
	return r.Register("logger", func() Content { return &Logger{} }) // want `SA04 .*content class "logger" is registered but not declared by architecture "conformance-corpus"`
}
