// Corpus for the summary engine itself (summary.go): trusted
// annotations, effect splicing with call chains, recursion detection
// and the static cost arithmetic.
package summarysrc

import "time"

// Pure is trusted by annotation: its allocation never enters a
// summary, and callers splice nothing from it.
//
//soleil:pure
func Pure() *int { return new(int) }

// Costed is trusted by annotation: the unbounded loop is not
// descended into, the declared bound is the summary's cost.
//
//soleil:cost 2ms
func Costed() {
	for i := 0; ; i++ {
		_ = i
	}
}

// Leaf blocks: the effect is recorded at the sleep, in SA03
// vocabulary.
func Leaf() { time.Sleep(time.Millisecond) }

// Mid reaches Leaf's block one call deep: its summary carries the
// effect with a chain step through the call site.
func Mid() { Leaf() }

// CallsCosted prices its callees: 2ms from the annotation plus 1ms
// from its own constant-trip loop of Spin cycles.
func CallsCosted() {
	Costed()
	for i := 0; i < 4; i++ {
		Spin()
	}
}

//soleil:cost 250us
func Spin() {}

// Odd and Even are mutually recursive: both summaries carry the
// Recursive mark, and their cost is not trusted as a bound.
func Odd(n int) int {
	if n == 0 {
		return 0
	}
	return Even(n-1) + 1
}

func Even(n int) int {
	if n == 0 {
		return 1
	}
	return Odd(n-1) + 1
}
