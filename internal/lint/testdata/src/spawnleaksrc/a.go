// Corpus for the spawnleak (SA11) pass; the matching architecture
// lives in arch.xml next to this file. Each Invoke dispatch of the
// leaky class spawns a goroutine that can never return — the static
// shape the soak leak gates catch dynamically.
package spawnleaksrc

import "context"

type services struct{}

type Content interface{ Init(svc *services) error }

type Registry struct{ factories map[string]func() Content }

func (r *Registry) Register(class string, f func() Content) error {
	r.factories[class] = f
	return nil
}

type leaky struct {
	n  int
	ch chan int
}

func (l *leaky) Init(svc *services) error { return nil }

func (l *leaky) Invoke(itf, op string, arg any) (any, error) {
	go l.spin() // want `SA11 .*unconditional loop with no context, stop channel or WaitGroup join`
	go func() { // want `SA11 .*unconditional loop with no context, stop channel or WaitGroup join`
		for {
			l.n++
		}
	}()
	go l.drain()            // bounded: the range ends when the channel closes
	go l.serve(context.TODO()) // bounded: the loop selects on ctx.Done()
	return nil, nil
}

// spin loops forever with no stop signal: every dispatch leaks one.
func (l *leaky) spin() {
	for {
		l.n++
	}
}

// drain ends when the channel is closed — a bounded lifetime.
func (l *leaky) drain() {
	for v := range l.ch {
		l.n += v
	}
}

// serve leaves its loop when the context is cancelled — bounded.
func (l *leaky) serve(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-l.ch:
			l.n += v
		}
	}
}

func Wire(r *Registry) error {
	return r.Register("leaky", func() Content { return &leaky{} })
}
