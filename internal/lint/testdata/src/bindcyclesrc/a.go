// Corpus for the bindingcycle (SA05) analyzer; the matching
// architecture and deployment live in arch.xml and deploy.xml next to
// this file. The stubs mirror the soleil membrane vocabulary by name
// (Port/Call/Send, Registry.Register) without importing the framework.
package bindcyclesrc

type env struct{}

type port interface {
	Call(e *env, op string, arg any) (any, error)
	Send(e *env, op string, arg any) error
}

type services struct{ ports map[string]port }

func (s *services) Port(name string) port { return s.ports[name] }

type Content interface{ Init(svc *services) error }

type Registry struct{ factories map[string]func() Content }

func (r *Registry) Register(class string, f func() Content) error {
	r.factories[class] = f
	return nil
}

// alphaImpl and betaImpl really perform the mutual synchronous calls
// their bindings permit: a two-component static deadlock.
type alphaImpl struct{ svc *services }

func (a *alphaImpl) Init(svc *services) error { a.svc = svc; return nil }

func (a *alphaImpl) Invoke(e *env, itf, op string, arg any) (any, error) {
	return a.svc.Port("iBeta").Call(e, "ping", 1) // want `SA05 static deadlock: every component in the wait cycle Alpha -> Beta -> Alpha`
}

type betaImpl struct{ svc *services }

func (b *betaImpl) Init(svc *services) error { b.svc = svc; return nil }

func (b *betaImpl) Invoke(e *env, itf, op string, arg any) (any, error) {
	return b.svc.Port("iAlpha").Call(e, "pong", 2)
}

// gammaImpl and deltaImpl exchange asynchronous messages, but both
// bindings carry a block-policy contract: when either buffer fills,
// the senders wait on each other — and deploy.xml puts them on
// different nodes.
type gammaImpl struct{ svc *services }

func (g *gammaImpl) Init(svc *services) error { g.svc = svc; return nil }

func (g *gammaImpl) Invoke(e *env, itf, op string, arg any) (any, error) {
	return nil, g.svc.Port("iDelta").Send(e, "fwd", 3)
}

type deltaImpl struct{ svc *services }

func (d *deltaImpl) Init(svc *services) error { d.svc = svc; return nil }

func (d *deltaImpl) Invoke(e *env, itf, op string, arg any) (any, error) {
	return nil, d.svc.Port("iGamma").Send(e, "ack", 4) // want `SA05 static deadlock: every component in the wait cycle Delta -> Gamma -> Delta.*spans deployment nodes n1, n2`
}

// epsilonImpl calls out, but zetaImpl never touches its client port:
// the ADL permits a cycle the code cannot perform, and refinement
// drops the Zeta -> Epsilon edge. No finding.
type epsilonImpl struct{ svc *services }

func (p *epsilonImpl) Init(svc *services) error { p.svc = svc; return nil }

func (p *epsilonImpl) Invoke(e *env, itf, op string, arg any) (any, error) {
	return p.svc.Port("iZeta").Call(e, "fetch", 5)
}

type zetaImpl struct{ hits int }

func (z *zetaImpl) Init(svc *services) error { return nil }

func (z *zetaImpl) Invoke(e *env, itf, op string, arg any) (any, error) {
	z.hits++
	return z.hits, nil
}

func Wire(r *Registry) error {
	if err := r.Register("alpha", func() Content { return &alphaImpl{} }); err != nil {
		return err
	}
	if err := r.Register("beta", func() Content { return &betaImpl{} }); err != nil {
		return err
	}
	if err := r.Register("gamma", func() Content { return &gammaImpl{} }); err != nil {
		return err
	}
	if err := r.Register("delta", func() Content { return &deltaImpl{} }); err != nil {
		return err
	}
	if err := r.Register("epsilon", func() Content { return &epsilonImpl{} }); err != nil {
		return err
	}
	return r.Register("zeta", func() Content { return &zetaImpl{} })
}
