// Corpus for the lockorder (SA06) analyzer; the matching architecture
// lives in arch.xml next to this file.
package lockordersrc

import "sync"

type services struct{}

type Content interface{ Init(svc *services) error }

type Registry struct{ factories map[string]func() Content }

func (r *Registry) Register(class string, f func() Content) error {
	r.factories[class] = f
	return nil
}

// lockImpl nests its two mutexes in both orders on paths reachable
// from Invoke: two released threads interleaving drainA and drainB
// deadlock the component.
type lockImpl struct {
	mu sync.Mutex
	io sync.Mutex
	n  int
}

func (l *lockImpl) Init(svc *services) error { return nil }

func (l *lockImpl) Invoke(itf, op string, arg any) (any, error) {
	l.drainA()
	l.drainB()
	return l.n, nil
}

func (l *lockImpl) drainA() {
	l.mu.Lock()
	l.io.Lock() // want `SA06 implementation lockImpl of content class "locker" acquires lockImpl\.io and lockImpl\.mu in both orders`
	l.n++
	l.io.Unlock()
	l.mu.Unlock()
}

func (l *lockImpl) drainB() {
	l.io.Lock()
	l.mu.Lock()
	l.n--
	l.mu.Unlock()
	l.io.Unlock()
}

// cleanImpl takes the same pair in one order everywhere (with the
// deferred-unlock idiom on one path): no inversion, no finding.
type cleanImpl struct {
	mu sync.Mutex
	io sync.Mutex
	n  int
}

func (c *cleanImpl) Init(svc *services) error { return nil }

func (c *cleanImpl) Invoke(itf, op string, arg any) (any, error) {
	c.fill()
	c.flush()
	return c.n, nil
}

func (c *cleanImpl) fill() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.io.Lock()
	c.n++
	c.io.Unlock()
}

func (c *cleanImpl) flush() {
	c.mu.Lock()
	c.io.Lock()
	c.n--
	c.io.Unlock()
	c.mu.Unlock()
}

func Wire(r *Registry) error {
	if err := r.Register("locker", func() Content { return &lockImpl{} }); err != nil {
		return err
	}
	return r.Register("cleanlocker", func() Content { return &cleanImpl{} })
}
