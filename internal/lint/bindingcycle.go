package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"soleil/internal/model"
	"soleil/internal/validate"
)

// BindingCycle (SA05) builds the synchronous-binding wait graph of
// the architecture and reports every cycle as a static deadlock. A
// binding makes its client wait when it is synchronous (the caller
// blocks for the reply) or asynchronous with a block overload policy
// (the caller blocks for admission capacity); a cycle of waiting
// edges means every component in it is waiting for the next — the
// classic deadlock the soak scenarios can only hit at runtime, found
// here from the description alone.
//
// The graph is refined by the code facts: when the client's content
// class is registered and none of its implementations ever invokes
// the binding's client interface from Invoke/Activate-reachable code,
// the edge is dropped — the architecture permits the wait but the
// implementation never performs it. Unregistered classes keep their
// edges (conservative). Re-entrant server loops — Invoke calling
// back into a component that is, transitively, its own caller — are
// cycles of this graph and need no special casing.
//
// With a deployment descriptor, a cycle whose components straddle
// nodes is escalated: the wait then crosses the transport, where
// RT15/RT17 already restrict synchronous and block-policy bindings,
// and a remote peer outage turns the deadlock into a distributed one.
var BindingCycle = &ArchAnalyzer{
	Name: "bindingcycle",
	Rule: "SA05",
	Doc: "reports cycles in the synchronous-binding wait graph (sync bindings and " +
		"block-policy contracts, refined by the ports the code actually uses) as " +
		"static deadlocks, escalating cycles that span deployment nodes",
	Run: runBindingCycle,
}

// waitEdge is one client-waits-for-server edge of the graph.
type waitEdge struct {
	from, to string
	binding  *model.Binding
	anchor   token.Pos // first code site performing the wait, if known
}

func runBindingCycle(p *ArchPass) error {
	facts := p.Facts
	edges := map[string][]waitEdge{}
	for _, b := range facts.Arch.Bindings() {
		blockContract := b.Contract != nil && b.Contract.Policy == model.Block
		if b.Protocol != model.Synchronous && !blockContract {
			continue
		}
		e := waitEdge{from: b.Client.Component, to: b.Server.Component, binding: b}
		if impls := facts.ImplsOf(b.Client.Component); len(impls) > 0 {
			used := false
			for _, im := range impls {
				if pu, ok := im.UsesInterface(b.Client.Interface); ok {
					used = true
					if !e.anchor.IsValid() || pu.Pos < e.anchor {
						e.anchor = pu.Pos
					}
				}
			}
			if !used {
				continue // registered code never performs this wait
			}
		}
		edges[e.from] = append(edges[e.from], e)
	}

	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	var path []waitEdge
	onPath := map[string]int{}
	var dfs func(n string)
	dfs = func(n string) {
		for _, e := range edges[n] {
			if i, ok := onPath[e.to]; ok {
				cycle := append(append([]waitEdge{}, path[i:]...), e)
				reportCycle(p, canonicalize(cycle))
				continue
			}
			onPath[e.to] = len(path) + 1
			path = append(path, e)
			dfs(e.to)
			path = path[:len(path)-1]
			delete(onPath, e.to)
		}
	}
	for _, n := range nodes {
		onPath[n] = 0
		dfs(n)
		delete(onPath, n)
	}
	return nil
}

// canonicalize rotates the cycle so it starts at its
// lexicographically smallest component, making every traversal of the
// same cycle report identically (and exactly once, via the reported
// set).
func canonicalize(cycle []waitEdge) []waitEdge {
	min := 0
	for i, e := range cycle {
		if e.from < cycle[min].from {
			min = i
		}
	}
	return append(append([]waitEdge{}, cycle[min:]...), cycle[:min]...)
}

func cycleKey(cycle []waitEdge) string {
	var sb strings.Builder
	for _, e := range cycle {
		sb.WriteString(e.from)
		sb.WriteString("->")
	}
	return sb.String()
}

func reportCycle(p *ArchPass, cycle []waitEdge) {
	if p.reportedCycles == nil {
		p.reportedCycles = map[string]bool{}
	}
	key := cycleKey(cycle)
	if p.reportedCycles[key] {
		return
	}
	p.reportedCycles[key] = true

	var chain, waits []string
	for _, e := range cycle {
		chain = append(chain, e.from)
		how := e.binding.Protocol.String()
		if e.binding.Contract != nil && e.binding.Contract.Policy == model.Block {
			how += ", block admission"
		}
		waits = append(waits, fmt.Sprintf("%s waits on %s (%s)", e.from, e.to, how))
	}
	chain = append(chain, cycle[0].from)
	subject := strings.Join(chain, " -> ")

	msg := fmt.Sprintf("static deadlock: every component in the wait cycle %s blocks on the next: %s",
		subject, strings.Join(waits, "; "))

	if len(p.Facts.Assign) > 0 {
		nodeSet := map[string]bool{}
		for _, e := range cycle {
			if n := p.Facts.Assign[e.from]; n != "" {
				nodeSet[n] = true
			}
		}
		if len(nodeSet) > 1 {
			nodes := make([]string, 0, len(nodeSet))
			for n := range nodeSet {
				nodes = append(nodes, n)
			}
			sort.Strings(nodes)
			msg += fmt.Sprintf("; the cycle spans deployment nodes %s, so the wait crosses the transport"+
				" (RT15/RT17 restrict these bindings) and a remote peer outage turns the deadlock distributed",
				strings.Join(nodes, ", "))
		}
	}

	pos := p.Facts.Anchor()
	for _, e := range cycle {
		if e.anchor.IsValid() {
			pos = e.anchor
			break
		}
	}
	p.Report(Finding{
		Pos: pos, Severity: validate.Error, Subject: subject, Message: msg,
		Suggestion: "break the cycle: make one binding asynchronous with a shed or degrade policy, " +
			"or collapse the mutually waiting components into one",
	})
}
