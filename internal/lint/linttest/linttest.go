// Package linttest is the analysistest equivalent for the stdlib-only
// analyzer suite in internal/lint: it loads a corpus package from a
// testdata directory, runs one analyzer over it, and checks the
// findings against `// want "regexp"` comments placed on the
// offending lines. Several expectations may share one comment
// (`// want "re1" "re2"`), and a line with no want comment must
// produce no finding.
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"soleil/internal/adl"
	"soleil/internal/lint"
	"soleil/internal/model"
	"soleil/internal/validate"
)

// Run loads the corpus package at dir, applies the analyzer and
// compares findings with the corpus's want comments. When archPath is
// non-empty the ADL file is supplied to the pass (archconform).
func Run(t *testing.T, dir string, a *lint.Analyzer, archPath string) []validate.Diagnostic {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	var arch *model.Architecture
	if archPath != "" {
		if arch, err = adl.DecodeFile(archPath); err != nil {
			t.Fatalf("loading ADL %s: %v", archPath, err)
		}
	}
	diags, err := lint.RunPackage(pkg, arch, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkExpectations(t, pkg, diags)
	return diags
}

// RunArch loads the corpus package at dir, fuses it with the ADL
// architecture at archPath (and the deployment at deployPath, when
// non-empty), applies one whole-architecture analyzer and compares the
// findings with the corpus's want comments.
func RunArch(t *testing.T, dir string, a *lint.ArchAnalyzer, archPath, deployPath string) []validate.Diagnostic {
	t.Helper()
	pkg, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	arch, err := adl.DecodeFile(archPath)
	if err != nil {
		t.Fatalf("loading ADL %s: %v", archPath, err)
	}
	var dep *model.Deployment
	if deployPath != "" {
		if dep, err = adl.DecodeDeploymentFile(deployPath); err != nil {
			t.Fatalf("loading deployment %s: %v", deployPath, err)
		}
	}
	facts, err := lint.BuildArchFacts(arch, dep, []*lint.Package{pkg})
	if err != nil {
		t.Fatalf("fusing facts for %s: %v", dir, err)
	}
	diags, err := lint.RunArchPasses(facts, []*lint.ArchAnalyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkExpectations(t, pkg, diags)
	return diags
}

type key struct {
	file string // base name
	line int
}

type want struct {
	re      *regexp.Regexp
	text    string
	matched bool
}

// Run-to-ground rendering of a diagnostic for error messages.
func render(d validate.Diagnostic) string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Message)
}

func checkExpectations(t *testing.T, pkg *lint.Package, diags []validate.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg.Fset, pkg.Files)
	for _, d := range diags {
		file, line, ok := splitPos(d.Pos)
		if !ok {
			t.Errorf("finding without position: %s", render(d))
			continue
		}
		k := key{file: file, line: line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Rule+" "+d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", render(d))
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, w.text)
			}
		}
	}
}

func splitPos(pos string) (file string, line int, ok bool) {
	parts := strings.Split(pos, ":")
	if len(parts) < 2 {
		return "", 0, false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, false
	}
	return filepath.Base(parts[0]), n, true
}

var wantRE = regexp.MustCompile(`//\s*want\b(.*)`)
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[key][]*want {
	t.Helper()
	wants := map[key][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{file: filepath.Base(pos.Filename), line: pos.Line}
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					text := arg[1]
					if text == "" {
						unq, err := strconv.Unquote(`"` + arg[2] + `"`)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, arg[2], err)
						}
						text = unq
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, text, err)
					}
					wants[k] = append(wants[k], &want{re: re, text: text})
				}
			}
		}
	}
	return wants
}
