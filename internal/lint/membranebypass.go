package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"soleil/internal/model"
	"soleil/internal/validate"
)

// MembraneBypass (SA07) catches mutable state handed across a binding
// by reference. Every interaction between components is supposed to
// cross the membrane — admission gates, metrics, panic isolation —
// but a pointer, slice, map or channel argument gives the server a
// direct line back into the client's state (and vice versa for
// reference-typed Invoke results on synchronous bindings): later
// mutations bypass the membrane entirely, and on a cross-node
// deployment the alias silently stops being shared at all.
//
// Flagged: Call/Send arguments and, for implementations serving a
// synchronous binding, the first Invoke result, when the static type
// is reference-carrying (pointer, slice, map, channel — interface
// types are not flagged: the framework's envelope is `any` and the
// dynamic value is checked where it is built), the type does not
// provide a DeepCopy method, and the value derives from the receiver
// or a package-level variable. Freshly allocated locals are fine —
// they escape on purpose.
var MembraneBypass = &ArchAnalyzer{
	Name: "membranebypass",
	Rule: "SA07",
	Doc: "flags receiver- or package-state handed across a binding by pointer, " +
		"slice, map or channel without a DeepCopy — aliases that bypass the " +
		"membrane's gates and break on cross-node deployments",
	Run: runMembraneBypass,
}

func runMembraneBypass(p *ArchPass) error {
	facts := p.Facts
	// clientItfs[class] = set of client interface names bound for any
	// component using the class; syncServer[class] = true when some
	// component using the class serves a synchronous binding.
	clientItfs := map[string]map[string]bool{}
	syncServer := map[string]bool{}
	contentOf := map[string]string{}
	for _, c := range facts.Arch.Components() {
		contentOf[c.Name()] = c.Content()
	}
	for _, b := range facts.Arch.Bindings() {
		if class := contentOf[b.Client.Component]; class != "" {
			if clientItfs[class] == nil {
				clientItfs[class] = map[string]bool{}
			}
			clientItfs[class][b.Client.Interface] = true
		}
		if b.Protocol == model.Synchronous {
			if class := contentOf[b.Server.Component]; class != "" {
				syncServer[class] = true
			}
		}
	}

	for _, class := range facts.Classes() {
		for _, im := range facts.Impls[class] {
			for _, pu := range im.PortUses {
				if !clientItfs[class][pu.Interface] {
					continue // port not bound in this architecture
				}
				if len(pu.Call.Args) < 3 {
					continue
				}
				checkCrossing(p, im, pu.Call.Args[2], pu.In, fmt.Sprintf(
					"argument of %s on interface %q", callVerb(pu.Sync), pu.Interface))
			}
			if syncServer[class] {
				checkInvokeResults(p, im)
			}
		}
	}
	return nil
}

func callVerb(sync bool) string {
	if sync {
		return "Call"
	}
	return "Send"
}

// checkInvokeResults applies the crossing check to the first result of
// every return in Invoke — on a synchronous binding that value travels
// back to the client.
func checkInvokeResults(p *ArchPass, im *Impl) {
	inv, ok := im.Methods["Invoke"]
	if !ok {
		return
	}
	ast.Inspect(inv.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		checkCrossing(p, im, ret.Results[0], inv,
			"Invoke result returned over a synchronous binding")
		return true
	})
}

// checkCrossing reports expr when it aliases component or package
// state with a reference-carrying type that has no DeepCopy.
func checkCrossing(p *ArchPass, im *Impl, expr ast.Expr, in *ast.FuncDecl, what string) {
	t := im.Pkg.Info.TypeOf(expr)
	if t == nil || !referenceCarrying(t) {
		return
	}
	if named := namedOf(t); named != nil && hasMethod(named, "DeepCopy") {
		return
	}
	origin, ok := stateOrigin(im, in, expr)
	if !ok {
		return
	}
	p.Report(Finding{
		Pos:      expr.Pos(),
		Severity: validate.Error,
		Subject:  im.Class,
		Message: fmt.Sprintf("%s aliases %s through a %s: the peer component gets a live reference"+
			" into this component's state, bypassing the membrane's admission gates, metrics and panic"+
			" isolation — and on a cross-node deployment the alias is silently severed",
			what, origin, typeKind(t)),
		Suggestion: "pass a value copy (or a type with a DeepCopy method); share results, not state",
	})
}

// referenceCarrying reports whether values of t alias backing storage
// when handed over: pointers, slices, maps and channels. Interfaces
// are deliberately excluded — the membrane envelope itself is `any`.
func referenceCarrying(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Pointer:
		return "pointer"
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	case *types.Chan:
		return "channel"
	}
	return "reference"
}

// stateOrigin strips the expression to its base identifier and
// reports whether it denotes component state (the receiver of the
// enclosing method) or a package-level variable.
func stateOrigin(im *Impl, in *ast.FuncDecl, expr ast.Expr) (string, bool) {
	base := stateBaseIdent(expr)
	if base == nil {
		return "", false
	}
	obj := im.Pkg.Info.Uses[base]
	v, ok := obj.(*types.Var)
	if !ok {
		return "", false
	}
	if recv := receiverObj(im.Pkg.Info, in); recv != nil && v == recv {
		return fmt.Sprintf("the receiver state of %s", im.Named.Obj().Name()), true
	}
	// Fields reached through the receiver resolve the base ident to the
	// receiver var itself (handled above); a package-level var has
	// package scope as parent.
	if v.Parent() == im.Pkg.Pkg.Scope() {
		return fmt.Sprintf("package-level variable %s", v.Name()), true
	}
	return "", false
}

// stateBaseIdent unwraps &x, *x, parens, x[i], x[i:j] and x.f chains
// down to the root identifier. (Wider than scoperef's baseIdent: the
// address-of and slice forms matter for arguments.)
func stateBaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.UnaryExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}
