package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"soleil/internal/model"
	"soleil/internal/rtsj/analysis"
	"soleil/internal/validate"
)

// FlowLatency (SA09) composes per-hop worst-case response along every
// binding path of the architecture and checks the sums against the
// latency contracts and the clients' deadlines. RT16 already judges
// each contracted binding in isolation; this pass closes the gap
// "Contract Aware Components" identifies between per-binding
// contracts and whole-path QoS: a 1 ms terminal budget is unmeetable
// when four queued releases and a node hop sit upstream of it, even
// though every hop honours its own contract.
//
// The hop model prices three components of response:
//
//   - serve: the server's worst-case response from the same
//     response-time analysis the validator runs (RT12), falling back
//     to the declared cost when the server is outside the task set;
//   - queue residence: for an asynchronous hop, a full buffer of
//     BufferSize releases drained one per activation interval
//     (period for periodic servers, minimum interarrival for
//     sporadic ones);
//   - link: a cross-node penalty when the deployment assigns the
//     endpoints to different nodes, priced from the measured
//     cluster-loopback round trip in BENCH_cluster.json.
//
// Two checks: every path ending in a binding with a latencyBudget
// must fit the budget (worst path reported per contract), and every
// all-synchronous chain from a periodic client must fit the client's
// deadline — the client blocks through the whole chain inside its own
// release.
var FlowLatency = &ArchAnalyzer{
	Name: "flowlatency",
	Rule: "SA09",
	Doc: "composes worst-case response (RTA + queue residence + cross-node link penalty) " +
		"along every binding path and flags paths exceeding the terminal contract's " +
		"latencyBudget or the client's deadline",
	Run: runFlowLatency,
}

// defaultLinkPenalty is the cross-node hop price when no benchmark
// file is available: the order of a loopback TCP round trip.
const defaultLinkPenalty = 300 * time.Microsecond

// flowPathCap bounds the simple-path enumeration; architectures are
// small, this is a defensive ceiling.
const flowPathCap = 4096

func runFlowLatency(p *ArchPass) error {
	facts := p.Facts
	responses := rtaResponses(facts.Arch)
	out := map[string][]*model.Binding{}
	for _, b := range facts.Arch.Bindings() {
		out[b.Client.Component] = append(out[b.Client.Component], b)
	}

	type worst struct {
		sum  time.Duration
		path []*model.Binding
	}
	worstPerContract := map[*model.Binding]worst{}
	worstSyncChain := map[string]worst{}

	origins := make([]string, 0, len(out))
	for c := range out {
		origins = append(origins, c)
	}
	sort.Strings(origins)

	paths := 0
	var path []*model.Binding
	onPath := map[string]bool{}
	var dfs func(from string, sum time.Duration, allSync bool, origin string)
	dfs = func(from string, sum time.Duration, allSync bool, origin string) {
		if paths >= flowPathCap {
			return
		}
		for _, b := range out[from] {
			if onPath[b.Server.Component] {
				continue // cycles are SA05's finding, not a latency path
			}
			paths++
			h := hopLatency(facts, responses, b)
			total := sum + h
			path = append(path, b)
			if c := b.Contract; c != nil && c.LatencyBudget > 0 {
				if w, ok := worstPerContract[b]; !ok || total > w.sum {
					worstPerContract[b] = worst{sum: total, path: append([]*model.Binding{}, path...)}
				}
			}
			sync := allSync && b.Protocol == model.Synchronous
			if sync {
				if w, ok := worstSyncChain[origin]; !ok || total > w.sum {
					worstSyncChain[origin] = worst{sum: total, path: append([]*model.Binding{}, path...)}
				}
			}
			onPath[b.Server.Component] = true
			dfs(b.Server.Component, total, sync, origin)
			delete(onPath, b.Server.Component)
			path = path[:len(path)-1]
		}
	}
	for _, origin := range origins {
		onPath[origin] = true
		dfs(origin, 0, true, origin)
		delete(onPath, origin)
	}

	// Contracted paths vs latencyBudget.
	var contracted []*model.Binding
	for b := range worstPerContract {
		contracted = append(contracted, b)
	}
	sort.Slice(contracted, func(i, j int) bool {
		return contracted[i].String() < contracted[j].String()
	})
	for _, b := range contracted {
		w := worstPerContract[b]
		if w.sum <= b.Contract.LatencyBudget {
			continue
		}
		p.Report(Finding{
			Pos:      flowAnchor(facts, w.path),
			Severity: validate.Error,
			Subject:  b.String(),
			Message: fmt.Sprintf("end-to-end worst-case latency %v along %s exceeds the contract's latencyBudget %v: %s",
				w.sum, pathString(w.path), b.Contract.LatencyBudget, hopBreakdown(facts, responses, w.path)),
			Suggestion: "shrink upstream buffers, speed up the servers on the path, or raise the budget to what the path can deliver",
			Flow:       pathFlow(facts, responses, w.path),
		})
	}

	// All-sync chains vs the origin client's deadline.
	var chainOrigins []string
	for c := range worstSyncChain {
		chainOrigins = append(chainOrigins, c)
	}
	sort.Strings(chainOrigins)
	for _, origin := range chainOrigins {
		cli, ok := facts.Arch.Component(origin)
		if !ok || cli.Kind() != model.Active {
			continue
		}
		act := cli.Activation()
		if act == nil || act.Kind != model.PeriodicActivation {
			continue
		}
		deadline := act.Deadline
		if deadline <= 0 {
			deadline = act.Period
		}
		if deadline <= 0 {
			continue
		}
		w := worstSyncChain[origin]
		if w.sum <= deadline {
			continue
		}
		p.Report(Finding{
			Pos:      flowAnchor(facts, w.path),
			Severity: validate.Error,
			Subject:  origin,
			Message: fmt.Sprintf("synchronous chain %s costs %v in the worst case, exceeding %s's deadline %v: "+
				"the client blocks through the whole chain inside its own release (%s)",
				pathString(w.path), w.sum, origin, deadline, hopBreakdown(facts, responses, w.path)),
			Suggestion: "make a hop asynchronous to decouple the chain from the client's release, or shorten the path",
			Flow:       pathFlow(facts, responses, w.path),
		})
	}
	return nil
}

// rtaResponses mirrors the validator's RT12 task construction and
// returns the worst-case responses by component name; empty when the
// analysis is inapplicable.
func rtaResponses(arch *model.Architecture) map[string]time.Duration {
	var tasks []analysis.Task
	for _, c := range arch.ComponentsOfKind(model.Active) {
		act := c.Activation()
		if act.Kind != model.PeriodicActivation || act.Cost <= 0 {
			continue
		}
		td, err := arch.EffectiveThreadDomain(c)
		if err != nil {
			continue
		}
		tasks = append(tasks, analysis.Task{
			Name:     c.Name(),
			Period:   act.Period,
			Cost:     act.Cost,
			Deadline: act.Deadline,
			Priority: td.Domain().Priority,
		})
	}
	if len(tasks) == 0 {
		return nil
	}
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].Priority > tasks[j].Priority })
	rs, err := analysis.ResponseTimeAnalysis(tasks)
	if err != nil {
		return nil
	}
	out := make(map[string]time.Duration, len(rs))
	for _, r := range rs {
		out[r.Task] = r.WorstCase
	}
	return out
}

// hopLatency prices one binding hop: link penalty + queue residence +
// the server's response.
func hopLatency(facts *ArchFacts, responses map[string]time.Duration, b *model.Binding) time.Duration {
	var d time.Duration
	if crossNode(facts, b) {
		d += facts.LinkPenalty
	}
	d += queueResidence(facts, b)
	d += serveTime(facts, responses, b.Server.Component)
	return d
}

func crossNode(facts *ArchFacts, b *model.Binding) bool {
	cn, sn := facts.Assign[b.Client.Component], facts.Assign[b.Server.Component]
	return cn != "" && sn != "" && cn != sn
}

// queueResidence is the worst-case wait in an asynchronous hop's
// buffer: a full buffer of BufferSize releases, drained one per
// server activation interval.
func queueResidence(facts *ArchFacts, b *model.Binding) time.Duration {
	if b.Protocol != model.Asynchronous || b.BufferSize <= 0 {
		return 0
	}
	srv, ok := facts.Arch.Component(b.Server.Component)
	if !ok {
		return 0
	}
	act := srv.Activation()
	if act == nil || act.Period <= 0 {
		return 0 // sporadic with no minimum interarrival: drains on arrival
	}
	return time.Duration(b.BufferSize) * act.Period
}

// serveTime is the server's worst-case response: the RTA result when
// the server is in the task set, the declared cost otherwise.
func serveTime(facts *ArchFacts, responses map[string]time.Duration, server string) time.Duration {
	if r, ok := responses[server]; ok {
		return r
	}
	if c, ok := facts.Arch.Component(server); ok {
		if act := c.Activation(); act != nil {
			return act.Cost
		}
	}
	return 0
}

func pathString(path []*model.Binding) string {
	var sb strings.Builder
	for i, b := range path {
		if i == 0 {
			sb.WriteString(b.Client.Component)
		}
		fmt.Fprintf(&sb, " -%s-> %s", b.Client.Interface, b.Server.Component)
	}
	return sb.String()
}

// hopBreakdown itemizes the path sum so the finding shows its math.
func hopBreakdown(facts *ArchFacts, responses map[string]time.Duration, path []*model.Binding) string {
	var parts []string
	for _, b := range path {
		var terms []string
		if crossNode(facts, b) {
			terms = append(terms, fmt.Sprintf("link %v", facts.LinkPenalty))
		}
		if q := queueResidence(facts, b); q > 0 {
			terms = append(terms, fmt.Sprintf("queue %d×%v", b.BufferSize, q/time.Duration(b.BufferSize)))
		}
		if s := serveTime(facts, responses, b.Server.Component); s > 0 {
			terms = append(terms, fmt.Sprintf("serve %v", s))
		}
		if len(terms) == 0 {
			terms = append(terms, "0")
		}
		parts = append(parts, fmt.Sprintf("%s: %s", b.Server.Component, strings.Join(terms, " + ")))
	}
	return strings.Join(parts, "; ")
}

// pathFlow renders the path as flow steps for SARIF codeFlows.
func pathFlow(facts *ArchFacts, responses map[string]time.Duration, path []*model.Binding) []validate.FlowStep {
	var flow []validate.FlowStep
	for _, b := range path {
		note := fmt.Sprintf("%s -> %s (%s", b.Client.Component, b.Server.Component, b.Protocol)
		if crossNode(facts, b) {
			note += fmt.Sprintf(", cross-node +%v", facts.LinkPenalty)
		}
		if q := queueResidence(facts, b); q > 0 {
			note += fmt.Sprintf(", queue residence %v", q)
		}
		if s := serveTime(facts, responses, b.Server.Component); s > 0 {
			note += fmt.Sprintf(", serve %v", s)
		}
		note += ")"
		step := validate.FlowStep{Note: note}
		if pos := implAnchor(facts, b.Server.Component); pos != "" {
			step.Pos = pos
		}
		flow = append(flow, step)
	}
	return flow
}

// flowAnchor picks a code position for a path finding: the first
// endpoint along the path with a registered implementation, else the
// package anchor.
func flowAnchor(facts *ArchFacts, path []*model.Binding) token.Pos {
	for _, b := range path {
		for _, name := range []string{b.Client.Component, b.Server.Component} {
			for _, im := range facts.ImplsOf(name) {
				if im.RegPos.IsValid() {
					return im.RegPos
				}
			}
		}
	}
	return facts.Anchor()
}

func implAnchor(facts *ArchFacts, component string) string {
	for _, im := range facts.ImplsOf(component) {
		if im.RegPos.IsValid() {
			return facts.Fset.Position(im.RegPos).String()
		}
	}
	return ""
}

// linkPenaltyFromBench prices the cross-node hop from the measured
// cluster-loopback round trip in BENCH_cluster.json (searched in dir
// and its parents), halved to a one-way figure; the default stands in
// when no benchmark has been recorded.
func linkPenaltyFromBench(dir string) time.Duration {
	if dir == "" {
		dir = "."
	}
	for d := dir; ; {
		b, err := os.ReadFile(filepath.Join(d, "BENCH_cluster.json"))
		if err == nil {
			// Current files use the shared bench envelope ({panel,
			// commit, goos, rows}); files written before the schema
			// was unified keyed the same rows as "scenarios".
			type clusterRow struct {
				Scenario  string `json:"scenario"`
				RTTMedian int64  `json:"rttMedian"`
			}
			var doc struct {
				Rows      []clusterRow `json:"rows"`
				Scenarios []clusterRow `json:"scenarios"`
			}
			if json.Unmarshal(b, &doc) == nil {
				rows := doc.Rows
				if len(rows) == 0 {
					rows = doc.Scenarios
				}
				for _, s := range rows {
					if s.Scenario == "cluster-loopback" && s.RTTMedian > 0 {
						return time.Duration(s.RTTMedian) / 2
					}
				}
			}
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	return defaultLinkPenalty
}
