package lint

import (
	"go/ast"
	"go/types"
)

// declaredFuncs maps every function and method object declared in the
// package to its syntax.
func declaredFuncs(p *Pass) map[*types.Func]*ast.FuncDecl {
	return declFuncsOf(p.Files, p.Info)
}

func declFuncsOf(files []*ast.File, info *types.Info) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fn.Name].(*types.Func); ok {
				out[obj] = fn
			}
		}
	}
	return out
}

// staticCallee resolves the statically known callee of a call
// expression: a package function, a method on a concrete receiver, or
// nil for builtins, dynamic calls and interface dispatch.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				// Interface dispatch has no static body to follow.
				if types.IsInterface(sel.Recv()) {
					return nil
				}
				return f
			}
			return nil
		}
		// Package-qualified call (fmt.Println): Uses on the Sel.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// reachable walks the static call graph from the given roots and
// returns, for every function declared in this package that a root can
// reach, the name of (one of) its roots. Interface dispatch,
// cross-package calls and function values are not followed — the
// analyzers are deliberately intraprocedural across package
// boundaries, which keeps them fast and predictable; annotate callees
// directly when they live elsewhere.
func reachable(p *Pass, decls map[*types.Func]*ast.FuncDecl, roots []*ast.FuncDecl) map[*ast.FuncDecl]string {
	return reachableFuncs(p.Info, decls, roots)
}

func reachableFuncs(info *types.Info, decls map[*types.Func]*ast.FuncDecl, roots []*ast.FuncDecl) map[*ast.FuncDecl]string {
	out := map[*ast.FuncDecl]string{}
	var visit func(fn *ast.FuncDecl, root string)
	visit = func(fn *ast.FuncDecl, root string) {
		if _, seen := out[fn]; seen {
			return
		}
		out[fn] = root
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := staticCallee(info, call); callee != nil {
				if decl, ok := decls[callee]; ok {
					visit(decl, root)
				}
			}
			return true
		})
	}
	for _, r := range roots {
		visit(r, funcName(r))
	}
	return out
}

// isAllocExpr reports whether e, on its own, allocates on the heap (or
// must be assumed to): make/new/append calls, slice, map and pointer
// composite literals, and closures that capture state.
func isAllocExpr(info *types.Info, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "make", "new", "append":
					return b.Name(), true
				}
			}
		}
	case *ast.UnaryExpr:
		if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
			return "&composite literal", true
		}
	case *ast.CompositeLit:
		if t := info.TypeOf(x); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				return "composite literal", true
			}
		}
	case *ast.FuncLit:
		if captures(info, x) {
			return "closure", true
		}
	}
	return "", false
}

// containsAlloc reports whether any subexpression of e allocates.
func containsAlloc(info *types.Info, e ast.Expr) (string, bool) {
	var kind string
	ast.Inspect(e, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		if sub, ok := n.(ast.Expr); ok {
			if k, ok := isAllocExpr(info, sub); ok {
				kind = k
				return false
			}
		}
		return true
	})
	return kind, kind != ""
}

// captures reports whether the function literal references any
// variable declared outside itself (other than package-level state):
// such closures allocate their environment.
func captures(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
			return true // package-level: not part of the environment
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			found = true
		}
		return true
	})
	return found
}

// declaredOutside reports whether the identifier's object is declared
// outside the [lo,hi] node span — i.e. the expression refers to state
// that outlives the span (captured variables, package-level vars).
func declaredOutside(info *types.Info, id *ast.Ident, lo, hi ast.Node) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.Pos() == 0 {
		return true // no syntax: imported or synthetic, certainly outside
	}
	return v.Pos() < lo.Pos() || v.Pos() > hi.End()
}

// refCarrying reports whether t can carry a reference across a scope
// boundary: pointers, slices, maps, channels, functions and
// interfaces. Plain values copied out of a scope are safe.
func refCarrying(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	}
	return false
}
