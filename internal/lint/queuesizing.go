package lint

import (
	"fmt"
	"go/token"
	"sort"
	"time"

	"soleil/internal/model"
	"soleil/internal/validate"
)

// QueueSizing (SA10) propagates admitted message rates through the
// binding fan-in trees of the architecture and checks them against
// downstream capacity — RT16's per-binding utilization math applied to
// the composed system. Each binding carries a statically known
// outflow: the contract's maxRate when one is declared, the client's
// release rate (1/period for periodic clients, 1/minimum-interarrival
// for sporadic ones) otherwise, or the rate propagated into the
// client from its own inbound bindings. Two findings:
//
//   - a server whose total inbound rate exceeds its processing
//     capacity (1/cost per release) is overloaded by construction —
//     each contract may fit individually while the fan-in sum does
//     not;
//   - an asynchronous buffer whose inflow exceeds the server's drain
//     rate fills at a computable rate and overflows no matter its
//     size — the buffer only reshapes bursts, it cannot absorb a
//     sustained rate mismatch.
var QueueSizing = &ArchAnalyzer{
	Name: "queuesizing",
	Rule: "SA10",
	Doc: "propagates maxRate/burst through binding fan-in trees and flags servers whose " +
		"admitted inbound rate exceeds their processing capacity, and async buffers that " +
		"statically overflow",
	Run: runQueueSizing,
}

func runQueueSizing(p *ArchPass) error {
	facts := p.Facts
	bindings := facts.Arch.Bindings()

	// inbound rate per component, iterated to a fixpoint so rates
	// propagate through relay components that have no activation rate
	// of their own (bounded: rates only flow forward, cycles damp out
	// at the iteration cap).
	inbound := map[string]float64{}
	for i := 0; i < len(bindings)+1; i++ {
		next := map[string]float64{}
		for _, b := range bindings {
			if r := bindingRate(facts, inbound, b); r > 0 {
				next[b.Server.Component] += r
			}
		}
		if ratesEqual(inbound, next) {
			break
		}
		inbound = next
	}

	// Fan-in sum vs server capacity.
	servers := make([]string, 0, len(inbound))
	for s := range inbound {
		servers = append(servers, s)
	}
	sort.Strings(servers)
	for _, name := range servers {
		srv, ok := facts.Arch.Component(name)
		if !ok {
			continue
		}
		act := srv.Activation()
		if act == nil || act.Cost <= 0 {
			continue // unknown cost: no static capacity to compare against
		}
		capacity := float64(time.Second) / float64(act.Cost)
		rate := inbound[name]
		if rate <= capacity {
			continue
		}
		var feeds []string
		var flow []validate.FlowStep
		for _, b := range bindings {
			if b.Server.Component != name {
				continue
			}
			r := bindingRate(facts, inbound, b)
			if r <= 0 {
				continue
			}
			feeds = append(feeds, fmt.Sprintf("%s %.4g/s", b.String(), r))
			step := validate.FlowStep{Note: fmt.Sprintf("%s admits %.4g/s into %s", b.String(), r, name)}
			if pos := implAnchor(facts, b.Client.Component); pos != "" {
				step.Pos = pos
			}
			flow = append(flow, step)
		}
		p.Report(Finding{
			Pos:      queueAnchor(facts, name),
			Severity: validate.Error,
			Subject:  name,
			Message: fmt.Sprintf("admitted inbound rate %.4g/s exceeds %s's processing capacity %.4g/s "+
				"(cost %v per release, utilization %.0f%%): the fan-in %s overloads the server even though "+
				"each binding may honour its own contract",
				rate, name, capacity, act.Cost, 100*rate/capacity, sortedJoin(feeds)),
			Suggestion: "lower the contracted rates, shed or degrade at the gates, or reduce the server's cost per release",
			Flow:       flow,
		})
	}

	// Async buffer inflow vs drain rate.
	for _, b := range bindings {
		if b.Protocol != model.Asynchronous || b.BufferSize <= 0 {
			continue
		}
		srv, ok := facts.Arch.Component(b.Server.Component)
		if !ok {
			continue
		}
		act := srv.Activation()
		if act == nil || act.Period <= 0 {
			continue // drains on arrival: no static drain bound
		}
		drain := float64(time.Second) / float64(act.Period)
		inflow := bindingRate(facts, inbound, b)
		if inflow <= drain {
			continue
		}
		p.Report(Finding{
			Pos:      queueAnchor(facts, b.Server.Component),
			Severity: validate.Error,
			Subject:  b.String(),
			Message: fmt.Sprintf("inflow %.4g/s exceeds the server's drain rate %.4g/s (one release per %v): "+
				"the %d-slot buffer fills at %.4g msg/s and overflows regardless of its size",
				inflow, drain, act.Period, b.BufferSize, inflow-drain),
			Suggestion: "lower the admitted rate below the drain rate, or shorten the server's activation interval; " +
				"resizing the buffer only delays the overflow",
		})
	}
	return nil
}

// bindingRate is the statically known worst-case outflow of one
// binding: the contracted maxRate, the client's release rate, or the
// rate propagated into the client.
func bindingRate(facts *ArchFacts, inbound map[string]float64, b *model.Binding) float64 {
	if b.Contract != nil && b.Contract.MaxRate > 0 {
		return b.Contract.MaxRate
	}
	cli, ok := facts.Arch.Component(b.Client.Component)
	if !ok {
		return 0
	}
	if act := cli.Activation(); act != nil && act.Period > 0 {
		return float64(time.Second) / float64(act.Period)
	}
	return inbound[b.Client.Component]
}

func ratesEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func sortedJoin(parts []string) string {
	sort.Strings(parts)
	out := ""
	for i, s := range parts {
		if i > 0 {
			out += " + "
		}
		out += s
	}
	return out
}

func queueAnchor(facts *ArchFacts, component string) token.Pos {
	for _, im := range facts.ImplsOf(component) {
		if im.RegPos.IsValid() {
			return im.RegPos
		}
	}
	return facts.Anchor()
}
