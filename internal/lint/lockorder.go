package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"soleil/internal/validate"
)

// LockOrder (SA06) computes the mutex acquisition orders of each
// registered implementation, rooted at its membrane entry points, and
// flags pairs of mutexes taken in both orders. The RTSJ idiom the
// suite accepts (SA03 warns rather than errors on sync.Mutex) is a
// short priority-ceiling critical section; two such sections nesting
// the same pair of locks in opposite orders is the one shape that
// deadlocks two released threads of the same component — found here
// from the static acquisition structure.
//
// The walk follows same-package static calls from Invoke/Activate,
// carries the held-lock set through them, ignores deferred unlocks
// (the lock is held to the end of the function) and names locks
// canonically by receiver type, so `p.mu` in one method and `q.mu` in
// another are the same lock. At call sites the same-package walk
// cannot follow — cross-package callees, unique-target interface
// dispatch — the callee's effect summary supplies its acquired locks
// (paired with everything currently held) and its internal ordered
// pairs.
var LockOrder = &ArchAnalyzer{
	Name: "lockorder",
	Rule: "SA06",
	Doc: "flags mutex pairs a registered implementation acquires in both orders " +
		"on paths reachable from Invoke/Activate — the static shape of an " +
		"intra-component deadlock",
	Run: runLockOrder,
}

// lockSite is one ordered acquisition: outer held while inner is
// taken, at pos (the inner Lock call).
type lockSite struct {
	outer, inner string
	pos          token.Pos
}

func runLockOrder(p *ArchPass) error {
	for _, class := range p.Facts.Classes() {
		for _, im := range p.Facts.Impls[class] {
			checkImplLockOrder(p, im)
		}
	}
	return nil
}

func checkImplLockOrder(p *ArchPass, im *Impl) {
	// pairs[outer][inner] = first site acquiring inner while outer is
	// held, as a rendered position (summary-supplied pairs have no
	// token.Pos to resolve).
	pairs := map[string]map[string]string{}
	recordStr := func(outer, inner, pos string) {
		m, ok := pairs[outer]
		if !ok {
			m = map[string]string{}
			pairs[outer] = m
		}
		if _, ok := m[inner]; !ok {
			m[inner] = pos
		}
	}
	record := func(s lockSite) {
		recordStr(s.outer, s.inner, im.Pkg.Fset.Position(s.pos).String())
	}

	visited := map[*ast.FuncDecl]bool{}
	var walk func(fn *ast.FuncDecl, held []string)
	walk = func(fn *ast.FuncDecl, held []string) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.DeferStmt); ok {
				return false // deferred unlocks keep the lock held to the end
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false // not executed inline at this point
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if key, ok := mutexKey(im, sel); ok {
					switch sel.Sel.Name {
					case "Lock", "RLock":
						for _, h := range held {
							if h != key {
								record(lockSite{outer: h, inner: key, pos: call.Pos()})
							}
						}
						held = append(held, key)
						return true
					case "Unlock", "RUnlock":
						for i := len(held) - 1; i >= 0; i-- {
							if held[i] == key {
								held = append(held[:i:i], held[i+1:]...)
								break
							}
						}
						return true
					}
				}
			}
			if callee := staticCallee(im.Pkg.Info, call); callee != nil {
				if decl, ok := im.decls[callee]; ok {
					walk(decl, append([]string(nil), held...))
					return true
				}
			}
			// Outside the same-package walk: consult the callee's
			// summary for locks it acquires and orders it establishes.
			if eng := p.Facts.Eng; eng != nil {
				if sum, _ := eng.ResolveCall(im.Pkg.Info, call); sum != nil {
					for _, l := range sum.Locks {
						for _, h := range held {
							if h != l {
								record(lockSite{outer: h, inner: l, pos: call.Pos()})
							}
						}
					}
					for _, pr := range sum.Pairs {
						recordStr(pr.Outer, pr.Inner, pr.Pos)
					}
				}
			}
			return true
		})
	}
	for _, e := range im.Entries {
		walk(e, nil)
	}

	// Inversions: (a,b) and (b,a) both recorded. Report once per
	// unordered pair, anchored at the inversion of the canonical
	// (smaller-first) order.
	type inversion struct{ a, b string }
	var found []inversion
	for outer, inners := range pairs {
		for inner := range inners {
			if outer < inner {
				if _, ok := pairs[inner][outer]; ok {
					found = append(found, inversion{a: outer, b: inner})
				}
			}
		}
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].a != found[j].a {
			return found[i].a < found[j].a
		}
		return found[i].b < found[j].b
	})
	for _, inv := range found {
		fwd, rev := pairs[inv.a][inv.b], pairs[inv.b][inv.a]
		p.Report(Finding{
			PosStr:   rev,
			Severity: validate.Error,
			Subject:  im.Class,
			Message: fmt.Sprintf("implementation %s of content class %q acquires %s and %s in both orders:"+
				" %s then %s here, %s then %s at %s — two releases interleaving these sections deadlock",
				im.Named.Obj().Name(), im.Class, inv.a, inv.b,
				inv.b, inv.a, inv.a, inv.b, fwd),
			Suggestion: fmt.Sprintf("impose one acquisition order (always %s before %s), or merge the critical sections",
				inv.a, inv.b),
			Flow: []validate.FlowStep{
				{Pos: fwd, Note: fmt.Sprintf("%s acquired, then %s", inv.a, inv.b)},
				{Pos: rev, Note: fmt.Sprintf("%s acquired, then %s — the inverse order", inv.b, inv.a)},
			},
		})
	}
}

// mutexKey canonicalizes the lock expression of sel.X when its type
// is sync.Mutex or sync.RWMutex: receiver identifiers are replaced by
// the implementation type's name so the same field is the same lock
// in every method.
func mutexKey(im *Impl, sel *ast.SelectorExpr) (string, bool) {
	t := im.Pkg.Info.TypeOf(sel.X)
	if t == nil || !isSyncMutex(t) {
		return "", false
	}
	return lockExprKey(im, sel.X), true
}

func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func lockExprKey(im *Impl, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := im.Pkg.Info.Uses[x].(*types.Var); ok {
			if named := namedOf(v.Type()); named == im.Named {
				return im.Named.Obj().Name()
			}
		}
		return x.Name
	case *ast.SelectorExpr:
		return lockExprKey(im, x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return lockExprKey(im, x.X)
	case *ast.IndexExpr:
		return lockExprKey(im, x.X) + "[i]"
	default:
		return fmt.Sprintf("%T", e)
	}
}
