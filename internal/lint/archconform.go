package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"soleil/internal/model"
	"soleil/internal/validate"
)

// ArchConform (SA04) closes the loop between the architecture and the
// implementation — the "architectural programming" gap: the ADL names
// content classes, activation kinds and interfaces, and the code
// registers content factories against the same vocabulary
// (assembly.Registry.Register). The analyzer cross-checks the two
// when an ADL file is supplied (-adl): content classes declared but
// never registered, registrations the architecture does not know,
// active components whose content type has no Activate method (and
// vice versa), and server interfaces the content never references.
// Without an ADL file the analyzer is silent.
var ArchConform = &Analyzer{
	Name: "archconform",
	Rule: "SA04",
	Doc: "cross-checks Registry.Register calls against the ADL supplied with " +
		"-adl: missing/extra content classes, activation-kind mismatches, " +
		"unreferenced server interfaces",
	Run: runArchConform,
}

// registration is one Register("class", factory) call found in code.
type registration struct {
	class string
	pos   token.Pos
	typ   *types.Named // content type the factory produces, if resolvable
}

func runArchConform(p *Pass) error {
	if p.Arch == nil {
		return nil
	}
	regs := findRegistrations(p.Files, p.Info)
	if len(regs) == 0 {
		return nil
	}
	byClass := map[string]registration{}
	for _, r := range regs {
		byClass[r.class] = r
	}
	strings_ := stringLiterals(p.Files, p.Info)

	// Which ADL components use which content class?
	adlClasses := map[string][]*model.Component{}
	for _, c := range p.Arch.Components() {
		if c.Content() != "" {
			adlClasses[c.Content()] = append(adlClasses[c.Content()], c)
		}
	}

	// Classes the architecture declares but the code never registers
	// deploy as stubs — the RT11 warning at runtime, an error here.
	// There is no registration to point at, so the finding anchors on
	// the package clause.
	anchor := p.Files[0].Name.Pos()
	for class, comps := range adlClasses {
		if _, ok := byClass[class]; !ok {
			p.Reportf(anchor, validate.Error, class,
				"register the content class, or drop it from the architecture",
				"content class %q drives component %q in the architecture but is never registered",
				class, comps[0].Name())
		}
	}
	// Registrations the architecture does not know are dead code (or
	// a typo in one of the two vocabularies).
	for _, r := range regs {
		if _, ok := adlClasses[r.class]; !ok {
			p.Reportf(r.pos, validate.Warning, r.class,
				"add the content class to the architecture, or delete the registration",
				"content class %q is registered but not declared by architecture %q",
				r.class, p.Arch.Name())
		}
	}
	// Activation-kind conformance and interface coverage.
	for class, comps := range adlClasses {
		r, ok := byClass[class]
		if !ok || r.typ == nil {
			continue
		}
		active := hasMethod(r.typ, "Activate")
		for _, c := range comps {
			switch c.Kind() {
			case model.Active:
				if !active {
					p.Reportf(r.pos, validate.Error, class,
						"implement Activate(env) (membrane.ActiveContent), or make the component passive",
						"component %q is active (%s) but content type %s has no Activate method",
						c.Name(), c.Activation().Kind, r.typ.Obj().Name())
				}
			case model.Passive:
				if active {
					p.Reportf(r.pos, validate.Warning, class,
						"make the component active, or drop the Activate method",
						"component %q is passive but content type %s declares an Activate method that will never run",
						c.Name(), r.typ.Obj().Name())
				}
			}
			for _, itf := range c.Interfaces() {
				if itf.Role != model.ServerRole {
					continue
				}
				if !strings_[itf.Name] {
					p.Reportf(r.pos, validate.Warning, class,
						"dispatch on the interface name in Invoke, or remove it from the architecture",
						"server interface %q of component %q is never referenced by the implementation package",
						itf.Name, c.Name())
				}
			}
		}
	}
	return nil
}

// findRegistrations collects Register("class", factory) calls: any
// call to a method or function named Register whose first argument is
// a constant string. The assembly.Registry shape — but matched by
// name, so generated assemblies and test doubles participate too.
func findRegistrations(files []*ast.File, info *types.Info) []registration {
	var out []registration
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			var name string
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if name != "Register" {
				return true
			}
			tv, ok := info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			out = append(out, registration{
				class: constant.StringVal(tv.Value),
				pos:   call.Pos(),
				typ:   factoryResult(info, call.Args[1]),
			})
			return true
		})
	}
	return out
}

// factoryResult resolves the named content type a factory argument
// produces: the result of a func literal's return statements, or the
// result type of a named function.
func factoryResult(info *types.Info, arg ast.Expr) *types.Named {
	switch x := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		var named *types.Named
		ast.Inspect(x.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || named != nil || len(ret.Results) == 0 {
				return named == nil
			}
			named = namedOf(info.TypeOf(ret.Results[0]))
			return true
		})
		return named
	default:
		if sig, ok := info.TypeOf(arg).(*types.Signature); ok && sig.Results().Len() > 0 {
			return namedOf(sig.Results().At(0).Type())
		}
	}
	return nil
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if types.IsInterface(named) {
			return nil // the declared interface, not the concrete content
		}
		return named
	}
	return nil
}

// hasMethod reports whether *T (and thus T's full method set) has a
// method with the given name.
func hasMethod(named *types.Named, name string) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// stringLiterals collects every constant string mentioned in the
// package: the vocabulary the content uses to dispatch interfaces and
// operations.
func stringLiterals(files []*ast.File, info *types.Info) map[string]bool {
	out := map[string]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				s := constant.StringVal(tv.Value)
				if s != "" && !strings.ContainsAny(s, " \n") {
					out[s] = true
				}
			}
			return true
		})
	}
	return out
}
