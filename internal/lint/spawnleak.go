package lint

import (
	"fmt"

	"soleil/internal/validate"
)

// SpawnLeak (SA11) is the static twin of the soak goroutine-leak
// gates: it reports goroutines launched from membrane-reachable code
// (anything an Invoke/Activate entry of a registered implementation
// can reach, through the interprocedural engine — across packages and
// unique-target interface dispatch) whose lifetime is not statically
// bounded. A goroutine is bounded when it has no unconditional loop,
// or when the loop is governed by a stop signal: a context.Context, a
// select clause that can leave the loop, or a range over a closable
// channel. Everything else outlives the release that spawned it; over
// a soak run those accumulate until the leak gate — or production —
// notices.
//
// The effect discovery lives in the summary engine (summary.go);
// propagation stops at the framework boundary (soleil/internal/...),
// whose internals the soak scenarios audit dynamically.
var SpawnLeak = &ArchAnalyzer{
	Name: "spawnleak",
	Rule: "SA11",
	Doc: "reports goroutines launched from membrane-reachable code with no bounded " +
		"lifetime (no context, stop channel or WaitGroup join)",
	Run: runSpawnLeak,
}

func runSpawnLeak(p *ArchPass) error {
	facts := p.Facts
	if facts.Eng == nil {
		return nil
	}
	reported := map[string]bool{}
	for _, class := range facts.Classes() {
		for _, im := range facts.Impls[class] {
			for _, entry := range im.Entries {
				sum := facts.Eng.SummaryOf(im.Pkg, entry)
				if sum == nil {
					continue
				}
				for _, eff := range sum.Spawns {
					if reported[eff.Pos] {
						continue
					}
					reported[eff.Pos] = true
					flow := append([]validate.FlowStep{{
						Pos:  sum.Pos,
						Note: fmt.Sprintf("membrane entry %s of content class %q", funcName(entry), class),
					}}, eff.Chain...)
					p.Report(Finding{
						PosStr:     eff.Pos,
						Severity:   eff.Sev,
						Subject:    class,
						Message:    eff.Msg,
						Suggestion: eff.Suggestion,
						Flow:       flow,
					})
				}
			}
		}
	}
	return nil
}
