package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"time"

	"soleil/internal/model"
)

// ArchFacts is the fused model the whole-architecture passes
// (SA05–SA08) analyze: the ADL architecture and optional deployment
// descriptor on one side, and on the other the typed AST of every
// implementation the loaded packages register for a content class the
// architecture declares. Where the per-function passes see one
// package at a time, ArchFacts sees the composed system — bindings
// with their protocols and contracts, node assignments, and the
// port-use, locking and cost structure of the code behind each
// component.
type ArchFacts struct {
	Arch   *model.Architecture
	Deploy *model.Deployment
	// Assign maps component name -> node name when a deployment
	// descriptor was supplied; empty otherwise.
	Assign map[string]string
	// Fset is the file set shared by every package of one load.
	Fset *token.FileSet
	Pkgs []*Package
	// Impls maps content class -> the implementations registered for
	// it. One class may be implemented by several packages (the repo
	// carries both examples/factory and internal/scenario variants of
	// the paper's classes); each is analyzed independently.
	Impls map[string][]*Impl
	// Eng is the interprocedural summary engine over the loaded
	// packages, built on first use (EnsureEngine).
	Eng *Engine
	// LinkPenalty is the per-hop latency charged by SA09 for a binding
	// whose endpoints are assigned to different nodes; priced from
	// BENCH_cluster.json when available, else a conservative default.
	LinkPenalty time.Duration

	// supp indexes the //soleil:ignore directives of every loaded
	// package, keyed by filename.
	supp map[*Package]*suppressionIndex
}

// EnsureEngine builds the summary engine over the facts' packages if
// it has not been built yet. factsDir, when non-empty, enables the
// on-disk cache; stats, when non-nil, receives the cache counters.
func (f *ArchFacts) EnsureEngine(factsDir string, stats *CacheStats) {
	if f.Eng == nil {
		f.Eng = NewEngine(f.Pkgs, f.suppIndex, factsDir)
	}
	if stats != nil {
		*stats = f.Eng.Stats()
	}
}

// An Impl is one registered implementation of a content class: the
// named Go type a Register call (or a map[string]Content registration
// table) binds to the class, with its method syntax and the port-use
// facts discovered from the code.
type Impl struct {
	Class  string
	Pkg    *Package
	Named  *types.Named
	RegPos token.Pos
	// Methods maps method name -> declaration for methods declared on
	// the named type (any receiver form) in its package.
	Methods map[string]*ast.FuncDecl
	// Entries are the membrane entry points: Invoke and, when
	// declared, Activate.
	Entries []*ast.FuncDecl
	// Reach maps every same-package function reachable from an entry
	// to the entry's display name.
	Reach map[*ast.FuncDecl]string
	// PortUses are the Call/Send invocations on ports obtained with
	// Port("name"), discovered in reachable code.
	PortUses []PortUse

	decls map[*types.Func]*ast.FuncDecl
}

// A PortUse is one Call or Send on a client interface, discovered
// either as a chained svc.Port("x").Call(...) or through a local
// variable assigned from Port("x").
type PortUse struct {
	// Interface is the client interface name passed to Port.
	Interface string
	// Sync is true for Call (the caller blocks for the reply), false
	// for Send.
	Sync bool
	Pos  token.Pos
	In   *ast.FuncDecl
	Call *ast.CallExpr
}

// BuildArchFacts fuses the architecture (and optional deployment)
// with the loaded packages. Every package must come from one Load
// call (they share a FileSet); registrations of classes the
// architecture does not declare are ignored — they belong to other
// systems sharing the module.
func BuildArchFacts(arch *model.Architecture, dep *model.Deployment, pkgs []*Package) (*ArchFacts, error) {
	if arch == nil {
		return nil, fmt.Errorf("lint: the whole-architecture passes need an architecture (-adl)")
	}
	facts := &ArchFacts{
		Arch:   arch,
		Deploy: dep,
		Assign: map[string]string{},
		Impls:  map[string][]*Impl{},
		Pkgs:   pkgs,
		supp:   map[*Package]*suppressionIndex{},
	}
	if len(pkgs) > 0 {
		facts.Fset = pkgs[0].Fset
		for _, p := range pkgs {
			if p.Fset != facts.Fset {
				return nil, fmt.Errorf("lint: packages for one ArchFacts must share a FileSet (load them together)")
			}
		}
	}
	if dep != nil {
		assign, err := dep.Resolve(arch)
		if err != nil {
			return nil, err
		}
		facts.Assign = assign
	}

	declared := map[string]bool{}
	for _, c := range arch.Components() {
		if c.Content() != "" {
			declared[c.Content()] = true
		}
	}
	for _, pkg := range pkgs {
		for _, reg := range packageRegistrations(pkg) {
			if !declared[reg.class] || reg.typ == nil {
				continue
			}
			facts.Impls[reg.class] = append(facts.Impls[reg.class], buildImpl(pkg, reg))
		}
	}
	return facts, nil
}

// ImplsOf returns the implementations registered for the named
// component's content class.
func (f *ArchFacts) ImplsOf(component string) []*Impl {
	c, ok := f.Arch.Component(component)
	if !ok || c.Content() == "" {
		return nil
	}
	return f.Impls[c.Content()]
}

// Classes returns the registered content classes in sorted order.
func (f *ArchFacts) Classes() []string {
	out := make([]string, 0, len(f.Impls))
	for c := range f.Impls {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Anchor returns a fallback position for findings that have no code
// to point at: the package clause of the first loaded file.
func (f *ArchFacts) Anchor() token.Pos {
	for _, p := range f.Pkgs {
		if len(p.Files) > 0 {
			return p.Files[0].Name.Pos()
		}
	}
	return token.NoPos
}

// packageRegistrations collects the class -> implementation pairs a
// package establishes. Two shapes are recognized: the constant-string
// Register("class", factory) call (the assembly.Registry protocol,
// shared with SA04), and — because the blessed examples register
// through a loop — map[string]Content composite literals whose keys
// are the class names and whose values are the content instances.
func packageRegistrations(pkg *Package) []registration {
	out := findRegistrations(pkg.Files, pkg.Info)
	if !hasRegisterCall(pkg.Files) {
		return out
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pkg.Info.TypeOf(lit)
			if t == nil || !isContentMap(t) {
				return true
			}
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				tv, ok := pkg.Info.Types[kv.Key]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					continue
				}
				out = append(out, registration{
					class: constant.StringVal(tv.Value),
					pos:   kv.Key.Pos(),
					typ:   namedOf(pkg.Info.TypeOf(kv.Value)),
				})
			}
			return true
		})
	}
	return out
}

// isContentMap reports whether t is a map[string]C where C is a named
// interface called Content — the membrane.Content registration-table
// shape, matched by name so the facade alias and test doubles
// participate too.
func isContentMap(t types.Type) bool {
	m, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	if b, ok := m.Key().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return false
	}
	named, ok := types.Unalias(m.Elem()).(*types.Named)
	return ok && named.Obj().Name() == "Content" && types.IsInterface(named)
}

func hasRegisterCall(files []*ast.File) bool {
	found := false
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				found = found || fun.Name == "Register"
			case *ast.SelectorExpr:
				found = found || fun.Sel.Name == "Register"
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func buildImpl(pkg *Package, reg registration) *Impl {
	impl := &Impl{
		Class:   reg.class,
		Pkg:     pkg,
		Named:   reg.typ,
		RegPos:  reg.pos,
		Methods: map[string]*ast.FuncDecl{},
		decls:   declFuncsOf(pkg.Files, pkg.Info),
	}
	for obj, decl := range impl.decls {
		if decl.Recv == nil {
			continue
		}
		recv := obj.Type().(*types.Signature).Recv()
		if recv == nil || namedOf(recv.Type()) != reg.typ {
			continue
		}
		impl.Methods[obj.Name()] = decl
	}
	for _, name := range []string{"Invoke", "Activate"} {
		if m, ok := impl.Methods[name]; ok {
			impl.Entries = append(impl.Entries, m)
		}
	}
	impl.Reach = reachableFuncs(pkg.Info, impl.decls, impl.Entries)
	impl.PortUses = findPortUses(pkg, impl)
	return impl
}

// findPortUses discovers Call/Send invocations on ports in the code
// reachable from the implementation's entries. Two shapes: the
// chained svc.Port("x").Call(env, op, arg), and a port variable bound
// by `p, err := svc.Port("x")` anywhere in the package and invoked
// later. Ports stashed in struct fields are not tracked — the blessed
// idiom resolves ports per call so rebinding takes effect.
func findPortUses(pkg *Package, impl *Impl) []PortUse {
	portVars := map[types.Object]string{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			iface, ok := portCallInterface(pkg.Info, call)
			if !ok {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				portVars[obj] = iface
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				portVars[obj] = iface
			}
			return true
		})
	}

	var uses []PortUse
	decls := sortedDecls(impl.Reach)
	for _, fn := range decls {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Call" && sel.Sel.Name != "Send") {
				return true
			}
			var iface string
			switch x := ast.Unparen(sel.X).(type) {
			case *ast.CallExpr:
				iface, _ = portCallInterface(pkg.Info, x)
			case *ast.Ident:
				iface = portVars[pkg.Info.Uses[x]]
			}
			if iface == "" {
				return true
			}
			uses = append(uses, PortUse{
				Interface: iface,
				Sync:      sel.Sel.Name == "Call",
				Pos:       call.Pos(),
				In:        fn,
				Call:      call,
			})
			return true
		})
	}
	return uses
}

// portCallInterface matches a call of the shape Port("iName") —
// any method or function named Port whose first argument is a
// constant string — and returns the interface name.
func portCallInterface(info *types.Info, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if name != "Port" || len(call.Args) < 1 {
		return "", false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// UsesInterface reports whether any port use of the implementation
// targets the named client interface, returning the first use.
func (im *Impl) UsesInterface(name string) (PortUse, bool) {
	for _, pu := range im.PortUses {
		if pu.Interface == name {
			return pu, true
		}
	}
	return PortUse{}, false
}

// sortedDecls orders the reachable declarations by source position so
// the passes report deterministically.
func sortedDecls(reach map[*ast.FuncDecl]string) []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(reach))
	for fn := range reach {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
