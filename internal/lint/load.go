package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// newInfo allocates the types.Info maps every analyzer relies on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the given `go list` package patterns (relative to dir,
// or the current directory when dir is empty), type-checks each target
// package against gc export data produced by the toolchain, and
// returns the targets ready for analysis. It needs only the Go
// toolchain and the local build cache: no network, no third-party
// modules.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export,Dir,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parsing go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// LoadDir type-checks the single package rooted at dir (non-test files
// only), resolving its imports through a fresh `go list -export` over
// the import set. It is how the linttest corpora and fixture packages
// under testdata/ — invisible to `go list ./...` patterns — are
// loaded.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var goFiles []string
	for _, e := range entries {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			goFiles = append(goFiles, n)
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	// Pre-parse to harvest the import set, then ask the toolchain for
	// export data of exactly those packages (and their deps).
	fset := token.NewFileSet()
	importSet := map[string]bool{}
	for _, g := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, g), nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		for _, spec := range f.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		args := append([]string{"list", "-export", "-deps",
			"-json=ImportPath,Export"}, imports...)
		cmd := exec.Command("go", args...)
		cmd.Dir = dir
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("lint: go list %s: %v\n%s",
				strings.Join(imports, " "), err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPkg
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, fmt.Errorf("lint: parsing go list output: %v", err)
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	fset = token.NewFileSet()
	return check(fset, exportImporter(fset, exports), filepath.Base(dir), dir, goFiles)
}

// exportImporter satisfies go/types imports from toolchain export
// data files.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

func check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, g := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, g), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
