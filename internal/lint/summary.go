package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"

	"soleil/internal/validate"
)

// The interprocedural engine. Every pass in the suite used to reason
// one function body at a time, so a blocking call or allocation one
// call deep escaped undetected. The Engine closes that gap: it builds
// a call graph over all packages of one Load (static calls plus CHA
// dispatch with receiver canonicalization) and computes per-function
// effect summaries — allocates-on-heap, may-block (and on what),
// locks acquired, unbounded goroutine spawns, and a static CPU lower
// bound — bottom-up over the strongly connected components of the
// graph, with a fixpoint for recursion. The per-function passes
// consult summaries at cross-package call sites and at
// unique-target interface dispatch; the whole-architecture passes
// (SA08 costbound, SA06 lockorder, SA11 spawnleak) compose them
// across implementation boundaries.
//
// Summaries carry string positions (file:line:col) rather than
// token.Pos so they survive serialization to the on-disk facts cache
// (cache.go) and FileSet changes between runs.
//
// Trusted annotations short-circuit the walk:
//
//	//soleil:pure          the function has no effects and zero cost
//	//soleil:cost 250us    the function's CPU cost is the declared bound
//
// Effect propagation across function boundaries carries only
// error-severity effects: warnings (mutex locks, interface boxing)
// are local idioms the defining package justifies in place.

// engineVersion participates in every cache key; bump it whenever the
// summary computation changes shape.
const engineVersion = "soleil-summary-v1"

// effect caps: a summary keeps at most maxEffects sites per kind and
// chains at most maxChain hops deep — enough to explain a finding,
// bounded enough to cache.
const (
	maxEffects = 16
	maxChain   = 12
)

// A Summary is the interprocedural fact base of one function: what
// the function (and everything it can statically reach) does to the
// heap, to the scheduler and to its locks.
type Summary struct {
	// ID is the canonical function id: pkgpath.(Recv).Name with the
	// receiver's pointer stripped, so value and pointer methods — and
	// the export-data and source-checked views of the same function —
	// share one identity.
	ID string `json:"id"`
	// Name is the display name ("(*pump).flush").
	Name string `json:"name"`
	// Pos is the declaration position, rendered.
	Pos string `json:"pos,omitempty"`
	// Pure is set by a //soleil:pure annotation: the body is trusted
	// to have no effects and zero cost.
	Pure bool `json:"pure,omitempty"`
	// Recursive marks members of a call-graph cycle; their cost is an
	// unbounded lower bound.
	Recursive bool `json:"recursive,omitempty"`
	// CostNs is the static CPU lower bound in nanoseconds: constant
	// Consume durations and //soleil:cost annotations, multiplied
	// through constant-trip loops and summed over resolved calls.
	CostNs int64 `json:"costNs,omitempty"`
	// Allocs are the error-severity heap-allocation sites reachable
	// from this function (SA01 vocabulary).
	Allocs []SumEffect `json:"allocs,omitempty"`
	// Blocks are the error-severity unbounded-blocking sites reachable
	// from this function (SA03 vocabulary), message naming what blocks.
	Blocks []SumEffect `json:"blocks,omitempty"`
	// Spawns are goroutine launches with no statically bounded
	// lifetime reachable from this function (SA11 vocabulary).
	Spawns []SumEffect `json:"spawns,omitempty"`
	// Locks are the canonical keys of mutexes this function (or its
	// callees) acquires.
	Locks []string `json:"locks,omitempty"`
	// Pairs are the ordered lock acquisitions (outer held while inner
	// taken) occurring wholly within this function's reach.
	Pairs []LockPair `json:"pairs,omitempty"`
}

// A SumEffect is one effect site: where, what, and the call chain
// from the summarized function down to the site.
type SumEffect struct {
	Pos        string              `json:"pos"`
	Sev        validate.Severity   `json:"sev"`
	Msg        string              `json:"msg"`
	Suggestion string              `json:"suggestion,omitempty"`
	Chain      []validate.FlowStep `json:"chain,omitempty"`
}

// A LockPair is one ordered acquisition: Outer held while Inner is
// taken at Pos.
type LockPair struct {
	Outer string `json:"outer"`
	Inner string `json:"inner"`
	Pos   string `json:"pos"`
}

// CacheStats counts facts-cache traffic for one engine build.
type CacheStats struct {
	// Packages is the number of packages summarized.
	Packages int
	// Hits is the number of packages whose summaries were loaded from
	// the facts cache; Misses were (re)computed from source.
	Hits, Misses int
	// Funcs is the number of function summaries held.
	Funcs int
}

func (s CacheStats) String() string {
	return fmt.Sprintf("facts: packages=%d hits=%d misses=%d funcs=%d",
		s.Packages, s.Hits, s.Misses, s.Funcs)
}

// declSite is one source-declared function the engine can summarize.
type declSite struct {
	id   string
	fn   *ast.FuncDecl
	pkg  *Package
	obj  *types.Func
	recv string // receiver named-type name; "" for plain functions
}

// Engine holds the call graph and summaries of one Load's packages.
type Engine struct {
	fset *token.FileSet
	pkgs []*Package
	supp func(*Package) *suppressionIndex

	decls   map[string]*declSite // funcID -> declaration
	byPkg   map[*Package][]*declSite
	methods map[string][]*declSite // CHA: method name -> concrete methods
	msets   map[string]map[string]bool
	chaMemo map[string][]*declSite

	summaries map[string]*Summary
	stats     CacheStats
}

// NewEngine builds the engine over the packages of one Load (shared
// FileSet) and computes every summary bottom-up. supp, when non-nil,
// supplies the shared per-package suppression indexes so effects the
// defining package justifies with //soleil:ignore are filtered out of
// the summaries (and the directives counted as used). factsDir, when
// non-empty, enables the on-disk cache (cache.go).
func NewEngine(pkgs []*Package, supp func(*Package) *suppressionIndex, factsDir string) *Engine {
	e := &Engine{
		pkgs:      pkgs,
		supp:      supp,
		decls:     map[string]*declSite{},
		byPkg:     map[*Package][]*declSite{},
		methods:   map[string][]*declSite{},
		msets:     map[string]map[string]bool{},
		chaMemo:   map[string][]*declSite{},
		summaries: map[string]*Summary{},
	}
	if len(pkgs) > 0 {
		e.fset = pkgs[0].Fset
	}
	if e.supp == nil {
		own := map[*Package]*suppressionIndex{}
		e.supp = func(p *Package) *suppressionIndex {
			idx, ok := own[p]
			if !ok {
				idx = buildSuppressionIndex(p.Fset, p.Files)
				own[p] = idx
			}
			return idx
		}
	}
	e.index()
	e.build(factsDir)
	return e
}

// Stats returns the facts-cache counters of the engine build.
func (e *Engine) Stats() CacheStats { return e.stats }

// Summary returns the summary for a function object resolved at a
// call site (source-checked or export-data view), or nil when the
// function is not declared in the loaded packages.
func (e *Engine) Summary(obj *types.Func) *Summary {
	if obj == nil {
		return nil
	}
	return e.summaries[funcID(obj)]
}

// SummaryOf returns the summary for a declaration.
func (e *Engine) SummaryOf(pkg *Package, fn *ast.FuncDecl) *Summary {
	if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
		return e.summaries[funcID(obj)]
	}
	return nil
}

// funcID canonicalizes a function object to pkgpath.(Recv).Name. The
// receiver's pointer is stripped, so value and pointer methods — and
// the export-data vs source-checked instances of one function —
// collapse to the same id.
func funcID(f *types.Func) string {
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil {
			return pkg + ".(" + named.Obj().Name() + ")." + f.Name()
		}
	}
	return pkg + "." + f.Name()
}

// index collects every declared function of every package and the
// CHA method index.
func (e *Engine) index() {
	for _, pkg := range e.pkgs {
		for obj, fn := range declFuncsOf(pkg.Files, pkg.Info) {
			site := &declSite{id: funcID(obj), fn: fn, pkg: pkg, obj: obj}
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				if named := namedOf(sig.Recv().Type()); named != nil {
					site.recv = named.Obj().Name()
					e.methods[obj.Name()] = append(e.methods[obj.Name()], site)
					key := pkg.ImportPath + "." + site.recv
					if e.msets[key] == nil {
						set := map[string]bool{}
						ms := types.NewMethodSet(types.NewPointer(named))
						for i := 0; i < ms.Len(); i++ {
							set[ms.At(i).Obj().Name()] = true
						}
						e.msets[key] = set
					}
				}
			}
			e.decls[site.id] = site
			e.byPkg[pkg] = append(e.byPkg[pkg], site)
		}
	}
	for _, sites := range e.byPkg {
		sort.Slice(sites, func(i, j int) bool { return sites[i].fn.Pos() < sites[j].fn.Pos() })
	}
}

// chaTargets resolves an interface-dispatch call by class-hierarchy
// analysis: every source-declared concrete method with the selector's
// name whose receiver's method set covers all of the interface's
// method names. Name-based matching deliberately tolerates the
// export-data vs source-checked split of one package's types.
func (e *Engine) chaTargets(iface *types.Interface, method string) []*declSite {
	var names []string
	for i := 0; i < iface.NumMethods(); i++ {
		names = append(names, iface.Method(i).Name())
	}
	sort.Strings(names)
	key := method + "|" + strings.Join(names, ",")
	if ts, ok := e.chaMemo[key]; ok {
		return ts
	}
	var out []*declSite
	for _, cand := range e.methods[method] {
		set := e.msets[cand.pkg.ImportPath+"."+cand.recv]
		ok := true
		for _, n := range names {
			if !set[n] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, cand)
		}
	}
	e.chaMemo[key] = out
	return out
}

// resolve returns the unique declaration a call statically targets: a
// static callee declared in the loaded packages, or the single CHA
// candidate of an interface dispatch. Nil means the call crosses into
// code the engine cannot see (stdlib, function values, ambiguous
// dispatch).
func (e *Engine) resolve(info *types.Info, call *ast.CallExpr) *declSite {
	if callee := staticCallee(info, call); callee != nil {
		return e.decls[funcID(callee)]
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || !types.IsInterface(s.Recv()) {
		return nil
	}
	iface, ok := s.Recv().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if ts := e.chaTargets(iface, sel.Sel.Name); len(ts) == 1 {
		return ts[0]
	}
	return nil
}

// ResolveCall exposes call resolution to the passes: the summary of
// the unique static or CHA target, or nil.
func (e *Engine) ResolveCall(info *types.Info, call *ast.CallExpr) (*Summary, *Package) {
	site := e.resolve(info, call)
	if site == nil {
		return nil, nil
	}
	return e.summaries[site.id], site.pkg
}

// spliceCall returns the summary of a callee the intra-package reach
// walk did not follow — a cross-package callee, or a unique-target
// interface dispatch landing outside the reach set — so the
// per-function passes can report the callee's effects at this call
// site. Nil when the engine is absent, the call is unresolvable, or
// the intra walk already covers the target.
func (p *Pass) spliceCall(call *ast.CallExpr, reach map[*ast.FuncDecl]string) *Summary {
	if p.Eng == nil {
		return nil
	}
	site := p.Eng.resolve(p.Info, call)
	if site == nil {
		return nil
	}
	if _, covered := reach[site.fn]; covered {
		return nil
	}
	s := p.Eng.summaries[site.id]
	if s != nil && s.Pure {
		return nil
	}
	return s
}

// reportEffects renders a spliced summary's effects of one kind as
// findings at this call site, deduplicated across the pass.
func (p *Pass) reportEffects(call *ast.CallExpr, sum *Summary, effs []SumEffect, subject, via string, seen map[string]bool) {
	if len(effs) == 0 {
		return
	}
	step := validate.FlowStep{
		Pos:  p.Fset.Position(call.Pos()).String(),
		Note: fmt.Sprintf("%s calls %s", subject, sum.Name),
	}
	for _, eff := range effs {
		key := p.Analyzer.Rule + "|" + eff.Pos + "|" + eff.Msg
		if seen[key] {
			continue
		}
		seen[key] = true
		p.Report(Finding{
			PosStr:     eff.Pos,
			Severity:   eff.Sev,
			Subject:    subject,
			Message:    eff.Msg + via,
			Suggestion: eff.Suggestion,
			Flow:       append([]validate.FlowStep{step}, eff.Chain...),
		})
	}
}

// build computes every summary bottom-up over the SCCs of the call
// graph (Tarjan), consulting and refilling the facts cache when
// factsDir is set.
func (e *Engine) build(factsDir string) {
	e.stats.Packages = len(e.pkgs)
	cached := map[*Package]bool{}
	if factsDir != "" {
		cached = loadFactsCache(e, factsDir)
	}
	for _, pkg := range e.pkgs {
		if cached[pkg] {
			e.stats.Hits++
		} else {
			e.stats.Misses++
		}
	}

	// Tarjan over the full graph; process SCCs in completion order
	// (reverse topological: callees complete before callers).
	t := &tarjan{eng: e, index: map[string]int{}, low: map[string]int{}, on: map[string]bool{}}
	ids := make([]string, 0, len(e.decls))
	for id := range e.decls {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, seen := t.index[id]; !seen {
			t.strongconnect(id)
		}
	}
	for _, scc := range t.sccs {
		e.summarizeSCC(scc, cached)
	}
	e.stats.Funcs = len(e.summaries)
	if factsDir != "" {
		writeFactsCache(e, factsDir, cached)
	}
}

// calleeIDs returns the resolved call-graph successors of one
// declaration, deduplicated and sorted.
func (e *Engine) calleeIDs(site *declSite) []string {
	set := map[string]bool{}
	ast.Inspect(site.fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if target := e.resolve(site.pkg.Info, call); target != nil {
			set[target.id] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// tarjan is an iterative Tarjan SCC over the call graph.
type tarjan struct {
	eng     *Engine
	counter int
	index   map[string]int
	low     map[string]int
	on      map[string]bool
	stack   []string
	sccs    [][]string
}

func (t *tarjan) strongconnect(root string) {
	type frame struct {
		id    string
		succs []string
		next  int
	}
	frames := []frame{{id: root, succs: t.eng.calleeIDs(t.eng.decls[root])}}
	t.index[root] = t.counter
	t.low[root] = t.counter
	t.counter++
	t.stack = append(t.stack, root)
	t.on[root] = true

	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		if f.next < len(f.succs) {
			w := f.succs[f.next]
			f.next++
			if _, seen := t.index[w]; !seen {
				t.index[w] = t.counter
				t.low[w] = t.counter
				t.counter++
				t.stack = append(t.stack, w)
				t.on[w] = true
				frames = append(frames, frame{id: w, succs: t.eng.calleeIDs(t.eng.decls[w])})
			} else if t.on[w] {
				if t.index[w] < t.low[f.id] {
					t.low[f.id] = t.index[w]
				}
			}
			continue
		}
		// f exhausted: maybe a root of an SCC.
		if t.low[f.id] == t.index[f.id] {
			var scc []string
			for {
				w := t.stack[len(t.stack)-1]
				t.stack = t.stack[:len(t.stack)-1]
				t.on[w] = false
				scc = append(scc, w)
				if w == f.id {
					break
				}
			}
			sort.Strings(scc)
			t.sccs = append(t.sccs, scc)
		}
		frames = frames[:len(frames)-1]
		if len(frames) > 0 {
			g := &frames[len(frames)-1]
			if t.low[f.id] < t.low[g.id] {
				t.low[g.id] = t.low[f.id]
			}
		}
	}
}

// summarizeSCC computes the summaries of one strongly connected
// component. Singleton components are summarized once; cycles are
// marked recursive and iterated to a fixpoint (effects are capped and
// monotone, so the iteration terminates).
func (e *Engine) summarizeSCC(scc []string, cached map[*Package]bool) {
	recursive := len(scc) > 1
	if len(scc) == 1 {
		site := e.decls[scc[0]]
		for _, succ := range e.calleeIDs(site) {
			if succ == scc[0] {
				recursive = true
			}
		}
	}
	// Cached packages already carry their summaries; skip members
	// whose package was loaded from the facts cache.
	var work []*declSite
	for _, id := range scc {
		site := e.decls[id]
		if cached[site.pkg] {
			continue
		}
		work = append(work, site)
	}
	if len(work) == 0 {
		return
	}
	for _, site := range work {
		e.summaries[site.id] = &Summary{
			ID: site.id, Name: funcName(site.fn),
			Pos: e.fset.Position(site.fn.Pos()).String(), Recursive: recursive,
		}
	}
	for iter := 0; iter < 4; iter++ {
		changed := false
		for _, site := range work {
			next := e.summarize(site, recursive)
			prev := e.summaries[site.id]
			if !summariesEqual(prev, next) {
				changed = true
			}
			e.summaries[site.id] = next
		}
		if !changed || !recursive {
			break
		}
	}
}

func summariesEqual(a, b *Summary) bool {
	return a.CostNs == b.CostNs &&
		len(a.Allocs) == len(b.Allocs) && len(a.Blocks) == len(b.Blocks) &&
		len(a.Spawns) == len(b.Spawns) && len(a.Locks) == len(b.Locks) &&
		len(a.Pairs) == len(b.Pairs)
}

// summarize computes one function's summary from its body and the
// current summaries of its callees.
func (e *Engine) summarize(site *declSite, recursive bool) *Summary {
	s := &Summary{
		ID: site.id, Name: funcName(site.fn),
		Pos: e.fset.Position(site.fn.Pos()).String(), Recursive: recursive,
	}
	if directive(site.fn, "pure") {
		s.Pure = true
		return s
	}
	w := &sumWalker{eng: e, site: site, sum: s, seen: map[string]bool{}}
	w.walk(site.fn.Body, nil)
	s.CostNs = int64(e.fnCostNs(site, map[string]bool{}))
	sort.Strings(s.Locks)
	return s
}

// sumWalker extracts effects from one function body, carrying the
// held-lock set for pair discovery.
type sumWalker struct {
	eng  *Engine
	site *declSite
	sum  *Summary
	seen map[string]bool // effect positions already recorded
}

func (w *sumWalker) pos(p token.Pos) string { return w.eng.fset.Position(p).String() }

// suppressedAt consults the defining package's //soleil:ignore index:
// effects the package justifies in place never enter a summary (and
// the directive is marked used).
func (w *sumWalker) suppressedAt(pos token.Pos, rule string) bool {
	idx := w.eng.supp(w.site.pkg)
	return idx.suppressesPosition(w.eng.fset.Position(pos), rule)
}

func (w *sumWalker) addAlloc(pos token.Pos, msg, suggestion string) {
	if w.suppressedAt(pos, "SA01") {
		return
	}
	w.add("alloc", &w.sum.Allocs, SumEffect{Pos: w.pos(pos), Sev: validate.Error, Msg: msg, Suggestion: suggestion})
}

func (w *sumWalker) addBlock(pos token.Pos, msg, suggestion string) {
	if w.suppressedAt(pos, "SA03") {
		return
	}
	w.add("block", &w.sum.Blocks, SumEffect{Pos: w.pos(pos), Sev: validate.Error, Msg: msg, Suggestion: suggestion})
}

func (w *sumWalker) addSpawn(pos token.Pos, msg, suggestion string) {
	if w.suppressedAt(pos, "SA11") {
		return
	}
	w.add("spawn", &w.sum.Spawns, SumEffect{Pos: w.pos(pos), Sev: validate.Error, Msg: msg, Suggestion: suggestion})
}

// add dedups per effect kind (a go statement is both an SA01 alloc and
// an SA11 spawn at the same position).
func (w *sumWalker) add(kind string, list *[]SumEffect, eff SumEffect) {
	key := kind + "|" + eff.Pos
	if len(*list) >= maxEffects || w.seen[key] {
		return
	}
	w.seen[key] = true
	*list = append(*list, eff)
}

func (w *sumWalker) addLock(key string) {
	for _, l := range w.sum.Locks {
		if l == key {
			return
		}
	}
	if len(w.sum.Locks) < 2*maxEffects {
		w.sum.Locks = append(w.sum.Locks, key)
	}
}

func (w *sumWalker) addPair(outer, inner, pos string) {
	for _, p := range w.sum.Pairs {
		if p.Outer == outer && p.Inner == inner {
			return
		}
	}
	if len(w.sum.Pairs) < 2*maxEffects {
		w.sum.Pairs = append(w.sum.Pairs, LockPair{Outer: outer, Inner: inner, Pos: pos})
	}
}

// walk visits one subtree carrying the held-lock set; it mirrors the
// per-pass vocabularies (noheapalloc, rtblock, lockorder) so spliced
// findings read like local ones.
func (w *sumWalker) walk(n ast.Node, held []string) {
	info := w.site.pkg.Info
	ast.Inspect(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit:
			// A closure body runs where the value is called; the
			// closure's own allocation is charged here.
			if kind, ok := isAllocExpr(info, s); ok {
				w.addAlloc(s.Pos(), kind+" allocates on a no-heap path",
					"preallocate in immortal or scoped memory, or hoist out of the no-heap path")
			}
			return false
		case *ast.DeferStmt:
			return false // deferred unlocks keep locks held to the end
		case *ast.GoStmt:
			w.addAlloc(s.Pos(), "go statement allocates a goroutine on a no-heap path",
				"launch threads at assembly time, not on the no-heap path")
			w.spawn(s)
			return false // the goroutine body runs on another thread
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					for _, stmt := range s.Body.List {
						if body, ok := stmt.(*ast.CommClause); ok {
							for _, inner := range body.Body {
								w.walk(inner, held)
							}
						}
					}
					return false
				}
			}
			w.addBlock(s.Pos(), "select without default blocks a run-to-completion section",
				"add a default case, or move the wait into a sporadic activation")
			return false
		case *ast.SendStmt:
			w.addBlock(s.Pos(), "channel send may block a run-to-completion section",
				"use a bounded buffer with overflow policy (internal/comm) or a select with default")
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				w.addBlock(s.Pos(), "channel receive may block a run-to-completion section",
					"use a bounded buffer with overflow policy (internal/comm) or a select with default")
			}
			if kind, ok := isAllocExpr(info, s); ok {
				w.addAlloc(s.Pos(), kind+" allocates on a no-heap path",
					"preallocate in immortal or scoped memory, or hoist out of the no-heap path")
			}
		case *ast.CompositeLit:
			if kind, ok := isAllocExpr(info, s); ok {
				w.addAlloc(s.Pos(), kind+" allocates on a no-heap path",
					"preallocate in immortal or scoped memory, or hoist out of the no-heap path")
			}
		case *ast.CallExpr:
			held = w.call(s, held)
		}
		return true
	})
}

// call handles one call expression: local effect extraction, lock
// tracking, and the splice of the callee's summary. It returns the
// updated held-lock set (Lock/Unlock on mutexes).
func (w *sumWalker) call(call *ast.CallExpr, held []string) []string {
	info := w.site.pkg.Info
	if kind, ok := isAllocExpr(info, call); ok {
		w.addAlloc(call.Pos(), kind+" allocates on a no-heap path",
			"preallocate in immortal or scoped memory, or hoist out of the no-heap path")
		return held
	}
	// Mutex acquisition tracking, canonicalized like lockorder.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := info.TypeOf(sel.X); t != nil && isSyncMutex(t) {
			key := engineLockKey(info, sel.X)
			switch sel.Sel.Name {
			case "Lock", "RLock":
				for _, h := range held {
					if h != key {
						w.addPair(h, key, w.pos(call.Pos()))
					}
				}
				w.addLock(key)
				return append(held, key)
			case "Unlock", "RUnlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == key {
						return append(held[:i:i], held[i+1:]...)
					}
				}
				return held
			}
		}
	}
	if callee := staticCallee(info, call); callee != nil {
		if pkg := callee.Pkg(); pkg != nil {
			switch {
			case pkg.Path() == "fmt":
				w.addAlloc(call.Pos(), "fmt."+callee.Name()+" allocates on a no-heap path",
					"format off the hot path, or write into a preallocated buffer")
			case pkg.Path() == "time" && callee.Name() == "Sleep":
				w.addBlock(call.Pos(), "time.Sleep blocks a run-to-completion section",
					"use a periodic activation (the scheduler owns time), not an inline sleep")
			case ioPackages[pkg.Path()]:
				w.addBlock(call.Pos(), pkg.Name()+"."+callee.Name()+
					" performs unbounded I/O in a run-to-completion section",
					"move I/O to a dedicated regular-priority component and bind asynchronously")
			}
		}
	}
	// Splice the callee's summary (static or unique-CHA target).
	target := w.eng.resolve(info, call)
	if target == nil || target == w.site {
		return held
	}
	callee := w.eng.summaries[target.id]
	if callee == nil || callee.Pure {
		return held
	}
	step := validate.FlowStep{
		Pos:  w.pos(call.Pos()),
		Note: fmt.Sprintf("%s calls %s", funcName(w.site.fn), callee.Name),
	}
	for _, eff := range callee.Allocs {
		w.add("alloc", &w.sum.Allocs, chainEffect(step, eff))
	}
	for _, eff := range callee.Blocks {
		w.add("block", &w.sum.Blocks, chainEffect(step, eff))
	}
	// Spawn propagation stops at the framework boundary: the
	// membrane/obs/comm internals are audited dynamically by the soak
	// goroutine-leak gates; SA11 covers application code.
	if !strings.HasPrefix(target.pkg.ImportPath, "soleil/internal/") {
		for _, eff := range callee.Spawns {
			w.add("spawn", &w.sum.Spawns, chainEffect(step, eff))
		}
	}
	for _, l := range callee.Locks {
		for _, h := range held {
			if h != l {
				w.addPair(h, l, step.Pos)
			}
		}
		w.addLock(l)
	}
	for _, p := range callee.Pairs {
		w.addPair(p.Outer, p.Inner, p.Pos)
	}
	return held
}

func chainEffect(step validate.FlowStep, eff SumEffect) SumEffect {
	if len(eff.Chain) >= maxChain {
		return SumEffect{Pos: eff.Pos, Sev: eff.Sev, Msg: eff.Msg, Suggestion: eff.Suggestion, Chain: eff.Chain}
	}
	chain := make([]validate.FlowStep, 0, len(eff.Chain)+1)
	chain = append(chain, step)
	chain = append(chain, eff.Chain...)
	return SumEffect{Pos: eff.Pos, Sev: eff.Sev, Msg: eff.Msg, Suggestion: eff.Suggestion, Chain: chain}
}

// spawn analyzes one go statement for a bounded lifetime: the goroutine
// is considered bounded when it has no unconditional loop, or when the
// loop is governed by a stop signal — a context.Context, a receive in
// a select that can leave the loop, a range over a channel (ends on
// close), or a WaitGroup the spawner joins.
func (w *sumWalker) spawn(g *ast.GoStmt) {
	info := w.site.pkg.Info
	var body ast.Node
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if callee := staticCallee(info, g.Call); callee != nil {
			if site := w.eng.decls[funcID(callee)]; site != nil {
				body = site.fn.Body
			}
		}
	}
	if body == nil {
		return // dynamic spawn target: nothing to prove either way
	}
	if !hasUnboundedLoop(body) || hasStopSignal(info, body) {
		return
	}
	w.addSpawn(g.Pos(),
		"goroutine runs an unconditional loop with no context, stop channel or WaitGroup join: "+
			"it outlives every release and leaks",
		"pass a context.Context and select on ctx.Done(), or range over a closable channel")
}

// hasUnboundedLoop reports an unconditional `for {}` (no condition,
// not a range) anywhere in the body.
func hasUnboundedLoop(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil {
			found = true
		}
		return !found
	})
	return found
}

// hasStopSignal reports a bounded-lifetime idiom in the goroutine
// body: any use of a context.Context, a range over a channel, or a
// select/receive whose clause body can leave the loop.
func hasStopSignal(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if t := info.TypeOf(x); t != nil && isContextType(t) {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, stmt := range cc.Body {
					if leavesLoop(stmt) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func leavesLoop(stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if b.Tok == token.BREAK {
				found = true
			}
		}
		return !found
	})
	return found
}

// engineLockKey canonicalizes a lock expression for summaries:
// identifiers whose type is a named struct collapse to the type name,
// so `p.mu` and `q.mu` on the same type are the same lock — the same
// rule lockorder applies with the implementation type.
func engineLockKey(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			if named := namedOf(v.Type()); named != nil {
				return named.Obj().Name()
			}
		}
		return x.Name
	case *ast.SelectorExpr:
		return engineLockKey(info, x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return engineLockKey(info, x.X)
	case *ast.IndexExpr:
		return engineLockKey(info, x.X) + "[i]"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// fnCostNs derives the silent static CPU lower bound of one function:
// the same arithmetic SA08's costCalc applies (constant Consume
// durations, //soleil:cost annotations, constant-trip loops) but
// without reporting — unboundable constructs contribute their minimum.
// Cross-function calls charge the callee's summarized cost.
func (e *Engine) fnCostNs(site *declSite, active map[string]bool) time.Duration {
	if arg, ok := directiveArg(site.fn, "cost"); ok {
		if d, err := time.ParseDuration(arg); err == nil {
			return d
		}
		return 0
	}
	if directive(site.fn, "pure") || active[site.id] {
		return 0
	}
	active[site.id] = true
	defer delete(active, site.id)
	return e.nodeCostNs(site, site.fn.Body, active)
}

func (e *Engine) nodeCostNs(site *declSite, n ast.Node, active map[string]bool) time.Duration {
	info := site.pkg.Info
	var total time.Duration
	ast.Inspect(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // runs elsewhere (or when the value is called)
		case *ast.ForStmt:
			trips, ok := boundedFor(info, s)
			if !ok {
				trips = 1
			}
			if s.Init != nil {
				total += e.nodeCostNs(site, s.Init, active)
			}
			if s.Cond != nil {
				total += e.nodeCostNs(site, s.Cond, active)
			}
			body := e.nodeCostNs(site, s.Body, active)
			if s.Post != nil {
				body += e.nodeCostNs(site, s.Post, active)
			}
			total += time.Duration(trips) * body
			return false
		case *ast.RangeStmt:
			trips, ok := boundedRange(info, s)
			if !ok {
				trips = 1
			}
			total += time.Duration(trips) * e.nodeCostNs(site, s.Body, active)
			return false
		case *ast.CallExpr:
			total += e.callCostNs(site, s, active)
			return true
		}
		return true
	})
	return total
}

func (e *Engine) callCostNs(site *declSite, call *ast.CallExpr, active map[string]bool) time.Duration {
	info := site.pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return 0
	}
	if calleeName(call) == "Consume" && len(call.Args) == 1 {
		if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil {
			if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
				return time.Duration(v)
			}
		}
		return 0
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return e.nodeCostNs(site, fun.Body, active)
	}
	target := e.resolve(info, call)
	if target == nil {
		return 0
	}
	if target.pkg == site.pkg {
		return e.fnCostNs(target, active)
	}
	if s := e.summaries[target.id]; s != nil && !s.Recursive {
		return time.Duration(s.CostNs)
	}
	return 0
}
