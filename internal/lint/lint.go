// Package lint implements the source-level half of the paper's
// design-time RTSJ conformance story: whereas internal/validate checks
// the *architecture* (the ADL model) and internal/rtsj/memory enforces
// the assignment rules *dynamically* (generation tags), this package
// analyzes the Go component code itself and moves the same classes of
// runtime fault — IllegalAssignmentError, MemoryAccessError, heap
// access from a no-heap thread, unbounded blocking inside a
// run-to-completion section — to compile time.
//
// The package is deliberately shaped like golang.org/x/tools/go/analysis
// (Analyzer, Pass, analysistest-style corpora) but is built on the
// standard library only: packages are loaded through `go list -export`
// and type-checked against gc export data, so the suite runs offline
// with nothing but the Go toolchain.
//
// Four analyzers ship today, each owning one SA rule id in the
// validate.Diagnostic vocabulary:
//
//	SA01 noheapalloc  heap allocation reachable from a no-heap path
//	SA02 scoperef     scoped reference stored into longer-lived state
//	SA03 rtblock      unbounded blocking inside run-to-completion code
//	SA04 archconform  code vs ADL drift (registrations, activation kinds)
//
// Source annotations:
//
//	//soleil:noheap            marks a function as a no-heap root (SA01)
//	//soleil:rtc               marks a function as run-to-completion (SA03)
//	//soleil:ignore SAxx why   suppresses a finding on this or the next line
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"soleil/internal/model"
	"soleil/internal/validate"
)

// An Analyzer describes one source-level conformance pass.
type Analyzer struct {
	// Name is the short pass name (e.g. "noheapalloc").
	Name string
	// Rule is the diagnostic rule id the pass owns (e.g. "SA01").
	Rule string
	// Doc is the one-paragraph description printed by `soleil vet -help`.
	Doc string
	// Run performs the pass over one package.
	Run func(*Pass) error
}

// All is the full analyzer suite in rule order.
func All() []*Analyzer {
	return []*Analyzer{NoHeapAlloc, ScopeRef, RTBlock, ArchConform}
}

// ByName resolves a comma-separated analyzer selection.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// A Finding is one source-level diagnostic before it is rendered into
// the shared validate.Diagnostic form.
type Finding struct {
	Pos        token.Pos
	Rule       string
	Severity   validate.Severity
	Subject    string // enclosing function or content class
	Message    string
	Suggestion string
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Arch is the ADL model supplied via -adl; nil when absent
	// (analyzers that need it skip themselves).
	Arch *model.Architecture

	findings    []Finding
	suppression map[string][]suppressed // filename -> suppression comments
}

type suppressed struct {
	line  int
	rules map[string]bool // empty set = all rules
}

// Report records a finding unless a //soleil:ignore comment on the
// finding's line (or the line above it) suppresses the rule.
func (p *Pass) Report(f Finding) {
	if f.Rule == "" {
		f.Rule = p.Analyzer.Rule
	}
	if p.isSuppressed(f) {
		return
	}
	p.findings = append(p.findings, f)
}

// Reportf formats and records a finding.
func (p *Pass) Reportf(pos token.Pos, sev validate.Severity, subject, suggestion, format string, args ...any) {
	p.Report(Finding{
		Pos: pos, Severity: sev, Subject: subject,
		Suggestion: suggestion, Message: fmt.Sprintf(format, args...),
	})
}

func (p *Pass) isSuppressed(f Finding) bool {
	if p.suppression == nil {
		p.buildSuppressions()
	}
	pos := p.Fset.Position(f.Pos)
	for _, s := range p.suppression[pos.Filename] {
		if s.line != pos.Line && s.line != pos.Line-1 {
			continue
		}
		if len(s.rules) == 0 || s.rules[f.Rule] {
			return true
		}
	}
	return false
}

var ignoreRE = regexp.MustCompile(`^//\s*soleil:ignore\b\s*([A-Z0-9,]*)`)

func (p *Pass) buildSuppressions() {
	p.suppression = map[string][]suppressed{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				s := suppressed{
					line:  p.Fset.Position(c.Pos()).Line,
					rules: map[string]bool{},
				}
				for _, r := range strings.Split(m[1], ",") {
					if r = strings.TrimSpace(r); r != "" {
						s.rules[r] = true
					}
				}
				name := p.Fset.Position(c.Pos()).Filename
				p.suppression[name] = append(p.suppression[name], s)
			}
		}
	}
}

// directive reports whether fn's doc comment carries the given
// //soleil: directive (e.g. "noheap", "rtc").
func directive(fn *ast.FuncDecl, name string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	want := "//soleil:" + name
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// funcName renders a function's display name, including the receiver
// for methods.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	return fmt.Sprintf("(%s).%s", typeText(recv), fn.Name.Name)
}

func typeText(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeText(t.X)
	case *ast.IndexExpr:
		return typeText(t.X)
	case *ast.SelectorExpr:
		return typeText(t.X) + "." + t.Sel.Name
	default:
		return fmt.Sprintf("%T", e)
	}
}
