// Package lint implements the source-level half of the paper's
// design-time RTSJ conformance story: whereas internal/validate checks
// the *architecture* (the ADL model) and internal/rtsj/memory enforces
// the assignment rules *dynamically* (generation tags), this package
// analyzes the Go component code itself and moves the same classes of
// runtime fault — IllegalAssignmentError, MemoryAccessError, heap
// access from a no-heap thread, unbounded blocking inside a
// run-to-completion section — to compile time.
//
// The package is deliberately shaped like golang.org/x/tools/go/analysis
// (Analyzer, Pass, analysistest-style corpora) but is built on the
// standard library only: packages are loaded through `go list -export`
// and type-checked against gc export data, so the suite runs offline
// with nothing but the Go toolchain.
//
// Two analyzer families ship today, each pass owning one SA rule id in
// the validate.Diagnostic vocabulary. The per-function passes look at
// one package at a time:
//
//	SA01 noheapalloc  heap allocation reachable from a no-heap path
//	SA02 scoperef     scoped reference stored into longer-lived state
//	SA03 rtblock      unbounded blocking inside run-to-completion code
//	SA04 archconform  code vs ADL drift (registrations, activation kinds)
//
// The whole-architecture passes (soleil vet -arch) fuse the ADL
// architecture, the deployment descriptor and the typed ASTs of every
// registered implementation into one model (ArchFacts) and analyze
// the composed system:
//
//	SA05 bindingcycle   synchronous-binding wait cycles (static deadlock)
//	SA06 lockorder      inconsistent mutex acquisition order in content code
//	SA07 membranebypass mutable state handed across a binding by reference
//	SA08 costbound      implementation cost vs the ADL cost= budget
//	SA09 flowlatency    end-to-end worst-case latency vs contract budgets
//	SA10 queuesizing    admitted rate vs capacity, statically-overflowing buffers
//	SA11 spawnleak      unbounded goroutines spawned from membrane-reachable code
//
// Since PR 9 the passes share an interprocedural engine (summary.go):
// a call graph over all loaded packages plus per-function effect
// summaries (allocations, blocking, locks, spawns, CPU lower bound)
// computed bottom-up over SCCs, so SA01/SA03/SA06/SA08 see one or more
// calls deep — including across packages and through unique-target
// interface dispatch — and findings carry the call chain (rendered as
// SARIF codeFlows). Summaries are serialized to a content-hashed facts
// cache (cache.go) so warm `soleil vet -arch` runs skip recomputation.
//
// Source annotations:
//
//	//soleil:noheap               marks a function as a no-heap root (SA01)
//	//soleil:rtc                  marks a function as run-to-completion (SA03)
//	//soleil:cost 250us           declares a function's CPU cost (SA08)
//	//soleil:pure                 trusts a function to be effect-free and zero-cost
//	//soleil:ignore SAxx[,SAyy] why   suppresses findings on this or the next line
//
// The ignore directive names one or more comma-separated rule ids;
// unknown ids are themselves reported (rule SA00) instead of silently
// suppressing nothing — or worse, everything. Directives that never
// suppress anything during a run that exercised every rule they name
// are reported as SA00 Info findings, so stale ignores cannot rot in
// place.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"soleil/internal/model"
	"soleil/internal/validate"
)

// An Analyzer describes one source-level conformance pass.
type Analyzer struct {
	// Name is the short pass name (e.g. "noheapalloc").
	Name string
	// Rule is the diagnostic rule id the pass owns (e.g. "SA01").
	Rule string
	// Doc is the one-paragraph description printed by `soleil vet -help`.
	Doc string
	// Run performs the pass over one package.
	Run func(*Pass) error
}

// All is the per-function analyzer suite in rule order. The
// whole-architecture passes live in AllArch.
func All() []*Analyzer {
	return []*Analyzer{NoHeapAlloc, ScopeRef, RTBlock, ArchConform}
}

// ByName resolves a comma-separated analyzer selection.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RuleDocs maps every rule id in the suite (per-function and
// whole-architecture) to the first line of its analyzer's Doc — the
// one-liner SARIF export emits as rule metadata.
func RuleDocs() map[string]string {
	docs := map[string]string{}
	add := func(rule, doc string) {
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		docs[rule] = strings.TrimSuffix(strings.TrimSpace(doc), ".")
	}
	for _, a := range All() {
		add(a.Rule, a.Doc)
	}
	for _, a := range AllArch() {
		add(a.Rule, a.Doc)
	}
	add("SA00", "validates //soleil:ignore directives: malformed ones and ones whose excused finding is gone")
	return docs
}

// KnownRules is the set of rule ids a //soleil:ignore directive may
// name: every per-function and whole-architecture pass, plus SA00
// (the directive-validation rule itself). The set is spelled out
// rather than derived from All()/AllArch() — the directive parser runs
// during analyzer construction, and deriving it would create an
// initialization cycle; TestKnownRulesCoverSuite keeps it honest.
func KnownRules() map[string]bool {
	return map[string]bool{
		"SA00": true, "SA01": true, "SA02": true, "SA03": true, "SA04": true,
		"SA05": true, "SA06": true, "SA07": true, "SA08": true,
		"SA09": true, "SA10": true, "SA11": true,
	}
}

// A Finding is one source-level diagnostic before it is rendered into
// the shared validate.Diagnostic form.
type Finding struct {
	Pos        token.Pos
	Rule       string
	Severity   validate.Severity
	Subject    string // enclosing function or content class
	Message    string
	Suggestion string
	// PosStr, when set, overrides Pos at render time. Findings spliced
	// from cached summaries carry rendered positions (the cache has no
	// FileSet to resolve against).
	PosStr string
	// Flow is the call chain (or binding path) from the analysis entry
	// point to the offending site; SARIF export renders it as a
	// codeFlow.
	Flow []validate.FlowStep
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Arch is the ADL model supplied via -adl; nil when absent
	// (analyzers that need it skip themselves).
	Arch *model.Architecture
	// Eng is the interprocedural summary engine over the whole load;
	// nil in engine-less runs (vet-tool unit mode), in which case the
	// passes fall back to intraprocedural reasoning.
	Eng *Engine

	findings []Finding
	supp     *suppressionIndex
}

type suppressed struct {
	pos   token.Pos
	line  int
	rules map[string]bool
	used  bool
}

// A suppressionIndex is the parsed //soleil:ignore directives of one
// package, built once and shared by every pass over it (and by the
// summary engine), plus the SA00 findings for directives that failed
// to parse. Directives are pointers so a "used" mark set by any
// consumer is seen by the unused-suppression report.
type suppressionIndex struct {
	byFile map[string][]*suppressed // filename -> directives
	bad    []Finding                // SA00: malformed or unknown-rule directives
}

// Report records a finding unless a //soleil:ignore comment on the
// finding's line (or the line above it) suppresses the rule.
func (p *Pass) Report(f Finding) {
	if f.Rule == "" {
		f.Rule = p.Analyzer.Rule
	}
	if p.isSuppressed(f) {
		return
	}
	p.findings = append(p.findings, f)
}

// Reportf formats and records a finding.
func (p *Pass) Reportf(pos token.Pos, sev validate.Severity, subject, suggestion, format string, args ...any) {
	p.Report(Finding{
		Pos: pos, Severity: sev, Subject: subject,
		Suggestion: suggestion, Message: fmt.Sprintf(format, args...),
	})
}

func (p *Pass) isSuppressed(f Finding) bool {
	if p.supp == nil {
		p.supp = buildSuppressionIndex(p.Fset, p.Files)
	}
	return p.supp.suppresses(p.Fset, f)
}

func (s *suppressionIndex) suppresses(fset *token.FileSet, f Finding) bool {
	return s.suppressesPosition(fset.Position(f.Pos), f.Rule)
}

// suppressesPosition is the rendered-position form shared with the
// summary engine; a match marks the directive used.
func (s *suppressionIndex) suppressesPosition(pos token.Position, rule string) bool {
	for _, d := range s.byFile[pos.Filename] {
		if d.line != pos.Line && d.line != pos.Line-1 {
			continue
		}
		if d.rules[rule] {
			d.used = true
			return true
		}
	}
	return false
}

// usedAt renders the positions of every used directive — the facts
// cache records them so warm runs replay the marks.
func (s *suppressionIndex) usedAt(fset *token.FileSet) []string {
	var out []string
	for _, ds := range s.byFile {
		for _, d := range ds {
			if d.used {
				out = append(out, fset.Position(d.pos).String())
			}
		}
	}
	sort.Strings(out)
	return out
}

// markUsed replays recorded used-directive positions from a warm
// cache entry.
func (s *suppressionIndex) markUsed(fset *token.FileSet, positions map[string]bool) {
	for _, ds := range s.byFile {
		for _, d := range ds {
			if positions[fset.Position(d.pos).String()] {
				d.used = true
			}
		}
	}
}

// unused reports the directives that suppressed nothing, restricted to
// directives whose every named rule was actually exercised (ran) this
// invocation — a directive naming a rule whose analyzer did not run is
// unproven, not stale.
func (s *suppressionIndex) unused(ran map[string]bool) []Finding {
	var out []Finding
	for _, ds := range s.byFile {
		for _, d := range ds {
			if d.used {
				continue
			}
			covered := true
			var names []string
			for r := range d.rules {
				names = append(names, r)
				if !ran[r] {
					covered = false
				}
			}
			if !covered {
				continue
			}
			sort.Strings(names)
			out = append(out, Finding{
				Pos: d.pos, Rule: "SA00", Severity: validate.Info,
				Subject: "//soleil:ignore",
				Message: fmt.Sprintf("//soleil:ignore %s suppresses nothing: the finding it excused is gone",
					strings.Join(names, ",")),
				Suggestion: "delete the stale suppression",
			})
		}
	}
	return out
}

var ignoreRE = regexp.MustCompile(`^//\s*soleil:ignore\b(.*)`)

// buildSuppressionIndex parses every //soleil:ignore directive in the
// files. A directive names one or more comma-separated rule ids
// followed by a justification: `//soleil:ignore SA05,SA06 reason`.
// Directives with no rule list, or naming a rule id the suite does not
// own, suppress nothing and are reported under rule SA00 — a silent
// typo in a suppression is how a real finding disappears.
func buildSuppressionIndex(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{byFile: map[string][]*suppressed{}}
	known := KnownRules()
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				bad := func(format string, args ...any) {
					idx.bad = append(idx.bad, Finding{
						Pos: c.Pos(), Rule: "SA00", Severity: validate.Error,
						Subject: "//soleil:ignore",
						Message: fmt.Sprintf(format, args...),
						Suggestion: "name the rules to suppress, e.g. //soleil:ignore SA03 bounded by the RTC section",
					})
				}
				fields := strings.Fields(m[1])
				if len(fields) == 0 {
					bad("//soleil:ignore names no rule; the directive suppresses nothing")
					continue
				}
				s := &suppressed{
					pos:   c.Pos(),
					line:  fset.Position(c.Pos()).Line,
					rules: map[string]bool{},
				}
				ok := true
				for _, id := range strings.Split(fields[0], ",") {
					canon := strings.ToUpper(strings.TrimSpace(id))
					if canon == "" || !known[canon] {
						bad("//soleil:ignore names unknown rule id %q; the directive suppresses nothing", id)
						ok = false
						break
					}
					s.rules[canon] = true
				}
				if !ok {
					continue
				}
				name := fset.Position(c.Pos()).Filename
				idx.byFile[name] = append(idx.byFile[name], s)
			}
		}
	}
	return idx
}

// directive reports whether fn's doc comment carries the given
// //soleil: directive (e.g. "noheap", "rtc").
func directive(fn *ast.FuncDecl, name string) bool {
	_, ok := directiveArg(fn, name)
	return ok
}

// directiveArg returns the argument text of fn's //soleil:<name>
// directive ("" when the directive is bare) and whether the directive
// is present at all.
func directiveArg(fn *ast.FuncDecl, name string) (string, bool) {
	if fn == nil || fn.Doc == nil {
		return "", false
	}
	want := "//soleil:" + name
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want {
			return "", true
		}
		if strings.HasPrefix(text, want+" ") {
			return strings.TrimSpace(strings.TrimPrefix(text, want+" ")), true
		}
	}
	return "", false
}

// funcName renders a function's display name, including the receiver
// for methods.
func funcName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	return fmt.Sprintf("(%s).%s", typeText(recv), fn.Name.Name)
}

func typeText(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeText(t.X)
	case *ast.IndexExpr:
		return typeText(t.X)
	case *ast.SelectorExpr:
		return typeText(t.X) + "." + t.Sel.Name
	default:
		return fmt.Sprintf("%T", e)
	}
}

// receiverObj returns the receiver variable object of a method
// declaration, or nil for plain functions and unnamed receivers.
func receiverObj(info *types.Info, fn *ast.FuncDecl) *types.Var {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[fn.Recv.List[0].Names[0]].(*types.Var)
	return v
}
