package lint_test

import (
	"path/filepath"
	"testing"

	"soleil/internal/lint"
	"soleil/internal/lint/linttest"
	"soleil/internal/validate"
)

func corpus(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestNoHeapAlloc(t *testing.T) {
	diags := linttest.Run(t, corpus("noheapsrc"), lint.NoHeapAlloc, "")
	if len(diags) == 0 {
		t.Fatal("corpus produced no findings")
	}
	for _, d := range diags {
		if d.Rule != "SA01" {
			t.Errorf("noheapalloc produced foreign rule %s", d.Rule)
		}
	}
}

// TestNoHeapDeep: the one-call-deep SA01 catch the intraprocedural
// walk misses — the allocation hides behind interface dispatch the
// summary engine resolves by class hierarchy.
func TestNoHeapDeep(t *testing.T) {
	diags := linttest.Run(t, corpus("noheapdeepsrc"), lint.NoHeapAlloc, "")
	if len(diags) != 1 {
		t.Fatalf("expected the 1 spliced finding, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "SA01" || d.Severity != validate.Error {
		t.Errorf("spliced finding wrong shape: %+v", d)
	}
	if len(d.Flow) == 0 {
		t.Errorf("spliced finding carries no call chain: %+v", d)
	}
}

// TestRTBlockDeep: same catch for SA03 — blocking one unique-target
// interface call away from the run-to-completion section.
func TestRTBlockDeep(t *testing.T) {
	diags := linttest.Run(t, corpus("rtblockdeepsrc"), lint.RTBlock, "")
	if len(diags) != 2 {
		t.Fatalf("expected the 2 spliced findings, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "SA03" || d.Severity != validate.Error {
			t.Errorf("spliced finding wrong shape: %+v", d)
		}
		if len(d.Flow) == 0 {
			t.Errorf("spliced finding carries no call chain: %+v", d)
		}
	}
}

// TestStaleIgnore: a //soleil:ignore whose excused finding no longer
// exists is reported as SA00 at info severity; a live one is not.
func TestStaleIgnore(t *testing.T) {
	diags := linttest.Run(t, corpus("staleignoresrc"), lint.NoHeapAlloc, "")
	if len(diags) != 1 {
		t.Fatalf("expected the 1 stale suppression, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "SA00" || d.Severity != validate.Info {
		t.Errorf("stale-ignore finding wrong shape: %+v", d)
	}
}

func TestScopeRef(t *testing.T) {
	diags := linttest.Run(t, corpus("scopesrc"), lint.ScopeRef, "")
	for _, d := range diags {
		if d.Rule != "SA02" {
			t.Errorf("scoperef produced foreign rule %s", d.Rule)
		}
		if d.Severity != validate.Error {
			t.Errorf("scoperef finding %s is %v, want error", d.Message, d.Severity)
		}
		if d.Suggestion == "" {
			t.Errorf("scoperef finding %q proposes no cross-scope pattern", d.Message)
		}
	}
}

func TestRTBlock(t *testing.T) {
	diags := linttest.Run(t, corpus("rtblocksrc"), lint.RTBlock, "")
	var errors, warnings int
	for _, d := range diags {
		switch d.Severity {
		case validate.Error:
			errors++
		case validate.Warning:
			warnings++
		}
	}
	if errors == 0 || warnings == 0 {
		t.Errorf("expected both error and warning findings, got %d errors / %d warnings",
			errors, warnings)
	}
}

func TestArchConform(t *testing.T) {
	diags := linttest.Run(t, corpus("archsrc"), lint.ArchConform,
		filepath.Join(corpus("archsrc"), "arch.xml"))
	if len(diags) != 5 {
		t.Errorf("expected the 5 corpus findings, got %d: %v", len(diags), diags)
	}
}

// TestArchConformNoADL: without an architecture the analyzer must be
// silent rather than guessing.
func TestArchConformNoADL(t *testing.T) {
	pkg, err := lint.LoadDir(corpus("archsrc"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunPackage(pkg, nil, []*lint.Analyzer{lint.ArchConform})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("archconform without -adl produced %d findings: %v", len(diags), diags)
	}
}

func TestByName(t *testing.T) {
	as, err := lint.ByName("rtblock,noheapalloc")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "rtblock" || as[1].Name != "noheapalloc" {
		t.Errorf("ByName selection wrong: %v", as)
	}
	if _, err := lint.ByName("nope"); err == nil {
		t.Error("ByName accepted an unknown analyzer")
	}
	if as, err := lint.ByName(""); err != nil || len(as) != 4 {
		t.Errorf("ByName(\"\") should return the full suite, got %v, %v", as, err)
	}
}
