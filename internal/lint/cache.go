package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The on-disk facts cache. One JSON file per summarized package,
// keyed by a content hash of the engine version plus every source
// file of the package, carrying the hashes of every
// summary-dependency package (imports within the load, plus packages
// reached through CHA dispatch — the transitive closure, so a change
// anywhere below invalidates everything above). A warm entry is valid
// when its own hash and all recorded dependency hashes match the
// current load; then its summaries are adopted verbatim and the
// package is skipped during the bottom-up build.
//
// Position strings inside cached summaries are rendered paths, which
// are stable across runs on the same checkout — the FileSet is not
// serialized.

// cacheEntry is the serialized facts of one package.
type cacheEntry struct {
	ImportPath string              `json:"importPath"`
	Hash       string              `json:"hash"`
	Deps       map[string]string   `json:"deps,omitempty"` // import path -> hash
	Summaries  map[string]*Summary `json:"summaries"`
	// UsedSupp records the rendered positions of //soleil:ignore
	// directives that filtered an effect during the summary build, so
	// warm runs re-mark them used and the unused-suppression report
	// stays identical cold and warm.
	UsedSupp []string `json:"usedSupp,omitempty"`
}

// pkgHash fingerprints one package's source: the engine version and
// every parsed file's content, in FileSet order.
func pkgHash(pkg *Package) string {
	h := sha256.New()
	fmt.Fprintln(h, engineVersion)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		fmt.Fprintln(h, name)
		b, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(h, "unreadable:", err)
			continue
		}
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// cachePath names the entry file for one import path.
func cachePath(dir, importPath string) string {
	name := strings.NewReplacer("/", "_", "\\", "_", ":", "_").Replace(importPath)
	return filepath.Join(dir, name+".facts.json")
}

// summaryDeps derives the summary-dependency graph between loaded
// packages: every package a summary of pkg can transitively reference —
// its in-load imports plus every package holding a resolved CHA or
// static call target.
func (e *Engine) summaryDeps() map[*Package]map[string]bool {
	direct := map[*Package]map[string]bool{}
	for _, pkg := range e.pkgs {
		direct[pkg] = map[string]bool{}
	}
	for pkg, sites := range e.byPkg {
		for _, site := range sites {
			for _, id := range e.calleeIDs(site) {
				target := e.decls[id]
				if target.pkg != pkg {
					direct[pkg][target.pkg.ImportPath] = true
				}
			}
		}
	}
	byPath := map[string]*Package{}
	for _, pkg := range e.pkgs {
		byPath[pkg.ImportPath] = pkg
	}
	// Transitive closure (the graphs are small; iterate to fixpoint).
	for changed := true; changed; {
		changed = false
		for pkg, deps := range direct {
			for d := range deps {
				dp, ok := byPath[d]
				if !ok {
					continue
				}
				for dd := range direct[dp] {
					if dd != pkg.ImportPath && !deps[dd] {
						deps[dd] = true
						changed = true
					}
				}
			}
		}
	}
	return direct
}

// loadFactsCache adopts valid warm entries into the engine and
// reports which packages they covered.
func loadFactsCache(e *Engine, dir string) map[*Package]bool {
	hashes := map[string]string{}
	for _, pkg := range e.pkgs {
		hashes[pkg.ImportPath] = pkgHash(pkg)
	}
	cached := map[*Package]bool{}
	for _, pkg := range e.pkgs {
		b, err := os.ReadFile(cachePath(dir, pkg.ImportPath))
		if err != nil {
			continue
		}
		var entry cacheEntry
		if json.Unmarshal(b, &entry) != nil {
			continue
		}
		if entry.ImportPath != pkg.ImportPath || entry.Hash != hashes[pkg.ImportPath] {
			continue
		}
		valid := true
		for dep, h := range entry.Deps {
			if hashes[dep] != h {
				valid = false
				break
			}
		}
		if !valid {
			continue
		}
		for id, s := range entry.Summaries {
			e.summaries[id] = s
		}
		if len(entry.UsedSupp) > 0 {
			used := map[string]bool{}
			for _, p := range entry.UsedSupp {
				used[p] = true
			}
			e.supp(pkg).markUsed(pkg.Fset, used)
		}
		cached[pkg] = true
	}
	return cached
}

// writeFactsCache persists the summaries of every freshly computed
// package. Write failures are deliberately silent: the cache is an
// accelerator, not a correctness input.
func writeFactsCache(e *Engine, dir string, cached map[*Package]bool) {
	if os.MkdirAll(dir, 0o755) != nil {
		return
	}
	hashes := map[string]string{}
	for _, pkg := range e.pkgs {
		hashes[pkg.ImportPath] = pkgHash(pkg)
	}
	deps := e.summaryDeps()
	for _, pkg := range e.pkgs {
		if cached[pkg] {
			continue
		}
		entry := cacheEntry{
			ImportPath: pkg.ImportPath,
			Hash:       hashes[pkg.ImportPath],
			Deps:       map[string]string{},
			Summaries:  map[string]*Summary{},
		}
		var depPaths []string
		for d := range deps[pkg] {
			depPaths = append(depPaths, d)
		}
		sort.Strings(depPaths)
		for _, d := range depPaths {
			if h, ok := hashes[d]; ok {
				entry.Deps[d] = h
			}
		}
		for _, site := range e.byPkg[pkg] {
			if s := e.summaries[site.id]; s != nil {
				entry.Summaries[site.id] = s
			}
		}
		entry.UsedSupp = e.supp(pkg).usedAt(pkg.Fset)
		b, err := json.Marshal(entry)
		if err != nil {
			continue
		}
		tmp := cachePath(dir, pkg.ImportPath) + ".tmp"
		if os.WriteFile(tmp, b, 0o644) == nil {
			os.Rename(tmp, cachePath(dir, pkg.ImportPath))
		}
	}
}
