package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"soleil/internal/lint"
	"soleil/internal/validate"
)

func copyFile(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	old := []validate.Diagnostic{
		{Rule: "SA01", Severity: validate.Error, Subject: "(*pump).sample",
			Pos: filepath.Join(dir, "pkg", "a.go") + ":10:2", Message: "append allocates"},
		{Rule: "SA01", Severity: validate.Error, Subject: "(*pump).sample",
			Pos: filepath.Join(dir, "pkg", "a.go") + ":11:3", Message: "fmt allocates"},
		{Rule: "SA06", Severity: validate.Error, Subject: "pump",
			Pos: filepath.Join(dir, "pkg", "a.go") + ":20:1", Message: "lock inversion"},
	}
	if err := lint.WriteBaseline(base, old); err != nil {
		t.Fatal(err)
	}

	// Identical findings: all absorbed, nothing stale.
	fresh, stale, err := lint.CheckBaseline(base, old)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 || stale != 0 {
		t.Fatalf("identical run should be fully absorbed, got fresh=%v stale=%d", fresh, stale)
	}

	// Accepted findings move lines and change messages without
	// un-accepting; a new rule on the same file still gates; a fixed
	// finding leaves a stale entry.
	next := []validate.Diagnostic{
		{Rule: "SA01", Severity: validate.Error, Subject: "(*pump).sample",
			Pos: filepath.Join(dir, "pkg", "a.go") + ":99:7", Message: "append allocates (moved)"},
		{Rule: "SA01", Severity: validate.Error, Subject: "(*pump).sample",
			Pos: filepath.Join(dir, "pkg", "a.go") + ":100:1", Message: "fmt allocates"},
		{Rule: "SA03", Severity: validate.Error, Subject: "(*pump).Invoke",
			Pos: filepath.Join(dir, "pkg", "a.go") + ":30:2", Message: "sleep blocks"},
	}
	fresh, stale, err = lint.CheckBaseline(base, next)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 1 || fresh[0].Rule != "SA03" {
		t.Errorf("only the new SA03 should gate, got %v", fresh)
	}
	if stale != 1 {
		t.Errorf("the fixed SA06 should surface as 1 stale entry, got %d", stale)
	}

	// The multiset absorbs at most the accepted count: a third SA01 of
	// the same shape is fresh.
	extra := append(append([]validate.Diagnostic{}, next[:2]...), validate.Diagnostic{
		Rule: "SA01", Severity: validate.Error, Subject: "(*pump).sample",
		Pos: filepath.Join(dir, "pkg", "a.go") + ":120:1", Message: "make allocates"})
	fresh, _, err = lint.CheckBaseline(base, extra)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 1 || fresh[0].Rule != "SA01" {
		t.Errorf("the third same-shape SA01 should gate, got %v", fresh)
	}
}

func TestParseBaselineFlag(t *testing.T) {
	for _, tc := range []struct{ in, mode, path string }{
		{"write:b.json", "write", "b.json"},
		{"check:b.json", "check", "b.json"},
		{"b.json", "check", "b.json"},
		{"", "", ""},
	} {
		mode, path, err := lint.ParseBaselineFlag(tc.in)
		if err != nil || mode != tc.mode || path != tc.path {
			t.Errorf("ParseBaselineFlag(%q) = %q, %q, %v; want %q, %q", tc.in, mode, path, err, tc.mode, tc.path)
		}
	}
	if _, _, err := lint.ParseBaselineFlag("write:"); err == nil {
		t.Error("empty write path accepted")
	}
}

// TestBaselineRelocatable: keys are stored relative to the baseline
// file, so a moved checkout still matches.
func TestBaselineRelocatable(t *testing.T) {
	dirA := t.TempDir()
	dirB := t.TempDir()
	baseA := filepath.Join(dirA, "baseline.json")
	baseB := filepath.Join(dirB, "baseline.json")
	diagA := []validate.Diagnostic{{Rule: "SA01", Subject: "f",
		Pos: filepath.Join(dirA, "x", "a.go") + ":1:1", Message: "m"}}
	diagB := []validate.Diagnostic{{Rule: "SA01", Subject: "f",
		Pos: filepath.Join(dirB, "x", "a.go") + ":5:5", Message: "m"}}
	if err := lint.WriteBaseline(baseA, diagA); err != nil {
		t.Fatal(err)
	}
	data, err := filepath.Glob(baseA)
	if err != nil || len(data) != 1 {
		t.Fatal("baseline not written")
	}
	if err := copyFile(baseA, baseB); err != nil {
		t.Fatal(err)
	}
	fresh, stale, err := lint.CheckBaseline(baseB, diagB)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) != 0 || stale != 0 {
		t.Errorf("relocated baseline should absorb the same relative finding, got fresh=%v stale=%d", fresh, stale)
	}
}
