package lint

import (
	"go/ast"
	"go/types"

	"soleil/internal/validate"
)

// RTBlock (SA03) guards the ActiveInterceptor's run-to-completion
// execution model: a component operation must run to completion
// without unbounded blocking, or every response-time bound the
// schedulability analysis computed is void. Roots are methods named
// Invoke or Activate (the membrane.Content / membrane.Interceptor /
// membrane.ActiveContent entry points) plus functions annotated
// //soleil:rtc; reachability follows static calls within the package,
// and — when the interprocedural engine is available — cross-package
// calls and unique-target interface dispatch through the callee's
// effect summary, with the call chain attached to the finding.
// Flagged: time.Sleep, bare channel sends/receives, selects without a
// default case, blocking I/O (os, net, net/http), and — at warning
// severity, since short priority-ceiling critical sections are the
// accepted RTSJ idiom — sync.Mutex/RWMutex locks, WaitGroup.Wait and
// Cond.Wait.
var RTBlock = &Analyzer{
	Name: "rtblock",
	Rule: "SA03",
	Doc: "flags unbounded blocking (time.Sleep, channel ops, selects without " +
		"default, file/network I/O, sync waits) inside run-to-completion sections",
	Run: runRTBlock,
}

// ioPackages lists packages whose calls are treated as unbounded I/O
// inside a run-to-completion section.
var ioPackages = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
}

func runRTBlock(p *Pass) error {
	decls := declaredFuncs(p)
	var roots []*ast.FuncDecl
	for _, fn := range decls {
		if directive(fn, "rtc") ||
			(fn.Recv != nil && (fn.Name.Name == "Invoke" || fn.Name.Name == "Activate")) {
			roots = append(roots, fn)
		}
	}
	reach := reachable(p, decls, roots)
	seen := map[string]bool{}
	for fn, root := range reach {
		checkRTCFunc(p, fn, root, reach, seen)
	}
	return nil
}

func checkRTCFunc(p *Pass, fn *ast.FuncDecl, root string, reach map[*ast.FuncDecl]string, seen map[string]bool) {
	subject := funcName(fn)
	via := ""
	if subject != root {
		via = " (reachable from run-to-completion section " + root + ")"
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectStmt:
			// A select with a default case polls instead of blocking:
			// its channel operations are bounded.
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					for _, stmt := range x.Body.List {
						if body, ok := stmt.(*ast.CommClause); ok {
							for _, s := range body.Body {
								ast.Inspect(s, walk)
							}
						}
					}
					return false
				}
			}
			p.Reportf(x.Pos(), validate.Error, subject,
				"add a default case, or move the wait into a sporadic activation",
				"select without default blocks a run-to-completion section%s", via)
			return false // channel operands inside would double-report
		case *ast.SendStmt:
			p.Reportf(x.Pos(), validate.Error, subject,
				"use a bounded buffer with overflow policy (internal/comm) or a select with default",
				"channel send may block a run-to-completion section%s", via)
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				p.Reportf(x.Pos(), validate.Error, subject,
					"use a bounded buffer with overflow policy (internal/comm) or a select with default",
					"channel receive may block a run-to-completion section%s", via)
			}
		case *ast.CallExpr:
			checkRTCCall(p, x, subject, via)
			if sum := p.spliceCall(x, reach); sum != nil {
				p.reportEffects(x, sum, sum.Blocks, subject, via, seen)
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// blockingSyncMethods maps sync method names to whether they block
// unboundedly even in disciplined use.
var blockingSyncMethods = map[string]bool{
	"Lock":  true,
	"RLock": true,
	"Wait":  true,
}

func checkRTCCall(p *Pass, call *ast.CallExpr, subject, via string) {
	callee := staticCallee(p.Info, call)
	if callee == nil {
		return // builtins, dynamic calls and interface dispatch
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return
	}
	switch {
	case pkg.Path() == "time" && callee.Name() == "Sleep":
		p.Reportf(call.Pos(), validate.Error, subject,
			"use a periodic activation (the scheduler owns time), not an inline sleep",
			"time.Sleep blocks a run-to-completion section%s", via)
	case pkg.Path() == "sync" && blockingSyncMethods[callee.Name()]:
		p.Reportf(call.Pos(), validate.Warning, subject,
			"keep the critical section short and document the bound, or take a priority-inheriting sched.Mutex",
			"sync.%s may block a run-to-completion section%s", recvTypeName(callee)+"."+callee.Name(), via)
	case ioPackages[pkg.Path()]:
		p.Reportf(call.Pos(), validate.Error, subject,
			"move I/O to a dedicated regular-priority component and bind asynchronously",
			"%s.%s performs unbounded I/O in a run-to-completion section%s",
			pkg.Name(), callee.Name(), via)
	}
}

func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return f.Name()
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
