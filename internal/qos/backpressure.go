// Package qos is the runtime half of binding contracts: the typed
// backpressure error every shed path in the framework returns, and
// the allocation-free token-bucket admission gate the assembly
// deploys per contracted binding. The static half lives in
// internal/validate (rules RT16/RT17); this package only enforces
// what validation has admitted.
package qos

import (
	"errors"

	"soleil/internal/model"
)

// ErrBackpressure is the unified backpressure sentinel: every
// admission rejection in the framework — a gate shedding at the
// membrane, a full in-process buffer refusing a message, a stalled
// distributed pipe, a full cluster link queue — unwraps to it, so one
// errors.Is(err, qos.ErrBackpressure) recognizes overload wherever it
// surfaces. internal/dist aliases it as dist.ErrBackpressure.
var ErrBackpressure = errors.New("qos: backpressure: admission refused")

// Backpressure is a typed rejection carrying the binding or link it
// happened on, so shed counters and logs can attribute overload per
// binding. Gates and links return a preallocated instance: the shed
// path allocates nothing.
type Backpressure struct {
	// Name is the binding or link the rejection happened on.
	Name string
	// Policy is the overload policy that produced the rejection.
	Policy model.OverloadPolicy
}

// Error implements error. It formats lazily — the rejection value
// itself is preallocated and the hot path never builds the string.
func (e *Backpressure) Error() string {
	return "qos: backpressure on " + e.Name + " (" + e.Policy.String() + " policy)"
}

// Unwrap makes errors.Is(err, ErrBackpressure) match.
func (e *Backpressure) Unwrap() error { return ErrBackpressure }

// BindingName attributes an error to the binding or link that shed
// it. It reports false for errors that are not typed backpressure
// (including the bare sentinel and untyped full-buffer refusals).
func BindingName(err error) (string, bool) {
	var bp *Backpressure
	if errors.As(err, &bp) {
		return bp.Name, true
	}
	return "", false
}
