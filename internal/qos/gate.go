package qos

import (
	"sync"
	"sync/atomic"
	"time"

	"soleil/internal/model"
	"soleil/internal/obs"
)

// DefaultBlockWait bounds how long a Block-policy gate makes the
// caller wait for admission capacity when the contract has no latency
// budget to derive the bound from.
const DefaultBlockWait = 10 * time.Millisecond

// breachProbeMask samples the SLO breach probe every 64th admission:
// often enough to flip a degrading binding into shedding within a
// burst, rare enough that the probe's histogram walk stays off the
// per-message cost.
const breachProbeMask = 64 - 1

// Gate is the per-binding admission gate: a token bucket refilled at
// the contract's MaxRate with depth Burst, plus a sampled SLO breach
// flag fed by the server's latency histogram. Admit is
// allocation-free on both the admitted and the shed path (the
// rejection is a preallocated typed Backpressure), so the gate is
// safe next to the metrics interceptor on real-time dispatch paths —
// `make benchcheck` pins it at 0 allocs/op.
//
// A nil *Gate admits everything: uncontracted bindings skip the
// machinery entirely.
type Gate struct {
	name      string
	policy    model.OverloadPolicy
	rate      float64 // tokens per second; 0 = no rate contract
	burst     float64
	blockWait time.Duration

	mu     sync.Mutex
	tokens float64
	last   time.Time

	admitted atomic.Int64
	shed     atomic.Int64
	degraded atomic.Int64
	breaches atomic.Int64
	breached atomic.Bool
	ticks    atomic.Int64

	probe atomic.Pointer[func() bool]
	rec   atomic.Pointer[obs.Recorder]

	reject Backpressure
}

// NewGate builds the admission gate of one contracted binding. A nil
// contract yields a nil gate (which admits everything).
func NewGate(name string, c *model.Contract) *Gate {
	if c == nil {
		return nil
	}
	policy := c.Policy
	if policy == 0 {
		policy = model.Shed
	}
	wait := c.LatencyBudget
	if wait <= 0 {
		wait = DefaultBlockWait
	}
	g := &Gate{
		name:      name,
		policy:    policy,
		rate:      c.MaxRate,
		burst:     float64(c.EffectiveBurst()),
		blockWait: wait,
	}
	g.tokens = g.burst
	g.reject = Backpressure{Name: name, Policy: policy}
	return g
}

// Name returns the gated binding's name.
func (g *Gate) Name() string { return g.name }

// Policy returns the gate's overload policy.
func (g *Gate) Policy() model.OverloadPolicy { return g.policy }

// SetBreachProbe installs the SLO probe: a function reporting whether
// the server currently breaches its latency budget (p99 above 80% of
// it). The probe must itself be allocation-free — it runs, sampled,
// on the admission hot path. Safe to call while the gate is in use.
func (g *Gate) SetBreachProbe(probe func() bool) {
	if probe == nil {
		g.probe.Store(nil)
		return
	}
	g.probe.Store(&probe)
}

// SetRecorder wires a flight recorder: SLO transitions are recorded
// (and a rising breach fires a dump trigger), sheds are recorded
// sampled — one event per 64. Safe to call while the gate is in use;
// a nil gate or recorder is a no-op.
func (g *Gate) SetRecorder(rec *obs.Recorder) {
	if g == nil {
		return
	}
	g.rec.Store(rec)
}

// Admit decides whether one message may pass the binding. It returns
// nil to admit, or the gate's preallocated typed Backpressure to
// reject; callers propagate the error to the sender, which is how
// shedding stays at the membrane instead of collapsing the server.
//
//soleil:noheap
func (g *Gate) Admit() error {
	if g == nil {
		return nil
	}
	// SLO bookkeeping runs on a sampled cadence so the histogram walk
	// stays off the per-message cost.
	if p := g.probe.Load(); p != nil && g.ticks.Add(1)&breachProbeMask == 0 {
		g.updateBreach(*p)
	}
	if g.rate <= 0 {
		g.admitted.Add(1)
		return nil
	}
	if g.take(time.Now()) {
		g.admitted.Add(1)
		return nil
	}
	switch g.policy {
	case model.Block:
		if g.waitForToken() {
			g.admitted.Add(1)
			return nil
		}
	case model.Degrade:
		// Over-rate traffic rides along while the server still meets
		// its SLO; the breach flag turns degradation into shedding.
		if !g.breached.Load() {
			g.degraded.Add(1)
			return nil
		}
	}
	// Sampled flight-recorder event: one per 64 sheds keeps the
	// recorder useful in a flood without becoming the flood.
	if n := g.shed.Add(1); n&breachProbeMask == 1 {
		g.rec.Load().Record(obs.EvGateShed, g.name, n, obs.SpanContext{})
	}
	return &g.reject
}

// take refills the bucket for the elapsed time and takes one token if
// available.
func (g *Gate) take(now time.Time) bool {
	g.mu.Lock()
	if g.last.IsZero() {
		g.last = now
	}
	if el := now.Sub(g.last); el > 0 {
		g.tokens += el.Seconds() * g.rate
		if g.tokens > g.burst {
			g.tokens = g.burst
		}
		g.last = now
	}
	ok := g.tokens >= 1
	if ok {
		g.tokens--
	}
	g.mu.Unlock()
	return ok
}

// waitForToken implements the Block policy: sleep until the bucket
// should hold a token, bounded by the gate's wait budget. RT17
// statically refuses this policy for real-time clients, so the sleep
// only ever delays threads that may block.
func (g *Gate) waitForToken() bool {
	deadline := time.Now().Add(g.blockWait)
	for {
		g.mu.Lock()
		shortfall := 1 - g.tokens
		g.mu.Unlock()
		if shortfall <= 0 {
			if g.take(time.Now()) {
				return true
			}
			continue
		}
		wait := time.Duration(shortfall / g.rate * float64(time.Second))
		if wait < 50*time.Microsecond {
			wait = 50 * time.Microsecond
		}
		now := time.Now()
		if remaining := deadline.Sub(now); wait > remaining {
			if remaining <= 0 {
				return false
			}
			wait = remaining
		}
		time.Sleep(wait) //soleil:ignore SA03 Block-policy wait: bounded by blockWait, and RT17 refuses this policy for RT clients
		if g.take(time.Now()) {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
	}
}

func (g *Gate) updateBreach(probe func() bool) {
	b := probe()
	prev := g.breached.Swap(b)
	if b == prev {
		return
	}
	rec := g.rec.Load()
	if b {
		g.breaches.Add(1)
		rec.Record(obs.EvGateBreach, g.name, 0, obs.SpanContext{})
		rec.Trigger("slo-breach")
	} else {
		rec.Record(obs.EvGateRecovered, g.name, 0, obs.SpanContext{})
	}
}

// GateStats is a snapshot of the gate's counters.
type GateStats struct {
	// Admitted counts messages that passed within the contract.
	Admitted int64
	// Shed counts messages rejected with Backpressure.
	Shed int64
	// Degraded counts over-rate messages a Degrade-policy gate let
	// through while the SLO held.
	Degraded int64
	// Breaches counts transitions of the SLO flag from met to
	// breached.
	Breaches int64
	// Breached reports whether the SLO is currently breached.
	Breached bool
}

// Stats snapshots the gate's counters. A nil gate reads as all-zero.
func (g *Gate) Stats() GateStats {
	if g == nil {
		return GateStats{}
	}
	return GateStats{
		Admitted: g.admitted.Load(),
		Shed:     g.shed.Load(),
		Degraded: g.degraded.Load(),
		Breaches: g.breaches.Load(),
		Breached: g.breached.Load(),
	}
}
