package qos

import (
	"errors"
	"sync"
	"testing"
	"time"

	"soleil/internal/model"
)

func TestNilGateAdmitsEverything(t *testing.T) {
	var g *Gate
	for i := 0; i < 10; i++ {
		if err := g.Admit(); err != nil {
			t.Fatal(err)
		}
	}
	if st := g.Stats(); st != (GateStats{}) {
		t.Errorf("nil gate stats = %+v", st)
	}
	if NewGate("b", nil) != nil {
		t.Error("NewGate with nil contract should be nil")
	}
}

func TestGateShedsBeyondBurst(t *testing.T) {
	// 1 msg/s: the refill during the test is negligible, so exactly
	// the burst is admitted and the rest sheds.
	g := NewGate("a.out -> b.in", &model.Contract{MaxRate: 1, Burst: 4, Policy: model.Shed})
	var admitted, shed int
	var last error
	for i := 0; i < 20; i++ {
		if err := g.Admit(); err != nil {
			shed++
			last = err
		} else {
			admitted++
		}
	}
	if admitted != 4 || shed != 16 {
		t.Fatalf("admitted %d shed %d, want 4/16", admitted, shed)
	}
	if !errors.Is(last, ErrBackpressure) {
		t.Errorf("shed error %v does not unwrap to ErrBackpressure", last)
	}
	if name, ok := BindingName(last); !ok || name != "a.out -> b.in" {
		t.Errorf("BindingName = %q,%v", name, ok)
	}
	st := g.Stats()
	if st.Admitted != 4 || st.Shed != 16 || st.Degraded != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGateRefillsAtRate(t *testing.T) {
	g := NewGate("b", &model.Contract{MaxRate: 1000, Burst: 1})
	if err := g.Admit(); err != nil {
		t.Fatal(err)
	}
	if err := g.Admit(); err == nil {
		t.Fatal("second immediate admit should shed (burst 1)")
	}
	time.Sleep(5 * time.Millisecond) // 1000/s refills well within this
	if err := g.Admit(); err != nil {
		t.Fatalf("token not refilled after sleep: %v", err)
	}
}

func TestGateBlockPolicyWaits(t *testing.T) {
	g := NewGate("b", &model.Contract{
		MaxRate: 200, Burst: 1, Policy: model.Block, LatencyBudget: 100 * time.Millisecond,
	})
	if err := g.Admit(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := g.Admit(); err != nil { // must wait ~5ms for the next token
		t.Fatalf("block policy shed instead of waiting: %v", err)
	}
	if waited := time.Since(start); waited < time.Millisecond {
		t.Errorf("block policy admitted after %v; expected a wait near 5ms", waited)
	}

	// An exhausted wait budget sheds.
	tight := NewGate("b2", &model.Contract{
		MaxRate: 0.1, Burst: 1, Policy: model.Block, LatencyBudget: 5 * time.Millisecond,
	})
	if err := tight.Admit(); err != nil {
		t.Fatal(err)
	}
	if err := tight.Admit(); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("block policy with unreachable token = %v, want backpressure", err)
	}
}

func TestGateDegradePolicy(t *testing.T) {
	breached := false
	g := NewGate("b", &model.Contract{
		MaxRate: 1, Burst: 2, Policy: model.Degrade, LatencyBudget: time.Millisecond,
	})
	g.SetBreachProbe(func() bool { return breached })

	// SLO met: over-rate traffic degrades through.
	for i := 0; i < 100; i++ {
		if err := g.Admit(); err != nil {
			t.Fatalf("degrading gate shed at %d while SLO held: %v", i, err)
		}
	}
	st := g.Stats()
	if st.Admitted != 2 || st.Degraded != 98 || st.Breached {
		t.Fatalf("pre-breach stats = %+v", st)
	}

	// SLO breached: the sampled probe flips the gate into shedding.
	breached = true
	var shed int
	for i := 0; i < 200; i++ {
		if err := g.Admit(); err != nil {
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("breached degrade gate never shed")
	}
	st = g.Stats()
	if !st.Breached || st.Breaches != 1 {
		t.Errorf("post-breach stats = %+v", st)
	}

	// Recovery: the flag clears and degradation resumes.
	breached = false
	for i := 0; i < 200; i++ {
		g.Admit()
	}
	if st = g.Stats(); st.Breached {
		t.Errorf("breach flag did not clear: %+v", st)
	}
}

func TestGateConcurrentAdmission(t *testing.T) {
	g := NewGate("b", &model.Contract{MaxRate: 1, Burst: 50})
	var wg sync.WaitGroup
	var admitted, shed atomic64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := g.Admit(); err != nil {
					shed.add(1)
				} else {
					admitted.add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := admitted.load(); got < 50 || got > 52 {
		t.Errorf("concurrent admitted = %d, want ~burst 50", got)
	}
	st := g.Stats()
	if st.Admitted+st.Shed != 800 {
		t.Errorf("counters lost updates: %+v", st)
	}
}

func TestGateAdmitAllocs(t *testing.T) {
	reject := NewGate("b", &model.Contract{MaxRate: 1e-9, Burst: 1})
	admit := NewGate("b2", &model.Contract{MaxRate: 1e12, Burst: 1000})
	admit.SetBreachProbe(func() bool { return false })
	reject.Admit() // drain the single token
	if allocs := testing.AllocsPerRun(500, func() {
		if err := admit.Admit(); err != nil {
			t.Fatal("admit gate shed")
		}
	}); allocs != 0 {
		t.Errorf("admitted path allocates %.1f objects per op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		if err := reject.Admit(); err == nil {
			t.Fatal("reject gate admitted")
		}
	}); allocs != 0 {
		t.Errorf("shed path allocates %.1f objects per op, want 0", allocs)
	}
}

// BenchmarkGateAdmitHotPath is the empirical half of the gate's
// no-allocation claim; `make benchcheck` pins it at 0 allocs/op.
func BenchmarkGateAdmitHotPath(b *testing.B) {
	g := NewGate("b", &model.Contract{MaxRate: 1e12, Burst: 1000})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Admit(); err != nil {
			b.Fatal(err)
		}
	}
}

// atomic64 avoids importing sync/atomic types into test signatures.
type atomic64 struct {
	mu sync.Mutex
	n  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
