package qos

import (
	"errors"
	"fmt"
	"testing"

	"soleil/internal/model"
)

// TestTypedBackpressureUnwraps pins the typed rejection's contract:
// a *Backpressure carries attribution (binding name, policy) but still
// satisfies errors.Is against the bare sentinel, directly and through
// further wrapping.
func TestTypedBackpressureUnwraps(t *testing.T) {
	bp := &Backpressure{Name: "sensorFeed", Policy: model.Shed}
	if !errors.Is(bp, ErrBackpressure) {
		t.Fatal("*Backpressure must unwrap to ErrBackpressure")
	}
	wrapped := fmt.Errorf("dispatch: %w", bp)
	if !errors.Is(wrapped, ErrBackpressure) {
		t.Error("a wrapped *Backpressure must still match ErrBackpressure")
	}

	var got *Backpressure
	if !errors.As(wrapped, &got) || got.Name != "sensorFeed" {
		t.Errorf("errors.As lost the typed rejection: %+v", got)
	}
	if name, ok := BindingName(wrapped); !ok || name != "sensorFeed" {
		t.Errorf("BindingName(%v) = %q, %v", wrapped, name, ok)
	}
}

// TestBareSentinelHasNoBinding documents the asymmetry BindingName
// relies on: the bare sentinel (and anything wrapping only it) carries
// no attribution, so per-binding shed counters must not be charged.
func TestBareSentinelHasNoBinding(t *testing.T) {
	for _, err := range []error{
		ErrBackpressure,
		fmt.Errorf("gate: %w", ErrBackpressure),
	} {
		if name, ok := BindingName(err); ok {
			t.Errorf("BindingName(%v) = %q, want no attribution", err, name)
		}
	}
}

// TestEqualityFailsOnTypedRejection is the regression guard from the
// error-comparison audit: comparing a typed or wrapped rejection to
// the sentinel with == is always false, so any such comparison in the
// tree is a dormant bug. errors.Is is the only correct spelling.
func TestEqualityFailsOnTypedRejection(t *testing.T) {
	var err error = &Backpressure{Name: "b", Policy: model.Shed}
	if err == ErrBackpressure { //nolint:errorlint // deliberate: proving == fails
		t.Fatal("typed rejection compared == to the sentinel")
	}
	if !errors.Is(err, ErrBackpressure) {
		t.Fatal("typed rejection must still satisfy errors.Is")
	}
}
