package assembly

import (
	"testing"
	"testing/quick"
	"time"

	"soleil/internal/fixture"
	"soleil/internal/validate"
)

// Property: every random architecture that passes RTSJ validation
// (after pattern suggestion) deploys and simulates cleanly in every
// mode, and its scoped areas are fully reclaimed afterwards.
func TestDeployRandomArchitecturesProperty(t *testing.T) {
	modes := []Mode{Soleil, MergeAll, UltraMerge}
	checked := 0
	f := func(seed int64) bool {
		arch, err := fixture.RandomArchitecture(seed)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		if _, err := validate.ApplySuggestedPatterns(arch); err != nil {
			t.Logf("seed %d: suggest: %v", seed, err)
			return false
		}
		if !validate.Validate(arch).OK() {
			// The drawn composition violates RTSJ (e.g. async into a
			// passive); refusing it is the correct behaviour, and
			// Deploy must refuse it too.
			for _, mode := range modes {
				if _, err := Deploy(arch, Config{Mode: mode, AllowStubs: true}); err == nil {
					t.Logf("seed %d: invalid architecture deployed", seed)
					return false
				}
			}
			return true
		}
		checked++
		for _, mode := range modes {
			sys, err := Deploy(arch, Config{Mode: mode, AllowStubs: true})
			if err != nil {
				t.Logf("seed %d %v: deploy: %v", seed, mode, err)
				return false
			}
			if err := sys.RunFor(60 * time.Millisecond); err != nil {
				t.Logf("seed %d %v: run: %v", seed, mode, err)
				return false
			}
			for _, a := range sys.MemoryRuntime().Areas() {
				if a.Kind().String() == "scope" && a.Consumed() != 0 {
					t.Logf("seed %d %v: scope %s leaked %d bytes", seed, mode, a.Name(), a.Consumed())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no random architecture passed validation — generator too hostile")
	}
}
