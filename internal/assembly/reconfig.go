package assembly

import (
	"fmt"

	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/patterns"
)

// RebindSync re-routes a client's synchronous interface to a new
// server at runtime — the functional-level reconfiguration the SOLEIL
// and MERGE-ALL modes preserve (Sect. 4.3). The rebinding is checked
// against the same RTSJ rules the design-time validator applies:
// interface roles and signatures must match, the memory crossing must
// admit a pattern (which is selected automatically), and a no-heap
// client may not be routed synchronously into a heap-allocated
// server.
func (s *System) RebindSync(clientName, clientItf, serverName, serverItf string) error {
	if !s.mode.SupportsFunctionalReconfig() {
		return fmt.Errorf("assembly: %v mode is static; rebinding is not available", s.mode)
	}
	cli, ok := s.arch.Component(clientName)
	if !ok {
		return fmt.Errorf("assembly: unknown client component %q", clientName)
	}
	srv, ok := s.arch.Component(serverName)
	if !ok {
		return fmt.Errorf("assembly: unknown server component %q", serverName)
	}
	cliItf, ok := cli.Interface(clientItf)
	if !ok || cliItf.Role != model.ClientRole {
		return fmt.Errorf("assembly: %s.%s is not a client interface", clientName, clientItf)
	}
	srvItf, ok := srv.Interface(serverItf)
	if !ok || srvItf.Role != model.ServerRole {
		return fmt.Errorf("assembly: %s.%s is not a server interface", serverName, serverItf)
	}
	if cliItf.Signature != srvItf.Signature {
		return fmt.Errorf("assembly: rebind %s.%s -> %s.%s has mismatched signatures %q vs %q",
			clientName, clientItf, serverName, serverItf, cliItf.Signature, srvItf.Signature)
	}
	serverNode, ok := s.nodes[serverName]
	if !ok {
		return fmt.Errorf("assembly: server %q has no runtime node", serverName)
	}

	// RTSJ conformance of the new route.
	cliArea, err := s.arch.EffectiveMemoryArea(cli)
	if err != nil {
		return err
	}
	srvAreaComp, err := s.arch.EffectiveMemoryArea(srv)
	if err != nil {
		return err
	}
	if td, err := s.arch.EffectiveThreadDomain(cli); err == nil &&
		td.Domain().Kind == model.NoHeapRealtimeThread &&
		srvAreaComp.Area().Kind == model.HeapMemory {
		return fmt.Errorf("assembly: rebinding NHRT client %q synchronously into heap-allocated %q violates RTSJ",
			clientName, serverName)
	}
	crossing := patterns.Crossing{Client: cliArea, Server: srvAreaComp}
	pattern := patterns.Select(crossing, model.Synchronous)
	if err := patterns.Legal(pattern, crossing, model.Synchronous); err != nil {
		return fmt.Errorf("assembly: rebind %s.%s -> %s: %w", clientName, clientItf, serverName, err)
	}

	srvArea, err := s.runtimeAreaOf(srv)
	if err != nil {
		return err
	}
	// A rebound route has no declared contract — admission is ungated
	// until the architecture declares one.
	newPort, err := s.syncPortTo(serverNode, serverItf, pattern, srvArea, nil)
	if err != nil {
		return err
	}
	return s.bindPort(clientName, clientItf, newPort)
}

// BindPort installs an arbitrary port implementation on a client
// interface — the extension hook used by distribution support. Before
// the system starts, any mode accepts it (it is part of deployment);
// afterwards it is a functional reconfiguration and follows the mode's
// capability matrix.
func (s *System) BindPort(clientName, clientItf string, p membrane.Port) error {
	if s.started && !s.mode.SupportsFunctionalReconfig() {
		return fmt.Errorf("assembly: %v mode is static; ports cannot change after start", s.mode)
	}
	cli, ok := s.arch.Component(clientName)
	if !ok {
		return fmt.Errorf("assembly: unknown client component %q", clientName)
	}
	itf, ok := cli.Interface(clientItf)
	if !ok || itf.Role != model.ClientRole {
		return fmt.Errorf("assembly: %s.%s is not a client interface", clientName, clientItf)
	}
	return s.bindPort(clientName, clientItf, p)
}

// SetStarted starts or stops a component's lifecycle at runtime.
// Lifecycle control is a membrane capability: it requires SOLEIL
// mode.
func (s *System) SetStarted(name string, started bool) error {
	if !s.mode.SupportsMembraneReconfig() {
		return fmt.Errorf("assembly: %v mode does not preserve membranes; lifecycle control is not available", s.mode)
	}
	n, ok := s.nodes[name]
	if !ok {
		return fmt.Errorf("assembly: unknown component %q", name)
	}
	sn, ok := n.(*soleilNode)
	if !ok {
		return fmt.Errorf("assembly: component %q has no membrane", name)
	}
	if started {
		return sn.m.Lifecycle().Start()
	}
	sn.m.Lifecycle().Stop()
	return nil
}

// ControllerNames lists the control components of a component's
// membrane (SOLEIL mode); nil when the membrane is not reified.
func (s *System) ControllerNames(name string) []string {
	n, ok := s.nodes[name]
	if !ok {
		return nil
	}
	sn, ok := n.(*soleilNode)
	if !ok {
		return nil
	}
	var out []string
	for _, c := range sn.m.Controllers() {
		out = append(out, c.ControllerName())
	}
	return out
}

// ComponentStarted reports a component's lifecycle state (SOLEIL
// mode).
func (s *System) ComponentStarted(name string) (bool, error) {
	n, ok := s.nodes[name]
	if !ok {
		return false, fmt.Errorf("assembly: unknown component %q", name)
	}
	sn, ok := n.(*soleilNode)
	if !ok {
		return false, fmt.Errorf("assembly: component %q has no membrane", name)
	}
	return sn.m.Lifecycle().Started(), nil
}

// ComponentFailed reports whether a component's lifecycle is in the
// FAILED state, and the recorded cause (SOLEIL mode). It is the
// supervisor's pull-side health signal.
func (s *System) ComponentFailed(name string) (bool, error) {
	n, ok := s.nodes[name]
	if !ok {
		return false, fmt.Errorf("assembly: unknown component %q", name)
	}
	sn, ok := n.(*soleilNode)
	if !ok {
		return false, fmt.Errorf("assembly: component %q has no membrane", name)
	}
	failed, cause := sn.m.Lifecycle().Failure()
	if !failed {
		return false, nil
	}
	return true, cause
}
