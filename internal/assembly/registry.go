package assembly

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"soleil/internal/membrane"
	"soleil/internal/rtsj/thread"
)

// Registry maps content-class identifiers (the ADL's content class
// attribute) to content factories. The developer implements content
// classes and registers them; everything else is framework-generated.
type Registry struct {
	factories map[string]func() membrane.Content
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]func() membrane.Content)}
}

// Register installs the factory for a content class.
func (r *Registry) Register(class string, factory func() membrane.Content) error {
	if class == "" {
		return fmt.Errorf("assembly: content class needs a name")
	}
	if factory == nil {
		return fmt.Errorf("assembly: content class %q needs a factory", class)
	}
	if _, dup := r.factories[class]; dup {
		return fmt.Errorf("assembly: content class %q already registered", class)
	}
	r.factories[class] = factory
	return nil
}

// New instantiates a content class.
func (r *Registry) New(class string) (membrane.Content, error) {
	f, ok := r.factories[class]
	if !ok {
		return nil, fmt.Errorf("assembly: content class %q not registered (have %v)",
			class, r.Classes())
	}
	return f(), nil
}

// Classes lists the registered content classes.
func (r *Registry) Classes() []string {
	out := make([]string, 0, len(r.factories))
	for c := range r.factories {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// StubContent is deployed for primitives without a registered content
// class (the validator's RT11 warning). So that a stub-deployed system
// still exhibits its architecture's message flow, the stub forwards
// every invocation and activation through all of its bound client
// ports (asynchronously where the port supports it, synchronously
// otherwise), counting its activity.
type StubContent struct {
	svc         *membrane.Services
	invocations int64
	activations int64
}

var _ membrane.ActiveContent = (*StubContent)(nil)

// Init implements membrane.Content.
func (s *StubContent) Init(svc *membrane.Services) error {
	s.svc = svc
	return nil
}

func (s *StubContent) forward(env *thread.Env, op string, arg any) error {
	if s.svc == nil {
		return nil
	}
	for _, itf := range s.svc.Bound() {
		port, err := s.svc.Port(itf)
		if err != nil {
			return err
		}
		if err := port.Send(env, op, arg); err != nil {
			if !errors.Is(err, membrane.ErrSyncPort) {
				return err
			}
			if _, err := port.Call(env, op, arg); err != nil {
				return err
			}
		}
	}
	return nil
}

// Invoke implements membrane.Content.
func (s *StubContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	atomic.AddInt64(&s.invocations, 1)
	if err := s.forward(env, op, arg); err != nil {
		return nil, err
	}
	return arg, nil
}

// Activate implements membrane.ActiveContent.
func (s *StubContent) Activate(env *thread.Env) error {
	n := atomic.AddInt64(&s.activations, 1)
	return s.forward(env, "activate", n)
}

// Invocations reports the served invocation count.
func (s *StubContent) Invocations() int64 { return atomic.LoadInt64(&s.invocations) }
