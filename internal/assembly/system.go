package assembly

import (
	"fmt"
	"sync"
	"time"

	"soleil/internal/comm"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/obs"
	"soleil/internal/patterns"
	"soleil/internal/qos"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/sched"
	"soleil/internal/rtsj/thread"
	"soleil/internal/validate"
)

// Config parameterizes deployment.
type Config struct {
	Mode     Mode
	Registry *Registry
	// BufferSlotSize is the per-message byte charge of asynchronous
	// buffers (default 256).
	BufferSlotSize int64
	// AllowStubs deploys StubContent for primitives without a
	// registered content class instead of failing.
	AllowStubs bool
	// Interceptors, when set, contributes extra membrane interceptors
	// per component, deployed outermost on the server-side chain —
	// the extension hook fault tolerance uses to install panic guards
	// and chaos injection. SOLEIL mode only (the merged modes have no
	// membrane to deploy them on).
	Interceptors func(component string) []membrane.Interceptor
	// Resilient turns thread-body errors and panics into recorded
	// faults instead of thread termination: a failing component
	// degrades (its errors appear in Errors()) while the rest of the
	// system keeps running — the execution mode supervised systems
	// run under.
	Resilient bool
	// Metrics, when set, instruments the deployment: in SOLEIL mode a
	// MetricsInterceptor is deployed outermost on every membrane and
	// the membrane's lifecycle signals are attached to the registry;
	// in every mode asynchronous buffers are registered as queue
	// gauges and deadline misses are counted per component. Sharing
	// one registry across several deployed systems aggregates them
	// into one exposition surface.
	Metrics *obs.Registry
	// Tracer, when set (with Metrics), receives a causal span per
	// dispatch and per activation. Sharing one tracer across systems
	// joined by distributed bindings yields a single cross-system
	// trace.
	Tracer *obs.Tracer
}

// System is a deployed, runnable system.
type System struct {
	arch *model.Architecture
	mode Mode

	mem *memory.Runtime
	sch *sched.Scheduler
	trt *thread.Runtime

	areas   map[string]*memory.Area // MemoryArea component -> runtime region
	nodes   map[string]Node
	order   []string // functional primitives in creation order
	buffers []*comm.RTBuffer
	threads map[string]*thread.Thread
	holders map[string]*taskHolder

	domains    []*ThreadDomainComponent
	areaComs   []*MemoryAreaComponent
	composites []*CompositeComponent

	started   bool
	ran       bool
	resilient bool

	metrics *obs.Registry
	tracer  *obs.Tracer

	errMu       sync.Mutex
	errs        []error
	errsDropped int64
}

// Deploy validates the architecture and builds its execution
// infrastructure in the configured mode. It mirrors the paper's
// infrastructure generation process (Fig. 5): contents come from the
// registry (the developer's step 1); everything else is framework
// glue.
func Deploy(arch *model.Architecture, cfg Config) (*System, error) {
	if arch == nil {
		return nil, fmt.Errorf("assembly: nil architecture")
	}
	switch cfg.Mode {
	case Soleil, MergeAll, UltraMerge:
	default:
		return nil, fmt.Errorf("assembly: unknown mode %v", cfg.Mode)
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.BufferSlotSize == 0 {
		cfg.BufferSlotSize = 256
	}
	report := validate.Validate(arch)
	if !report.OK() {
		errs := report.Errors()
		return nil, fmt.Errorf("assembly: architecture violates RTSJ (%d errors; first: %s)",
			len(errs), errs[0])
	}

	s := &System{
		arch:      arch,
		mode:      cfg.Mode,
		sch:       sched.New(),
		areas:     make(map[string]*memory.Area),
		nodes:     make(map[string]Node),
		threads:   make(map[string]*thread.Thread),
		holders:   make(map[string]*taskHolder),
		resilient: cfg.Resilient,
		metrics:   cfg.Metrics,
		tracer:    cfg.Tracer,
	}
	if err := s.buildMemory(); err != nil {
		return nil, err
	}
	s.trt = thread.NewRuntime(s.sch, s.mem)
	if err := s.buildNodes(cfg); err != nil {
		return nil, err
	}
	if err := s.buildBindings(cfg); err != nil {
		return nil, err
	}
	if err := s.buildThreads(); err != nil {
		return nil, err
	}
	if s.mode == Soleil {
		s.reifyNonFunctional()
	}
	return s, nil
}

// --- accessors --------------------------------------------------------------------

// Mode returns the assembly mode.
func (s *System) Mode() Mode { return s.mode }

// Architecture returns the deployed architecture.
func (s *System) Architecture() *model.Architecture { return s.arch }

// MemoryRuntime returns the system's memory runtime.
func (s *System) MemoryRuntime() *memory.Runtime { return s.mem }

// Scheduler returns the system's scheduler.
func (s *System) Scheduler() *sched.Scheduler { return s.sch }

// Node returns the executable node of a functional primitive.
func (s *System) Node(name string) (Node, bool) {
	n, ok := s.nodes[name]
	return n, ok
}

// Nodes returns the functional primitives' nodes in creation order.
func (s *System) Nodes() []Node {
	out := make([]Node, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.nodes[n])
	}
	return out
}

// Thread returns the thread of an active component.
func (s *System) Thread(component string) (*thread.Thread, bool) {
	t, ok := s.threads[component]
	return t, ok
}

// Buffers returns the asynchronous binding buffers.
func (s *System) Buffers() []*comm.RTBuffer {
	out := make([]*comm.RTBuffer, len(s.buffers))
	copy(out, s.buffers)
	return out
}

// Area returns the runtime memory region of a MemoryArea component.
func (s *System) Area(name string) (*memory.Area, bool) {
	a, ok := s.areas[name]
	return a, ok
}

// Metrics returns the metrics registry the system was deployed with,
// or nil for an uninstrumented deployment.
func (s *System) Metrics() *obs.Registry { return s.metrics }

// Tracer returns the tracer the system was deployed with, if any.
func (s *System) Tracer() *obs.Tracer { return s.tracer }

// FlushSchedTrace bridges the simulated scheduler's execution trace
// (recorded in virtual time; enable it with
// Scheduler().EnableTrace before the run) into the system's tracer as
// instant events, mapping virtual time onto a wall-clock timeline
// anchored at epoch — the same timeline invocation spans use when
// epoch is taken just before RunFor. It returns the number of events
// bridged. Scheduling decisions and invocation spans then interleave
// in one exported trace.
func (s *System) FlushSchedTrace(epoch time.Time) int {
	if s.tracer == nil {
		return 0
	}
	events := s.sch.Trace()
	for _, e := range events {
		s.tracer.Record(obs.Span{
			System:    s.arch.Name(),
			Component: e.Task,
			Interface: "sched",
			Op:        e.Kind.String(),
			Start:     epoch.Add(time.Duration(e.Time)),
			Err:       e.Kind == sched.EventMiss || e.Kind == sched.EventOverrun,
			Kind:      obs.SpanInstant,
		})
	}
	return len(events)
}

// Domains returns the reified ThreadDomain components (SOLEIL mode
// only; empty otherwise — the merged modes do not preserve them).
func (s *System) Domains() []*ThreadDomainComponent {
	out := make([]*ThreadDomainComponent, len(s.domains))
	copy(out, s.domains)
	return out
}

// AreaComponents returns the reified MemoryArea components (SOLEIL
// mode only).
func (s *System) AreaComponents() []*MemoryAreaComponent {
	out := make([]*MemoryAreaComponent, len(s.areaComs))
	copy(out, s.areaComs)
	return out
}

// Composites returns the reified functional composites (SOLEIL mode
// only).
func (s *System) Composites() []*CompositeComponent {
	out := make([]*CompositeComponent, len(s.composites))
	copy(out, s.composites)
	return out
}

// NewEnv creates an execution environment for driving the system's
// dataplane directly (without the simulated scheduler) — the
// benchmark harness and interactive tools use this. The environment
// is rooted in immortal memory; noHeap mirrors an NHRT caller. The
// returned close function releases the environment.
func (s *System) NewEnv(noHeap bool) (*thread.Env, func(), error) {
	ctx, err := memory.NewContext(s.mem.Immortal(), noHeap)
	if err != nil {
		return nil, nil, err
	}
	return thread.NewEnv(nil, ctx), ctx.Close, nil
}

// maxRecordedErrs bounds the error record so a resilient system
// degrading under sustained faults cannot grow it without limit.
const maxRecordedErrs = 1024

func (s *System) recordErr(err error) {
	if err == nil {
		return
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if len(s.errs) >= maxRecordedErrs {
		s.errsDropped++
		return
	}
	s.errs = append(s.errs, err)
}

// Errors returns the errors recorded by thread bodies during the run.
func (s *System) Errors() []error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	out := make([]error, len(s.errs))
	copy(out, s.errs)
	return out
}

// ErrorsDropped returns how many errors were discarded after the
// record filled up.
func (s *System) ErrorsDropped() int64 {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.errsDropped
}

// --- build phases ----------------------------------------------------------------

func (s *System) buildMemory() error {
	var immortalBudget int64
	for _, ma := range s.arch.ComponentsOfKind(model.MemoryArea) {
		if ma.Area().Kind == model.ImmortalMemory {
			immortalBudget += ma.Area().Size
		}
	}
	s.mem = memory.NewRuntime(memory.WithImmortalSize(immortalBudget))
	for _, ma := range s.arch.ComponentsOfKind(model.MemoryArea) {
		desc := ma.Area()
		switch desc.Kind {
		case model.HeapMemory:
			s.areas[ma.Name()] = s.mem.Heap()
		case model.ImmortalMemory:
			s.areas[ma.Name()] = s.mem.Immortal()
		case model.ScopedMemory:
			a, err := s.mem.NewScoped(desc.ScopeName, desc.Size)
			if err != nil {
				return fmt.Errorf("assembly: %w", err)
			}
			s.areas[ma.Name()] = a
		}
	}
	return nil
}

// runtimeAreaOf resolves a functional component's runtime region.
func (s *System) runtimeAreaOf(c *model.Component) (*memory.Area, error) {
	ma, err := s.arch.EffectiveMemoryArea(c)
	if err != nil {
		return nil, err
	}
	a, ok := s.areas[ma.Name()]
	if !ok {
		return nil, fmt.Errorf("assembly: area %q has no runtime region", ma.Name())
	}
	return a, nil
}

// bufferAreaOf picks the region hosting an async binding's buffer:
// the client's area, walking out of scoped areas (whose contents are
// reclaimed) to the nearest non-scoped enclosing area, falling back
// to immortal. If either endpoint runs on a no-heap real-time thread,
// the buffer is forced into immortal memory — an NHRT may neither
// write nor read heap-hosted message slots.
func (s *System) bufferAreaOf(cli, srv *model.Component) (*memory.Area, error) {
	for _, end := range []*model.Component{cli, srv} {
		if td, err := s.arch.EffectiveThreadDomain(end); err == nil &&
			td.Domain().Kind == model.NoHeapRealtimeThread {
			return s.mem.Immortal(), nil
		}
	}
	ma, err := s.arch.EffectiveMemoryArea(cli)
	if err != nil {
		return nil, err
	}
	for ma != nil && ma.Area().Kind == model.ScopedMemory {
		supers := ma.SupersOfKind(model.MemoryArea)
		if len(supers) == 0 {
			return s.mem.Immortal(), nil
		}
		ma = supers[0]
	}
	if ma == nil {
		return s.mem.Immortal(), nil
	}
	return s.areas[ma.Name()], nil
}

func (s *System) buildNodes(cfg Config) error {
	for _, c := range s.arch.Components() {
		if c.Kind() != model.Active && c.Kind() != model.Passive {
			continue
		}
		var content membrane.Content
		if c.Content() == "" {
			if !cfg.AllowStubs {
				return fmt.Errorf("assembly: component %q has no content class", c.Name())
			}
			content = &StubContent{}
		} else {
			var err error
			content, err = cfg.Registry.New(c.Content())
			if err != nil {
				if !cfg.AllowStubs {
					return err
				}
				content = &StubContent{}
			}
		}
		active := c.Kind() == model.Active
		var node Node
		switch s.mode {
		case Soleil:
			var ints []membrane.Interceptor
			var cm *obs.ComponentMetrics
			if cfg.Metrics != nil {
				// Metrics outermost: it observes the component as its
				// clients do, and panics converted to errors by inner
				// guards surface as errors rather than raw panics.
				cm = cfg.Metrics.Component(c.Name())
				mi := membrane.NewMetricsInterceptor(s.arch.Name(), cm, cfg.Tracer)
				// Arm over-budget flight-recorder events from the
				// component's declared budget: cost when present,
				// otherwise the deadline.
				if act := c.Activation(); act != nil {
					if act.Cost > 0 {
						mi.SetBudget(act.Cost)
					} else if act.Deadline > 0 {
						mi.SetBudget(act.Deadline)
					}
				}
				ints = append(ints, mi)
			}
			if cfg.Interceptors != nil {
				ints = append(ints, cfg.Interceptors(c.Name())...)
			}
			if active {
				ints = append(ints, &membrane.ActiveInterceptor{})
			}
			m, err := membrane.New(c.Name(), content, ints...)
			if err != nil {
				return err
			}
			if cm != nil {
				m.AttachMetrics(cm)
			}
			node = &soleilNode{m: m, active: active, system: s.arch.Name(), cm: cm, tracer: cfg.Tracer}
		case MergeAll:
			node = newMergedNode(c.Name(), content, active, true)
		case UltraMerge:
			node = newMergedNode(c.Name(), content, active, false)
		}
		s.nodes[c.Name()] = node
		s.order = append(s.order, c.Name())
		s.holders[c.Name()] = &taskHolder{}
	}
	return nil
}

// bindPort installs a port on the client side of a binding.
func (s *System) bindPort(clientName, itf string, p membrane.Port) error {
	switch n := s.nodes[clientName].(type) {
	case *soleilNode:
		return n.m.Binding().Bind(itf, p)
	case *mergedNode:
		return n.binds.Bind(itf, p)
	default:
		return fmt.Errorf("assembly: unknown node type %T", n)
	}
}

func (s *System) buildBindings(cfg Config) error {
	for _, b := range s.arch.Bindings() {
		cli, _ := s.arch.Component(b.Client.Component)
		srv, _ := s.arch.Component(b.Server.Component)
		clientNode := s.nodes[b.Client.Component]
		serverNode := s.nodes[b.Server.Component]
		if clientNode == nil || serverNode == nil {
			return fmt.Errorf("assembly: binding %s targets a non-primitive component", b)
		}
		pattern := patterns.Kind(b.Pattern)
		srvArea, err := s.runtimeAreaOf(srv)
		if err != nil {
			return err
		}
		gate := s.bindingGate(cfg, b)

		switch b.Protocol {
		case model.Asynchronous:
			bufArea, err := s.bufferAreaOf(cli, srv)
			if err != nil {
				return err
			}
			buf, err := comm.NewRTBuffer(b.String(), b.BufferSize, comm.Refuse, bufArea, cfg.BufferSlotSize)
			if err != nil {
				return err
			}
			s.buffers = append(s.buffers, buf)
			if cfg.Metrics != nil {
				cfg.Metrics.RegisterQueue(buf.Name(), func() obs.QueueStats {
					st := buf.Stats()
					return obs.QueueStats{
						Enqueued: st.Enqueued, Dequeued: st.Dequeued, Dropped: st.Dropped,
						Depth: st.Depth, HighWatermark: st.MaxDepth, Capacity: buf.Cap(),
					}
				})
			}
			stub, err := membrane.NewAsyncStub(buf, b.Server.Interface)
			if err != nil {
				return err
			}
			switch n := serverNode.(type) {
			case *soleilNode:
				skel, err := membrane.NewAsyncSkeleton(buf, n.m)
				if err != nil {
					return err
				}
				n.skeletons = append(n.skeletons, skel)
			case *mergedNode:
				n.inbound = append(n.inbound, buf)
			}
			// The gate sits before the buffer: an over-contract message
			// is shed (or the sender degraded/blocked) without ever
			// consuming a slot.
			port := membrane.NewGatedPort(gate, &notifyPort{inner: stub, target: s.holders[b.Server.Component]})
			if err := s.bindPort(b.Client.Component, b.Client.Interface, port); err != nil {
				return err
			}

		case model.Synchronous:
			port, err := s.syncPortTo(serverNode, b.Server.Interface, pattern, srvArea, gate)
			if err != nil {
				return fmt.Errorf("assembly: binding %s: %w", b, err)
			}
			if err := s.bindPort(b.Client.Component, b.Client.Interface, port); err != nil {
				return err
			}
		}
	}
	return nil
}

// bindingGate builds the admission gate of one contracted binding and
// registers it with the metrics registry; uncontracted bindings get a
// nil gate (which admits everything, for free). When metrics are on
// and the contract has a latency budget, the gate's SLO breach probe
// reads the server's p99 against 80% of the budget — the signal that
// flips a Degrade-policy binding into shedding.
func (s *System) bindingGate(cfg Config, b *model.Binding) *qos.Gate {
	gate := qos.NewGate(b.String(), b.Contract)
	if gate == nil {
		return nil
	}
	if cfg.Metrics != nil {
		if budget := b.Contract.LatencyBudget; budget > 0 {
			cm := cfg.Metrics.Component(b.Server.Component)
			itf := b.Server.Interface
			threshold := budget * 4 / 5
			gate.SetBreachProbe(func() bool {
				return cm.MaxQuantileOn(itf, 0.99) > threshold
			})
		}
		gate.SetRecorder(cfg.Metrics.Recorder())
		cfg.Metrics.RegisterGate(b.String(), membrane.GateStats(gate))
	}
	return gate
}

// syncPortTo builds the mode-appropriate synchronous client port to a
// server node's interface, with the binding's memory pattern deployed
// (as an interceptor in SOLEIL mode, inlined in the merged modes) and
// the binding's admission gate in front (as a pre-chain interceptor
// next to the membrane in SOLEIL mode, as a port wrapper in the
// merged modes).
func (s *System) syncPortTo(serverNode Node, itf string, pattern patterns.Kind, srvArea *memory.Area, gate *qos.Gate) (membrane.Port, error) {
	switch n := serverNode.(type) {
	case *soleilNode:
		var pre []membrane.Interceptor
		if gate != nil {
			pre = append(pre, membrane.NewAdmissionInterceptor(gate))
		}
		if pattern != patterns.None {
			mi, err := membrane.NewMemoryInterceptor(pattern, scopeFor(pattern, srvArea))
			if err != nil {
				return nil, err
			}
			pre = append(pre, mi)
		}
		return membrane.NewSyncPort(n.m, itf, pre...)
	case *mergedNode:
		return membrane.NewGatedPort(gate, &directSyncPort{
			target:  serverNode,
			itf:     itf,
			pattern: pattern,
			scope:   scopeFor(pattern, srvArea),
		}), nil
	default:
		return nil, fmt.Errorf("assembly: unknown node type %T", serverNode)
	}
}

// scopeFor returns the server scope for scope-entering patterns, nil
// otherwise.
func scopeFor(pattern patterns.Kind, srvArea *memory.Area) *memory.Area {
	if pattern == patterns.ScopeEnter || pattern == patterns.Portal {
		return srvArea
	}
	return nil
}

func threadKindOf(k model.ThreadKind) thread.Kind {
	switch k {
	case model.RegularThread:
		return thread.Regular
	case model.RealtimeThread:
		return thread.Realtime
	case model.NoHeapRealtimeThread:
		return thread.NoHeap
	default:
		return 0
	}
}

func releaseOf(act *model.Activation) sched.Release {
	switch act.Kind {
	case model.PeriodicActivation:
		return sched.Release{
			Kind: sched.Periodic, Period: act.Period,
			Deadline: act.Deadline, Cost: act.Cost,
		}
	case model.SporadicActivation:
		return sched.Release{
			Kind: sched.Sporadic, MinInterarrival: act.Period,
			Deadline: act.Deadline, Cost: act.Cost,
		}
	default:
		return sched.Release{Kind: sched.Aperiodic, Deadline: act.Deadline, Cost: act.Cost}
	}
}

func (s *System) buildThreads() error {
	for _, c := range s.arch.ComponentsOfKind(model.Active) {
		td, err := s.arch.EffectiveThreadDomain(c)
		if err != nil {
			return err
		}
		area, err := s.runtimeAreaOf(c)
		if err != nil {
			return err
		}
		node := s.nodes[c.Name()]
		act := c.Activation()
		body := s.threadBody(node, act.Kind)
		var onMiss func(sched.MissInfo)
		if s.metrics != nil {
			cm := s.metrics.Component(c.Name())
			onMiss = func(sched.MissInfo) {
				cm.Misses.Inc()
				// A burst of these auto-triggers a recorder dump.
				cm.Event(obs.EvDeadlineMiss, cm.Misses.Load(), obs.SpanContext{})
			}
		}
		th, err := s.trt.Spawn(thread.Config{
			Name:        c.Name(),
			Kind:        threadKindOf(td.Domain().Kind),
			Priority:    sched.Priority(td.Domain().Priority),
			Release:     releaseOf(act),
			InitialArea: area,
			Run:         body,
			OnMiss:      onMiss,
		})
		if err != nil {
			return fmt.Errorf("assembly: spawning %q: %w", c.Name(), err)
		}
		s.threads[c.Name()] = th
		s.holders[c.Name()].task = th.Task()
	}
	return nil
}

// step runs one thread-body operation. In resilient mode a panic is
// converted into an error, and any error is recorded but does not
// terminate the thread — the component degrades while the rest of the
// system keeps running. The return value reports whether the loop
// must stop.
func (s *System) step(name string, fn func() error) (stop bool) {
	var err error
	if s.resilient {
		func() {
			defer func() {
				if r := recover(); r != nil {
					err = fmt.Errorf("panic: %v", r)
				}
			}()
			err = fn()
		}()
	} else {
		err = fn()
	}
	if err != nil {
		s.recordErr(fmt.Errorf("%s: %w", name, err))
		return !s.resilient
	}
	return false
}

// threadBody produces the generated activation loop of an active
// component: periodic components run their own logic every period,
// sporadic components drain their inbound messages on every release,
// and aperiodic components run once.
func (s *System) threadBody(node Node, kind model.ActivationKind) func(*thread.Env) {
	switch kind {
	case model.PeriodicActivation:
		return func(env *thread.Env) {
			for {
				// Periodic components process any messages pending
				// from asynchronous bindings at each period boundary
				// (arrivals do not release them — the validator's
				// RT10 warning), then run their own logic.
				if s.step(node.Name(), func() error { _, err := node.Deliver(env); return err }) {
					return
				}
				if s.step(node.Name(), func() error { return node.Activate(env) }) {
					return
				}
				if !env.Sched().WaitForNextPeriod() {
					return
				}
			}
		}
	case model.SporadicActivation:
		return func(env *thread.Env) {
			for {
				if s.step(node.Name(), func() error { _, err := node.Deliver(env); return err }) {
					return
				}
				if !env.Sched().WaitForRelease() {
					return
				}
			}
		}
	default:
		return func(env *thread.Env) {
			s.step(node.Name(), func() error { return node.Activate(env) })
		}
	}
}

func (s *System) reifyNonFunctional() {
	for _, comp := range s.arch.ComponentsOfKind(model.Composite) {
		com := &CompositeComponent{name: comp.Name()}
		for _, sub := range comp.Subs() {
			com.members = append(com.members, sub.Name())
			if n, ok := s.nodes[sub.Name()].(*soleilNode); ok {
				n.m.AddController(com)
			}
		}
		s.composites = append(s.composites, com)
	}
	for _, td := range s.arch.ComponentsOfKind(model.ThreadDomain) {
		com := &ThreadDomainComponent{name: td.Name(), desc: *td.Domain()}
		for _, sub := range td.Subs() {
			com.members = append(com.members, sub.Name())
			if th, ok := s.threads[sub.Name()]; ok {
				com.threads = append(com.threads, th)
			}
			if n, ok := s.nodes[sub.Name()].(*soleilNode); ok {
				n.m.AddController(com)
			}
		}
		s.domains = append(s.domains, com)
	}
	for _, ma := range s.arch.ComponentsOfKind(model.MemoryArea) {
		com := &MemoryAreaComponent{name: ma.Name(), desc: *ma.Area(), area: s.areas[ma.Name()]}
		for _, sub := range ma.Subs() {
			com.members = append(com.members, sub.Name())
		}
		// The area controller is superimposed on every functional
		// primitive that effectively resolves to this area, whether it
		// is a direct child or deployed through a ThreadDomain.
		for _, name := range s.order {
			c, _ := s.arch.Component(name)
			if eff, err := s.arch.EffectiveMemoryArea(c); err == nil && eff == ma {
				if n, ok := s.nodes[name].(*soleilNode); ok {
					n.m.AddController(com)
				}
			}
		}
		s.areaComs = append(s.areaComs, com)
	}
}

// --- lifecycle -------------------------------------------------------------------

// Start runs the bootstrapping procedure: component contents are
// initialized (passive services before active producers, so every
// server is ready before the first release).
func (s *System) Start() error {
	if s.started {
		return nil
	}
	starters := make([]string, 0, len(s.order))
	for _, n := range s.order {
		if c, _ := s.arch.Component(n); c.Kind() == model.Passive {
			starters = append(starters, n)
		}
	}
	for _, n := range s.order {
		if c, _ := s.arch.Component(n); c.Kind() == model.Active {
			starters = append(starters, n)
		}
	}
	for _, name := range starters {
		switch n := s.nodes[name].(type) {
		case *soleilNode:
			if err := n.m.Lifecycle().Start(); err != nil {
				return err
			}
		case *mergedNode:
			if err := n.content.Init(n.svc); err != nil {
				return fmt.Errorf("assembly: starting %q: %w", name, err)
			}
		}
	}
	s.started = true
	return nil
}

// RunFor bootstraps the system (if needed) and executes it on the
// simulated scheduler until the virtual-time horizon. Thread errors
// recorded during the run are returned after the scheduler stops.
func (s *System) RunFor(d time.Duration) error {
	if s.ran {
		return fmt.Errorf("assembly: system already ran")
	}
	if err := s.Start(); err != nil {
		return err
	}
	s.ran = true
	if err := s.sch.Run(d); err != nil {
		return err
	}
	for _, th := range s.threads {
		if err := th.Err(); err != nil {
			s.recordErr(err)
		}
	}
	// A resilient system absorbs component failures as degradation:
	// they stay inspectable through Errors() but do not fail the run.
	if errs := s.Errors(); len(errs) > 0 && !s.resilient {
		return fmt.Errorf("assembly: %d thread errors; first: %w", len(errs), errs[0])
	}
	return nil
}
