package assembly

import (
	"strings"
	"testing"
	"time"

	"soleil/internal/fixture"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/scenario"
)

const ms = time.Millisecond

func deployFactory(t *testing.T, mode Mode) (*System, *scenario.Contents) {
	t.Helper()
	arch, err := fixture.MotivationExample()
	if err != nil {
		t.Fatal(err)
	}
	contents := scenario.NewContents()
	reg := NewRegistry()
	if err := contents.Register(reg); err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(arch, Config{Mode: mode, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return sys, contents
}

// runFactory simulates ~100ms of the factory: 10 production cycles.
func runFactory(t *testing.T, mode Mode) (*System, *scenario.Contents) {
	t.Helper()
	sys, contents := deployFactory(t, mode)
	if err := sys.RunFor(155 * ms); err != nil {
		t.Fatalf("%v run: %v", mode, err)
	}
	return sys, contents
}

func TestModeParsingAndCapabilities(t *testing.T) {
	for _, m := range []Mode{Soleil, MergeAll, UltraMerge} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("x"); err == nil {
		t.Error("bad mode parsed")
	}
	if !Soleil.SupportsMembraneReconfig() || MergeAll.SupportsMembraneReconfig() {
		t.Error("membrane reconfig capabilities")
	}
	if !MergeAll.SupportsFunctionalReconfig() || UltraMerge.SupportsFunctionalReconfig() {
		t.Error("functional reconfig capabilities")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", nil); err == nil {
		t.Error("empty class accepted")
	}
	if err := r.Register("X", nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := r.Register("X", func() membrane.Content { return &StubContent{} }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("X", func() membrane.Content { return &StubContent{} }); err == nil {
		t.Error("duplicate class accepted")
	}
	if _, err := r.New("X"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.New("Y"); err == nil {
		t.Error("unknown class instantiated")
	}
	if got := r.Classes(); len(got) != 1 || got[0] != "X" {
		t.Fatalf("classes = %v", got)
	}
}

func TestDeployRejectsInvalidArchitecture(t *testing.T) {
	a := model.NewArchitecture("bad")
	act, _ := a.NewActive("lonely", model.Activation{Kind: model.SporadicActivation})
	_ = act.SetContent("X")
	if _, err := Deploy(a, Config{Mode: Soleil}); err == nil {
		t.Fatal("invalid architecture deployed")
	}
	if _, err := Deploy(nil, Config{Mode: Soleil}); err == nil {
		t.Fatal("nil architecture deployed")
	}
	arch, _ := fixture.MotivationExample()
	if _, err := Deploy(arch, Config{Mode: Mode(9)}); err == nil {
		t.Fatal("unknown mode deployed")
	}
}

func TestDeployMissingContent(t *testing.T) {
	arch, err := fixture.MotivationExample()
	if err != nil {
		t.Fatal(err)
	}
	// Without AllowStubs, unregistered content classes fail.
	if _, err := Deploy(arch, Config{Mode: Soleil}); err == nil {
		t.Fatal("missing content accepted without AllowStubs")
	}
	// With AllowStubs, stubs are deployed and the system runs.
	sys, err := Deploy(arch, Config{Mode: Soleil, AllowStubs: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(25 * ms); err != nil {
		t.Fatal(err)
	}
}

func TestFactoryTransactionAllModes(t *testing.T) {
	for _, mode := range []Mode{Soleil, MergeAll, UltraMerge} {
		t.Run(mode.String(), func(t *testing.T) {
			sys, contents := runFactory(t, mode)
			// 10ms period over 155ms: releases at 0,10,...,150 = 16,
			// but the final ones may not complete; at least 15 full
			// transactions.
			if got := contents.Line.Produced(); got < 15 || got > 16 {
				t.Errorf("produced = %d", got)
			}
			if got := contents.Monitor.Evaluated(); got < 15 {
				t.Errorf("evaluated = %d (produced %d)", got, contents.Line.Produced())
			}
			// seq 15 is the anomaly in the first 16 messages.
			if got := contents.Monitor.Alerts(); got != 1 {
				t.Errorf("alerts = %d", got)
			}
			if got := contents.Console.Displayed(); got != 1 {
				t.Errorf("displayed = %d", got)
			}
			if contents.Console.LastSeq() != 15 {
				t.Errorf("last alert seq = %d", contents.Console.LastSeq())
			}
			if got := contents.Audit.Logged(); got < 15 {
				t.Errorf("logged = %d", got)
			}
			// The console scope is reclaimed after each display.
			cscope, ok := sys.MemoryRuntime().Scope("cscope")
			if !ok {
				t.Fatal("cscope missing")
			}
			if cscope.Consumed() != 0 {
				t.Errorf("console scope holds %d bytes", cscope.Consumed())
			}
			if cscope.Allocations() == 0 {
				t.Error("console scope never used")
			}
			// NHRT threads run with deterministic latency: the
			// monitoring thread is released by the production line.
			ms2, _ := sys.Thread(fixture.MonitoringSystem)
			if ms2.Task().Stats().Releases < 15 {
				t.Errorf("monitor releases = %d", ms2.Task().Stats().Releases)
			}
		})
	}
}

func TestAuditChecksumIdenticalAcrossModes(t *testing.T) {
	var sums []uint64
	var logged []int64
	for _, mode := range []Mode{Soleil, MergeAll, UltraMerge} {
		_, contents := runFactory(t, mode)
		sums = append(sums, contents.Audit.Checksum())
		logged = append(logged, contents.Audit.Logged())
	}
	if logged[0] != logged[1] || logged[1] != logged[2] {
		t.Fatalf("modes diverge in volume: %v", logged)
	}
	if sums[0] != sums[1] || sums[1] != sums[2] {
		t.Fatalf("modes diverge in content: %v", sums)
	}
}

func TestSoleilReifiesNonFunctionalComponents(t *testing.T) {
	sys, _ := deployFactory(t, Soleil)
	domains := sys.Domains()
	if len(domains) != 3 {
		t.Fatalf("domains = %d", len(domains))
	}
	byName := map[string]*ThreadDomainComponent{}
	for _, d := range domains {
		byName[d.Name()] = d
	}
	nhrt1 := byName[fixture.DomainNHRT1]
	if nhrt1 == nil {
		t.Fatal("NHRT1 not reified")
	}
	if nhrt1.Desc().Kind != model.NoHeapRealtimeThread || nhrt1.Desc().Priority != 30 {
		t.Fatalf("NHRT1 desc = %+v", nhrt1.Desc())
	}
	if len(nhrt1.Members()) != 1 || nhrt1.Members()[0] != fixture.ProductionLine {
		t.Fatalf("NHRT1 members = %v", nhrt1.Members())
	}
	if len(nhrt1.Threads()) != 1 {
		t.Fatalf("NHRT1 threads = %d", len(nhrt1.Threads()))
	}
	if got := len(sys.AreaComponents()); got != 3 {
		t.Fatalf("area components = %d", got)
	}
	// The membrane of a member carries the domain and area controllers.
	node, _ := sys.Node(fixture.ProductionLine)
	sn, ok := node.(*soleilNode)
	if !ok {
		t.Fatal("not a soleil node")
	}
	var names []string
	for _, c := range sn.Membrane().Controllers() {
		names = append(names, c.ControllerName())
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"lifecycle-controller", "binding-controller", "threaddomain-controller", "memoryarea-controller", "content-controller"} {
		if !strings.Contains(joined, want) {
			t.Errorf("controllers = %v, missing %s", names, want)
		}
	}
	// The functional composite is reified too.
	comps := sys.Composites()
	if len(comps) != 1 || comps[0].Name() != "FactoryMonitoring" {
		t.Fatalf("composites = %v", comps)
	}
	if got := len(comps[0].Members()); got != 4 {
		t.Fatalf("composite members = %d", got)
	}
	if comps[0].ControllerName() != "content-controller" {
		t.Fatal("composite controller name")
	}
}

func TestMergedModesDoNotReify(t *testing.T) {
	for _, mode := range []Mode{MergeAll, UltraMerge} {
		sys, _ := deployFactory(t, mode)
		if len(sys.Domains()) != 0 || len(sys.AreaComponents()) != 0 || len(sys.Composites()) != 0 {
			t.Errorf("%v reified structural components", mode)
		}
		node, _ := sys.Node(fixture.MonitoringSystem)
		if _, ok := node.(*mergedNode); !ok {
			t.Errorf("%v node type %T", mode, node)
		}
	}
}

func TestBuffersAndAreas(t *testing.T) {
	sys, _ := deployFactory(t, Soleil)
	bufs := sys.Buffers()
	if len(bufs) != 2 {
		t.Fatalf("buffers = %d", len(bufs))
	}
	// Both buffers host NHRT/immortal producers: they live in
	// immortal memory.
	for _, b := range bufs {
		if b.Area().Name() != "immortal" {
			t.Errorf("buffer %s in %s", b.Name(), b.Area().Name())
		}
	}
	imm, ok := sys.Area(fixture.AreaImm1)
	if !ok || imm.Name() != "immortal" {
		t.Fatal("Imm1 region")
	}
	s1, ok := sys.Area(fixture.AreaS1)
	if !ok || s1.Name() != "cscope" || s1.Size() != 28<<10 {
		t.Fatal("S1 region")
	}
	if _, ok := sys.Area("nope"); ok {
		t.Fatal("phantom area")
	}
	// Immortal budget comes from the ADL (600KB).
	if got := sys.MemoryRuntime().Immortal().Size(); got != 600<<10 {
		t.Fatalf("immortal budget = %d", got)
	}
}

func TestRunForTwiceRefused(t *testing.T) {
	sys, _ := deployFactory(t, UltraMerge)
	if err := sys.RunFor(15 * ms); err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(15 * ms); err == nil {
		t.Fatal("second run accepted")
	}
}

func TestNodeAccessors(t *testing.T) {
	sys, contents := deployFactory(t, Soleil)
	if got := len(sys.Nodes()); got != 4 {
		t.Fatalf("nodes = %d", got)
	}
	n, ok := sys.Node(fixture.Console)
	if !ok || n.Name() != fixture.Console {
		t.Fatal("node lookup")
	}
	if n.ContentOf() != contents.Console {
		t.Fatal("content identity")
	}
	if _, ok := sys.Node("nope"); ok {
		t.Fatal("phantom node")
	}
	if err := n.Activate(nil); err == nil {
		t.Fatal("activating a passive component accepted")
	}
}

// TestEnduranceRun simulates 10 virtual seconds of the factory (1000
// production periods) and checks that the system stays healthy: no
// thread errors, no deadline misses, no buffer loss, and no memory
// drift in immortal or scoped areas.
func TestEnduranceRun(t *testing.T) {
	sys, contents := deployFactory(t, Soleil)
	if err := sys.RunFor(10*time.Second + 5*ms); err != nil {
		t.Fatal(err)
	}
	if got := contents.Line.Produced(); got != 1001 {
		t.Fatalf("produced = %d, want 1001", got)
	}
	if got := contents.Audit.Logged(); got < 1000 {
		t.Fatalf("logged = %d", got)
	}
	// One anomaly per 16 messages.
	if got := contents.Console.Displayed(); got < 62 || got > 63 {
		t.Fatalf("displayed = %d", got)
	}
	for _, name := range []string{fixture.ProductionLine, fixture.MonitoringSystem, fixture.Audit} {
		th, _ := sys.Thread(name)
		st := th.Task().Stats()
		if st.Misses != 0 {
			t.Errorf("%s misses = %d", name, st.Misses)
		}
		if st.Releases < 1000 {
			t.Errorf("%s releases = %d", name, st.Releases)
		}
	}
	for _, b := range sys.Buffers() {
		if st := b.Stats(); st.Dropped != 0 {
			t.Errorf("buffer %s dropped %d", b.Name(), st.Dropped)
		}
	}
	f := sys.MemoryRuntime().Footprint()
	if f.ScopedBytes != 0 {
		t.Errorf("scoped bytes live after run: %d", f.ScopedBytes)
	}
	// Immortal holds only the preallocated infrastructure (buffer
	// slots), not per-transaction garbage.
	if f.ImmortalBytes > 64<<10 {
		t.Errorf("immortal grew to %d bytes over 1000 transactions", f.ImmortalBytes)
	}
}
