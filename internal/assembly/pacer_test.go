package assembly

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/rtsj/thread"
)

// pacerSource emits one message per activation.
type pacerSource struct {
	svc  *membrane.Services
	fail atomic.Bool
	sent atomic.Int64
}

func (s *pacerSource) Init(svc *membrane.Services) error { s.svc = svc; return nil }

func (s *pacerSource) Invoke(*thread.Env, string, string, any) (any, error) {
	return nil, errors.New("source serves nothing")
}

func (s *pacerSource) Activate(env *thread.Env) error {
	if s.fail.Load() {
		return errors.New("injected activation failure")
	}
	port, err := s.svc.Port("out")
	if err != nil {
		return err
	}
	if err := port.Send(env, "put", int(s.sent.Load())); err != nil {
		return err
	}
	s.sent.Add(1)
	return nil
}

// pacerSink counts deliveries.
type pacerSink struct {
	got atomic.Int64
}

func (s *pacerSink) Init(*membrane.Services) error { return nil }

func (s *pacerSink) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	s.got.Add(1)
	return nil, nil
}

func (s *pacerSink) Activate(*thread.Env) error { return nil }

func pacedSystem(t *testing.T, src *pacerSource, snk *pacerSink) *System {
	t.Helper()
	a := model.NewArchitecture("paced")
	source, err := a.NewActive("Source", model.Activation{Kind: model.PeriodicActivation, Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := source.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "IPut"}); err != nil {
		t.Fatal(err)
	}
	if err := source.SetContent("SourceImpl"); err != nil {
		t.Fatal(err)
	}
	sink, err := a.NewActive("Sink", model.Activation{Kind: model.SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "IPut"}); err != nil {
		t.Fatal(err)
	}
	if err := sink.SetContent("SinkImpl"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Bind(model.Binding{
		Client:     model.Endpoint{Component: "Source", Interface: "out"},
		Server:     model.Endpoint{Component: "Sink", Interface: "in"},
		Protocol:   model.Asynchronous,
		BufferSize: 64,
	}); err != nil {
		t.Fatal(err)
	}
	td, _ := a.NewThreadDomain("rt", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	if err := a.AddChild(imm, td); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, source); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, sink); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	_ = reg.Register("SourceImpl", func() membrane.Content { return src })
	_ = reg.Register("SinkImpl", func() membrane.Content { return snk })
	sys, err := Deploy(a, Config{Mode: Soleil, Registry: reg, Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPacerDrivesPipelineInRealTime(t *testing.T) {
	src := &pacerSource{}
	snk := &pacerSink{}
	sys := pacedSystem(t, src, snk)
	p, err := NewPacer(sys, PacerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	deadline := time.Now().Add(5 * time.Second)
	for snk.got.Load() < 5 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := snk.got.Load(); got < 5 {
		t.Fatalf("sink saw %d messages, want >= 5 (activations=%d deliveries=%d errors=%d)",
			got, p.Activations(), p.Deliveries(), p.Errors())
	}
	if p.Activations() == 0 || p.Deliveries() == 0 {
		t.Fatalf("pacer counters flat: activations=%d deliveries=%d", p.Activations(), p.Deliveries())
	}
}

func TestPacerAbsorbsActivationErrors(t *testing.T) {
	src := &pacerSource{}
	snk := &pacerSink{}
	sys := pacedSystem(t, src, snk)
	var seen atomic.Int64
	p, err := NewPacer(sys, PacerOptions{OnError: func(string, error) { seen.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	src.fail.Store(true)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	deadline := time.Now().Add(5 * time.Second)
	for p.Errors() < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if p.Errors() < 3 {
		t.Fatalf("pacer absorbed %d errors, want >= 3", p.Errors())
	}
	if seen.Load() == 0 {
		t.Fatal("OnError hook never ran")
	}
	// The driver survived the failures: un-fail and verify flow.
	src.fail.Store(false)
	before := snk.got.Load()
	for snk.got.Load() < before+3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if snk.got.Load() < before+3 {
		t.Fatal("pipeline did not resume after absorbed failures")
	}
}

func TestPacerCloseJoinsDrivers(t *testing.T) {
	src := &pacerSource{}
	snk := &pacerSink{}
	sys := pacedSystem(t, src, snk)
	p, err := NewPacer(sys, PacerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	sent := src.sent.Load()
	time.Sleep(20 * time.Millisecond)
	if src.sent.Load() != sent {
		t.Fatal("driver still activating after Close")
	}
	// Close is idempotent and Run can restart.
	p.Close()
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	p.Close()
}

func TestPacerRequiresSoleilMode(t *testing.T) {
	src := &pacerSource{}
	snk := &pacerSink{}
	a := pacedSystem(t, src, snk).Architecture()
	reg := NewRegistry()
	_ = reg.Register("SourceImpl", func() membrane.Content { return &pacerSource{} })
	_ = reg.Register("SinkImpl", func() membrane.Content { return &pacerSink{} })
	sys, err := Deploy(a, Config{Mode: UltraMerge, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPacer(sys, PacerOptions{}); err == nil {
		t.Fatal("pacer must refuse non-SOLEIL modes")
	}
}
