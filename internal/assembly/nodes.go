package assembly

import (
	"fmt"
	"sync"
	"time"

	"soleil/internal/comm"
	"soleil/internal/membrane"
	"soleil/internal/obs"
	"soleil/internal/patterns"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/sched"
	"soleil/internal/rtsj/thread"
)

// Node is the executable form of one functional component, uniform
// across the three assembly modes. Thread bodies, the benchmark
// harness and the reconfiguration manager all drive components
// through this interface.
type Node interface {
	// Name returns the component name.
	Name() string
	// Activate runs one release of an active component's own logic.
	Activate(env *thread.Env) error
	// Deliver drains pending asynchronous messages into the
	// component, returning how many were processed.
	Deliver(env *thread.Env) (int, error)
	// Invoke performs an incoming synchronous invocation.
	Invoke(env *thread.Env, itf, op string, arg any) (any, error)
	// Port resolves an outgoing client interface.
	Port(itf string) (membrane.Port, error)
	// ContentOf exposes the wrapped content.
	ContentOf() membrane.Content
}

// taskHolder defers the task wiring of notify ports until threads are
// spawned.
type taskHolder struct {
	task *sched.Task
}

// notifyPort wraps an async stub so that, under the simulated
// scheduler, each Send also releases the receiving component's
// sporadic task.
type notifyPort struct {
	inner  membrane.Port
	target *taskHolder
}

var _ membrane.Port = (*notifyPort)(nil)

func (p *notifyPort) Call(env *thread.Env, op string, arg any) (any, error) {
	return p.inner.Call(env, op, arg)
}

func (p *notifyPort) Send(env *thread.Env, op string, arg any) error {
	if err := p.inner.Send(env, op, arg); err != nil {
		return err
	}
	if tc := env.Sched(); tc != nil && p.target.task != nil {
		return tc.Fire(p.target.task)
	}
	return nil
}

// --- SOLEIL ---------------------------------------------------------------------

// soleilNode is the full-componentization node: a reified membrane
// plus the async skeletons of its inbound bindings.
type soleilNode struct {
	m         *membrane.Membrane
	skeletons []*membrane.AsyncSkeleton
	active    bool

	// Observability wiring of an instrumented deployment (nil
	// otherwise): activations are metered and become the root spans
	// that activation-driven sends parent under.
	system string
	cm     *obs.ComponentMetrics
	tracer *obs.Tracer
}

var _ Node = (*soleilNode)(nil)

func (n *soleilNode) Name() string                 { return n.m.Name() }
func (n *soleilNode) ContentOf() membrane.Content  { return n.m.Content() }
func (n *soleilNode) Membrane() *membrane.Membrane { return n.m }

func (n *soleilNode) Activate(env *thread.Env) error {
	ac, ok := n.m.Content().(membrane.ActiveContent)
	if !ok {
		return fmt.Errorf("assembly: component %q has no activation logic", n.Name())
	}
	if failed, cause := n.m.Lifecycle().Failure(); failed {
		return fmt.Errorf("%w: %q: %v", membrane.ErrFailed, n.Name(), cause)
	}
	if !n.m.Lifecycle().Started() {
		return fmt.Errorf("assembly: component %q is stopped", n.Name())
	}
	if n.cm == nil {
		return ac.Activate(env)
	}

	s := n.cm.Series("activation", "run")
	s.Invocations.Inc()
	cur := obs.NewSpanContext(env.Span())
	prev := env.SetSpan(cur)
	start := time.Now()
	panicked := true
	errored := false
	defer func() {
		d := time.Since(start)
		s.Latency.Observe(d)
		if panicked {
			s.Panics.Inc()
		}
		env.SetSpan(prev)
		if n.tracer != nil {
			n.tracer.Record(obs.Span{
				Trace: cur.TraceID, ID: cur.SpanID, Parent: prev.SpanID,
				System: n.system, Component: n.Name(),
				Interface: "activation", Op: "run",
				Start: start, Duration: d, Err: errored || panicked,
			})
		}
	}()
	err := ac.Activate(env)
	panicked = false
	if err != nil {
		errored = true
		s.Errors.Inc()
	}
	return err
}

func (n *soleilNode) Deliver(env *thread.Env) (int, error) {
	total := 0
	for _, sk := range n.skeletons {
		k, err := sk.Drain(env)
		total += k
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (n *soleilNode) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	return n.m.Dispatch(&membrane.Invocation{Interface: itf, Op: op, Arg: arg, Env: env})
}

func (n *soleilNode) Port(itf string) (membrane.Port, error) {
	return n.m.Services().Port(itf)
}

// --- MERGE-ALL / ULTRA-MERGE -----------------------------------------------------

// mergedNode realizes both merged modes: component and membrane
// collapsed into one dispatch unit. MERGE-ALL keeps the run-to-
// completion lock and the (rebindable) binding table; ULTRA-MERGE
// drops the lock and the System freezes the bindings.
type mergedNode struct {
	name    string
	content membrane.Content
	active  bool
	locking bool // false for ULTRA-MERGE
	mu      sync.Mutex
	binds   *membrane.BindingController
	svc     *membrane.Services
	inbound []*comm.RTBuffer
}

var _ Node = (*mergedNode)(nil)

func newMergedNode(name string, content membrane.Content, active, locking bool) *mergedNode {
	n := &mergedNode{
		name:    name,
		content: content,
		active:  active,
		locking: locking,
		binds:   membrane.NewBindingController(name),
	}
	n.svc = membrane.NewServices(name, n.binds)
	return n
}

func (n *mergedNode) Name() string                { return n.name }
func (n *mergedNode) ContentOf() membrane.Content { return n.content }

func (n *mergedNode) Activate(env *thread.Env) error {
	ac, ok := n.content.(membrane.ActiveContent)
	if !ok {
		return fmt.Errorf("assembly: component %q has no activation logic", n.name)
	}
	return ac.Activate(env)
}

func (n *mergedNode) Deliver(env *thread.Env) (int, error) {
	total := 0
	for _, buf := range n.inbound {
		for {
			v, ok, err := buf.Dequeue(env.Mem())
			if err != nil {
				return total, err
			}
			if !ok {
				break
			}
			msg, isMsg := v.(membrane.AsyncMessage)
			if !isMsg {
				return total, fmt.Errorf("assembly: foreign message %T on %s", v, buf.Name())
			}
			if _, err := n.Invoke(env, msg.Interface, msg.Op, msg.Arg); err != nil {
				return total, err
			}
			total++
		}
	}
	return total, nil
}

func (n *mergedNode) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	if n.active && n.locking {
		n.mu.Lock()
		defer n.mu.Unlock()
	}
	return n.content.Invoke(env, itf, op, arg)
}

func (n *mergedNode) Port(itf string) (membrane.Port, error) { return n.binds.Lookup(itf) }

// directSyncPort is the merged modes' synchronous client port: the
// binding's memory pattern is inlined and the call goes straight into
// the target node without Invocation boxing or interceptor chains.
type directSyncPort struct {
	target  Node
	itf     string
	pattern patterns.Kind
	scope   *memory.Area
}

var _ membrane.Port = (*directSyncPort)(nil)

func (p *directSyncPort) Call(env *thread.Env, op string, arg any) (any, error) {
	switch p.pattern {
	case patterns.ScopeEnter, patterns.Portal:
		var result any
		err := patterns.EnterAndCall(env.Mem(), p.scope, func() error {
			var err error
			result, err = p.target.Invoke(env, p.itf, op, arg)
			return err
		})
		return patterns.CopyValue(result), err
	case patterns.DeepCopy:
		result, err := p.target.Invoke(env, p.itf, op, patterns.CopyValue(arg))
		return patterns.CopyValue(result), err
	default:
		return p.target.Invoke(env, p.itf, op, arg)
	}
}

func (p *directSyncPort) Send(env *thread.Env, op string, arg any) error {
	return fmt.Errorf("%w (%s)", membrane.ErrSyncPort, p.itf)
}
