package assembly

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/obs"
	"soleil/internal/qos"
	"soleil/internal/rtsj/thread"
)

// burstySource sends sendsPerCycle messages per activation — an
// overloading producer. Backpressure from the contract gate is
// absorbed and counted: graceful shedding at the source.
type burstySource struct {
	svc           *membrane.Services
	sendsPerCycle int
	sent          atomic.Int64
	shed          atomic.Int64
	lastShedName  atomic.Value // string
}

func (s *burstySource) Init(svc *membrane.Services) error { s.svc = svc; return nil }

func (s *burstySource) Invoke(*thread.Env, string, string, any) (any, error) {
	return nil, errors.New("source serves nothing")
}

func (s *burstySource) Activate(env *thread.Env) error {
	port, err := s.svc.Port("out")
	if err != nil {
		return err
	}
	for i := 0; i < s.sendsPerCycle; i++ {
		switch err := port.Send(env, "tick", i); {
		case err == nil:
			s.sent.Add(1)
		case errors.Is(err, qos.ErrBackpressure):
			s.shed.Add(1)
			if name, ok := qos.BindingName(err); ok {
				s.lastShedName.Store(name)
			}
		default:
			return err
		}
	}
	return nil
}

// countingSink counts deliveries.
type countingSink struct {
	received atomic.Int64
}

func (s *countingSink) Init(*membrane.Services) error { return nil }

func (s *countingSink) Invoke(*thread.Env, string, string, any) (any, error) {
	s.received.Add(1)
	return nil, nil
}

// contractedArch builds Source -> Sink over an asynchronous binding
// carrying the given contract.
func contractedArch(t *testing.T, c *model.Contract) *model.Architecture {
	t.Helper()
	a := model.NewArchitecture("contracted")
	src, err := a.NewActive("Source", model.Activation{
		Kind: model.PeriodicActivation, Period: ms, Deadline: ms, Cost: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "ITick"}); err != nil {
		t.Fatal(err)
	}
	if err := src.SetContent("SourceImpl"); err != nil {
		t.Fatal(err)
	}
	snk, err := a.NewActive("Sink", model.Activation{
		Kind: model.SporadicActivation, Period: ms, Deadline: ms, Cost: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := snk.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "ITick"}); err != nil {
		t.Fatal(err)
	}
	if err := snk.SetContent("SinkImpl"); err != nil {
		t.Fatal(err)
	}
	td, _ := a.NewThreadDomain("rt", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	if err := a.AddChild(imm, td); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, src); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, snk); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Bind(model.Binding{
		Client:     model.Endpoint{Component: "Source", Interface: "out"},
		Server:     model.Endpoint{Component: "Sink", Interface: "in"},
		Protocol:   model.Asynchronous,
		BufferSize: 8,
		Contract:   c,
	}); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestSheddingBindingProtectsDownstreamDeadlines is the contract
// tentpole's end-to-end property: a producer offering ~10x the
// contracted rate is shed at the membrane, the overflow surfaces at
// the sender as typed backpressure, and the downstream component's
// deadline-miss count stays zero because only the contracted burst
// ever releases it. Run under -race via make check.
func TestSheddingBindingProtectsDownstreamDeadlines(t *testing.T) {
	// 100 msg/s contract, burst 3. The simulated scheduler runs in
	// virtual time while the gate refills in wall-clock time, so the
	// run admits (deterministically) just the initial burst.
	arch := contractedArch(t, &model.Contract{MaxRate: 100, Burst: 3, Policy: model.Shed})
	src := &burstySource{sendsPerCycle: 10}
	snk := &countingSink{}
	reg := NewRegistry()
	if err := reg.Register("SourceImpl", func() membrane.Content { return src }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("SinkImpl", func() membrane.Content { return snk }); err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewRegistry()
	sys, err := Deploy(arch, Config{Mode: Soleil, Registry: reg, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(50 * ms); err != nil {
		t.Fatal(err)
	}

	sent, shed := src.sent.Load(), src.shed.Load()
	if sent != 3 {
		t.Errorf("sent = %d, want the burst of 3", sent)
	}
	if shed < 400 {
		t.Errorf("shed = %d, want ~497 (50 cycles x 10 offered - burst)", shed)
	}
	bindingName := arch.Bindings()[0].String()
	if got, _ := src.lastShedName.Load().(string); got != bindingName {
		t.Errorf("backpressure attributed to %q, want %q", got, bindingName)
	}
	if got := snk.received.Load(); got != sent {
		t.Errorf("sink received %d, admitted %d", got, sent)
	}

	// The protected component met every deadline: overload never
	// reached it.
	th, _ := sys.Thread("Sink")
	if misses := th.Task().Stats().Misses; misses != 0 {
		t.Errorf("downstream misses = %d, want 0 behind a shedding gate", misses)
	}
	if cm := metrics.Component("Sink"); cm.Misses.Load() != 0 {
		t.Errorf("metered misses = %d", cm.Misses.Load())
	}

	// The buffer never overflowed — shedding happened before it.
	for _, b := range sys.Buffers() {
		if st := b.Stats(); st.Dropped != 0 {
			t.Errorf("buffer %s dropped %d despite the gate", b.Name(), st.Dropped)
		}
	}

	// The gate is observable: registered under the binding name, with
	// its counters in the Prometheus exposition.
	stats, ok := metrics.Gate(bindingName)
	if !ok {
		t.Fatalf("gate %q not registered; gates = %v", bindingName, metrics.GateNames())
	}
	gs := stats()
	if gs.Admitted != sent || gs.Shed != shed || gs.Policy != "shed" {
		t.Errorf("gate stats = %+v (sent %d, shed %d)", gs, sent, shed)
	}
	var sb strings.Builder
	if err := metrics.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if expo := sb.String(); !strings.Contains(expo, "soleil_gate_shed_total") ||
		!strings.Contains(expo, `policy="shed"`) {
		t.Error("gate counters missing from the Prometheus exposition")
	}
}

// TestUncontractedBindingUnchanged pins the zero-cost default: without
// a Contract element nothing is gated and nothing is registered.
func TestUncontractedBindingUnchanged(t *testing.T) {
	arch := contractedArch(t, nil)
	src := &burstySource{sendsPerCycle: 1}
	snk := &countingSink{}
	reg := NewRegistry()
	if err := reg.Register("SourceImpl", func() membrane.Content { return src }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("SinkImpl", func() membrane.Content { return snk }); err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewRegistry()
	sys, err := Deploy(arch, Config{Mode: Soleil, Registry: reg, Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(50 * ms); err != nil {
		t.Fatal(err)
	}
	if shed := src.shed.Load(); shed != 0 {
		t.Errorf("uncontracted binding shed %d", shed)
	}
	if src.sent.Load() == 0 || snk.received.Load() != src.sent.Load() {
		t.Errorf("delivery broken: sent %d received %d", src.sent.Load(), snk.received.Load())
	}
	if names := metrics.GateNames(); len(names) != 0 {
		t.Errorf("phantom gates registered: %v", names)
	}
}

// TestContractGatesMergedModes checks the merged generation modes
// enforce contracts through port wrappers (no membrane to intercept
// in).
func TestContractGatesMergedModes(t *testing.T) {
	for _, mode := range []Mode{MergeAll, UltraMerge} {
		t.Run(mode.String(), func(t *testing.T) {
			arch := contractedArch(t, &model.Contract{MaxRate: 100, Burst: 2, Policy: model.Shed})
			src := &burstySource{sendsPerCycle: 10}
			snk := &countingSink{}
			reg := NewRegistry()
			if err := reg.Register("SourceImpl", func() membrane.Content { return src }); err != nil {
				t.Fatal(err)
			}
			if err := reg.Register("SinkImpl", func() membrane.Content { return snk }); err != nil {
				t.Fatal(err)
			}
			sys, err := Deploy(arch, Config{Mode: mode, Registry: reg})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.RunFor(20 * ms); err != nil {
				t.Fatal(err)
			}
			if sent := src.sent.Load(); sent != 2 {
				t.Errorf("%v sent = %d, want burst 2", mode, sent)
			}
			if src.shed.Load() == 0 {
				t.Errorf("%v never shed", mode)
			}
		})
	}
}
