package assembly

import (
	"soleil/internal/model"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/thread"
)

// ThreadDomainComponent is the runtime reification of a ThreadDomain
// (SOLEIL mode): the non-functional component whose controller
// superimposes thread management over its member components
// (Sect. 4.1 "Non-Functional Components").
type ThreadDomainComponent struct {
	name    string
	desc    model.DomainDesc
	members []string
	threads []*thread.Thread
}

// ControllerName implements membrane.Controller: the component *is*
// the ThreadDomain controller of its members' membranes.
func (c *ThreadDomainComponent) ControllerName() string { return "threaddomain-controller" }

// Name returns the domain name.
func (c *ThreadDomainComponent) Name() string { return c.name }

// Desc returns the domain's RTSJ properties.
func (c *ThreadDomainComponent) Desc() model.DomainDesc { return c.desc }

// Members returns the names of the encapsulated active components.
func (c *ThreadDomainComponent) Members() []string {
	out := make([]string, len(c.members))
	copy(out, c.members)
	return out
}

// Threads returns the domain's spawned threads.
func (c *ThreadDomainComponent) Threads() []*thread.Thread {
	out := make([]*thread.Thread, len(c.threads))
	copy(out, c.threads)
	return out
}

// MemoryAreaComponent is the runtime reification of a MemoryArea
// (SOLEIL mode), exposing its runtime region and consumption.
type MemoryAreaComponent struct {
	name    string
	desc    model.AreaDesc
	area    *memory.Area
	members []string
}

// ControllerName implements membrane.Controller.
func (c *MemoryAreaComponent) ControllerName() string { return "memoryarea-controller" }

// Name returns the area component name.
func (c *MemoryAreaComponent) Name() string { return c.name }

// Desc returns the area's RTSJ properties.
func (c *MemoryAreaComponent) Desc() model.AreaDesc { return c.desc }

// Area returns the runtime memory region.
func (c *MemoryAreaComponent) Area() *memory.Area { return c.area }

// Members returns the names of the encapsulated components.
func (c *MemoryAreaComponent) Members() []string {
	out := make([]string, len(c.members))
	copy(out, c.members)
	return out
}

// CompositeComponent is the runtime reification of a functional
// composite (SOLEIL mode): the content-controller view of its
// membership, preserved for introspection.
type CompositeComponent struct {
	name    string
	members []string
}

// ControllerName implements membrane.Controller: the composite acts
// as the content controller of its members' membranes.
func (c *CompositeComponent) ControllerName() string { return "content-controller" }

// Name returns the composite name.
func (c *CompositeComponent) Name() string { return c.name }

// Members returns the names of the composite's sub-components.
func (c *CompositeComponent) Members() []string {
	out := make([]string, len(c.members))
	copy(out, c.members)
	return out
}
