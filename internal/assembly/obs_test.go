package assembly

import (
	"testing"
	"time"

	"soleil/internal/fixture"
	"soleil/internal/obs"
	"soleil/internal/scenario"
)

// TestSoleilDeployAutoAttachesMetrics runs the factory in SOLEIL mode
// against a shared registry and tracer, then checks the deployment
// wired observability in end to end: per-operation series populated
// by real dispatches, binding buffers registered as queues, spans in
// the tracer, and the scheduler timeline bridged into the same trace.
func TestSoleilDeployAutoAttachesMetrics(t *testing.T) {
	arch, err := fixture.MotivationExample()
	if err != nil {
		t.Fatal(err)
	}
	contents := scenario.NewContents()
	reg := NewRegistry()
	if err := contents.Register(reg); err != nil {
		t.Fatal(err)
	}
	metrics := obs.NewRegistry()
	tracer := obs.NewTracer(0)
	sys, err := Deploy(arch, Config{Mode: Soleil, Registry: reg, Metrics: metrics, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Metrics() != metrics || sys.Tracer() != tracer {
		t.Fatal("system accessors lost the registry/tracer")
	}
	sys.Scheduler().EnableTrace(0)
	if err := sys.RunFor(55 * ms); err != nil {
		t.Fatal(err)
	}

	comps := metrics.Components()
	if len(comps) == 0 {
		t.Fatal("no components registered")
	}
	var invocations int64
	for _, c := range comps {
		for _, s := range c.SeriesList() {
			invocations += s.Invocations.Load()
			if s.Invocations.Load() != s.Latency.Count() {
				t.Errorf("%s %s.%s: %d invocations, %d latencies",
					c.Name(), s.Interface, s.Op, s.Invocations.Load(), s.Latency.Count())
			}
		}
	}
	if invocations == 0 {
		t.Error("no invocations metered across the run")
	}
	if !metrics.Healthy() {
		t.Error("clean run left the registry unhealthy")
	}
	if len(metrics.QueueNames()) == 0 {
		t.Error("no binding buffers registered as queues")
	}
	for _, qn := range metrics.QueueNames() {
		stats, ok := metrics.Queue(qn)
		if !ok {
			t.Fatalf("queue %s vanished", qn)
		}
		if q := stats(); q.Capacity <= 0 {
			t.Errorf("queue %s capacity = %d", qn, q.Capacity)
		}
	}

	if tracer.Total() == 0 {
		t.Error("no spans recorded")
	}
	// Invocation spans and the scheduler timeline share the tracer.
	epoch := time.Now()
	bridged := sys.FlushSchedTrace(epoch)
	if bridged == 0 {
		t.Fatal("scheduler trace bridged no events")
	}
	var instants int
	for _, sp := range tracer.Spans() {
		if sp.Kind == obs.SpanInstant {
			instants++
			if sp.Interface != "sched" {
				t.Errorf("instant span interface = %s", sp.Interface)
			}
			if sp.Start.Before(epoch) {
				t.Errorf("bridged event at %v predates epoch %v", sp.Start, epoch)
			}
		}
	}
	if instants != bridged {
		t.Errorf("instants = %d, bridged = %d", instants, bridged)
	}
}

// TestMergedDeployWithoutMetrics checks observability stays optional:
// deployments without a registry run exactly as before.
func TestMergedDeployWithoutMetrics(t *testing.T) {
	sys, _ := runFactory(t, MergeAll)
	if sys.Metrics() != nil || sys.Tracer() != nil {
		t.Fatal("metrics attached without being configured")
	}
	if got := sys.FlushSchedTrace(time.Now()); got != 0 {
		t.Fatalf("flush without tracer bridged %d events", got)
	}
}
