package assembly

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"soleil/internal/model"
	"soleil/internal/rtsj/thread"
)

// Pacer drives a deployed system's active components in *wall-clock*
// time. The simulated scheduler (RunFor) owns virtual time and is
// single-use — the right tool for analysis, the wrong one for a node
// agent that must serve a partition indefinitely while peers dial in.
// The pacer is the serving-mode counterpart: one goroutine per active
// component re-creates the generated activation loop (deliver pending
// async messages, then run the component's own logic at its declared
// period) against the real clock, with thread-body errors absorbed
// resiliently so a failing component degrades under supervision
// instead of taking its driver down.
type Pacer struct {
	sys  *System
	opts PacerOptions

	activations atomic.Int64
	deliveries  atomic.Int64
	errors      atomic.Int64

	mu      sync.Mutex
	started bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// PacerOptions tunes a Pacer. The zero value is serviceable.
type PacerOptions struct {
	// Scale multiplies every declared period (default 1.0). A scale
	// above 1 slows the system down uniformly — useful when an
	// architecture designed for virtual time would busy-spin a demo
	// host.
	Scale float64
	// SporadicPoll is the polling interval for sporadic and aperiodic
	// components without a declared minimum interarrival time
	// (default 2ms): their inbound buffers are drained at this rate,
	// standing in for the scheduler's arrival-triggered releases.
	SporadicPoll time.Duration
	// OnError, when set, observes every absorbed activation error
	// (after it is recorded in the system's error ring).
	OnError func(component string, err error)
}

// NewPacer prepares a pacer for every active primitive of the system.
// The system must be deployed in SOLEIL mode (the serving mode) and
// is Start()ed by Run if it has not been already.
func NewPacer(sys *System, opts PacerOptions) (*Pacer, error) {
	if sys.Mode() != Soleil {
		return nil, fmt.Errorf("assembly: pacer requires SOLEIL mode, not %v", sys.Mode())
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.SporadicPoll <= 0 {
		opts.SporadicPoll = 2 * time.Millisecond
	}
	return &Pacer{sys: sys, opts: opts}, nil
}

// Run starts the system (if needed) and launches one driver goroutine
// per active component. It returns immediately; Close stops and joins
// the drivers.
func (p *Pacer) Run() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return nil
	}
	if err := p.sys.Start(); err != nil {
		return err
	}
	p.stop = make(chan struct{})
	for _, c := range p.sys.Architecture().ComponentsOfKind(model.Active) {
		node, ok := p.sys.Node(c.Name())
		if !ok {
			continue
		}
		act := *c.Activation()
		noHeap := false
		if td, err := p.sys.Architecture().EffectiveThreadDomain(c); err == nil {
			noHeap = td.Domain().Kind == model.NoHeapRealtimeThread
		}
		env, closeEnv, err := p.sys.NewEnv(noHeap)
		if err != nil {
			close(p.stop)
			p.wg.Wait()
			return fmt.Errorf("assembly: pacer env for %q: %w", c.Name(), err)
		}
		p.wg.Add(1)
		go p.drive(node, act, env, closeEnv)
	}
	p.started = true
	return nil
}

// interval maps release parameters onto a wall-clock tick.
func (p *Pacer) interval(act model.Activation) time.Duration {
	d := act.Period
	if d <= 0 {
		d = p.opts.SporadicPoll
	}
	d = time.Duration(float64(d) * p.opts.Scale)
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

func (p *Pacer) drive(node Node, act model.Activation, env *thread.Env, closeEnv func()) {
	defer p.wg.Done()
	defer closeEnv()

	if act.Kind == model.AperiodicActivation {
		// One release, as the generated loop does; then keep
		// delivering inbound messages.
		p.step(node, env, true)
	}
	ticker := time.NewTicker(p.interval(act))
	defer ticker.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-ticker.C:
			p.step(node, env, act.Kind == model.PeriodicActivation)
		}
	}
}

// step is one wall-clock release: drain inbound async buffers, then
// (for components with their own logic) activate. Errors and panics
// are absorbed into the system's error ring — the resilient execution
// discipline supervised nodes run under.
func (p *Pacer) step(node Node, env *thread.Env, activate bool) {
	p.absorb(node.Name(), func() error {
		n, err := node.Deliver(env)
		p.deliveries.Add(int64(n))
		return err
	})
	if activate {
		p.absorb(node.Name(), func() error {
			if err := node.Activate(env); err != nil {
				return err
			}
			p.activations.Add(1)
			return nil
		})
	}
}

func (p *Pacer) absorb(name string, fn func() error) {
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
			}
		}()
		err = fn()
	}()
	if err != nil {
		p.errors.Add(1)
		p.sys.recordErr(fmt.Errorf("%s: %w", name, err))
		if p.opts.OnError != nil {
			p.opts.OnError(name, err)
		}
	}
}

// Activations returns how many component releases have run.
func (p *Pacer) Activations() int64 { return p.activations.Load() }

// Deliveries returns how many async messages the drivers drained.
func (p *Pacer) Deliveries() int64 { return p.deliveries.Load() }

// Errors returns how many activation errors were absorbed.
func (p *Pacer) Errors() int64 { return p.errors.Load() }

// Close stops the drivers and waits for them to finish. The system
// itself stays up (components remain started); a pacer can be
// re-created after Close.
func (p *Pacer) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		return
	}
	close(p.stop)
	p.wg.Wait()
	p.started = false
}
