// Package assembly builds runnable systems from validated RT system
// architectures — the runtime realization of the Soleil generator's
// three modes (Sect. 4.3):
//
//   - Soleil: full componentization. Every functional component is
//     wrapped in a reified membrane (controllers + interceptor
//     chains), the ThreadDomain and MemoryArea components exist at
//     runtime, and both functional and membrane-level reconfiguration
//     are available.
//   - MergeAll: each component and its membrane are merged into a
//     single dispatch unit; the interceptor indirections become
//     direct calls. Functional-level reconfiguration (rebinding)
//     remains; the membrane structure is not reified.
//   - UltraMerge: the whole system collapses into static dispatch —
//     ports are resolved once at deployment and the infrastructure is
//     purely static with no reconfiguration capabilities.
package assembly

import "fmt"

// Mode selects the generation/assembly mode.
type Mode int

// Assembly modes.
const (
	Soleil Mode = iota + 1
	MergeAll
	UltraMerge
)

// String returns the paper's spelling of the mode.
func (m Mode) String() string {
	switch m {
	case Soleil:
		return "SOLEIL"
	case MergeAll:
		return "MERGE-ALL"
	case UltraMerge:
		return "ULTRA-MERGE"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a mode name (case-sensitive, the paper's
// spellings).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "SOLEIL", "soleil":
		return Soleil, nil
	case "MERGE-ALL", "merge-all":
		return MergeAll, nil
	case "ULTRA-MERGE", "ultra-merge":
		return UltraMerge, nil
	default:
		return 0, fmt.Errorf("assembly: unknown mode %q", s)
	}
}

// SupportsMembraneReconfig reports whether the mode preserves the
// membrane structure at runtime (introspection and reconfiguration at
// membrane level).
func (m Mode) SupportsMembraneReconfig() bool { return m == Soleil }

// SupportsFunctionalReconfig reports whether the mode allows
// functional-level rebinding at runtime.
func (m Mode) SupportsFunctionalReconfig() bool { return m == Soleil || m == MergeAll }
