package patterns

import (
	"errors"
	"strings"
	"testing"

	"soleil/internal/model"
	"soleil/internal/rtsj/memory"
)

// designFixture builds MemoryArea components: immortal, heap, a scope
// chain outer>inner, and a sibling scope under immortal.
func designFixture(t *testing.T) (a *model.Architecture, imm, heap, outer, inner, sibling *model.Component) {
	t.Helper()
	a = model.NewArchitecture("t")
	var err error
	if imm, err = a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory}); err != nil {
		t.Fatal(err)
	}
	if heap, err = a.NewMemoryArea("heap", model.AreaDesc{Kind: model.HeapMemory}); err != nil {
		t.Fatal(err)
	}
	if outer, err = a.NewMemoryArea("outer", model.AreaDesc{Kind: model.ScopedMemory, Size: 1024}); err != nil {
		t.Fatal(err)
	}
	if inner, err = a.NewMemoryArea("inner", model.AreaDesc{Kind: model.ScopedMemory, Size: 512}); err != nil {
		t.Fatal(err)
	}
	if sibling, err = a.NewMemoryArea("sibling", model.AreaDesc{Kind: model.ScopedMemory, Size: 512}); err != nil {
		t.Fatal(err)
	}
	if err = a.AddChild(outer, inner); err != nil {
		t.Fatal(err)
	}
	return a, imm, heap, outer, inner, sibling
}

func TestSelect(t *testing.T) {
	_, imm, heap, outer, inner, _ := designFixture(t)
	cases := []struct {
		name  string
		x     Crossing
		proto model.Protocol
		want  Kind
	}{
		{"same area", Crossing{imm, imm}, model.Synchronous, None},
		{"async crossing", Crossing{imm, heap}, model.Asynchronous, DeepCopy},
		{"sync into scope", Crossing{imm, inner}, model.Synchronous, ScopeEnter},
		{"sync scope to immortal", Crossing{inner, imm}, model.Synchronous, DeepCopy},
		{"sync outer to inner scope", Crossing{outer, inner}, model.Synchronous, ScopeEnter},
		{"async into scope", Crossing{imm, inner}, model.Asynchronous, DeepCopy},
	}
	for _, c := range cases {
		if got := Select(c.x, c.proto); got != c.want {
			t.Errorf("%s: Select = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestLegal(t *testing.T) {
	_, imm, heap, outer, inner, sibling := designFixture(t)
	ok := []struct {
		name  string
		k     Kind
		x     Crossing
		proto model.Protocol
	}{
		{"none same area", None, Crossing{imm, imm}, model.Synchronous},
		{"deep copy any crossing", DeepCopy, Crossing{inner, heap}, model.Asynchronous},
		{"scope enter from root", ScopeEnter, Crossing{imm, inner}, model.Synchronous},
		{"scope enter from ancestor", ScopeEnter, Crossing{outer, inner}, model.Synchronous},
		{"portal into scope", Portal, Crossing{imm, inner}, model.Synchronous},
		{"wedge thread", WedgeThread, Crossing{imm, inner}, model.Synchronous},
		{"multi-scope siblings", MultiScope, Crossing{sibling, inner}, model.Synchronous},
	}
	for _, c := range ok {
		if err := Legal(c.k, c.x, c.proto); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
	bad := []struct {
		name  string
		k     Kind
		x     Crossing
		proto model.Protocol
	}{
		{"pattern without crossing", DeepCopy, Crossing{imm, imm}, model.Synchronous},
		{"crossing without pattern", None, Crossing{imm, inner}, model.Synchronous},
		{"scope enter async", ScopeEnter, Crossing{imm, inner}, model.Asynchronous},
		{"scope enter into immortal", ScopeEnter, Crossing{inner, imm}, model.Synchronous},
		{"scope enter sibling", ScopeEnter, Crossing{sibling, inner}, model.Synchronous},
		{"multi-scope with root", MultiScope, Crossing{imm, inner}, model.Synchronous},
		{"unknown pattern", Kind("smoke"), Crossing{imm, inner}, model.Synchronous},
	}
	for _, c := range bad {
		if err := Legal(c.k, c.x, c.proto); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range []Kind{None, DeepCopy, ScopeEnter, Portal, WedgeThread, MultiScope} {
		got, err := ParseKind(string(k))
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %q, %v", k, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus pattern parsed")
	}
}

// --- runtime half -------------------------------------------------------------

type message struct {
	seq  int
	data []byte
}

func (m message) DeepCopy() any {
	cp := message{seq: m.seq, data: make([]byte, len(m.data))}
	copy(cp.data, m.data)
	return cp
}

func TestCopyValue(t *testing.T) {
	m := message{seq: 1, data: []byte{1, 2}}
	got, ok := CopyValue(m).(message)
	if !ok || got.seq != 1 {
		t.Fatalf("copy = %#v", got)
	}
	got.data[0] = 9
	if m.data[0] != 1 {
		t.Fatal("deep copy shares data")
	}
	if CopyValue(42) != 42 {
		t.Fatal("plain value copy")
	}
}

func TestDeepCopyIntoRuntime(t *testing.T) {
	rt := memory.NewRuntime()
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	ref, err := DeepCopyInto(ctx, rt.Immortal(), 32, message{seq: 7})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Area() != rt.Immortal() {
		t.Fatal("copy landed in wrong area")
	}
	v, err := ctx.Load(ref)
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := v.(message); !ok || m.seq != 7 {
		t.Fatalf("payload = %#v", v)
	}
	// Copy into an exhausted scope reports the failure.
	s, err := rt.NewScoped("tiny", 8)
	if err != nil {
		t.Fatal(err)
	}
	err = ctx.Enter(s, func() error {
		_, err := DeepCopyInto(ctx, s, 64, message{})
		return err
	})
	var oom *memory.OutOfMemoryError
	if !errors.As(err, &oom) {
		t.Fatalf("oversized copy: %v", err)
	}
}

func TestEnterAndCall(t *testing.T) {
	rt := memory.NewRuntime()
	s, err := rt.NewScoped("s", 1024)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	var allocated *memory.Area
	err = EnterAndCall(ctx, s, func() error {
		r, err := ctx.Alloc(16, nil)
		if err != nil {
			return err
		}
		allocated = r.Area()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocated != s {
		t.Fatalf("allocation landed in %s", allocated.Name())
	}
	// Unscoped target: runs via ExecuteInArea.
	err = EnterAndCall(ctx, rt.Immortal(), func() error {
		r, err := ctx.Alloc(16, nil)
		if err != nil {
			return err
		}
		allocated = r.Area()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocated != rt.Immortal() {
		t.Fatalf("allocation landed in %s", allocated.Name())
	}
}

func TestPortalRuntime(t *testing.T) {
	rt := memory.NewRuntime()
	s, err := rt.NewScoped("s", 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the scope so the portal survives between calls.
	w, err := NewWedge(s, rt.Immortal())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Release()
	if w.Scope() != s {
		t.Fatal("wedge scope")
	}

	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	err = ctx.Enter(s, func() error {
		_, err := PublishPortal(ctx, s, 16, "server-object")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var got any
	err = CallThroughPortal(ctx, s, func(server any) error {
		got = server
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "server-object" {
		t.Fatalf("portal object = %v", got)
	}
}

func TestCallThroughUnsetPortal(t *testing.T) {
	rt := memory.NewRuntime()
	s, err := rt.NewScoped("s", 1024)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	err = CallThroughPortal(ctx, s, func(any) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "unset") {
		t.Fatalf("unset portal: %v", err)
	}
}

func TestWedgeKeepsScopeAlive(t *testing.T) {
	rt := memory.NewRuntime()
	s, err := rt.NewScoped("s", 1024)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWedge(s, rt.Immortal())
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	var ref *memory.Ref
	if err := ctx.Enter(s, func() error {
		var err error
		ref, err = ctx.Alloc(8, "state")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if !ref.Live() {
		t.Fatal("wedged scope reclaimed on exit")
	}
	if s.Consumed() != 8 {
		t.Fatalf("consumed = %d", s.Consumed())
	}
	w.Release()
	if ref.Live() {
		t.Fatal("scope survived wedge release")
	}
	if err := NewWedgeOnHeap(rt); err == nil {
		t.Fatal("wedge on non-scope accepted")
	}
}

// NewWedgeOnHeap exercises the kind check.
func NewWedgeOnHeap(rt *memory.Runtime) error {
	_, err := NewWedge(rt.Heap(), rt.Immortal())
	return err
}

func TestSharedAncestor(t *testing.T) {
	rt := memory.NewRuntime()
	outer, _ := rt.NewScoped("outer", 1024)
	a, _ := rt.NewScoped("a", 512)
	b, _ := rt.NewScoped("b", 512)
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Close()
	err = ctx.Enter(outer, func() error {
		return ctx.Enter(a, func() error {
			// Establish b's parent as outer via a second context.
			ctx2, err := memory.NewContext(rt.Immortal(), false)
			if err != nil {
				return err
			}
			defer ctx2.Close()
			return ctx2.Enter(outer, func() error {
				return ctx2.Enter(b, func() error {
					shared, ok := SharedAncestor(a, b)
					if !ok || shared != outer {
						t.Errorf("shared = %v, %v", shared, ok)
					}
					return nil
				})
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}
