// Package patterns implements the catalog of RTSJ cross-scope
// communication patterns the paper draws on (its references [1,5,17]:
// Corsaro & Santoro; Benowitz & Niessner; Pizlo et al.). The paper's
// memory interceptors are "deployed on each binding between different
// MemoryAreas; their implementation depends on the design procedure
// choosing one of many RTSJ memory patterns" (Sect. 4.1).
//
// The package has two halves:
//
//   - design time: Select proposes a pattern for a binding given the
//     two endpoints' memory areas, and Legal checks a designer-chosen
//     pattern against the same rules (used by the validator);
//   - run time: the pattern implementations themselves, operating on
//     the simulated RTSJ memory runtime (used by memory interceptors).
package patterns

import (
	"fmt"

	"soleil/internal/model"
)

// Kind names a cross-scope communication pattern.
type Kind string

// The pattern catalog.
const (
	// None marks a binding that needs no cross-scope machinery (both
	// endpoints in the same memory area).
	None Kind = ""
	// DeepCopy copies the message value into the target area, so no
	// reference ever crosses the area boundary (the "memory block" /
	// handoff pattern). Legal for any crossing; the only choice for
	// asynchronous bindings.
	DeepCopy Kind = "deep-copy"
	// ScopeEnter has the client enter the server's scoped area for
	// the duration of the invocation (the encapsulated-method
	// pattern).
	ScopeEnter Kind = "scope-enter"
	// Portal publishes the server object through the scope's portal
	// so that entering threads can retrieve it.
	Portal Kind = "portal"
	// WedgeThread pins the server's scope with a dedicated thread so
	// its contents survive between invocations.
	WedgeThread Kind = "wedge-thread"
	// MultiScope exchanges data through a common outer scope of two
	// sibling scopes.
	MultiScope Kind = "multi-scope"
)

// ParseKind validates a pattern name from the ADL.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case None, DeepCopy, ScopeEnter, Portal, WedgeThread, MultiScope:
		return Kind(s), nil
	default:
		return None, fmt.Errorf("patterns: unknown pattern %q", s)
	}
}

// Crossing describes the memory relationship of a binding's endpoints
// at design time.
type Crossing struct {
	Client *model.Component // client's effective MemoryArea component
	Server *model.Component // server's effective MemoryArea component
}

// Crosses reports whether the binding spans two different memory
// areas.
func (x Crossing) Crosses() bool { return x.Client != x.Server }

func kindOf(c *model.Component) model.MemoryKind {
	if c == nil || c.Area() == nil {
		return 0
	}
	return c.Area().Kind
}

// areaIsAncestor reports whether anc is area or a design-time ancestor
// of area through MemoryArea nesting edges.
func areaIsAncestor(anc, area *model.Component) bool {
	if anc == nil || area == nil {
		return false
	}
	if kindOf(anc) != model.ScopedMemory {
		// Heap and immortal are roots: outer to every scope.
		return true
	}
	for n := area; n != nil; {
		if n == anc {
			return true
		}
		supers := n.SupersOfKind(model.MemoryArea)
		if len(supers) == 0 {
			return false
		}
		n = supers[0]
	}
	return false
}

// Select proposes the pattern a binding's memory interceptor should
// implement:
//
//   - no crossing: None;
//   - asynchronous crossing: DeepCopy (the message is copied into the
//     buffer's area, then out into the server's area);
//   - synchronous call into a scoped server: ScopeEnter;
//   - any other synchronous crossing: DeepCopy of arguments/results.
func Select(x Crossing, proto model.Protocol) Kind {
	if !x.Crosses() {
		return None
	}
	if proto == model.Asynchronous {
		return DeepCopy
	}
	if kindOf(x.Server) == model.ScopedMemory {
		return ScopeEnter
	}
	return DeepCopy
}

// Legal checks a designer-chosen pattern against the binding's memory
// relationship. It returns nil when the pattern is applicable.
func Legal(k Kind, x Crossing, proto model.Protocol) error {
	if !x.Crosses() {
		if k != None {
			return fmt.Errorf("patterns: binding does not cross memory areas; pattern %q is superfluous", k)
		}
		return nil
	}
	switch k {
	case None:
		return fmt.Errorf("patterns: binding crosses from %s to %s and needs a pattern (suggested %q)",
			x.Client.Name(), x.Server.Name(), Select(x, proto))
	case DeepCopy:
		return nil
	case ScopeEnter, Portal, WedgeThread:
		if proto == model.Asynchronous {
			return fmt.Errorf("patterns: %q applies to synchronous invocations; asynchronous bindings use %q",
				k, DeepCopy)
		}
		if kindOf(x.Server) != model.ScopedMemory {
			return fmt.Errorf("patterns: %q requires the server in scoped memory, but %s is %s",
				k, x.Server.Name(), kindOf(x.Server))
		}
		if kindOf(x.Client) == model.ScopedMemory && !areaIsAncestor(x.Client, x.Server) {
			return fmt.Errorf("patterns: %q from scope %s into non-descendant scope %s violates the single parent rule; use %q",
				k, x.Client.Name(), x.Server.Name(), MultiScope)
		}
		return nil
	case MultiScope:
		if kindOf(x.Client) != model.ScopedMemory || kindOf(x.Server) != model.ScopedMemory {
			return fmt.Errorf("patterns: %q applies between two scoped areas", k)
		}
		return nil
	default:
		return fmt.Errorf("patterns: unknown pattern %q", k)
	}
}
