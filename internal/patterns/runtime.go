package patterns

import (
	"fmt"

	"soleil/internal/rtsj/memory"
)

// Copier is implemented by message types that know how to deep-copy
// themselves; values that do not implement it are copied by value
// (adequate for the flat message structs the framework exchanges).
type Copier interface {
	// DeepCopy returns an independent copy of the value.
	DeepCopy() any
}

// CopyValue produces the deep copy of v used by the DeepCopy pattern.
func CopyValue(v any) any {
	if c, ok := v.(Copier); ok {
		return c.DeepCopy()
	}
	return v
}

// DeepCopyInto implements the DeepCopy pattern at run time: it copies
// v into the target area under the given allocation context and
// returns the new reference. No reference to the source object
// escapes, so the RTSJ assignment rules are never violated.
func DeepCopyInto(ctx *memory.Context, target *memory.Area, size int64, v any) (*memory.Ref, error) {
	ref, err := ctx.AllocIn(target, size, CopyValue(v))
	if err != nil {
		return nil, fmt.Errorf("deep-copy into %s: %w", target.Name(), err)
	}
	return ref, nil
}

// EnterAndCall implements the ScopeEnter (encapsulated method)
// pattern: the caller enters the server's scope for the duration of
// fn.
func EnterAndCall(ctx *memory.Context, scope *memory.Area, fn func() error) error {
	if scope.Kind() != memory.Scoped {
		// Calling into heap/immortal needs no entry; run directly in
		// the target allocation context.
		return ctx.ExecuteInArea(scope, fn)
	}
	return ctx.Enter(scope, fn)
}

// PublishPortal implements the Portal pattern's publication half: it
// allocates the server object inside the scope and registers it as
// the scope's portal. The caller must already be inside the scope.
func PublishPortal(ctx *memory.Context, scope *memory.Area, size int64, server any) (*memory.Ref, error) {
	ref, err := ctx.AllocIn(scope, size, server)
	if err != nil {
		return nil, fmt.Errorf("portal publication in %s: %w", scope.Name(), err)
	}
	if err := scope.SetPortal(ref); err != nil {
		return nil, err
	}
	return ref, nil
}

// CallThroughPortal implements the Portal pattern's access half: it
// enters the scope, retrieves the portal object and hands it to fn.
func CallThroughPortal(ctx *memory.Context, scope *memory.Area, fn func(server any) error) error {
	return ctx.Enter(scope, func() error {
		ref, err := scope.Portal()
		if err != nil {
			return err
		}
		if ref == nil {
			return fmt.Errorf("portal of %s is unset", scope.Name())
		}
		v, err := ctx.Load(ref)
		if err != nil {
			return err
		}
		return fn(v)
	})
}

// Wedge implements the WedgeThread pattern: it keeps a scope alive by
// holding an entry open until Release is called. The paper's wedge is
// a dedicated low-priority thread parked inside the scope; in this
// runtime an open entry from any context has the same effect on the
// scope's reference count.
type Wedge struct {
	scope    *memory.Area
	ctx      *memory.Context
	released chan struct{}
	parked   chan struct{}
	done     chan struct{}
}

// NewWedge enters scope on a dedicated context and keeps it alive
// until Release.
func NewWedge(scope *memory.Area, parent *memory.Area) (*Wedge, error) {
	if scope.Kind() != memory.Scoped {
		return nil, fmt.Errorf("wedge: %s is not a scoped area", scope.Name())
	}
	ctx, err := memory.NewContext(parent, false)
	if err != nil {
		return nil, err
	}
	w := &Wedge{
		scope:    scope,
		ctx:      ctx,
		released: make(chan struct{}),
		parked:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	errs := make(chan error, 1)
	go func() {
		defer close(w.done)
		err := ctx.Enter(scope, func() error {
			close(w.parked)
			<-w.released
			return nil
		})
		errs <- err
	}()
	select {
	case <-w.parked:
		return w, nil
	case err := <-errs:
		ctx.Close()
		if err == nil {
			err = fmt.Errorf("wedge: could not pin scope %s", scope.Name())
		}
		return nil, err
	}
}

// Scope returns the pinned scope.
func (w *Wedge) Scope() *memory.Area { return w.scope }

// Release lets go of the scope; if this was the last entry, the scope
// is reclaimed. Release blocks until the wedge has fully unparked and
// is idempotent-unsafe: call it exactly once.
func (w *Wedge) Release() {
	close(w.released)
	<-w.done
	w.ctx.Close()
}

// SharedAncestor implements the MultiScope pattern's area selection:
// it returns the nearest area on a's parent chain (including a
// itself) that is also an ancestor of b at run time. Because heap and
// immortal areas are roots, a shared area always exists once a's
// chain reaches a root.
func SharedAncestor(a, b *memory.Area) (*memory.Area, bool) {
	for s := a; s != nil; s = s.Parent() {
		if s.IsAncestorOf(b) {
			return s, true
		}
		if s.Kind() != memory.Scoped {
			break
		}
	}
	return nil, false
}
