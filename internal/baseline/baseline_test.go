package baseline

import (
	"testing"

	"soleil/internal/scenario"
)

func TestTransactionCounts(t *testing.T) {
	app, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	const n = 64 // four full anomaly cycles
	for i := 0; i < n; i++ {
		if err := app.Transaction(); err != nil {
			t.Fatalf("transaction %d: %v", i, err)
		}
	}
	if app.Evaluated() != n || app.Logged() != n {
		t.Fatalf("evaluated %d logged %d", app.Evaluated(), app.Logged())
	}
	if app.Alerts() != 4 || app.Displayed() != 4 {
		t.Fatalf("alerts %d displayed %d", app.Alerts(), app.Displayed())
	}
	if app.LastScore() == 0 {
		t.Fatal("evaluation work elided")
	}
}

func TestChecksumMatchesSharedFold(t *testing.T) {
	app, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	var want uint64
	for seq := int64(1); seq <= 20; seq++ {
		want = scenario.AuditFold(want, scenario.Measurement{
			Seq: seq, Value: scenario.Synthesize(seq), Station: uint8(seq % 4),
		})
		if err := app.Transaction(); err != nil {
			t.Fatal(err)
		}
	}
	if app.Checksum() != want {
		t.Fatalf("checksum %d, want %d — baseline diverges from the shared functional work",
			app.Checksum(), want)
	}
}

func TestConsoleScopeReclaimedEachAlert(t *testing.T) {
	app, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	for i := 0; i < 32; i++ {
		if err := app.Transaction(); err != nil {
			t.Fatal(err)
		}
	}
	if app.cscope.Consumed() != 0 {
		t.Fatalf("console scope holds %d bytes", app.cscope.Consumed())
	}
	if app.cscope.Allocations() != 2 {
		t.Fatalf("console scope allocations = %d, want 2", app.cscope.Allocations())
	}
}

func TestSteadyStateImmortalFlat(t *testing.T) {
	app, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Transaction(); err != nil {
		t.Fatal(err)
	}
	before := app.mem.Immortal().Consumed()
	for i := 0; i < 100; i++ {
		if err := app.Transaction(); err != nil {
			t.Fatal(err)
		}
	}
	if got := app.mem.Immortal().Consumed(); got != before {
		t.Fatalf("immortal consumption drifted: %d -> %d", before, got)
	}
}

func TestSlotRingOrdering(t *testing.T) {
	app, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	r := app.lineToMonitor
	for i := 1; i <= 3; i++ {
		if err := r.push(app.ctx, scenario.Measurement{Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		m, ok, err := r.pop(app.ctx)
		if err != nil || !ok || m.Seq != int64(i) {
			t.Fatalf("pop %d = %+v, %v, %v", i, m, ok, err)
		}
	}
	if _, ok, _ := r.pop(app.ctx); ok {
		t.Fatal("empty pop succeeded")
	}
	// Overflow is refused.
	for i := 0; i < 10; i++ {
		if err := r.push(app.ctx, scenario.Measurement{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.push(app.ctx, scenario.Measurement{}); err == nil {
		t.Fatal("overflow accepted")
	}
}
