// Package baseline is the paper's comparator: the motivation example
// implemented as a manually written object-oriented application
// (Sect. 5.1, the "OO" rows of Fig. 7). It performs exactly the same
// functional work as the framework-deployed system — same synthesis,
// monitoring evaluation, console rendering inside the console scope,
// audit folding — and obeys the same RTSJ discipline by hand: message
// slots preallocated in immortal memory and accessed through the
// memory runtime (as a careful RTSJ developer would write them), the
// console called inside its scoped memory. What it does *not* have is
// any framework machinery: no membranes, interceptors, ports,
// dispatch tables or validation.
package baseline

import (
	"fmt"

	"soleil/internal/rtsj/memory"
	"soleil/internal/scenario"
)

// slotRing is the hand-written bounded FIFO over preallocated
// immortal slots (single producer/consumer, no locking — the manual
// implementation exploits what it knows about the system).
type slotRing struct {
	slots []*memory.Ref
	head  int
	count int
}

func newSlotRing(ctx *memory.Context, capacity int) (*slotRing, error) {
	r := &slotRing{slots: make([]*memory.Ref, capacity)}
	for i := range r.slots {
		ref, err := ctx.Alloc(256, nil)
		if err != nil {
			return nil, err
		}
		r.slots[i] = ref
	}
	return r, nil
}

func (r *slotRing) push(ctx *memory.Context, m scenario.Measurement) error {
	if r.count == len(r.slots) {
		return fmt.Errorf("baseline: ring full")
	}
	slot := r.slots[(r.head+r.count)%len(r.slots)]
	if err := ctx.Store(slot, m); err != nil {
		return err
	}
	r.count++
	return nil
}

func (r *slotRing) pop(ctx *memory.Context) (scenario.Measurement, bool, error) {
	if r.count == 0 {
		return scenario.Measurement{}, false, nil
	}
	slot := r.slots[r.head]
	v, err := ctx.Load(slot)
	if err != nil {
		return scenario.Measurement{}, false, err
	}
	r.head = (r.head + 1) % len(r.slots)
	r.count--
	m, ok := v.(scenario.Measurement)
	if !ok {
		return scenario.Measurement{}, false, fmt.Errorf("baseline: foreign slot content %T", v)
	}
	return m, true, nil
}

// App is the hand-written application.
type App struct {
	mem    *memory.Runtime
	ctx    *memory.Context
	cscope *memory.Area

	lineToMonitor  *slotRing
	monitorToAudit *slotRing

	seq       int64
	evaluated int64
	alerts    int64
	displayed int64
	logged    int64
	lastScore uint64
	checksum  uint64
}

// New builds the application: immortal-resident rings sized like the
// ADL's buffers (10 and 16) and the 28 KB console scope.
func New() (*App, error) {
	mem := memory.NewRuntime(memory.WithImmortalSize(600 << 10))
	cscope, err := mem.NewScoped("cscope", 28<<10)
	if err != nil {
		return nil, err
	}
	ctx, err := memory.NewContext(mem.Immortal(), true)
	if err != nil {
		return nil, err
	}
	a := &App{mem: mem, ctx: ctx, cscope: cscope}
	if a.lineToMonitor, err = newSlotRing(ctx, 10); err != nil {
		return nil, err
	}
	if a.monitorToAudit, err = newSlotRing(ctx, 16); err != nil {
		return nil, err
	}
	return a, nil
}

// Close releases the application's memory context.
func (a *App) Close() { a.ctx.Close() }

// Transaction runs one complete iteration of the evaluation scenario:
// produce -> monitor -> (console on anomaly) -> audit.
func (a *App) Transaction() error {
	// ProductionLine: produce one measurement.
	a.seq++
	m := scenario.Measurement{Seq: a.seq, Value: scenario.Synthesize(a.seq), Station: uint8(a.seq % 4)}
	if err := a.lineToMonitor.push(a.ctx, m); err != nil {
		return err
	}

	// MonitoringSystem: evaluate.
	got, ok, err := a.lineToMonitor.pop(a.ctx)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("baseline: no measurement pending")
	}
	a.evaluated++
	a.lastScore = uint64(scenario.Evaluate(got) * 1e6)
	if got.Anomalous() {
		a.alerts++
		// Hand-written scope handling for the console call.
		err := a.ctx.Enter(a.cscope, func() error {
			rendered := fmt.Sprintf("[station %d] threshold breach: value %.1f (seq %d)",
				got.Station, got.Value, got.Seq)
			if _, err := a.ctx.Alloc(int64(len(rendered)), rendered); err != nil {
				return err
			}
			a.displayed++
			return nil
		})
		if err != nil {
			return err
		}
	}
	if err := a.monitorToAudit.push(a.ctx, got); err != nil {
		return err
	}

	// Audit: record.
	rec, ok, err := a.monitorToAudit.pop(a.ctx)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("baseline: no record pending")
	}
	a.checksum = scenario.AuditFold(a.checksum, rec)
	a.logged++
	return nil
}

// Evaluated returns the number of processed measurements.
func (a *App) Evaluated() int64 { return a.evaluated }

// Alerts returns the number of anomalies.
func (a *App) Alerts() int64 { return a.alerts }

// Displayed returns the number of console displays.
func (a *App) Displayed() int64 { return a.displayed }

// Logged returns the number of audited measurements.
func (a *App) Logged() int64 { return a.logged }

// LastScore returns the last evaluation score (micro-units).
func (a *App) LastScore() uint64 { return a.lastScore }

// Checksum returns the audit checksum.
func (a *App) Checksum() uint64 { return a.checksum }
