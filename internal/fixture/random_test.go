package fixture_test

import (
	"testing"

	"soleil/internal/adl"
	"soleil/internal/fixture"
)

// TestRandomArchitectureDeterministic pins the contract the load
// plane's -seed flag depends on: the same seed must reproduce the
// same architecture byte for byte. Every random choice threads
// through the one seeded source and the ADL encoder walks creation
// order, so two runs must serialize identically — if anyone adds an
// unseeded draw or a map-ordered walk, this catches it.
func TestRandomArchitectureDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a1, err := fixture.RandomArchitecture(seed)
		if err != nil {
			t.Fatalf("seed %d: first run: %v", seed, err)
		}
		a2, err := fixture.RandomArchitecture(seed)
		if err != nil {
			t.Fatalf("seed %d: second run: %v", seed, err)
		}
		x1, err := adl.EncodeString(a1)
		if err != nil {
			t.Fatalf("seed %d: encode first: %v", seed, err)
		}
		x2, err := adl.EncodeString(a2)
		if err != nil {
			t.Fatalf("seed %d: encode second: %v", seed, err)
		}
		if x1 != x2 {
			t.Fatalf("seed %d: ADL differs between runs\nfirst:\n%s\nsecond:\n%s", seed, x1, x2)
		}
	}

	// Different seeds must not all collapse onto one architecture.
	base, _ := fixture.RandomArchitecture(1)
	baseXML, _ := adl.EncodeString(base)
	distinct := false
	for seed := int64(2); seed < 12; seed++ {
		a, _ := fixture.RandomArchitecture(seed)
		xml, _ := adl.EncodeString(a)
		if xml != baseXML {
			distinct = true
			break
		}
	}
	if !distinct {
		t.Error("seeds 2..11 all produced the same architecture as seed 1")
	}
}
