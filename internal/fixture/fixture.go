// Package fixture builds the paper's motivation example (Sect. 2.2,
// Fig. 4): a factory production line monitored under hard real-time
// constraints, with a non-real-time audit log. The fixture is shared
// by tests, examples and the Fig. 7 benchmark harness.
package fixture

import (
	"fmt"
	"time"

	"soleil/internal/model"
)

// Component and interface names of the motivation example.
const (
	ProductionLine   = "ProductionLine"
	MonitoringSystem = "MonitoringSystem"
	Console          = "Console"
	Audit            = "Audit"

	IMonitor = "IMonitor"
	IConsole = "IConsole"
	ILog     = "ILog"

	DomainNHRT1 = "NHRT1"
	DomainNHRT2 = "NHRT2"
	DomainReg1  = "reg1"
	AreaImm1    = "Imm1"
	AreaS1      = "S1"
	AreaH1      = "H1"
)

// MotivationExample constructs the complete RT system architecture of
// Fig. 4: ProductionLine (periodic 10 ms, NHRT prio 30, immortal) →
// async(10) → MonitoringSystem (sporadic, NHRT prio 25, immortal) →
// sync → Console (passive, 28 KB scope) and → async → Audit (sporadic,
// regular thread, heap).
func MotivationExample() (*model.Architecture, error) {
	a := model.NewArchitecture("factory-monitoring")

	// --- functional components (business view) ---
	root, err := a.NewComposite("FactoryMonitoring")
	if err != nil {
		return nil, err
	}
	pl, err := a.NewActive(ProductionLine, model.Activation{
		Kind:   model.PeriodicActivation,
		Period: 10 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	ms, err := a.NewActive(MonitoringSystem, model.Activation{
		Kind: model.SporadicActivation,
	})
	if err != nil {
		return nil, err
	}
	console, err := a.NewPassive(Console)
	if err != nil {
		return nil, err
	}
	audit, err := a.NewActive(Audit, model.Activation{
		Kind: model.SporadicActivation,
	})
	if err != nil {
		return nil, err
	}
	for _, c := range []*model.Component{pl, ms, console, audit} {
		if err := a.AddChild(root, c); err != nil {
			return nil, err
		}
	}

	// --- interfaces ---
	itfs := []struct {
		c    *model.Component
		name string
		role model.Role
		sig  string
	}{
		{pl, "iMonitor", model.ClientRole, IMonitor},
		{ms, "iMonitor", model.ServerRole, IMonitor},
		{ms, "iConsole", model.ClientRole, IConsole},
		{ms, "iLog", model.ClientRole, ILog},
		{console, "iConsole", model.ServerRole, IConsole},
		{audit, "iLog", model.ServerRole, ILog},
	}
	for _, it := range itfs {
		err := it.c.AddInterface(model.Interface{Name: it.name, Role: it.role, Signature: it.sig})
		if err != nil {
			return nil, err
		}
	}

	// --- content classes ---
	for c, id := range map[*model.Component]string{
		pl: "ProductionLineImpl", ms: "MonitoringSystemImpl",
		console: "ConsoleImpl", audit: "AuditImpl",
	} {
		if err := c.SetContent(id); err != nil {
			return nil, err
		}
	}

	// --- bindings ---
	bindings := []model.Binding{
		{
			Client:   model.Endpoint{Component: ProductionLine, Interface: "iMonitor"},
			Server:   model.Endpoint{Component: MonitoringSystem, Interface: "iMonitor"},
			Protocol: model.Asynchronous, BufferSize: 10,
		},
		{
			Client:   model.Endpoint{Component: MonitoringSystem, Interface: "iConsole"},
			Server:   model.Endpoint{Component: Console, Interface: "iConsole"},
			Protocol: model.Synchronous,
			// Crosses from immortal into the 28 KB console scope: the
			// design flow selected the encapsulated-method pattern.
			Pattern: "scope-enter",
		},
		{
			Client:   model.Endpoint{Component: MonitoringSystem, Interface: "iLog"},
			Server:   model.Endpoint{Component: Audit, Interface: "iLog"},
			Protocol: model.Asynchronous, BufferSize: 16,
			// Crosses from immortal to heap: messages are deep-copied
			// through a non-heap buffer so the NHRT producer never
			// touches heap references.
			Pattern: "deep-copy",
		},
	}
	for _, b := range bindings {
		if _, err := a.Bind(b); err != nil {
			return nil, err
		}
	}

	// --- non-functional components (thread + memory views) ---
	imm1, err := a.NewMemoryArea(AreaImm1, model.AreaDesc{
		Kind: model.ImmortalMemory, Size: 600 << 10,
	})
	if err != nil {
		return nil, err
	}
	nhrt1, err := a.NewThreadDomain(DomainNHRT1, model.DomainDesc{
		Kind: model.NoHeapRealtimeThread, Priority: 30,
	})
	if err != nil {
		return nil, err
	}
	nhrt2, err := a.NewThreadDomain(DomainNHRT2, model.DomainDesc{
		Kind: model.NoHeapRealtimeThread, Priority: 25,
	})
	if err != nil {
		return nil, err
	}
	s1, err := a.NewMemoryArea(AreaS1, model.AreaDesc{
		Kind: model.ScopedMemory, ScopeName: "cscope", Size: 28 << 10,
	})
	if err != nil {
		return nil, err
	}
	h1, err := a.NewMemoryArea(AreaH1, model.AreaDesc{Kind: model.HeapMemory})
	if err != nil {
		return nil, err
	}
	reg1, err := a.NewThreadDomain(DomainReg1, model.DomainDesc{
		Kind: model.RegularThread, Priority: 5,
	})
	if err != nil {
		return nil, err
	}

	edges := []struct{ parent, child *model.Component }{
		{imm1, nhrt1}, {imm1, nhrt2},
		{nhrt1, pl}, {nhrt2, ms},
		{s1, console},
		{h1, reg1}, {reg1, audit},
	}
	for _, e := range edges {
		if err := a.AddChild(e.parent, e.child); err != nil {
			return nil, fmt.Errorf("deploy %s under %s: %w", e.child.Name(), e.parent.Name(), err)
		}
	}
	return a, nil
}
