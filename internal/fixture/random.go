package fixture

import (
	"fmt"
	"math/rand"
	"time"

	"soleil/internal/model"
)

// RandomArchitecture builds a structurally valid random architecture
// from a seed: functional primitives with interfaces, role- and
// signature-correct bindings, a composite, thread domains and
// (possibly nested) memory areas with random memberships. The result
// always satisfies the *model* invariants; whether it passes full
// RTSJ validation depends on the drawn composition, which is exactly
// what property tests over the validator, the ADL and the deployer
// need.
func RandomArchitecture(seed int64) (*model.Architecture, error) {
	rng := rand.New(rand.NewSource(seed))
	a := model.NewArchitecture(fmt.Sprintf("rand-%d", seed))

	nAct := rng.Intn(4) + 1
	nPas := rng.Intn(3)
	var prims []*model.Component

	for i := 0; i < nAct; i++ {
		var act model.Activation
		switch rng.Intn(3) {
		case 0:
			act = model.Activation{Kind: model.PeriodicActivation,
				Period: time.Duration(rng.Intn(50)+1) * time.Millisecond}
		case 1:
			act = model.Activation{Kind: model.SporadicActivation}
		default:
			act = model.Activation{Kind: model.AperiodicActivation,
				Cost: time.Duration(rng.Intn(5)) * time.Millisecond}
		}
		c, err := a.NewActive(fmt.Sprintf("act%d", i), act)
		if err != nil {
			return nil, err
		}
		if rng.Intn(2) == 0 {
			if err := c.SetContent(fmt.Sprintf("Act%dImpl", i)); err != nil {
				return nil, err
			}
		}
		prims = append(prims, c)
	}
	for i := 0; i < nPas; i++ {
		c, err := a.NewPassive(fmt.Sprintf("pas%d", i))
		if err != nil {
			return nil, err
		}
		prims = append(prims, c)
	}

	// Interfaces over a small signature alphabet.
	sigs := []string{"IA", "IB"}
	for i, c := range prims {
		sig := sigs[rng.Intn(len(sigs))]
		if err := c.AddInterface(model.Interface{
			Name: "srv", Role: model.ServerRole, Signature: sig,
		}); err != nil {
			return nil, err
		}
		if c.Kind() == model.Active {
			if err := c.AddInterface(model.Interface{
				Name: "cli", Role: model.ClientRole, Signature: sigs[i%len(sigs)],
			}); err != nil {
				return nil, err
			}
		}
	}

	// Bindings: each active's client interface to a matching server
	// *later* in the declaration order, so the message topology is a
	// DAG — an asynchronous cycle between sporadic components would
	// ping-pong messages without ever advancing virtual time, which
	// no real design flow would admit (and which a simulation cannot
	// terminate).
	for idx, c := range prims {
		if c.Kind() != model.Active {
			continue
		}
		cli, _ := c.Interface("cli")
		for _, srv := range prims[idx+1:] {
			si, ok := srv.Interface("srv")
			if !ok || si.Signature != cli.Signature {
				continue
			}
			b := model.Binding{
				Client: model.Endpoint{Component: c.Name(), Interface: "cli"},
				Server: model.Endpoint{Component: srv.Name(), Interface: "srv"},
			}
			srvAct := srv.Activation()
			if rng.Intn(2) == 0 && srv.Kind() == model.Active && srvAct != nil && srvAct.Kind == model.SporadicActivation {
				b.Protocol = model.Asynchronous
				b.BufferSize = rng.Intn(16) + 1
				if rng.Intn(2) == 0 {
					b.Pattern = "deep-copy"
				}
			} else {
				b.Protocol = model.Synchronous
			}
			if _, err := a.Bind(b); err != nil {
				return nil, err
			}
			break
		}
	}

	// A composite over a random subset.
	comp, err := a.NewComposite("group")
	if err != nil {
		return nil, err
	}
	for _, c := range prims {
		if rng.Intn(2) == 0 {
			if err := a.AddChild(comp, c); err != nil {
				return nil, err
			}
		}
	}

	// Thread domains over the actives.
	kinds := []model.ThreadKind{model.RegularThread, model.RealtimeThread, model.NoHeapRealtimeThread}
	var domains []*model.Component
	for i, c := range prims {
		if c.Kind() != model.Active {
			continue
		}
		kind := kinds[rng.Intn(len(kinds))]
		prio := rng.Intn(10) + 1
		if kind != model.RegularThread {
			prio = rng.Intn(28) + 11
		}
		td, err := a.NewThreadDomain(fmt.Sprintf("td%d", i), model.DomainDesc{Kind: kind, Priority: prio})
		if err != nil {
			return nil, err
		}
		if err := a.AddChild(td, c); err != nil {
			return nil, err
		}
		domains = append(domains, td)
	}

	// Memory areas: immortal and heap roots, maybe a nested scope
	// chain; domains in the roots, passives anywhere.
	imm, err := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory, Size: int64(rng.Intn(512)+64) << 10})
	if err != nil {
		return nil, err
	}
	heap, err := a.NewMemoryArea("heap", model.AreaDesc{Kind: model.HeapMemory})
	if err != nil {
		return nil, err
	}
	areas := []*model.Component{imm, heap}
	if rng.Intn(2) == 0 {
		outer, err := a.NewMemoryArea("outerScope", model.AreaDesc{Kind: model.ScopedMemory, Size: 4096})
		if err != nil {
			return nil, err
		}
		areas = append(areas, outer)
		if rng.Intn(2) == 0 {
			inner, err := a.NewMemoryArea("innerScope", model.AreaDesc{Kind: model.ScopedMemory, Size: 1024})
			if err != nil {
				return nil, err
			}
			if err := a.AddChild(outer, inner); err != nil {
				return nil, err
			}
			areas = append(areas, inner)
		}
	}
	for _, td := range domains {
		if err := a.AddChild(areas[rng.Intn(2)], td); err != nil {
			return nil, err
		}
	}
	for _, c := range prims {
		if c.Kind() == model.Passive {
			if err := a.AddChild(areas[rng.Intn(len(areas))], c); err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}
