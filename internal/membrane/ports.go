package membrane

import (
	"errors"
	"fmt"

	"soleil/internal/comm"
	"soleil/internal/obs"
	"soleil/internal/rtsj/sched"
	"soleil/internal/rtsj/thread"
)

// ErrSyncPort is returned by Send on synchronous ports; callers that
// probe a port's direction (e.g. the generic content stub) match it
// with errors.Is and fall back to Call.
var ErrSyncPort = errors.New("membrane: synchronous binding; use Call")

// FirePort wraps a port so that each Send also releases a sporadic
// task when running under the simulated scheduler — the generated
// infrastructure's hook between asynchronous bindings and sporadic
// activation.
type FirePort struct {
	Inner Port
	Task  *sched.Task
}

var _ Port = (*FirePort)(nil)

// Call implements Port.
func (p *FirePort) Call(env *thread.Env, op string, arg any) (any, error) {
	return p.Inner.Call(env, op, arg)
}

// Send implements Port: it forwards and then fires the target task.
func (p *FirePort) Send(env *thread.Env, op string, arg any) error {
	if err := p.Inner.Send(env, op, arg); err != nil {
		return err
	}
	if tc := env.Sched(); tc != nil && p.Task != nil {
		return tc.Fire(p.Task)
	}
	return nil
}

// AsyncMessage is the unit queued on asynchronous bindings: the
// target interface and operation plus the (deep-copied) argument and
// the sender's span context, so the causal trace survives the queue.
type AsyncMessage struct {
	Interface string
	Op        string
	Arg       any
	Trace     obs.SpanContext
}

// DeepCopy implements patterns.Copier.
func (m AsyncMessage) DeepCopy() any {
	return AsyncMessage{Interface: m.Interface, Op: m.Op, Arg: deepCopyArg(m.Arg), Trace: m.Trace}
}

func deepCopyArg(v any) any {
	if c, ok := v.(interface{ DeepCopy() any }); ok {
		return c.DeepCopy()
	}
	return v
}

// SyncPort is the client side of a synchronous binding: invocations
// run through the client-side interceptors (e.g. the binding's memory
// interceptor) and then dispatch into the server membrane.
type SyncPort struct {
	target *Membrane
	itf    string
	pre    []Interceptor
}

var _ Port = (*SyncPort)(nil)

// NewSyncPort creates the port for a synchronous binding to the
// server membrane's interface itf.
func NewSyncPort(target *Membrane, itf string, pre ...Interceptor) (*SyncPort, error) {
	if target == nil {
		return nil, fmt.Errorf("membrane: sync port needs a target")
	}
	return &SyncPort{target: target, itf: itf, pre: pre}, nil
}

// Call implements Port.
func (p *SyncPort) Call(env *thread.Env, op string, arg any) (any, error) {
	inv := &Invocation{Interface: p.itf, Op: op, Arg: arg, Env: env}
	return p.runFrom(0, inv)
}

func (p *SyncPort) runFrom(i int, inv *Invocation) (any, error) {
	if i >= len(p.pre) {
		return p.target.Dispatch(inv)
	}
	return p.pre[i].Invoke(inv, func(next *Invocation) (any, error) {
		return p.runFrom(i+1, next)
	})
}

// Send implements Port; synchronous bindings have no asynchronous
// half.
func (p *SyncPort) Send(env *thread.Env, op string, arg any) error {
	return fmt.Errorf("%w (%s)", ErrSyncPort, p.itf)
}

// AsyncStub is the client side of an asynchronous binding: Send
// deep-copies the message into the binding's buffer (whose OnEnqueue
// callback releases the server's sporadic thread).
type AsyncStub struct {
	buf *comm.RTBuffer
	itf string
}

var _ Port = (*AsyncStub)(nil)

// NewAsyncStub creates the stub for an asynchronous binding.
func NewAsyncStub(buf *comm.RTBuffer, itf string) (*AsyncStub, error) {
	if buf == nil {
		return nil, fmt.Errorf("membrane: async stub needs a buffer")
	}
	return &AsyncStub{buf: buf, itf: itf}, nil
}

// Send implements Port. The sender's current span rides along in the
// message, so the receiving dispatch parents correctly even though it
// runs later, on the server's thread.
func (p *AsyncStub) Send(env *thread.Env, op string, arg any) error {
	return p.buf.Enqueue(env.Mem(), AsyncMessage{Interface: p.itf, Op: op, Arg: arg, Trace: env.Span()})
}

// Call implements Port; asynchronous bindings cannot return results.
func (p *AsyncStub) Call(env *thread.Env, op string, arg any) (any, error) {
	return nil, fmt.Errorf("membrane: %s is an asynchronous binding; use Send", p.itf)
}

// AsyncSkeleton is the server side of an asynchronous binding: it
// drains the buffer and dispatches each message into the server
// membrane under the server thread's environment.
type AsyncSkeleton struct {
	buf    *comm.RTBuffer
	target *Membrane
}

// NewAsyncSkeleton creates the skeleton draining buf into target.
func NewAsyncSkeleton(buf *comm.RTBuffer, target *Membrane) (*AsyncSkeleton, error) {
	if buf == nil || target == nil {
		return nil, fmt.Errorf("membrane: async skeleton needs a buffer and a target")
	}
	return &AsyncSkeleton{buf: buf, target: target}, nil
}

// Buffer returns the drained buffer.
func (s *AsyncSkeleton) Buffer() *comm.RTBuffer { return s.buf }

// DrainOne dequeues and dispatches at most one message. It reports
// whether a message was processed.
func (s *AsyncSkeleton) DrainOne(env *thread.Env) (bool, error) {
	v, ok, err := s.buf.Dequeue(env.Mem())
	if err != nil {
		return false, err
	}
	if !ok {
		return false, nil
	}
	msg, isMsg := v.(AsyncMessage)
	if !isMsg {
		return true, fmt.Errorf("membrane: foreign message %T on %s", v, s.buf.Name())
	}
	_, err = s.target.Dispatch(&Invocation{
		Interface: msg.Interface, Op: msg.Op, Arg: msg.Arg, Env: env, Trace: msg.Trace,
	})
	return true, err
}

// Drain processes queued messages until the buffer is empty,
// returning the number processed.
func (s *AsyncSkeleton) Drain(env *thread.Env) (int, error) {
	n := 0
	for {
		ok, err := s.DrainOne(env)
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}
