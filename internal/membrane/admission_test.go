package membrane

import (
	"errors"
	"testing"

	"soleil/internal/model"
	"soleil/internal/obs"
	"soleil/internal/qos"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/thread"
)

func TestAdmissionInterceptorSheds(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	gate := qos.NewGate("c.out -> m.in", &model.Contract{MaxRate: 1, Burst: 2, Policy: model.Shed})
	m, err := New("m", &faultyContent{}, NewAdmissionInterceptor(gate))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}

	inv := &Invocation{Interface: "in", Op: "op", Arg: 1, Env: env}
	var admitted, shed int
	var last error
	for i := 0; i < 10; i++ {
		if _, err := m.Dispatch(inv); err != nil {
			shed++
			last = err
		} else {
			admitted++
		}
	}
	if admitted != 2 || shed != 8 {
		t.Fatalf("admitted %d shed %d, want 2/8", admitted, shed)
	}
	if !errors.Is(last, qos.ErrBackpressure) {
		t.Errorf("shed dispatch error %v does not unwrap to qos.ErrBackpressure", last)
	}
	if name, ok := qos.BindingName(last); !ok || name != "c.out -> m.in" {
		t.Errorf("BindingName = %q,%v", name, ok)
	}
	if st := gate.Stats(); st.Admitted != 2 || st.Shed != 8 {
		t.Errorf("gate stats = %+v", st)
	}
}

func TestAdmissionInterceptorNilGateAdmits(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	m, err := New("m", &faultyContent{}, NewAdmissionInterceptor(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := m.Dispatch(&Invocation{Interface: "in", Op: "op", Env: env}); err != nil {
			t.Fatal(err)
		}
	}
}

// recordPort counts what reaches the inner port.
type recordPort struct {
	calls int
	sends int
}

func (p *recordPort) Call(env *thread.Env, op string, arg any) (any, error) {
	p.calls++
	return arg, nil
}

func (p *recordPort) Send(env *thread.Env, op string, arg any) error {
	p.sends++
	return nil
}

func TestGatedPort(t *testing.T) {
	inner := &recordPort{}
	if got := NewGatedPort(nil, inner); got != Port(inner) {
		t.Fatal("nil gate should return the inner port unchanged")
	}

	gate := qos.NewGate("b", &model.Contract{MaxRate: 1, Burst: 3})
	p := NewGatedPort(gate, inner)
	var shed int
	for i := 0; i < 5; i++ {
		if _, err := p.Call(nil, "op", i); err != nil {
			shed++
		}
	}
	for i := 0; i < 5; i++ {
		if err := p.Send(nil, "op", i); err != nil {
			shed++
		}
	}
	if inner.calls+inner.sends != 3 {
		t.Errorf("inner port saw %d messages, want burst 3", inner.calls+inner.sends)
	}
	if shed != 7 {
		t.Errorf("shed = %d, want 7", shed)
	}
}

// TestDispatchAdmittedAllocs proves the gated, metered dispatch path
// allocates nothing per invocation — admitted or shed.
func TestDispatchAdmittedAllocs(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	cm := obs.NewRegistry().Component("m")
	gate := qos.NewGate("b", &model.Contract{MaxRate: 1e12, Burst: 1000})
	m, err := New("m", &faultyContent{},
		NewMetricsInterceptor("sys", cm, nil), NewAdmissionInterceptor(gate))
	if err != nil {
		t.Fatal(err)
	}
	m.AttachMetrics(cm)
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}

	inv := &Invocation{Interface: "i", Op: "op", Arg: 1, Env: env}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.Dispatch(inv); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("admitted dispatch allocates %.1f objects per op, want 0", allocs)
	}

	shedGate := qos.NewGate("b2", &model.Contract{MaxRate: 1e-9, Burst: 1})
	shedGate.Admit() // drain the single token
	sp := NewGatedPort(shedGate, &recordPort{})
	if allocs := testing.AllocsPerRun(200, func() {
		if err := sp.Send(env, "op", nil); err == nil {
			t.Fatal("shed gate admitted")
		}
	}); allocs != 0 {
		t.Errorf("shed send allocates %.1f objects per op, want 0", allocs)
	}
}

// BenchmarkDispatchAdmitted is the contracted sibling of
// BenchmarkDispatchMetered: metrics plus admission gate on the chain.
// `make benchcheck` pins it at 0 allocs/op.
func BenchmarkDispatchAdmitted(b *testing.B) {
	cm := obs.NewRegistry().Component("m")
	gate := qos.NewGate("b", &model.Contract{MaxRate: 1e12, Burst: 1000})
	m := benchMembrane(b, NewMetricsInterceptor("sys", cm, nil), NewAdmissionInterceptor(gate))
	inv := &Invocation{Interface: "i", Op: "op", Arg: 1, Env: benchEnv(b)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Dispatch(inv); err != nil {
			b.Fatal(err)
		}
	}
}
