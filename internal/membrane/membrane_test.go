package membrane

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"soleil/internal/comm"
	"soleil/internal/patterns"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/thread"
)

// echoContent records invocations and echoes arguments.
type echoContent struct {
	svc      *Services
	calls    []string
	initErr  error
	lastArg  any
	response any
}

func (c *echoContent) Init(svc *Services) error {
	c.svc = svc
	return c.initErr
}

func (c *echoContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	c.calls = append(c.calls, itf+"."+op)
	c.lastArg = arg
	if c.response != nil {
		return c.response, nil
	}
	return arg, nil
}

func testEnv(t *testing.T, rt *memory.Runtime, noHeap bool) *thread.Env {
	t.Helper()
	initial := rt.Immortal()
	ctx, err := memory.NewContext(initial, noHeap)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctx.Close)
	return thread.NewEnv(nil, ctx)
}

func TestNewValidation(t *testing.T) {
	if _, err := New("", &echoContent{}); err == nil {
		t.Error("unnamed membrane accepted")
	}
	if _, err := New("m", nil); err == nil {
		t.Error("contentless membrane accepted")
	}
}

func TestLifecycleGatesDispatch(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	content := &echoContent{}
	m, err := New("ms", content)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Env: env}); err == nil {
		t.Fatal("dispatch on stopped component accepted")
	}
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	if !m.Lifecycle().Started() {
		t.Fatal("not started")
	}
	if content.svc == nil || content.svc.Name() != "ms" {
		t.Fatal("Init not called with services")
	}
	if _, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Arg: 1, Env: env}); err != nil {
		t.Fatal(err)
	}
	if len(content.calls) != 1 || content.calls[0] != "i.op" {
		t.Fatalf("calls = %v", content.calls)
	}
	// Start is idempotent; Init runs once.
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	m.Lifecycle().Stop()
	if _, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Env: env}); err == nil {
		t.Fatal("dispatch on re-stopped component accepted")
	}
}

func TestStartPropagatesInitError(t *testing.T) {
	m, err := New("m", &echoContent{initErr: errors.New("boom")})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Lifecycle().Start(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("start error = %v", err)
	}
}

func TestControllersPresent(t *testing.T) {
	m, err := New("m", &echoContent{})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range m.Controllers() {
		names[c.ControllerName()] = true
	}
	for _, want := range []string{"name-controller", "lifecycle-controller", "binding-controller"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
	var nc *NameController
	for _, c := range m.Controllers() {
		if v, ok := c.(*NameController); ok {
			nc = v
		}
	}
	if nc == nil || nc.Name() != "m" {
		t.Fatal("name controller")
	}
}

func TestBindingController(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	server := &echoContent{}
	sm, _ := New("server", server)
	if err := sm.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	port, err := NewSyncPort(sm, "in")
	if err != nil {
		t.Fatal(err)
	}
	client, _ := New("client", &echoContent{})
	bc := client.Binding()
	if err := bc.Bind("out", port); err != nil {
		t.Fatal(err)
	}
	if err := bc.Bind("out", nil); err == nil {
		t.Error("nil port accepted")
	}
	got, err := client.Services().Port("out")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := got.Call(env, "ping", 7); err != nil {
		t.Fatal(err)
	}
	if server.lastArg != 7 {
		t.Fatalf("arg = %v", server.lastArg)
	}
	if bound := bc.Bound(); len(bound) != 1 || bound[0] != "out" {
		t.Fatalf("bound = %v", bound)
	}
	if err := bc.Unbind("out"); err != nil {
		t.Fatal(err)
	}
	if err := bc.Unbind("out"); err == nil {
		t.Error("double unbind accepted")
	}
	if _, err := client.Services().Port("out"); err == nil {
		t.Error("lookup of unbound port succeeded")
	}
}

func TestActiveInterceptorSerializesAndCounts(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	ai := &ActiveInterceptor{}
	m, _ := New("m", &echoContent{}, ai)
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Env: env}); err != nil {
			t.Fatal(err)
		}
	}
	if ai.Invocations() != 5 {
		t.Fatalf("invocations = %d", ai.Invocations())
	}
	if ai.Name() != "active-interceptor" {
		t.Fatal("name")
	}
}

func TestMemoryInterceptorScopeEnter(t *testing.T) {
	rt := memory.NewRuntime()
	scope, err := rt.NewScoped("cscope", 28<<10)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(t, rt, true) // NHRT-style no-heap caller

	content := &scopeProbe{scope: scope}
	mi, err := NewMemoryInterceptor(patterns.ScopeEnter, scope)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New("console", content, mi)
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	res, err := m.Dispatch(&Invocation{Interface: "iConsole", Op: "display", Arg: "alert", Env: env})
	if err != nil {
		t.Fatal(err)
	}
	if res != "displayed" {
		t.Fatalf("result = %v", res)
	}
	if !content.sawScope {
		t.Fatal("content did not execute inside the scope")
	}
	if scope.Consumed() != 0 {
		t.Fatal("scope not reclaimed after call")
	}
	if mi.Crossings() != 1 {
		t.Fatalf("crossings = %d", mi.Crossings())
	}
	if !strings.Contains(mi.Name(), "scope-enter") {
		t.Fatalf("name = %s", mi.Name())
	}
	if mi.Pattern() != patterns.ScopeEnter {
		t.Fatal("pattern accessor")
	}
}

// scopeProbe checks that its invocation runs with the scope as the
// current allocation area.
type scopeProbe struct {
	scope    *memory.Area
	sawScope bool
}

func (c *scopeProbe) Init(*Services) error { return nil }
func (c *scopeProbe) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	if env.Mem().Current() == c.scope {
		c.sawScope = true
	}
	if _, err := env.Mem().Alloc(64, arg); err != nil {
		return nil, err
	}
	return "displayed", nil
}

func TestMemoryInterceptorDeepCopy(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	content := &echoContent{}
	mi, err := NewMemoryInterceptor(patterns.DeepCopy, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New("srv", content, mi)
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	arg := copyTracked{data: []int{1, 2}}
	res, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Arg: arg, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	seen, ok := content.lastArg.(copyTracked)
	if !ok {
		t.Fatalf("arg type = %T", content.lastArg)
	}
	if !seen.copied {
		t.Fatal("argument not deep-copied across the boundary")
	}
	if res.(copyTracked).copies() < 2 {
		t.Fatal("result not deep-copied back")
	}
}

type copyTracked struct {
	data   []int
	copied bool
	nCopy  int
}

func (c copyTracked) copies() int { return c.nCopy }
func (c copyTracked) DeepCopy() any {
	cp := copyTracked{data: append([]int(nil), c.data...), copied: true, nCopy: c.nCopy + 1}
	return cp
}

func TestNewMemoryInterceptorValidation(t *testing.T) {
	rt := memory.NewRuntime()
	if _, err := NewMemoryInterceptor(patterns.ScopeEnter, nil); err == nil {
		t.Error("scope-enter without scope accepted")
	}
	if _, err := NewMemoryInterceptor(patterns.ScopeEnter, rt.Heap()); err == nil {
		t.Error("scope-enter on heap accepted")
	}
	if _, err := NewMemoryInterceptor(patterns.MultiScope, nil); err == nil {
		t.Error("unimplemented pattern accepted")
	}
}

func TestAsyncStubSkeleton(t *testing.T) {
	rt := memory.NewRuntime()
	buf, err := comm.NewRTBuffer("pl->ms", 10, comm.Refuse, rt.Immortal(), 128)
	if err != nil {
		t.Fatal(err)
	}
	producer := testEnv(t, rt, true)
	consumer := testEnv(t, rt, true)

	server := &echoContent{}
	sm, _ := New("ms", server, &ActiveInterceptor{})
	if err := sm.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	stub, err := NewAsyncStub(buf, "iMonitor")
	if err != nil {
		t.Fatal(err)
	}
	skel, err := NewAsyncSkeleton(buf, sm)
	if err != nil {
		t.Fatal(err)
	}
	var fired int
	buf.OnEnqueue(func() { fired++ })

	if _, err := stub.Call(producer, "x", nil); err == nil {
		t.Error("Call on async stub accepted")
	}
	for i := 0; i < 3; i++ {
		if err := stub.Send(producer, "report", i); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 3 {
		t.Fatalf("notifications = %d", fired)
	}
	n, err := skel.Drain(consumer)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(server.calls) != 3 {
		t.Fatalf("drained %d, calls %v", n, server.calls)
	}
	if server.calls[0] != "iMonitor.report" {
		t.Fatalf("call = %s", server.calls[0])
	}
	if server.lastArg != 2 {
		t.Fatalf("last arg = %v", server.lastArg)
	}
	// Empty drain.
	ok, err := skel.DrainOne(consumer)
	if err != nil || ok {
		t.Fatalf("empty DrainOne = %v, %v", ok, err)
	}
	if skel.Buffer() != buf {
		t.Fatal("buffer accessor")
	}
}

func TestSyncPortErrors(t *testing.T) {
	if _, err := NewSyncPort(nil, "i"); err == nil {
		t.Error("nil target accepted")
	}
	if _, err := NewAsyncStub(nil, "i"); err == nil {
		t.Error("nil buffer accepted")
	}
	if _, err := NewAsyncSkeleton(nil, nil); err == nil {
		t.Error("nil skeleton parts accepted")
	}
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	m, _ := New("m", &echoContent{})
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	p, _ := NewSyncPort(m, "i")
	if err := p.Send(env, "op", nil); err == nil {
		t.Error("Send on sync port accepted")
	}
}

func TestAsyncMessageDeepCopy(t *testing.T) {
	msg := AsyncMessage{Interface: "i", Op: "o", Arg: copyTracked{data: []int{1}}}
	cp, ok := msg.DeepCopy().(AsyncMessage)
	if !ok || cp.Interface != "i" || cp.Op != "o" {
		t.Fatalf("copy = %#v", cp)
	}
	if !cp.Arg.(copyTracked).copied {
		t.Fatal("payload not deep-copied")
	}
	plain := AsyncMessage{Arg: 42}
	if plain.DeepCopy().(AsyncMessage).Arg != 42 {
		t.Fatal("plain payload copy")
	}
}

// errorContent returns an error on invoke to exercise propagation
// through the chain.
type errorContent struct{}

func (errorContent) Init(*Services) error { return nil }
func (errorContent) Invoke(*thread.Env, string, string, any) (any, error) {
	return nil, fmt.Errorf("content failure")
}

func TestErrorPropagationThroughChain(t *testing.T) {
	rt := memory.NewRuntime()
	scope, _ := rt.NewScoped("s", 1024)
	env := testEnv(t, rt, false)
	mi, _ := NewMemoryInterceptor(patterns.ScopeEnter, scope)
	m, _ := New("m", errorContent{}, &ActiveInterceptor{}, mi)
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	_, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Env: env})
	if err == nil || !strings.Contains(err.Error(), "content failure") {
		t.Fatalf("err = %v", err)
	}
	if scope.Consumed() != 0 || scope.Active() {
		t.Fatal("scope leaked after error")
	}
}

// lifecycleFlipper flips the lifecycle to FAILED on a marker op — a
// minimal fault interceptor standing in for internal/fault's.
type lifecycleFlipper struct {
	lc *LifecycleController
}

func (f *lifecycleFlipper) Name() string                            { return "flipper" }
func (f *lifecycleFlipper) AttachLifecycle(lc *LifecycleController) { f.lc = lc }

func (f *lifecycleFlipper) Invoke(inv *Invocation, next Handler) (any, error) {
	if inv.Op == "fail" {
		cause := errors.New("contract violated")
		f.lc.Fail(cause)
		return nil, cause
	}
	return next(inv)
}

func TestFailedStateIsolatesAndRestartClears(t *testing.T) {
	content := &echoContent{}
	flipper := &lifecycleFlipper{}
	m, err := New("c", content, flipper)
	if err != nil {
		t.Fatal(err)
	}
	// New attaches the lifecycle controller to LifecycleAware
	// interceptors automatically.
	if flipper.lc != m.Lifecycle() {
		t.Fatal("lifecycle not attached to LifecycleAware interceptor")
	}
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Dispatch(&Invocation{Interface: "in", Op: "fail"}); err == nil {
		t.Fatal("marker op succeeded")
	}
	if failed, cause := m.Lifecycle().Failure(); !failed || cause == nil {
		t.Fatalf("failure = %v, %v", failed, cause)
	}
	if m.Lifecycle().Started() {
		t.Fatal("FAILED component still reports started")
	}
	// Dispatch reports the failure cause via ErrFailed, taking
	// priority over the plain stopped refusal.
	_, err = m.Dispatch(&Invocation{Interface: "in", Op: "echo"})
	if !errors.Is(err, ErrFailed) || !strings.Contains(err.Error(), "contract violated") {
		t.Fatalf("dispatch while failed: %v", err)
	}
	// Start is the supervisor's restart path: failure cleared,
	// content re-initialized, invocations served again.
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	if failed, cause := m.Lifecycle().Failure(); failed || cause != nil {
		t.Fatalf("failure survives restart: %v, %v", failed, cause)
	}
	if _, err := m.Dispatch(&Invocation{Interface: "in", Op: "echo"}); err != nil {
		t.Fatalf("dispatch after restart: %v", err)
	}
}
