package membrane

import (
	"soleil/internal/obs"
	"soleil/internal/qos"
	"soleil/internal/rtsj/thread"
)

// AdmissionInterceptor enforces a binding contract's admission gate on
// the server side of a membrane: every invocation must pass the token
// bucket before it reaches the inner chain. Deployed next to the
// metrics interceptor, it sheds overload at the membrane — the caller
// gets a typed qos.Backpressure, the server never sees the message.
//
// Like the metrics interceptor, the hot path is allocation-free on
// both outcomes (the rejection is preallocated inside the gate);
// `make benchcheck` pins BenchmarkDispatchAdmitted at 0 allocs/op.
type AdmissionInterceptor struct {
	gate *qos.Gate
}

// NewAdmissionInterceptor wraps a gate as an interceptor. A nil gate
// admits everything.
func NewAdmissionInterceptor(g *qos.Gate) *AdmissionInterceptor {
	return &AdmissionInterceptor{gate: g}
}

// Name implements Interceptor.
func (ai *AdmissionInterceptor) Name() string { return "admission-interceptor" }

// Gate returns the underlying admission gate (introspection access).
func (ai *AdmissionInterceptor) Gate() *qos.Gate { return ai.gate }

// Invoke implements Interceptor.
//
//soleil:noheap
func (ai *AdmissionInterceptor) Invoke(inv *Invocation, next Handler) (any, error) {
	if err := ai.gate.Admit(); err != nil {
		return nil, err
	}
	return next(inv)
}

// GateStats adapts a gate's counters to the metric registry's polled
// form, for obs.Registry.RegisterGate.
func GateStats(g *qos.Gate) func() obs.GateStats {
	return func() obs.GateStats {
		st := g.Stats()
		return obs.GateStats{
			Admitted: st.Admitted,
			Shed:     st.Shed,
			Degraded: st.Degraded,
			Breaches: st.Breaches,
			Breached: st.Breached,
			Policy:   g.Policy().String(),
		}
	}
}

// GatedPort wraps a client port with an admission gate: the contract
// is enforced before the message leaves the client, which is where
// the merged generation modes (no membrane to intercept in) and
// asynchronous/distributed bindings (shed before enqueueing) apply
// their contracts.
type GatedPort struct {
	gate  *qos.Gate
	inner Port
}

// NewGatedPort wraps inner with a gate. A nil gate returns inner
// unchanged — uncontracted bindings pay nothing.
func NewGatedPort(g *qos.Gate, inner Port) Port {
	if g == nil {
		return inner
	}
	return &GatedPort{gate: g, inner: inner}
}

// Gate returns the underlying admission gate.
func (p *GatedPort) Gate() *qos.Gate { return p.gate }

// Call implements Port.
func (p *GatedPort) Call(env *thread.Env, op string, arg any) (any, error) {
	if err := p.gate.Admit(); err != nil {
		return nil, err
	}
	return p.inner.Call(env, op, arg)
}

// Send implements Port.
func (p *GatedPort) Send(env *thread.Env, op string, arg any) error {
	if err := p.gate.Admit(); err != nil {
		return err
	}
	return p.inner.Send(env, op, arg)
}
