package membrane

import (
	"fmt"
	"sync"
	"sync/atomic"

	"soleil/internal/patterns"
	"soleil/internal/rtsj/memory"
)

// ActiveInterceptor implements the run-to-completion execution model
// of active components (Sect. 4.1): invocations arriving from the
// component's server interfaces are serialized, so the component's
// functional code is never re-entered concurrently.
type ActiveInterceptor struct {
	mu          sync.Mutex
	invocations int64
}

var _ Interceptor = (*ActiveInterceptor)(nil)

// Name implements Interceptor.
func (a *ActiveInterceptor) Name() string { return "active-interceptor" }

// Invoke implements Interceptor.
//
//soleil:noheap
func (a *ActiveInterceptor) Invoke(inv *Invocation, next Handler) (any, error) {
	// Serialization is this interceptor's contract: the wait is bounded
	// by the preceding invocation's own run-to-completion section, and
	// priority inheritance lives in the scheduler's sched.Mutex, not here.
	a.mu.Lock() //soleil:ignore SA03 bounded by the previous invocation's RTC section
	defer a.mu.Unlock()
	atomic.AddInt64(&a.invocations, 1)
	return next(inv)
}

// Invocations returns the number of invocations processed.
func (a *ActiveInterceptor) Invocations() int64 { return atomic.LoadInt64(&a.invocations) }

// MemoryInterceptor implements a cross-scope communication pattern on
// a binding between different MemoryAreas (Sect. 4.1). The supported
// executable patterns are ScopeEnter (the invocation runs inside the
// server's scope, entered on behalf of the caller) and DeepCopy
// (argument and result are copied across the boundary so no reference
// escapes).
type MemoryInterceptor struct {
	pattern patterns.Kind
	scope   *memory.Area // ScopeEnter: the server's scope
	crossed int64
}

var _ Interceptor = (*MemoryInterceptor)(nil)

// NewMemoryInterceptor creates the interceptor for a binding's chosen
// pattern. scope is required for ScopeEnter and ignored otherwise.
func NewMemoryInterceptor(pattern patterns.Kind, scope *memory.Area) (*MemoryInterceptor, error) {
	switch pattern {
	case patterns.ScopeEnter, patterns.Portal:
		if scope == nil {
			return nil, fmt.Errorf("membrane: %s interceptor needs the server scope", pattern)
		}
		if scope.Kind() != memory.Scoped {
			return nil, fmt.Errorf("membrane: %s interceptor on non-scoped area %s", pattern, scope.Name())
		}
	case patterns.DeepCopy:
	default:
		return nil, fmt.Errorf("membrane: pattern %q has no interceptor implementation", pattern)
	}
	return &MemoryInterceptor{pattern: pattern, scope: scope}, nil
}

// Name implements Interceptor.
func (m *MemoryInterceptor) Name() string {
	return "memory-interceptor(" + string(m.pattern) + ")"
}

// Pattern returns the implemented pattern.
func (m *MemoryInterceptor) Pattern() patterns.Kind { return m.pattern }

// Crossings returns the number of boundary crossings performed.
func (m *MemoryInterceptor) Crossings() int64 { return atomic.LoadInt64(&m.crossed) }

// Invoke implements Interceptor.
func (m *MemoryInterceptor) Invoke(inv *Invocation, next Handler) (any, error) {
	atomic.AddInt64(&m.crossed, 1)
	switch m.pattern {
	case patterns.ScopeEnter, patterns.Portal:
		var result any
		err := patterns.EnterAndCall(inv.Env.Mem(), m.scope, func() error {
			var err error
			result, err = next(inv)
			return err
		})
		// The result crosses back out of the scope: copy it so no
		// scoped reference escapes.
		return patterns.CopyValue(result), err
	case patterns.DeepCopy:
		copied := *inv
		copied.Arg = patterns.CopyValue(inv.Arg)
		result, err := next(&copied)
		return patterns.CopyValue(result), err
	default:
		return nil, fmt.Errorf("membrane: pattern %q has no interceptor implementation", m.pattern)
	}
}
