package membrane

import (
	"time"

	"soleil/internal/obs"
)

// MetricsInterceptor is the membrane's observability interceptor: it
// records latency, error and panic signals for every dispatch into a
// shared metric registry and maintains the causal trace — deriving a
// child span from the caller's context and installing it as the
// thread's current span for the duration of the dispatch.
//
// Deployed outermost it observes the component as its clients do:
// time spent in inner interceptors (run-to-completion serialization,
// memory-pattern copies, fault guards) is part of the recorded
// latency, and panics converted to errors by an inner guard surface
// as errors rather than raw panics.
//
// The hot path performs only atomic updates and a ring-slot copy — no
// allocation — so the interceptor is safe on real-time paths and in
// steady state costs a few hundred nanoseconds per dispatch.
type MetricsInterceptor struct {
	system  string
	metrics *obs.ComponentMetrics
	tracer  *obs.Tracer
	budget  int64 // nanoseconds; 0 = no over-budget detection
}

// NewMetricsInterceptor builds the interceptor for one component.
// tracer may be nil to meter without tracing.
func NewMetricsInterceptor(system string, cm *obs.ComponentMetrics, tracer *obs.Tracer) *MetricsInterceptor {
	return &MetricsInterceptor{system: system, metrics: cm, tracer: tracer}
}

// SetBudget arms over-budget detection: a dispatch taking longer than
// budget records an EvOverBudget flight-recorder event carrying the
// dispatch's span IDs (so the recorder timeline aligns with the
// trace). Typically wired from the component's declared cost or
// deadline. Call before deployment; not safe concurrently with
// dispatches.
func (mi *MetricsInterceptor) SetBudget(budget time.Duration) {
	if budget < 0 {
		budget = 0
	}
	mi.budget = int64(budget)
}

// Name implements Interceptor.
func (mi *MetricsInterceptor) Name() string { return "metrics-interceptor" }

// Invoke implements Interceptor. The no-heap claim made statically
// here is the same one `make benchcheck` enforces empirically
// (BenchmarkDispatchMetered, 0 allocs/op).
//
//soleil:noheap
func (mi *MetricsInterceptor) Invoke(inv *Invocation, next Handler) (any, error) {
	s := mi.metrics.Series(inv.Interface, inv.Op)
	s.Invocations.Inc()

	// The parent span arrives either explicitly on the invocation
	// (asynchronous and distributed boundaries re-attach it there) or
	// implicitly as the calling thread's current span.
	parent := inv.Trace
	env := inv.Env
	if !parent.Valid() && env != nil {
		parent = env.Span()
	}
	cur := obs.NewSpanContext(parent)
	var prev obs.SpanContext
	if env != nil {
		prev = env.SetSpan(cur)
	}

	start := time.Now()
	panicked := true
	errored := false
	defer func() { //soleil:ignore SA01 open-coded defer; 0 allocs/op verified by make benchcheck
		d := time.Since(start)
		s.Latency.Observe(d)
		if panicked {
			s.Panics.Inc()
		}
		if mi.budget > 0 && int64(d) > mi.budget {
			mi.metrics.Event(obs.EvOverBudget, int64(d), cur)
		}
		if env != nil {
			env.SetSpan(prev)
		}
		if mi.tracer != nil {
			mi.tracer.Record(obs.Span{
				Trace:     cur.TraceID,
				ID:        cur.SpanID,
				Parent:    parent.SpanID,
				System:    mi.system,
				Component: mi.metrics.Name(),
				Interface: inv.Interface,
				Op:        inv.Op,
				Start:     start,
				Duration:  d,
				Err:       errored || panicked,
			})
		}
	}()
	out, err := next(inv)
	panicked = false
	if err != nil {
		errored = true
		s.Errors.Inc()
	}
	return out, err
}
