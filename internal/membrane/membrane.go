// Package membrane implements the paper's component-oriented membrane
// (Sect. 4.1-4.2): every functional component is wrapped in a
// controlling environment assembled from control components
// (Lifecycle, Binding, Content and Name controllers) and interceptors
// (the Active interceptor's run-to-completion execution model, Memory
// interceptors implementing cross-scope communication patterns, and
// the asynchronous stub/skeleton pair).
//
// The membrane is what the SOLEIL generation mode reifies at runtime;
// the merged modes collapse it into direct calls (see
// internal/assembly).
package membrane

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"soleil/internal/obs"
	"soleil/internal/rtsj/thread"
)

// ErrFailed is returned by Dispatch on a component whose lifecycle
// state is FAILED: a fault interceptor recorded a contract violation
// (typically a panic in the content) and isolated the component.
// Start clears the state — the supervisor's restart path.
var ErrFailed = errors.New("membrane: component failed")

// Invocation is one operation travelling through a membrane. It
// carries the calling thread's execution environment so interceptors
// can apply scheduling and memory machinery on its behalf.
type Invocation struct {
	// Interface is the server interface the invocation targets.
	Interface string
	// Op is the operation name.
	Op string
	// Arg is the operation argument.
	Arg any
	// Env is the calling thread's environment.
	Env *thread.Env
	// Trace is the caller's span context when the invocation crossed
	// an asynchronous or distributed boundary; a zero value means the
	// caller's span travels in Env instead.
	Trace obs.SpanContext
}

// Handler consumes an invocation.
type Handler func(inv *Invocation) (any, error)

// Interceptor is a control component deployed on a component
// interface to arbitrate communication between the component and its
// environment.
type Interceptor interface {
	// Name identifies the interceptor in introspection output.
	Name() string
	// Invoke processes inv and (usually) forwards to next.
	Invoke(inv *Invocation, next Handler) (any, error)
}

// Port is a client interface as seen by component content: the way
// out of the component.
type Port interface {
	// Call performs a synchronous invocation and returns its result.
	Call(env *thread.Env, op string, arg any) (any, error)
	// Send performs an asynchronous, fire-and-forget invocation.
	Send(env *thread.Env, op string, arg any) error
}

// Services is the execution support handed to component content: its
// name and its client ports. Port lookups go through the binding
// table on every call, so runtime rebinding takes effect immediately.
type Services struct {
	name  string
	binds *BindingController
}

// NewServices builds standalone services over a binding controller.
// Membranes build their own; the merged generation modes — which
// collapse the membrane but keep functional-level binding — use this
// directly.
func NewServices(name string, binds *BindingController) *Services {
	return &Services{name: name, binds: binds}
}

// NewBindingController creates a standalone binding controller for
// the merged generation modes.
func NewBindingController(owner string) *BindingController {
	return &BindingController{owner: owner}
}

// Name returns the owning component's name.
func (s *Services) Name() string { return s.name }

// Port returns the named client port.
func (s *Services) Port(name string) (Port, error) {
	return s.binds.Lookup(name)
}

// Bound lists the currently bound client interfaces, sorted.
func (s *Services) Bound() []string {
	out := s.binds.Bound()
	sort.Strings(out)
	return out
}

// Content is the user-implemented functional code of a primitive
// component — the only thing the paper's development process asks the
// developer to write.
type Content interface {
	// Init receives the component's services at bootstrap.
	Init(svc *Services) error
	// Invoke handles an operation arriving on a server interface.
	Invoke(env *thread.Env, itf, op string, arg any) (any, error)
}

// ActiveContent is content with its own activation logic: Activate is
// the body of one release of a periodic or aperiodic active
// component.
type ActiveContent interface {
	Content
	Activate(env *thread.Env) error
}

// Membrane wraps a content implementation with its control
// environment.
type Membrane struct {
	name         string
	content      Content
	services     *Services
	interceptors []Interceptor
	controllers  []Controller

	lifecycle *LifecycleController
	binding   *BindingController

	// chain is the interceptor chain composed once at assembly:
	// Dispatch runs it without building closures, keeping the dispatch
	// hot path allocation-free.
	chain Handler

	// metrics, when attached, receives the membrane's lifecycle
	// signals (failures, rejected dispatches, health).
	metrics *obs.ComponentMetrics
}

// New assembles a membrane around content. The interceptors form the
// server-side chain, applied outermost-first to every incoming
// invocation.
func New(name string, content Content, interceptors ...Interceptor) (*Membrane, error) {
	if name == "" {
		return nil, fmt.Errorf("membrane: component needs a name")
	}
	if content == nil {
		return nil, fmt.Errorf("membrane: component %q needs content", name)
	}
	m := &Membrane{
		name:         name,
		content:      content,
		interceptors: interceptors,
	}
	m.binding = &BindingController{owner: name}
	m.lifecycle = &LifecycleController{owner: m}
	m.services = &Services{name: name, binds: m.binding}
	m.controllers = []Controller{
		&NameController{name: name},
		m.lifecycle,
		m.binding,
	}
	for _, i := range interceptors {
		if la, ok := i.(LifecycleAware); ok {
			la.AttachLifecycle(m.lifecycle)
		}
	}
	m.chain = func(inv *Invocation) (any, error) {
		return m.content.Invoke(inv.Env, inv.Interface, inv.Op, inv.Arg)
	}
	for i := len(interceptors) - 1; i >= 0; i-- {
		ic, next := interceptors[i], m.chain
		m.chain = func(inv *Invocation) (any, error) {
			return ic.Invoke(inv, next)
		}
	}
	return m, nil
}

// LifecycleAware is implemented by interceptors that act on the
// component's lifecycle (e.g. a fault interceptor flipping the state
// to FAILED). New hands them the lifecycle controller at assembly.
type LifecycleAware interface {
	AttachLifecycle(*LifecycleController)
}

// Name returns the component name.
func (m *Membrane) Name() string { return m.name }

// Content returns the wrapped content (the content controller's
// access path).
func (m *Membrane) Content() Content { return m.content }

// Services returns the component's execution services.
func (m *Membrane) Services() *Services { return m.services }

// Lifecycle returns the lifecycle controller.
func (m *Membrane) Lifecycle() *LifecycleController { return m.lifecycle }

// Binding returns the binding controller.
func (m *Membrane) Binding() *BindingController { return m.binding }

// Controllers returns the membrane's control components.
func (m *Membrane) Controllers() []Controller {
	out := make([]Controller, len(m.controllers))
	copy(out, m.controllers)
	return out
}

// AddController attaches an additional control component (e.g. a
// ThreadDomain controller shared by a non-functional component).
func (m *Membrane) AddController(c Controller) { m.controllers = append(m.controllers, c) }

// Interceptors returns the server-side interceptor chain.
func (m *Membrane) Interceptors() []Interceptor {
	out := make([]Interceptor, len(m.interceptors))
	copy(out, m.interceptors)
	return out
}

// AttachMetrics connects the membrane's lifecycle signals to a
// component metric family: failures, rejected dispatches and the
// health gauge become visible in the registry.
func (m *Membrane) AttachMetrics(cm *obs.ComponentMetrics) { m.metrics = cm }

// Metrics returns the attached component metric family, if any.
func (m *Membrane) Metrics() *obs.ComponentMetrics { return m.metrics }

// Dispatch runs an incoming invocation through the interceptor chain
// and into the content. Invocations on stopped components are
// refused — the lifecycle controller's guarantee to reconfiguration.
func (m *Membrane) Dispatch(inv *Invocation) (any, error) {
	if failed, cause := m.lifecycle.Failure(); failed {
		if m.metrics != nil {
			m.metrics.Rejected.Inc()
		}
		return nil, fmt.Errorf("%w: %q: %v", ErrFailed, m.name, cause)
	}
	if !m.lifecycle.Started() {
		return nil, fmt.Errorf("membrane: component %q is stopped", m.name)
	}
	return m.chain(inv)
}

// Controller is a control component of a membrane.
type Controller interface {
	// ControllerName identifies the controller kind.
	ControllerName() string
}

// NameController exposes the component name (Fractal's
// name-controller).
type NameController struct {
	name string
}

// ControllerName implements Controller.
func (c *NameController) ControllerName() string { return "name-controller" }

// Name returns the component name.
func (c *NameController) Name() string { return c.name }

// LifecycleController manages the component's lifecycle state:
// stopped, started, or failed (isolated after a recorded fault).
type LifecycleController struct {
	owner *Membrane

	mu      sync.Mutex
	started bool
	failed  bool
	cause   error
}

// ControllerName implements Controller.
func (c *LifecycleController) ControllerName() string { return "lifecycle-controller" }

// Started reports whether the component is started.
func (c *LifecycleController) Started() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.started
}

// Failure reports whether the component is in the FAILED state and
// the recorded cause.
func (c *LifecycleController) Failure() (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed, c.cause
}

// Fail moves the component to the FAILED state: it is closed for
// invocations until restarted, and Dispatch reports cause. Fault
// interceptors call this instead of letting a panic escape.
func (c *LifecycleController) Fail(cause error) {
	c.mu.Lock()
	c.started = false
	c.failed = true
	c.cause = cause
	c.mu.Unlock()
	if cm := c.owner.metrics; cm != nil {
		cm.Failures.Inc()
		cm.SetHealthy(false)
		cm.Event(obs.EvLifecycleFailed, cm.Failures.Load(), obs.SpanContext{})
		// A component entering FAILED is exactly what the black box
		// exists for: capture the ring around the failure.
		cm.FlightRecorder().Trigger("lifecycle-failed")
	}
}

// Start initializes the content (once) and opens the component for
// invocations. Starting a FAILED component clears the failure — the
// supervisor's restart path.
func (c *LifecycleController) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return nil
	}
	if err := c.owner.content.Init(c.owner.services); err != nil {
		return fmt.Errorf("membrane: starting %q: %w", c.owner.name, err)
	}
	c.started = true
	c.failed = false
	c.cause = nil
	if cm := c.owner.metrics; cm != nil {
		cm.SetHealthy(true)
	}
	return nil
}

// Stop closes the component for invocations.
func (c *LifecycleController) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = false
}

// BindingController manages the component's client bindings — the
// introspection and reconfiguration entry point of the membrane.
type BindingController struct {
	owner string

	mu    sync.Mutex
	ports map[string]Port
}

// ControllerName implements Controller.
func (c *BindingController) ControllerName() string { return "binding-controller" }

// Bind connects the named client interface to a port.
func (c *BindingController) Bind(itf string, p Port) error {
	if p == nil {
		return fmt.Errorf("membrane: binding %s.%s to nil port", c.owner, itf)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ports == nil {
		c.ports = make(map[string]Port)
	}
	c.ports[itf] = p
	return nil
}

// Unbind disconnects the named client interface.
func (c *BindingController) Unbind(itf string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.ports[itf]; !ok {
		return fmt.Errorf("membrane: %s.%s is not bound", c.owner, itf)
	}
	delete(c.ports, itf)
	return nil
}

// Lookup resolves the named client interface to its current port.
func (c *BindingController) Lookup(itf string) (Port, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.ports[itf]
	if !ok {
		return nil, fmt.Errorf("membrane: %s.%s is not bound", c.owner, itf)
	}
	return p, nil
}

// Bound lists the currently bound client interfaces.
func (c *BindingController) Bound() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.ports))
	for n := range c.ports {
		out = append(out, n)
	}
	return out
}
