package membrane

import (
	"errors"
	"testing"

	"soleil/internal/obs"
	"soleil/internal/rtsj/memory"
	"soleil/internal/rtsj/thread"
)

// faultyContent returns a fixed error or panics on demand.
type faultyContent struct {
	err       error
	panicWith any
}

func (c *faultyContent) Init(*Services) error { return nil }

func (c *faultyContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	if c.panicWith != nil {
		panic(c.panicWith)
	}
	return arg, c.err
}

func newMeteredMembrane(t *testing.T, content Content, tracer *obs.Tracer) (*Membrane, *obs.ComponentMetrics) {
	t.Helper()
	reg := obs.NewRegistry()
	cm := reg.Component("m")
	m, err := New("m", content, NewMetricsInterceptor("sys", cm, tracer))
	if err != nil {
		t.Fatal(err)
	}
	m.AttachMetrics(cm)
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	return m, cm
}

func TestMetricsInterceptorCounts(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	content := &faultyContent{}
	m, cm := newMeteredMembrane(t, content, nil)

	for i := 0; i < 3; i++ {
		if _, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Arg: i, Env: env}); err != nil {
			t.Fatal(err)
		}
	}
	content.err = errors.New("boom")
	if _, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Env: env}); err == nil {
		t.Fatal("error swallowed")
	}

	s := cm.Series("i", "op")
	if got := s.Invocations.Load(); got != 4 {
		t.Errorf("invocations = %d, want 4", got)
	}
	if got := s.Errors.Load(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
	if got := s.Panics.Load(); got != 0 {
		t.Errorf("panics = %d, want 0", got)
	}
	if got := s.Latency.Count(); got != 4 {
		t.Errorf("latency count = %d, want 4", got)
	}
}

func TestMetricsInterceptorRawPanic(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	m, cm := newMeteredMembrane(t, &faultyContent{panicWith: "blown fuse"}, nil)

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic swallowed by metrics interceptor")
			}
		}()
		_, _ = m.Dispatch(&Invocation{Interface: "i", Op: "op", Env: env})
	}()

	s := cm.Series("i", "op")
	if got := s.Panics.Load(); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
	if got := s.Latency.Count(); got != 1 {
		t.Errorf("latency count = %d, want 1 (panicking dispatch still timed)", got)
	}
}

func TestFailedDispatchCountsRejected(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	m, cm := newMeteredMembrane(t, &faultyContent{}, nil)

	m.Lifecycle().Fail(errors.New("isolated"))
	if cm.Healthy() {
		t.Error("health still up after Fail")
	}
	if got := cm.Failures.Load(); got != 1 {
		t.Errorf("failures = %d, want 1", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Env: env}); !errors.Is(err, ErrFailed) {
			t.Fatalf("dispatch on FAILED component = %v, want ErrFailed", err)
		}
	}
	if got := cm.Rejected.Load(); got != 2 {
		t.Errorf("rejected = %d, want 2", got)
	}

	// Restarting clears the failure and restores health.
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	if !cm.Healthy() {
		t.Error("health not restored by restart")
	}
	if _, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Env: env}); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsInterceptorTracePropagation(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	tracer := obs.NewTracer(16)
	m, _ := newMeteredMembrane(t, &faultyContent{}, tracer)

	root := obs.NewSpanContext(obs.SpanContext{})
	env.SetSpan(root)
	if _, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Env: env}); err != nil {
		t.Fatal(err)
	}
	if got := env.Span(); got != root {
		t.Errorf("caller span not restored: %v != %v", got, root)
	}
	spans := tracer.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Trace != root.TraceID {
		t.Errorf("span left the trace: %x != %x", sp.Trace, root.TraceID)
	}
	if sp.Parent != root.SpanID {
		t.Errorf("span parent = %x, want caller %x", sp.Parent, root.SpanID)
	}
	if sp.Component != "m" || sp.Interface != "i" || sp.Op != "op" {
		t.Errorf("span identity = %s/%s/%s", sp.Component, sp.Interface, sp.Op)
	}

	// An explicit Invocation.Trace (the async/dist re-attachment path)
	// takes precedence over the thread's current span.
	wire := obs.NewSpanContext(obs.SpanContext{})
	if _, err := m.Dispatch(&Invocation{Interface: "i", Op: "op", Env: env, Trace: wire}); err != nil {
		t.Fatal(err)
	}
	spans = tracer.Spans()
	if sp := spans[len(spans)-1]; sp.Trace != wire.TraceID || sp.Parent != wire.SpanID {
		t.Errorf("wire trace not adopted: trace=%x parent=%x, want %x/%x",
			sp.Trace, sp.Parent, wire.TraceID, wire.SpanID)
	}
}

// TestDispatchAllocs proves the fully metered dispatch path — chain,
// metrics interceptor, tracer — allocates nothing per invocation.
func TestDispatchAllocs(t *testing.T) {
	rt := memory.NewRuntime()
	env := testEnv(t, rt, false)
	tracer := obs.NewTracer(64)
	m, _ := newMeteredMembrane(t, &faultyContent{}, tracer)

	inv := &Invocation{Interface: "i", Op: "op", Arg: 1, Env: env}
	if _, err := m.Dispatch(inv); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.Dispatch(inv); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("metered dispatch allocates %.1f objects per op, want 0", allocs)
	}
}

func benchMembrane(b *testing.B, interceptors ...Interceptor) *Membrane {
	b.Helper()
	m, err := New("m", &faultyContent{}, interceptors...)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Lifecycle().Start(); err != nil {
		b.Fatal(err)
	}
	return m
}

func benchEnv(b *testing.B) *thread.Env {
	b.Helper()
	rt := memory.NewRuntime()
	ctx, err := memory.NewContext(rt.Immortal(), false)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(ctx.Close)
	return thread.NewEnv(nil, ctx)
}

func BenchmarkDispatchBare(b *testing.B) {
	m := benchMembrane(b)
	inv := &Invocation{Interface: "i", Op: "op", Arg: 1, Env: benchEnv(b)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Dispatch(inv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDispatchMetered(b *testing.B) {
	cm := obs.NewRegistry().Component("m")
	m := benchMembrane(b, NewMetricsInterceptor("sys", cm, nil))
	inv := &Invocation{Interface: "i", Op: "op", Arg: 1, Env: benchEnv(b)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Dispatch(inv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDispatchMeteredTraced(b *testing.B) {
	cm := obs.NewRegistry().Component("m")
	m := benchMembrane(b, NewMetricsInterceptor("sys", cm, obs.NewTracer(0)))
	inv := &Invocation{Interface: "i", Op: "op", Arg: 1, Env: benchEnv(b)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Dispatch(inv); err != nil {
			b.Fatal(err)
		}
	}
}
