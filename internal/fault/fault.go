// Package fault is the framework's fault-tolerance subsystem. The
// membrane reifies non-functional concerns as runtime controllers;
// this package extends that discipline to *failure*, following the
// contract-aware component argument (Beugnard et al.) that a
// component framework must also enforce what happens when a component
// violates its behavioural contract:
//
//   - Injector wraps a dist transport with deterministic, seeded
//     fault injection (drop / delay / duplicate / corrupt) so failure
//     scenarios replay exactly;
//   - PanicInterceptor converts content panics into recorded faults
//     and flips the component's lifecycle to FAILED instead of
//     crashing the process;
//   - RetryPort, TimeoutPort and BreakerPort harden distributed
//     bindings with exponential backoff, per-call deadlines and a
//     circuit breaker;
//   - Supervisor watches per-component health signals (recorded
//     faults, buffer overflow rate, deadline misses, latency) and
//     applies restart policies (one-for-one restart, quarantine,
//     escalate) through the reconfiguration manager.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Kind classifies a recorded fault.
type Kind string

// Fault kinds.
const (
	// Panic is a recovered panic in component content.
	Panic Kind = "panic"
	// Injected is a deliberately injected fault (chaos testing).
	Injected Kind = "injected"
	// Transport is a transport-level fault (drop, corrupt, ...).
	Transport Kind = "transport"
	// Invocation is a failed invocation on a hardened binding.
	Invocation Kind = "invocation"
)

// ErrPanic wraps a recovered component panic.
var ErrPanic = errors.New("fault: component panicked")

// Fault is one recorded failure event.
type Fault struct {
	At        time.Time
	Kind      Kind
	Component string
	// Op is the interface.operation the fault occurred on, when known.
	Op     string
	Detail string
}

func (f Fault) String() string {
	if f.Op != "" {
		return fmt.Sprintf("[%s] %s %s: %s", f.Kind, f.Component, f.Op, f.Detail)
	}
	return fmt.Sprintf("[%s] %s: %s", f.Kind, f.Component, f.Detail)
}

// Log is a bounded, concurrency-safe record of faults — the
// subsystem's shared flight recorder. When the bound is reached the
// oldest entries are discarded (the counters keep the totals).
type Log struct {
	mu      sync.Mutex
	faults  []Fault
	cap     int
	total   int64
	byKind  map[Kind]int64
	dropped int64
}

// NewLog creates a fault log retaining at most capacity entries
// (default 256 when capacity <= 0).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 256
	}
	return &Log{cap: capacity, byKind: make(map[Kind]int64)}
}

// Record appends one fault.
func (l *Log) Record(f Fault) {
	if f.At.IsZero() {
		f.At = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	l.byKind[f.Kind]++
	if len(l.faults) >= l.cap {
		l.faults = l.faults[1:]
		l.dropped++
	}
	l.faults = append(l.faults, f)
}

// Faults returns a copy of the retained faults in arrival order.
func (l *Log) Faults() []Fault {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Fault, len(l.faults))
	copy(out, l.faults)
	return out
}

// Total returns the number of faults recorded over the log's life.
func (l *Log) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// CountByKind returns the lifetime count of one fault kind.
func (l *Log) CountByKind(k Kind) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.byKind[k]
}
