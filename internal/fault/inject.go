package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"soleil/internal/dist"
)

// Spec parameterizes deterministic fault injection. Rates are
// probabilities in [0,1] evaluated independently per message; Seed
// makes the decision sequence replayable.
type Spec struct {
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Delay is the probability a message is held back by DelayFor.
	Delay float64
	// DelayFor is the hold-back duration of a delayed message
	// (default 1ms).
	DelayFor time.Duration
	// Duplicate is the probability a message is transmitted twice.
	Duplicate float64
	// Corrupt is the probability one byte of the payload is flipped.
	Corrupt float64
	// Panic is the probability a chaos interceptor panics on an
	// invocation (unused by the transport injector).
	Panic float64
	// Seed seeds the PRNG; the same seed replays the same faults.
	Seed int64
}

// Zero reports whether the spec injects nothing.
func (s Spec) Zero() bool {
	return s.Drop == 0 && s.Delay == 0 && s.Duplicate == 0 && s.Corrupt == 0 && s.Panic == 0
}

func (s Spec) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{{"drop", s.Drop}, {"delay", s.Delay}, {"dup", s.Duplicate}, {"corrupt", s.Corrupt}, {"panic", s.Panic}} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: rate %s=%v outside [0,1]", r.name, r.v)
		}
	}
	return nil
}

// ParseSpec parses a comma-separated fault specification, e.g.
// "drop=0.02,delay=0.01,dup=0.01,corrupt=0.01,panic=0.02,seed=42".
func ParseSpec(s string) (Spec, error) {
	spec := Spec{DelayFor: time.Millisecond}
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return spec, fmt.Errorf("fault: malformed spec field %q (want key=value)", field)
		}
		switch key {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return spec, fmt.Errorf("fault: seed %q: %w", val, err)
			}
			spec.Seed = n
		case "delayfor":
			d, err := time.ParseDuration(val)
			if err != nil {
				return spec, fmt.Errorf("fault: delayfor %q: %w", val, err)
			}
			spec.DelayFor = d
		default:
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return spec, fmt.Errorf("fault: rate %s=%q: %w", key, val, err)
			}
			switch key {
			case "drop":
				spec.Drop = rate
			case "delay":
				spec.Delay = rate
			case "dup":
				spec.Duplicate = rate
			case "corrupt":
				spec.Corrupt = rate
			case "panic":
				spec.Panic = rate
			default:
				return spec, fmt.Errorf("fault: unknown spec key %q", key)
			}
		}
	}
	return spec, spec.validate()
}

// InjectorStats counts the faults an injector has applied.
type InjectorStats struct {
	Sent       int64 // messages offered to Send
	Dropped    int64
	Delayed    int64
	Duplicated int64
	Corrupted  int64
}

// Injector is a dist.Transport wrapper that injects send-side faults
// according to a Spec. Decisions come from a seeded PRNG guarded by a
// mutex, so a single-producer run replays exactly for a given seed.
type Injector struct {
	inner dist.Transport
	spec  Spec
	log   *Log
	sleep func(time.Duration)

	mu    sync.Mutex
	rng   *rand.Rand
	stats InjectorStats
}

var _ dist.Transport = (*Injector)(nil)

// InjectTransport wraps t with fault injection. log may be nil; the
// injector then only keeps counters.
func InjectTransport(t dist.Transport, spec Spec, log *Log) (*Injector, error) {
	if t == nil {
		return nil, fmt.Errorf("fault: injector needs a transport")
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.DelayFor <= 0 {
		spec.DelayFor = time.Millisecond
	}
	return &Injector{
		inner: t,
		spec:  spec,
		log:   log,
		sleep: time.Sleep,
		rng:   rand.New(rand.NewSource(spec.Seed)),
	}, nil
}

// Stats returns a copy of the injection counters.
func (j *Injector) Stats() InjectorStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// decide rolls all per-message dice under one lock so the decision
// sequence is a pure function of the seed and the message index.
func (j *Injector) decide() (drop, delay, dup, corrupt bool, corruptAt int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.stats.Sent++
	drop = j.rng.Float64() < j.spec.Drop
	delay = j.rng.Float64() < j.spec.Delay
	dup = j.rng.Float64() < j.spec.Duplicate
	corrupt = j.rng.Float64() < j.spec.Corrupt
	corruptAt = j.rng.Int()
	switch {
	case drop:
		j.stats.Dropped++
	case corrupt:
		j.stats.Corrupted++
	}
	if !drop && delay {
		j.stats.Delayed++
	}
	if !drop && dup {
		j.stats.Duplicated++
	}
	return drop, delay, dup, corrupt, corruptAt
}

func (j *Injector) record(detail string) {
	if j.log != nil {
		j.log.Record(Fault{Kind: Transport, Component: "transport", Detail: detail})
	}
}

// Send implements dist.Transport, applying the injection spec.
func (j *Injector) Send(payload []byte) error {
	drop, delay, dup, corrupt, corruptAt := j.decide()
	if drop {
		j.record("dropped message")
		return nil // the network ate it; the sender cannot tell
	}
	if delay {
		j.record(fmt.Sprintf("delayed message by %v", j.spec.DelayFor))
		j.sleep(j.spec.DelayFor)
	}
	out := payload
	if corrupt && len(payload) > 0 {
		out = make([]byte, len(payload))
		copy(out, payload)
		out[corruptAt%len(out)] ^= 0xFF
		j.record("corrupted message")
	}
	if err := j.inner.Send(out); err != nil {
		return err
	}
	if dup {
		j.record("duplicated message")
		return j.inner.Send(out)
	}
	return nil
}

// Receive implements dist.Transport.
func (j *Injector) Receive() ([]byte, error) { return j.inner.Receive() }

// Close implements dist.Transport.
func (j *Injector) Close() error { return j.inner.Close() }
