package fault

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/obs"
	"soleil/internal/qos"
	"soleil/internal/rtsj/thread"
)

// floodSource offers sendsPerCycle messages per wall-clock release —
// an order of magnitude more than its binding's contract admits.
// Backpressure is absorbed and counted (graceful shedding at the
// sender); any other error is a real failure and propagates.
type floodSource struct {
	svc           *membrane.Services
	sendsPerCycle int
	sent          atomic.Int64
	shed          atomic.Int64
}

func (s *floodSource) Init(svc *membrane.Services) error { s.svc = svc; return nil }

func (s *floodSource) Invoke(*thread.Env, string, string, any) (any, error) {
	return nil, errors.New("source serves nothing")
}

func (s *floodSource) Activate(env *thread.Env) error {
	port, err := s.svc.Port("out")
	if err != nil {
		return err
	}
	for i := 0; i < s.sendsPerCycle; i++ {
		switch err := port.Send(env, "tick", i); {
		case err == nil:
			s.sent.Add(1)
		case errors.Is(err, qos.ErrBackpressure):
			s.shed.Add(1)
		default:
			return err
		}
	}
	return nil
}

// quietSink counts deliveries.
type quietSink struct {
	received atomic.Int64
}

func (s *quietSink) Init(*membrane.Services) error { return nil }

func (s *quietSink) Invoke(*thread.Env, string, string, any) (any, error) {
	s.received.Add(1)
	return nil, nil
}

// overloadArch builds two independent contracted pipelines: a
// shed-policy binding and a degrade-policy binding (whose nanosecond
// budget guarantees an SLO breach as soon as the server has served
// anything).
func overloadArch(t *testing.T) *model.Architecture {
	t.Helper()
	a := model.NewArchitecture("soak-overload")
	pipelines := []struct {
		src, snk string
		c        *model.Contract
	}{
		{"ShedSrc", "ShedSink", &model.Contract{MaxRate: 500, Burst: 32, Policy: model.Shed}},
		{"DegSrc", "DegSink", &model.Contract{
			LatencyBudget: time.Nanosecond, MaxRate: 500, Burst: 32, Policy: model.Degrade}},
	}
	td, _ := a.NewThreadDomain("rt", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	if err := a.AddChild(imm, td); err != nil {
		t.Fatal(err)
	}
	for _, p := range pipelines {
		src, err := a.NewActive(p.src, model.Activation{
			Kind: model.PeriodicActivation, Period: time.Millisecond, Deadline: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := src.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "ITick"}); err != nil {
			t.Fatal(err)
		}
		if err := src.SetContent(p.src + "Impl"); err != nil {
			t.Fatal(err)
		}
		snk, err := a.NewActive(p.snk, model.Activation{Kind: model.SporadicActivation})
		if err != nil {
			t.Fatal(err)
		}
		if err := snk.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "ITick"}); err != nil {
			t.Fatal(err)
		}
		if err := snk.SetContent(p.snk + "Impl"); err != nil {
			t.Fatal(err)
		}
		if err := a.AddChild(td, src); err != nil {
			t.Fatal(err)
		}
		if err := a.AddChild(td, snk); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Bind(model.Binding{
			Client:     model.Endpoint{Component: p.src, Interface: "out"},
			Server:     model.Endpoint{Component: p.snk, Interface: "in"},
			Protocol:   model.Asynchronous,
			BufferSize: 64,
			Contract:   p.c,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

// TestSoakOverloadShedding is the contract tentpole's endurance
// scenario (`make soak-overload`): two pipelines paced in wall-clock
// time with producers offering ~40x their contracted rate. The run
// must shed (nonzero rejected counters on every gate), never crash
// (no absorbed errors — backpressure is handled at the source), keep
// the observability endpoint healthy under overload, detect the
// degrade binding's SLO breach, and wind down without leaking a
// goroutine.
func TestSoakOverloadShedding(t *testing.T) {
	baseline := runtime.NumGoroutine()

	arch := overloadArch(t)
	shedSrc := &floodSource{sendsPerCycle: 20}
	degSrc := &floodSource{sendsPerCycle: 20}
	shedSnk := &quietSink{}
	degSnk := &quietSink{}
	reg := assembly.NewRegistry()
	for name, content := range map[string]membrane.Content{
		"ShedSrcImpl": shedSrc, "DegSrcImpl": degSrc,
		"ShedSinkImpl": shedSnk, "DegSinkImpl": degSnk,
	} {
		content := content
		if err := reg.Register(name, func() membrane.Content { return content }); err != nil {
			t.Fatal(err)
		}
	}
	metrics := obs.NewRegistry()
	sys, err := assembly.Deploy(arch, assembly.Config{
		Mode: assembly.Soleil, Registry: reg, Metrics: metrics, Resilient: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	addr, shutdown, err := obs.Serve("127.0.0.1:0", obs.HandlerOptions{Registry: metrics})
	if err != nil {
		t.Fatal(err)
	}

	pacer, err := assembly.NewPacer(sys, assembly.PacerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pacer.Run(); err != nil {
		t.Fatal(err)
	}

	// Overload for ~1.2s of wall-clock time, probing /healthz while
	// the gates are actively shedding: liveness must not degrade with
	// the load.
	healthChecks := 0
	for i := 0; i < 6; i++ {
		time.Sleep(200 * time.Millisecond)
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err != nil {
			t.Fatalf("healthz under overload: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d under overload, want 200", resp.StatusCode)
		}
		_ = resp.Body.Close()
		healthChecks++
	}

	pacer.Close()
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}

	// Zero crashes: every activation ran, every overflow surfaced as
	// typed backpressure at the source, nothing was absorbed.
	if pacer.Errors() != 0 {
		t.Fatalf("pacer absorbed %d errors: %v", pacer.Errors(), sys.Errors())
	}

	shedName := arch.Bindings()[0].String()
	degName := arch.Bindings()[1].String()
	shedStats, ok := metrics.Gate(shedName)
	if !ok {
		t.Fatalf("gate %q not registered: %v", shedName, metrics.GateNames())
	}
	degStats, ok := metrics.Gate(degName)
	if !ok {
		t.Fatalf("gate %q not registered: %v", degName, metrics.GateNames())
	}
	ss, ds := shedStats(), degStats()

	// The shed pipeline rejected most of the offered load and what it
	// admitted arrived.
	if ss.Shed == 0 || shedSrc.shed.Load() == 0 {
		t.Fatalf("shed gate never rejected: gate=%+v source shed=%d", ss, shedSrc.shed.Load())
	}
	if ss.Admitted == 0 || shedSnk.received.Load() == 0 {
		t.Fatalf("shed gate admitted nothing: gate=%+v received=%d", ss, shedSnk.received.Load())
	}
	if ss.Shed < ss.Admitted {
		t.Errorf("overload not dominant: shed %d < admitted %d at ~40x the contracted rate", ss.Shed, ss.Admitted)
	}

	// The degrade pipeline admitted over-rate traffic until the
	// (unmeetable) budget breached, then fell back to shedding.
	if ds.Degraded == 0 {
		t.Fatalf("degrade gate never degraded: %+v", ds)
	}
	if ds.Breaches == 0 || !ds.Breached {
		t.Fatalf("nanosecond budget never breached: %+v", ds)
	}
	if ds.Shed == 0 {
		t.Fatalf("degrade gate never fell back to shedding after the breach: %+v", ds)
	}

	// The gates are visible in the exposition format.
	var sb strings.Builder
	if err := metrics.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if expo := sb.String(); !strings.Contains(expo, "soleil_gate_shed_total") ||
		!strings.Contains(expo, `policy="degrade"`) {
		t.Error("gate counters missing from the Prometheus exposition")
	}

	// No goroutine leaks: the pacer's drivers and the HTTP server have
	// wound down.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.After(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		select {
		case <-deadline:
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Summary lines for CI extraction (.github/workflows/ci.yml greps
	// "soak-overload:").
	t.Logf("soak-overload: gate=%q policy=shed admitted=%d shed=%d", shedName, ss.Admitted, ss.Shed)
	t.Logf("soak-overload: gate=%q policy=degrade admitted=%d degraded=%d shed=%d breaches=%d",
		degName, ds.Admitted, ds.Degraded, ds.Shed, ds.Breaches)
	t.Logf("soak-overload: healthz=200 checks=%d offered=%d", healthChecks,
		shedSrc.sent.Load()+shedSrc.shed.Load()+degSrc.sent.Load()+degSrc.shed.Load())
}
