package fault

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"soleil/internal/comm"
	"soleil/internal/membrane"
	"soleil/internal/rtsj/thread"
)

// --- spec parsing ------------------------------------------------------------------

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("drop=0.02,delay=0.01,dup=0.03,corrupt=0.04,panic=0.05,seed=42,delayfor=5ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Drop: 0.02, Delay: 0.01, Duplicate: 0.03, Corrupt: 0.04, Panic: 0.05, Seed: 42, DelayFor: 5 * time.Millisecond}
	if spec != want {
		t.Fatalf("spec = %+v, want %+v", spec, want)
	}
	if empty, err := ParseSpec(""); err != nil || !empty.Zero() {
		t.Fatalf("empty spec = %+v, %v", empty, err)
	}
	for _, bad := range []string{
		"drop",           // no value
		"drop=2",         // rate outside [0,1]
		"drop=-0.1",      // negative rate
		"warp=0.5",       // unknown key
		"seed=x",         // malformed seed
		"delayfor=fast",  // malformed duration
		"drop=one-in-10", // malformed rate
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// --- injector ----------------------------------------------------------------------

// memTransport collects sent payloads; a minimal dist.Transport.
type memTransport struct {
	mu   sync.Mutex
	sent [][]byte
}

func (m *memTransport) Send(p []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := make([]byte, len(p))
	copy(cp, p)
	m.sent = append(m.sent, cp)
	return nil
}

func (m *memTransport) Receive() ([]byte, error) { return nil, nil }
func (m *memTransport) Close() error             { return nil }

func (m *memTransport) payloads() [][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([][]byte, len(m.sent))
	copy(out, m.sent)
	return out
}

func runInjector(t *testing.T, spec Spec, n int) (*Injector, *memTransport) {
	t.Helper()
	inner := &memTransport{}
	inj, err := InjectTransport(inner, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	inj.sleep = func(time.Duration) {} // no real waiting in tests
	for i := 0; i < n; i++ {
		if err := inj.Send([]byte{byte(i), byte(i >> 8), 0xAA}); err != nil {
			t.Fatal(err)
		}
	}
	return inj, inner
}

func TestInjectorReplaysFromSeed(t *testing.T) {
	spec := Spec{Drop: 0.1, Delay: 0.1, Duplicate: 0.1, Corrupt: 0.1, Seed: 42}
	inj1, mem1 := runInjector(t, spec, 300)
	inj2, mem2 := runInjector(t, spec, 300)
	if inj1.Stats() != inj2.Stats() {
		t.Fatalf("same seed, different stats: %+v vs %+v", inj1.Stats(), inj2.Stats())
	}
	p1, p2 := mem1.payloads(), mem2.payloads()
	if len(p1) != len(p2) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if !bytes.Equal(p1[i], p2[i]) {
			t.Fatalf("payload %d differs between replays", i)
		}
	}
	st := inj1.Stats()
	if st.Sent != 300 || st.Dropped == 0 || st.Duplicated == 0 || st.Corrupted == 0 || st.Delayed == 0 {
		t.Fatalf("expected every fault kind at 10%% over 300 sends: %+v", st)
	}
	// A different seed must produce a different fault sequence.
	spec.Seed = 43
	inj3, _ := runInjector(t, spec, 300)
	if inj3.Stats() == inj1.Stats() {
		t.Fatalf("different seeds, identical stats: %+v", inj3.Stats())
	}
}

func TestInjectorFaultKinds(t *testing.T) {
	// Drop everything: nothing reaches the inner transport.
	inj, mem := runInjector(t, Spec{Drop: 1}, 10)
	if got := len(mem.payloads()); got != 0 {
		t.Fatalf("drop=1 delivered %d messages", got)
	}
	if inj.Stats().Dropped != 10 {
		t.Fatalf("dropped = %d", inj.Stats().Dropped)
	}
	// Duplicate everything: twice the messages.
	_, mem = runInjector(t, Spec{Duplicate: 1}, 10)
	if got := len(mem.payloads()); got != 20 {
		t.Fatalf("dup=1 delivered %d messages", got)
	}
	// Corrupt everything: payloads differ from the original.
	_, mem = runInjector(t, Spec{Corrupt: 1}, 1)
	if got := mem.payloads(); len(got) != 1 || bytes.Equal(got[0], []byte{0, 0, 0xAA}) {
		t.Fatalf("corrupt=1 delivered pristine payload %v", got)
	}
	// Rates outside [0,1] are refused.
	if _, err := InjectTransport(&memTransport{}, Spec{Drop: 1.5}, nil); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := InjectTransport(nil, Spec{}, nil); err == nil {
		t.Fatal("nil transport accepted")
	}
}

func TestInjectorRecordsToLog(t *testing.T) {
	log := NewLog(0)
	inner := &memTransport{}
	inj, err := InjectTransport(inner, Spec{Drop: 1}, log)
	if err != nil {
		t.Fatal(err)
	}
	_ = inj.Send([]byte("x"))
	if log.Total() != 1 || log.CountByKind(Transport) != 1 {
		t.Fatalf("log: total=%d transport=%d", log.Total(), log.CountByKind(Transport))
	}
}

// --- fault log ---------------------------------------------------------------------

func TestLogBoundsRetention(t *testing.T) {
	log := NewLog(4)
	for i := 0; i < 10; i++ {
		log.Record(Fault{Kind: Panic, Component: "C", Detail: fmt.Sprintf("f%d", i)})
	}
	if log.Total() != 10 {
		t.Fatalf("total = %d", log.Total())
	}
	faults := log.Faults()
	if len(faults) != 4 {
		t.Fatalf("retained %d, want 4", len(faults))
	}
	if faults[0].Detail != "f6" || faults[3].Detail != "f9" {
		t.Fatalf("retained wrong window: %v ... %v", faults[0].Detail, faults[3].Detail)
	}
	if log.CountByKind(Panic) != 10 {
		t.Fatalf("panic count survives eviction: %d", log.CountByKind(Panic))
	}
}

// --- circuit breaker ---------------------------------------------------------------

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	br := NewBreaker(2, 100*time.Millisecond)
	br.SetClock(func() time.Time { return now })

	boom := errors.New("boom")
	if br.State() != Closed || !br.Allow() {
		t.Fatal("breaker not closed initially")
	}
	br.Observe(boom)
	if br.State() != Closed {
		t.Fatal("opened below threshold")
	}
	br.Observe(boom)
	if br.State() != Open || br.Allow() {
		t.Fatalf("state after threshold = %v", br.State())
	}
	if br.Trips() != 1 {
		t.Fatalf("trips = %d", br.Trips())
	}
	// Cooldown elapses: half-open admits a trial.
	now = now.Add(101 * time.Millisecond)
	if br.State() != HalfOpen || !br.Allow() {
		t.Fatalf("state after cooldown = %v", br.State())
	}
	// Failed trial re-opens immediately.
	br.Observe(boom)
	if br.State() != Open || br.Trips() != 2 {
		t.Fatalf("failed trial: state=%v trips=%d", br.State(), br.Trips())
	}
	// Successful trial closes.
	now = now.Add(101 * time.Millisecond)
	br.Observe(nil)
	if br.State() != Closed || !br.Allow() {
		t.Fatalf("successful trial: state=%v", br.State())
	}
	// A success between failures resets the consecutive count.
	br.Observe(boom)
	br.Observe(nil)
	br.Observe(boom)
	if br.State() != Closed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

// --- port wrappers -----------------------------------------------------------------

// scriptedPort fails the first n operations, then succeeds. It is
// concurrency-safe: TimeoutPort runs operations on their own
// goroutines.
type scriptedPort struct {
	failures int
	err      error
	block    chan struct{} // when non-nil, operations block until closed

	mu    sync.Mutex
	calls int
}

func (p *scriptedPort) op() error {
	if p.block != nil {
		<-p.block
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if p.calls <= p.failures {
		return p.err
	}
	return nil
}

func (p *scriptedPort) callCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

func (p *scriptedPort) Send(*thread.Env, string, any) error { return p.op() }

func (p *scriptedPort) Call(*thread.Env, string, any) (any, error) {
	if err := p.op(); err != nil {
		return nil, err
	}
	return "ok", nil
}

func TestRetryPortBacksOffExponentially(t *testing.T) {
	inner := &scriptedPort{failures: 2, err: errors.New("flaky")}
	var slept []time.Duration
	rp, err := NewRetryPort(inner, Backoff{
		Attempts: 4, Base: time.Millisecond, Max: 100 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Send(nil, "op", nil); err != nil {
		t.Fatalf("send after retries: %v", err)
	}
	if rp.Retries() != 2 || inner.callCount() != 3 {
		t.Fatalf("retries=%d calls=%d", rp.Retries(), inner.callCount())
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("backoff sequence = %v", slept)
	}
}

func TestRetryPortExhaustsAttempts(t *testing.T) {
	inner := &scriptedPort{failures: 100, err: errors.New("down")}
	rp, err := NewRetryPort(inner, Backoff{Attempts: 3, Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.Call(nil, "op", nil); err == nil || !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("exhausted call: %v", err)
	}
	if inner.callCount() != 3 {
		t.Fatalf("calls = %d", inner.callCount())
	}
}

func TestRetryPortRespectsNonRetryable(t *testing.T) {
	inner := &scriptedPort{failures: 100, err: fmt.Errorf("wrapped: %w", ErrCircuitOpen)}
	rp, err := NewRetryPort(inner, Backoff{Sleep: func(time.Duration) {}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.Send(nil, "op", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("send: %v", err)
	}
	if inner.callCount() != 1 {
		t.Fatalf("retried a non-retryable error %d times", inner.callCount()-1)
	}
}

func TestTimeoutPortReleasesCaller(t *testing.T) {
	block := make(chan struct{})
	inner := &scriptedPort{block: block}
	tp, err := NewTimeoutPort(inner, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Call(nil, "op", nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("call: %v", err)
	}
	if tp.Timeouts() != 1 {
		t.Fatalf("timeouts = %d", tp.Timeouts())
	}
	close(block) // release the stray goroutine
	if err := tp.Send(nil, "op", nil); err != nil {
		t.Fatalf("send after release: %v", err)
	}
	if _, err := NewTimeoutPort(inner, 0); err == nil {
		t.Fatal("zero deadline accepted")
	}
}

func TestBreakerPortFailsFast(t *testing.T) {
	inner := &scriptedPort{failures: 2, err: errors.New("down")}
	br := NewBreaker(2, time.Hour)
	bp, err := NewBreakerPort(inner, br)
	if err != nil {
		t.Fatal(err)
	}
	_ = bp.Send(nil, "op", nil)
	_ = bp.Send(nil, "op", nil)
	if br.State() != Open {
		t.Fatalf("state = %v", br.State())
	}
	// The circuit is open: the inner port is no longer hammered.
	if err := bp.Send(nil, "op", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("send while open: %v", err)
	}
	if _, err := bp.Call(nil, "op", nil); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("call while open: %v", err)
	}
	if inner.callCount() != 2 {
		t.Fatalf("inner called %d times while open", inner.callCount())
	}
}

func TestHardenLayersWrappers(t *testing.T) {
	inner := &scriptedPort{}
	p, err := Harden(inner, HardenOptions{
		Timeout: time.Second,
		Breaker: NewBreaker(0, 0),
		Retry:   &Backoff{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Retry is outermost so backoff spans breaker verdicts and timeouts.
	if _, ok := p.(*RetryPort); !ok {
		t.Fatalf("outermost wrapper is %T, want *RetryPort", p)
	}
	if err := p.Send(nil, "op", nil); err != nil {
		t.Fatal(err)
	}
	// No options: the port passes through untouched.
	if q, err := Harden(inner, HardenOptions{}); err != nil || q != membrane.Port(inner) {
		t.Fatalf("empty options: %T, %v", q, err)
	}
}

// --- panic isolation ---------------------------------------------------------------

// bombContent panics on the "boom" op, succeeds otherwise.
type bombContent struct {
	inits int
	calls int
}

func (b *bombContent) Init(*membrane.Services) error { b.inits++; return nil }

func (b *bombContent) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	if op == "boom" {
		panic("kaboom")
	}
	b.calls++
	return "ok", nil
}

func TestPanicInterceptorIsolatesComponent(t *testing.T) {
	log := NewLog(0)
	var notified []Fault
	pi := NewPanicInterceptor("C", log, func(component string, f Fault) {
		notified = append(notified, f)
	})
	content := &bombContent{}
	m, err := membrane.New("C", content, pi)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Dispatch(&membrane.Invocation{Interface: "in", Op: "work"}); err != nil {
		t.Fatal(err)
	}
	// The panic is converted, not propagated.
	_, err = m.Dispatch(&membrane.Invocation{Interface: "in", Op: "boom"})
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("panic dispatch: %v", err)
	}
	if pi.Recovered() != 1 || log.CountByKind(Panic) != 1 || len(notified) != 1 {
		t.Fatalf("recovered=%d logged=%d notified=%d", pi.Recovered(), log.CountByKind(Panic), len(notified))
	}
	if notified[0].Component != "C" || notified[0].Op != "in.boom" {
		t.Fatalf("notified fault = %+v", notified[0])
	}
	// The component is FAILED: further invocations are refused with the cause.
	if failed, cause := m.Lifecycle().Failure(); !failed || !errors.Is(cause, ErrPanic) {
		t.Fatalf("failure = %v, %v", failed, cause)
	}
	_, err = m.Dispatch(&membrane.Invocation{Interface: "in", Op: "work"})
	if !errors.Is(err, membrane.ErrFailed) {
		t.Fatalf("dispatch while failed: %v", err)
	}
	// Restart (the supervisor's path) clears the failure.
	if err := m.Lifecycle().Start(); err != nil {
		t.Fatal(err)
	}
	if failed, _ := m.Lifecycle().Failure(); failed {
		t.Fatal("failure survives restart")
	}
	if _, err := m.Dispatch(&membrane.Invocation{Interface: "in", Op: "work"}); err != nil {
		t.Fatalf("dispatch after restart: %v", err)
	}
	if content.inits != 2 {
		t.Fatalf("inits = %d, want re-init on restart", content.inits)
	}
}

func TestChaosInterceptorIsDeterministic(t *testing.T) {
	count := func(seed int64) int64 {
		ci := NewChaosInterceptor(0.3, seed)
		next := func(*membrane.Invocation) (any, error) { return nil, nil }
		for i := 0; i < 200; i++ {
			func() {
				defer func() { _ = recover() }()
				_, _ = ci.Invoke(&membrane.Invocation{Interface: "in", Op: "op"}, next)
			}()
		}
		return ci.Panics()
	}
	a, b := count(9), count(9)
	if a != b {
		t.Fatalf("same seed: %d vs %d panics", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("rate 0.3 produced %d/200 panics", a)
	}
}

// --- supervisor --------------------------------------------------------------------

// fakeRestarter records lifecycle requests.
type fakeRestarter struct {
	mu       sync.Mutex
	restarts []string
	stops    []string
	err      error
}

func (f *fakeRestarter) Restart(c string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.restarts = append(f.restarts, c)
	return f.err
}

func (f *fakeRestarter) Stop(c string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stops = append(f.stops, c)
	return f.err
}

func TestSupervisorRestartsOnNotify(t *testing.T) {
	r := &fakeRestarter{}
	log := NewLog(0)
	sup, err := NewSupervisor(r, WithLog(log))
	if err != nil {
		t.Fatal(err)
	}
	sup.Watch("C", Policy{Directive: RestartOneForOne})
	sup.Notify("C", Fault{Kind: Panic, Component: "C", Detail: "kaboom"})
	acted := sup.Poll()
	if len(acted) != 1 || acted[0].Kind != "restart" || acted[0].Component != "C" {
		t.Fatalf("actions = %+v", acted)
	}
	if len(r.restarts) != 1 {
		t.Fatalf("restarts = %v", r.restarts)
	}
	if log.Total() != 1 {
		t.Fatalf("notify not logged: %d", log.Total())
	}
	// Nothing pending: the next poll is quiet.
	if acted := sup.Poll(); len(acted) != 0 {
		t.Fatalf("quiet poll acted: %+v", acted)
	}
	// Faults for unwatched components are logged but not acted on.
	sup.Notify("Ghost", Fault{Kind: Panic, Component: "Ghost"})
	if acted := sup.Poll(); len(acted) != 0 {
		t.Fatalf("acted on unwatched component: %+v", acted)
	}
}

func TestSupervisorQuarantinesAfterBudget(t *testing.T) {
	r := &fakeRestarter{}
	now := time.Unix(0, 0)
	var escalated []string
	sup, err := NewSupervisor(r,
		WithClock(func() time.Time { return now }),
		WithEscalationHandler(func(component, reason string) { escalated = append(escalated, component) }))
	if err != nil {
		t.Fatal(err)
	}
	sup.Watch("C", Policy{Directive: RestartOneForOne, MaxRestarts: 2, Window: time.Minute})
	for i := 0; i < 2; i++ {
		sup.Notify("C", Fault{Kind: Panic, Component: "C"})
		if acted := sup.Poll(); acted[0].Kind != "restart" {
			t.Fatalf("round %d: %+v", i, acted)
		}
		now = now.Add(time.Second)
	}
	// Budget exhausted within the window: quarantine + escalate.
	sup.Notify("C", Fault{Kind: Panic, Component: "C"})
	acted := sup.Poll()
	if len(acted) != 1 || acted[0].Kind != "quarantine" {
		t.Fatalf("exhausted budget: %+v", acted)
	}
	if !sup.Quarantined("C") || len(r.stops) != 1 || len(escalated) != 1 {
		t.Fatalf("quarantined=%v stops=%v escalated=%v", sup.Quarantined("C"), r.stops, escalated)
	}
	// Quarantined components are left alone.
	sup.Notify("C", Fault{Kind: Panic, Component: "C"})
	if acted := sup.Poll(); len(acted) != 0 {
		t.Fatalf("acted on quarantined component: %+v", acted)
	}
	// Outside the window the budget would have been available again:
	// restart history pruning is per-window.
	sup2, _ := NewSupervisor(r, WithClock(func() time.Time { return now }))
	sup2.Watch("D", Policy{Directive: RestartOneForOne, MaxRestarts: 1, Window: time.Second})
	sup2.Notify("D", Fault{Kind: Panic, Component: "D"})
	sup2.Poll()
	now = now.Add(2 * time.Second) // first restart ages out
	sup2.Notify("D", Fault{Kind: Panic, Component: "D"})
	if acted := sup2.Poll(); len(acted) != 1 || acted[0].Kind != "restart" {
		t.Fatalf("aged-out budget: %+v", acted)
	}
}

func TestSupervisorDirectives(t *testing.T) {
	r := &fakeRestarter{}
	var escalated []string
	sup, err := NewSupervisor(r, WithEscalationHandler(func(c, _ string) { escalated = append(escalated, c) }))
	if err != nil {
		t.Fatal(err)
	}
	sup.Watch("Q", Policy{Directive: Quarantine})
	sup.Watch("E", Policy{Directive: Escalate})
	sup.Notify("Q", Fault{Kind: Panic, Component: "Q"})
	sup.Notify("E", Fault{Kind: Panic, Component: "E"})
	acted := sup.Poll()
	if len(acted) != 2 {
		t.Fatalf("actions = %+v", acted)
	}
	kinds := map[string]string{}
	for _, a := range acted {
		kinds[a.Component] = a.Kind
	}
	if kinds["Q"] != "quarantine" || kinds["E"] != "escalate" {
		t.Fatalf("kinds = %v", kinds)
	}
	if !sup.Quarantined("Q") || len(r.stops) != 1 || len(r.restarts) != 0 {
		t.Fatalf("quarantine effect: stops=%v restarts=%v", r.stops, r.restarts)
	}
	if len(escalated) != 1 || escalated[0] != "E" {
		t.Fatalf("escalated = %v", escalated)
	}
	if _, err := NewSupervisor(nil); err == nil {
		t.Fatal("nil restarter accepted")
	}
}

func TestSupervisorBackgroundLoop(t *testing.T) {
	r := &fakeRestarter{}
	sup, err := NewSupervisor(r)
	if err != nil {
		t.Fatal(err)
	}
	sup.Watch("C", Policy{Directive: RestartOneForOne, MaxRestarts: 100})
	sup.Start(time.Millisecond)
	defer sup.Close()
	sup.Notify("C", Fault{Kind: Panic, Component: "C"})
	deadline := time.After(2 * time.Second)
	for {
		r.mu.Lock()
		n := len(r.restarts)
		r.mu.Unlock()
		if n >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background loop never acted")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	sup.Close()
	sup.Close() // idempotent
}

// --- probes ------------------------------------------------------------------------

func TestFailureProbe(t *testing.T) {
	failed, cause := false, error(nil)
	p := FailureProbe(func() (bool, error) { return failed, cause })
	if h := p(); !h.Healthy {
		t.Fatalf("healthy component flagged: %+v", h)
	}
	failed, cause = true, errors.New("kaboom")
	if h := p(); h.Healthy || !strings.Contains(h.Reason, "kaboom") {
		t.Fatalf("failed component not flagged: %+v", h)
	}
}

func TestOverflowProbeWatchesDeltas(t *testing.T) {
	stats := comm.Stats{Enqueued: 100}
	p := OverflowProbe("buf", func() comm.Stats { return stats }, 0.05)
	if h := p(); !h.Healthy { // first window: no drops
		t.Fatalf("clean window flagged: %+v", h)
	}
	stats.Enqueued, stats.Dropped = 150, 20 // 20/70 dropped this window
	if h := p(); h.Healthy {
		t.Fatal("28% overflow window not flagged")
	}
	stats.Enqueued = 250 // next window clean again: the probe resets
	if h := p(); !h.Healthy {
		t.Fatalf("recovered window flagged: %+v", h)
	}
	if h := p(); !h.Healthy { // idle window (nothing offered)
		t.Fatalf("idle window flagged: %+v", h)
	}
}

func TestMissProbeWatchesDeltas(t *testing.T) {
	var misses int64
	p := MissProbe(func() int64 { return misses }, 0)
	if h := p(); !h.Healthy {
		t.Fatalf("no misses flagged: %+v", h)
	}
	misses = 3
	if h := p(); h.Healthy {
		t.Fatal("3 new misses not flagged")
	}
	if h := p(); !h.Healthy { // no new misses since last poll
		t.Fatalf("stale misses flagged: %+v", h)
	}
}
