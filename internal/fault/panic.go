package fault

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"soleil/internal/membrane"
)

// PanicInterceptor is a membrane control component that converts
// content panics into recorded faults: the panic is recovered, the
// component's lifecycle flips to FAILED (isolating it from further
// invocations until a supervisor restarts it), and the invocation
// fails with ErrPanic instead of crashing the process.
//
// Deploy it outermost on the server-side chain so panics escaping
// any inner interceptor are caught too. The membrane attaches the
// lifecycle controller automatically (membrane.LifecycleAware).
type PanicInterceptor struct {
	component string
	log       *Log
	notify    func(component string, f Fault)
	lc        *membrane.LifecycleController
	recovered int64
}

var (
	_ membrane.Interceptor    = (*PanicInterceptor)(nil)
	_ membrane.LifecycleAware = (*PanicInterceptor)(nil)
)

// NewPanicInterceptor creates the interceptor for one component. log
// and notify may be nil; notify is called (outside any membrane lock)
// after each recovered panic — the supervisor's push signal.
func NewPanicInterceptor(component string, log *Log, notify func(string, Fault)) *PanicInterceptor {
	return &PanicInterceptor{component: component, log: log, notify: notify}
}

// Name implements membrane.Interceptor.
func (p *PanicInterceptor) Name() string { return "panic-interceptor" }

// AttachLifecycle implements membrane.LifecycleAware.
func (p *PanicInterceptor) AttachLifecycle(lc *membrane.LifecycleController) { p.lc = lc }

// Recovered returns the number of panics converted so far.
func (p *PanicInterceptor) Recovered() int64 { return atomic.LoadInt64(&p.recovered) }

// Invoke implements membrane.Interceptor.
func (p *PanicInterceptor) Invoke(inv *membrane.Invocation, next membrane.Handler) (res any, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		atomic.AddInt64(&p.recovered, 1)
		op := inv.Interface + "." + inv.Op
		f := Fault{Kind: Panic, Component: p.component, Op: op, Detail: fmt.Sprint(r)}
		if p.log != nil {
			p.log.Record(f)
		}
		cause := fmt.Errorf("%w: %s on %s: %v", ErrPanic, p.component, op, r)
		if p.lc != nil {
			p.lc.Fail(cause)
		}
		if p.notify != nil {
			p.notify(p.component, f)
		}
		res, err = nil, cause
	}()
	return next(inv)
}

// ChaosInterceptor deliberately panics on a seeded fraction of
// invocations — the invocation-level counterpart of the transport
// Injector, used to drive a system "under injected faults". Pair it
// with a PanicInterceptor deployed outside it.
type ChaosInterceptor struct {
	rate float64
	mu   sync.Mutex
	rng  *rand.Rand
	hits int64
}

var _ membrane.Interceptor = (*ChaosInterceptor)(nil)

// NewChaosInterceptor creates an interceptor panicking on rate of
// invocations, deterministically from seed.
func NewChaosInterceptor(rate float64, seed int64) *ChaosInterceptor {
	return &ChaosInterceptor{rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Name implements membrane.Interceptor.
func (c *ChaosInterceptor) Name() string { return "chaos-interceptor" }

// Panics returns the number of panics injected so far.
func (c *ChaosInterceptor) Panics() int64 { return atomic.LoadInt64(&c.hits) }

// Invoke implements membrane.Interceptor.
func (c *ChaosInterceptor) Invoke(inv *membrane.Invocation, next membrane.Handler) (any, error) {
	c.mu.Lock()
	hit := c.rng.Float64() < c.rate
	c.mu.Unlock()
	if hit {
		atomic.AddInt64(&c.hits, 1)
		panic(fmt.Sprintf("chaos: injected panic on %s.%s", inv.Interface, inv.Op))
	}
	return next(inv)
}
