package fault

import (
	"fmt"
	"sync"
	"time"

	"soleil/internal/comm"
	"soleil/internal/obs"
	"soleil/internal/trace"
)

// Restarter applies lifecycle operations to components — the
// supervisor's effector. reconfig.Manager satisfies it, so restarts
// flow through the audited reconfiguration path.
type Restarter interface {
	Restart(component string) error
	Stop(component string) error
}

// Directive selects what the supervisor does with an unhealthy
// component.
type Directive int

// Directives.
const (
	// RestartOneForOne restarts just the failed component, escalating
	// to quarantine when the restart budget is exhausted.
	RestartOneForOne Directive = iota
	// Quarantine stops the component and leaves it stopped.
	Quarantine
	// Escalate takes no action and invokes the escalation handler.
	Escalate
)

func (d Directive) String() string {
	switch d {
	case RestartOneForOne:
		return "one-for-one"
	case Quarantine:
		return "quarantine"
	case Escalate:
		return "escalate"
	default:
		return fmt.Sprintf("Directive(%d)", int(d))
	}
}

// Policy is one component's supervision policy.
type Policy struct {
	Directive Directive
	// MaxRestarts bounds restarts within Window before the component
	// is quarantined (default 5).
	MaxRestarts int
	// Window is the restart-budget window (default 10s).
	Window time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = 5
	}
	if p.Window <= 0 {
		p.Window = 10 * time.Second
	}
	return p
}

// Health is one probe observation.
type Health struct {
	Healthy bool
	Reason  string
}

// Healthy is the all-clear observation.
var healthyState = Health{Healthy: true}

// Probe observes one health signal of a component. Probes are polled
// by the supervisor; they must be safe for concurrent use with the
// component's execution.
type Probe func() Health

// Action is one decision the supervisor took.
type Action struct {
	At        time.Time
	Component string
	Kind      string // "restart", "quarantine", "escalate"
	Reason    string
	Err       error
}

func (a Action) String() string {
	if a.Err != nil {
		return fmt.Sprintf("%s %s (%s): %v", a.Kind, a.Component, a.Reason, a.Err)
	}
	return fmt.Sprintf("%s %s (%s)", a.Kind, a.Component, a.Reason)
}

type watch struct {
	policy      Policy
	probes      []Probe
	pending     []Fault
	restarts    []time.Time
	quarantined bool
}

// Supervisor watches per-component health signals — pushed faults
// (from panic interceptors or hardened bindings) and polled probes
// (buffer overflow rate, deadline misses, latency) — and applies its
// restart policies through a Restarter.
type Supervisor struct {
	restarter  Restarter
	log        *Log
	now        func() time.Time
	onEscalate func(component, reason string)
	metrics    *obs.Registry

	mu      sync.Mutex
	watches map[string]*watch
	actions []Action

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// SupervisorOption configures a Supervisor.
type SupervisorOption func(*Supervisor)

// WithLog records every fault the supervisor sees into log.
func WithLog(log *Log) SupervisorOption {
	return func(s *Supervisor) { s.log = log }
}

// WithClock injects the supervisor's clock (tests).
func WithClock(now func() time.Time) SupervisorOption {
	return func(s *Supervisor) { s.now = now }
}

// WithEscalationHandler installs the handler invoked on escalation
// (explicit Escalate directive or an exhausted restart budget).
func WithEscalationHandler(h func(component, reason string)) SupervisorOption {
	return func(s *Supervisor) { s.onEscalate = h }
}

// NewSupervisor creates a supervisor applying policies through r.
func NewSupervisor(r Restarter, opts ...SupervisorOption) (*Supervisor, error) {
	if r == nil {
		return nil, fmt.Errorf("fault: supervisor needs a restarter")
	}
	s := &Supervisor{restarter: r, now: time.Now, watches: make(map[string]*watch)}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// Watch registers a component under policy with its health probes.
// Watching an already-watched component replaces its policy and
// probes but keeps its restart history.
func (s *Supervisor) Watch(component string, policy Policy, probes ...Probe) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.watches[component]
	if !ok {
		w = &watch{}
		s.watches[component] = w
	}
	w.policy = policy.withDefaults()
	w.probes = probes
}

// Notify pushes a fault for a watched component; the next Poll acts
// on it. It is the wiring target for PanicInterceptor's notify hook.
func (s *Supervisor) Notify(component string, f Fault) {
	if s.log != nil {
		s.log.Record(f)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok := s.watches[component]; ok {
		w.pending = append(w.pending, f)
	}
}

// Actions returns the decision history.
func (s *Supervisor) Actions() []Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Action, len(s.actions))
	copy(out, s.actions)
	return out
}

// Quarantined reports whether a component has been quarantined.
func (s *Supervisor) Quarantined(component string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.watches[component]
	return ok && w.quarantined
}

// Poll runs one evaluation pass over every watched component and
// returns the actions taken. Deterministic drivers (tests, the soak
// scenario) call it directly; Start runs it on an interval.
func (s *Supervisor) Poll() []Action {
	type verdict struct {
		component string
		w         *watch
		reason    string
	}
	s.mu.Lock()
	var unhealthy []verdict
	for name, w := range s.watches {
		if w.quarantined {
			w.pending = nil
			continue
		}
		reason := ""
		if len(w.pending) > 0 {
			reason = fmt.Sprintf("%d fault(s), last: %s", len(w.pending), w.pending[len(w.pending)-1].Detail)
			w.pending = nil
		}
		for _, probe := range w.probes {
			if h := probe(); !h.Healthy {
				if reason != "" {
					reason += "; "
				}
				reason += h.Reason
			}
		}
		if reason != "" {
			unhealthy = append(unhealthy, verdict{name, w, reason})
		}
	}
	s.mu.Unlock()

	var acted []Action
	for _, v := range unhealthy {
		acted = append(acted, s.apply(v.component, v.w, v.reason))
	}
	s.mu.Lock()
	s.actions = append(s.actions, acted...)
	s.mu.Unlock()
	return acted
}

func (s *Supervisor) apply(component string, w *watch, reason string) Action {
	now := s.now()
	a := Action{At: now, Component: component, Reason: reason}
	switch w.policy.Directive {
	case Quarantine:
		a.Kind = "quarantine"
		a.Err = s.restarter.Stop(component)
		s.mu.Lock()
		w.quarantined = true
		s.mu.Unlock()
	case Escalate:
		a.Kind = "escalate"
		if s.onEscalate != nil {
			s.onEscalate(component, reason)
		}
	default: // RestartOneForOne
		s.mu.Lock()
		// Prune restarts outside the budget window.
		kept := w.restarts[:0]
		for _, t := range w.restarts {
			if now.Sub(t) < w.policy.Window {
				kept = append(kept, t)
			}
		}
		w.restarts = kept
		exhausted := len(w.restarts) >= w.policy.MaxRestarts
		if !exhausted {
			w.restarts = append(w.restarts, now)
		} else {
			w.quarantined = true
		}
		s.mu.Unlock()
		if exhausted {
			a.Kind = "quarantine"
			a.Reason = fmt.Sprintf("restart budget exhausted (%d in %v); %s",
				w.policy.MaxRestarts, w.policy.Window, reason)
			a.Err = s.restarter.Stop(component)
			if s.onEscalate != nil {
				s.onEscalate(component, a.Reason)
			}
		} else {
			a.Kind = "restart"
			a.Err = s.restarter.Restart(component)
		}
	}
	if s.metrics != nil {
		cm := s.metrics.Component(component)
		switch a.Kind {
		case "restart":
			if a.Err == nil {
				cm.Restarts.Inc()
				cm.Event(obs.EvLifecycleRestart, cm.Restarts.Load(), obs.SpanContext{})
			}
		case "quarantine":
			cm.SetHealthy(false)
			cm.Event(obs.EvLifecycleQuarantine, 0, obs.SpanContext{})
			cm.FlightRecorder().Trigger("quarantine")
		}
	}
	return a
}

// Start polls on interval until Close. One loop at a time.
func (s *Supervisor) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				s.Poll()
			}
		}
	}(s.stop, s.done)
}

// Close stops the polling loop (if running) and waits for it.
func (s *Supervisor) Close() {
	s.loopMu.Lock()
	defer s.loopMu.Unlock()
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop, s.done = nil, nil
}

// --- probes ----------------------------------------------------------------------

// FailureProbe reports unhealthy while failed() is true — the pull
// counterpart of PanicInterceptor's notify, built from
// assembly.(*System).ComponentFailed or membrane lifecycle state.
func FailureProbe(failed func() (bool, error)) Probe {
	return func() Health {
		isFailed, cause := failed()
		if !isFailed {
			return healthyState
		}
		return Health{Reason: fmt.Sprintf("lifecycle FAILED: %v", cause)}
	}
}

// OverflowProbe watches a buffer's overflow rate between polls:
// unhealthy when more than maxRate of the messages offered since the
// last poll were dropped. stats is typically a comm buffer's Stats
// method.
func OverflowProbe(name string, stats func() comm.Stats, maxRate float64) Probe {
	var last comm.Stats
	var mu sync.Mutex
	return func() Health {
		cur := stats()
		mu.Lock()
		offered := (cur.Enqueued + cur.Dropped) - (last.Enqueued + last.Dropped)
		dropped := cur.Dropped - last.Dropped
		last = cur
		mu.Unlock()
		if offered <= 0 {
			return healthyState
		}
		if rate := float64(dropped) / float64(offered); rate > maxRate {
			return Health{Reason: fmt.Sprintf("buffer %s overflow rate %.1f%% (max %.1f%%)",
				name, rate*100, maxRate*100)}
		}
		return healthyState
	}
}

// MissProbe watches a deadline-miss counter between polls: unhealthy
// when more than maxNew misses arrived since the last poll. misses is
// typically a sched task's cumulative miss count.
func MissProbe(misses func() int64, maxNew int64) Probe {
	var last int64
	var mu sync.Mutex
	return func() Health {
		cur := misses()
		mu.Lock()
		delta := cur - last
		last = cur
		mu.Unlock()
		if delta > maxNew {
			return Health{Reason: fmt.Sprintf("%d deadline misses since last poll (max %d)", delta, maxNew)}
		}
		return healthyState
	}
}

// LatencyProbe watches a trace collector's steady-state distribution:
// unhealthy when the p99 execution time exceeds bound. The collector
// is the same one the benchmarking harness feeds.
func LatencyProbe(col *trace.Collector, bound time.Duration) Probe {
	return func() Health {
		if col == nil || col.Len() == 0 {
			return healthyState
		}
		if p99 := col.Summarize().P99; p99 > bound {
			return Health{Reason: fmt.Sprintf("p99 %v exceeds bound %v", p99, bound)}
		}
		return healthyState
	}
}
