package fault

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/dist"
	"soleil/internal/membrane"
	"soleil/internal/model"
	"soleil/internal/reconfig"
	"soleil/internal/rtsj/thread"
)

// soakTick is the distributed payload of the soak scenario.
type soakTick struct {
	Seq int
}

// soakSource emits ticks through its "out" port.
type soakSource struct {
	svc *membrane.Services
	seq int
}

func (s *soakSource) Init(svc *membrane.Services) error { s.svc = svc; return nil }

func (s *soakSource) Invoke(*thread.Env, string, string, any) (any, error) {
	return nil, errors.New("source serves nothing")
}

func (s *soakSource) Activate(env *thread.Env) error {
	s.seq++
	port, err := s.svc.Port("out")
	if err != nil {
		return err
	}
	return port.Send(env, "tick", soakTick{Seq: s.seq})
}

// soakSink counts ticks but panics on every panicEvery-th delivery.
type soakSink struct {
	panicEvery int
	received   int64
	inits      int64
}

func (s *soakSink) Init(*membrane.Services) error { atomic.AddInt64(&s.inits, 1); return nil }

func (s *soakSink) Invoke(env *thread.Env, itf, op string, arg any) (any, error) {
	t, ok := arg.(soakTick)
	if !ok {
		return nil, errors.New("sink received a foreign payload")
	}
	if s.panicEvery > 0 && t.Seq%s.panicEvery == 0 {
		panic("soak: sink firmware bug")
	}
	atomic.AddInt64(&s.received, 1)
	return nil, nil
}

func soakProducer(t *testing.T, content membrane.Content) *assembly.System {
	t.Helper()
	a := model.NewArchitecture("soak-producer")
	src, err := a.NewActive("Source", model.Activation{Kind: model.SporadicActivation})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.AddInterface(model.Interface{Name: "out", Role: model.ClientRole, Signature: "ITick"}); err != nil {
		t.Fatal(err)
	}
	if err := src.SetContent("SourceImpl"); err != nil {
		t.Fatal(err)
	}
	td, _ := a.NewThreadDomain("rt", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	if err := a.AddChild(imm, td); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, src); err != nil {
		t.Fatal(err)
	}
	reg := assembly.NewRegistry()
	if err := reg.Register("SourceImpl", func() membrane.Content { return content }); err != nil {
		t.Fatal(err)
	}
	sys, err := assembly.Deploy(a, assembly.Config{Mode: assembly.Soleil, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// soakConsumer deploys a passive sink guarded by a PanicInterceptor.
func soakConsumer(t *testing.T, content membrane.Content, log *Log) *assembly.System {
	t.Helper()
	a := model.NewArchitecture("soak-consumer")
	snk, err := a.NewPassive("Sink")
	if err != nil {
		t.Fatal(err)
	}
	if err := snk.AddInterface(model.Interface{Name: "in", Role: model.ServerRole, Signature: "ITick"}); err != nil {
		t.Fatal(err)
	}
	if err := snk.SetContent("SinkImpl"); err != nil {
		t.Fatal(err)
	}
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	if err := a.AddChild(imm, snk); err != nil {
		t.Fatal(err)
	}
	reg := assembly.NewRegistry()
	if err := reg.Register("SinkImpl", func() membrane.Content { return content }); err != nil {
		t.Fatal(err)
	}
	sys, err := assembly.Deploy(a, assembly.Config{
		Mode:     assembly.Soleil,
		Registry: reg,
		Interceptors: func(component string) []membrane.Interceptor {
			return []membrane.Interceptor{NewPanicInterceptor(component, log, nil)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestSoakDistributedSupervision is the acceptance scenario: two
// systems joined over a lossy transport (2% drops, duplicates,
// corruption), a sink that panics on ~8% of deliveries, a hardened
// export, a self-healing importer and a supervisor restarting the sink
// — the run must complete with restarts, zero crashes and no goroutine
// leaks.
func TestSoakDistributedSupervision(t *testing.T) {
	dist.RegisterPayload(soakTick{})
	baseline := runtime.NumGoroutine()

	const frames = 400
	log := NewLog(0)
	src := &soakSource{}
	snk := &soakSink{panicEvery: 13}
	producer := soakProducer(t, src)
	consumer := soakConsumer(t, snk, log)

	a, b := dist.NewPipe()
	inj, err := InjectTransport(a, Spec{Drop: 0.02, Duplicate: 0.02, Corrupt: 0.02, Seed: 1}, log)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExportHardened(producer, "Source", "out", "in", inj, HardenOptions{
		Timeout: time.Second,
		Breaker: NewBreaker(8, 10*time.Millisecond),
		Retry:   &Backoff{Attempts: 2, Sleep: func(time.Duration) {}},
	}); err != nil {
		t.Fatal(err)
	}
	imp, err := dist.Import(consumer, "Sink", b)
	if err != nil {
		t.Fatal(err)
	}
	var absorbed int64
	imp.SetErrorHandler(func(error) bool { atomic.AddInt64(&absorbed, 1); return true })

	mgr, err := reconfig.NewManager(consumer)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(mgr, WithLog(log))
	if err != nil {
		t.Fatal(err)
	}
	sup.Watch("Sink", Policy{Directive: RestartOneForOne, MaxRestarts: 1000, Window: time.Hour},
		FailureProbe(func() (bool, error) { return consumer.ComponentFailed("Sink") }))
	sup.Start(time.Millisecond)

	if err := producer.Start(); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Start(); err != nil {
		t.Fatal(err)
	}
	go imp.Serve()

	env, closeEnv, err := producer.NewEnv(false)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := producer.Node("Source")
	processed := func() int64 { return imp.Delivered() + imp.Dropped() }
	for i := 0; i < frames; i++ {
		before := processed()
		if err := node.Activate(env); err != nil {
			// The breaker may fail fast while the sink is down; that is
			// the hardening working, not a crash.
			if errors.Is(err, ErrCircuitOpen) {
				continue
			}
			t.Fatalf("frame %d: %v", i, err)
		}
		for wait := 0; processed() == before && wait < 200; wait++ {
			time.Sleep(50 * time.Microsecond)
		}
	}
	if err := inj.Close(); err != nil {
		t.Fatal(err)
	}
	imp.Wait()
	closeEnv()
	sup.Close()
	sup.Poll()

	if err := imp.Err(); err != nil {
		t.Fatalf("importer died: %v", err)
	}
	restarts := 0
	for _, action := range sup.Actions() {
		if action.Kind == "restart" && action.Err == nil {
			restarts++
		}
	}
	if restarts == 0 {
		t.Fatal("supervisor never restarted the sink")
	}
	if got := atomic.LoadInt64(&snk.received); got < frames/2 {
		t.Fatalf("sink received only %d/%d frames", got, frames)
	}
	if atomic.LoadInt64(&snk.inits) < 2 {
		t.Fatal("sink was never re-initialized by a restart")
	}
	if log.CountByKind(Panic) == 0 || inj.Stats().Dropped == 0 {
		t.Fatalf("scenario did not exercise faults: %+v, panics=%d", inj.Stats(), log.CountByKind(Panic))
	}
	if sup.Quarantined("Sink") {
		t.Fatal("sink quarantined despite a generous budget")
	}

	// No goroutine leaks: everything we started has wound down.
	deadline := time.After(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		select {
		case <-deadline:
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Logf("soak: received=%d absorbed=%d restarts=%d injected=%+v",
		snk.received, absorbed, restarts, inj.Stats())
}

// TestSupervisorHealsDeployedComponent walks the full restart path on
// a real deployment: panic -> FAILED -> supervisor poll -> audited
// reconfig restart -> component serving again.
func TestSupervisorHealsDeployedComponent(t *testing.T) {
	log := NewLog(0)
	snk := &soakSink{panicEvery: 13} // panics on tick 13 below
	sys := soakConsumer(t, snk, log)
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	mgr, err := reconfig.NewManager(sys)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewSupervisor(mgr, WithLog(log))
	if err != nil {
		t.Fatal(err)
	}
	sup.Watch("Sink", Policy{Directive: RestartOneForOne},
		FailureProbe(func() (bool, error) { return sys.ComponentFailed("Sink") }))

	env, closeEnv, err := sys.NewEnv(false)
	if err != nil {
		t.Fatal(err)
	}
	defer closeEnv()
	node, _ := sys.Node("Sink")
	if _, err := node.Invoke(env, "in", "tick", soakTick{Seq: 13}); !errors.Is(err, ErrPanic) {
		t.Fatalf("panic invoke: %v", err)
	}
	if failed, cause := sys.ComponentFailed("Sink"); !failed || !errors.Is(cause, ErrPanic) {
		t.Fatalf("component not FAILED: %v, %v", failed, cause)
	}
	// While FAILED, invocations are refused with the recorded cause.
	if _, err := node.Invoke(env, "in", "tick", soakTick{Seq: 2}); !errors.Is(err, membrane.ErrFailed) {
		t.Fatalf("invoke while failed: %v", err)
	}
	// The supervisor notices and restarts through the audited manager.
	acted := sup.Poll()
	if len(acted) != 1 || acted[0].Kind != "restart" || acted[0].Err != nil {
		t.Fatalf("poll: %+v", acted)
	}
	if failed, _ := sys.ComponentFailed("Sink"); failed {
		t.Fatal("restart did not clear FAILED")
	}
	if _, err := node.Invoke(env, "in", "tick", soakTick{Seq: 2}); err != nil {
		t.Fatalf("invoke after restart: %v", err)
	}
	// The restart shows up in the reconfiguration audit trail and the
	// introspection snapshot no longer reports a failure.
	hist := mgr.History()
	if len(hist) != 1 || hist[0].Kind != "restart" || hist[0].Detail != "Sink" {
		t.Fatalf("history = %+v", hist)
	}
	for _, cs := range mgr.Introspect().Components {
		if cs.Name == "Sink" && (cs.Failed || !cs.Started) {
			t.Fatalf("snapshot after restart: %+v", cs)
		}
	}
}

// TestResilientRunAbsorbsActivationPanics exercises the resilient
// execution mode: a periodic component whose activation panics does
// not terminate its thread or fail the run; the errors stay
// inspectable.
func TestResilientRunAbsorbsActivationPanics(t *testing.T) {
	a := model.NewArchitecture("resilient")
	act, err := a.NewActive("Crashy", model.Activation{
		Kind: model.PeriodicActivation, Period: 5 * time.Millisecond, Cost: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := act.SetContent("CrashyImpl"); err != nil {
		t.Fatal(err)
	}
	td, _ := a.NewThreadDomain("rt", model.DomainDesc{Kind: model.RealtimeThread, Priority: 20})
	imm, _ := a.NewMemoryArea("imm", model.AreaDesc{Kind: model.ImmortalMemory})
	if err := a.AddChild(imm, td); err != nil {
		t.Fatal(err)
	}
	if err := a.AddChild(td, act); err != nil {
		t.Fatal(err)
	}
	reg := assembly.NewRegistry()
	if err := reg.Register("CrashyImpl", func() membrane.Content { return &panickyActive{} }); err != nil {
		t.Fatal(err)
	}
	sys, err := assembly.Deploy(a, assembly.Config{Mode: assembly.Soleil, Registry: reg, Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunFor(50 * time.Millisecond); err != nil {
		t.Fatalf("resilient run failed: %v", err)
	}
	errs := sys.Errors()
	if len(errs) == 0 {
		t.Fatal("no absorbed errors recorded")
	}
	for _, e := range errs {
		if !strings.Contains(e.Error(), "panic") {
			t.Fatalf("unexpected error: %v", e)
		}
	}
	// The same architecture with erroring (not panicking) content and
	// without Resilient fails the run — absorption is opt-in.
	reg2 := assembly.NewRegistry()
	if err := reg2.Register("CrashyImpl", func() membrane.Content { return &erroringActive{} }); err != nil {
		t.Fatal(err)
	}
	sys2, err := assembly.Deploy(a, assembly.Config{Mode: assembly.Soleil, Registry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.RunFor(50 * time.Millisecond); err == nil {
		t.Fatal("non-resilient run absorbed an activation error")
	}
	// Resilient mode absorbs plain errors the same way.
	sys3, err := assembly.Deploy(a, assembly.Config{Mode: assembly.Soleil, Registry: reg2, Resilient: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys3.RunFor(50 * time.Millisecond); err != nil {
		t.Fatalf("resilient run failed on plain errors: %v", err)
	}
	if len(sys3.Errors()) == 0 {
		t.Fatal("no absorbed errors recorded for erroring content")
	}
}

// erroringActive fails (with an error, not a panic) on every
// activation.
type erroringActive struct{}

func (e *erroringActive) Init(*membrane.Services) error { return nil }

func (e *erroringActive) Invoke(*thread.Env, string, string, any) (any, error) {
	return nil, errors.New("serves nothing")
}

func (e *erroringActive) Activate(*thread.Env) error { return errors.New("activation failure") }

// panickyActive panics on every activation.
type panickyActive struct{}

func (p *panickyActive) Init(*membrane.Services) error { return nil }

func (p *panickyActive) Invoke(*thread.Env, string, string, any) (any, error) {
	return nil, errors.New("serves nothing")
}

func (p *panickyActive) Activate(*thread.Env) error { panic("activation bug") }
