package fault

import (
	"testing"
	"time"

	"soleil/internal/obs"
)

// TestSupervisorMirrorsIntoRegistry drives a panic → restart →
// quarantine sequence through a supervisor wired to a metrics
// registry and checks every decision lands in the shared numbers that
// /metrics and /healthz expose.
func TestSupervisorMirrorsIntoRegistry(t *testing.T) {
	r := &fakeRestarter{}
	reg := obs.NewRegistry()
	now := time.Unix(0, 0)
	sup, err := NewSupervisor(r, WithRegistry(reg), WithClock(func() time.Time { return now }))
	if err != nil {
		t.Fatal(err)
	}
	sup.Watch("C", Policy{Directive: RestartOneForOne, MaxRestarts: 2, Window: time.Minute})

	cm := reg.Component("C")
	for i := 0; i < 2; i++ {
		sup.Notify("C", Fault{Kind: Panic, Component: "C"})
		if acted := sup.Poll(); len(acted) != 1 || acted[0].Kind != "restart" {
			t.Fatalf("round %d: %+v", i, acted)
		}
		now = now.Add(time.Second)
	}
	if got := cm.Restarts.Load(); got != 2 {
		t.Errorf("restarts = %d, want 2", got)
	}
	if !reg.Healthy() {
		t.Error("registry unhealthy while restarts succeed")
	}

	// Budget exhausted: the quarantine flips the component's health,
	// which is what turns /healthz to 503.
	sup.Notify("C", Fault{Kind: Panic, Component: "C"})
	if acted := sup.Poll(); len(acted) != 1 || acted[0].Kind != "quarantine" {
		t.Fatalf("exhausted budget: %+v", acted)
	}
	if cm.Healthy() || reg.Healthy() {
		t.Error("quarantine not reflected in registry health")
	}
	if got := cm.Restarts.Load(); got != 2 {
		t.Errorf("quarantine counted as restart: %d", got)
	}
}

func TestMetricsLatencyProbe(t *testing.T) {
	reg := obs.NewRegistry()
	s := reg.Component("C").Series("i", "op")
	p := MetricsLatencyProbe(s, 10*time.Millisecond)
	if h := p(); !h.Healthy {
		t.Fatalf("empty series flagged: %+v", h)
	}
	for i := 0; i < 100; i++ {
		s.Latency.Observe(time.Millisecond)
	}
	if h := p(); !h.Healthy {
		t.Fatalf("fast series flagged: %+v", h)
	}
	for i := 0; i < 100; i++ {
		s.Latency.Observe(time.Second)
	}
	if h := p(); h.Healthy {
		t.Fatal("slow p99 not flagged")
	}
	if h := MetricsLatencyProbe(nil, time.Millisecond)(); !h.Healthy {
		t.Fatalf("nil series flagged: %+v", h)
	}
}

func TestMetricsMissProbe(t *testing.T) {
	cm := obs.NewRegistry().Component("C")
	p := MetricsMissProbe(cm, 1)
	if h := p(); !h.Healthy {
		t.Fatalf("no misses flagged: %+v", h)
	}
	cm.Misses.Add(5)
	if h := p(); h.Healthy {
		t.Fatal("5 new misses not flagged")
	}
	cm.Misses.Inc() // one new miss since last poll: within budget
	if h := p(); !h.Healthy {
		t.Fatalf("in-budget misses flagged: %+v", h)
	}
}

func TestMetricsOverflowProbe(t *testing.T) {
	reg := obs.NewRegistry()
	p := MetricsOverflowProbe(reg, "buf", 0.05)
	if h := p(); !h.Healthy { // queue not registered yet
		t.Fatalf("unregistered queue flagged: %+v", h)
	}
	stats := obs.QueueStats{Enqueued: 100}
	reg.RegisterQueue("buf", func() obs.QueueStats { return stats })
	if h := p(); !h.Healthy { // first window: no drops
		t.Fatalf("clean window flagged: %+v", h)
	}
	stats.Enqueued, stats.Dropped = 150, 20
	if h := p(); h.Healthy {
		t.Fatal("overflow window not flagged")
	}
	stats.Enqueued = 250 // clean again
	if h := p(); !h.Healthy {
		t.Fatalf("recovered window flagged: %+v", h)
	}
}
