package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"soleil/internal/assembly"
	"soleil/internal/dist"
	"soleil/internal/membrane"
	"soleil/internal/rtsj/thread"
)

// ErrTimeout is returned by TimeoutPort when a call exceeds its
// per-call deadline.
var ErrTimeout = errors.New("fault: call deadline exceeded")

// ErrCircuitOpen is returned by BreakerPort while the circuit is
// open: the binding is failing fast instead of hammering a broken
// peer.
var ErrCircuitOpen = errors.New("fault: circuit open")

// --- retry -----------------------------------------------------------------------

// Backoff parameterizes retry-with-exponential-backoff.
type Backoff struct {
	// Attempts is the maximum number of tries (default 3).
	Attempts int
	// Base is the first retry delay (default 1ms); each further
	// retry doubles it up to Max.
	Base time.Duration
	// Max caps the delay (default 100ms).
	Max time.Duration
	// Sleep is the wait hook (default time.Sleep); tests inject a
	// recorder here.
	Sleep func(time.Duration)
	// Retryable reports whether an error is worth retrying. The
	// default retries everything except ErrCircuitOpen and
	// dist.ErrClosed (retrying a closed transport or an open breaker
	// cannot succeed).
	Retryable func(error) bool
}

func (b Backoff) withDefaults() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = 3
	}
	if b.Base <= 0 {
		b.Base = time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 100 * time.Millisecond
	}
	if b.Sleep == nil {
		b.Sleep = time.Sleep
	}
	if b.Retryable == nil {
		b.Retryable = func(err error) bool {
			return !errors.Is(err, ErrCircuitOpen) && !errors.Is(err, dist.ErrClosed)
		}
	}
	return b
}

// RetryPort wraps a port with retry-with-exponential-backoff on both
// Send and Call.
type RetryPort struct {
	inner   membrane.Port
	backoff Backoff

	mu      sync.Mutex
	retries int64
}

var _ membrane.Port = (*RetryPort)(nil)

// NewRetryPort wraps p.
func NewRetryPort(p membrane.Port, b Backoff) (*RetryPort, error) {
	if p == nil {
		return nil, fmt.Errorf("fault: retry port needs an inner port")
	}
	return &RetryPort{inner: p, backoff: b.withDefaults()}, nil
}

// Retries returns the number of retries performed (excluding first
// attempts).
func (p *RetryPort) Retries() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retries
}

func (p *RetryPort) do(op func() error) error {
	delay := p.backoff.Base
	var err error
	for attempt := 0; attempt < p.backoff.Attempts; attempt++ {
		if attempt > 0 {
			p.mu.Lock()
			p.retries++
			p.mu.Unlock()
			p.backoff.Sleep(delay)
			if delay *= 2; delay > p.backoff.Max {
				delay = p.backoff.Max
			}
		}
		if err = op(); err == nil {
			return nil
		}
		if !p.backoff.Retryable(err) {
			return err
		}
	}
	return fmt.Errorf("fault: %d attempts exhausted: %w", p.backoff.Attempts, err)
}

// Send implements membrane.Port.
func (p *RetryPort) Send(env *thread.Env, op string, arg any) error {
	return p.do(func() error { return p.inner.Send(env, op, arg) })
}

// Call implements membrane.Port.
func (p *RetryPort) Call(env *thread.Env, op string, arg any) (any, error) {
	var res any
	err := p.do(func() error {
		var err error
		res, err = p.inner.Call(env, op, arg)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// --- per-call timeout ------------------------------------------------------------

// TimeoutPort bounds each Send/Call with a deadline. The inner call
// keeps running on its own goroutine after a timeout (it cannot be
// cancelled), but the caller is released; with bounded transports the
// stray goroutine finishes once the transport's own deadline fires.
type TimeoutPort struct {
	inner membrane.Port
	d     time.Duration

	mu       sync.Mutex
	timeouts int64
}

var _ membrane.Port = (*TimeoutPort)(nil)

// NewTimeoutPort wraps p with a per-call deadline d.
func NewTimeoutPort(p membrane.Port, d time.Duration) (*TimeoutPort, error) {
	if p == nil {
		return nil, fmt.Errorf("fault: timeout port needs an inner port")
	}
	if d <= 0 {
		return nil, fmt.Errorf("fault: timeout port needs a positive deadline, got %v", d)
	}
	return &TimeoutPort{inner: p, d: d}, nil
}

// Timeouts returns the number of calls that hit the deadline.
func (p *TimeoutPort) Timeouts() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.timeouts
}

type callResult struct {
	res any
	err error
}

func (p *TimeoutPort) bound(op func() (any, error)) (any, error) {
	done := make(chan callResult, 1)
	go func() {
		res, err := op()
		done <- callResult{res, err}
	}()
	timer := time.NewTimer(p.d)
	defer timer.Stop()
	select {
	case r := <-done:
		return r.res, r.err
	case <-timer.C:
		p.mu.Lock()
		p.timeouts++
		p.mu.Unlock()
		return nil, fmt.Errorf("%w (after %v)", ErrTimeout, p.d)
	}
}

// Send implements membrane.Port.
func (p *TimeoutPort) Send(env *thread.Env, op string, arg any) error {
	_, err := p.bound(func() (any, error) { return nil, p.inner.Send(env, op, arg) })
	return err
}

// Call implements membrane.Port.
func (p *TimeoutPort) Call(env *thread.Env, op string, arg any) (any, error) {
	return p.bound(func() (any, error) { return p.inner.Call(env, op, arg) })
}

// --- circuit breaker -------------------------------------------------------------

// BreakerState is the circuit breaker's state.
type BreakerState int

// Breaker states.
const (
	// Closed passes calls through (normal operation).
	Closed BreakerState = iota
	// Open fails calls fast with ErrCircuitOpen.
	Open
	// HalfOpen admits one trial call after the cooldown.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// Breaker is a consecutive-failure circuit breaker: Threshold
// failures in a row open the circuit; after Cooldown one trial call
// is admitted (half-open) and its outcome closes or re-opens it.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	trips    int64
}

// NewBreaker creates a breaker (threshold default 5, cooldown default
// 100ms).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 100 * time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// SetClock injects the breaker's clock (tests).
func (b *Breaker) SetClock(now func() time.Time) { b.now = now }

// State returns the current state, applying the cooldown transition.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked()
}

// Trips returns how many times the circuit has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

func (b *Breaker) stateLocked() BreakerState {
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = HalfOpen
	}
	return b.state
}

// Allow reports whether a call may proceed now.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked() != Open
}

// Observe records a call outcome and updates the state machine.
func (b *Breaker) Observe(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	state := b.stateLocked()
	if err == nil {
		b.failures = 0
		b.state = Closed
		return
	}
	b.failures++
	if state == HalfOpen || b.failures >= b.threshold {
		if b.state != Open {
			b.trips++
		}
		b.state = Open
		b.openedAt = b.now()
		b.failures = 0
	}
}

// BreakerPort guards a port with a circuit breaker.
type BreakerPort struct {
	inner   membrane.Port
	breaker *Breaker
}

var _ membrane.Port = (*BreakerPort)(nil)

// NewBreakerPort wraps p with br (a fresh default breaker when nil).
func NewBreakerPort(p membrane.Port, br *Breaker) (*BreakerPort, error) {
	if p == nil {
		return nil, fmt.Errorf("fault: breaker port needs an inner port")
	}
	if br == nil {
		br = NewBreaker(0, 0)
	}
	return &BreakerPort{inner: p, breaker: br}, nil
}

// Breaker returns the guarding breaker.
func (p *BreakerPort) Breaker() *Breaker { return p.breaker }

// Send implements membrane.Port.
func (p *BreakerPort) Send(env *thread.Env, op string, arg any) error {
	if !p.breaker.Allow() {
		return fmt.Errorf("%w (%s)", ErrCircuitOpen, op)
	}
	err := p.inner.Send(env, op, arg)
	p.breaker.Observe(err)
	return err
}

// Call implements membrane.Port.
func (p *BreakerPort) Call(env *thread.Env, op string, arg any) (any, error) {
	if !p.breaker.Allow() {
		return nil, fmt.Errorf("%w (%s)", ErrCircuitOpen, op)
	}
	res, err := p.inner.Call(env, op, arg)
	p.breaker.Observe(err)
	return res, err
}

// --- composition -----------------------------------------------------------------

// HardenOptions selects the wrappers Harden applies, innermost to
// outermost: per-call timeout, circuit breaker, retry.
type HardenOptions struct {
	// Timeout bounds each call (0 = no timeout wrapper).
	Timeout time.Duration
	// Breaker guards the binding (nil = no breaker wrapper unless
	// BreakerThreshold > 0).
	Breaker *Breaker
	// Retry enables the retry wrapper when Attempts > 1 or any field
	// is set.
	Retry *Backoff
}

// Harden layers the configured fault-tolerance wrappers around p.
func Harden(p membrane.Port, opts HardenOptions) (membrane.Port, error) {
	out := p
	var err error
	if opts.Timeout > 0 {
		if out, err = NewTimeoutPort(out, opts.Timeout); err != nil {
			return nil, err
		}
	}
	if opts.Breaker != nil {
		if out, err = NewBreakerPort(out, opts.Breaker); err != nil {
			return nil, err
		}
	}
	if opts.Retry != nil {
		if out, err = NewRetryPort(out, *opts.Retry); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ExportHardened routes a client interface onto a transport like
// dist.Export, but with the remote port hardened: retry with
// exponential backoff around a circuit breaker around a per-call
// timeout. It returns the installed port for introspection.
func ExportHardened(sys *assembly.System, client, clientItf, serverItf string, t dist.Transport, opts HardenOptions) (membrane.Port, error) {
	remote, err := dist.NewRemotePort(t, serverItf)
	if err != nil {
		return nil, err
	}
	hardened, err := Harden(remote, opts)
	if err != nil {
		return nil, err
	}
	if err := sys.BindPort(client, clientItf, hardened); err != nil {
		return nil, err
	}
	return hardened, nil
}
