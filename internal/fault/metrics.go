package fault

import (
	"fmt"
	"sync"
	"time"

	"soleil/internal/obs"
)

// WithRegistry mirrors the supervisor's decisions into a metrics
// registry: successful restarts increment the component's restart
// counter and quarantines mark it unhealthy, so /healthz and /metrics
// reflect supervision without extra wiring.
func WithRegistry(reg *obs.Registry) SupervisorOption {
	return func(s *Supervisor) { s.metrics = reg }
}

// MetricsLatencyProbe watches an operation's latency distribution in
// the shared registry: unhealthy when its p99 exceeds bound. It reads
// the same histogram the MetricsInterceptor feeds, so supervision and
// exposition observe one set of numbers.
func MetricsLatencyProbe(series *obs.OpSeries, bound time.Duration) Probe {
	return func() Health {
		if series == nil || series.Latency.Count() == 0 {
			return healthyState
		}
		if p99 := series.Latency.Quantile(0.99); p99 > bound {
			return Health{Reason: fmt.Sprintf("%s.%s p99 %v exceeds bound %v",
				series.Interface, series.Op, p99, bound)}
		}
		return healthyState
	}
}

// MetricsMissProbe watches a component's deadline-miss counter in the
// shared registry between polls: unhealthy when more than maxNew
// misses arrived since the last poll.
func MetricsMissProbe(cm *obs.ComponentMetrics, maxNew int64) Probe {
	return MissProbe(cm.Misses.Load, maxNew)
}

// MetricsOverflowProbe watches a registered queue's drop rate between
// polls: unhealthy when more than maxRate of the messages offered
// since the last poll were dropped. The queue is resolved lazily so
// the probe can be installed before the binding registers its buffer.
func MetricsOverflowProbe(reg *obs.Registry, queue string, maxRate float64) Probe {
	var last obs.QueueStats
	var mu sync.Mutex
	return func() Health {
		stats, ok := reg.Queue(queue)
		if !ok {
			return healthyState
		}
		cur := stats()
		mu.Lock()
		offered := (cur.Enqueued + cur.Dropped) - (last.Enqueued + last.Dropped)
		dropped := cur.Dropped - last.Dropped
		last = cur
		mu.Unlock()
		if offered <= 0 {
			return healthyState
		}
		if rate := float64(dropped) / float64(offered); rate > maxRate {
			return Health{Reason: fmt.Sprintf("queue %s overflow rate %.1f%% (max %.1f%%)",
				queue, rate*100, maxRate*100)}
		}
		return healthyState
	}
}
