package adl

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSize parses an ADL size attribute such as "600KB", "28KB",
// "4MB" or "512" (plain bytes). Units are binary (KB = 1024 bytes),
// matching the embedded-memory budgets of the paper.
func ParseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("adl: empty size")
	}
	mult := int64(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "GB"):
		mult, s = 1<<30, s[:len(s)-2]
	case strings.HasSuffix(upper, "MB"):
		mult, s = 1<<20, s[:len(s)-2]
	case strings.HasSuffix(upper, "KB"):
		mult, s = 1<<10, s[:len(s)-2]
	case strings.HasSuffix(upper, "B"):
		s = s[:len(s)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("adl: invalid size %q: %w", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("adl: negative size %q", s)
	}
	return n * mult, nil
}

// FormatSize renders a byte count in the ADL spelling, using the
// largest exact binary unit.
func FormatSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return strconv.FormatInt(n>>30, 10) + "GB"
	case n >= 1<<20 && n%(1<<20) == 0:
		return strconv.FormatInt(n>>20, 10) + "MB"
	case n >= 1<<10 && n%(1<<10) == 0:
		return strconv.FormatInt(n>>10, 10) + "KB"
	default:
		return strconv.FormatInt(n, 10)
	}
}
