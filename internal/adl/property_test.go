package adl

import (
	"testing"
	"testing/quick"

	"soleil/internal/fixture"
)

// Property: every random architecture survives an encode/decode round
// trip structurally intact, and a second encoding is byte-identical.
func TestRandomArchitectureRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		a, err := fixture.RandomArchitecture(seed)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		out, err := EncodeString(a)
		if err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		b, err := DecodeString(out)
		if err != nil {
			t.Logf("seed %d: decode: %v\n%s", seed, err, out)
			return false
		}
		if signature(a) != signature(b) {
			t.Logf("seed %d: structure changed:\n--- a\n%s\n--- b\n%s", seed, signature(a), signature(b))
			return false
		}
		out2, err := EncodeString(b)
		if err != nil || out != out2 {
			t.Logf("seed %d: second encoding differs", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
