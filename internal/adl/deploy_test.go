package adl

import (
	"strings"
	"testing"
)

const deployDoc = `
<Deployment architecture="pipeline">
  <Node name="alpha" address="127.0.0.1:7101" metrics="127.0.0.1:9101">
    <Assign component="Front"/>
  </Node>
  <Node name="beta" address="127.0.0.1:7102">
    <Assign component="Worker"/>
    <Assign component="Cache"/>
  </Node>
</Deployment>`

func TestDecodeDeployment(t *testing.T) {
	d, err := DecodeDeploymentString(deployDoc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Architecture != "pipeline" {
		t.Fatalf("architecture = %q", d.Architecture)
	}
	nodes := d.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	alpha, ok := d.Node("alpha")
	if !ok || alpha.Addr != "127.0.0.1:7101" || alpha.MetricsAddr != "127.0.0.1:9101" {
		t.Fatalf("alpha = %+v", alpha)
	}
	beta, _ := d.Node("beta")
	if len(beta.Assigned) != 2 || beta.Assigned[0] != "Worker" {
		t.Fatalf("beta assignments = %v", beta.Assigned)
	}
	if beta.MetricsAddr != "" {
		t.Fatalf("beta metrics = %q", beta.MetricsAddr)
	}
}

func TestDecodeDeploymentRejectsDuplicates(t *testing.T) {
	_, err := DecodeDeploymentString(`
<Deployment>
  <Node name="n" address="a:1"/>
  <Node name="n" address="a:2"/>
</Deployment>`)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-node error, got %v", err)
	}
}

func TestDecodeDeploymentRejectsMissingAddress(t *testing.T) {
	_, err := DecodeDeploymentString(`<Deployment><Node name="n"/></Deployment>`)
	if err == nil || !strings.Contains(err.Error(), "address") {
		t.Fatalf("want missing-address error, got %v", err)
	}
}

func TestDeploymentRoundTrip(t *testing.T) {
	d, err := DecodeDeploymentString(deployDoc)
	if err != nil {
		t.Fatal(err)
	}
	s, err := EncodeDeploymentString(d)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DecodeDeploymentString(s)
	if err != nil {
		t.Fatalf("re-decode: %v\n%s", err, s)
	}
	if len(d2.Nodes()) != 2 || d2.Architecture != "pipeline" {
		t.Fatalf("round trip lost data:\n%s", s)
	}
	b, _ := d2.Node("beta")
	if len(b.Assigned) != 2 {
		t.Fatalf("round trip lost assignments:\n%s", s)
	}
}
